// Evaluation-backend shootout: Direct / Cached / Parallel / GridIndex /
// CellSorted over TPC-H-shaped lineitem data, across table sizes and
// dimensionalities, on the three workloads ACQUIRE actually issues
// (cell queries, aligned boxes, off-grid repartition probes). Also
// measures what the persistent pool buys over spawning threads per box
// query (the predecessor design) on repeated small boxes.
//
// Emits one line of JSON on stdout (committed as BENCH_eval_backend.json);
// human-readable progress goes to stderr. ACQ_BENCH_FULL=1 raises the top
// table size to 10^6 rows.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/eval_kernel.h"
#include "exec/parallel_evaluation.h"
#include "index/backend_factory.h"

namespace acquire {
namespace bench {
namespace {

constexpr size_t kSpawnThreads = 4;

/// The design CellSorted/Parallel replaced: a cached matrix whose every
/// box query spawns fresh threads, pays their start-up cost, and joins
/// them. Kept bench-local as the pool-vs-spawn baseline.
class SpawnScanLayer {
 public:
  explicit SpawnScanLayer(const AcqTask* task) : task_(task) {}

  Status Prepare() { return BuildNeededMatrix(*task_, nullptr, &matrix_); }

  AggregateOps::State EvaluateBox(const std::vector<PScoreRange>& box) {
    const AggregateOps& ops = *task_->agg.ops;
    const size_t n = matrix_.rows;
    const size_t chunk = (n + kSpawnThreads - 1) / kSpawnThreads;
    std::vector<AggregateOps::State> partials(kSpawnThreads, ops.Init());
    std::vector<std::thread> workers;
    for (size_t c = 0; c < kSpawnThreads; ++c) {
      workers.emplace_back([&, c] {
        const size_t begin = c * chunk;
        const size_t end = std::min(n, begin + chunk);
        if (begin >= end) return;
        std::vector<uint8_t> scratch(end - begin);
        partials[c] =
            ScanBoxRange(ops, matrix_, box, begin, end, scratch.data());
      });
    }
    for (auto& t : workers) t.join();
    AggregateOps::State state = ops.Init();
    for (const auto& p : partials) ops.Merge(&state, p);
    return state;
  }

 private:
  const AcqTask* task_;
  NeededMatrix matrix_;
};

std::vector<std::vector<PScoreRange>> MakeWorkload(const std::string& kind,
                                                   size_t d, double step,
                                                   size_t count,
                                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<PScoreRange>> boxes;
  boxes.reserve(count);
  for (size_t q = 0; q < count; ++q) {
    std::vector<PScoreRange> box(d);
    for (auto& r : box) {
      if (kind == "aligned_cell") {
        r = CellRangeForLevel(static_cast<int64_t>(rng.NextBounded(8)), step);
      } else if (kind == "aligned_box") {
        // From level 0 through a random level: the shape Algorithm 3's
        // shell expansion asks when it merges whole sub-grids.
        int64_t hi = 1 + static_cast<int64_t>(rng.NextBounded(6));
        r = PScoreRange{-1.0, static_cast<double>(hi) * step};
      } else {  // unaligned_box: off-grid repartition probe
        double hi = rng.NextDouble(step, 5.0 * step) + 0.37;
        r = PScoreRange{rng.NextBool(0.5) ? -1.0 : hi / 3.0, hi};
      }
    }
    boxes.push_back(std::move(box));
  }
  return boxes;
}

/// Per-query time of `layer` on `boxes`, in milliseconds.
double TimePerQueryMs(EvaluationLayer* layer,
                      const std::vector<std::vector<PScoreRange>>& boxes) {
  double checksum = 0.0;
  Stopwatch sw;
  for (const auto& box : boxes) {
    auto state = layer->EvaluateBox(box);
    ACQ_CHECK(state.ok()) << state.status().ToString();
    checksum += state->empty() ? 0.0 : (*state)[0];
  }
  double ms = sw.ElapsedMillis();
  if (checksum == 12345.6789) fprintf(stderr, "~");  // defeat DCE
  return ms / static_cast<double>(boxes.size());
}

size_t RepsFor(EvalBackend backend, const std::string& workload, size_t n) {
  const bool indexed =
      backend == EvalBackend::kGridIndex || backend == EvalBackend::kCellSorted;
  if (backend == EvalBackend::kDirect) return 4;  // scans + recomputes
  if (indexed && workload != "unaligned_box") return n >= 500000 ? 500 : 200;
  return n >= 500000 ? 12 : 40;  // matrix-scan cost per query
}

struct BackendRun {
  double prepare_ms = 0.0;
  std::map<std::string, double> per_query_ms;  // workload -> ms
};

}  // namespace

int Main() {
  const size_t top_rows = EnvRows(200000);
  std::vector<size_t> sizes = {10000, 100000};
  if (top_rows > 100000) sizes.push_back(top_rows);
  const std::vector<size_t> dims = {1, 2, 3, 4};
  const std::vector<std::string> workloads = {"aligned_cell", "aligned_box",
                                              "unaligned_box"};
  const std::vector<EvalBackend> backends = {
      EvalBackend::kDirect, EvalBackend::kCached, EvalBackend::kParallel,
      EvalBackend::kGridIndex, EvalBackend::kCellSorted};

  std::string json = "{\"bench\":\"eval_backend\",\"configs\":[";
  bool first_config = true;
  double cached_cell_ms = 0.0, cached_box_ms = 0.0;
  double sorted_cell_ms = 0.0, sorted_box_ms = 0.0;

  for (size_t n : sizes) {
    Catalog catalog = MakeLineitemCatalog(n);
    for (size_t d : dims) {
      RatioTask ratio = MakeLineitemTask(catalog, d, 0.5);
      const AcqTask& task = ratio.task;
      const double step = 10.0 / static_cast<double>(d);
      fprintf(stderr, "config n=%zu d=%zu\n", n, d);

      if (!first_config) json += ",";
      first_config = false;
      json += StringFormat("{\"n\":%zu,\"d\":%zu,\"backends\":{", n, d);

      bool first_backend = true;
      for (EvalBackend backend : backends) {
        BackendOptions options;
        options.grid_step = step;
        auto layer = MakeEvaluationLayer(&task, backend, options);
        ACQ_CHECK(layer.ok()) << layer.status().ToString();
        Stopwatch prep;
        ACQ_CHECK((*layer)->Prepare().ok());
        BackendRun run;
        run.prepare_ms = prep.ElapsedMillis();
        for (const std::string& workload : workloads) {
          auto boxes = MakeWorkload(workload, d, step,
                                    RepsFor(backend, workload, n),
                                    n * 31 + d * 7);
          run.per_query_ms[workload] = TimePerQueryMs(layer->get(), boxes);
        }
        if (n == sizes.back() && d == 3) {
          if (backend == EvalBackend::kCached) {
            cached_cell_ms = run.per_query_ms["aligned_cell"];
            cached_box_ms = run.per_query_ms["aligned_box"];
          } else if (backend == EvalBackend::kCellSorted) {
            sorted_cell_ms = run.per_query_ms["aligned_cell"];
            sorted_box_ms = run.per_query_ms["aligned_box"];
          }
        }
        if (!first_backend) json += ",";
        first_backend = false;
        json += StringFormat(
            "\"%s\":{\"prepare_ms\":%.3f,\"aligned_cell_ms\":%.6f,"
            "\"aligned_box_ms\":%.6f,\"unaligned_box_ms\":%.6f}",
            EvalBackendToString(backend), run.prepare_ms,
            run.per_query_ms["aligned_cell"], run.per_query_ms["aligned_box"],
            run.per_query_ms["unaligned_box"]);
      }
      json += "}}";
    }
  }

  // Pool vs per-call spawn on repeated small boxes: the scan is cheap, so
  // thread start-up dominates the spawning design.
  const size_t small_n = 50000;
  Catalog small_catalog = MakeLineitemCatalog(small_n);
  RatioTask small_ratio = MakeLineitemTask(small_catalog, 2, 0.5);
  auto small_boxes = MakeWorkload("unaligned_box", 2, 5.0, 300, 99);
  SpawnScanLayer spawn(&small_ratio.task);
  ACQ_CHECK(spawn.Prepare().ok());
  ParallelEvaluationLayer pooled(&small_ratio.task, kSpawnThreads);
  ACQ_CHECK(pooled.Prepare().ok());
  Stopwatch spawn_sw;
  for (const auto& box : small_boxes) spawn.EvaluateBox(box);
  const double spawn_ms = spawn_sw.ElapsedMillis() / small_boxes.size();
  Stopwatch pool_sw;
  for (const auto& box : small_boxes) {
    ACQ_CHECK(pooled.EvaluateBox(box).ok());
  }
  const double pool_ms = pool_sw.ElapsedMillis() / small_boxes.size();

  const double cell_speedup =
      sorted_cell_ms > 0.0 ? cached_cell_ms / sorted_cell_ms : 0.0;
  const double box_speedup =
      sorted_box_ms > 0.0 ? cached_box_ms / sorted_box_ms : 0.0;
  json += StringFormat(
      "],\"pool_vs_spawn\":{\"n\":%zu,\"d\":2,\"spawn_ms\":%.6f,"
      "\"pool_ms\":%.6f,\"speedup_pool_vs_spawn\":%.2f},"
      "\"speedup_cellsorted_vs_cached_cell\":%.2f,"
      "\"speedup_cellsorted_vs_cached_box\":%.2f,"
      "\"speedup_cellsorted_vs_cached\":%.2f}",
      small_n, spawn_ms, pool_ms, pool_ms > 0.0 ? spawn_ms / pool_ms : 0.0,
      cell_speedup, box_speedup, std::min(cell_speedup, box_speedup));
  printf("%s\n", json.c_str());
  return 0;
}

}  // namespace bench
}  // namespace acquire

int main() { return acquire::bench::Main(); }
