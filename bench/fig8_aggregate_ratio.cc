// Figure 8 (Section 8.4.1): ACQUIRE vs Top-k vs TQGen vs BinSearch while
// the aggregate ratio Aactual/Aexp varies over 0.1-0.9.
//   (a) execution time    (b) relative aggregate error    (c) refinement
// Setup follows the paper: COUNT constraint, 3 flexible predicates,
// delta = 0.05. Default table size 100K rows (ACQ_BENCH_FULL=1 -> 1M).

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(100000);
  const double ratios[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  printf("Figure 8: varying aggregate ratio (rows=%zu, d=3, COUNT, "
         "delta=0.05)\n\n", rows);
  Catalog catalog = MakeLineitemCatalog(rows);

  TablePrinter time_table(
      {"ratio", "ACQUIRE_ms", "TopK_ms", "TQGen_ms", "BinSearch_ms"});
  TablePrinter err_table({"ratio", "ACQUIRE_err", "TQGen_err",
                          "BinSearch_err_min", "BinSearch_err_max"});
  TablePrinter score_table(
      {"ratio", "ACQUIRE_score", "TopK_score", "TQGen_score",
       "BinSearch_score"});

  for (double ratio : ratios) {
    RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, ratio);
    AcquireOptions acq_options;
    acq_options.delta = 0.05;
    MethodMetrics acq = RunAcquireMethod(rt.task, acq_options);
    MethodMetrics topk = RunTopKMethod(rt.task);
    MethodMetrics tqgen = RunTqGenMethod(rt.task);
    BinSearchSpread binsearch = RunBinSearchOrders(rt.task);

    std::string r = StringFormat("%.1f", ratio);
    time_table.AddRow({r, Ms(acq.time_ms), Ms(topk.time_ms),
                       Ms(tqgen.time_ms), Ms(binsearch.median_time_ms)});
    err_table.AddRow({r, Err(acq.error), Err(tqgen.error),
                      Err(binsearch.min_error), Err(binsearch.max_error)});
    score_table.AddRow({r, Score(acq.qscore), Score(topk.qscore),
                        Score(tqgen.qscore), Score(binsearch.max_qscore)});
  }

  printf("--- Figure 8(a): execution time (ms) ---\n");
  time_table.Print();
  printf("\n--- Figure 8(b): relative aggregate error (Top-k excluded: its "
         "error is 0 by definition) ---\n");
  err_table.Print();
  printf("\n--- Figure 8(c): refinement score (L1 QScore) ---\n");
  score_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
