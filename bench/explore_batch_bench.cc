// Layer-batched Explore vs the sequential explorer: end-to-end RunAcquire
// on the cell-sorted backend across dimensionalities and table sizes. The
// batched driver drains each expand layer and answers all of its cell
// sub-queries in one merged CSR sweep (or one thread-pool fan-out on
// layers without a native batch path); the Eq. 17 merges stay sequential,
// so both modes produce bit-identical results — asserted here on every
// config before timing is reported.
//
// Emits one line of JSON on stdout (committed as BENCH_explore_batch.json);
// human-readable progress goes to stderr. ACQ_BENCH_ROWS=<n> shrinks the
// top table size for a quick pass; the default is the paper-scale 10^6.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/expand.h"
#include "index/cell_sorted.h"

namespace acquire {
namespace bench {
namespace {

struct ModeRun {
  double elapsed_ms = 0.0;  // min over reps, Prepare excluded
  double expand_ms = 0.0;
  double explore_ms = 0.0;
  double merge_ms = 0.0;
  uint64_t queries_explored = 0;
  uint64_t cell_queries = 0;
  double best_aggregate = 0.0;
  bool satisfied = false;
};

ModeRun RunMode(const AcqTask& task, EvaluationLayer* layer,
                const AcquireOptions& options, int reps) {
  ModeRun run;
  run.elapsed_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    auto result = RunAcquire(task, layer, options);
    ACQ_CHECK(result.ok()) << result.status().ToString();
    if (result->elapsed_ms < run.elapsed_ms) {
      run.elapsed_ms = result->elapsed_ms;
      run.expand_ms = result->exec_stats.expand_ms;
      run.explore_ms = result->exec_stats.explore_ms;
      run.merge_ms = result->exec_stats.merge_ms;
    }
    run.queries_explored = result->queries_explored;
    run.cell_queries = result->cell_queries;
    run.best_aggregate = result->best.aggregate;
    run.satisfied = result->satisfied;
  }
  return run;
}

/// Number of expand layers the search consumed: replay the deterministic
/// generator over the same space until `explored` coordinates have been
/// produced, counting score changes. (A partially drained hit layer counts
/// as one layer, matching what the batched driver executes.)
size_t CountLayers(const AcqTask& task, const AcquireOptions& options,
                   uint64_t explored) {
  RefinedSpace space(&task, options.gamma, options.norm);
  BfsGenerator gen(&space);
  GridCoord coord;
  size_t layers = 0;
  double last_score = -1.0;
  for (uint64_t i = 0; i < explored && gen.Next(&coord); ++i) {
    if (gen.CurrentScore() != last_score) {
      ++layers;
      last_score = gen.CurrentScore();
    }
  }
  return layers;
}

}  // namespace

int Main() {
  const size_t top_rows = EnvRows(1000000);
  std::vector<size_t> sizes = {100000};
  if (top_rows != sizes.back()) sizes.push_back(top_rows);
  const std::vector<size_t> dims = {1, 2, 3, 4};
  const int reps = 3;

  std::string json = "{\"bench\":\"explore_batch\",\"configs\":[";
  bool first_config = true;
  double headline_speedup = 0.0;  // 1e6 rows (= top size), d = 3

  TablePrinter table({"n", "d", "layers", "queries", "seq_ms", "batch_ms",
                      "speedup"});
  for (size_t n : sizes) {
    Catalog catalog = MakeLineitemCatalog(n);
    for (size_t d : dims) {
      RatioTask ratio = MakeLineitemTask(catalog, d, 0.3);
      const AcqTask& task = ratio.task;

      AcquireOptions options;
      options.delta = 0.05;
      // The batched pipeline earns its keep on deep searches with wide
      // layers; gamma = 12 puts the BFS hit layer at ~10d (Figure 9's
      // ~120-PScore refinement need) without making d = 4 combinatorial.
      options.gamma = 12.0;
      const double step = options.gamma / static_cast<double>(d);

      CellSortedEvaluationLayer layer(&task, step);
      Stopwatch prep;
      ACQ_CHECK(layer.Prepare().ok());
      const double prepare_ms = prep.ElapsedMillis();

      options.batch_explore = BatchExplore::kOff;
      ModeRun seq = RunMode(task, &layer, options, reps);
      options.batch_explore = BatchExplore::kOn;
      ModeRun bat = RunMode(task, &layer, options, reps);

      // The two modes must be observationally identical before their
      // times are comparable.
      ACQ_CHECK(seq.satisfied == bat.satisfied &&
                seq.queries_explored == bat.queries_explored &&
                seq.cell_queries == bat.cell_queries &&
                seq.best_aggregate == bat.best_aggregate)
          << "batched explore diverged from sequential at n=" << n
          << " d=" << d;

      const size_t layers = CountLayers(task, options, seq.queries_explored);
      const double speedup =
          bat.elapsed_ms > 0.0 ? seq.elapsed_ms / bat.elapsed_ms : 0.0;
      const double layers_per_sec_seq =
          seq.elapsed_ms > 0.0 ? 1000.0 * layers / seq.elapsed_ms : 0.0;
      const double layers_per_sec_bat =
          bat.elapsed_ms > 0.0 ? 1000.0 * layers / bat.elapsed_ms : 0.0;
      if (n == top_rows && d == 3) headline_speedup = speedup;

      fprintf(stderr, "config n=%zu d=%zu layers=%zu seq=%.1fms bat=%.1fms\n",
              n, d, layers, seq.elapsed_ms, bat.elapsed_ms);
      table.AddRow({std::to_string(n), std::to_string(d),
                    std::to_string(layers),
                    std::to_string(seq.queries_explored), Ms(seq.elapsed_ms),
                    Ms(bat.elapsed_ms), StringFormat("%.2f", speedup)});

      if (!first_config) json += ",";
      first_config = false;
      json += StringFormat(
          "{\"n\":%zu,\"d\":%zu,\"prepare_ms\":%.2f,\"layers\":%zu,"
          "\"queries_explored\":%llu,\"cell_queries\":%llu,"
          "\"sequential\":{\"elapsed_ms\":%.3f,\"expand_ms\":%.3f,"
          "\"explore_ms\":%.3f,\"layers_per_sec\":%.1f},"
          "\"batched\":{\"elapsed_ms\":%.3f,\"expand_ms\":%.3f,"
          "\"explore_ms\":%.3f,\"merge_ms\":%.3f,\"layers_per_sec\":%.1f},"
          "\"speedup\":%.2f}",
          n, d, prepare_ms, layers,
          static_cast<unsigned long long>(seq.queries_explored),
          static_cast<unsigned long long>(seq.cell_queries), seq.elapsed_ms,
          seq.expand_ms, seq.explore_ms, layers_per_sec_seq, bat.elapsed_ms,
          bat.expand_ms, bat.explore_ms, bat.merge_ms, layers_per_sec_bat,
          speedup);
    }
  }
  json += StringFormat("],\"speedup_top_rows_d3\":%.2f}", headline_speedup);

  table.Print();
  printf("%s\n", json.c_str());
  return 0;
}

}  // namespace bench
}  // namespace acquire

int main() { return acquire::bench::Main(); }
