// Two-tenant interference micro-bench: a light tenant's request latency
// with and without a heavy co-tenant flooding its own admission queue,
// over a single shared run slot. The governor's stride scheduling promises
// the fair-share bound — at equal weights a light probe waits for at most
// the in-flight task plus its own run, so its p99 must stay within ~2x of
// the solo p99 (plus a small scheduling floor). The bench measures both
// phases, asserts the bound, and emits one line of JSON on stdout
// (committed as BENCH_tenancy.json); progress goes to stderr.
//
// ACQ_BENCH_ROWS=<n> resizes the per-tenant catalogs for a quick pass.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "server/server.h"
#include "workload/users_gen.h"

namespace acquire {
namespace bench {
namespace {

// An unreachable constraint with a fixed exploration cap: every submission
// costs the same bounded amount of search work, so solo and contended
// phases time identical tasks.
std::string ProbeSql() {
  return "SELECT * FROM users CONSTRAINT COUNT(*) >= 1000000000 "
         "WHERE age <= 25 AND income >= 50000";
}

std::string SubmitLine(const char* tenant, bool wait) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(ProbeSql()));
  request.Set("tenant", JsonValue::Str(tenant));
  request.Set("max_explored", JsonValue::Number(2000.0));
  request.Set("wait", JsonValue::Bool(wait));
  return request.Dump();
}

double Percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  if (samples.empty()) return 0.0;
  const size_t index = std::min(
      samples.size() - 1,
      static_cast<size_t>(p * static_cast<double>(samples.size() - 1)));
  return samples[index];
}

double TenantStat(AcqServer* server, const char* tenant, const char* field) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("STATS"));
  request.Set("tenant", JsonValue::Str(tenant));
  Result<JsonValue> stats =
      JsonValue::Parse(server->HandleRequestLine(request.Dump()));
  ACQ_CHECK(stats.ok() && stats->GetBool("ok", false));
  return stats->Get("stats")->GetNumber(field, -1.0);
}

// One light probe, timed end to end (admission wait included — that IS the
// interference being measured).
double TimedProbe(AcqServer* server) {
  Stopwatch sw;
  Result<JsonValue> reply =
      JsonValue::Parse(server->HandleRequestLine(SubmitLine("light", true)));
  const double ms = sw.ElapsedMillis();
  ACQ_CHECK(reply.ok() && reply->GetBool("ok", false)) << "probe failed";
  ACQ_CHECK(reply->GetString("state") == "done") << reply->Dump();
  return ms;
}

}  // namespace

int Main() {
  const size_t rows = EnvRows(20000);
  const int probes = 25;

  ServerOptions options;
  options.max_running = 1;  // one shared slot: contention is the point
  options.max_queued = 4;
  const Catalog idle;  // the default tenant never serves in this bench
  AcqServer server(&idle, options);
  // The two measured tenants attach with identical catalogs and equal
  // fair-share weights.
  for (const char* tenant : {"light", "heavy"}) {
    JsonValue attach = JsonValue::Object();
    attach.Set("cmd", JsonValue::Str("ATTACH"));
    attach.Set("tenant", JsonValue::Str(tenant));
    attach.Set("gen", JsonValue::Str("users"));
    attach.Set("rows", JsonValue::Number(static_cast<double>(rows)));
    Result<JsonValue> reply =
        JsonValue::Parse(server.HandleRequestLine(attach.Dump()));
    ACQ_CHECK(reply.ok() && reply->GetBool("ok", false))
        << "ATTACH " << tenant << " failed";
  }

  // --- phase 1: solo ------------------------------------------------------
  TimedProbe(&server);  // warm-up (index build happens on first touch)
  std::vector<double> solo;
  for (int i = 0; i < probes; ++i) solo.push_back(TimedProbe(&server));
  const double solo_p50 = Percentile(solo, 0.5);
  const double solo_p99 = Percentile(solo, 0.99);
  fprintf(stderr, "solo: p50=%.2fms p99=%.2fms (%d probes)\n", solo_p50,
          solo_p99, probes);

  // --- phase 2: heavy co-tenant flooding its queue ------------------------
  std::atomic<bool> stop{false};
  std::thread flood([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Fire-and-forget; queue-full rejections are expected and fine — the
      // point is to keep the heavy queue saturated.
      server.HandleRequestLine(SubmitLine("heavy", false));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Wait until the heavy backlog actually exists before probing.
  while (TenantStat(&server, "heavy", "queued") < 2.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::vector<double> contended;
  for (int i = 0; i < probes; ++i) contended.push_back(TimedProbe(&server));
  stop.store(true, std::memory_order_relaxed);
  flood.join();
  const double contended_p50 = Percentile(contended, 0.5);
  const double contended_p99 = Percentile(contended, 0.99);
  const double heavy_completed = TenantStat(&server, "heavy", "completed");
  fprintf(stderr,
          "contended: p50=%.2fms p99=%.2fms (heavy completed %.0f runs)\n",
          contended_p50, contended_p99, heavy_completed);

  // Fair-share bound: waiting out one in-flight heavy task plus running the
  // probe itself is at most ~2x the solo latency; the additive floor
  // absorbs scheduler noise at millisecond task sizes.
  const double bound_ms = 2.0 * solo_p99 + 250.0;
  const bool bound_ok = contended_p99 <= bound_ms;
  ACQ_CHECK(bound_ok) << "fair-share bound violated: contended p99 "
                      << contended_p99 << "ms > " << bound_ms << "ms";
  // The heavy tenant made real progress — the bench measured sharing, not
  // a starved co-tenant.
  ACQ_CHECK(heavy_completed > 0.0) << "heavy tenant never ran";

  printf(
      "{\"bench\":\"tenancy\",\"rows\":%zu,\"probes\":%d,"
      "\"solo\":{\"p50_ms\":%.3f,\"p99_ms\":%.3f},"
      "\"contended\":{\"p50_ms\":%.3f,\"p99_ms\":%.3f},"
      "\"heavy_completed\":%.0f,"
      "\"fair_share_bound_ms\":%.3f,\"bound_ok\":%s}\n",
      rows, probes, solo_p50, solo_p99, contended_p50, contended_p99,
      heavy_completed, bound_ms, bound_ok ? "true" : "false");
  return 0;
}

}  // namespace bench
}  // namespace acquire

int main() { return acquire::bench::Main(); }
