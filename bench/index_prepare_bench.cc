// Index prepare: sharded cell-sorted build vs the sequential reference at
// 1/2/4/8 workers, plus the amortized cost of live ingestion (append +
// staged delta sync + merge) against a full rebuild. Every parallel build
// must be bit-identical to the sequential layout (LayoutsBitIdentical) and
// every delta-maintained answer bit-identical to a rebuilt layer before
// its time is reported — a fast wrong build is worthless.
//
// Emits one line of JSON on stdout (committed as BENCH_index_prepare.json);
// human-readable progress goes to stderr. ACQ_BENCH_ROWS=<n> shrinks the
// catalog for a quick pass; the default is the paper-scale 10^6.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "exec/eval_kernel.h"
#include "exec/thread_pool.h"
#include "index/cell_sorted.h"
#include "index/parallel_prepare.h"

namespace acquire {
namespace bench {
namespace {

// Minimum over `reps` of one full layout build (matrix + CSR fold).
double TimeBuild(const AcqTask& task, double step, ThreadPool* pool,
                 PrepareMode mode, int reps, CellSortedLayout* out) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    NeededMatrix raw;
    CellSortedLayout layout;
    Stopwatch sw;
    ACQ_CHECK(BuildNeededMatrix(task, pool, &raw).ok());
    PrepareBuildInfo info;
    Status built =
        BuildCellSortedLayout(raw, step, *task.agg.ops, pool, mode, &layout,
                              &info);
    const double ms = sw.ElapsedMillis();
    ACQ_CHECK(built.ok()) << built.ToString();
    ACQ_CHECK(info.parallel == (mode == PrepareMode::kParallel));
    best = std::min(best, ms);
    if (r == reps - 1) *out = std::move(layout);
  }
  return best;
}

// Schema-driven synthetic rows for the append path: values land inside the
// generated lineitem domains so appended rows hit populated grid regions.
std::vector<std::vector<Value>> MakeRows(const Schema& schema, size_t count,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(count);
  for (size_t r = 0; r < count; ++r) {
    std::vector<Value> row;
    row.reserve(schema.num_fields());
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      switch (schema.field(f).type) {
        case DataType::kInt64:
          row.emplace_back(rng.NextInt(1, 1000));
          break;
        case DataType::kDouble:
          row.emplace_back(rng.NextDouble(0.0, 50.0));
          break;
        case DataType::kString:
          row.emplace_back(std::string("appended"));
          break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

int Main() {
  const size_t rows = EnvRows(1000000);
  const size_t d = 3;
  const double gamma = 12.0;
  const double step = gamma / static_cast<double>(d);
  const int reps = 3;

  Catalog catalog = MakeLineitemCatalog(rows);
  RatioTask ratio = MakeLineitemTask(catalog, d, 0.3);
  const AcqTask& task = ratio.task;

  fprintf(stderr, "index_prepare_bench rows=%zu d=%zu step=%.2f\n", rows, d,
          step);

  CellSortedLayout reference;
  const double seq_ms = TimeBuild(task, step, /*pool=*/nullptr,
                                  PrepareMode::kSequential, reps, &reference);
  fprintf(stderr, "sequential cells=%zu prepare=%.1fms\n",
          reference.num_cells(), seq_ms);

  std::string json = StringFormat(
      "{\"bench\":\"index_prepare\",\"rows\":%zu,\"d\":%zu,\"cells\":%zu,"
      "\"sequential_prepare_ms\":%.3f,\"configs\":[",
      rows, d, reference.num_cells(), seq_ms);

  TablePrinter table({"mode", "threads", "prepare_ms", "speedup"});
  table.AddRow({"sequential", "-", Ms(seq_ms), "1.00"});
  double best_speedup = 0.0;
  bool first = true;
  for (size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    CellSortedLayout built;
    const double ms = TimeBuild(task, step, &pool, PrepareMode::kParallel,
                                reps, &built);
    // Bit-identity gate: the timing comparison is meaningless otherwise.
    ACQ_CHECK(LayoutsBitIdentical(reference, built))
        << threads << "-thread parallel build diverged";
    const double speedup = ms > 0.0 ? seq_ms / ms : 0.0;
    best_speedup = std::max(best_speedup, speedup);
    fprintf(stderr, "parallel threads=%zu prepare=%.1fms speedup=%.2f\n",
            threads, ms, speedup);
    table.AddRow({"parallel", std::to_string(threads), Ms(ms),
                  StringFormat("%.2f", speedup)});
    if (!first) json += ",";
    first = false;
    json += StringFormat(
        "{\"threads\":%zu,\"prepare_ms\":%.3f,\"speedup\":%.2f}", threads, ms,
        speedup);
  }

  // --- live ingestion: staged deltas vs full rebuild ----------------------
  // N small batches appended to the relation; each batch is staged by the
  // next query's delta sync instead of rebuilding. The comparison is
  // (staging all batches + one final merge) vs (a full rebuild per batch),
  // which is what a naive maintain-by-rebuild strategy would pay.
  const size_t batches = 8;
  const size_t batch_rows = std::max<size_t>(64, rows / 2000);
  // Append straight to the task's relation (which may be a NOREFINE-filtered
  // derivation of the catalog table): the delta machinery watches
  // relation->num_rows(), exactly like a served table would grow.
  Table* relation = task.relation.get();

  CellSortedEvaluationLayer layer(&task, step);
  ACQ_CHECK(layer.Prepare().ok());
  // Keep every batch below the merge threshold so the staging path (not an
  // absorb) is what gets timed.
  layer.set_delta_merge_threshold(batches * batch_rows * 2);
  const std::vector<PScoreRange> probe(d, CellRangeForLevel(1, step));

  double staging_ms = 0.0;
  for (size_t b = 0; b < batches; ++b) {
    ACQ_CHECK(relation
                  ->AppendRows(
                      MakeRows(relation->schema(), batch_rows, 1000 + b))
                  .ok());
    Stopwatch sw;
    ACQ_CHECK(layer.EvaluateBox(probe).ok());
    staging_ms += sw.ElapsedMillis();
  }
  ACQ_CHECK(layer.staged_delta_rows() == batches * batch_rows);

  Stopwatch t_merge;
  ACQ_CHECK(layer.MergeDeltas().ok());
  const double merge_ms = t_merge.ElapsedMillis();

  // One full (sequential) rebuild over the grown relation — both the delta
  // correctness reference and the per-batch cost of the naive strategy.
  CellSortedEvaluationLayer rebuilt(&task, step);
  Stopwatch t_rebuild;
  ACQ_CHECK(rebuilt.Prepare().ok());
  const double rebuild_ms = t_rebuild.ElapsedMillis();
  auto got = layer.EvaluateBox(probe);
  auto expected = rebuilt.EvaluateBox(probe);
  ACQ_CHECK(got.ok() && expected.ok());
  ACQ_CHECK(*got == *expected) << "delta-maintained layer diverged";

  const double delta_total = staging_ms + merge_ms;
  const double naive_total = rebuild_ms * static_cast<double>(batches);
  const double amortized_speedup =
      delta_total > 0.0 ? naive_total / delta_total : 0.0;
  fprintf(stderr,
          "delta: %zu batches x %zu rows staging=%.2fms merge=%.2fms "
          "rebuild=%.2fms amortized_speedup=%.1f\n",
          batches, batch_rows, staging_ms, merge_ms, rebuild_ms,
          amortized_speedup);
  table.AddRow({"delta-maintain", "-", Ms(delta_total),
                StringFormat("%.2f", amortized_speedup)});

  json += StringFormat(
      "],\"best_speedup\":%.2f,\"delta\":{\"batches\":%zu,"
      "\"rows_per_batch\":%zu,\"staging_ms\":%.3f,\"merge_ms\":%.3f,"
      "\"rebuild_ms\":%.3f,\"amortized_speedup\":%.2f}}",
      best_speedup, batches, batch_rows, staging_ms, merge_ms, rebuild_ms,
      amortized_speedup);

  table.Print();
  printf("%s\n", json.c_str());
  return 0;
}

}  // namespace bench
}  // namespace acquire

int main() { return acquire::bench::Main(); }
