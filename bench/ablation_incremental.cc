// Ablation: Incremental Aggregate Computation (Section 5) on vs off.
// "Off" re-executes every explored grid query in full against the
// evaluation layer; "on" executes one cell query per grid query and merges
// stored sub-aggregates (Eq. 17). Shown on both the grid-index layer (cell
// queries O(1)) and the direct scan layer (cell queries one scan each) to
// separate the two effects.

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

struct Cell {
  double time_ms;
  uint64_t tuples_scanned;
};

Cell RunWith(const AcqTask& task, bool incremental, bool use_index) {
  AcquireOptions options;
  options.delta = 0.05;
  options.use_incremental = incremental;
  Stopwatch sw;
  std::unique_ptr<EvaluationLayer> layer;
  if (use_index) {
    RefinedSpace space(&task, options.gamma, options.norm);
    layer = std::make_unique<GridIndexEvaluationLayer>(&task, space.step());
  } else {
    layer = std::make_unique<DirectEvaluationLayer>(&task);
  }
  Status prep = layer->Prepare();
  ACQ_CHECK(prep.ok()) << prep.ToString();
  auto result = RunAcquire(task, layer.get(), options);
  ACQ_CHECK(result.ok()) << result.status().ToString();
  return Cell{sw.ElapsedMillis(), layer->stats().tuples_scanned};
}

void Run() {
  // Small default: the direct-scan x naive combination pays a full scan per
  // explored grid query, which is exactly the cost this ablation exposes.
  const size_t rows = EnvRows(20000);
  printf("Ablation: incremental aggregate computation (rows=%zu, d=3, "
         "COUNT)\n\n", rows);
  Catalog catalog = MakeLineitemCatalog(rows);
  TablePrinter table({"ratio", "idx_incr_ms", "idx_naive_ms",
                      "scan_incr_ms", "scan_naive_ms", "scan_incr_tuples",
                      "scan_naive_tuples"});
  for (double ratio : {0.5, 0.7}) {
    RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, ratio);
    Cell idx_incr = RunWith(rt.task, true, true);
    Cell idx_naive = RunWith(rt.task, false, true);
    Cell scan_incr = RunWith(rt.task, true, false);
    Cell scan_naive = RunWith(rt.task, false, false);
    table.AddRow({StringFormat("%.1f", ratio), Ms(idx_incr.time_ms),
                  Ms(idx_naive.time_ms), Ms(scan_incr.time_ms),
                  Ms(scan_naive.time_ms),
                  std::to_string(scan_incr.tuples_scanned),
                  std::to_string(scan_naive.tuples_scanned)});
  }
  table.Print();
  printf("\nNote: with the grid index, a naive full re-execution per grid "
         "query costs a pass over all populated cells, while incremental "
         "costs one O(1) cell probe plus d merges.\n");
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
