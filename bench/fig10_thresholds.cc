// Figure 10(b)/(c) (Section 8.4.5): ACQUIRE's sensitivity to its own
// thresholds. (b) refinement threshold gamma 2-12 — smaller gamma means a
// finer grid and more explored queries; (c) cardinality (aggregate error)
// threshold delta 1e-4 - 1e-1 — stricter deltas force deeper search and
// repartitioning.

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(100000);
  printf("Figure 10(b)/(c): ACQUIRE parameter studies (rows=%zu, d=3, "
         "ratio=0.5, COUNT)\n\n", rows);
  Catalog catalog = MakeLineitemCatalog(rows);
  RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, /*ratio=*/0.5);

  printf("--- Figure 10(b): execution time vs refinement threshold gamma "
         "(delta=0.01) ---\n");
  TablePrinter gamma_table(
      {"gamma", "ACQUIRE_ms", "cell_queries", "err", "score"});
  for (double gamma : {4.0, 6.0, 8.0, 10.0, 12.0}) {
    AcquireOptions options;
    options.gamma = gamma;
    options.delta = 0.01;
    MethodMetrics m = RunAcquireMethod(rt.task, options);
    gamma_table.AddRow({StringFormat("%.0f", gamma), Ms(m.time_ms),
                        std::to_string(m.queries), Err(m.error),
                        Score(m.qscore)});
  }
  gamma_table.Print();

  printf("\n--- Figure 10(c): execution time vs cardinality threshold delta "
         "(gamma=10) ---\n");
  TablePrinter delta_table(
      {"delta", "ACQUIRE_ms", "cell_queries", "err", "score"});
  for (double delta : {0.0001, 0.001, 0.01, 0.1}) {
    AcquireOptions options;
    options.delta = delta;
    options.repartition_iters = 24;  // strict deltas need deep bisection
    MethodMetrics m = RunAcquireMethod(rt.task, options);
    delta_table.AddRow({StringFormat("%g", delta), Ms(m.time_ms),
                        std::to_string(m.queries), Err(m.error),
                        Score(m.qscore)});
  }
  delta_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
