// Figure 11 (Section 8.4.6): ACQUIRE across aggregate types — SUM, COUNT
// and MAX (MIN is MAX of the negated attribute and is omitted, as in the
// paper). (a) execution time vs aggregate ratio, (b) refinement score.

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(100000);
  printf("Figure 11: ACQUIRE on different aggregates (rows=%zu, d=3, "
         "delta=0.05)\n\n", rows);
  Catalog catalog = MakeLineitemCatalog(rows);

  TablePrinter time_table({"ratio", "SUM_ms", "COUNT_ms", "MAX_ms"});
  TablePrinter score_table(
      {"ratio", "SUM_score", "COUNT_score", "MAX_score"});

  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::map<AggregateKind, MethodMetrics> metrics;
    for (AggregateKind agg : {AggregateKind::kSum, AggregateKind::kCount,
                              AggregateKind::kMax}) {
      RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, ratio, agg);
      // MAX expansion is a >= constraint in spirit: equality targets can
      // overshoot in one tuple step, so use the hinge — and cap the target
      // at the column's domain maximum (base/ratio can exceed what any
      // refinement of MAX can reach).
      if (agg == AggregateKind::kMax) {
        rt.task.constraint.op = ConstraintOp::kGe;
        size_t col = static_cast<size_t>(rt.task.agg.col_index);
        double domain_max = rt.task.relation->Stats(col).max;
        rt.task.constraint.target =
            std::min(rt.task.constraint.target, 0.98 * domain_max);
      }
      AcquireOptions options;
      options.delta = 0.05;
      metrics[agg] = RunAcquireMethod(rt.task, options);
    }
    std::string r = StringFormat("%.1f", ratio);
    time_table.AddRow({r, Ms(metrics[AggregateKind::kSum].time_ms),
                       Ms(metrics[AggregateKind::kCount].time_ms),
                       Ms(metrics[AggregateKind::kMax].time_ms)});
    score_table.AddRow({r, Score(metrics[AggregateKind::kSum].qscore),
                        Score(metrics[AggregateKind::kCount].qscore),
                        Score(metrics[AggregateKind::kMax].qscore)});
  }

  printf("--- Figure 11(a): execution time (ms) ---\n");
  time_table.Print();
  printf("\n--- Figure 11(b): refinement score ---\n");
  score_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
