// Figure 9 (Section 8.4.2): varying the number of refinable predicates
// (1-5) at aggregate ratio 0.3. ACQUIRE's time grows roughly linearly;
// TQGen's number of executed queries — and hence its time — grows
// exponentially in d. Default 50K rows so TQGen's d=5 lattice finishes in
// reasonable time (ACQ_BENCH_FULL=1 -> 1M, be prepared to wait on TQGen).

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(50000);
  printf("Figure 9: varying number of predicates (rows=%zu, ratio=0.3, "
         "COUNT, delta=0.05)\n\n", rows);
  Catalog catalog = MakeLineitemCatalog(rows);

  TablePrinter time_table({"d", "ACQUIRE_ms", "TopK_ms", "TQGen_ms",
                           "BinSearch_ms", "TQGen_queries"});
  TablePrinter err_table({"d", "ACQUIRE_err", "TQGen_err",
                          "BinSearch_err_min", "BinSearch_err_max"});
  TablePrinter score_table(
      {"d", "ACQUIRE_score", "TopK_score", "TQGen_score", "BinSearch_score"});

  for (size_t d = 1; d <= 5; ++d) {
    RatioTask rt = MakeLineitemTask(catalog, d, /*ratio=*/0.3);
    AcquireOptions acq_options;
    acq_options.delta = 0.05;
    // A 3.3x COUNT increase over uniform data needs ~120 PScore units of
    // total refinement regardless of d, so the BFS hit layer sits at
    // ~120/step. gamma = 25 keeps the layer index (and the grid volume,
    // which is combinatorial in d) tractable across the whole sweep while
    // preserving Theorem 1's gamma-proximity guarantee at that threshold.
    acq_options.gamma = 25.0;
    MethodMetrics acq = RunAcquireMethod(rt.task, acq_options);
    MethodMetrics topk = RunTopKMethod(rt.task);
    TqGenOptions tq_options;
    tq_options.max_iterations = d >= 4 ? 2 : 4;  // keep d=5 tractable
    MethodMetrics tqgen = RunTqGenMethod(rt.task, tq_options);
    BinSearchSpread binsearch =
        RunBinSearchOrders(rt.task, d == 1 ? 1 : 4);

    std::string ds = std::to_string(d);
    time_table.AddRow({ds, Ms(acq.time_ms), Ms(topk.time_ms),
                       Ms(tqgen.time_ms), Ms(binsearch.median_time_ms),
                       std::to_string(tqgen.queries)});
    err_table.AddRow({ds, Err(acq.error), Err(tqgen.error),
                      Err(binsearch.min_error), Err(binsearch.max_error)});
    score_table.AddRow({ds, Score(acq.qscore), Score(topk.qscore),
                        Score(tqgen.qscore), Score(binsearch.max_qscore)});
  }

  printf("--- Figure 9(a): execution time (ms) ---\n");
  time_table.Print();
  printf("\n--- Figure 9(b): relative aggregate error ---\n");
  err_table.Print();
  printf("\n--- Figure 9(c): refinement score ---\n");
  score_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
