// Figure 10(a) (Section 8.4.3): execution time vs table size, 1K-1M
// tuples (the 1K point mimics a sample-based deployment). d=3, ratio 0.3.

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t max_rows = EnvRows(100000);
  printf("Figure 10(a): varying table size (up to %zu rows, d=3, ratio=0.3, "
         "COUNT)\n\n", max_rows);
  TablePrinter time_table(
      {"rows", "ACQUIRE_ms", "TopK_ms", "TQGen_ms", "BinSearch_ms"});

  for (size_t rows : {size_t{1000}, size_t{10000}, size_t{100000},
                      size_t{1000000}}) {
    if (rows > max_rows) break;
    Catalog catalog = MakeLineitemCatalog(rows);
    RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, /*ratio=*/0.3);
    AcquireOptions acq_options;
    acq_options.delta = 0.05;
    MethodMetrics acq = RunAcquireMethod(rt.task, acq_options);
    MethodMetrics topk = RunTopKMethod(rt.task);
    MethodMetrics tqgen = RunTqGenMethod(rt.task);
    MethodMetrics binsearch = RunBinSearchMethod(rt.task);
    time_table.AddRow({std::to_string(rows), Ms(acq.time_ms),
                       Ms(topk.time_ms), Ms(tqgen.time_ms),
                       Ms(binsearch.time_ms)});
  }
  time_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
