// Google-benchmark microbenchmarks for the hot building blocks: joins,
// evaluation-layer box queries, incremental aggregate computation, grid
// generation and the workload samplers.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/zipf.h"
#include "core/expand.h"
#include "core/explore.h"
#include "exec/join.h"
#include "exec/parallel_evaluation.h"

namespace acquire {
namespace bench {
namespace {

const Catalog& SharedCatalog() {
  static Catalog* const kCatalog = new Catalog(MakeLineitemCatalog(50000));
  return *kCatalog;
}

const AcqTask& SharedTask() {
  static const RatioTask* const kTask =
      new RatioTask(MakeLineitemTask(SharedCatalog(), 3, 0.5));
  return kTask->task;
}

void BM_HashJoin(benchmark::State& state) {
  auto supplier = SharedCatalog().GetTable("supplier").value();
  auto partsupp = SharedCatalog().GetTable("partsupp").value();
  for (auto _ : state) {
    auto joined =
        HashJoin(supplier, partsupp, "s_suppkey", "ps_suppkey", "j");
    benchmark::DoNotOptimize(joined);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(partsupp->num_rows()));
}
BENCHMARK(BM_HashJoin);

void BM_BandJoin(benchmark::State& state) {
  auto supplier = SharedCatalog().GetTable("supplier").value();
  auto partsupp = SharedCatalog().GetTable("partsupp").value();
  const double band = static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto joined =
        BandJoin(supplier, partsupp, "s_suppkey", "ps_suppkey", band, "j");
    benchmark::DoNotOptimize(joined);
  }
}
BENCHMARK(BM_BandJoin)->Arg(0)->Arg(2)->Arg(8);

void BM_DirectBoxQuery(benchmark::State& state) {
  const AcqTask& task = SharedTask();
  DirectEvaluationLayer layer(&task);
  std::vector<PScoreRange> box(task.d(), PScoreRange{-1.0, 10.0});
  for (auto _ : state) {
    auto result = layer.EvaluateBox(box);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(task.relation->num_rows()));
}
BENCHMARK(BM_DirectBoxQuery);

void BM_CachedBoxQuery(benchmark::State& state) {
  const AcqTask& task = SharedTask();
  CachedEvaluationLayer layer(&task);
  benchmark::DoNotOptimize(layer.Prepare());
  std::vector<PScoreRange> box(task.d(), PScoreRange{-1.0, 10.0});
  for (auto _ : state) {
    auto result = layer.EvaluateBox(box);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(task.relation->num_rows()));
}
BENCHMARK(BM_CachedBoxQuery);

void BM_ParallelBoxQuery(benchmark::State& state) {
  const AcqTask& task = SharedTask();
  ParallelEvaluationLayer layer(&task, static_cast<size_t>(state.range(0)));
  benchmark::DoNotOptimize(layer.Prepare());
  std::vector<PScoreRange> box(task.d(), PScoreRange{-1.0, 10.0});
  for (auto _ : state) {
    auto result = layer.EvaluateBox(box);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(task.relation->num_rows()));
}
BENCHMARK(BM_ParallelBoxQuery)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GridIndexCellProbe(benchmark::State& state) {
  const AcqTask& task = SharedTask();
  RefinedSpace space(&task, 10.0, Norm::L1());
  GridIndexEvaluationLayer layer(&task, space.step());
  benchmark::DoNotOptimize(layer.Prepare());
  auto cell = space.CellBox({1, 2, 0});
  for (auto _ : state) {
    auto result = layer.EvaluateBox(cell);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_GridIndexCellProbe);

void BM_GridIndexBuild(benchmark::State& state) {
  const AcqTask& task = SharedTask();
  RefinedSpace space(&task, 10.0, Norm::L1());
  for (auto _ : state) {
    GridIndexEvaluationLayer layer(&task, space.step());
    benchmark::DoNotOptimize(layer.Prepare());
  }
}
BENCHMARK(BM_GridIndexBuild);

void BM_ExplorerLayerSweep(benchmark::State& state) {
  // Cost of incrementally evaluating the first N grid queries.
  const AcqTask& task = SharedTask();
  RefinedSpace space(&task, 10.0, Norm::L1());
  GridIndexEvaluationLayer layer(&task, space.step());
  benchmark::DoNotOptimize(layer.Prepare());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Explorer explorer(&space, &layer);
    BfsGenerator gen(&space);
    GridCoord coord;
    for (int i = 0; i < n && gen.Next(&coord); ++i) {
      benchmark::DoNotOptimize(explorer.ComputeAggregate(coord));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ExplorerLayerSweep)->Arg(100)->Arg(1000);

void BM_BfsGeneration(benchmark::State& state) {
  const AcqTask& task = SharedTask();
  RefinedSpace space(&task, 10.0, Norm::L1());
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BfsGenerator gen(&space);
    GridCoord coord;
    for (int i = 0; i < n && gen.Next(&coord); ++i) {
      benchmark::DoNotOptimize(coord);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_BfsGeneration)->Arg(1000)->Arg(10000);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_TopKRanking(benchmark::State& state) {
  const AcqTask& task = SharedTask();
  for (auto _ : state) {
    auto result = RunTopK(task, Norm::L1());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(task.relation->num_rows()));
}
BENCHMARK(BM_TopKRanking);

}  // namespace
}  // namespace bench
}  // namespace acquire

BENCHMARK_MAIN();
