// Section 8.4.4: robustness under skewed data. Re-runs the Figure 8 sweep
// on Zipf-skewed columns (the Chaudhuri-Narasayya Z=1 analogue) and prints
// uniform vs skewed side by side; the paper reports "trends were the same".

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void RunDistribution(const char* label, double theta, size_t rows) {
  printf("--- %s (zipf theta = %.1f) ---\n", label, theta);
  Catalog catalog = MakeLineitemCatalog(rows, theta);
  TablePrinter table({"ratio", "ACQUIRE_ms", "ACQUIRE_err", "ACQUIRE_score",
                      "BinSearch_ms", "BinSearch_err", "TQGen_ms",
                      "TQGen_err"});
  for (double ratio : {0.3, 0.5, 0.7}) {
    RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, ratio);
    AcquireOptions options;
    options.delta = 0.05;
    // Skew concentrates mass near the domain minimum, so reaching the same
    // COUNT ratio needs several times more refinement than under uniform
    // data; gamma scales with it to keep the grid volume comparable
    // (Theorem 1's guarantee is relative to the chosen gamma).
    options.gamma = 30.0;
    MethodMetrics acq = RunAcquireMethod(rt.task, options);
    MethodMetrics binsearch = RunBinSearchMethod(rt.task);
    MethodMetrics tqgen = RunTqGenMethod(rt.task);
    table.AddRow({StringFormat("%.1f", ratio), Ms(acq.time_ms),
                  Err(acq.error), Score(acq.qscore), Ms(binsearch.time_ms),
                  Err(binsearch.error), Ms(tqgen.time_ms), Err(tqgen.error)});
  }
  table.Print();
  printf("\n");
}

void Run() {
  const size_t rows = EnvRows(100000);
  printf("Section 8.4.4: data distribution robustness (rows=%zu, d=3, "
         "COUNT)\n\n", rows);
  RunDistribution("Uniform (Z=0)", 0.0, rows);
  RunDistribution("Skewed (Z=1)", 1.0, rows);
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
