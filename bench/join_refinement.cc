// Section 8.3's final evaluation axis: "performance of ACQUIRE under ...
// presence of join refinement". None of the compared techniques can refine
// join predicates (Section 8.2), so this bench characterizes ACQUIRE
// alone: an equi-join that must widen into a band join to meet a COUNT
// target, alongside a refinable select predicate, at several targets.

#include <cstdio>

#include "bench_util.h"
#include "exec/planner.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(50000);
  printf("Join refinement (supplier x partsupp band join, rows=%zu)\n\n",
         rows);
  Catalog catalog = MakeLineitemCatalog(rows);

  TablePrinter table({"target_factor", "ACQUIRE_ms", "explored",
                      "join_band", "select_pscore", "err", "satisfied"});
  for (double factor : {1.5, 2.0, 3.0}) {
    QuerySpec spec;
    spec.tables = {"supplier", "partsupp"};
    spec.joins.push_back(JoinClauseSpec{"s_suppkey", "ps_suppkey",
                                        /*refinable=*/true, /*band_cap=*/6.0,
                                        1.0});
    spec.predicates.push_back(SelectPredicateSpec{
        "s_acctbal", CompareOp::kLt, 3000.0, true, 1.0, {}});
    spec.agg_kind = AggregateKind::kCount;
    spec.constraint_op = ConstraintOp::kEq;
    spec.target = 1.0;
    auto task = PlanAcqTask(catalog, spec);
    ACQ_CHECK(task.ok()) << task.status().ToString();

    DirectEvaluationLayer probe(&*task);
    double base = probe.EvaluateQueryValue({0.0, 0.0}).value_or(0.0);
    task->constraint.target = base * factor;

    AcquireOptions options;
    options.delta = 0.05;
    Stopwatch sw;
    RefinedSpace space(&*task, options.gamma, options.norm);
    GridIndexEvaluationLayer layer(&*task, space.step());
    Status prep = layer.Prepare();
    ACQ_CHECK(prep.ok()) << prep.ToString();
    auto result = RunAcquire(*task, &layer, options);
    ACQ_CHECK(result.ok()) << result.status().ToString();
    const RefinedQuery& answer = result->queries.empty()
                                     ? result->best
                                     : result->queries.front();
    table.AddRow({StringFormat("%.1f", factor), Ms(sw.ElapsedMillis()),
                  std::to_string(result->queries_explored),
                  Score(answer.pscores.empty() ? 0.0 : answer.pscores[0]),
                  Score(answer.pscores.size() > 1 ? answer.pscores[1] : 0.0),
                  Err(answer.error), result->satisfied ? "yes" : "no"});
  }
  table.Print();
  printf("\njoin_band is the widened |s_suppkey - ps_suppkey| tolerance "
         "(PScore == value units for joins, Section 2.4).\n");
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
