// Sharded Explore merge: strategy sweep x thread-count scaling for the
// two-phase parallel layer merge (core/parallel_merge) against the
// sequential Eq. 17 drain. The bench drives the batched pipeline by hand —
// RefinedSpace + CellSortedEvaluationLayer + BfsGenerator + BatchExplorer —
// so it can inject pools of 1/2/4/8 workers into ParallelLayerMerger (the
// RunAcquire path always uses the process-shared pool). Every configuration
// must reproduce the sequential drain's aggregate checksum bit-for-bit
// before its time is reported.
//
// Emits one line of JSON on stdout (committed as BENCH_parallel_merge.json);
// human-readable progress goes to stderr. ACQ_BENCH_ROWS=<n> shrinks the
// catalog for a quick pass; the default is the paper-scale 10^6.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/expand.h"
#include "core/explore.h"
#include "core/parallel_merge.h"
#include "exec/thread_pool.h"
#include "index/cell_sorted.h"

namespace acquire {
namespace bench {
namespace {

struct MergeRun {
  double merge_ms = 0.0;  // min over reps: Eq. 17 merges + drain only
  double checksum = 0.0;  // sum of layer aggregates (bit-exact invariant)
  size_t layers = 0;
  size_t coords = 0;
  MergeStats stats;
};

// Drains BFS layers until ~`target_coords` coordinates have been merged,
// timing only the merge+drain of each layer (ExecuteLayer's batched cell
// evaluation is excluded — it is the same work in every configuration).
MergeRun RunMerge(const AcqTask& task, double gamma, double step,
                  MergeStrategy strategy, ThreadPool* pool,
                  size_t target_coords, int reps) {
  MergeRun best;
  best.merge_ms = 1e300;
  for (int r = 0; r < reps; ++r) {
    RefinedSpace space(&task, gamma, Norm::L1());
    CellSortedEvaluationLayer layer(&task, step);
    ACQ_CHECK(layer.Prepare().ok());
    BfsGenerator generator(&space);
    BatchExplorer batch(&space, &layer, &generator);
    ParallelLayerMerger merger(pool);

    MergeRun run;
    double merge_ms = 0.0;
    while (run.coords < target_coords && batch.NextLayer()) {
      ACQ_CHECK(batch.ExecuteLayer().ok());
      Stopwatch t_merge;
      if (strategy != MergeStrategy::kSequential) {
        const bool merged =
            batch.last_layer_in_sync() &&
            merger.MergeLayer(&batch.explorer(), batch.layer(), strategy,
                              nullptr);
        ACQ_CHECK(merged) << "forced strategy fell back to sequential";
      }
      for (const GridCoord& coord : batch.layer()) {
        auto aggregate = batch.explorer().ComputeAggregate(coord);
        ACQ_CHECK(aggregate.ok()) << aggregate.status().ToString();
        run.checksum += *aggregate;
      }
      merge_ms += t_merge.ElapsedMillis();
      ++run.layers;
      run.coords += batch.layer().size();
    }
    run.merge_ms = merge_ms;
    run.stats = merger.stats();
    if (r > 0) {
      ACQ_CHECK(best.checksum == run.checksum) << "checksum drift across reps";
    }
    if (run.merge_ms < best.merge_ms) {
      best = run;
    }
  }
  return best;
}

}  // namespace

int Main() {
  const size_t rows = EnvRows(1000000);
  const size_t d = 3;
  const double gamma = 12.0;
  const double step = gamma / static_cast<double>(d);
  // Enough coordinates that the top layers are wide (where sharding pays),
  // scaled down with the catalog for smoke runs.
  const size_t target_coords = std::max<size_t>(2000, rows / 5);
  const int reps = 3;

  Catalog catalog = MakeLineitemCatalog(rows);
  RatioTask ratio = MakeLineitemTask(catalog, d, 0.3);
  const AcqTask& task = ratio.task;

  fprintf(stderr, "parallel_merge_bench rows=%zu d=%zu target_coords=%zu\n",
          rows, d, target_coords);

  // Sequential reference (the pool is irrelevant: MergeLayer never runs).
  MergeRun seq =
      RunMerge(task, gamma, step, MergeStrategy::kSequential,
               /*pool=*/nullptr, target_coords, reps);
  fprintf(stderr, "sequential layers=%zu coords=%zu merge=%.1fms\n",
          seq.layers, seq.coords, seq.merge_ms);

  const MergeStrategy strategies[] = {MergeStrategy::kCentral,
                                      MergeStrategy::kTree,
                                      MergeStrategy::kRadix};
  const size_t thread_counts[] = {1, 2, 4, 8};

  std::string json = StringFormat(
      "{\"bench\":\"parallel_merge\",\"rows\":%zu,\"d\":%zu,"
      "\"layers\":%zu,\"coords\":%zu,\"sequential_merge_ms\":%.3f,"
      "\"configs\":[",
      rows, d, seq.layers, seq.coords, seq.merge_ms);
  bool first = true;
  double best_speedup = 0.0;

  TablePrinter table({"strategy", "threads", "merge_ms", "speedup"});
  for (size_t threads : thread_counts) {
    ThreadPool pool(threads);
    for (MergeStrategy strategy : strategies) {
      MergeRun run =
          RunMerge(task, gamma, step, strategy, &pool, target_coords, reps);
      // Same layers, same aggregates, bit for bit — otherwise the timing
      // comparison is meaningless.
      ACQ_CHECK(run.layers == seq.layers && run.coords == seq.coords &&
                run.checksum == seq.checksum)
          << MergeStrategyName(strategy) << " diverged from sequential";
      const double speedup =
          run.merge_ms > 0.0 ? seq.merge_ms / run.merge_ms : 0.0;
      best_speedup = std::max(best_speedup, speedup);
      fprintf(stderr, "strategy=%s threads=%zu merge=%.1fms speedup=%.2f\n",
              MergeStrategyName(strategy), threads, run.merge_ms, speedup);
      table.AddRow({MergeStrategyName(strategy), std::to_string(threads),
                    Ms(run.merge_ms), StringFormat("%.2f", speedup)});
      if (!first) json += ",";
      first = false;
      json += StringFormat(
          "{\"strategy\":\"%s\",\"threads\":%zu,\"merge_ms\":%.3f,"
          "\"speedup\":%.2f}",
          MergeStrategyName(strategy), threads, run.merge_ms, speedup);
    }
  }
  json += StringFormat("],\"best_speedup\":%.2f}", best_speedup);

  table.Print();
  printf("%s\n", json.c_str());
  return 0;
}

}  // namespace bench
}  // namespace acquire

int main() { return acquire::bench::Main(); }
