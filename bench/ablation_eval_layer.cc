// Ablation: the modular evaluation layer (Section 3). The same ACQUIRE
// search on (1) the direct layer — every cell query is a fresh relation
// scan, the faithful model of delegating execution to a DBMS without
// indexes; (2) the cached layer — per-tuple refinement distances are
// materialized once; (3) the Section 7.4 grid index — cell queries are
// O(1) probes and empty cells are skipped without touching data.

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(20000);
  printf("Ablation: evaluation layer choice (rows=%zu, d=3, ratio=0.3, "
         "COUNT)\n\n", rows);
  Catalog catalog = MakeLineitemCatalog(rows);
  TablePrinter table({"layer", "total_ms", "cell_queries", "tuples_scanned",
                      "satisfied"});

  for (double ratio : {0.3, 0.6}) {
    RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, ratio);
    AcquireOptions options;
    options.delta = 0.05;
    RefinedSpace space(&rt.task, options.gamma, options.norm);

    auto run = [&](const char* name, EvaluationLayer* layer) {
      Stopwatch sw;
      Status prep = layer->Prepare();
      ACQ_CHECK(prep.ok()) << prep.ToString();
      auto result = RunAcquire(rt.task, layer, options);
      ACQ_CHECK(result.ok()) << result.status().ToString();
      table.AddRow({StringFormat("%s (ratio %.1f)", name, ratio),
                    Ms(sw.ElapsedMillis()),
                    std::to_string(result->cell_queries),
                    std::to_string(layer->stats().tuples_scanned),
                    result->satisfied ? "yes" : "no"});
    };

    DirectEvaluationLayer direct(&rt.task);
    run("direct-scan", &direct);
    CachedEvaluationLayer cached(&rt.task);
    run("cached-distances", &cached);
    GridIndexEvaluationLayer indexed(&rt.task, space.step());
    run("grid-index", &indexed);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
