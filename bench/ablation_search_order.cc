// Ablation: Expand-phase search order. The paper's BFS (Algorithm 1)
// explores complete coordinate-sum layers; for non-L1 norms the layer
// boundary only approximates equi-QScore surfaces, so a best-first order
// by exact QScore can reach the first answer with fewer grid queries.
// The shell generator (Algorithm 2) is exact for L-infinity.

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(100000);
  printf("Ablation: search order (rows=%zu, d=3, ratio=0.4, delta=0.05)\n\n",
         rows);
  Catalog catalog = MakeLineitemCatalog(rows);
  RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, /*ratio=*/0.4);

  TablePrinter table({"norm", "order", "explored", "first_hit_qscore",
                      "time_ms"});
  struct Config {
    const char* norm_name;
    Norm norm;
    SearchOrder order;
    const char* order_name;
  };
  const Config configs[] = {
      {"L1", Norm::L1(), SearchOrder::kBfs, "bfs"},
      {"L1", Norm::L1(), SearchOrder::kBestFirst, "best-first"},
      {"L2", Norm::L2(), SearchOrder::kBfs, "bfs"},
      {"L2", Norm::L2(), SearchOrder::kBestFirst, "best-first"},
      {"Linf", Norm::LInf(), SearchOrder::kShell, "shell"},
      {"Linf", Norm::LInf(), SearchOrder::kBestFirst, "best-first"},
  };
  for (const Config& config : configs) {
    AcquireOptions options;
    options.delta = 0.05;
    options.norm = config.norm;
    options.order = config.order;
    Stopwatch sw;
    RefinedSpace space(&rt.task, options.gamma, options.norm);
    GridIndexEvaluationLayer layer(&rt.task, space.step());
    Status prep = layer.Prepare();
    ACQ_CHECK(prep.ok()) << prep.ToString();
    auto result = RunAcquire(rt.task, &layer, options);
    ACQ_CHECK(result.ok()) << result.status().ToString();
    double qscore =
        result->queries.empty() ? -1.0 : result->queries.front().qscore;
    table.AddRow({config.norm_name, config.order_name,
                  std::to_string(result->queries_explored), Score(qscore),
                  Ms(sw.ElapsedMillis())});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
