// Durability tax: append throughput of the per-tenant WAL under each fsync
// policy (never / batch / always), the CRC32C frame checksum rate, and
// replay speed at recovery. The interesting ratio is always-vs-batch —
// what a strict durability guarantee costs per acked APPEND — and
// replay-vs-append, which bounds restart time as a multiple of ingest
// time. Before any number is reported the replayed log is asserted
// bit-exact: every appended record comes back, in order, with the same
// generation stamps, and the tail is not torn.
//
// Emits one line of JSON on stdout (committed as BENCH_wal.json);
// human-readable progress goes to stderr. ACQ_BENCH_ROWS scales the
// record count for a quick smoke pass.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/wal.h"

namespace acquire {
namespace bench {
namespace {

namespace fs = std::filesystem;

constexpr size_t kRowsPerRecord = 8;

WalAppendRecord MakeRecord(uint64_t generation) {
  WalAppendRecord record;
  record.table = "users";
  record.generation = generation;
  record.rows.reserve(kRowsPerRecord);
  for (size_t r = 0; r < kRowsPerRecord; ++r) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(9000 + generation * 8 + r));
    row.emplace_back(static_cast<int64_t>(20 + r));
    row.emplace_back(55000.0 + static_cast<double>(r));
    row.emplace_back(0.25 + 0.01 * static_cast<double>(r));
    row.emplace_back(static_cast<int64_t>(120 + r));
    row.emplace_back(std::string("portland"));
    row.emplace_back(std::string("f"));
    row.emplace_back(std::string("bs"));
    row.emplace_back(std::string("cooking"));
    record.rows.push_back(std::move(row));
  }
  return record;
}

struct PolicyRun {
  std::string policy;
  size_t records = 0;
  double append_ms = 0.0;
  uint64_t bytes = 0;
  uint64_t syncs = 0;
};

PolicyRun RunPolicy(const std::string& dir, FsyncPolicy policy,
                    size_t records) {
  PolicyRun run;
  run.policy = FsyncPolicyToString(policy);
  run.records = records;
  const std::string path =
      dir + "/wal-" + FsyncPolicyToString(policy) + ".log";
  auto writer = WalWriter::Open(path, policy);
  ACQ_CHECK(writer.ok()) << writer.status().ToString();
  Stopwatch sw;
  for (size_t i = 0; i < records; ++i) {
    ACQ_CHECK((*writer)->Append(MakeRecord(i + 1)).ok());
  }
  ACQ_CHECK((*writer)->Sync().ok());
  run.append_ms = sw.ElapsedMillis();
  run.bytes = (*writer)->bytes();
  run.syncs = (*writer)->syncs();
  return run;
}

double PerSec(size_t count, double ms) {
  return ms > 0.0 ? static_cast<double>(count) * 1000.0 / ms : 0.0;
}

}  // namespace

int Main() {
  const size_t records = EnvRows(20000) / kRowsPerRecord;
  // fsync-per-record is orders of magnitude slower; a shorter run still
  // exposes the per-record sync cost without minutes of wall clock.
  const size_t always_records = std::max<size_t>(records / 20, 16);
  const std::string dir =
      (fs::temp_directory_path() / "acq_wal_bench").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  std::vector<PolicyRun> runs;
  runs.push_back(RunPolicy(dir, FsyncPolicy::kNever, records));
  runs.push_back(RunPolicy(dir, FsyncPolicy::kBatch, records));
  runs.push_back(RunPolicy(dir, FsyncPolicy::kAlways, always_records));

  // Replay the kNever log and prove it bit-exact before timing means
  // anything: same record count, same row count, generations in sequence,
  // no torn tail.
  const std::string replay_path = dir + "/wal-never.log";
  uint64_t next_generation = 1;
  size_t replayed_rows = 0;
  WalReplayStats replay_stats;
  Stopwatch replay_sw;
  Status replayed = ReplayWal(
      replay_path,
      [&](const WalAppendRecord& record) -> Status {
        ACQ_CHECK(record.generation == next_generation)
            << "generation stamps out of order";
        ACQ_CHECK(record.table == "users");
        ++next_generation;
        replayed_rows += record.rows.size();
        return Status::OK();
      },
      &replay_stats);
  const double replay_ms = replay_sw.ElapsedMillis();
  ACQ_CHECK(replayed.ok()) << replayed.ToString();
  ACQ_CHECK(replay_stats.records == records) << "lost records on replay";
  ACQ_CHECK(replayed_rows == records * kRowsPerRecord);
  ACQ_CHECK(!replay_stats.torn_tail) << "clean log reported torn";

  // Raw CRC32C rate over the same payload volume (the per-frame integrity
  // cost inside every append and every replay step).
  const std::string payload(1 << 20, 'x');
  Stopwatch crc_sw;
  uint32_t crc = 0;
  constexpr int kCrcReps = 64;
  for (int i = 0; i < kCrcReps; ++i) {
    crc = Crc32c(payload.data(), payload.size(), crc);
  }
  const double crc_ms = crc_sw.ElapsedMillis();
  ACQ_CHECK(crc != 0);
  const double crc_mb_s =
      PerSec(kCrcReps * payload.size(), crc_ms) / (1024.0 * 1024.0);

  TablePrinter table({"policy", "records", "rec/s", "MB/s", "syncs"});
  std::string json = StringFormat(
      "{\"bench\":\"wal\",\"rows_per_record\":%zu,\"policies\":[",
      kRowsPerRecord);
  for (size_t i = 0; i < runs.size(); ++i) {
    const PolicyRun& run = runs[i];
    const double rec_s = PerSec(run.records, run.append_ms);
    const double mb_s =
        PerSec(run.bytes, run.append_ms) / (1024.0 * 1024.0);
    table.AddRow({run.policy, StringFormat("%zu", run.records),
                  StringFormat("%.0f", rec_s), StringFormat("%.1f", mb_s),
                  StringFormat("%llu",
                               static_cast<unsigned long long>(run.syncs))});
    json += StringFormat(
        "%s{\"policy\":\"%s\",\"records\":%zu,\"append_ms\":%.3f,"
        "\"records_per_s\":%.1f,\"mb_per_s\":%.2f,\"syncs\":%llu}",
        i == 0 ? "" : ",", run.policy.c_str(), run.records, run.append_ms,
        rec_s, mb_s, static_cast<unsigned long long>(run.syncs));
  }
  const double replay_rec_s = PerSec(records, replay_ms);
  json += StringFormat(
      "],\"replay\":{\"records\":%zu,\"replay_ms\":%.3f,"
      "\"records_per_s\":%.1f},\"crc32c_mb_per_s\":%.1f}",
      records, replay_ms, replay_rec_s, crc_mb_s);
  fprintf(stderr, "replay: %zu records in %.2fms (%.0f rec/s), crc32c %.0f "
          "MB/s\n",
          records, replay_ms, replay_rec_s, crc_mb_s);
  table.Print();
  printf("%s\n", json.c_str());
  fs::remove_all(dir);
  return 0;
}

}  // namespace bench
}  // namespace acquire

int main() { return acquire::bench::Main(); }
