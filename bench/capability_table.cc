// Table 1 (Section 9): capability matrix of the implemented techniques —
// which aggregates each supports, whether it minimizes proximity to the
// original query, and whether it meets cardinality/aggregate targets.
// Each claim is verified live against small tasks, not just asserted.

#include <cstdio>

#include "bench_util.h"

namespace acquire {
namespace bench {
namespace {

const char* YesNo(bool b) { return b ? "yes" : "no"; }

void Run() {
  printf("Table 1: related-work capability matrix (verified live)\n\n");
  Catalog catalog = MakeLineitemCatalog(20000);

  // COUNT task for everyone; SUM task to probe aggregate generality.
  RatioTask count_task = MakeLineitemTask(catalog, 2, 0.5);
  RatioTask sum_task =
      MakeLineitemTask(catalog, 2, 0.5, AggregateKind::kSum);

  AcquireOptions acq_options;
  MethodMetrics acq_count = RunAcquireMethod(count_task.task, acq_options);
  MethodMetrics acq_sum = RunAcquireMethod(sum_task.task, acq_options);

  MethodMetrics topk_count = RunTopKMethod(count_task.task);
  bool topk_sum_supported = RunTopK(sum_task.task, Norm::L1()).ok();

  MethodMetrics bin_count = RunBinSearchMethod(count_task.task);
  MethodMetrics bin_sum;
  {
    DirectEvaluationLayer layer(&sum_task.task);
    auto r = RunBinSearch(sum_task.task, &layer, Norm::L1(), {});
    bin_sum.ok = r.ok() && r->satisfied;
  }
  MethodMetrics tq_count = RunTqGenMethod(count_task.task);

  TablePrinter table({"technique", "COUNT", "SUM/MIN/MAX/AVG/UDA",
                      "proximity", "card./agg. target"});
  table.AddRow({"Top-k (tuple-oriented)", YesNo(topk_count.ok),
                YesNo(topk_sum_supported), "yes", "yes"});
  table.AddRow({"BinSearch (query-oriented)", YesNo(bin_count.ok),
                YesNo(bin_sum.ok), "no", "yes"});
  table.AddRow({"TQGen (query-oriented)", YesNo(tq_count.ok), "no", "no",
                "yes"});
  table.AddRow({"ACQUIRE", YesNo(acq_count.ok), YesNo(acq_sum.ok), "yes",
                "yes"});
  table.Print();

  printf("\nNotes: Top-k cannot express non-COUNT constraints (rejected at "
         "runtime); BinSearch/TQGen as implemented can probe other OSP "
         "aggregates but, exactly as the paper argues, make no proximity "
         "promise; ACQUIRE handles every OSP aggregate (AVG via SUM/COUNT, "
         "UDAs via the registry) while minimizing refinement. None of the "
         "baselines refines join predicates; ACQUIRE's JoinDim does.\n");
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
