#ifndef ACQUIRE_BENCH_BENCH_UTIL_H_
#define ACQUIRE_BENCH_BENCH_UTIL_H_

// Shared harness for the paper-figure benchmarks (Section 8).
//
// Cost model. All baselines execute full refined queries against a
// DirectEvaluationLayer — one relation scan per probe, modelling the
// paper's "all query execution tasks are delegated to the DBMS". ACQUIRE
// runs against the Section 7.4 grid-index evaluation layer (its build time
// is charged to ACQUIRE), realizing the paper's premise that a cell query
// touches only its own cell and is executed at most once; the
// ablation_eval_layer bench quantifies exactly what this choice is worth.

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"

#include "baselines/binsearch.h"
#include "baselines/topk.h"
#include "baselines/tqgen.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/acquire.h"
#include "index/grid_index.h"
#include "workload/tpch_gen.h"
#include "workload/workload.h"

namespace acquire {
namespace bench {

inline size_t EnvRows(size_t dflt) {
  if (const char* full = std::getenv("ACQ_BENCH_FULL");
      full != nullptr && full[0] == '1') {
    return 1000000;
  }
  if (const char* rows = std::getenv("ACQ_BENCH_ROWS")) {
    auto parsed = ParseNumberWithSuffix(rows);
    if (parsed.ok() && *parsed > 0) return static_cast<size_t>(*parsed);
  }
  return dflt;
}

/// Measured outcome of one technique on one task.
struct MethodMetrics {
  double time_ms = 0.0;
  double error = 0.0;
  double qscore = 0.0;
  uint64_t queries = 0;  // (cell) queries executed against the layer
  bool ok = false;
};

inline Catalog MakeLineitemCatalog(size_t rows, double zipf_theta = 0.0,
                                   uint64_t seed = 42) {
  Catalog catalog;
  TpchOptions options;
  options.lineitems = rows;
  options.suppliers = std::max<size_t>(100, rows / 200);
  options.parts = std::max<size_t>(200, rows / 100);
  options.zipf_theta = zipf_theta;
  options.seed = seed;
  Status s = GenerateTpch(options, &catalog);
  ACQ_CHECK(s.ok()) << s.ToString();
  return catalog;
}

inline RatioTask MakeLineitemTask(const Catalog& catalog, size_t d,
                                  double ratio,
                                  AggregateKind agg = AggregateKind::kCount) {
  static const char* const kColumns[] = {"l_quantity", "l_extendedprice",
                                         "l_shipdays", "l_discount", "l_tax"};
  RatioTaskOptions options;
  options.table = "lineitem";
  options.columns.assign(kColumns, kColumns + d);
  // Highly selective original query, so even ratio 0.1 (Aexp = 10x the
  // original aggregate) stays reachable inside the data domain.
  options.selectivity = 0.05;
  options.ratio = ratio;
  options.agg_kind = agg;
  if (agg != AggregateKind::kCount) options.agg_column = "l_extendedprice";
  auto task = BuildRatioTask(catalog, options);
  ACQ_CHECK(task.ok()) << task.status().ToString();
  return std::move(task).value();
}

inline MethodMetrics RunAcquireMethod(const AcqTask& task,
                                      AcquireOptions options = {}) {
  MethodMetrics m;
  Stopwatch sw;
  RefinedSpace space(&task, options.gamma, options.norm);
  GridIndexEvaluationLayer layer(&task, space.step());
  Status prep = layer.Prepare();  // index build is charged to ACQUIRE
  if (!prep.ok()) return m;
  auto result = RunAcquire(task, &layer, options);
  m.time_ms = sw.ElapsedMillis();
  if (!result.ok()) return m;
  m.ok = result->satisfied;
  const RefinedQuery& answer =
      result->queries.empty() ? result->best : result->queries.front();
  m.error = answer.error;
  m.qscore = answer.qscore;
  m.queries = result->cell_queries;
  return m;
}

inline MethodMetrics RunTopKMethod(const AcqTask& task) {
  MethodMetrics m;
  auto result = RunTopK(task, Norm::L1());
  if (!result.ok()) return m;
  m.ok = result->satisfied;
  m.time_ms = result->elapsed_ms;
  m.error = result->error;
  m.qscore = result->qscore;
  m.queries = result->queries_executed;
  return m;
}

inline MethodMetrics RunBinSearchMethod(const AcqTask& task,
                                        BinSearchOptions options = {}) {
  MethodMetrics m;
  DirectEvaluationLayer layer(&task);
  auto result = RunBinSearch(task, &layer, Norm::L1(), options);
  if (!result.ok()) return m;
  m.ok = result->satisfied;
  m.time_ms = result->elapsed_ms;
  m.error = result->error;
  m.qscore = result->qscore;
  m.queries = result->queries_executed;
  return m;
}

inline MethodMetrics RunTqGenMethod(const AcqTask& task,
                                    TqGenOptions options = {}) {
  MethodMetrics m;
  DirectEvaluationLayer layer(&task);
  auto result = RunTqGen(task, &layer, Norm::L1(), options);
  if (!result.ok()) return m;
  m.ok = result->satisfied;
  m.time_ms = result->elapsed_ms;
  m.error = result->error;
  m.qscore = result->qscore;
  m.queries = result->queries_executed;
  return m;
}

/// BinSearch run over several deterministic predicate orders; reports the
/// median time and the min/max error, exposing the order instability the
/// paper highlights in Figures 8(b) and 9(b).
struct BinSearchSpread {
  double median_time_ms = 0.0;
  double min_error = 0.0;
  double max_error = 0.0;
  double min_qscore = 0.0;
  double max_qscore = 0.0;
};

inline BinSearchSpread RunBinSearchOrders(const AcqTask& task,
                                          int num_orders = 4) {
  std::vector<double> times;
  BinSearchSpread spread;
  spread.min_error = 1e300;
  spread.min_qscore = 1e300;
  std::vector<size_t> order(task.d());
  for (size_t i = 0; i < task.d(); ++i) order[i] = i;
  Rng rng(123);
  for (int trial = 0; trial < num_orders; ++trial) {
    BinSearchOptions options;
    options.order = order;
    MethodMetrics m = RunBinSearchMethod(task, options);
    times.push_back(m.time_ms);
    spread.min_error = std::min(spread.min_error, m.error);
    spread.max_error = std::max(spread.max_error, m.error);
    spread.min_qscore = std::min(spread.min_qscore, m.qscore);
    spread.max_qscore = std::max(spread.max_qscore, m.qscore);
    rng.Shuffle(&order);
  }
  std::sort(times.begin(), times.end());
  spread.median_time_ms = times[times.size() / 2];
  return spread;
}

/// Fixed-width text table writer for paper-style series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < row.size(); ++c) {
        printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      printf("\n");
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Ms(double v) { return StringFormat("%.1f", v); }
inline std::string Err(double v) { return StringFormat("%.4f", v); }
inline std::string Score(double v) { return StringFormat("%.2f", v); }

}  // namespace bench
}  // namespace acquire

#endif  // ACQUIRE_BENCH_BENCH_UTIL_H_
