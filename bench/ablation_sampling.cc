// Ablation: approximate evaluation layers (Section 3's estimation/sampling
// modularity). ACQUIRE runs on Bernoulli samples of varying rate and on the
// histogram estimator; every recommended query is then validated against
// the full data to expose the estimation error the user would actually
// see. The 1K-row point of Figure 10(a) is the paper's own nod to
// sample-based deployment.

#include <cstdio>

#include "bench_util.h"
#include "exec/approx_evaluation.h"

namespace acquire {
namespace bench {
namespace {

void Run() {
  const size_t rows = EnvRows(100000);
  printf("Ablation: sampling/estimation evaluation layers (rows=%zu, d=3, "
         "ratio=0.4, COUNT)\n\n", rows);
  Catalog catalog = MakeLineitemCatalog(rows);
  RatioTask rt = MakeLineitemTask(catalog, /*d=*/3, /*ratio=*/0.4);
  AcquireOptions options;
  options.delta = 0.05;

  DirectEvaluationLayer truth(&rt.task);
  TablePrinter table({"layer", "time_ms", "claimed_err", "true_err",
                      "satisfied"});

  auto run = [&](const char* name, EvaluationLayer* layer) {
    Stopwatch sw;
    Status prep = layer->Prepare();
    ACQ_CHECK(prep.ok()) << prep.ToString();
    auto result = RunAcquire(rt.task, layer, options);
    ACQ_CHECK(result.ok()) << result.status().ToString();
    double elapsed = sw.ElapsedMillis();
    const RefinedQuery& answer = result->queries.empty()
                                     ? result->best
                                     : result->queries.front();
    double true_value =
        truth.EvaluateQueryValue(answer.pscores).value_or(0.0);
    double true_err =
        DefaultAggregateError(rt.task.constraint, true_value);
    table.AddRow({name, Ms(elapsed), Err(answer.error), Err(true_err),
                  result->satisfied ? "yes" : "no"});
  };

  CachedEvaluationLayer exact(&rt.task);
  run("exact (cached)", &exact);
  for (double rate : {0.2, 0.05, 0.01}) {
    SamplingEvaluationLayer sampled(&rt.task, rate);
    run(StringFormat("sample %.0f%%", rate * 100).c_str(), &sampled);
  }
  HistogramEvaluationLayer hist64(&rt.task, 64);
  run("histogram (64 buckets, AVI)", &hist64);
  HistogramEvaluationLayer hist512(&rt.task, 512);
  run("histogram (512 buckets, AVI)", &hist512);

  table.Print();
  printf("\nclaimed_err is what the approximate layer believes; true_err "
         "re-evaluates the recommended query on the full data.\n");
}

}  // namespace
}  // namespace bench
}  // namespace acquire

int main() {
  acquire::bench::Run();
  return 0;
}
