// Quickstart: the whole ACQUIRE workflow in one file.
//
//  1. build a table and register it in a catalog,
//  2. write an Aggregation Constrained Query in SQL
//     (CONSTRAINT + NOREFINE keywords, Section 2.1 of the paper),
//  3. plan it, run ACQUIRE, and print the recommended refined queries.
//
// Run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "common/random.h"
#include "core/acquire.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "storage/catalog.h"

using namespace acquire;  // NOLINT — brevity in example code

int main() {
  // --- 1. A products table with 10,000 rows. ---
  Catalog catalog;
  auto products = std::make_shared<Table>(
      "products", Schema({{"product_id", DataType::kInt64, ""},
                          {"price", DataType::kDouble, ""},
                          {"rating", DataType::kDouble, ""},
                          {"category", DataType::kString, ""}}));
  const char* categories[] = {"electronics", "home", "toys", "sports"};
  Rng rng(2024);
  for (int64_t id = 1; id <= 10000; ++id) {
    Status s = products->AppendRow(
        {Value(id), Value(rng.NextDouble(1.0, 500.0)),
         Value(rng.NextDouble(1.0, 5.0)),
         Value(categories[rng.NextBounded(4)])});
    if (!s.ok()) {
      fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (Status s = catalog.AddTable(products); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // --- 2. An ACQ: we want exactly ~2000 cheap, well-rated products, but
  // the original predicates only match a few hundred. The category filter
  // must not change (NOREFINE). ---
  const char* sql =
      "SELECT * FROM products "
      "CONSTRAINT COUNT(*) = 2K "
      "WHERE price < 50 AND rating >= 4.5 "
      "AND category IN ('electronics', 'toys') NOREFINE";

  // --- 3. Parse + bind + plan, then run ACQUIRE. ---
  Binder binder(&catalog);
  auto task = binder.PlanSql(sql);
  if (!task.ok()) {
    fprintf(stderr, "planning failed: %s\n", task.status().ToString().c_str());
    return 1;
  }
  printf("Original ACQ:\n%s\n\n", RenderOriginalSql(*task).c_str());

  CachedEvaluationLayer layer(&*task);
  AcquireOptions options;
  options.gamma = 10.0;  // proximity threshold (Definition 1b)
  options.delta = 0.05;  // aggregate error threshold (Definition 1a)
  auto result = RunAcquire(*task, &layer, options);
  if (!result.ok()) {
    fprintf(stderr, "ACQUIRE failed: %s\n",
            result.status().ToString().c_str());
    return 1;
  }

  if (!result->satisfied) {
    printf("No refinement met the constraint; closest query:\n  %s\n",
           result->best.ToString().c_str());
    return 0;
  }
  printf("ACQUIRE examined %llu refined queries (%llu cell executions) in "
         "%.1f ms and recommends:\n\n",
         static_cast<unsigned long long>(result->queries_explored),
         static_cast<unsigned long long>(result->cell_queries),
         result->elapsed_ms);
  for (size_t i = 0; i < result->queries.size(); ++i) {
    const RefinedQuery& q = result->queries[i];
    printf("#%zu  QScore=%.2f  COUNT=%g  error=%.3f\n%s\n\n", i + 1,
           q.qscore, q.aggregate, q.error,
           RenderRefinedSql(*task, q).c_str());
  }
  return 0;
}
