// ACQ service daemon: serves the newline-delimited JSON protocol of
// server/server.h over a catalog that is generated or loaded at startup
// and then treated as read-only.
//
//   ./build/examples/acq_serve --gen users --rows 50000
//   ./build/examples/acq_serve --loaddb /path/to/db --port 7411
//
// Talk to it with anything that speaks line-delimited JSON, e.g.:
//
//   printf '%s\n' '{"cmd":"SUBMIT","wait":true,"sql":"SELECT * FROM users
//     CONSTRAINT COUNT(*) >= 2000 WHERE age <= 30 AND income >= 60000;"}'
//     | nc 127.0.0.1 7411            (one line, pipe into nc)
//
// Flags:
//   --port N               listen port (default 7411; 0 = ephemeral)
//   --gen tpch|users|patients   generate a synthetic catalog
//   --rows N               generator size (default 20000)
//
// The catalog is mutable while serving through the APPEND verb only (live
// ingestion; every batch bumps the catalog generation and invalidates
// cached results).
//   --loaddb DIR           load a catalog saved by acq_shell's \savedb
//   --max-running N        concurrent runs admitted (default: half the pool)
//   --max-queue N          queued requests beyond that (default 64)
//   --default-timeout-ms N deadline for SUBMITs without one (default: none)
//   --memory-budget-bytes N  soft per-run memory budget for SUBMITs without
//                          one; budget-stopped runs report resource_exhausted
//   --global-memory-budget-bytes N  process-wide budget carved into
//                          weight-proportional per-tenant shares by the
//                          resource governor (idle shares lent to active
//                          tenants); 0 = no memory governance
//   --cache-bytes N        result-cache byte limit; repeat SUBMITs of a
//                          completed task answer from the cache and
//                          identical in-flight tasks dedup onto one run
//                          (default 0 = cache off)
//   --cache-file PATH      persist the result cache: loaded at startup
//                          (entries whose catalog generation no longer
//                          matches are dropped) and saved on clean
//                          shutdown. Needs --cache-bytes > 0.
//   --idle-timeout-ms N    close connections idle longer than this (default:
//                          never)
//   --max-line-bytes N     reject request lines longer than this (default
//                          1 MiB; 0 = unbounded)
//   --failpoints SPEC      arm fault-injection sites, e.g.
//                          "server.recv=p:0.05;server.admit=every:100"
//                          (also honours the ACQUIRE_FAILPOINTS env var)
//   --wal-dir DIR          durability root: APPENDs are write-ahead logged
//                          (and ATTACH/DETACH manifest-logged) under DIR
//                          before they are acked, and a restart recovers
//                          exactly the acked state — checkpoints first,
//                          then the per-tenant logs, truncating any torn
//                          tail left by a crash (default: no durability)
//   --fsync never|batch|always   when logged records reach stable storage
//                          (default batch; see storage/wal.h)
//   --checkpoint-interval-appends N   snapshot + trim a tenant's log every
//                          N logged appends (default 0: checkpoint only at
//                          clean shutdown)
//   --drain-timeout-ms N   on SIGTERM/SIGINT, wait up to this long for
//                          in-flight runs to finish before cancelling the
//                          remainder (default 5000)
//
// Exit status: 0 clean shutdown, 1 startup error, 4 when any run ended
// resource_exhausted (so harnesses notice budget-degraded service).

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/failpoint.h"
#include "server/server.h"
#include "storage/persistence.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Fail(const std::string& message) {
  std::fprintf(stderr, "acq_serve: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  options.port = 7411;
  std::string gen;
  std::string loaddb;
  std::string cache_file;
  size_t rows = 20000;
  double drain_timeout_ms = 5000.0;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--port" && (value = next())) {
      options.port = std::atoi(value);
    } else if (flag == "--gen" && (value = next())) {
      gen = value;
    } else if (flag == "--rows" && (value = next())) {
      rows = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--loaddb" && (value = next())) {
      loaddb = value;
    } else if (flag == "--max-running" && (value = next())) {
      options.max_running = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--max-queue" && (value = next())) {
      options.max_queued = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--default-timeout-ms" && (value = next())) {
      options.default_timeout_ms = std::atof(value);
    } else if (flag == "--memory-budget-bytes" && (value = next())) {
      options.default_memory_budget_bytes =
          static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--global-memory-budget-bytes" && (value = next())) {
      options.global_memory_budget_bytes =
          static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--cache-bytes" && (value = next())) {
      options.cache_bytes = static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--cache-file" && (value = next())) {
      cache_file = value;
    } else if (flag == "--idle-timeout-ms" && (value = next())) {
      options.idle_timeout_ms = std::atof(value);
    } else if (flag == "--max-line-bytes" && (value = next())) {
      options.max_line_bytes = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--wal-dir" && (value = next())) {
      options.wal_dir = value;
    } else if (flag == "--fsync" && (value = next())) {
      Result<FsyncPolicy> policy = FsyncPolicyFromString(value);
      if (!policy.ok()) return Fail(policy.status().ToString());
      options.fsync = *policy;
    } else if (flag == "--checkpoint-interval-appends" && (value = next())) {
      options.checkpoint_interval_appends =
          static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--drain-timeout-ms" && (value = next())) {
      drain_timeout_ms = std::atof(value);
    } else if (flag == "--failpoints" && (value = next())) {
      if (!FailpointRegistry::compiled_in()) {
        return Fail("--failpoints: this build compiled failpoints out "
                    "(-DACQUIRE_FAILPOINTS_ENABLED=OFF)");
      }
      Status armed = FailpointRegistry::Global().ConfigureFromSpec(value);
      if (!armed.ok()) return Fail(armed.ToString());
    } else {
      return Fail("unknown or incomplete flag: " + flag +
                  " (see the header of acq_serve.cc)");
    }
  }
  if (gen.empty() == loaddb.empty()) {
    return Fail("exactly one of --gen or --loaddb is required");
  }

  Catalog catalog;
  Status load = Status::OK();
  if (!loaddb.empty()) {
    load = LoadCatalog(loaddb, &catalog);
  } else if (gen == "tpch") {
    TpchOptions tpch;
    tpch.lineitems = rows;
    tpch.suppliers = std::max<size_t>(100, rows / 200);
    tpch.parts = std::max<size_t>(200, rows / 100);
    load = GenerateTpch(tpch, &catalog);
  } else if (gen == "users") {
    UsersOptions users;
    users.users = rows;
    load = GenerateUsers(users, &catalog);
  } else if (gen == "patients") {
    PatientsOptions patients;
    patients.patients = rows;
    load = GeneratePatients(patients, &catalog);
  } else {
    return Fail("unknown generator '" + gen + "' (tpch|users|patients)");
  }
  if (!load.ok()) return Fail(load.ToString());
  for (const std::string& name : catalog.TableNames()) {
    auto table = catalog.GetTable(name);
    std::printf("table %s: %zu rows\n", name.c_str(), (*table)->num_rows());
  }

  if (!cache_file.empty() && options.cache_bytes == 0) {
    return Fail("--cache-file needs --cache-bytes > 0");
  }

  AcqServer server(&catalog, options);
  if (!options.wal_dir.empty()) {
    // One line per durable tenant, so harnesses (and people) can see what
    // recovery replayed before the listening line appears.
    for (const TenantPtr& tenant : server.tenants().List()) {
      const TenantDurability* durability = tenant->durability();
      if (durability == nullptr) continue;
      const TenantDurability::Recovery& rec = durability->recovery();
      std::printf(
          "recovery %s: checkpoint=%s gen=%llu wal_records=%zu wal_rows=%zu "
          "skipped=%zu torn_tail=%s\n",
          tenant->id().c_str(), rec.checkpoint_loaded ? "yes" : "no",
          static_cast<unsigned long long>(rec.checkpoint_generation),
          rec.wal_records, rec.wal_rows, rec.wal_skipped,
          rec.wal_torn_tail ? "yes" : "no");
    }
  }
  if (!cache_file.empty()) {
    size_t loaded = 0, dropped = 0;
    Status warm = server.sessions().cache().LoadFromFile(
        cache_file, catalog.generation(), &loaded, &dropped);
    if (warm.ok()) {
      std::printf("cache file %s: %zu entries loaded, %zu stale dropped\n",
                  cache_file.c_str(), loaded, dropped);
    } else if (warm.code() == StatusCode::kNotFound) {
      std::printf("cache file %s: absent, starting cold\n",
                  cache_file.c_str());
    } else {
      // A corrupt snapshot must not block serving; it is simply ignored
      // (and overwritten on shutdown).
      std::printf("cache file %s: ignored (%s)\n", cache_file.c_str(),
                  warm.ToString().c_str());
    }
  }
  Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::printf("acq_serve listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) pause();
  std::printf("shutting down\n");
  // Graceful: let in-flight runs finish (bounded), then stop — which also
  // checkpoints every durable tenant so restart recovers from snapshots.
  server.Drain(drain_timeout_ms);
  server.Stop();
  if (!cache_file.empty()) {
    Status saved = server.sessions().cache().SaveToFile(cache_file);
    if (saved.ok()) {
      std::printf("cache saved to %s\n", cache_file.c_str());
    } else {
      std::printf("cache save failed: %s\n", saved.ToString().c_str());
    }
  }

  const ServerCounters counters = server.sessions().counters();
  std::printf(
      "served: %llu submitted, %llu completed, %llu truncated, "
      "%llu deadline_exceeded, %llu cancelled, %llu resource_exhausted, "
      "%llu failed, %llu rejected\n",
      static_cast<unsigned long long>(counters.submitted),
      static_cast<unsigned long long>(counters.completed),
      static_cast<unsigned long long>(counters.truncated),
      static_cast<unsigned long long>(counters.deadline_exceeded),
      static_cast<unsigned long long>(counters.cancelled),
      static_cast<unsigned long long>(counters.resource_exhausted),
      static_cast<unsigned long long>(counters.failed),
      static_cast<unsigned long long>(counters.rejected));
  if (options.cache_bytes > 0) {
    const ResultCacheStats cache = server.sessions().cache().stats();
    std::printf(
        "cache: %llu hits, %llu misses, %llu inflight joins, %llu evictions, "
        "%llu entries / %llu bytes retained\n",
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(counters.cache_inflight_joins),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(cache.entries),
        static_cast<unsigned long long>(cache.bytes));
  }
  if (FailpointRegistry::compiled_in()) {
    const uint64_t hits = FailpointRegistry::Global().TotalHits();
    if (hits > 0) {
      std::printf("failpoint hits: %llu\n",
                  static_cast<unsigned long long>(hits));
    }
  }
  // Distinct exit status when service degraded under its memory budget, so
  // wrapping harnesses can tell "served everything" from "shed load".
  return counters.resource_exhausted > 0 ? 4 : 0;
}
