// ACQ service daemon: serves the newline-delimited JSON protocol of
// server/server.h over a catalog that is generated or loaded at startup
// and then treated as read-only.
//
//   ./build/examples/acq_serve --gen users --rows 50000
//   ./build/examples/acq_serve --loaddb /path/to/db --port 7411
//
// Talk to it with anything that speaks line-delimited JSON, e.g.:
//
//   printf '%s\n' '{"cmd":"SUBMIT","wait":true,"sql":"SELECT * FROM users
//     CONSTRAINT COUNT(*) >= 2000 WHERE age <= 30 AND income >= 60000;"}'
//     | nc 127.0.0.1 7411            (one line, pipe into nc)
//
// Flags:
//   --port N               listen port (default 7411; 0 = ephemeral)
//   --gen tpch|users|patients   generate a synthetic catalog
//   --rows N               generator size (default 20000)
//   --loaddb DIR           load a catalog saved by acq_shell's \savedb
//   --max-running N        concurrent runs admitted (default: half the pool)
//   --max-queue N          queued requests beyond that (default 64)
//   --default-timeout-ms N deadline for SUBMITs without one (default: none)

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"
#include "storage/persistence.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Fail(const std::string& message) {
  std::fprintf(stderr, "acq_serve: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  options.port = 7411;
  std::string gen;
  std::string loaddb;
  size_t rows = 20000;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--port" && (value = next())) {
      options.port = std::atoi(value);
    } else if (flag == "--gen" && (value = next())) {
      gen = value;
    } else if (flag == "--rows" && (value = next())) {
      rows = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--loaddb" && (value = next())) {
      loaddb = value;
    } else if (flag == "--max-running" && (value = next())) {
      options.max_running = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--max-queue" && (value = next())) {
      options.max_queued = static_cast<size_t>(std::atoll(value));
    } else if (flag == "--default-timeout-ms" && (value = next())) {
      options.default_timeout_ms = std::atof(value);
    } else {
      return Fail("unknown or incomplete flag: " + flag +
                  " (see the header of acq_serve.cc)");
    }
  }
  if (gen.empty() == loaddb.empty()) {
    return Fail("exactly one of --gen or --loaddb is required");
  }

  Catalog catalog;
  Status load = Status::OK();
  if (!loaddb.empty()) {
    load = LoadCatalog(loaddb, &catalog);
  } else if (gen == "tpch") {
    TpchOptions tpch;
    tpch.lineitems = rows;
    tpch.suppliers = std::max<size_t>(100, rows / 200);
    tpch.parts = std::max<size_t>(200, rows / 100);
    load = GenerateTpch(tpch, &catalog);
  } else if (gen == "users") {
    UsersOptions users;
    users.users = rows;
    load = GenerateUsers(users, &catalog);
  } else if (gen == "patients") {
    PatientsOptions patients;
    patients.patients = rows;
    load = GeneratePatients(patients, &catalog);
  } else {
    return Fail("unknown generator '" + gen + "' (tpch|users|patients)");
  }
  if (!load.ok()) return Fail(load.ToString());
  for (const std::string& name : catalog.TableNames()) {
    auto table = catalog.GetTable(name);
    std::printf("table %s: %zu rows\n", name.c_str(), (*table)->num_rows());
  }

  AcqServer server(&catalog, options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::printf("acq_serve listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) pause();
  std::printf("shutting down\n");
  server.Stop();
  return 0;
}
