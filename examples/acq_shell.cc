// Interactive ACQ shell: the paper's "desired user experience" (Section 1)
// as a REPL. Type an Aggregation Constrained Query and get back runnable
// refined SQL alternatives; the engine decides between returning the
// original query, expanding it, or contracting it (Figure 2).
//
//   ./build/examples/acq_shell            # interactive
//   echo "...sql..." | ./build/examples/acq_shell
//
// Commands:
//   \gen tpch <rows>              generate the TPC-H subset tables
//   \gen users <rows>             generate the users table
//   \gen patients <rows>          generate the patients table
//   \load <table> <file> <schema> load a CSV (schema: name:type,...)
//   \append <table> <v1,v2,...>   append one row (live ingestion; bumps the
//                                 catalog generation, so cached transcripts
//                                 for the old data stop matching)
//   \save <table> <file>          write a table to CSV
//   \savedb / \loaddb <dir>       persist / restore the whole catalog
//   \tables                       list tables
//   \show <table> [n]             print the first n rows (default 5)
//   \explain <sql>                show the planned task and grid geometry
//   \attach <id> gen <kind> [rows]  attach a tenant with its own generated
//                                 catalog (or: \attach <id> loaddb <dir>);
//                                 the new tenant becomes active
//   \detach <id>                  drop an attached tenant's catalog
//   \tenant [id]                  switch the active tenant / list tenants;
//                                 every command (and the transcript cache)
//                                 is scoped to the active tenant
//   \report [i]                   per-predicate change report of answer i
//   \materialize <i> <file>       execute answer i, write its tuples
//   \set gamma|delta|batch|max_explored|memory_budget|cache <value>
//                                 tune thresholds / budgets (memory_budget
//                                 and cache in bytes, 0 = unlimited /
//                                 cache off). With cache on, re-running a
//                                 query whose task fingerprints identically
//                                 (core/fingerprint.h) replays the stored
//                                 transcript of the completed run instead
//                                 of searching again.
//   \set progress <ms>            live per-layer progress lines on stderr
//                                 while a run searches (0 = every drained
//                                 layer, negative = off). Defaults to
//                                 100 ms when stdin is a terminal, off
//                                 otherwise — stdout transcripts stay
//                                 byte-identical either way.
//   \help                         this text
//   \quit                         exit
// Anything else is parsed as ACQ SQL (CONSTRAINT / NOREFINE).
//
// Exit status: 0, or 4 when any run stopped with resource_exhausted (its
// best-so-far answer was still printed).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/string_util.h"
#include "core/fingerprint.h"
#include "core/processor.h"
#include "core/run_context.h"
#include "core/report.h"
#include "exec/materialize.h"
#include "sql/binder.h"
#include "sql/explain.h"
#include "sql/parser.h"
#include "server/tenant.h"
#include "sql/printer.h"
#include "storage/csv.h"
#include "storage/persistence.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

namespace {

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& part : Split(spec, ',')) {
    std::vector<std::string> kv = Split(part, ':');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad schema field: " + part);
    }
    std::string name(Trim(kv[0]));
    std::string type = ToLower(Trim(kv[1]));
    DataType dt;
    if (type == "int" || type == "int64") {
      dt = DataType::kInt64;
    } else if (type == "double" || type == "float" || type == "real") {
      dt = DataType::kDouble;
    } else if (type == "string" || type == "text") {
      dt = DataType::kString;
    } else {
      return Status::InvalidArgument("unknown type: " + type);
    }
    fields.push_back({name, dt, ""});
  }
  return Schema(std::move(fields));
}

class Shell {
 public:
  int Run() {
    printf("ACQUIRE shell — type \\help for commands.\n");
    std::string line;
    std::string statement;
    while (ReadLine(&line)) {
      std::string_view trimmed = Trim(line);
      if (trimmed.empty()) continue;
      if (trimmed[0] == '\\') {
        if (!HandleCommand(std::string(trimmed))) return exit_code_;
        continue;
      }
      // SQL statements may span lines; a terminating ';' submits.
      statement += line;
      statement += ' ';
      if (trimmed.back() != ';') continue;
      RunSql(statement);
      statement.clear();
    }
    if (!Trim(statement).empty()) RunSql(statement);
    return exit_code_;
  }

 private:
  bool ReadLine(std::string* line) {
    if (interactive_) printf("acq> ");
    return static_cast<bool>(std::getline(std::cin, *line));
  }

  void Report(const Status& status) {
    if (!status.ok()) printf("error: %s\n", status.ToString().c_str());
  }

  // Returns false to quit.
  bool HandleCommand(const std::string& command) {
    std::istringstream in(command);
    std::string name;
    in >> name;
    if (name == "\\quit" || name == "\\q") return false;
    if (name == "\\help") {
      printf("\\gen tpch|users|patients <rows>, \\load <t> <f> <schema>, "
             "\\append <t> <v1,v2,...>, "
             "\\save <t> <f>, \\savedb <dir>, \\loaddb <dir>, \\tables, "
             "\\show <t> [n], \\explain <sql>, "
             "\\attach <id> gen <kind> [rows] | loaddb <dir>, "
             "\\detach <id>, \\tenant [id], "
             "\\set gamma|delta|batch|max_explored|memory_budget|cache"
             "|merge_strategy|progress <v>, "
             "\\quit\n");
      return true;
    }
    if (name == "\\report") {
      size_t index = 1;
      in >> index;
      if (last_task_ == nullptr || last_result_.queries.empty()) {
        printf("no previous ACQ result\n");
        return true;
      }
      if (index < 1 || index > last_result_.queries.size()) {
        printf("answer index out of range (1..%zu)\n",
               last_result_.queries.size());
        return true;
      }
      printf("%s", RefinementReport(*last_task_,
                                    last_result_.queries[index - 1])
                       .c_str());
      return true;
    }
    if (name == "\\materialize") {
      size_t index = 1;
      std::string file;
      in >> index >> file;
      if (last_task_ == nullptr || last_result_.queries.empty()) {
        printf("no previous ACQ result\n");
        return true;
      }
      if (index < 1 || index > last_result_.queries.size() || file.empty()) {
        printf("usage: \\materialize <answer#> <file.csv>\n");
        return true;
      }
      auto tuples = MaterializeRefinedQuery(
          *last_task_, last_result_.queries[index - 1].pscores);
      if (!tuples.ok()) {
        Report(tuples.status());
        return true;
      }
      Report(WriteCsv(**tuples, file));
      printf("wrote %zu tuples to %s\n", (*tuples)->num_rows(), file.c_str());
      return true;
    }
    if (name == "\\explain") {
      std::string sql;
      std::getline(in, sql);
      Binder binder(&catalog());
      auto task = binder.PlanSql(sql);
      if (!task.ok()) {
        Report(task.status());
        return true;
      }
      printf("%s", ExplainTask(*task, options_).c_str());
      return true;
    }
    if (name == "\\attach") {
      std::string id, mode;
      in >> id >> mode;
      if (id.empty() || mode.empty()) {
        printf("usage: \\attach <id> gen <tpch|users|patients> [rows] | "
               "\\attach <id> loaddb <dir>\n");
        return true;
      }
      if (!IsValidTenantId(id) || id == TenantRegistry::kDefaultId) {
        printf("invalid tenant id %s\n", id.c_str());
        return true;
      }
      if (tenants_.count(id) != 0) {
        printf("tenant %s is already attached\n", id.c_str());
        return true;
      }
      auto attached = std::make_unique<Catalog>();
      Status built = Status::OK();
      if (mode == "gen") {
        std::string kind;
        size_t rows = 0;
        in >> kind >> rows;
        if (rows == 0) rows = 10000;
        if (kind == "tpch") {
          TpchOptions options;
          options.lineitems = rows;
          options.suppliers = std::max<size_t>(100, rows / 200);
          options.parts = std::max<size_t>(200, rows / 100);
          built = GenerateTpch(options, attached.get());
        } else if (kind == "users") {
          UsersOptions options;
          options.users = rows;
          built = GenerateUsers(options, attached.get());
        } else if (kind == "patients") {
          PatientsOptions options;
          options.patients = rows;
          built = GeneratePatients(options, attached.get());
        } else {
          printf("unknown generator: %s\n", kind.c_str());
          return true;
        }
      } else if (mode == "loaddb") {
        std::string dir;
        in >> dir;
        built = LoadCatalog(dir, attached.get());
      } else {
        printf("usage: \\attach <id> gen <kind> [rows] | "
               "\\attach <id> loaddb <dir>\n");
        return true;
      }
      if (!built.ok()) {
        Report(built);
        return true;
      }
      tenants_.emplace(id, std::move(attached));
      tenant_ = id;
      printf("attached tenant %s (now active)\n", id.c_str());
      return true;
    }
    if (name == "\\detach") {
      std::string id;
      in >> id;
      auto it = tenants_.find(id);
      if (it == tenants_.end()) {
        printf("no such tenant: %s\n", id.c_str());
        return true;
      }
      tenants_.erase(it);
      if (tenant_ == id) tenant_ = TenantRegistry::kDefaultId;
      printf("detached tenant %s (active: %s)\n", id.c_str(),
             tenant_.c_str());
      return true;
    }
    if (name == "\\tenant") {
      std::string id;
      in >> id;
      if (id.empty()) {
        printf("active tenant: %s\n", tenant_.c_str());
        printf("  %s (%zu tables)\n", TenantRegistry::kDefaultId,
               default_catalog_.TableNames().size());
        for (const auto& [tid, cat] : tenants_) {
          printf("  %s (%zu tables)\n", tid.c_str(),
                 cat->TableNames().size());
        }
        return true;
      }
      if (id != TenantRegistry::kDefaultId && tenants_.count(id) == 0) {
        printf("no such tenant: %s (\\attach it first)\n", id.c_str());
        return true;
      }
      tenant_ = id;
      printf("active tenant: %s\n", tenant_.c_str());
      return true;
    }
    if (name == "\\savedb") {
      std::string dir;
      in >> dir;
      Report(SaveCatalog(catalog(), dir));
      return true;
    }
    if (name == "\\loaddb") {
      std::string dir;
      in >> dir;
      Report(LoadCatalog(dir, &catalog()));
      return true;
    }
    if (name == "\\gen") {
      std::string kind;
      size_t rows = 0;
      in >> kind >> rows;
      if (rows == 0) rows = 10000;
      if (kind == "tpch") {
        TpchOptions options;
        options.lineitems = rows;
        options.suppliers = std::max<size_t>(100, rows / 200);
        options.parts = std::max<size_t>(200, rows / 100);
        Report(GenerateTpch(options, &catalog()));
      } else if (kind == "users") {
        UsersOptions options;
        options.users = rows;
        Report(GenerateUsers(options, &catalog()));
      } else if (kind == "patients") {
        PatientsOptions options;
        options.patients = rows;
        Report(GeneratePatients(options, &catalog()));
      } else {
        printf("unknown generator: %s\n", kind.c_str());
      }
      return true;
    }
    if (name == "\\load") {
      std::string table, file, schema_spec;
      in >> table >> file >> schema_spec;
      auto schema = ParseSchemaSpec(schema_spec);
      if (!schema.ok()) {
        Report(schema.status());
        return true;
      }
      auto loaded = ReadCsv(file, table, *schema);
      if (!loaded.ok()) {
        Report(loaded.status());
        return true;
      }
      catalog().PutTable(*loaded);
      printf("loaded %zu rows into %s\n", (*loaded)->num_rows(),
             table.c_str());
      return true;
    }
    if (name == "\\append") {
      std::string table;
      in >> table;
      std::string rest;
      std::getline(in, rest);
      const std::string vals(Trim(rest));
      auto t = catalog().GetTable(table);
      if (!t.ok()) {
        Report(t.status());
        return true;
      }
      if (vals.empty()) {
        printf("usage: \\append <table> <v1,v2,...>\n");
        return true;
      }
      const Schema& schema = (*t)->schema();
      std::vector<std::string> parts = Split(vals, ',');
      if (parts.size() != schema.num_fields()) {
        printf("row has %zu values, table %s has %zu columns\n",
               parts.size(), table.c_str(), schema.num_fields());
        return true;
      }
      std::vector<Value> row;
      row.reserve(parts.size());
      for (size_t i = 0; i < parts.size(); ++i) {
        const std::string text = std::string(Trim(parts[i]));
        switch (schema.field(i).type) {
          case DataType::kInt64:
            row.emplace_back(
                static_cast<int64_t>(std::strtoll(text.c_str(), nullptr,
                                                  10)));
            break;
          case DataType::kDouble:
            row.emplace_back(std::strtod(text.c_str(), nullptr));
            break;
          case DataType::kString:
            row.emplace_back(text);
            break;
        }
      }
      Status appended = catalog().AppendRows(table, {row});
      if (!appended.ok()) {
        Report(appended);
        return true;
      }
      // The shell's own result cache keys on the catalog generation through
      // FingerprintTask, so stale entries simply stop matching; nothing to
      // flush by hand.
      printf("appended 1 row to %s (%zu rows, generation %llu)\n",
             table.c_str(), (*t)->num_rows(),
             static_cast<unsigned long long>(catalog().generation()));
      return true;
    }
    if (name == "\\save") {
      std::string table, file;
      in >> table >> file;
      auto t = catalog().GetTable(table);
      if (!t.ok()) {
        Report(t.status());
        return true;
      }
      Report(WriteCsv(**t, file));
      return true;
    }
    if (name == "\\tables") {
      for (const std::string& t : catalog().TableNames()) {
        auto table = catalog().GetTable(t);
        printf("  %s (%zu rows) %s\n", t.c_str(), (*table)->num_rows(),
               (*table)->schema().ToString().c_str());
      }
      return true;
    }
    if (name == "\\show") {
      std::string table;
      size_t n = 5;
      in >> table >> n;
      auto t = catalog().GetTable(table);
      if (!t.ok()) {
        Report(t.status());
        return true;
      }
      printf("%s", (*t)->ToString(n == 0 ? 5 : n).c_str());
      return true;
    }
    if (name == "\\set") {
      std::string key;
      in >> key;
      if (key == "merge_strategy") {
        std::string strategy;
        in >> strategy;
        if (!ParseMergeStrategy(strategy, &options_.merge_strategy)) {
          printf("unknown merge_strategy %s "
                 "(auto|sequential|central|tree|radix)\n",
                 strategy.c_str());
          return true;
        }
      } else {
        double value = 0.0;
        in >> value;
        if (key == "gamma" && value > 0) {
          options_.gamma = value;
        } else if (key == "progress") {
          progress_interval_ms_ = value;
        } else if (key == "delta" && value >= 0) {
          options_.delta = value;
        } else if (key == "batch") {
          options_.batch_explore =
              value != 0.0 ? BatchExplore::kOn : BatchExplore::kOff;
        } else if (key == "max_explored" && value >= 0) {
          options_.max_explored = static_cast<uint64_t>(value);
        } else if (key == "memory_budget" && value >= 0) {
          options_.memory_budget_bytes = static_cast<uint64_t>(value);
        } else if (key == "cache" && value >= 0) {
          cache_bytes_ = static_cast<uint64_t>(value);
          if (cache_bytes_ == 0) {
            cache_.clear();
            cache_order_.clear();
            cache_used_ = 0;
          }
          EvictCache();
        } else {
          printf("usage: \\set gamma|delta|batch|max_explored|memory_budget"
                 "|cache|merge_strategy|progress <value>\n");
          return true;
        }
      }
      printf("gamma=%.3f delta=%.4f max_explored=%llu memory_budget=%llu "
             "batch=%s merge=%s cache=%llu\n",
             options_.gamma, options_.delta,
             static_cast<unsigned long long>(options_.max_explored),
             static_cast<unsigned long long>(options_.memory_budget_bytes),
             options_.batch_explore == BatchExplore::kOff
                 ? "off"
                 : options_.batch_explore == BatchExplore::kOn ? "on"
                                                               : "auto",
             MergeStrategyName(options_.merge_strategy),
             static_cast<unsigned long long>(cache_bytes_));
      return true;
    }
    printf("unknown command %s (try \\help)\n", name.c_str());
    return true;
  }

  /// Fingerprint of `sql` under the current catalog/options, or "" when
  /// uncacheable (parse/bind failure, custom error fn, UDA). Hex so the
  /// shell's text cache never depends on the binary key layout.
  std::string CacheKey(const std::string& sql) {
    if (cache_bytes_ == 0) return "";
    auto ast = ParseAcqSql(sql);
    if (!ast.ok()) return "";
    Binder binder(&catalog());
    auto spec = binder.BindQuery(*ast);
    if (!spec.ok()) return "";
    auto fp = FingerprintTask(catalog(), *spec, options_);
    // Tenant-prefixed: two tenants generated with identical parameters
    // fingerprint the same, but must never replay each other's transcript.
    return fp.ok() ? tenant_ + "|" + fp->ToHex() : "";
  }

  void EvictCache() {
    while (cache_used_ > cache_bytes_ && !cache_order_.empty()) {
      auto victim = cache_.find(cache_order_.front());
      cache_order_.pop_front();
      if (victim == cache_.end()) continue;
      cache_used_ -= victim->second.size();
      cache_.erase(victim);
    }
  }

  void RunSql(const std::string& sql) {
    // Result-cache probe (\set cache): a query whose task fingerprints
    // identically to a completed run replays that run's transcript —
    // timings included, since the transcript is the seeding run's output.
    // last_task_ / last_result_ are left untouched on a hit, so \report and
    // \materialize keep addressing the last *fresh* run.
    const std::string key = CacheKey(sql);
    if (!key.empty()) {
      auto hit = cache_.find(key);
      if (hit != cache_.end()) {
        printf("%s(cached)\n", hit->second.c_str());
        return;
      }
    }

    Binder binder(&catalog());
    auto task = binder.PlanSql(sql);
    if (!task.ok()) {
      Report(task.status());
      return;
    }
    last_task_ = std::make_shared<AcqTask>(std::move(task).value());
    // Live progress goes to stderr so stdout transcripts (and the replay
    // cache built from them) stay byte-identical with progress on or off.
    RunContext progress_ctx;
    if (progress_interval_ms_ >= 0) {
      progress_ctx.ArmProgressSink(
          [](const ProgressSnapshot& s) {
            if (s.has_best) {
              fprintf(stderr,
                      "[progress] layers=%llu explored=%llu best: "
                      "error=%.4f qscore=%.2f %s (%.0f ms)\n",
                      static_cast<unsigned long long>(s.layers_drained),
                      static_cast<unsigned long long>(s.queries_explored),
                      s.best_error, s.best_qscore,
                      s.best_description.c_str(), s.elapsed_ms);
            } else {
              fprintf(stderr, "[progress] layers=%llu explored=%llu "
                              "(no candidate yet, %.0f ms)\n",
                      static_cast<unsigned long long>(s.layers_drained),
                      static_cast<unsigned long long>(s.queries_explored),
                      s.elapsed_ms);
            }
          },
          progress_interval_ms_);
      options_.run_ctx = &progress_ctx;
    }
    auto outcome = ProcessAcq(*last_task_, options_);
    options_.run_ctx = nullptr;
    if (!outcome.ok()) {
      Report(outcome.status());
      return;
    }
    // The transcript is accumulated and printed once at the end, so a
    // completed run's exact output can be stored for cache replay.
    std::string out = StringFormat(
        "original aggregate: %g (target %s %g) -> %s\n",
        outcome->original_aggregate,
        ConstraintOpToString(last_task_->constraint.op),
        last_task_->constraint.target, AcqModeToString(outcome->mode));
    const AcquireResult& result = outcome->result;
    if (result.termination == RunTermination::kResourceExhausted) {
      // Memory budget ran out mid-search: the answer below is best-so-far,
      // and the shell's exit status records the degradation (sticky 4).
      out += StringFormat(
          "memory budget exhausted after %llu refined queries; "
          "reporting best-so-far (raise \\set memory_budget to search "
          "further)\n",
          static_cast<unsigned long long>(result.queries_explored));
      exit_code_ = 4;
    } else if (result.termination != RunTermination::kCompleted) {
      // Distinguishes "searched everything, no answer" from "ran out of
      // budget/time": a truncated or interrupted result is best-so-far.
      out += StringFormat(
          "search stopped early (%s) after %llu refined queries\n",
          RunTerminationToString(result.termination),
          static_cast<unsigned long long>(result.queries_explored));
    }
    if (!result.satisfied) {
      out += StringFormat("constraint not reachable; closest:\n  %s\n",
                          result.best.ToString().c_str());
      FinishSql(key, result, std::move(out));
      return;
    }
    const AcqTask& display_task = outcome->mode == AcqMode::kContracted
                                      ? *outcome->contraction_task
                                      : *last_task_;
    if (outcome->mode == AcqMode::kContracted) {
      // \report / \materialize address the contraction task's dims.
      last_task_ = outcome->contraction_task;
    }
    last_result_ = result;
    size_t shown = 0;
    for (const RefinedQuery& q : result.queries) {
      out += StringFormat("-- aggregate=%g refinement=%.2f error=%.4f\n%s\n",
                          q.aggregate, q.qscore, q.error,
                          RenderRefinedSql(display_task, q).c_str());
      if (++shown == 5) break;
    }
    out += StringFormat(
        "(%zu answers, %llu refined queries examined, %.1f ms)\n",
        result.queries.size(),
        static_cast<unsigned long long>(result.queries_explored),
        result.elapsed_ms);
    FinishSql(key, result, std::move(out));
  }

  /// Prints the run transcript and, for completed cacheable runs, stores it
  /// for replay. Interrupted/truncated runs are never cached — their output
  /// depends on when they were stopped, not just on the task.
  void FinishSql(const std::string& key, const AcquireResult& result,
                 std::string out) {
    printf("%s", out.c_str());
    if (key.empty() || result.termination != RunTermination::kCompleted) {
      return;
    }
    auto [it, inserted] = cache_.emplace(key, std::move(out));
    if (inserted) {
      cache_order_.push_back(key);
      cache_used_ += it->second.size();
      EvictCache();
    }
  }

  /// The active tenant's catalog. Every data/query command (\gen, \load,
  /// \tables, SQL, ...) operates on this; \tenant switches it.
  Catalog& catalog() {
    auto it = tenants_.find(tenant_);
    return it != tenants_.end() ? *it->second : default_catalog_;
  }

  Catalog default_catalog_;
  /// \attach-ed tenants: id -> private catalog. "default" is reserved for
  /// default_catalog_ and never appears here.
  std::map<std::string, std::unique_ptr<Catalog>> tenants_;
  std::string tenant_ = "default";
  AcquireOptions options_;
  std::shared_ptr<AcqTask> last_task_;
  AcquireResult last_result_;
  /// \set cache: completed-run transcripts keyed by task fingerprint hex,
  /// FIFO-evicted once the stored text exceeds cache_bytes_.
  uint64_t cache_bytes_ = 0;
  uint64_t cache_used_ = 0;
  std::unordered_map<std::string, std::string> cache_;
  std::deque<std::string> cache_order_;
  bool interactive_ = isatty(fileno(stdin)) != 0;
  /// \set progress: stderr progress-line throttle in ms (0 = every drained
  /// layer, negative = off). On by default only at a terminal, so piped
  /// transcript comparisons never see an extra stream.
  double progress_interval_ms_ = interactive_ ? 100.0 : -1.0;
  int exit_code_ = 0;  // sticky 4 once any run ends resource_exhausted
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
