// Interactive ACQ shell: the paper's "desired user experience" (Section 1)
// as a REPL. Type an Aggregation Constrained Query and get back runnable
// refined SQL alternatives; the engine decides between returning the
// original query, expanding it, or contracting it (Figure 2).
//
//   ./build/examples/acq_shell            # interactive
//   echo "...sql..." | ./build/examples/acq_shell
//
// Commands:
//   \gen tpch <rows>              generate the TPC-H subset tables
//   \gen users <rows>             generate the users table
//   \gen patients <rows>          generate the patients table
//   \load <table> <file> <schema> load a CSV (schema: name:type,...)
//   \save <table> <file>          write a table to CSV
//   \savedb / \loaddb <dir>       persist / restore the whole catalog
//   \tables                       list tables
//   \show <table> [n]             print the first n rows (default 5)
//   \explain <sql>                show the planned task and grid geometry
//   \report [i]                   per-predicate change report of answer i
//   \materialize <i> <file>       execute answer i, write its tuples
//   \set gamma|delta|batch|max_explored|memory_budget <value>
//                                 tune thresholds / budgets (memory_budget
//                                 in bytes, 0 = unlimited)
//   \help                         this text
//   \quit                         exit
// Anything else is parsed as ACQ SQL (CONSTRAINT / NOREFINE).
//
// Exit status: 0, or 4 when any run stopped with resource_exhausted (its
// best-so-far answer was still printed).

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/processor.h"
#include "core/report.h"
#include "exec/materialize.h"
#include "sql/binder.h"
#include "sql/explain.h"
#include "sql/printer.h"
#include "storage/csv.h"
#include "storage/persistence.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

namespace {

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& part : Split(spec, ',')) {
    std::vector<std::string> kv = Split(part, ':');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad schema field: " + part);
    }
    std::string name(Trim(kv[0]));
    std::string type = ToLower(Trim(kv[1]));
    DataType dt;
    if (type == "int" || type == "int64") {
      dt = DataType::kInt64;
    } else if (type == "double" || type == "float" || type == "real") {
      dt = DataType::kDouble;
    } else if (type == "string" || type == "text") {
      dt = DataType::kString;
    } else {
      return Status::InvalidArgument("unknown type: " + type);
    }
    fields.push_back({name, dt, ""});
  }
  return Schema(std::move(fields));
}

class Shell {
 public:
  int Run() {
    printf("ACQUIRE shell — type \\help for commands.\n");
    std::string line;
    std::string statement;
    while (ReadLine(&line)) {
      std::string_view trimmed = Trim(line);
      if (trimmed.empty()) continue;
      if (trimmed[0] == '\\') {
        if (!HandleCommand(std::string(trimmed))) return exit_code_;
        continue;
      }
      // SQL statements may span lines; a terminating ';' submits.
      statement += line;
      statement += ' ';
      if (trimmed.back() != ';') continue;
      RunSql(statement);
      statement.clear();
    }
    if (!Trim(statement).empty()) RunSql(statement);
    return exit_code_;
  }

 private:
  bool ReadLine(std::string* line) {
    if (interactive_) printf("acq> ");
    return static_cast<bool>(std::getline(std::cin, *line));
  }

  void Report(const Status& status) {
    if (!status.ok()) printf("error: %s\n", status.ToString().c_str());
  }

  // Returns false to quit.
  bool HandleCommand(const std::string& command) {
    std::istringstream in(command);
    std::string name;
    in >> name;
    if (name == "\\quit" || name == "\\q") return false;
    if (name == "\\help") {
      printf("\\gen tpch|users|patients <rows>, \\load <t> <f> <schema>, "
             "\\save <t> <f>, \\savedb <dir>, \\loaddb <dir>, \\tables, "
             "\\show <t> [n], \\explain <sql>, "
             "\\set gamma|delta|batch|max_explored|memory_budget <v>, "
             "\\quit\n");
      return true;
    }
    if (name == "\\report") {
      size_t index = 1;
      in >> index;
      if (last_task_ == nullptr || last_result_.queries.empty()) {
        printf("no previous ACQ result\n");
        return true;
      }
      if (index < 1 || index > last_result_.queries.size()) {
        printf("answer index out of range (1..%zu)\n",
               last_result_.queries.size());
        return true;
      }
      printf("%s", RefinementReport(*last_task_,
                                    last_result_.queries[index - 1])
                       .c_str());
      return true;
    }
    if (name == "\\materialize") {
      size_t index = 1;
      std::string file;
      in >> index >> file;
      if (last_task_ == nullptr || last_result_.queries.empty()) {
        printf("no previous ACQ result\n");
        return true;
      }
      if (index < 1 || index > last_result_.queries.size() || file.empty()) {
        printf("usage: \\materialize <answer#> <file.csv>\n");
        return true;
      }
      auto tuples = MaterializeRefinedQuery(
          *last_task_, last_result_.queries[index - 1].pscores);
      if (!tuples.ok()) {
        Report(tuples.status());
        return true;
      }
      Report(WriteCsv(**tuples, file));
      printf("wrote %zu tuples to %s\n", (*tuples)->num_rows(), file.c_str());
      return true;
    }
    if (name == "\\explain") {
      std::string sql;
      std::getline(in, sql);
      Binder binder(&catalog_);
      auto task = binder.PlanSql(sql);
      if (!task.ok()) {
        Report(task.status());
        return true;
      }
      printf("%s", ExplainTask(*task, options_).c_str());
      return true;
    }
    if (name == "\\savedb") {
      std::string dir;
      in >> dir;
      Report(SaveCatalog(catalog_, dir));
      return true;
    }
    if (name == "\\loaddb") {
      std::string dir;
      in >> dir;
      Report(LoadCatalog(dir, &catalog_));
      return true;
    }
    if (name == "\\gen") {
      std::string kind;
      size_t rows = 0;
      in >> kind >> rows;
      if (rows == 0) rows = 10000;
      if (kind == "tpch") {
        TpchOptions options;
        options.lineitems = rows;
        options.suppliers = std::max<size_t>(100, rows / 200);
        options.parts = std::max<size_t>(200, rows / 100);
        Report(GenerateTpch(options, &catalog_));
      } else if (kind == "users") {
        UsersOptions options;
        options.users = rows;
        Report(GenerateUsers(options, &catalog_));
      } else if (kind == "patients") {
        PatientsOptions options;
        options.patients = rows;
        Report(GeneratePatients(options, &catalog_));
      } else {
        printf("unknown generator: %s\n", kind.c_str());
      }
      return true;
    }
    if (name == "\\load") {
      std::string table, file, schema_spec;
      in >> table >> file >> schema_spec;
      auto schema = ParseSchemaSpec(schema_spec);
      if (!schema.ok()) {
        Report(schema.status());
        return true;
      }
      auto loaded = ReadCsv(file, table, *schema);
      if (!loaded.ok()) {
        Report(loaded.status());
        return true;
      }
      catalog_.PutTable(*loaded);
      printf("loaded %zu rows into %s\n", (*loaded)->num_rows(),
             table.c_str());
      return true;
    }
    if (name == "\\save") {
      std::string table, file;
      in >> table >> file;
      auto t = catalog_.GetTable(table);
      if (!t.ok()) {
        Report(t.status());
        return true;
      }
      Report(WriteCsv(**t, file));
      return true;
    }
    if (name == "\\tables") {
      for (const std::string& t : catalog_.TableNames()) {
        auto table = catalog_.GetTable(t);
        printf("  %s (%zu rows) %s\n", t.c_str(), (*table)->num_rows(),
               (*table)->schema().ToString().c_str());
      }
      return true;
    }
    if (name == "\\show") {
      std::string table;
      size_t n = 5;
      in >> table >> n;
      auto t = catalog_.GetTable(table);
      if (!t.ok()) {
        Report(t.status());
        return true;
      }
      printf("%s", (*t)->ToString(n == 0 ? 5 : n).c_str());
      return true;
    }
    if (name == "\\set") {
      std::string key;
      double value = 0.0;
      in >> key >> value;
      if (key == "gamma" && value > 0) {
        options_.gamma = value;
      } else if (key == "delta" && value >= 0) {
        options_.delta = value;
      } else if (key == "batch") {
        options_.batch_explore =
            value != 0.0 ? BatchExplore::kOn : BatchExplore::kOff;
      } else if (key == "max_explored" && value >= 0) {
        options_.max_explored = static_cast<uint64_t>(value);
      } else if (key == "memory_budget" && value >= 0) {
        options_.memory_budget_bytes = static_cast<uint64_t>(value);
      } else {
        printf("usage: \\set gamma|delta|batch|max_explored|memory_budget "
               "<value>\n");
        return true;
      }
      printf("gamma=%.3f delta=%.4f max_explored=%llu memory_budget=%llu "
             "batch=%s\n",
             options_.gamma, options_.delta,
             static_cast<unsigned long long>(options_.max_explored),
             static_cast<unsigned long long>(options_.memory_budget_bytes),
             options_.batch_explore == BatchExplore::kOff
                 ? "off"
                 : options_.batch_explore == BatchExplore::kOn ? "on"
                                                               : "auto");
      return true;
    }
    printf("unknown command %s (try \\help)\n", name.c_str());
    return true;
  }

  void RunSql(const std::string& sql) {
    Binder binder(&catalog_);
    auto task = binder.PlanSql(sql);
    if (!task.ok()) {
      Report(task.status());
      return;
    }
    last_task_ = std::make_shared<AcqTask>(std::move(task).value());
    auto outcome = ProcessAcq(*last_task_, options_);
    if (!outcome.ok()) {
      Report(outcome.status());
      return;
    }
    printf("original aggregate: %g (target %s %g) -> %s\n",
           outcome->original_aggregate,
           ConstraintOpToString(last_task_->constraint.op),
           last_task_->constraint.target,
           AcqModeToString(outcome->mode));
    const AcquireResult& result = outcome->result;
    if (result.termination == RunTermination::kResourceExhausted) {
      // Memory budget ran out mid-search: the answer below is best-so-far,
      // and the shell's exit status records the degradation (sticky 4).
      printf("memory budget exhausted after %llu refined queries; "
             "reporting best-so-far (raise \\set memory_budget to search "
             "further)\n",
             static_cast<unsigned long long>(result.queries_explored));
      exit_code_ = 4;
    } else if (result.termination != RunTermination::kCompleted) {
      // Distinguishes "searched everything, no answer" from "ran out of
      // budget/time": a truncated or interrupted result is best-so-far.
      printf("search stopped early (%s) after %llu refined queries\n",
             RunTerminationToString(result.termination),
             static_cast<unsigned long long>(result.queries_explored));
    }
    if (!result.satisfied) {
      printf("constraint not reachable; closest:\n  %s\n",
             result.best.ToString().c_str());
      return;
    }
    const AcqTask& display_task = outcome->mode == AcqMode::kContracted
                                      ? *outcome->contraction_task
                                      : *last_task_;
    if (outcome->mode == AcqMode::kContracted) {
      // \report / \materialize address the contraction task's dims.
      last_task_ = outcome->contraction_task;
    }
    last_result_ = result;
    size_t shown = 0;
    for (const RefinedQuery& q : result.queries) {
      printf("-- aggregate=%g refinement=%.2f error=%.4f\n%s\n", q.aggregate,
             q.qscore, q.error, RenderRefinedSql(display_task, q).c_str());
      if (++shown == 5) break;
    }
    printf("(%zu answers, %llu refined queries examined, %.1f ms)\n",
           result.queries.size(),
           static_cast<unsigned long long>(result.queries_explored),
           result.elapsed_ms);
  }

  Catalog catalog_;
  AcquireOptions options_;
  std::shared_ptr<AcqTask> last_task_;
  AcquireResult last_result_;
  bool interactive_ = isatty(fileno(stdin)) != 0;
  int exit_code_ = 0;  // sticky 4 once any run ends resource_exhausted
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
