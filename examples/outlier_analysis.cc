// The paper's third motivating use case: aggregate-outlier analysis. An
// analyst wants a patient cohort whose AVERAGE annual cost is at least a
// threshold — AVG decomposes into SUM/COUNT (Section 2.6), so ACQUIRE can
// refine the cohort's selection predicates directly.
//
// This example also demonstrates contraction (Section 7.2): a second query
// returns too MANY patients, and ACQUIRE tightens it instead.
//
// Run:  ./build/examples/outlier_analysis

#include <cstdio>

#include "core/acquire.h"
#include "core/contract.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "workload/users_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

int main() {
  Catalog catalog;
  PatientsOptions options;
  options.patients = 100000;
  if (Status s = GeneratePatients(options, &catalog); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Binder binder(&catalog);

  // --- Part 1: expand until AVG(annual_cost) >= 15000. ---
  auto task = binder.PlanSql(
      "SELECT * FROM patients "
      "CONSTRAINT AVG(annual_cost) >= 15000 "
      "WHERE age >= 55 AND systolic_bp >= 135 AND weekly_exercise_hours <= 3");
  if (!task.ok()) {
    fprintf(stderr, "planning failed: %s\n", task.status().ToString().c_str());
    return 1;
  }
  printf("Outlier cohort ACQ:\n%s\n\n", RenderOriginalSql(*task).c_str());

  CachedEvaluationLayer layer(&*task);
  auto result = RunAcquire(*task, &layer, {});
  if (!result.ok()) {
    fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (result->satisfied) {
    const RefinedQuery& q = result->queries.front();
    printf("Cohort found: AVG cost = %.0f, refinement = %.2f\n%s\n\n",
           q.aggregate, q.qscore, RenderRefinedSql(*task, q).c_str());
  } else {
    printf("Threshold unreachable; closest %s\n\n",
           result->best.ToString().c_str());
  }

  // --- Part 2: the inverse problem. A loose screening query matches far
  // too many patients; contract it to a review-capacity budget of 5000.
  auto wide = binder.PlanSql(
      "SELECT * FROM patients "
      "CONSTRAINT COUNT(*) = 5000 "
      "WHERE age >= 30 AND systolic_bp >= 110");
  if (!wide.ok()) {
    fprintf(stderr, "planning failed: %s\n", wide.status().ToString().c_str());
    return 1;
  }
  CachedEvaluationLayer wide_layer(&*wide);
  double matched =
      wide_layer.EvaluateQueryValue(std::vector<double>(wide->d(), 0.0))
          .value_or(0.0);
  printf("Screening query matches %.0f patients; capacity is 5000.\n",
         matched);

  auto contract_task = MakeContractionTask(*wide);
  if (!contract_task.ok()) {
    fprintf(stderr, "%s\n", contract_task.status().ToString().c_str());
    return 1;
  }
  CachedEvaluationLayer contract_layer(&*contract_task);
  AcquireOptions copts;
  copts.gamma = 16.0;
  copts.delta = 0.05;
  auto contracted = RunAcquireContract(*contract_task, &contract_layer, copts);
  if (!contracted.ok()) {
    fprintf(stderr, "%s\n", contracted.status().ToString().c_str());
    return 1;
  }
  if (contracted->satisfied) {
    const RefinedQuery& q = contracted->queries.front();
    printf("Minimal contraction found: COUNT = %.0f, contraction = %.2f\n"
           "%s\n", q.aggregate, q.qscore,
           RenderRefinedSql(*contract_task, q).c_str());
  } else {
    printf("No contraction met the capacity; closest %s\n",
           contracted->best.ToString().c_str());
  }
  return 0;
}
