// Example 1 from the paper: HighStyle Designers' Facebook ad campaign.
// The campaign budget covers 1M impressions per 10K dollars; here the
// synthetic audience is smaller, so the target is scaled accordingly. The
// demographics query (gender, interests) stays fixed while age, engagement
// and income bounds may be refined. An ontology over cities lets the
// location list relax to nearby regions (Section 7.3).
//
// Run:  ./build/examples/ad_campaign

#include <cstdio>

#include "core/acquire.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "workload/users_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

namespace {

// City taxonomy: country -> region -> city (Figure 7a's location tree).
Result<OntologyTree> CityTree() {
  OntologyTree tree;
  struct Edge {
    const char* node;
    const char* parent;
  };
  const Edge edges[] = {
      {"UnitedStates", ""},
      {"EastCoast", "UnitedStates"},  {"WestCoast", "UnitedStates"},
      {"South", "UnitedStates"},      {"Midwest", "UnitedStates"},
      {"Mountain", "UnitedStates"},
      {"Boston", "EastCoast"},        {"New York", "EastCoast"},
      {"Atlanta", "South"},           {"Miami", "South"},
      {"Austin", "South"},            {"Seattle", "WestCoast"},
      {"Portland", "WestCoast"},      {"Chicago", "Midwest"},
      {"Denver", "Mountain"},         {"Phoenix", "Mountain"},
  };
  for (const Edge& e : edges) {
    ACQ_RETURN_IF_ERROR(tree.AddNode(e.node, e.parent));
  }
  return tree;
}

}  // namespace

int main() {
  Catalog catalog;
  UsersOptions users;
  users.users = 200000;
  if (Status s = GenerateUsers(users, &catalog); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto tree = CityTree();
  if (!tree.ok()) {
    fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  Binder binder(&catalog);
  binder.RegisterOntology("city", &*tree);

  // Q1' — Alice's campaign: the audience estimate for the original query is
  // far below the 12K users the budget covers.
  const char* sql =
      "SELECT * FROM users "
      "CONSTRAINT COUNT(*) = 8K "
      "WHERE city IN ('Boston', 'New York', 'Seattle', 'Miami', 'Austin') "
      "AND (gender = 'Women') NOREFINE "
      "AND 25 <= age <= 35 "
      "AND (interest IN ('Retail', 'Shopping')) NOREFINE "
      "AND engagement >= 55";

  auto task = binder.PlanSql(sql);
  if (!task.ok()) {
    fprintf(stderr, "planning failed: %s\n", task.status().ToString().c_str());
    return 1;
  }
  printf("Campaign ACQ:\n%s\n\n", RenderOriginalSql(*task).c_str());

  CachedEvaluationLayer layer(&*task);
  double audience =
      layer.EvaluateQueryValue(std::vector<double>(task->d(), 0.0))
          .value_or(0.0);
  printf("Estimated audience of the original query: %.0f users "
         "(budget covers 8000)\n\n", audience);

  AcquireOptions options;
  options.delta = 0.05;
  // One city roll-up costs 50 PScore units (tree height 2), so a coarser
  // grid keeps the 4-dimensional search snappy.
  options.gamma = 20.0;
  auto result = RunAcquire(*task, &layer, options);
  if (!result.ok()) {
    fprintf(stderr, "ACQUIRE failed: %s\n",
            result.status().ToString().c_str());
    return 1;
  }
  if (!result->satisfied) {
    printf("Budget target unreachable; closest alternative:\n  %s\n",
           result->best.ToString().c_str());
    return 0;
  }
  printf("Alternatives reaching the budgeted audience (%.1f ms, %llu "
         "refined queries examined):\n\n", result->elapsed_ms,
         static_cast<unsigned long long>(result->queries_explored));
  size_t shown = 0;
  for (const RefinedQuery& q : result->queries) {
    printf("  audience=%.0f  refinement=%.2f\n  %s\n\n", q.aggregate,
           q.qscore, RenderRefinedSql(*task, q).c_str());
    if (++shown == 3) break;
  }
  return 0;
}
