// Streaming ACQ watcher: submits one ACQ with progress streaming enabled
// and renders each PROGRESS frame as it arrives — best QScore so far, the
// current refined query, layers drained, rows touched, and the tenant's
// governor share — then prints the final report. Optionally stops the run
// early (the STOP verb) once the answer is good enough, demonstrating the
// anytime contract: the reply is a well-formed best-so-far report with
// termination "client_satisfied".
//
//   ./build/examples/acq_serve --gen users --rows 50000 &
//   ./build/examples/acq_watch --sql "SELECT * FROM users CONSTRAINT
//     COUNT(*) >= 2000 WHERE age <= 30 AND income >= 60000;"
//
// Flags:
//   --host H             server address (default 127.0.0.1)
//   --port N             server port (default 7411)
//   --sql "..."          the ACQ to submit (required unless --demo)
//   --interval-ms N      frame throttle; 0 = one frame per drained layer
//                        (default 0)
//   --stop-after-frames N  send STOP after the Nth frame (0 = never)
//   --stop-at-error E    send STOP once a frame's best error <= E
//   --demo               self-contained mode for CI: starts an in-process
//                        server over a generated users catalog, streams a
//                        run with an early STOP, and verifies the reply is
//                        a well-formed best-so-far report
//
// Exit status: 0 on a well-formed final reply, 1 on any failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/string_util.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/users_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "acq_watch: %s\n", message.c_str());
  return 1;
}

void PrintFrame(const JsonValue& frame) {
  std::string line = StringFormat(
      "[%s] layers=%.0f explored=%.0f tuples=%.0f",
      frame.GetString("id", "?").c_str(),
      frame.GetNumber("layers_drained", 0),
      frame.GetNumber("queries_explored", 0),
      frame.GetNumber("tuples_scanned", 0));
  const JsonValue* best = frame.Get("best");
  if (best != nullptr && best->is_object()) {
    line += StringFormat(" best: error=%.4f qscore=%.2f %s",
                         best->GetNumber("error", 0),
                         best->GetNumber("qscore", 0),
                         best->GetString("refined", "").c_str());
  } else {
    line += " (no candidate yet)";
  }
  const JsonValue* governor = frame.Get("governor");
  if (governor != nullptr && governor->is_object() &&
      governor->Get("memory_share_bytes") != nullptr) {
    line += StringFormat(" share=%.0fB slots=%.0f/%.0f",
                         governor->GetNumber("memory_share_bytes", 0),
                         governor->GetNumber("active_slots", 0),
                         governor->GetNumber("slot_limit", 0));
  }
  line += StringFormat(" (%.0f ms)", frame.GetNumber("elapsed_ms", 0));
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

/// Streams one SUBMIT, optionally STOPping it early from a second
/// control connection once a frame satisfies the stop rule.
int Watch(const std::string& host, int port, const std::string& sql,
          double interval_ms, uint64_t stop_after_frames,
          double stop_at_error, bool have_stop_error) {
  LineClient client;
  Status connected = client.Connect(host, port);
  if (!connected.ok()) return Fail(connected.ToString());

  JsonValue progress = JsonValue::Object();
  progress.Set("interval_ms", JsonValue::Number(interval_ms));
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(sql));
  request.Set("wait", JsonValue::Bool(true));
  request.Set("progress", progress);

  uint64_t frames = 0;
  bool stop_sent = false;
  auto on_progress = [&](const JsonValue& frame) {
    ++frames;
    PrintFrame(frame);
    if (stop_sent) return;
    const JsonValue* best = frame.Get("best");
    const bool error_ok =
        have_stop_error && best != nullptr && best->is_object() &&
        best->GetNumber("error", 1e300) <= stop_at_error;
    const bool frames_ok = stop_after_frames > 0 && frames >= stop_after_frames;
    if (!error_ok && !frames_ok) return;
    stop_sent = true;
    // The run is mid-stream on this connection, so STOP travels over a
    // second one; the server routes it to the session by id.
    LineClient control;
    if (!control.Connect(host, port).ok()) return;
    JsonValue stop = JsonValue::Object();
    stop.Set("cmd", JsonValue::Str("STOP"));
    stop.Set("id", JsonValue::Str(frame.GetString("id")));
    auto acked = control.Call(stop);
    if (acked.ok()) {
      std::printf("STOP sent (%s)\n",
                  acked->GetBool("ok", false) ? "acked" : "rejected");
    }
  };

  auto reply = client.CallStreaming(request, on_progress);
  if (!reply.ok()) return Fail(reply.status().ToString());
  if (!reply->GetBool("ok", false)) {
    return Fail("server rejected the run: " + reply->Dump());
  }
  const JsonValue* report = reply->Get("report");
  const std::string termination =
      report != nullptr && report->is_object()
          ? report->GetString("termination", "?")
          : "?";
  std::printf("final: state=%s termination=%s after %llu frames\n%s\n",
              reply->GetString("state", "?").c_str(), termination.c_str(),
              static_cast<unsigned long long>(frames), reply->Dump().c_str());
  if (stop_sent && termination != "client_satisfied" &&
      termination != "completed") {
    // A race where the run finishes before STOP lands is fine; anything
    // else is a broken early-stop path.
    return Fail("unexpected termination after STOP");
  }
  return 0;
}

/// CI smoke: in-process server, generated catalog, streamed run with an
/// early STOP after the second frame.
int Demo() {
  Catalog catalog;
  UsersOptions users;
  users.users = 40000;
  Status gen = GenerateUsers(users, &catalog);
  if (!gen.ok()) return Fail(gen.ToString());

  ServerOptions options;
  options.port = 0;  // ephemeral
  AcqServer server(&catalog, options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());

  // A 3-dim ACQ with batch exploration off drains many small layers, so
  // frames arrive steadily and the STOP lands mid-search.
  const std::string sql =
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 12000 "
      "WHERE age <= 25 AND income >= 52000 AND engagement >= 4.5;";
  int rc = Watch("127.0.0.1", server.port(), sql, /*interval_ms=*/0,
                 /*stop_after_frames=*/2, /*stop_at_error=*/0.0,
                 /*have_stop_error=*/false);
  server.Stop();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 7411;
  std::string sql;
  double interval_ms = 0.0;
  uint64_t stop_after_frames = 0;
  double stop_at_error = 0.0;
  bool have_stop_error = false;
  bool demo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* value = nullptr;
    if (flag == "--host" && (value = next())) {
      host = value;
    } else if (flag == "--port" && (value = next())) {
      port = std::atoi(value);
    } else if (flag == "--sql" && (value = next())) {
      sql = value;
    } else if (flag == "--interval-ms" && (value = next())) {
      interval_ms = std::atof(value);
    } else if (flag == "--stop-after-frames" && (value = next())) {
      stop_after_frames = static_cast<uint64_t>(std::atoll(value));
    } else if (flag == "--stop-at-error" && (value = next())) {
      stop_at_error = std::atof(value);
      have_stop_error = true;
    } else if (flag == "--demo") {
      demo = true;
    } else {
      return Fail("unknown or incomplete flag: " + flag +
                  " (see the header of acq_watch.cc)");
    }
  }
  if (demo) return Demo();
  if (sql.empty()) return Fail("--sql is required (or use --demo)");
  return Watch(host, port, sql, interval_ms, stop_after_frames, stop_at_error,
               have_stop_error);
}
