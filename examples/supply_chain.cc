// Example 2 from the paper: HybridCars Co. must order 100,000 units of a
// part, i.e. SUM(ps_availqty) over the matching supplier/part/partsupp
// join must reach 0.1M. Join predicates and part specs are NOREFINE;
// wholesale price and account balance bounds may be refined (query Q2').
//
// Run:  ./build/examples/supply_chain

#include <cstdio>

#include "core/acquire.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "workload/tpch_gen.h"

using namespace acquire;  // NOLINT — brevity in example code

int main() {
  Catalog catalog;
  TpchOptions options;
  options.suppliers = 1000;
  options.parts = 2000;
  options.suppliers_per_part = 4;
  if (Status s = GenerateTpch(options, &catalog); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Q2' adapted to the generator's data: p_size <= 10 keeps a realistic
  // fraction of parts (exact equality on a synthetic int works too but
  // keeps very few suppliers).
  const char* sql =
      "SELECT * FROM supplier, part, partsupp "
      "CONSTRAINT SUM(ps_availqty) >= 0.5M "
      "WHERE (s_suppkey = ps_suppkey) NOREFINE "
      "AND (p_partkey = ps_partkey) NOREFINE "
      "AND (p_retailprice < 1000) AND (s_acctbal < 2000) "
      "AND (p_size <= 10) NOREFINE";

  Binder binder(&catalog);
  auto task = binder.PlanSql(sql);
  if (!task.ok()) {
    fprintf(stderr, "planning failed: %s\n", task.status().ToString().c_str());
    return 1;
  }
  printf("Procurement ACQ:\n%s\n\n", RenderOriginalSql(*task).c_str());

  CachedEvaluationLayer layer(&*task);
  double available =
      layer.EvaluateQueryValue(std::vector<double>(task->d(), 0.0))
          .value_or(0.0);
  printf("Units available under the original query: %.0f "
         "(need 500000)\n\n", available);

  AcquireOptions acq;
  acq.delta = 0.05;
  auto result = RunAcquire(*task, &layer, acq);
  if (!result.ok()) {
    fprintf(stderr, "ACQUIRE failed: %s\n",
            result.status().ToString().c_str());
    return 1;
  }
  if (!result->satisfied) {
    printf("No refinement reaches 500K units; closest:\n  %s\n",
           result->best.ToString().c_str());
    return 0;
  }
  printf("Refined procurement queries meeting the order size "
         "(%.1f ms):\n\n", result->elapsed_ms);
  size_t shown = 0;
  for (const RefinedQuery& q : result->queries) {
    printf("  units=%.0f  refinement=%.2f\n  %s\n\n", q.aggregate, q.qscore,
           RenderRefinedSql(*task, q).c_str());
    if (++shown == 3) break;
  }
  return 0;
}
