// Runs the same Aggregation Constrained Query through every implemented
// technique — ACQUIRE and the Section 8.2 baselines — and prints a
// side-by-side comparison, a miniature of the paper's evaluation.
//
// Run:  ./build/examples/compare_techniques

#include <cstdio>

#include "baselines/binsearch.h"
#include "baselines/topk.h"
#include "baselines/tqgen.h"
#include "core/acquire.h"
#include "index/grid_index.h"
#include "workload/tpch_gen.h"
#include "workload/workload.h"

using namespace acquire;  // NOLINT — brevity in example code

int main() {
  Catalog catalog;
  TpchOptions tpch;
  tpch.lineitems = 100000;
  if (Status s = GenerateTpch(tpch, &catalog); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  RatioTaskOptions workload;
  workload.table = "lineitem";
  workload.columns = {"l_quantity", "l_extendedprice", "l_shipdays"};
  workload.selectivity = 0.05;
  workload.ratio = 0.4;  // ask for 2.5x the original count
  auto rt = BuildRatioTask(catalog, workload);
  if (!rt.ok()) {
    fprintf(stderr, "%s\n", rt.status().ToString().c_str());
    return 1;
  }
  AcqTask& task = rt->task;
  printf("Task: %s\n", task.ToString().c_str());
  printf("Original aggregate %.0f, target %.0f\n\n", rt->base_aggregate,
         task.constraint.target);
  printf("%-12s %10s %10s %12s %10s\n", "technique", "time_ms", "error",
         "refinement", "queries");

  {
    RefinedSpace space(&task, 10.0, Norm::L1());
    GridIndexEvaluationLayer layer(&task, space.step());
    auto r = RunAcquire(task, &layer, {});
    if (r.ok() && !r->queries.empty()) {
      printf("%-12s %10.1f %10.4f %12.2f %10llu\n", "ACQUIRE",
             r->elapsed_ms, r->queries[0].error, r->queries[0].qscore,
             static_cast<unsigned long long>(r->cell_queries));
    }
  }
  if (auto r = RunTopK(task, Norm::L1()); r.ok()) {
    printf("%-12s %10.1f %10.4f %12.2f %10llu\n", "Top-k", r->elapsed_ms,
           r->error, r->qscore,
           static_cast<unsigned long long>(r->queries_executed));
  }
  {
    DirectEvaluationLayer layer(&task);
    if (auto r = RunBinSearch(task, &layer, Norm::L1(), {}); r.ok()) {
      printf("%-12s %10.1f %10.4f %12.2f %10llu\n", "BinSearch",
             r->elapsed_ms, r->error, r->qscore,
             static_cast<unsigned long long>(r->queries_executed));
    }
  }
  {
    DirectEvaluationLayer layer(&task);
    if (auto r = RunTqGen(task, &layer, Norm::L1(), {}); r.ok()) {
      printf("%-12s %10.1f %10.4f %12.2f %10llu\n", "TQGen", r->elapsed_ms,
             r->error, r->qscore,
             static_cast<unsigned long long>(r->queries_executed));
    }
  }
  return 0;
}
