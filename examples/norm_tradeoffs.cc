// Section 7.1 in action: how the choice of QScore norm and per-predicate
// weights steers *which* refinement ACQUIRE recommends for the same task.
//   - L1 minimizes total refinement (may pile it all on one predicate),
//   - L-infinity minimizes the worst single predicate's refinement
//     (spreads the change evenly),
//   - weights make individual predicates reluctant to move.
//
// Run:  ./build/examples/norm_tradeoffs

#include <cstdio>

#include "acquire.h"
#include "core/report.h"

using namespace acquire;  // NOLINT — brevity in example code

namespace {

void RunWith(const char* label, const AcqTask& task_template,
             const Catalog& catalog, Norm norm, double weight0) {
  // Re-plan per run: dims carry weights and the driver mutates nothing,
  // but separate tasks keep the runs independent.
  QuerySpec spec;
  spec.tables = {"lineitem"};
  spec.predicates.push_back(SelectPredicateSpec{
      "l_quantity", CompareOp::kLe, 10.0, true, weight0, {}});
  spec.predicates.push_back(SelectPredicateSpec{
      "l_shipdays", CompareOp::kLe, 500.0, true, 1.0, {}});
  spec.agg_kind = AggregateKind::kCount;
  spec.constraint_op = ConstraintOp::kEq;
  spec.target = task_template.constraint.target;
  auto task = PlanAcqTask(catalog, spec);
  if (!task.ok()) {
    fprintf(stderr, "%s\n", task.status().ToString().c_str());
    return;
  }
  task->constraint.target = task_template.constraint.target;

  CachedEvaluationLayer layer(&*task);
  AcquireOptions options;
  options.norm = norm;
  options.order = SearchOrder::kBestFirst;  // exact order for every norm
  options.delta = 0.05;
  auto result = RunAcquire(*task, &layer, options);
  if (!result.ok() || !result->satisfied) {
    printf("%s: no answer\n", label);
    return;
  }
  printf("--- %s ---\n%s\n", label,
         RefinementReport(*task, result->queries.front()).c_str());
}

}  // namespace

int main() {
  Catalog catalog;
  TpchOptions tpch;
  tpch.lineitems = 50000;
  if (Status s = GenerateTpch(tpch, &catalog); !s.ok()) {
    fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Fix the target once so every configuration chases the same constraint.
  QuerySpec probe_spec;
  probe_spec.tables = {"lineitem"};
  probe_spec.predicates.push_back(SelectPredicateSpec{
      "l_quantity", CompareOp::kLe, 10.0, true, 1.0, {}});
  probe_spec.predicates.push_back(SelectPredicateSpec{
      "l_shipdays", CompareOp::kLe, 500.0, true, 1.0, {}});
  probe_spec.agg_kind = AggregateKind::kCount;
  probe_spec.target = 1.0;
  auto probe_task = PlanAcqTask(catalog, probe_spec);
  if (!probe_task.ok()) {
    fprintf(stderr, "%s\n", probe_task.status().ToString().c_str());
    return 1;
  }
  DirectEvaluationLayer probe(&*probe_task);
  double base = probe.EvaluateQueryValue({0.0, 0.0}).value_or(0.0);
  probe_task->constraint.target = base * 2.5;
  printf("Task: COUNT %g -> %g (both predicates refinable)\n\n", base,
         probe_task->constraint.target);

  RunWith("L1 (minimize total refinement)", *probe_task, catalog, Norm::L1(),
          1.0);
  RunWith("L-infinity (minimize the worst predicate)", *probe_task, catalog,
          Norm::LInf(), 1.0);
  RunWith("L1, l_quantity weighted 5x (keep quantity tight)", *probe_task,
          catalog, Norm::L1(), 5.0);
  return 0;
}
