#include "exec/evaluation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "exec/planner.h"
#include "workload/tpch_gen.h"

namespace acquire {
namespace {

TEST(PScoreLevelTest, ZeroAndPositive) {
  EXPECT_EQ(PScoreLevel(0.0, 3.0), 0);
  EXPECT_EQ(PScoreLevel(-1.0, 3.0), 0);
  EXPECT_EQ(PScoreLevel(0.1, 3.0), 1);
  EXPECT_EQ(PScoreLevel(3.0, 3.0), 1);   // boundary belongs to the level
  EXPECT_EQ(PScoreLevel(3.0001, 3.0), 2);
  EXPECT_EQ(PScoreLevel(9.0, 3.0), 3);
}

TEST(PScoreLevelTest, UnreachableIsMinusOne) {
  EXPECT_EQ(PScoreLevel(std::numeric_limits<double>::infinity(), 3.0), -1);
}

TEST(CellRangeTest, InverseOfLevel) {
  PScoreRange r0 = CellRangeForLevel(0, 3.0);
  EXPECT_TRUE(r0.Admits(0.0));
  EXPECT_FALSE(r0.Admits(0.5));
  PScoreRange r2 = CellRangeForLevel(2, 3.0);
  EXPECT_FALSE(r2.Admits(3.0));
  EXPECT_TRUE(r2.Admits(3.5));
  EXPECT_TRUE(r2.Admits(6.0));
  EXPECT_FALSE(r2.Admits(6.5));
}

TEST(PScoreRangeTest, AdmitsSemantics) {
  PScoreRange full{-1.0, 10.0};
  EXPECT_TRUE(full.Admits(0.0));
  EXPECT_TRUE(full.Admits(10.0));
  EXPECT_FALSE(full.Admits(10.1));
  PScoreRange band{5.0, 10.0};
  EXPECT_FALSE(band.Admits(5.0));  // open below
  EXPECT_TRUE(band.Admits(5.1));
}

class EvaluationLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions options;
    options.lineitems = 5000;
    options.suppliers = 50;
    options.parts = 100;
    ASSERT_TRUE(GenerateTpch(options, &catalog_).ok());

    QuerySpec spec;
    spec.tables = {"lineitem"};
    spec.predicates.push_back(SelectPredicateSpec{
        "l_quantity", CompareOp::kLe, 15.0, true, 1.0, {}});
    spec.predicates.push_back(SelectPredicateSpec{
        "l_extendedprice", CompareOp::kLe, 30000.0, true, 1.0, {}});
    spec.agg_kind = AggregateKind::kSum;
    spec.agg_column = "l_extendedprice";
    spec.target = 1.0;
    auto task = PlanAcqTask(catalog_, spec);
    ASSERT_TRUE(task.ok()) << task.status().ToString();
    task_ = std::make_unique<AcqTask>(std::move(task).value());
  }

  Catalog catalog_;
  std::unique_ptr<AcqTask> task_;
};

TEST_F(EvaluationLayerTest, DirectAndCachedAgreeOnRandomBoxes) {
  DirectEvaluationLayer direct(task_.get());
  CachedEvaluationLayer cached(task_.get());
  ASSERT_TRUE(cached.Prepare().ok());
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<PScoreRange> box(task_->d());
    for (auto& r : box) {
      double a = rng.NextDouble(-1.0, 60.0);
      double b = rng.NextDouble(0.0, 80.0);
      r.lo = std::min(a, b);
      r.hi = std::max(a, b) + 0.1;
    }
    auto s1 = direct.EvaluateBox(box);
    auto s2 = cached.EvaluateBox(box);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_DOUBLE_EQ(task_->agg.ops->Final(*s1), task_->agg.ops->Final(*s2))
        << "trial " << trial;
  }
}

TEST_F(EvaluationLayerTest, FullQueryAtZeroMatchesOriginalPredicates) {
  DirectEvaluationLayer layer(task_.get());
  auto value = layer.EvaluateQueryValue({0.0, 0.0});
  ASSERT_TRUE(value.ok());
  // Brute-force the original query.
  const Table& rel = *task_->relation;
  size_t qty = rel.schema().FieldIndex("l_quantity").value();
  size_t price = rel.schema().FieldIndex("l_extendedprice").value();
  double expected = 0.0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    if (rel.column(qty).GetDouble(r) <= 15.0 &&
        rel.column(price).GetDouble(r) <= 30000.0) {
      expected += rel.column(price).GetDouble(r);
    }
  }
  EXPECT_NEAR(*value, expected, 1e-6 * std::max(1.0, expected));
}

TEST_F(EvaluationLayerTest, WiderBoxesAreMonotone) {
  CachedEvaluationLayer layer(task_.get());
  double prev = 0.0;
  for (double p = 0.0; p <= 50.0; p += 10.0) {
    auto value = layer.EvaluateQueryValue({p, p});
    ASSERT_TRUE(value.ok());
    EXPECT_GE(*value, prev);  // SUM of positive values grows with the query
    prev = *value;
  }
}

TEST_F(EvaluationLayerTest, StatsCountQueriesAndTuples) {
  DirectEvaluationLayer layer(task_.get());
  ASSERT_TRUE(layer.EvaluateQueryValue({0.0, 0.0}).ok());
  ASSERT_TRUE(layer.EvaluateQueryValue({5.0, 5.0}).ok());
  EXPECT_EQ(layer.stats().queries, 2u);
  EXPECT_EQ(layer.stats().tuples_scanned, 2 * task_->relation->num_rows());
  layer.ResetStats();
  EXPECT_EQ(layer.stats().queries, 0u);
}

TEST_F(EvaluationLayerTest, WrongArityRejected) {
  DirectEvaluationLayer layer(task_.get());
  auto r = layer.EvaluateBox({PScoreRange{-1.0, 0.0}});
  EXPECT_FALSE(r.ok());
}

TEST_F(EvaluationLayerTest, ComputeNeededMatchesDims) {
  std::vector<double> needed;
  ComputeNeeded(*task_, 0, &needed);
  ASSERT_EQ(needed.size(), 2u);
  EXPECT_DOUBLE_EQ(needed[0],
                   task_->dims[0]->NeededPScore(*task_->relation, 0));
  EXPECT_DOUBLE_EQ(needed[1],
                   task_->dims[1]->NeededPScore(*task_->relation, 0));
}

}  // namespace
}  // namespace acquire
