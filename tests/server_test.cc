// The ACQ service layer end to end: protocol grammar, session lifecycle,
// admission control, deadlines/cancellation, and — the core guarantee —
// that answers served over the wire are bit-identical to direct ProcessAcq
// runs against the same catalog, including under concurrent clients.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/processor.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

// One catalog for the whole suite: the server treats it as read-only, so
// sharing it across tests mirrors production use.
Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    UsersOptions options;
    options.users = 3000;
    EXPECT_TRUE(GenerateUsers(options, c).ok());
    return c;
  }();
  return catalog;
}

// A query whose expansion can never satisfy its constraint; with the stall
// guard effectively disabled it keeps exploring until interrupted. The
// 30s deadline is a backstop so a broken cancel fails the test instead of
// hanging it.
JsonValue SlowSubmit() {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= "
                         "1000000000 WHERE age <= 20 AND income <= 30000 "
                         "AND engagement <= 1.0 AND "
                         "account_age_days <= 100"));
  request.Set("stall_limit", JsonValue::Number(1e15));
  request.Set("divergence_patience", JsonValue::Number(1000000));
  request.Set("max_explored", JsonValue::Number(4e9));
  request.Set("timeout_ms", JsonValue::Number(30000.0));
  return request;
}

JsonValue MustParse(const std::string& line) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : JsonValue::Null();
}

// Runs the same SQL directly (no server) with default options.
Result<AcqOutcome> DirectRun(const std::string& sql,
                             std::shared_ptr<AcqTask>* task_out) {
  Binder binder(SharedCatalog());
  ACQ_ASSIGN_OR_RETURN(AcqTask task, binder.PlanSql(sql));
  auto task_ptr = std::make_shared<AcqTask>(std::move(task));
  ACQ_ASSIGN_OR_RETURN(AcqOutcome outcome,
                       ProcessAcq(*task_ptr, AcquireOptions{}));
  *task_out = task_ptr;
  return outcome;
}

// Asserts the server's report is bit-identical to the direct outcome:
// same mode/termination/satisfied, exactly equal doubles, and the same
// rendered SQL for every answer.
void ExpectReportMatchesDirect(const JsonValue& response,
                               const AcqOutcome& direct,
                               const AcqTask& direct_task) {
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  const JsonValue* report = response.Get("report");
  ASSERT_NE(report, nullptr) << response.Dump();
  EXPECT_EQ(report->GetString("mode"), AcqModeToString(direct.mode));
  EXPECT_EQ(report->GetString("termination"),
            RunTerminationToString(direct.result.termination));
  EXPECT_EQ(report->GetBool("satisfied", !direct.result.satisfied),
            direct.result.satisfied);
  EXPECT_EQ(report->GetNumber("original_aggregate", -1.0),
            direct.original_aggregate);
  EXPECT_EQ(report->GetNumber("queries_explored", -1.0),
            static_cast<double>(direct.result.queries_explored));
  EXPECT_EQ(report->GetNumber("cell_queries", -1.0),
            static_cast<double>(direct.result.cell_queries));
  const AcqTask& display_task = direct.mode == AcqMode::kContracted
                                    ? *direct.contraction_task
                                    : direct_task;
  const JsonValue* answers = report->Get("answers");
  ASSERT_NE(answers, nullptr);
  ASSERT_TRUE(answers->is_array());
  ASSERT_EQ(answers->size(), direct.result.queries.size());
  for (size_t i = 0; i < direct.result.queries.size(); ++i) {
    const RefinedQuery& expected = direct.result.queries[i];
    const JsonValue& got = answers->AsArray()[i];
    EXPECT_EQ(got.GetString("sql"),
              RenderRefinedSql(display_task, expected));
    EXPECT_EQ(got.GetString("predicates"), expected.description);
    EXPECT_EQ(got.GetNumber("aggregate", -1.0), expected.aggregate);
    EXPECT_EQ(got.GetNumber("qscore", -1.0), expected.qscore);
    EXPECT_EQ(got.GetNumber("error", -1.0), expected.error);
  }
  const JsonValue* best = report->Get("best");
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->GetNumber("aggregate", -1.0), direct.result.best.aggregate);
  EXPECT_EQ(best->GetNumber("qscore", -1.0), direct.result.best.qscore);
}

TEST(ServerProtocolTest, RejectsMalformedRequests) {
  AcqServer server(SharedCatalog());
  struct Case {
    const char* line;
    const char* code;
  } cases[] = {
      {"this is not json", "ParseError"},
      {"[1,2,3]", "InvalidArgument"},
      {"{\"cmd\":\"NOPE\"}", "InvalidArgument"},
      {"{\"cmd\":\"SUBMIT\"}", "InvalidArgument"},
      {"{\"cmd\":\"SUBMIT\",\"sql\":42}", "InvalidArgument"},
      {"{\"cmd\":\"SUBMIT\",\"sql\":\"SELECT * FROM users CONSTRAINT "
       "COUNT(*) >= 1 WHERE age <= 30\",\"gamma\":-1}",
       "InvalidArgument"},
      {"{\"cmd\":\"SUBMIT\",\"sql\":\"x\",\"order\":\"sideways\"}",
       "InvalidArgument"},
      {"{\"cmd\":\"SUBMIT\",\"sql\":\"x\",\"backend\":\"abacus\"}",
       "InvalidArgument"},
      {"{\"cmd\":\"STATUS\",\"id\":\"s-999\"}", "NotFound"},
      {"{\"cmd\":\"CANCEL\",\"id\":\"nope\"}", "NotFound"},
  };
  for (const Case& c : cases) {
    JsonValue response = MustParse(server.HandleRequestLine(c.line));
    EXPECT_FALSE(response.GetBool("ok", true)) << c.line;
    EXPECT_EQ(response.GetString("code"), c.code) << c.line;
    EXPECT_FALSE(response.GetString("error").empty()) << c.line;
  }
}

TEST(ServerProtocolTest, PlanningErrorFailsSession) {
  AcqServer server(SharedCatalog());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str("SELECT * FROM missing_table "
                                    "CONSTRAINT COUNT(*) >= 1 "
                                    "WHERE x <= 1"));
  request.Set("wait", JsonValue::Bool(true));
  JsonValue response = MustParse(server.HandleRequestLine(request.Dump()));
  EXPECT_TRUE(response.GetBool("ok", false));
  EXPECT_EQ(response.GetString("state"), "failed");
  EXPECT_FALSE(response.GetString("error").empty());
}

TEST(ServerTest, SubmitWaitMatchesDirectRun) {
  // Learn the original aggregate cheaply, then target 20% above it so the
  // run actually expands.
  std::shared_ptr<AcqTask> probe_task;
  auto probe = DirectRun(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 1 "
      "WHERE age <= 30 AND income >= 60000",
      &probe_task);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  const int target =
      static_cast<int>(probe->original_aggregate * 1.2) + 1;
  const std::string sql = StringFormat(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= %d "
      "WHERE age <= 30 AND income >= 60000",
      target);
  std::shared_ptr<AcqTask> task;
  auto direct = DirectRun(sql, &task);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  AcqServer server(SharedCatalog());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(sql));
  request.Set("wait", JsonValue::Bool(true));
  JsonValue response = MustParse(server.HandleRequestLine(request.Dump()));
  EXPECT_EQ(response.GetString("state"), "done");
  ExpectReportMatchesDirect(response, *direct, *task);
}

TEST(ServerTest, EightConcurrentClientsBitIdenticalOverTcp) {
  constexpr int kClients = 8;
  // Distinct queries per client, solved directly first (serially).
  std::vector<std::string> sqls;
  std::vector<AcqOutcome> direct(kClients);
  std::vector<std::shared_ptr<AcqTask>> tasks(kClients);
  for (int i = 0; i < kClients; ++i) {
    sqls.push_back(StringFormat(
        "SELECT * FROM users CONSTRAINT COUNT(*) >= %d "
        "WHERE age <= %d AND income >= %d",
        200 + 25 * i, 24 + i, 55000 + 1000 * i));
    auto outcome = DirectRun(sqls.back(), &tasks[i]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    direct[i] = std::move(*outcome);
  }

  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  std::vector<JsonValue> responses(kClients);
  std::vector<Status> failures(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      LineClient client;
      Status connected = client.Connect("127.0.0.1", server.port());
      if (!connected.ok()) {
        failures[i] = connected;
        return;
      }
      JsonValue request = JsonValue::Object();
      request.Set("cmd", JsonValue::Str("SUBMIT"));
      request.Set("sql", JsonValue::Str(sqls[i]));
      request.Set("wait", JsonValue::Bool(true));
      Result<JsonValue> response = client.Call(request);
      if (!response.ok()) {
        failures[i] = response.status();
        return;
      }
      responses[i] = std::move(*response);
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_TRUE(failures[i].ok()) << failures[i].ToString();
    EXPECT_EQ(responses[i].GetString("state"), "done") << sqls[i];
    ExpectReportMatchesDirect(responses[i], direct[i], *tasks[i]);
  }
}

TEST(ServerTest, CancelMidExploreReturnsPartialReport) {
  AcqServer server(SharedCatalog());
  JsonValue submitted =
      MustParse(server.HandleRequestLine(SlowSubmit().Dump()));
  ASSERT_TRUE(submitted.GetBool("ok", false)) << submitted.Dump();
  const std::string id = submitted.GetString("id");
  ASSERT_FALSE(id.empty());

  // Wait until the run is demonstrably mid-Explore.
  JsonValue status;
  for (int i = 0; i < 2000; ++i) {
    status = MustParse(server.HandleRequestLine(
        StringFormat("{\"cmd\":\"STATUS\",\"id\":\"%s\"}", id.c_str())));
    if (status.GetString("state") == "running" &&
        status.GetNumber("queries_explored", 0.0) > 0.0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(status.GetString("state"), "running") << status.Dump();

  JsonValue cancelled = MustParse(server.HandleRequestLine(StringFormat(
      "{\"cmd\":\"CANCEL\",\"id\":\"%s\",\"wait\":true}", id.c_str())));
  ASSERT_TRUE(cancelled.GetBool("ok", false)) << cancelled.Dump();
  EXPECT_EQ(cancelled.GetString("state"), "cancelled");
  const JsonValue* report = cancelled.Get("report");
  ASSERT_NE(report, nullptr) << cancelled.Dump();
  EXPECT_EQ(report->GetString("termination"), "cancelled");
  EXPECT_FALSE(report->GetBool("satisfied", true));
  EXPECT_GT(report->GetNumber("queries_explored", 0.0), 0.0);

  // The run released its admission slot and pool task.
  for (int i = 0; i < 2000 && server.sessions().num_running() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.sessions().num_running(), 0u);
}

TEST(ServerTest, AdmissionRejectsWhenSaturated) {
  ServerOptions options;
  options.max_running = 1;
  options.max_queued = 1;
  AcqServer server(SharedCatalog(), options);
  JsonValue first = MustParse(server.HandleRequestLine(SlowSubmit().Dump()));
  JsonValue second = MustParse(server.HandleRequestLine(SlowSubmit().Dump()));
  JsonValue third = MustParse(server.HandleRequestLine(SlowSubmit().Dump()));
  ASSERT_TRUE(first.GetBool("ok", false));
  ASSERT_TRUE(second.GetBool("ok", false));
  EXPECT_FALSE(third.GetBool("ok", true));
  EXPECT_EQ(third.GetString("code"), "Unavailable");

  for (const JsonValue* response : {&first, &second}) {
    const std::string id = response->GetString("id");
    JsonValue cancelled = MustParse(server.HandleRequestLine(StringFormat(
        "{\"cmd\":\"CANCEL\",\"id\":\"%s\",\"wait\":true}", id.c_str())));
    EXPECT_EQ(cancelled.GetString("state"), "cancelled") << cancelled.Dump();
  }

  JsonValue stats = MustParse(server.HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* counters = stats.Get("stats");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("submitted", -1.0), 2.0);
  EXPECT_EQ(counters->GetNumber("rejected", -1.0), 1.0);
  EXPECT_EQ(counters->GetNumber("cancelled", -1.0), 2.0);
}

TEST(ServerTest, DeadlineOverServerReturnsPartialDone) {
  AcqServer server(SharedCatalog());
  JsonValue request = SlowSubmit();
  request.Set("timeout_ms", JsonValue::Number(1.0));
  request.Set("wait", JsonValue::Bool(true));
  JsonValue response = MustParse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  EXPECT_EQ(response.GetString("state"), "done");
  const JsonValue* report = response.Get("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->GetString("termination"), "deadline_exceeded");
  EXPECT_FALSE(report->GetBool("satisfied", true));
}

TEST(ServerTest, StatsAggregateAcrossRuns) {
  AcqServer server(SharedCatalog());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 1 "
                         "WHERE age <= 40"));
  request.Set("wait", JsonValue::Bool(true));
  JsonValue response = MustParse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  EXPECT_EQ(response.GetString("state"), "done");

  JsonValue stats = MustParse(server.HandleRequestLine("{\"cmd\":\"STATS\"}"));
  ASSERT_TRUE(stats.GetBool("ok", false));
  const JsonValue* counters = stats.Get("stats");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("submitted", -1.0), 1.0);
  EXPECT_EQ(counters->GetNumber("completed", -1.0), 1.0);
  EXPECT_EQ(counters->GetNumber("running", -1.0), 0.0);
  EXPECT_EQ(counters->GetNumber("queued", -1.0), 0.0);
  EXPECT_GE(counters->GetNumber("pool_threads", 0.0), 1.0);
}

TEST(ServerTest, SubmitWithMemoryBudgetReportsResourceExhausted) {
  AcqServer server(SharedCatalog());
  JsonValue request = SlowSubmit();
  // A budget far below the search's working set: the run must degrade to a
  // well-formed resource_exhausted report, never crash or hang.
  request.Set("memory_budget_bytes", JsonValue::Number(64 * 1024));
  request.Set("wait", JsonValue::Bool(true));
  JsonValue response = MustParse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  EXPECT_EQ(response.GetString("state"), "done");
  const JsonValue* report = response.Get("report");
  ASSERT_NE(report, nullptr) << response.Dump();
  EXPECT_EQ(report->GetString("termination"), "resource_exhausted");
  EXPECT_FALSE(report->GetBool("satisfied", true));
  EXPECT_GE(report->GetNumber("queries_explored", 0.0), 1.0);
  ASSERT_NE(report->Get("best"), nullptr);

  JsonValue stats = MustParse(server.HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* counters = stats.Get("stats");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetNumber("resource_exhausted", -1.0), 1.0);
}

TEST(ServerTest, NegativeMemoryBudgetRejected) {
  AcqServer server(SharedCatalog());
  JsonValue request = SlowSubmit();
  request.Set("memory_budget_bytes", JsonValue::Number(-1.0));
  JsonValue response = MustParse(server.HandleRequestLine(request.Dump()));
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "InvalidArgument");
}

TEST(ServerProtocolTest, FailpointVerbListsArmsAndClears) {
  AcqServer server(SharedCatalog());
  JsonValue listed =
      MustParse(server.HandleRequestLine("{\"cmd\":\"FAILPOINT\"}"));
  ASSERT_TRUE(listed.GetBool("ok", false)) << listed.Dump();
  EXPECT_EQ(listed.GetBool("enabled", false),
            FailpointRegistry::compiled_in());
  ASSERT_NE(listed.Get("sites"), nullptr);

  if (!FailpointRegistry::compiled_in()) {
    JsonValue armed = MustParse(server.HandleRequestLine(
        "{\"cmd\":\"FAILPOINT\",\"set\":\"server.admit=count:1\"}"));
    EXPECT_EQ(armed.GetString("code"), "Unsupported");
    return;
  }
  JsonValue armed = MustParse(server.HandleRequestLine(
      "{\"cmd\":\"FAILPOINT\",\"set\":\"server.admit=count:1\"}"));
  ASSERT_TRUE(armed.GetBool("ok", false)) << armed.Dump();

  // The armed admission site rejects exactly the next SUBMIT.
  JsonValue rejected = MustParse(server.HandleRequestLine(SlowSubmit().Dump()));
  EXPECT_FALSE(rejected.GetBool("ok", true));
  EXPECT_EQ(rejected.GetString("code"), "Unavailable");

  JsonValue bad_spec = MustParse(server.HandleRequestLine(
      "{\"cmd\":\"FAILPOINT\",\"set\":\"server.admit=p:7\"}"));
  EXPECT_FALSE(bad_spec.GetBool("ok", true));
  EXPECT_EQ(bad_spec.GetString("code"), "InvalidArgument");

  JsonValue cleared = MustParse(
      server.HandleRequestLine("{\"cmd\":\"FAILPOINT\",\"clear\":true}"));
  ASSERT_TRUE(cleared.GetBool("ok", false)) << cleared.Dump();
  JsonValue accepted = MustParse(server.HandleRequestLine(SlowSubmit().Dump()));
  ASSERT_TRUE(accepted.GetBool("ok", false)) << accepted.Dump();
  JsonValue cancelled = MustParse(server.HandleRequestLine(StringFormat(
      "{\"cmd\":\"CANCEL\",\"id\":\"%s\",\"wait\":true}",
      accepted.GetString("id").c_str())));
  EXPECT_EQ(cancelled.GetString("state"), "cancelled");

  // STATS surfaces the injected-failure tally.
  JsonValue stats = MustParse(server.HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* counters = stats.Get("stats");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetNumber("failpoint_hits", -1.0), 1.0);
}

TEST(ServerTest, OversizedLineRejectedAndConnectionClosed) {
  ServerOptions options;
  options.max_line_bytes = 1024;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto raw = client.CallRaw(std::string(4096, 'x'));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  JsonValue response = MustParse(*raw);
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.GetString("code"), "InvalidArgument");
  // The server closes after the rejection: the next call fails.
  EXPECT_FALSE(client.Call(JsonValue::Object()).ok());
  server.Stop();
}

TEST(ServerTest, NewlineFreeGarbageCannotGrowBufferUnbounded) {
  ServerOptions options;
  options.max_line_bytes = 1024;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Binary garbage with no terminating newline: the server must cap its
  // partial-line buffer, answer once, and drop the connection.
  std::string garbage(8192, '\0');
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<char>(i * 131 + 7);
    if (garbage[i] == '\n') garbage[i] = ' ';
  }
  auto raw = client.CallRaw(garbage.substr(0, garbage.size() - 1));
  // CallRaw appends '\n' itself; either the rejection line came back or the
  // server already closed mid-send. Both are acceptable; a hang is not.
  if (raw.ok()) {
    JsonValue response = MustParse(*raw);
    EXPECT_FALSE(response.GetBool("ok", true));
  }
  server.Stop();
}

TEST(ServerTest, HalfOpenConnectionDoesNotWedgeServer) {
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  {
    // Connect, send half a frame, vanish without the newline.
    LineClient half;
    ASSERT_TRUE(half.Connect("127.0.0.1", server.port()).ok());
    // (CallRaw would block on the response; just drop the connection.)
    half.Close();
  }
  // The server keeps serving new connections afterwards.
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  JsonValue stats_request = JsonValue::Object();
  stats_request.Set("cmd", JsonValue::Str("STATS"));
  auto stats = client.Call(stats_request);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->GetBool("ok", false));
  server.Stop();
}

TEST(ServerTest, IdleConnectionReapedByReadDeadline) {
  ServerOptions options;
  options.idle_timeout_ms = 50.0;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // Go quiet past the deadline; the server must reap the connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  JsonValue stats_request = JsonValue::Object();
  stats_request.Set("cmd", JsonValue::Str("STATS"));
  // Either the send fails outright or the response never comes (the recv
  // sees the server's close). A fresh connection then shows the reap.
  (void)client.Call(stats_request);
  LineClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  auto stats = fresh.Call(stats_request);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const JsonValue* counters = stats->Get("stats");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetNumber("idle_disconnects", 0.0), 1.0);
  fresh.Close();
  server.Stop();
}

TEST(ServerTest, DisconnectBetweenSubmitAndStatus) {
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  std::string id;
  {
    LineClient submitter;
    ASSERT_TRUE(submitter.Connect("127.0.0.1", server.port()).ok());
    auto submitted = submitter.Call(SlowSubmit());
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    ASSERT_TRUE(submitted->GetBool("ok", false)) << submitted->Dump();
    id = submitted->GetString("id");
    submitter.Close();  // vanish with the run still going
  }
  // Sessions survive their submitting connection: a different client can
  // observe and cancel the run.
  LineClient observer;
  ASSERT_TRUE(observer.Connect("127.0.0.1", server.port()).ok());
  auto cancelled = observer.Call(MustParse(StringFormat(
      "{\"cmd\":\"CANCEL\",\"id\":\"%s\",\"wait\":true}", id.c_str())));
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_EQ(cancelled->GetString("state"), "cancelled");
  observer.Close();
  server.Stop();
}

TEST(ServerTest, WrongTypedFieldsRejectedNotCrashed) {
  AcqServer server(SharedCatalog());
  const char* cases[] = {
      "{\"cmd\":\"SUBMIT\",\"sql\":[1,2]}",
      "{\"cmd\":\"SUBMIT\",\"sql\":{\"a\":1}}",
      "{\"cmd\":\"SUBMIT\",\"sql\":true}",
      "{\"cmd\":\"SUBMIT\",\"sql\":\"x\",\"order\":7}",
      "{\"cmd\":\"SUBMIT\",\"sql\":\"x\",\"backend\":[]}",
      "{\"cmd\":\"FAILPOINT\",\"set\":42}",
      "{\"cmd\":\"FAILPOINT\",\"clear\":1.5}",
      "{\"cmd\":3}",
  };
  for (const char* line : cases) {
    JsonValue response = MustParse(server.HandleRequestLine(line));
    EXPECT_FALSE(response.GetBool("ok", true)) << line;
    EXPECT_FALSE(response.GetString("error").empty()) << line;
  }
}

TEST(ClientTest, RetriesReconnectAfterServerSideDrop) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  // Drop the next server->client send mid-protocol; the client's retry
  // must reconnect and complete.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("server.send", "count:1")
                  .ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  JsonValue stats_request = JsonValue::Object();
  stats_request.Set("cmd", JsonValue::Str("STATS"));
  auto stats = client.CallWithRetry(stats_request);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->GetBool("ok", false));
  EXPECT_GE(client.retries(), 1u);
  FailpointRegistry::Global().DisarmAll();
  client.Close();
  server.Stop();
}

TEST(ClientTest, RetriesUnavailableUntilAdmitted) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  // Two injected admission rejections, then the SUBMIT goes through.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("server.admit", "count:2")
                  .ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 1 "
                         "WHERE age <= 40"));
  request.Set("wait", JsonValue::Bool(true));
  auto response = client.CallWithRetry(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->GetBool("ok", false)) << response->Dump();
  EXPECT_EQ(response->GetString("state"), "done");
  EXPECT_GE(client.retries(), 2u);
  FailpointRegistry::Global().DisarmAll();
  client.Close();
  server.Stop();
}

// Decorrelated retry jitter: backoff sleeps are randomized within
// [initial, 3*previous] capped at max_backoff_ms, so a fleet of clients
// rejected by the same admission burst doesn't re-collide on a shared
// deterministic schedule. The total sleep across attempts is therefore
// bounded: at least one initial backoff, at most attempts*max (plus
// call overhead), both of which this test pins with wide margins.
TEST(ClientTest, JitteredBackoffStaysWithinConfiguredBounds) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  // Every attempt is rejected: the call exhausts max_attempts, sleeping
  // between each, and returns the final Unavailable reply.
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("server.admit", "count:100")
                  .ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 1 "
                         "WHERE age <= 40"));
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 4.0;
  retry.max_backoff_ms = 40.0;
  retry.jitter_seed = 12345;  // deterministic draw for the test
  const auto start = std::chrono::steady_clock::now();
  auto response = client.CallWithRetry(request, retry);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->GetString("code"), "Unavailable") << response->Dump();
  EXPECT_EQ(client.retries(), 4u);
  // 4 sleeps, each in [4ms, 40ms]: the floor proves sleeping happened at
  // all, the ceiling (with slack for 5 round trips) proves the cap held.
  EXPECT_GE(elapsed_ms, 4.0);
  EXPECT_LE(elapsed_ms, 4 * 40.0 + 2000.0);
  FailpointRegistry::Global().DisarmAll();
  client.Close();
  server.Stop();
}

// jitter=false preserves the historical deterministic schedule for tests
// and tools that rely on exact sleep sequences; the retry loop still
// recovers from admission rejections either way.
TEST(ClientTest, JitterDisabledStillRetriesDeterministically) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(FailpointRegistry::Global()
                  .Configure("server.admit", "count:2")
                  .ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 1 "
                         "WHERE age <= 40"));
  request.Set("wait", JsonValue::Bool(true));
  RetryOptions retry;
  retry.jitter = false;
  retry.initial_backoff_ms = 1.0;
  retry.max_backoff_ms = 8.0;
  auto response = client.CallWithRetry(request, retry);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->GetBool("ok", false)) << response->Dump();
  EXPECT_EQ(response->GetString("state"), "done");
  EXPECT_GE(client.retries(), 2u);
  FailpointRegistry::Global().DisarmAll();
  client.Close();
  server.Stop();
}

// The wire reply minus the outer session "id" — the only field replies for
// the same task may differ in when the result cache serves them.
std::string DumpWithoutId(const JsonValue& response) {
  JsonValue out = JsonValue::Object();
  for (const auto& [key, value] : response.Members()) {
    if (key != "id") out.Set(key, JsonValue(value));
  }
  return out.Dump();
}

double StatsNumber(AcqServer* server, const char* field) {
  Result<JsonValue> stats =
      JsonValue::Parse(server->HandleRequestLine("{\"cmd\":\"STATS\"}"));
  EXPECT_TRUE(stats.ok());
  const JsonValue* counters = stats.ok() ? stats->Get("stats") : nullptr;
  return counters != nullptr ? counters->GetNumber(field, -1.0) : -1.0;
}

// N concurrent SUBMITs of the same task run it exactly once: a sleep:
// failpoint holds the leader in flight while the followers arrive, join,
// and all receive the leader's reply byte-identically.
TEST(ServerTest, InFlightDuplicateSubmitsJoinTheLeader) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(registry.Configure("server.run", "sleep:600").ok());

  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 300 "
                         "WHERE age <= 30 AND income >= 60000"));
  // The leader registers its in-flight entry synchronously, so the
  // followers below are guaranteed to find it while the leader sleeps.
  JsonValue leader = MustParse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(leader.GetBool("ok", false)) << leader.Dump();
  const std::string leader_id = leader.GetString("id");

  constexpr int kFollowers = 3;
  request.Set("wait", JsonValue::Bool(true));
  std::vector<JsonValue> replies(kFollowers);
  std::vector<std::thread> followers;
  for (int i = 0; i < kFollowers; ++i) {
    followers.emplace_back([&, i] {
      replies[i] = MustParse(server.HandleRequestLine(request.Dump()));
    });
  }
  for (std::thread& t : followers) t.join();
  registry.DisarmAll();

  JsonValue done = MustParse(server.HandleRequestLine(StringFormat(
      "{\"cmd\":\"STATUS\",\"id\":\"%s\",\"wait\":true}", leader_id.c_str())));
  ASSERT_EQ(done.GetString("state"), "done") << done.Dump();
  for (const JsonValue& reply : replies) {
    ASSERT_TRUE(reply.GetBool("ok", false)) << reply.Dump();
    EXPECT_EQ(reply.GetString("state"), "done") << reply.Dump();
    EXPECT_EQ(DumpWithoutId(reply), DumpWithoutId(done));
  }
  EXPECT_EQ(StatsNumber(&server, "submitted"), 4.0);
  EXPECT_EQ(StatsNumber(&server, "completed"), 1.0);
  EXPECT_EQ(StatsNumber(&server, "cache_inflight_joins"), 3.0);
  EXPECT_EQ(StatsNumber(&server, "cache_hits"), 0.0);
}

// Cancelling the leader must not poison its followers: one follower is
// promoted onto the vacated slot, runs the task itself, and completes.
TEST(ServerTest, CancelledLeaderPromotesFollower) {
  if (!FailpointRegistry::compiled_in()) GTEST_SKIP();
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(registry.Configure("server.run", "sleep:600").ok());

  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  // Must NOT be satisfied at the origin: the cancel flag is polled per
  // explored coordinate, so an original-satisfies task would complete
  // before the pre-armed cancellation could land.
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 1400 "
                         "WHERE age <= 32 AND income >= 58000"));
  JsonValue leader = MustParse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(leader.GetBool("ok", false)) << leader.Dump();
  const std::string leader_id = leader.GetString("id");

  request.Set("wait", JsonValue::Bool(true));
  JsonValue follower_reply;
  std::thread follower([&] {
    follower_reply = MustParse(server.HandleRequestLine(request.Dump()));
  });
  // The follower has demonstrably joined before the cancel lands.
  for (int i = 0; i < 5000; ++i) {
    if (StatsNumber(&server, "cache_inflight_joins") >= 1.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(StatsNumber(&server, "cache_inflight_joins"), 1.0);

  JsonValue cancelled = MustParse(server.HandleRequestLine(StringFormat(
      "{\"cmd\":\"CANCEL\",\"id\":\"%s\",\"wait\":true}", leader_id.c_str())));
  registry.DisarmAll();  // the promoted follower reruns server.run
  EXPECT_EQ(cancelled.GetString("state"), "cancelled") << cancelled.Dump();
  follower.join();

  ASSERT_TRUE(follower_reply.GetBool("ok", false)) << follower_reply.Dump();
  EXPECT_EQ(follower_reply.GetString("state"), "done")
      << follower_reply.Dump();
  const JsonValue* report = follower_reply.Get("report");
  ASSERT_NE(report, nullptr) << follower_reply.Dump();
  EXPECT_EQ(report->GetString("termination"), "completed");
  EXPECT_EQ(StatsNumber(&server, "completed"), 1.0);
  EXPECT_EQ(StatsNumber(&server, "cancelled"), 1.0);
}

TEST(ServerProtocolTest, RejectsMalformedProgressFields) {
  AcqServer server(SharedCatalog());
  const char* sql_prefix =
      "{\"cmd\":\"SUBMIT\",\"sql\":\"SELECT * FROM users CONSTRAINT "
      "COUNT(*) >= 1 WHERE age <= 30\",";
  struct Case {
    const char* progress_tail;  // appended after the shared prefix
    const char* why;
  } cases[] = {
      {"\"progress\":{\"interval_ms\":-1}}", "negative interval"},
      {"\"progress\":{\"interval_ms\":1.5}}", "non-integral interval"},
      {"\"progress\":{\"interval_ms\":\"fast\"}}", "non-number interval"},
      {"\"progress\":{\"interval_ms\":3600001}}", "oversize interval"},
      {"\"progress\":5}", "progress is neither bool nor object"},
      {"\"progress\":[true]}", "progress is an array"},
      {"\"progress\":true,\"wait\":false}", "streaming contradicts wait"},
  };
  for (const Case& c : cases) {
    const std::string line = std::string(sql_prefix) + c.progress_tail;
    JsonValue response = MustParse(server.HandleRequestLine(line));
    EXPECT_FALSE(response.GetBool("ok", true)) << c.why << ": " << line;
    EXPECT_EQ(response.GetString("code"), "InvalidArgument")
        << c.why << ": " << response.Dump();
  }
  // interval_ms 0 is NOT malformed: it means one frame per drained layer.
  const std::string ok_line =
      std::string(sql_prefix) +
      "\"progress\":{\"interval_ms\":0},\"wait\":true}";
  JsonValue response = MustParse(server.HandleRequestLine(ok_line));
  EXPECT_TRUE(response.GetBool("ok", false)) << response.Dump();
}

TEST(ServerProtocolTest, StopOnUnknownAndFinishedSessions) {
  AcqServer server(SharedCatalog());
  // Unknown session: NotFound, same contract as CANCEL/STATUS.
  JsonValue missing =
      MustParse(server.HandleRequestLine("{\"cmd\":\"STOP\",\"id\":\"s-99\"}"));
  EXPECT_FALSE(missing.GetBool("ok", true));
  EXPECT_EQ(missing.GetString("code"), "NotFound");

  // Finished session: STOP is a harmless no-op that returns the terminal
  // state unchanged — the report stays the completed one.
  JsonValue submit = JsonValue::Object();
  submit.Set("cmd", JsonValue::Str("SUBMIT"));
  submit.Set("sql", JsonValue::Str(
                        "SELECT * FROM users CONSTRAINT COUNT(*) >= 700 "
                        "WHERE age <= 30 AND income >= 60000"));
  submit.Set("wait", JsonValue::Bool(true));
  JsonValue done = MustParse(server.HandleRequestLine(submit.Dump()));
  ASSERT_TRUE(done.GetBool("ok", false)) << done.Dump();
  ASSERT_EQ(done.GetString("state"), "done") << done.Dump();
  const std::string id = done.GetString("id");

  JsonValue stop = JsonValue::Object();
  stop.Set("cmd", JsonValue::Str("STOP"));
  stop.Set("id", JsonValue::Str(id));
  JsonValue stopped = MustParse(server.HandleRequestLine(stop.Dump()));
  ASSERT_TRUE(stopped.GetBool("ok", false)) << stopped.Dump();
  EXPECT_EQ(stopped.GetString("state"), "done");
  const JsonValue* report = stopped.Get("report");
  ASSERT_NE(report, nullptr) << stopped.Dump();
  EXPECT_EQ(report->GetString("termination"), "completed");
  EXPECT_EQ(StatsNumber(&server, "client_satisfied"), 0.0);
}

TEST(ServerTest, MultipleRequestsOnOneConnection) {
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Malformed line gets an error response, connection stays usable.
  auto raw = client.CallRaw("{{{{");
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  JsonValue error = MustParse(*raw);
  EXPECT_FALSE(error.GetBool("ok", true));

  JsonValue stats_request = JsonValue::Object();
  stats_request.Set("cmd", JsonValue::Str("STATS"));
  auto stats = client.Call(stats_request);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->GetBool("ok", false));
  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace acquire
