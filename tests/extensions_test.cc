// Tests for the library extensions: custom monotone refinement metrics
// (Section 2.3's user-defined metric hook), the parallel evaluation layer,
// and catalog persistence.

#include <gtest/gtest.h>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/acquire.h"
#include "expr/custom_metric_dim.h"
#include "exec/parallel_evaluation.h"
#include "storage/persistence.h"
#include "test_util.h"
#include "workload/tpch_gen.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

RefinementDimPtr MakeNumeric() {
  // x <= 50 over [0, 100]: width 50, MaxPScore 100.
  return std::make_unique<NumericDim>("c0", true, 50.0, false, 0.0, 100.0);
}

TEST(CustomMetricDimTest, MetricTransformsNeededPScores) {
  SyntheticOptions options;
  options.d = 1;
  options.bound = 50.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const Table& rel = *fixture->task.relation;

  auto inner = MakeNumeric();
  ASSERT_TRUE(inner->Bind(rel.schema()).ok());
  const RefinementDim* inner_raw = inner.get();
  CustomMetricDim quadratic(std::move(inner),
                            [](double p) { return p * p; }, "squared");
  ASSERT_TRUE(quadratic.Bind(rel.schema()).ok());
  for (size_t row = 0; row < 50; ++row) {
    double base = inner_raw->NeededPScore(rel, row);
    EXPECT_DOUBLE_EQ(quadratic.NeededPScore(rel, row), base * base);
  }
  EXPECT_DOUBLE_EQ(quadratic.MaxPScore(), 100.0 * 100.0);
}

TEST(CustomMetricDimTest, InverseMetricRoundTrips) {
  CustomMetricDim dim(MakeNumeric(), [](double p) { return p * p; });
  for (double p : {0.0, 1.0, 7.5, 50.0, 99.0}) {
    EXPECT_NEAR(dim.InverseMetric(p * p), p, 1e-6);
  }
  // DescribeAt renders using the inner scale: metric 400 == inner 20.
  EXPECT_EQ(dim.DescribeAt(400.0), MakeNumeric()->DescribeAt(20.0));
  EXPECT_EQ(dim.label(), "c0 <= 50");
}

TEST(CustomMetricDimTest, AcquireRunsOnCustomMetric) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 2000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  double base = probe.EvaluateQueryValue({0.0, 0.0}).value();
  fixture->task.constraint.target = base * 1.8;

  // Wrap dim 0 in a steep metric: refining it becomes "expensive", so the
  // search should prefer dim 1.
  fixture->task.dims[0] = std::make_unique<CustomMetricDim>(
      std::move(fixture->task.dims[0]), [](double p) { return 5.0 * p; });
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions acq;
  acq.order = SearchOrder::kBestFirst;
  auto result = RunAcquire(fixture->task, &layer, acq);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->satisfied);
  const RefinedQuery& q = result->queries[0];
  // pscores are on the custom scale for dim 0; dim 1 should carry most of
  // the refinement.
  EXPECT_GE(q.pscores[1], q.pscores[0] / 5.0 - 1e-9);
}

TEST(ParallelLayerTest, MatchesDirectLayerExactly) {
  SyntheticOptions options;
  options.d = 3;
  options.rows = 30000;
  options.agg = AggregateKind::kSum;
  options.target = 10.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer direct(&fixture->task);
  ParallelEvaluationLayer parallel(&fixture->task, 4);
  ASSERT_TRUE(parallel.Prepare().ok());
  EXPECT_EQ(parallel.threads(), 4u);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> pscores(3);
    for (auto& p : pscores) p = rng.NextDouble(0.0, 80.0);
    double a = direct.EvaluateQueryValue(pscores).value();
    double b = parallel.EvaluateQueryValue(pscores).value();
    EXPECT_NEAR(a, b, 1e-6 * std::max(1.0, std::fabs(a)));
  }
}

TEST(ParallelLayerTest, SmallInputsFallBackToSingleThread) {
  SyntheticOptions options;
  options.d = 1;
  options.rows = 100;  // under the per-worker chunk threshold
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  ParallelEvaluationLayer layer(&fixture->task, 8);
  auto v = layer.EvaluateQueryValue({10.0});
  ASSERT_TRUE(v.ok());
  DirectEvaluationLayer direct(&fixture->task);
  EXPECT_DOUBLE_EQ(*v, direct.EvaluateQueryValue({10.0}).value());
}

TEST(ParallelLayerTest, DriverRunsOnParallelLayer) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 20000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  fixture->task.constraint.target =
      probe.EvaluateQueryValue({0.0, 0.0}).value() * 2.0;
  ParallelEvaluationLayer layer(&fixture->task, 0);  // hardware threads
  auto result = RunAcquire(fixture->task, &layer, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/acq_db_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(PersistenceTest, SchemaSpecRoundTrip) {
  Schema schema({{"id", DataType::kInt64, ""},
                 {"price", DataType::kDouble, ""},
                 {"name", DataType::kString, ""}});
  std::string spec = SchemaToSpec(schema);
  EXPECT_EQ(spec, "id:int64,price:double,name:string");
  auto back = SchemaFromSpec(spec);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_fields(), 3u);
  EXPECT_EQ(back->field(1).type, DataType::kDouble);
  EXPECT_FALSE(SchemaFromSpec("broken").ok());
  EXPECT_FALSE(SchemaFromSpec("x:unknown_type").ok());
  EXPECT_FALSE(SchemaFromSpec("").ok());
}

TEST_F(PersistenceTest, CatalogRoundTrips) {
  Catalog original;
  TpchOptions options;
  options.suppliers = 30;
  options.parts = 40;
  options.lineitems = 200;
  ASSERT_TRUE(GenerateTpch(options, &original).ok());
  ASSERT_TRUE(SaveCatalog(original, dir_).ok());

  Catalog loaded;
  ASSERT_TRUE(LoadCatalog(dir_, &loaded).ok());
  EXPECT_EQ(loaded.TableNames(), original.TableNames());
  for (const std::string& name : original.TableNames()) {
    TablePtr a = original.GetTable(name).value();
    TablePtr b = loaded.GetTable(name).value();
    ASSERT_EQ(a->num_rows(), b->num_rows()) << name;
    ASSERT_EQ(a->num_columns(), b->num_columns()) << name;
    for (size_t r = 0; r < std::min<size_t>(a->num_rows(), 25); ++r) {
      for (size_t c = 0; c < a->num_columns(); ++c) {
        EXPECT_EQ(a->Get(r, c), b->Get(r, c)) << name << " " << r << "," << c;
      }
    }
  }
}

TEST_F(PersistenceTest, LoadFromMissingDirectoryFails) {
  Catalog catalog;
  EXPECT_EQ(LoadCatalog(dir_ + "_nope", &catalog).code(),
            StatusCode::kIOError);
  EXPECT_FALSE(LoadCatalog(dir_, nullptr).ok());
}

}  // namespace
}  // namespace acquire
