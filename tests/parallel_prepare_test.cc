// Bit-identity battery for the sharded cell-sorted layout build
// (index/parallel_prepare.h): the parallel build must reproduce the
// sequential reference byte for byte across pool widths, the kAuto rule
// must pick the path it documents, and the index.parallel_prepare
// failpoint must downgrade to the (identical) sequential build.

#include <gtest/gtest.h>

#include "acquire.h"
#include "common/failpoint.h"
#include "exec/eval_kernel.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

Status BuildLayout(const AcqTask& task, double step, ThreadPool* pool,
                   PrepareMode mode, CellSortedLayout* out,
                   PrepareBuildInfo* info = nullptr) {
  NeededMatrix raw;
  ACQ_RETURN_IF_ERROR(BuildNeededMatrix(task, pool, &raw));
  return BuildCellSortedLayout(raw, step, *task.agg.ops, pool, mode, out,
                               info);
}

TEST(ParallelPrepareTest, ParallelMatchesSequentialAcrossPoolWidths) {
  SyntheticOptions options;
  options.d = 3;
  options.rows = 40000;
  options.agg = AggregateKind::kSum;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;

  CellSortedLayout reference;
  ASSERT_TRUE(BuildLayout(fixture->task, step, nullptr,
                          PrepareMode::kSequential, &reference)
                  .ok());
  ASSERT_GT(reference.num_cells(), 0u);

  for (size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    CellSortedLayout built;
    PrepareBuildInfo info;
    ASSERT_TRUE(BuildLayout(fixture->task, step, &pool, PrepareMode::kParallel,
                            &built, &info)
                    .ok())
        << threads << " threads";
    EXPECT_TRUE(info.parallel) << threads << " threads";
    EXPECT_GE(info.buckets, 1u);
    EXPECT_TRUE(LayoutsBitIdentical(reference, built))
        << threads << " threads";
  }
}

TEST(ParallelPrepareTest, BitIdenticalPerAggregateKind) {
  for (AggregateKind agg : {AggregateKind::kCount, AggregateKind::kSum,
                            AggregateKind::kAvg, AggregateKind::kMin,
                            AggregateKind::kMax}) {
    SyntheticOptions options;
    options.d = 2;
    options.rows = 36000;
    options.agg = agg;
    auto fixture = MakeSyntheticTask(options);
    ASSERT_NE(fixture, nullptr);
    CellSortedLayout sequential, parallel;
    ASSERT_TRUE(BuildLayout(fixture->task, 5.0, nullptr,
                            PrepareMode::kSequential, &sequential)
                    .ok());
    ASSERT_TRUE(BuildLayout(fixture->task, 5.0, nullptr,
                            PrepareMode::kParallel, &parallel)
                    .ok());
    EXPECT_TRUE(LayoutsBitIdentical(sequential, parallel))
        << static_cast<int>(agg);
  }
}

TEST(ParallelPrepareTest, AutoStaysSequentialOnSmallInputs) {
  SyntheticOptions options;
  options.rows = 2000;  // far below the 32k parallel cutoff
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  ThreadPool pool(4);
  CellSortedLayout built;
  PrepareBuildInfo info;
  ASSERT_TRUE(BuildLayout(fixture->task, 5.0, &pool, PrepareMode::kAuto,
                          &built, &info)
                  .ok());
  EXPECT_FALSE(info.parallel);
}

TEST(ParallelPrepareTest, ForcedParallelRunsEvenOnOneWorker) {
  // kParallel must exercise the sharded code path on a 1-worker pool so
  // single-core CI still covers it.
  SyntheticOptions options;
  options.rows = 40000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  ThreadPool pool(1);
  CellSortedLayout sequential, forced;
  PrepareBuildInfo info;
  ASSERT_TRUE(BuildLayout(fixture->task, 5.0, &pool, PrepareMode::kSequential,
                          &sequential)
                  .ok());
  ASSERT_TRUE(BuildLayout(fixture->task, 5.0, &pool, PrepareMode::kParallel,
                          &forced, &info)
                  .ok());
  EXPECT_TRUE(info.parallel);
  EXPECT_TRUE(LayoutsBitIdentical(sequential, forced));
}

TEST(ParallelPrepareTest, RejectsNonPositiveStep) {
  SyntheticOptions options;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  NeededMatrix raw;
  ASSERT_TRUE(BuildNeededMatrix(fixture->task, nullptr, &raw).ok());
  CellSortedLayout out;
  EXPECT_FALSE(BuildCellSortedLayout(raw, 0.0, *fixture->task.agg.ops,
                                     nullptr, PrepareMode::kAuto, &out)
                   .ok());
}

TEST(ParallelPrepareTest, FailpointForcesSequentialFallback) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  SyntheticOptions options;
  options.rows = 40000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("index.parallel_prepare", "p:1").ok());
  CellSortedLayout under_failpoint;
  PrepareBuildInfo info;
  Status built = BuildLayout(fixture->task, 5.0, nullptr,
                             PrepareMode::kParallel, &under_failpoint, &info);
  registry.DisarmAll();
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE(info.parallel);  // downgraded

  CellSortedLayout reference;
  ASSERT_TRUE(BuildLayout(fixture->task, 5.0, nullptr,
                          PrepareMode::kSequential, &reference)
                  .ok());
  EXPECT_TRUE(LayoutsBitIdentical(reference, under_failpoint));
}

TEST(ParallelPrepareTest, LayerReportsBuildInfoAndPrepareMs) {
  SyntheticOptions options;
  options.rows = 40000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  CellSortedEvaluationLayer layer(&fixture->task, 5.0, nullptr,
                                  PrepareMode::kParallel);
  ASSERT_TRUE(layer.Prepare().ok());
  EXPECT_TRUE(layer.build_info().parallel);
  EXPECT_EQ(layer.prepare_mode(), PrepareMode::kParallel);
  EXPECT_GT(layer.stats().prepare_ms, 0.0);
  EXPECT_EQ(layer.consumed_rows(), options.rows);
}

TEST(ParallelPrepareTest, LayerAnswersIdenticallyUnderEitherMode) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 40000;
  options.agg = AggregateKind::kSum;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;
  CellSortedEvaluationLayer sequential(&fixture->task, step, nullptr,
                                       PrepareMode::kSequential);
  CellSortedEvaluationLayer parallel(&fixture->task, step, nullptr,
                                     PrepareMode::kParallel);
  ASSERT_TRUE(sequential.Prepare().ok());
  ASSERT_TRUE(parallel.Prepare().ok());
  const AggregateOps& ops = *fixture->task.agg.ops;
  for (const auto& box :
       {std::vector<PScoreRange>{CellRangeForLevel(2, step),
                                 CellRangeForLevel(3, step)},
        std::vector<PScoreRange>{PScoreRange{-1.0, 4 * step},
                                 PScoreRange{-1.0, 6 * step}},
        std::vector<PScoreRange>{PScoreRange{-1.0, 7.3},
                                 PScoreRange{2.1, 13.9}}}) {
    auto a = sequential.EvaluateBox(box);
    auto b = parallel.EvaluateBox(box);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);  // bit-identical states, not just close finals
    EXPECT_DOUBLE_EQ(ops.Final(*a), ops.Final(*b));
  }
}

TEST(ParallelPrepareTest, ParsePrepareModeRoundTrips) {
  for (PrepareMode mode : {PrepareMode::kAuto, PrepareMode::kSequential,
                           PrepareMode::kParallel}) {
    PrepareMode parsed;
    ASSERT_TRUE(ParsePrepareMode(PrepareModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  PrepareMode parsed;
  EXPECT_TRUE(ParsePrepareMode("PARALLEL", &parsed));
  EXPECT_EQ(parsed, PrepareMode::kParallel);
  EXPECT_FALSE(ParsePrepareMode("turbo", &parsed));
}

TEST(ParallelPrepareTest, BackendOptionsThreadPrepareModeThrough) {
  SyntheticOptions options;
  options.rows = 40000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  BackendOptions backend;
  backend.prepare_mode = PrepareMode::kParallel;
  auto layer =
      MakeEvaluationLayer(&fixture->task, EvalBackend::kCellSorted, backend);
  ASSERT_TRUE(layer.ok());
  auto* cell_sorted = dynamic_cast<CellSortedEvaluationLayer*>(layer->get());
  ASSERT_NE(cell_sorted, nullptr);
  ASSERT_TRUE(cell_sorted->Prepare().ok());
  EXPECT_TRUE(cell_sorted->build_info().parallel);
}

}  // namespace
}  // namespace acquire
