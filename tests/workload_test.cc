#include "workload/workload.h"

#include <gtest/gtest.h>
#include <cmath>

#include "exec/evaluation.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

TEST(TpchGenTest, TablesHaveExpectedShapes) {
  Catalog catalog;
  TpchOptions options;
  options.suppliers = 100;
  options.parts = 200;
  options.suppliers_per_part = 3;
  options.lineitems = 1000;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  EXPECT_EQ(catalog.GetTable("supplier").value()->num_rows(), 100u);
  EXPECT_EQ(catalog.GetTable("part").value()->num_rows(), 200u);
  EXPECT_EQ(catalog.GetTable("partsupp").value()->num_rows(), 600u);
  EXPECT_EQ(catalog.GetTable("lineitem").value()->num_rows(), 1000u);
}

TEST(TpchGenTest, DeterministicGivenSeed) {
  Catalog a;
  Catalog b;
  TpchOptions options;
  options.lineitems = 500;
  ASSERT_TRUE(GenerateTpch(options, &a).ok());
  ASSERT_TRUE(GenerateTpch(options, &b).ok());
  auto ta = a.GetTable("lineitem").value();
  auto tb = b.GetTable("lineitem").value();
  for (size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(ta->Get(r, 1), tb->Get(r, 1));
  }
}

TEST(TpchGenTest, KeysAreInRange) {
  Catalog catalog;
  TpchOptions options;
  options.suppliers = 50;
  options.parts = 80;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  auto ps = catalog.GetTable("partsupp").value();
  size_t pk = ps->schema().FieldIndex("ps_partkey").value();
  size_t sk = ps->schema().FieldIndex("ps_suppkey").value();
  for (size_t r = 0; r < ps->num_rows(); ++r) {
    EXPECT_GE(ps->column(pk).int64_data()[r], 1);
    EXPECT_LE(ps->column(pk).int64_data()[r], 80);
    EXPECT_GE(ps->column(sk).int64_data()[r], 1);
    EXPECT_LE(ps->column(sk).int64_data()[r], 50);
  }
}

TEST(TpchGenTest, PartTypesComeFromTpchVocabulary) {
  EXPECT_EQ(TpchPartTypes().size(), 150u);
  Catalog catalog;
  TpchOptions options;
  options.parts = 100;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  auto part = catalog.GetTable("part").value();
  size_t type_col = part->schema().FieldIndex("p_type").value();
  for (size_t r = 0; r < part->num_rows(); ++r) {
    const std::string& t = part->column(type_col).string_data()[r];
    EXPECT_NE(std::find(TpchPartTypes().begin(), TpchPartTypes().end(), t),
              TpchPartTypes().end());
  }
}

TEST(TpchGenTest, ZipfSkewConcentratesMass) {
  // Section 8.4.4: Z=1 data is heavily skewed toward the domain minimum.
  Catalog uniform_cat;
  Catalog skewed_cat;
  TpchOptions uniform;
  uniform.lineitems = 20000;
  TpchOptions skewed = uniform;
  skewed.zipf_theta = 1.0;
  ASSERT_TRUE(GenerateTpch(uniform, &uniform_cat).ok());
  ASSERT_TRUE(GenerateTpch(skewed, &skewed_cat).ok());
  auto count_below = [](const TablePtr& t, double cutoff) {
    size_t col = t->schema().FieldIndex("l_quantity").value();
    size_t n = 0;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      if (t->column(col).GetDouble(r) <= cutoff) ++n;
    }
    return n;
  };
  size_t u = count_below(uniform_cat.GetTable("lineitem").value(), 10.0);
  size_t s = count_below(skewed_cat.GetTable("lineitem").value(), 10.0);
  EXPECT_GT(s, u * 2);  // far more mass at small values under skew
}

TEST(UsersGenTest, SchemaAndDomains) {
  Catalog catalog;
  UsersOptions options;
  options.users = 2000;
  ASSERT_TRUE(GenerateUsers(options, &catalog).ok());
  auto users = catalog.GetTable("users").value();
  EXPECT_EQ(users->num_rows(), 2000u);
  size_t age = users->schema().FieldIndex("age").value();
  for (size_t r = 0; r < users->num_rows(); ++r) {
    EXPECT_GE(users->column(age).int64_data()[r], 18);
    EXPECT_LE(users->column(age).int64_data()[r], 90);
  }
}

TEST(PatientsGenTest, CostCorrelatesWithAge) {
  Catalog catalog;
  PatientsOptions options;
  options.patients = 5000;
  ASSERT_TRUE(GeneratePatients(options, &catalog).ok());
  auto patients = catalog.GetTable("patients").value();
  size_t age = patients->schema().FieldIndex("age").value();
  size_t cost = patients->schema().FieldIndex("annual_cost").value();
  double young = 0.0;
  double old = 0.0;
  size_t young_n = 0;
  size_t old_n = 0;
  for (size_t r = 0; r < patients->num_rows(); ++r) {
    if (patients->column(age).int64_data()[r] < 40) {
      young += patients->column(cost).GetDouble(r);
      ++young_n;
    } else if (patients->column(age).int64_data()[r] > 70) {
      old += patients->column(cost).GetDouble(r);
      ++old_n;
    }
  }
  ASSERT_GT(young_n, 0u);
  ASSERT_GT(old_n, 0u);
  EXPECT_GT(old / old_n, young / young_n);
}

TEST(ColumnQuantileTest, MatchesSortedOrder) {
  Catalog catalog;
  TpchOptions options;
  options.lineitems = 1001;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  auto t = catalog.GetTable("lineitem").value();
  double q0 = ColumnQuantile(*t, "l_quantity", 0.0).value();
  double q50 = ColumnQuantile(*t, "l_quantity", 0.5).value();
  double q100 = ColumnQuantile(*t, "l_quantity", 1.0).value();
  EXPECT_LE(q0, q50);
  EXPECT_LE(q50, q100);
  EXPECT_NEAR(q50, 25.5, 3.0);  // uniform [1, 50]
  EXPECT_FALSE(ColumnQuantile(*t, "l_quantity", 1.5).ok());
  EXPECT_FALSE(ColumnQuantile(*t, "nope", 0.5).ok());
}

TEST(BuildRatioTaskTest, TargetMatchesMeasuredBase) {
  Catalog catalog;
  TpchOptions options;
  options.lineitems = 10000;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  RatioTaskOptions rt;
  rt.table = "lineitem";
  rt.columns = {"l_quantity", "l_extendedprice"};
  rt.selectivity = 0.25;
  rt.ratio = 0.5;
  auto task = BuildRatioTask(catalog, rt);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_NEAR(task->base_aggregate, 0.25 * 10000, 0.05 * 10000);
  EXPECT_NEAR(task->task.constraint.target, task->base_aggregate / 0.5, 1e-9);
  EXPECT_EQ(task->task.d(), 2u);
}

TEST(BuildRatioTaskTest, InvalidRatioRejected) {
  Catalog catalog;
  TpchOptions options;
  options.lineitems = 100;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  RatioTaskOptions rt;
  rt.table = "lineitem";
  rt.columns = {"l_quantity"};
  rt.ratio = 1.5;
  EXPECT_FALSE(BuildRatioTask(catalog, rt).ok());
  rt.ratio = 0.5;
  rt.columns = {};
  EXPECT_FALSE(BuildRatioTask(catalog, rt).ok());
}

}  // namespace
}  // namespace acquire
