#include "storage/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace acquire {
namespace {

Schema CsvSchema() {
  return Schema({{"id", DataType::kInt64, ""},
                 {"price", DataType::kDouble, ""},
                 {"name", DataType::kString, ""}});
}

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/acq_csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST(ParseCsvLineTest, PlainFields) {
  auto fields = ParseCsvLine("a,b,c", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, QuotedFieldWithDelimiterAndEscapedQuote) {
  auto fields = ParseCsvLine(R"(1,"a,b","say ""hi""")", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields,
            (std::vector<std::string>{"1", "a,b", "say \"hi\""}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto fields = ParseCsvLine(",,", ',');
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
}

TEST(ParseCsvLineTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("\"abc", ',').ok());
}

TEST(ParseCsvLineTest, MidFieldQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("ab\"c\",d", ',').ok());
}

TEST_F(CsvTest, ReadValidFile) {
  WriteFile("id,price,name\n1,2.5,apple\n2,3.5,\"b,anana\"\n");
  auto table = ReadCsv(path_, "fruits", CsvSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->Get(1, 2), Value("b,anana"));
  EXPECT_EQ((*table)->Get(0, 0), Value(int64_t{1}));
}

TEST_F(CsvTest, HeaderMismatchFails) {
  WriteFile("id,cost,name\n1,2.5,apple\n");
  EXPECT_TRUE(ReadCsv(path_, "t", CsvSchema()).status().IsParseError());
}

TEST_F(CsvTest, FieldCountMismatchFails) {
  WriteFile("id,price,name\n1,2.5\n");
  EXPECT_TRUE(ReadCsv(path_, "t", CsvSchema()).status().IsParseError());
}

TEST_F(CsvTest, BadNumberFails) {
  WriteFile("id,price,name\nxyz,2.5,apple\n");
  EXPECT_TRUE(ReadCsv(path_, "t", CsvSchema()).status().IsParseError());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  auto r = ReadCsv("/nonexistent/path.csv", "t", CsvSchema());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, RoundTripPreservesData) {
  Table t("fruits", CsvSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(0.5), Value("a,b")}).ok());
  ASSERT_TRUE(
      t.AppendRow({Value(int64_t{2}), Value(1.25), Value("say \"hi\"")}).ok());
  ASSERT_TRUE(WriteCsv(t, path_).ok());

  auto back = ReadCsv(path_, "fruits", CsvSchema());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ((*back)->num_rows(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ((*back)->Get(r, c), t.Get(r, c)) << r << "," << c;
    }
  }
}

TEST_F(CsvTest, SkipsBlankLines) {
  WriteFile("id,price,name\n1,2.5,apple\n\n2,3.5,pear\n");
  auto table = ReadCsv(path_, "t", CsvSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 2u);
}

TEST_F(CsvTest, CrlfLineEndingsTolerated) {
  WriteFile("id,price,name\r\n1,2.5,apple\r\n\r\n2,3.5,pear\r\n");
  auto table = ReadCsv(path_, "t", CsvSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->Get(0, 2), Value("apple"));  // no trailing \r
  EXPECT_EQ((*table)->Get(1, 2), Value("pear"));
}

TEST_F(CsvTest, NoHeaderMode) {
  WriteFile("1,2.5,apple\n");
  CsvOptions options;
  options.has_header = false;
  auto table = ReadCsv(path_, "t", CsvSchema(), options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 1u);
}

}  // namespace
}  // namespace acquire
