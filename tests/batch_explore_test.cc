// Equivalence suite for the layer-batched Explore pipeline: RunAcquire with
// batch_explore on must produce bit-identical aggregates, identical answer
// sets, and identical cell-query counts to the sequential explorer, for
// every search order and every exact evaluation layer. The batched driver
// only reorders the independent O_1 cell executions — the Eq. 17 merges run
// in the same order either way — so even SUM/AVG must match exactly.

#include <gtest/gtest.h>
#include <cmath>
#include <memory>
#include <tuple>

#include "acquire.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

enum class LayerKind {
  kDirect,
  kCached,
  kParallel,
  kGridIndex,
  kCellSorted,
};

const char* LayerName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kDirect:
      return "Direct";
    case LayerKind::kCached:
      return "Cached";
    case LayerKind::kParallel:
      return "Parallel";
    case LayerKind::kGridIndex:
      return "GridIndex";
    case LayerKind::kCellSorted:
      return "CellSorted";
  }
  return "?";
}

std::unique_ptr<EvaluationLayer> MakeLayer(LayerKind kind, const AcqTask* task,
                                           double step) {
  switch (kind) {
    case LayerKind::kDirect:
      return std::make_unique<DirectEvaluationLayer>(task);
    case LayerKind::kCached:
      return std::make_unique<CachedEvaluationLayer>(task);
    case LayerKind::kParallel:
      return std::make_unique<ParallelEvaluationLayer>(task, 4);
    case LayerKind::kGridIndex:
      return std::make_unique<GridIndexEvaluationLayer>(task, step);
    case LayerKind::kCellSorted:
      return std::make_unique<CellSortedEvaluationLayer>(task, step);
  }
  return nullptr;
}

const char* OrderName(SearchOrder order) {
  switch (order) {
    case SearchOrder::kAuto:
      return "Auto";
    case SearchOrder::kBfs:
      return "Bfs";
    case SearchOrder::kShell:
      return "Shell";
    case SearchOrder::kBestFirst:
      return "BestFirst";
  }
  return "?";
}

void ExpectSameResult(const AcquireResult& seq, const AcquireResult& bat,
                      const std::string& label) {
  EXPECT_EQ(seq.satisfied, bat.satisfied) << label;
  EXPECT_EQ(seq.queries_explored, bat.queries_explored) << label;
  EXPECT_EQ(seq.cell_queries, bat.cell_queries) << label;
  EXPECT_EQ(seq.exec_stats.queries, bat.exec_stats.queries) << label;
  ASSERT_EQ(seq.queries.size(), bat.queries.size()) << label;
  for (size_t i = 0; i < seq.queries.size(); ++i) {
    EXPECT_EQ(seq.queries[i].coord, bat.queries[i].coord)
        << label << " answer " << i;
    EXPECT_EQ(seq.queries[i].pscores, bat.queries[i].pscores)
        << label << " answer " << i;
    // Bit-exact: same cell states merged in the same order.
    EXPECT_EQ(seq.queries[i].aggregate, bat.queries[i].aggregate)
        << label << " answer " << i;
    EXPECT_EQ(seq.queries[i].error, bat.queries[i].error)
        << label << " answer " << i;
    EXPECT_EQ(seq.queries[i].qscore, bat.queries[i].qscore)
        << label << " answer " << i;
  }
  EXPECT_EQ(seq.best.coord, bat.best.coord) << label;
  EXPECT_EQ(seq.best.aggregate, bat.best.aggregate) << label;
  EXPECT_EQ(seq.best.error, bat.best.error) << label;
}

class BatchExploreEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SearchOrder, LayerKind>> {};

TEST_P(BatchExploreEquivalenceTest, BatchedMatchesSequential) {
  auto [order, kind] = GetParam();
  SyntheticOptions topt;
  topt.d = 3;
  topt.rows = 4000;
  topt.agg = AggregateKind::kSum;  // FP-sensitive: catches any reordering
  topt.target = 240000.0;         // forces several expansion layers
  auto fixture = MakeSyntheticTask(topt);
  ASSERT_NE(fixture, nullptr);

  AcquireOptions options;
  options.gamma = 12.0;  // grid step 4.0 with d = 3
  options.delta = 0.02;
  options.order = order;
  const double step = options.gamma / static_cast<double>(topt.d);
  const std::string label =
      std::string(OrderName(order)) + "/" + LayerName(kind);

  auto seq_layer = MakeLayer(kind, &fixture->task, step);
  auto bat_layer = MakeLayer(kind, &fixture->task, step);
  ASSERT_NE(seq_layer, nullptr);
  ASSERT_NE(bat_layer, nullptr);

  options.batch_explore = BatchExplore::kOff;
  auto seq = RunAcquire(fixture->task, seq_layer.get(), options);
  options.batch_explore = BatchExplore::kOn;  // forced even for best-first
  auto bat = RunAcquire(fixture->task, bat_layer.get(), options);
  ASSERT_TRUE(seq.ok() && bat.ok()) << label;
  ExpectSameResult(*seq, *bat, label);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrdersAllLayers, BatchExploreEquivalenceTest,
    ::testing::Combine(::testing::Values(SearchOrder::kAuto, SearchOrder::kBfs,
                                         SearchOrder::kShell,
                                         SearchOrder::kBestFirst),
                       ::testing::Values(LayerKind::kDirect, LayerKind::kCached,
                                         LayerKind::kParallel,
                                         LayerKind::kGridIndex,
                                         LayerKind::kCellSorted)),
    [](const auto& info) {
      return std::string(OrderName(std::get<0>(info.param))) + "_" +
             LayerName(std::get<1>(info.param));
    });

TEST(BatchExploreTest, CollectWithinGammaMatches) {
  // The within-gamma sweep keeps exploring past the hit layer; layer
  // accounting (stop_score at layer granularity) must agree across modes.
  SyntheticOptions topt;
  topt.d = 2;
  topt.rows = 3000;
  topt.agg = AggregateKind::kCount;
  topt.target = 900.0;
  auto fixture = MakeSyntheticTask(topt);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer seq_layer(&fixture->task);
  CachedEvaluationLayer bat_layer(&fixture->task);

  AcquireOptions options;
  options.gamma = 10.0;
  options.delta = 0.03;
  options.collect_within_gamma = true;
  options.batch_explore = BatchExplore::kOff;
  auto seq = RunAcquire(fixture->task, &seq_layer, options);
  options.batch_explore = BatchExplore::kOn;
  auto bat = RunAcquire(fixture->task, &bat_layer, options);
  ASSERT_TRUE(seq.ok() && bat.ok());
  ExpectSameResult(*seq, *bat, "within_gamma");
  EXPECT_TRUE(seq->satisfied);
}

TEST(BatchExploreTest, NonIncrementalAblationMatches) {
  // With use_incremental off the batched driver batches the full-query
  // boxes instead of cell sub-queries; results must still be identical.
  SyntheticOptions topt;
  topt.d = 2;
  topt.rows = 2000;
  topt.agg = AggregateKind::kAvg;
  topt.target = 480.0;
  auto fixture = MakeSyntheticTask(topt);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer seq_layer(&fixture->task);
  CachedEvaluationLayer bat_layer(&fixture->task);

  AcquireOptions options;
  options.gamma = 10.0;
  options.use_incremental = false;
  options.batch_explore = BatchExplore::kOff;
  auto seq = RunAcquire(fixture->task, &seq_layer, options);
  options.batch_explore = BatchExplore::kOn;
  auto bat = RunAcquire(fixture->task, &bat_layer, options);
  ASSERT_TRUE(seq.ok() && bat.ok());
  ExpectSameResult(*seq, *bat, "non_incremental");
  EXPECT_EQ(seq->cell_queries, 0u);
}

TEST(BatchExploreTest, BestFirstAutoBatchesAndMatchesSequential) {
  // kAuto now micro-batches the best-first order too (equal-score frontier
  // runs become tiny layers); that must stay indistinguishable from the
  // unbatched explorer.
  SyntheticOptions topt;
  topt.d = 2;
  topt.rows = 1000;
  topt.target = 600.0;
  auto fixture = MakeSyntheticTask(topt);
  ASSERT_NE(fixture, nullptr);
  AcquireOptions options;
  options.order = SearchOrder::kBestFirst;
  CachedEvaluationLayer seq_layer(&fixture->task);
  options.batch_explore = BatchExplore::kOff;
  auto seq = RunAcquire(fixture->task, &seq_layer, options);
  CachedEvaluationLayer bat_layer(&fixture->task);
  options.batch_explore = BatchExplore::kAuto;
  auto bat = RunAcquire(fixture->task, &bat_layer, options);
  ASSERT_TRUE(seq.ok() && bat.ok());
  ExpectSameResult(*seq, *bat, "best_first_auto");
}

TEST(BatchExploreTest, ContractionBatchedMatchesSequential) {
  // Overshooting equality target routes ProcessAcq into contraction; the
  // batched layer walk there must agree with the sequential one.
  SyntheticOptions topt;
  topt.d = 2;
  topt.rows = 3000;
  topt.agg = AggregateKind::kCount;
  topt.bound = 80.0;    // wide original query ...
  topt.target = 500.0;  // ... already exceeds the target: contraction
  auto fixture = MakeSyntheticTask(topt);
  ASSERT_NE(fixture, nullptr);

  AcquireOptions options;
  options.gamma = 10.0;
  options.delta = 0.02;
  options.batch_explore = BatchExplore::kOff;
  CachedEvaluationLayer seq_layer(&fixture->task);
  auto seq = ProcessAcq(fixture->task, &seq_layer, options);
  options.batch_explore = BatchExplore::kOn;
  CachedEvaluationLayer bat_layer(&fixture->task);
  auto bat = ProcessAcq(fixture->task, &bat_layer, options);
  ASSERT_TRUE(seq.ok() && bat.ok());
  ASSERT_EQ(seq->mode, AcqMode::kContracted);
  ASSERT_EQ(bat->mode, AcqMode::kContracted);
  ExpectSameResult(seq->result, bat->result, "contraction");
}

TEST(BatchExploreTest, PhaseTimingsAreReported) {
  SyntheticOptions topt;
  topt.d = 2;
  topt.rows = 2000;
  topt.target = 900.0;
  auto fixture = MakeSyntheticTask(topt);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  options.batch_explore = BatchExplore::kOn;
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->exec_stats.expand_ms, 0.0);
  EXPECT_GT(result->exec_stats.explore_ms, 0.0);
  EXPECT_GE(result->exec_stats.merge_ms, 0.0);
  EXPECT_GE(result->elapsed_ms,
            0.0);  // monotonic stopwatch can never go negative
}

}  // namespace
}  // namespace acquire
