#include "expr/refinement_dim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "expr/interval.h"

namespace acquire {
namespace {

// One numeric column "x" with the given values.
TablePtr MakeTable(std::vector<double> values) {
  auto t = std::make_shared<Table>("t", Schema({{"x", DataType::kDouble, ""},
                                                {"y", DataType::kDouble, ""}}));
  for (double v : values) {
    EXPECT_TRUE(t->AppendRow({Value(v), Value(v * 2.0)}).ok());
  }
  return t;
}

TEST(IntervalTest, ContainsRespectsOpenness) {
  Interval closed = Interval::Closed(0.0, 10.0);
  EXPECT_TRUE(closed.Contains(0.0));
  EXPECT_TRUE(closed.Contains(10.0));
  EXPECT_FALSE(closed.Contains(-0.1));
  Interval open{0.0, 10.0, true, true};
  EXPECT_FALSE(open.Contains(0.0));
  EXPECT_FALSE(open.Contains(10.0));
  EXPECT_TRUE(open.Contains(5.0));
}

TEST(IntervalTest, EmptyAndPoint) {
  EXPECT_TRUE(Interval::Point(3.0).IsPoint());
  EXPECT_FALSE(Interval::Point(3.0).IsEmpty());
  Interval empty{3.0, 2.0, false, false};
  EXPECT_TRUE(empty.IsEmpty());
  Interval half{3.0, 3.0, true, false};
  EXPECT_TRUE(half.IsEmpty());
}

TEST(IntervalTest, ToStringShowsBrackets) {
  Interval i{0.0, 50.0, true, false};
  EXPECT_EQ(i.ToString(), "(0, 50]");
}

TEST(NumericDimTest, UpperBoundNeededPScore) {
  // Predicate: x <= 50 over domain [0, 100]; width = 50.
  auto t = MakeTable({10.0, 50.0, 60.0, 100.0});
  NumericDim dim("x", /*is_upper=*/true, 50.0, /*strict=*/false, 0.0, 100.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 0), 0.0);    // 10 satisfies
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 1), 0.0);    // 50 on the bound
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 2), 20.0);   // (60-50)/50*100
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 3), 100.0);  // domain max
}

TEST(NumericDimTest, LowerBoundNeededPScore) {
  // Predicate: x >= 50 over domain [0, 100]; width = 50.
  auto t = MakeTable({10.0, 50.0, 60.0});
  NumericDim dim("x", /*is_upper=*/false, 50.0, /*strict=*/false, 0.0, 100.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 0), 80.0);  // (50-10)/50*100
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 1), 0.0);
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 2), 0.0);
}

TEST(NumericDimTest, StrictBoundNeedsEpsilonRefinement) {
  // Predicate: x < 50. A tuple at exactly 50 needs *some* refinement.
  auto t = MakeTable({50.0, 49.9});
  NumericDim dim("x", true, 50.0, /*strict=*/true, 0.0, 100.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_GT(dim.NeededPScore(*t, 0), 0.0);
  EXPECT_LT(dim.NeededPScore(*t, 0), 1e-6);
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 1), 0.0);
}

TEST(NumericDimTest, MaxPScoreFromDomain) {
  NumericDim upper("x", true, 50.0, false, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(upper.MaxPScore(), 100.0);  // (100-50)/50*100
  NumericDim lower("x", false, 50.0, false, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(lower.MaxPScore(), 100.0);  // (50-0)/50*100
}

TEST(NumericDimTest, UserCapLimitsMaxPScore) {
  NumericDim dim("x", true, 50.0, false, 0.0, 100.0);
  dim.set_max_refinement(30.0);
  EXPECT_DOUBLE_EQ(dim.MaxPScore(), 30.0);
  // Tuples beyond the cap become unreachable.
  auto t = MakeTable({70.0});
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_TRUE(std::isinf(dim.NeededPScore(*t, 0)));  // needs 40 > cap 30
}

TEST(NumericDimTest, RefinedBoundMatchesEquationOne) {
  NumericDim dim("x", true, 50.0, false, 0.0, 100.0);
  // PScore 20 over width 50 expands the bound by 10.
  EXPECT_DOUBLE_EQ(dim.RefinedBound(20.0), 60.0);
  NumericDim lower("x", false, 50.0, false, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(lower.RefinedBound(20.0), 40.0);
}

TEST(NumericDimTest, DegenerateWidthFallsBack) {
  // Bound at the domain minimum: paper's width would be 0.
  NumericDim dim("x", true, 0.0, false, 0.0, 100.0);
  EXPECT_GT(dim.width(), 0.0);
  EXPECT_GT(dim.MaxPScore(), 0.0);
}

TEST(NumericDimTest, DescribeAndLabel) {
  NumericDim dim("x", true, 50.0, true, 0.0, 100.0);
  EXPECT_EQ(dim.label(), "x < 50");
  EXPECT_EQ(dim.DescribeAt(0.0), "x < 50");
  EXPECT_EQ(dim.DescribeAt(20.0), "x <= 60");
  NumericDim lower("x", false, 50.0, false, 0.0, 100.0);
  EXPECT_EQ(lower.label(), "x >= 50");
  EXPECT_EQ(lower.DescribeAt(20.0), "x >= 40");
}

TEST(NumericDimTest, BindRejectsNonNumeric) {
  auto t = std::make_shared<Table>("t", Schema({{"s", DataType::kString, ""}}));
  NumericDim dim("s", true, 1.0, false, 0.0, 1.0);
  EXPECT_TRUE(dim.Bind(t->schema()).IsTypeError());
}

TEST(JoinDimTest, PScoreEqualsBandWidth) {
  // Section 2.4: denominator 100 makes PScore the band in value units.
  auto t = MakeTable({10.0});  // x=10, y=20
  JoinDim dim("x", "y", /*band_cap=*/50.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 0), 10.0);  // |10-20|
  EXPECT_DOUBLE_EQ(dim.MaxPScore(), 50.0);
}

TEST(JoinDimTest, ExactMatchNeedsNoRefinement) {
  auto t = std::make_shared<Table>("t", Schema({{"x", DataType::kDouble, ""},
                                                {"y", DataType::kDouble, ""}}));
  ASSERT_TRUE(t->AppendRow({Value(5.0), Value(5.0)}).ok());
  JoinDim dim("x", "y", 50.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 0), 0.0);
}

TEST(JoinDimTest, BeyondCapIsUnreachable) {
  auto t = MakeTable({100.0});  // |100 - 200| = 100 > cap
  JoinDim dim("x", "y", 50.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_TRUE(std::isinf(dim.NeededPScore(*t, 0)));
}

TEST(JoinDimTest, DescribeShowsBand) {
  JoinDim dim("a.x", "b.x", 50.0);
  EXPECT_EQ(dim.label(), "a.x = b.x");
  EXPECT_EQ(dim.DescribeAt(0.0), "a.x = b.x");
  EXPECT_EQ(dim.DescribeAt(10.0), "ABS(a.x - b.x) <= 10");
}

TEST(RefinementDimTest, WeightDefaultsToOne) {
  NumericDim dim("x", true, 50.0, false, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(dim.weight(), 1.0);
  dim.set_weight(2.5);
  EXPECT_DOUBLE_EQ(dim.weight(), 2.5);
}

}  // namespace
}  // namespace acquire
