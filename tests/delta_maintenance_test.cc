// Incremental delta maintenance of the index backends: rows appended to
// the relation after Prepare() must be answered bit-identically to a full
// rebuild over the grown relation — on every query shape (cell probe,
// aligned box, off-grid scan, batched cells) and whether the rows are
// still staged in the delta buffer or already merged into the base layout.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "acquire.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

std::vector<std::vector<Value>> MakeAppendRows(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(count);
  for (size_t r = 0; r < count; ++r) {
    std::vector<Value> row;
    row.reserve(6);
    for (size_t c = 0; c < 5; ++c) {
      row.emplace_back(rng.NextDouble(0.0, 100.0));
    }
    row.emplace_back(rng.NextDouble(0.0, 1000.0));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status AppendToFixture(test_util::SyntheticTask* fixture, size_t count,
                       uint64_t seed) {
  return fixture->catalog.AppendRows("data", MakeAppendRows(count, seed));
}

// The query shapes Algorithm 3 (and the repartition probes) actually issue.
std::vector<std::vector<PScoreRange>> QueryShapes(double step) {
  return {
      // Single cells, populated and far-out (likely empty).
      {CellRangeForLevel(2, step), CellRangeForLevel(3, step)},
      {CellRangeForLevel(0, step), CellRangeForLevel(0, step)},
      {CellRangeForLevel(40, step), CellRangeForLevel(40, step)},
      // Aligned multi-cell boxes.
      {PScoreRange{-1.0, 4 * step}, PScoreRange{-1.0, 6 * step}},
      {PScoreRange{-1.0, 20 * step}, PScoreRange{-1.0, 20 * step}},
      // Off-grid boxes (fall back to the matrix scan).
      {PScoreRange{-1.0, 7.3}, PScoreRange{2.1, 13.9}},
  };
}

// Every shape, answered by `layer`, must be bitwise equal to `reference`
// (a layer freshly prepared over the grown relation).
void ExpectBitIdenticalAnswers(EvaluationLayer* layer,
                               EvaluationLayer* reference, double step) {
  for (const auto& box : QueryShapes(step)) {
    auto got = layer->EvaluateBox(box);
    auto expected = reference->EvaluateBox(box);
    ASSERT_TRUE(got.ok() && expected.ok());
    ASSERT_EQ(got->size(), expected->size());
    EXPECT_EQ(0, std::memcmp(got->data(), expected->data(),
                             got->size() * sizeof(double)))
        << "box[0]=[" << box[0].lo << "," << box[0].hi << "]";
  }
  // Batched cells, including duplicates (the dedup path copies answers).
  std::vector<GridCoord> coords;
  for (int32_t a = 0; a < 8; ++a) {
    for (int32_t b = 0; b < 8; ++b) coords.push_back(GridCoord{a, b});
  }
  coords.push_back(GridCoord{2, 3});
  coords.push_back(GridCoord{2, 3});
  auto got = layer->EvaluateCells(coords.data(), coords.size(), step);
  auto expected =
      reference->EvaluateCells(coords.data(), coords.size(), step);
  ASSERT_TRUE(got.ok() && expected.ok());
  ASSERT_EQ(got->size(), expected->size());
  for (size_t i = 0; i < got->size(); ++i) {
    ASSERT_EQ((*got)[i].size(), (*expected)[i].size()) << i;
    EXPECT_EQ(0, std::memcmp((*got)[i].data(), (*expected)[i].data(),
                             (*got)[i].size() * sizeof(double)))
        << "cell " << i;
  }
}

TEST(DeltaMaintenanceTest, CellSortedStagedDeltasMatchFullRebuild) {
  for (AggregateKind agg :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kAvg,
        AggregateKind::kMin, AggregateKind::kMax}) {
    SyntheticOptions options;
    options.d = 2;
    options.rows = 8000;
    options.agg = agg;
    auto fixture = MakeSyntheticTask(options);
    ASSERT_NE(fixture, nullptr);
    const double step = 5.0;

    CellSortedEvaluationLayer layer(&fixture->task, step);
    ASSERT_TRUE(layer.Prepare().ok());
    ASSERT_TRUE(AppendToFixture(fixture.get(), 500, 99).ok());

    // Below the auto threshold (max(4096, rows/8)): the appended rows must
    // stay staged, not trigger a rebuild/merge.
    std::vector<PScoreRange> probe = {CellRangeForLevel(2, step),
                                      CellRangeForLevel(3, step)};
    ASSERT_TRUE(layer.EvaluateBox(probe).ok());
    EXPECT_EQ(layer.consumed_rows(), options.rows + 500);
    EXPECT_GT(layer.staged_delta_rows(), 0u);
    EXPECT_GT(layer.stats().delta_rows, 0u);
    EXPECT_EQ(layer.stats().delta_merges, 0u);

    CellSortedEvaluationLayer rebuilt(&fixture->task, step);
    ASSERT_TRUE(rebuilt.Prepare().ok());
    ExpectBitIdenticalAnswers(&layer, &rebuilt, step);
  }
}

TEST(DeltaMaintenanceTest, CellSortedMergeMatchesFullRebuild) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 8000;
  options.agg = AggregateKind::kSum;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;

  CellSortedEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());
  ASSERT_TRUE(AppendToFixture(fixture.get(), 700, 7).ok());
  ASSERT_TRUE(layer.MergeDeltas().ok());
  EXPECT_EQ(layer.staged_delta_rows(), 0u);
  EXPECT_EQ(layer.consumed_rows(), options.rows + 700);
  EXPECT_EQ(layer.stats().delta_merges, 1u);
  EXPECT_TRUE(layer.SupportsConcurrentEvaluate());

  CellSortedEvaluationLayer rebuilt(&fixture->task, step);
  ASSERT_TRUE(rebuilt.Prepare().ok());
  ExpectBitIdenticalAnswers(&layer, &rebuilt, step);

  // A second append round on the already-merged layer must keep matching.
  ASSERT_TRUE(AppendToFixture(fixture.get(), 300, 8).ok());
  CellSortedEvaluationLayer rebuilt2(&fixture->task, step);
  ASSERT_TRUE(rebuilt2.Prepare().ok());
  ExpectBitIdenticalAnswers(&layer, &rebuilt2, step);
}

TEST(DeltaMaintenanceTest, CellSortedThresholdTriggersMerge) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 6000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;

  CellSortedEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());
  layer.set_delta_merge_threshold(100);
  EXPECT_EQ(layer.delta_merge_threshold(), 100u);

  // Below the threshold: staged.
  ASSERT_TRUE(AppendToFixture(fixture.get(), 50, 1).ok());
  std::vector<PScoreRange> probe = {CellRangeForLevel(1, step),
                                    CellRangeForLevel(1, step)};
  ASSERT_TRUE(layer.EvaluateBox(probe).ok());
  EXPECT_GT(layer.staged_delta_rows(), 0u);
  EXPECT_EQ(layer.stats().delta_merges, 0u);
  EXPECT_FALSE(layer.SupportsConcurrentEvaluate());  // staging pending

  // Crossing it: the next sync absorbs everything.
  ASSERT_TRUE(AppendToFixture(fixture.get(), 100, 2).ok());
  ASSERT_TRUE(layer.EvaluateBox(probe).ok());
  EXPECT_EQ(layer.staged_delta_rows(), 0u);
  EXPECT_EQ(layer.stats().delta_merges, 1u);
  EXPECT_TRUE(layer.SupportsConcurrentEvaluate());

  CellSortedEvaluationLayer rebuilt(&fixture->task, step);
  ASSERT_TRUE(rebuilt.Prepare().ok());
  ExpectBitIdenticalAnswers(&layer, &rebuilt, step);
}

TEST(DeltaMaintenanceTest, CellSortedOffGridProbeAbsorbsStagedRows) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 6000;
  options.agg = AggregateKind::kSum;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;
  CellSortedEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());
  ASSERT_TRUE(AppendToFixture(fixture.get(), 200, 3).ok());

  // The off-grid fallback scans the contiguous permuted matrix, so it must
  // absorb the staged rows first — and still match the rebuild exactly.
  std::vector<PScoreRange> off_grid = {PScoreRange{-1.0, 7.3},
                                       PScoreRange{2.1, 13.9}};
  auto got = layer.EvaluateBox(off_grid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(layer.staged_delta_rows(), 0u);
  EXPECT_EQ(layer.stats().delta_merges, 1u);

  CellSortedEvaluationLayer rebuilt(&fixture->task, step);
  ASSERT_TRUE(rebuilt.Prepare().ok());
  auto expected = rebuilt.EvaluateBox(off_grid);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*got, *expected);
}

TEST(DeltaMaintenanceTest, CellSortedDeltaMergeFailpointRebuildIsIdentical) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  SyntheticOptions options;
  options.d = 2;
  options.rows = 6000;
  options.agg = AggregateKind::kSum;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;
  CellSortedEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());
  ASSERT_TRUE(AppendToFixture(fixture.get(), 400, 4).ok());

  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("index.delta_merge", "p:1").ok());
  Status merged = layer.MergeDeltas();
  registry.DisarmAll();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(layer.staged_delta_rows(), 0u);
  EXPECT_EQ(layer.consumed_rows(), options.rows + 400);

  CellSortedEvaluationLayer rebuilt(&fixture->task, step);
  ASSERT_TRUE(rebuilt.Prepare().ok());
  ExpectBitIdenticalAnswers(&layer, &rebuilt, step);
}

TEST(DeltaMaintenanceTest, GridIndexStagedDeltasMatchFullRebuild) {
  for (AggregateKind agg : {AggregateKind::kCount, AggregateKind::kSum,
                            AggregateKind::kAvg, AggregateKind::kMin}) {
    SyntheticOptions options;
    options.d = 2;
    options.rows = 8000;
    options.agg = agg;
    auto fixture = MakeSyntheticTask(options);
    ASSERT_NE(fixture, nullptr);
    const double step = 5.0;

    GridIndexEvaluationLayer layer(&fixture->task, step);
    ASSERT_TRUE(layer.Prepare().ok());
    ASSERT_TRUE(AppendToFixture(fixture.get(), 500, 11).ok());

    std::vector<PScoreRange> probe = {CellRangeForLevel(2, step),
                                      CellRangeForLevel(3, step)};
    ASSERT_TRUE(layer.EvaluateBox(probe).ok());
    EXPECT_EQ(layer.consumed_rows(), options.rows + 500);
    EXPECT_GT(layer.staged_delta_rows(), 0u);

    GridIndexEvaluationLayer rebuilt(&fixture->task, step);
    ASSERT_TRUE(rebuilt.Prepare().ok());
    ExpectBitIdenticalAnswers(&layer, &rebuilt, step);
  }
}

TEST(DeltaMaintenanceTest, GridIndexMergeMatchesFullRebuild) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 8000;
  options.agg = AggregateKind::kSum;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;

  GridIndexEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());
  ASSERT_TRUE(AppendToFixture(fixture.get(), 600, 12).ok());
  ASSERT_TRUE(layer.MergeDeltas().ok());
  EXPECT_EQ(layer.staged_delta_rows(), 0u);
  EXPECT_EQ(layer.consumed_rows(), options.rows + 600);
  EXPECT_TRUE(layer.SupportsConcurrentEvaluate());

  GridIndexEvaluationLayer rebuilt(&fixture->task, step);
  ASSERT_TRUE(rebuilt.Prepare().ok());
  ExpectBitIdenticalAnswers(&layer, &rebuilt, step);
}

TEST(DeltaMaintenanceTest, GridIndexDeltaMergeFailpointRebuildIsIdentical) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  SyntheticOptions options;
  options.d = 2;
  options.rows = 6000;
  options.agg = AggregateKind::kMax;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;
  GridIndexEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());
  ASSERT_TRUE(AppendToFixture(fixture.get(), 300, 13).ok());

  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("index.delta_merge", "p:1").ok());
  Status merged = layer.MergeDeltas();
  registry.DisarmAll();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(layer.staged_delta_rows(), 0u);

  GridIndexEvaluationLayer rebuilt(&fixture->task, step);
  ASSERT_TRUE(rebuilt.Prepare().ok());
  ExpectBitIdenticalAnswers(&layer, &rebuilt, step);
}

TEST(DeltaMaintenanceTest, AppendKeepsAmortizedCostLow) {
  // Acceptance shape: appending k rows below the threshold must not run a
  // rebuild — prepare_ms accrues only the staging cost, and delta_merges
  // stays 0 across many small appends.
  SyntheticOptions options;
  options.d = 2;
  options.rows = 20000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;
  CellSortedEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());

  std::vector<PScoreRange> probe = {CellRangeForLevel(2, step),
                                    CellRangeForLevel(3, step)};
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(AppendToFixture(fixture.get(), 50, 100 + round).ok());
    ASSERT_TRUE(layer.EvaluateBox(probe).ok());
  }
  // 500 rows < max(4096, 20000/8): no merge, all staged.
  EXPECT_EQ(layer.stats().delta_merges, 0u);
  EXPECT_GT(layer.staged_delta_rows(), 0u);
  EXPECT_EQ(layer.consumed_rows(), options.rows + 500);
}

TEST(DeltaMaintenanceTest, TableAppendRowsIsAtomicOnBadRow) {
  SyntheticOptions options;
  options.rows = 100;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  auto table = fixture->catalog.GetTable("data");
  ASSERT_TRUE(table.ok());
  const size_t before = (*table)->num_rows();
  const uint64_t generation = fixture->catalog.generation();

  // Row 1 has a string in a double column: the whole batch must be
  // rejected with row 0 NOT applied, and the generation unchanged.
  std::vector<std::vector<Value>> rows = MakeAppendRows(2, 5);
  rows[1][2] = Value("oops");
  Status appended = fixture->catalog.AppendRows("data", rows);
  EXPECT_FALSE(appended.ok());
  EXPECT_EQ((*table)->num_rows(), before);
  EXPECT_EQ(fixture->catalog.generation(), generation);

  // Width mismatch is rejected the same way.
  rows = MakeAppendRows(1, 6);
  rows[0].pop_back();
  EXPECT_FALSE(fixture->catalog.AppendRows("data", rows).ok());
  EXPECT_EQ((*table)->num_rows(), before);

  // And a good batch lands, bumping the generation once.
  ASSERT_TRUE(
      fixture->catalog.AppendRows("data", MakeAppendRows(3, 5)).ok());
  EXPECT_EQ((*table)->num_rows(), before + 3);
  EXPECT_EQ(fixture->catalog.generation(), generation + 1);

  // Unknown table / empty batch.
  EXPECT_FALSE(
      fixture->catalog.AppendRows("nope", MakeAppendRows(1, 5)).ok());
  ASSERT_TRUE(fixture->catalog.AppendRows("data", {}).ok());
  EXPECT_EQ(fixture->catalog.generation(), generation + 1);  // no-op: no bump
}

}  // namespace
}  // namespace acquire
