// Executable form of the paper's Table 1 (related-work capability matrix):
// which technique supports which aggregates, proximity minimization, and
// cardinality/aggregate targets.

#include <gtest/gtest.h>

#include "baselines/binsearch.h"
#include "baselines/topk.h"
#include "baselines/tqgen.h"
#include "core/acquire.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

std::unique_ptr<test_util::SyntheticTask> FixtureWithAggregate(
    AggregateKind agg, ConstraintOp op) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 2000;
  options.agg = agg;
  options.op = op;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  if (fixture == nullptr) return nullptr;
  DirectEvaluationLayer probe(&fixture->task);
  double base = probe.EvaluateQueryValue({0.0, 0.0}).value_or(0.0);
  // A modestly higher target than the original query attains.
  fixture->task.constraint.target = std::max(base * 1.4, base + 1.0);
  return fixture;
}

TEST(CapabilityMatrixTest, AcquireSupportsAllOspAggregates) {
  // Table 1 row "ACQUIRE": COUNT, SUM, MIN, MAX, AVG (+ UDA).
  for (AggregateKind agg :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMax,
        AggregateKind::kAvg}) {
    auto fixture = FixtureWithAggregate(agg, ConstraintOp::kGe);
    ASSERT_NE(fixture, nullptr);
    CachedEvaluationLayer layer(&fixture->task);
    auto result = RunAcquire(fixture->task, &layer, {});
    ASSERT_TRUE(result.ok()) << AggregateKindToString(agg);
    EXPECT_TRUE(result->satisfied || !result->queries.empty() ||
                result->best.aggregate > 0.0)
        << AggregateKindToString(agg);
  }
}

TEST(CapabilityMatrixTest, UdaPlansAndRuns) {
  auto uda = std::make_unique<LambdaAggregateOps>(
      "SUMSQ2", AggregateOps::State{0.0},
      [](AggregateOps::State* s, double v) { (*s)[0] += v * v; },
      [](AggregateOps::State* s, const AggregateOps::State& o) {
        (*s)[0] += o[0];
      },
      [](const AggregateOps::State& s) { return s[0]; });
  ASSERT_TRUE(UdaRegistry::Instance().Register(std::move(uda)).ok());

  SyntheticOptions base;
  base.d = 1;
  base.target = 1.0;
  auto fixture = MakeSyntheticTask(base);
  ASSERT_NE(fixture, nullptr);
  // Re-plan with the UDA.
  QuerySpec spec;
  spec.tables = {"data"};
  spec.predicates.push_back(
      SelectPredicateSpec{"c0", CompareOp::kLe, 30.0, true, 1.0, {}});
  spec.agg_kind = AggregateKind::kUda;
  spec.uda_name = "SUMSQ2";
  spec.agg_column = "val";
  spec.constraint_op = ConstraintOp::kGe;
  spec.target = 1.0;
  auto task = PlanAcqTask(fixture->catalog, spec);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  DirectEvaluationLayer probe(&*task);
  double start = probe.EvaluateQueryValue({0.0}).value_or(0.0);
  ASSERT_GT(start, 0.0);
  task->constraint.target = start * 1.5;

  CachedEvaluationLayer layer(&*task);
  auto result = RunAcquire(*task, &layer, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
}

TEST(CapabilityMatrixTest, TopKIsCountOnly) {
  // Table 1 rows "Skyline/Top-k": COUNT only.
  auto count_fixture = FixtureWithAggregate(AggregateKind::kCount,
                                            ConstraintOp::kEq);
  ASSERT_NE(count_fixture, nullptr);
  EXPECT_TRUE(RunTopK(count_fixture->task, Norm::L1()).ok());

  auto sum_fixture = FixtureWithAggregate(AggregateKind::kSum,
                                          ConstraintOp::kEq);
  ASSERT_NE(sum_fixture, nullptr);
  EXPECT_TRUE(RunTopK(sum_fixture->task, Norm::L1()).status().IsUnsupported());
}

TEST(CapabilityMatrixTest, QueryOrientedBaselinesHandleAnyTaskButIgnoreProximity) {
  // BinSearch/TQGen execute but make no proximity promise: ACQUIRE's answer
  // is never (meaningfully) farther from Q than theirs on the same task.
  auto fixture = FixtureWithAggregate(AggregateKind::kCount, ConstraintOp::kEq);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer acq_layer(&fixture->task);
  auto acq = RunAcquire(fixture->task, &acq_layer, {});
  ASSERT_TRUE(acq.ok());
  ASSERT_TRUE(acq->satisfied);

  DirectEvaluationLayer bin_layer(&fixture->task);
  auto bin = RunBinSearch(fixture->task, &bin_layer, Norm::L1(), {});
  ASSERT_TRUE(bin.ok());
  DirectEvaluationLayer tq_layer(&fixture->task);
  auto tq = RunTqGen(fixture->task, &tq_layer, Norm::L1(), {});
  ASSERT_TRUE(tq.ok());

  EXPECT_LE(acq->queries[0].qscore, bin->qscore + fixture->task.d() * 10.0);
  EXPECT_LE(acq->queries[0].qscore, tq->qscore + fixture->task.d() * 10.0);
}

TEST(CapabilityMatrixTest, AcquireRefinesJoinsBaselinesDoNot) {
  // Section 8.2's final point: none of the compared techniques refine join
  // predicates; ACQUIRE does (JoinDim). Proven structurally: a JoinDim task
  // runs through ACQUIRE (see PaperExamplesTest.Q3) while Top-k on a
  // non-COUNT task and the others' APIs have no join notion at all. Here we
  // simply pin the supported-dimension claim.
  SyntheticOptions options;
  options.d = 1;
  options.target = 10.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  fixture->task.dims.push_back(std::make_unique<JoinDim>("c1", "c2", 20.0));
  ASSERT_TRUE(
      fixture->task.dims.back()->Bind(fixture->task.relation->schema()).ok());
  CachedEvaluationLayer layer(&fixture->task);
  auto result = RunAcquire(fixture->task, &layer, {});
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace acquire
