// Unit coverage for the durability primitives (storage/wal.h): CRC32C,
// record encode/decode, the torn-tail recovery contract of WalWriter +
// ReplayWal, checkpoint write/load identity, the manifest codec, and the
// in-process server recovery path (APPEND under a wal_dir, then a second
// AcqServer over the same directory reproduces the catalog bit-exactly).
//
// Process-kill crash sites are exercised end-to-end by
// crash_recovery_test.cc; this file stays in-process.

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/durability.h"
#include "server/server.h"
#include "storage/catalog.h"
#include "storage/persistence.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/acq_wal_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  std::string dir_;
};

TEST_F(WalTest, Crc32cKnownVectors) {
  // RFC 3720 test vector for CRC32C.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Chaining two halves equals one shot.
  const std::string data = "refinement driven processing";
  const uint32_t whole = Crc32c(data.data(), data.size());
  const uint32_t half = Crc32c(data.data(), 10);
  EXPECT_EQ(Crc32c(data.data() + 10, data.size() - 10, half), whole);
}

TEST_F(WalTest, FsyncPolicyStringRoundTrip) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kNever, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    Result<FsyncPolicy> parsed =
        FsyncPolicyFromString(FsyncPolicyToString(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(FsyncPolicyFromString("sometimes").ok());
}

TEST_F(WalTest, RecordEncodeDecodeRoundTrip) {
  WalAppendRecord record;
  record.table = "users";
  record.generation = 42;
  const double nan = std::nan("");
  record.rows = {
      {Value(int64_t{7}), Value(3.25), Value("héllo\nworld"), Value::Null()},
      {Value(int64_t{-1}), Value(nan), Value(std::string()), Value(2.0)},
  };
  Result<WalAppendRecord> decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->table, "users");
  EXPECT_EQ(decoded->generation, 42u);
  ASSERT_EQ(decoded->rows.size(), 2u);
  ASSERT_EQ(decoded->rows[0].size(), 4u);
  EXPECT_EQ(decoded->rows[0][0], Value(int64_t{7}));
  EXPECT_EQ(decoded->rows[0][1], Value(3.25));
  EXPECT_EQ(decoded->rows[0][2], Value("héllo\nworld"));
  EXPECT_TRUE(decoded->rows[0][3].is_null());
  // NaN survives by bit pattern (Value::operator== is false for NaN).
  EXPECT_TRUE(decoded->rows[1][1].is_double());
  EXPECT_TRUE(std::isnan(decoded->rows[1][1].dbl()));
  EXPECT_EQ(decoded->rows[1][2], Value(std::string()));
}

TEST_F(WalTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeWalRecord("").ok());
  EXPECT_FALSE(DecodeWalRecord("nonsense").ok());
  // A valid payload truncated mid-way must not decode.
  WalAppendRecord record;
  record.table = "t";
  record.rows = {{Value(int64_t{1})}};
  std::string payload = EncodeWalRecord(record);
  EXPECT_FALSE(DecodeWalRecord(payload.substr(0, payload.size() / 2)).ok());
}

Status CollectReplay(const std::string& path,
                     std::vector<WalAppendRecord>* out,
                     WalReplayStats* stats) {
  return ReplayWal(
      path,
      [out](const WalAppendRecord& record) {
        out->push_back(record);
        return Status::OK();
      },
      stats);
}

TEST_F(WalTest, WriterAppendReplayRoundTrip) {
  const std::string path = Path("wal.log");
  {
    Result<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(path, FsyncPolicy::kBatch);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (int i = 0; i < 5; ++i) {
      WalAppendRecord record;
      record.table = "t";
      record.generation = static_cast<uint64_t>(i + 1);
      record.rows = {{Value(int64_t{i}), Value(i * 1.5)}};
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
    EXPECT_EQ((*writer)->records(), 5u);
  }
  std::vector<WalAppendRecord> replayed;
  WalReplayStats stats;
  ASSERT_TRUE(CollectReplay(path, &replayed, &stats).ok());
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.records, 5u);
  EXPECT_EQ(stats.rows, 5u);
  ASSERT_EQ(replayed.size(), 5u);
  EXPECT_EQ(replayed[3].generation, 4u);
  EXPECT_EQ(replayed[3].rows[0][0], Value(int64_t{3}));
}

TEST_F(WalTest, ReplayMissingFileIsColdStart) {
  std::vector<WalAppendRecord> replayed;
  WalReplayStats stats;
  ASSERT_TRUE(CollectReplay(Path("absent.log"), &replayed, &stats).ok());
  EXPECT_TRUE(replayed.empty());
  EXPECT_FALSE(stats.torn_tail);
}

TEST_F(WalTest, TornTailIsTruncatedAndWritable) {
  const std::string path = Path("wal.log");
  WalAppendRecord record;
  record.table = "t";
  record.generation = 1;
  record.rows = {{Value(int64_t{11})}};
  {
    Result<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(path, FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(record).ok());
  }
  const uint64_t intact_size = fs::file_size(path);
  // Simulate a crash mid-write: a second record's frame header with only
  // half its payload behind it.
  {
    std::string payload = EncodeWalRecord(record);
    std::ofstream out(path, std::ios::binary | std::ios::app);
    uint32_t len = static_cast<uint32_t>(payload.size());
    uint32_t crc = Crc32c(payload.data(), payload.size());
    out.write(reinterpret_cast<const char*>(&len), 4);
    out.write(reinterpret_cast<const char*>(&crc), 4);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size() / 2));
  }
  ASSERT_GT(fs::file_size(path), intact_size);
  std::vector<WalAppendRecord> replayed;
  WalReplayStats stats;
  ASSERT_TRUE(CollectReplay(path, &replayed, &stats).ok());
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_EQ(replayed.size(), 1u);
  // The torn record was physically truncated away...
  EXPECT_EQ(fs::file_size(path), intact_size);
  // ...and the log accepts appends again on the clean boundary.
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(path, FsyncPolicy::kNever);
  ASSERT_TRUE(writer.ok());
  record.generation = 2;
  ASSERT_TRUE((*writer)->Append(record).ok());
  replayed.clear();
  ASSERT_TRUE(CollectReplay(path, &replayed, nullptr).ok());
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[1].generation, 2u);
}

TEST_F(WalTest, CorruptedMidFileRecordStopsReplayAtBoundary) {
  const std::string path = Path("wal.log");
  WalAppendRecord record;
  record.table = "t";
  record.rows = {{Value(std::string(100, 'x'))}};
  {
    Result<std::unique_ptr<WalWriter>> writer =
        WalWriter::Open(path, FsyncPolicy::kNever);
    ASSERT_TRUE(writer.ok());
    record.generation = 1;
    ASSERT_TRUE((*writer)->Append(record).ok());
    const uint64_t first_end = (*writer)->bytes();
    record.generation = 2;
    ASSERT_TRUE((*writer)->Append(record).ok());
    // Flip one payload byte of the SECOND record: everything from there on
    // is untrusted and must be dropped.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(first_end) + 20);
    file.put('y');
  }
  std::vector<WalAppendRecord> replayed;
  WalReplayStats stats;
  ASSERT_TRUE(CollectReplay(path, &replayed, &stats).ok());
  EXPECT_TRUE(stats.torn_tail);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].generation, 1u);
}

TEST_F(WalTest, BadHeaderIsTreatedAsEmptyNeverFatal) {
  const std::string path = Path("wal.log");
  { std::ofstream(path) << "not-a-wal-file at all\njunk\n"; }
  std::vector<WalAppendRecord> replayed;
  WalReplayStats stats;
  ASSERT_TRUE(CollectReplay(path, &replayed, &stats).ok());
  EXPECT_TRUE(stats.torn_tail);
  EXPECT_TRUE(replayed.empty());
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(path, FsyncPolicy::kNever);
  ASSERT_TRUE(writer.ok());
}

TEST_F(WalTest, ResetTrimsToHeader) {
  const std::string path = Path("wal.log");
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(path, FsyncPolicy::kNever);
  ASSERT_TRUE(writer.ok());
  WalAppendRecord record;
  record.table = "t";
  record.rows = {{Value(int64_t{1})}};
  ASSERT_TRUE((*writer)->Append(record).ok());
  ASSERT_TRUE((*writer)->Reset().ok());
  EXPECT_EQ((*writer)->records(), 0u);
  std::vector<WalAppendRecord> replayed;
  ASSERT_TRUE(CollectReplay(path, &replayed, nullptr).ok());
  EXPECT_TRUE(replayed.empty());
}

TEST_F(WalTest, AtomicWriteFileReplacesWhole) {
  const std::string path = Path("file.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "first contents").ok());
  EXPECT_EQ(ReadFile(path), "first contents");
  ASSERT_TRUE(AtomicWriteFile(path, "second").ok());
  EXPECT_EQ(ReadFile(path), "second");
  // No stray temp file left behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

Catalog MakeSmallCatalog() {
  Catalog catalog;
  Schema schema({{"id", DataType::kInt64, ""},
                 {"score", DataType::kDouble, ""},
                 {"tag", DataType::kString, ""}});
  auto table = std::make_shared<Table>("items", schema);
  EXPECT_TRUE(table
                  ->AppendRows({{Value(int64_t{1}), Value(0.1), Value("a")},
                                {Value(int64_t{2}), Value(0.2), Value("b")}})
                  .ok());
  catalog.PutTable(table);
  catalog.set_load_params("items:rows=2,seed=9");
  return catalog;
}

TEST_F(WalTest, CheckpointRoundTripRestoresIdentity) {
  Catalog catalog = MakeSmallCatalog();
  const uint64_t generation = catalog.generation();
  const std::string load_params = catalog.load_params();
  ASSERT_TRUE(WriteCheckpoint(catalog, dir_).ok());

  Catalog restored;
  // Pre-existing junk tables must be dropped by the load.
  restored.PutTable(std::make_shared<Table>(
      "stale", Schema({{"x", DataType::kInt64, ""}})));
  CheckpointMeta meta;
  ASSERT_TRUE(LoadCheckpoint(dir_, &restored, &meta).ok());
  EXPECT_EQ(meta.generation, generation);
  EXPECT_EQ(restored.generation(), generation);
  EXPECT_EQ(restored.load_params(), load_params);
  EXPECT_EQ(restored.TableNames(), std::vector<std::string>{"items"});
  Result<TablePtr> table = restored.GetTable("items");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 2u);
  EXPECT_EQ((*table)->Get(1, 2), Value("b"));
}

TEST_F(WalTest, SecondCheckpointSupersedesAndGarbageCollects) {
  Catalog catalog = MakeSmallCatalog();
  ASSERT_TRUE(WriteCheckpoint(catalog, dir_).ok());
  ASSERT_TRUE(
      catalog.AppendRows("items", {{Value(int64_t{3}), Value(0.3), Value("c")}})
          .ok());
  ASSERT_TRUE(WriteCheckpoint(catalog, dir_).ok());
  // Exactly one ckpt-* directory remains (the superseded one was GC'd).
  size_t checkpoint_dirs = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().rfind("ckpt-", 0) == 0) {
      ++checkpoint_dirs;
    }
  }
  EXPECT_EQ(checkpoint_dirs, 1u);
  Catalog restored;
  ASSERT_TRUE(LoadCheckpoint(dir_, &restored).ok());
  EXPECT_EQ(restored.generation(), catalog.generation());
  Result<TablePtr> table = restored.GetTable("items");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 3u);
}

TEST_F(WalTest, CorruptCheckpointIsNotFoundNeverFatal) {
  Catalog restored;
  // No checkpoint published at all.
  EXPECT_TRUE(LoadCheckpoint(dir_, &restored).IsNotFound());
  // CURRENT pointing at a checkpoint that does not exist.
  ASSERT_TRUE(AtomicWriteFile(dir_ + "/CURRENT", "ckpt-99\n").ok());
  EXPECT_TRUE(LoadCheckpoint(dir_, &restored).IsNotFound());
  // CURRENT trying to escape the checkpoint directory.
  ASSERT_TRUE(AtomicWriteFile(dir_ + "/CURRENT", "../../etc\n").ok());
  EXPECT_TRUE(LoadCheckpoint(dir_, &restored).IsNotFound());
  // A published checkpoint whose meta file was bit-flipped.
  Catalog catalog = MakeSmallCatalog();
  ASSERT_TRUE(WriteCheckpoint(catalog, dir_).ok());
  ASSERT_FALSE(LoadCheckpoint(dir_, &restored).IsNotFound());
  std::string current = ReadFile(dir_ + "/CURRENT");
  while (!current.empty() && current.back() == '\n') current.pop_back();
  const std::string meta_path = dir_ + "/" + current + "/CHECKPOINT";
  std::string meta = ReadFile(meta_path);
  ASSERT_FALSE(meta.empty());
  meta[meta.size() / 2] ^= 0x01;
  { std::ofstream(meta_path, std::ios::binary | std::ios::trunc) << meta; }
  EXPECT_TRUE(LoadCheckpoint(dir_, &restored).IsNotFound());
}

TEST_F(WalTest, ManifestLineCodecEscapesAndRoundTrips) {
  AttachParams params;
  params.id = "t one";  // exercises percent-escaping of the space
  params.generator = "users";
  params.rows = 500;
  params.seed = 7;
  params.weight = 2.5;
  params.max_queued = 9;
  params.cache_bytes = 1 << 20;
  params.disk_bytes = 1 << 22;
  params.loaddb_dir = "/tmp/has space=and%percent";
  bool is_attach = false;
  AttachParams decoded;
  ASSERT_TRUE(DecodeManifestLine(EncodeAttachLine(params), &is_attach,
                                 &decoded));
  EXPECT_TRUE(is_attach);
  EXPECT_EQ(decoded.id, params.id);
  EXPECT_EQ(decoded.generator, params.generator);
  EXPECT_EQ(decoded.loaddb_dir, params.loaddb_dir);
  EXPECT_EQ(decoded.rows, params.rows);
  EXPECT_EQ(decoded.seed, params.seed);
  EXPECT_DOUBLE_EQ(decoded.weight, params.weight);
  EXPECT_EQ(decoded.max_queued, params.max_queued);
  EXPECT_EQ(decoded.cache_bytes, params.cache_bytes);
  EXPECT_EQ(decoded.disk_bytes, params.disk_bytes);

  ASSERT_TRUE(DecodeManifestLine(EncodeDetachLine("t one"), &is_attach,
                                 &decoded));
  EXPECT_FALSE(is_attach);
  EXPECT_EQ(decoded.id, "t one");

  EXPECT_FALSE(DecodeManifestLine("gibberish", &is_attach, &decoded));
  EXPECT_FALSE(DecodeManifestLine("attach gen=users", &is_attach, &decoded));
}

TEST_F(WalTest, ManifestReplayTruncatesTornTail) {
  const std::string path = Path("MANIFEST");
  {
    Result<std::unique_ptr<ManifestLog>> manifest =
        ManifestLog::Open(path, FsyncPolicy::kNever);
    ASSERT_TRUE(manifest.ok());
    ASSERT_TRUE((*manifest)->Append("attach id=a gen=users").ok());
    ASSERT_TRUE((*manifest)->Append("detach id=a").ok());
  }
  const uint64_t intact_size = fs::file_size(path);
  // A crash mid-append leaves a partial line with no trailing newline.
  {
    std::ofstream out(path, std::ios::app);
    out << "deadbeef attach id=";
  }
  std::vector<std::string> lines;
  bool torn = false;
  ASSERT_TRUE(ManifestLog::Replay(path, &lines, &torn).ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "attach id=a gen=users");
  EXPECT_EQ(lines[1], "detach id=a");
  EXPECT_EQ(fs::file_size(path), intact_size);
  // A line whose CRC lies is also a tail cut, even with a newline.
  {
    std::ofstream out(path, std::ios::app);
    out << "00000000 attach id=b gen=users\n";
  }
  lines.clear();
  ASSERT_TRUE(ManifestLog::Replay(path, &lines, &torn).ok());
  EXPECT_TRUE(torn);
  EXPECT_EQ(lines.size(), 2u);
}

// ---------------------------------------------------------------------------
// In-process server recovery: the same wal_dir, a new AcqServer, identical
// catalog identity and replies.

ServerOptions DurableOptions(const std::string& wal_dir) {
  ServerOptions options;
  options.wal_dir = wal_dir;
  options.fsync = FsyncPolicy::kNever;  // in-process: no machine crashes here
  options.cache_bytes = 1 << 20;
  return options;
}

Status GenUsers(size_t rows, Catalog* catalog) {
  UsersOptions users;
  users.users = rows;
  return GenerateUsers(users, catalog);
}

std::string Append(AcqServer* server, const std::string& rows_json) {
  return server->HandleRequestLine(
      R"({"cmd":"APPEND","table":"users","rows":)" + rows_json + "}");
}

constexpr char kProbeSubmit[] =
    R"({"cmd":"SUBMIT","wait":true,"sql":"SELECT * FROM users )"
    R"(CONSTRAINT COUNT(*) >= 5 WHERE age <= 30 AND income >= 50000;"})";

// Zeroes the only nondeterministic reply fields — wall-clock timings — so
// the rest of the reply can be compared byte-for-byte.
std::string NormalizeTimings(std::string reply) {
  for (const char* key : {"\"elapsed_ms\":", "\"wall_ms\":"}) {
    size_t pos = 0;
    while ((pos = reply.find(key, pos)) != std::string::npos) {
      const size_t begin = pos + std::strlen(key);
      size_t end = begin;
      while (end < reply.size() &&
             (std::isdigit(static_cast<unsigned char>(reply[end])) ||
              reply[end] == '.' || reply[end] == '-' || reply[end] == 'e' ||
              reply[end] == '+')) {
        ++end;
      }
      reply.replace(begin, end - begin, "0");
      pos = begin;
    }
  }
  return reply;
}

TEST_F(WalTest, ServerRecoversAppendsBitExactly) {
  std::string stats_before;
  std::string reply_before;
  {
    Catalog catalog;
    ASSERT_TRUE(GenUsers(300, &catalog).ok());
    AcqServer server(&catalog, DurableOptions(dir_));
    EXPECT_NE(Append(&server,
                     R"([[9001,25,70000.0,0.5,100,"nyc","f","bs","sports"]])")
                  .find("\"ok\":true"),
              std::string::npos);
    EXPECT_NE(Append(&server,
                     R"([[9002,24,71000.0,0.6,90,"sf","m","ms","music"]])")
                  .find("\"ok\":true"),
              std::string::npos);
    reply_before = server.HandleRequestLine(kProbeSubmit);
    stats_before = server.HandleRequestLine(R"({"cmd":"STATS"})");
    // No clean shutdown: the WAL alone must carry both appends. (The
    // AcqServer destructor checkpoints; bypass that by not relying on it —
    // checkpoint-or-not, recovery must produce the same catalog.)
  }
  Catalog catalog;
  ASSERT_TRUE(GenUsers(300, &catalog).ok());
  AcqServer recovered(&catalog, DurableOptions(dir_));
  const std::string reply_after = recovered.HandleRequestLine(kProbeSubmit);
  EXPECT_EQ(NormalizeTimings(reply_before), NormalizeTimings(reply_after));
  // Generation is part of the STATS surface; extract and compare exactly.
  auto generation_of = [](const std::string& stats) {
    const size_t pos = stats.find("\"catalog_generation\":");
    EXPECT_NE(pos, std::string::npos) << stats;
    return stats.substr(pos, stats.find(',', pos) - pos);
  };
  const std::string stats_after =
      recovered.HandleRequestLine(R"({"cmd":"STATS"})");
  EXPECT_EQ(generation_of(stats_before), generation_of(stats_after));
  EXPECT_NE(stats_after.find("\"wal_enabled\":true"), std::string::npos);
}

TEST_F(WalTest, RejectedAppendLeavesLogByteIdentical) {
  Catalog catalog;
  ASSERT_TRUE(GenUsers(100, &catalog).ok());
  AcqServer server(&catalog, DurableOptions(dir_));
  ASSERT_NE(Append(&server,
                   R"([[9001,25,70000.0,0.5,100,"nyc","f","bs","sports"]])")
                .find("\"ok\":true"),
            std::string::npos);
  const std::string log_path = dir_ + "/default/wal.log";
  const std::string log_before = ReadFile(log_path);
  ASSERT_FALSE(log_before.empty());
  const uint64_t generation_before = catalog.generation();

  // Satellite contract: neither an empty batch nor a type-mismatched batch
  // may log a record or bump the generation.
  const std::string empty_reply = Append(&server, "[]");
  EXPECT_NE(empty_reply.find("\"ok\":true"), std::string::npos);
  const std::string bad_type =
      Append(&server, R"([["not-an-int",25,70000.0,0.5,1,"a","b","c","d"]])");
  EXPECT_NE(bad_type.find("\"ok\":false"), std::string::npos);
  const std::string bad_arity = Append(&server, R"([[1,2]])");
  EXPECT_NE(bad_arity.find("\"ok\":false"), std::string::npos);

  EXPECT_EQ(ReadFile(log_path), log_before);
  EXPECT_EQ(catalog.generation(), generation_before);
}

TEST_F(WalTest, DiskQuotaRejectsAppendWellFormed) {
  Catalog catalog;
  ASSERT_TRUE(GenUsers(100, &catalog).ok());
  ServerOptions options = DurableOptions(dir_);
  AcqServer server(&catalog, options);
  // Attach a tenant with a quota so small a single append cannot fit.
  const std::string attach_reply = server.HandleRequestLine(
      R"({"cmd":"ATTACH","tenant":"q1","gen":"users","rows":50,)"
      R"("disk_bytes":64})");
  ASSERT_NE(attach_reply.find("\"ok\":true"), std::string::npos)
      << attach_reply;
  const std::string reply = server.HandleRequestLine(
      R"({"cmd":"APPEND","tenant":"q1","table":"users","rows":)"
      R"([[9001,25,70000.0,0.5,100,"nyc","f","bs","sports"]]})");
  EXPECT_NE(reply.find("\"ok\":false"), std::string::npos) << reply;
  EXPECT_NE(reply.find("ResourceExhausted"), std::string::npos) << reply;
  // The rejection surfaces in STATS and TENANTS.
  const std::string stats = server.HandleRequestLine(
      R"({"cmd":"STATS","tenant":"q1"})");
  EXPECT_NE(stats.find("\"wal_quota_rejections\":1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"disk_limit_bytes\":64"), std::string::npos) << stats;
  const std::string tenants = server.HandleRequestLine(R"({"cmd":"TENANTS"})");
  EXPECT_NE(tenants.find("\"disk_limit_bytes\":64"), std::string::npos)
      << tenants;
  // And the tenant still answers appends under quota... none fit here, but
  // reads keep working.
  const std::string status = server.HandleRequestLine(
      R"({"cmd":"STATS","tenant":"q1"})");
  EXPECT_NE(status.find("\"ok\":true"), std::string::npos);
}

TEST_F(WalTest, AttachDetachSurviveRestartViaManifest) {
  {
    Catalog catalog;
    ASSERT_TRUE(GenUsers(100, &catalog).ok());
    AcqServer server(&catalog, DurableOptions(dir_));
    ASSERT_NE(server
                  .HandleRequestLine(
                      R"({"cmd":"ATTACH","tenant":"keep","gen":"users",)"
                      R"("rows":60,"seed":3})")
                  .find("\"ok\":true"),
              std::string::npos);
    ASSERT_NE(server
                  .HandleRequestLine(
                      R"({"cmd":"ATTACH","tenant":"drop","gen":"users",)"
                      R"("rows":40})")
                  .find("\"ok\":true"),
              std::string::npos);
    // An append into the surviving tenant must come back after restart too.
    ASSERT_NE(server
                  .HandleRequestLine(
                      R"({"cmd":"APPEND","tenant":"keep","table":"users",)"
                      R"("rows":[[9001,25,70000.0,0.5,100,"nyc","f","bs",)"
                      R"("sports"]]})")
                  .find("\"ok\":true"),
              std::string::npos);
    ASSERT_NE(server
                  .HandleRequestLine(
                      R"({"cmd":"DETACH","tenant":"drop"})")
                  .find("\"ok\":true"),
              std::string::npos);
  }
  Catalog catalog;
  ASSERT_TRUE(GenUsers(100, &catalog).ok());
  AcqServer recovered(&catalog, DurableOptions(dir_));
  const std::string tenants =
      recovered.HandleRequestLine(R"({"cmd":"TENANTS"})");
  EXPECT_NE(tenants.find("\"tenant\":\"keep\""), std::string::npos) << tenants;
  EXPECT_EQ(tenants.find("\"tenant\":\"drop\""), std::string::npos) << tenants;
  // The recovered "keep" tenant has its appended row: 61 rows total.
  // The first server shut down cleanly, so "keep" recovered from its
  // checkpoint (which already folds in the append): same generation as at
  // crash time, nothing left to replay.
  const std::string stats = recovered.HandleRequestLine(
      R"({"cmd":"STATS","tenant":"keep"})");
  EXPECT_NE(stats.find("\"recovery_checkpoint_loaded\":true"),
            std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"catalog_generation\":4"), std::string::npos)
      << stats;
}

TEST_F(WalTest, TornWalTailNeverPreventsServerStartup) {
  {
    Catalog catalog;
    ASSERT_TRUE(GenUsers(100, &catalog).ok());
    AcqServer server(&catalog, DurableOptions(dir_));
    ASSERT_NE(Append(&server,
                     R"([[9001,25,70000.0,0.5,100,"nyc","f","bs","sports"]])")
                  .find("\"ok\":true"),
              std::string::npos);
  }
  // Vandalize the tail: garbage after the last intact record, as a crash
  // mid-write would leave. (The destructor checkpointed + trimmed, so write
  // garbage into the trimmed log.)
  {
    std::ofstream out(dir_ + "/default/wal.log",
                      std::ios::binary | std::ios::app);
    out << "\x55\x33garbage-partial-record";
  }
  Catalog catalog;
  ASSERT_TRUE(GenUsers(100, &catalog).ok());
  AcqServer recovered(&catalog, DurableOptions(dir_));
  const std::string stats = recovered.HandleRequestLine(R"({"cmd":"STATS"})");
  EXPECT_NE(stats.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(stats.find("\"recovery_torn_tail\":true"), std::string::npos)
      << stats;
  // The checkpointed append is still there (via the snapshot).
  EXPECT_NE(stats.find("\"recovery_checkpoint_loaded\":true"),
            std::string::npos)
      << stats;
}

}  // namespace
}  // namespace acquire
