// Empirical check of Definition 1(b) via Theorem 1: the QScore of
// ACQUIRE's best answer is within gamma of the optimum. The optimum is
// approximated by brute force over a grid 8x finer than ACQUIRE's, which
// by the same theorem is itself within gamma/8 of the true optimum.

#include <gtest/gtest.h>
#include <cmath>

#include "core/acquire.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

struct GuaranteeParam {
  size_t d;
  double ratio;
  uint64_t seed;
};

class TheoremGuaranteeTest : public ::testing::TestWithParam<GuaranteeParam> {};

TEST_P(TheoremGuaranteeTest, AnswerWithinGammaOfBruteForceOptimum) {
  const GuaranteeParam param = GetParam();
  SyntheticOptions options;
  options.d = param.d;
  options.rows = 1200;
  options.seed = param.seed;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  AcqTask& task = fixture->task;
  DirectEvaluationLayer probe(&task);
  double base =
      probe.EvaluateQueryValue(std::vector<double>(param.d, 0.0)).value();
  ASSERT_GT(base, 0.0);
  task.constraint.target = base / param.ratio;

  AcquireOptions acq;
  acq.gamma = 20.0;
  acq.delta = 0.05;
  CachedEvaluationLayer layer(&task);
  auto result = RunAcquire(task, &layer, acq);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  const double acquire_qscore = result->queries.front().qscore;

  // Brute force over an 8x finer grid: minimum L1 QScore whose refined
  // query satisfies the constraint within delta.
  const double fine_step = acq.gamma / static_cast<double>(param.d) / 8.0;
  CachedEvaluationLayer fine_layer(&task);
  double best = std::numeric_limits<double>::infinity();
  std::vector<int32_t> caps(param.d);
  for (size_t i = 0; i < param.d; ++i) {
    caps[i] = static_cast<int32_t>(
        std::ceil(task.dims[i]->MaxPScore() / fine_step));
  }
  std::vector<int32_t> u(param.d, 0);
  std::vector<double> pscores(param.d);
  for (;;) {
    double qscore = 0.0;
    for (size_t i = 0; i < param.d; ++i) {
      pscores[i] =
          std::min(u[i] * fine_step, task.dims[i]->MaxPScore());
      qscore += pscores[i];
    }
    if (qscore < best) {  // pruning: only cheaper points matter
      double value = fine_layer.EvaluateQueryValue(pscores).value();
      if (DefaultAggregateError(task.constraint, value) <= acq.delta) {
        best = qscore;
      }
    }
    // Odometer.
    size_t pos = 0;
    while (pos < param.d && ++u[pos] > caps[pos]) {
      u[pos] = 0;
      ++pos;
    }
    if (pos == param.d) break;
  }
  ASSERT_TRUE(std::isfinite(best));
  // Definition 1(b): ||QScore - QScore_opt|| <= gamma (the brute-force
  // optimum may itself be gamma/8 above the continuous optimum, hence the
  // small slack).
  EXPECT_LE(acquire_qscore, best + acq.gamma + acq.gamma / 8.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TheoremGuaranteeTest,
    ::testing::Values(GuaranteeParam{1, 0.5, 3}, GuaranteeParam{1, 0.3, 4},
                      GuaranteeParam{2, 0.5, 5}, GuaranteeParam{2, 0.35, 6},
                      GuaranteeParam{2, 0.7, 7}),
    [](const auto& info) {
      return "d" + std::to_string(info.param.d) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace acquire
