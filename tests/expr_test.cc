#include "expr/expr.h"

#include <gtest/gtest.h>

namespace acquire {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_shared<Table>(
        "t", Schema({{"a", DataType::kInt64, ""},
                     {"b", DataType::kDouble, ""},
                     {"s", DataType::kString, ""}}));
    ASSERT_TRUE(
        table_->AppendRow({Value(int64_t{10}), Value(2.5), Value("red")}).ok());
    ASSERT_TRUE(
        table_->AppendRow({Value(int64_t{20}), Value(5.0), Value("blue")}).ok());
  }

  // Binds and evaluates `e` on row `row`, expecting success.
  Value Eval(const ExprPtr& e, size_t row) {
    EXPECT_TRUE(e->Bind(table_->schema()).ok());
    auto v = e->Eval(*table_, row);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? v.value() : Value::Null();
  }

  bool EvalBool(const ExprPtr& e, size_t row) {
    EXPECT_TRUE(e->Bind(table_->schema()).ok());
    auto v = e->EvalBool(*table_, row);
    EXPECT_TRUE(v.ok());
    return v.ok() && v.value();
  }

  TablePtr table_;
};

TEST_F(ExprTest, ColumnReadsValue) {
  EXPECT_EQ(Eval(Expr::Column("a"), 1), Value(int64_t{20}));
  EXPECT_EQ(Eval(Expr::Column("s"), 0), Value("red"));
}

TEST_F(ExprTest, LiteralEvaluatesToItself) {
  EXPECT_EQ(Eval(Expr::Literal(Value(7.5)), 0), Value(7.5));
}

TEST_F(ExprTest, ComparisonsAllOps) {
  auto col = [] { return Expr::Column("a"); };
  auto lit = [](int64_t v) { return Expr::Literal(Value(v)); };
  EXPECT_TRUE(EvalBool(Expr::Compare(CompareOp::kEq, col(), lit(10)), 0));
  EXPECT_TRUE(EvalBool(Expr::Compare(CompareOp::kNe, col(), lit(11)), 0));
  EXPECT_TRUE(EvalBool(Expr::Compare(CompareOp::kLt, col(), lit(11)), 0));
  EXPECT_TRUE(EvalBool(Expr::Compare(CompareOp::kLe, col(), lit(10)), 0));
  EXPECT_TRUE(EvalBool(Expr::Compare(CompareOp::kGt, col(), lit(9)), 0));
  EXPECT_TRUE(EvalBool(Expr::Compare(CompareOp::kGe, col(), lit(10)), 0));
  EXPECT_FALSE(EvalBool(Expr::Compare(CompareOp::kLt, col(), lit(10)), 0));
}

TEST_F(ExprTest, CrossTypeNumericComparison) {
  // int64 column vs double literal.
  EXPECT_TRUE(EvalBool(
      Expr::Compare(CompareOp::kLt, Expr::Column("a"), Expr::Literal(Value(10.5))),
      0));
}

TEST_F(ExprTest, ArithAllOps) {
  auto b = [] { return Expr::Column("b"); };
  EXPECT_EQ(Eval(Expr::Arith(ArithOp::kAdd, b(), Expr::Literal(Value(1.5))), 0),
            Value(4.0));
  EXPECT_EQ(Eval(Expr::Arith(ArithOp::kSub, b(), Expr::Literal(Value(0.5))), 0),
            Value(2.0));
  EXPECT_EQ(Eval(Expr::Arith(ArithOp::kMul, b(), Expr::Literal(Value(2.0))), 0),
            Value(5.0));
  EXPECT_EQ(Eval(Expr::Arith(ArithOp::kDiv, b(), Expr::Literal(Value(2.0))), 0),
            Value(1.25));
}

TEST_F(ExprTest, DivisionByZeroIsError) {
  auto e = Expr::Arith(ArithOp::kDiv, Expr::Column("b"),
                       Expr::Literal(Value(0.0)));
  ASSERT_TRUE(e->Bind(table_->schema()).ok());
  EXPECT_FALSE(e->Eval(*table_, 0).ok());
}

TEST_F(ExprTest, AndOrShortCircuitSemantics) {
  auto truthy = Expr::Compare(CompareOp::kGt, Expr::Column("a"),
                              Expr::Literal(Value(int64_t{0})));
  auto falsy = Expr::Compare(CompareOp::kLt, Expr::Column("a"),
                             Expr::Literal(Value(int64_t{0})));
  EXPECT_TRUE(EvalBool(Expr::And({truthy, truthy}), 0));
  EXPECT_FALSE(EvalBool(Expr::And({truthy, falsy}), 0));
  EXPECT_TRUE(EvalBool(Expr::Or({falsy, truthy}), 0));
  EXPECT_FALSE(EvalBool(Expr::Or({falsy, falsy}), 0));
  EXPECT_TRUE(EvalBool(Expr::Not(falsy), 0));
}

TEST_F(ExprTest, InMatchesAnyListValue) {
  auto e = Expr::In(Expr::Column("s"), {Value("green"), Value("red")});
  EXPECT_TRUE(EvalBool(e, 0));
  EXPECT_FALSE(EvalBool(e, 1));
}

TEST_F(ExprTest, BetweenIsInclusive) {
  auto e = Expr::Between(Expr::Column("a"), Value(int64_t{10}),
                         Value(int64_t{15}));
  EXPECT_TRUE(EvalBool(e, 0));   // a = 10
  EXPECT_FALSE(EvalBool(e, 1));  // a = 20
}

TEST_F(ExprTest, BindFailsOnUnknownColumn) {
  auto e = Expr::Column("nope");
  EXPECT_EQ(e->Bind(table_->schema()).code(), StatusCode::kNotFound);
  EXPECT_FALSE(e->bound());
}

TEST_F(ExprTest, EvalWithoutBindFails) {
  auto e = Expr::Column("a");
  EXPECT_FALSE(e->Eval(*table_, 0).ok());
}

TEST_F(ExprTest, BoundReflectsTreeState) {
  auto e = Expr::Compare(CompareOp::kLt, Expr::Column("a"),
                         Expr::Literal(Value(int64_t{5})));
  EXPECT_FALSE(e->bound());
  ASSERT_TRUE(e->Bind(table_->schema()).ok());
  EXPECT_TRUE(e->bound());
}

TEST_F(ExprTest, ToStringRendersSql) {
  auto e = Expr::And(
      {Expr::Compare(CompareOp::kLt, Expr::Column("a"),
                     Expr::Literal(Value(int64_t{5}))),
       Expr::In(Expr::Column("s"), {Value("x"), Value("y")})});
  EXPECT_EQ(e->ToString(), "(a < 5 AND s IN ('x', 'y'))");
  auto b = Expr::Between(Expr::Column("a"), Value(int64_t{1}),
                         Value(int64_t{2}));
  EXPECT_EQ(b->ToString(), "a BETWEEN 1 AND 2");
  auto n = Expr::Not(Expr::Column("a"));
  EXPECT_EQ(n->ToString(), "NOT (a)");
}

TEST(CompareOpTest, FlipSwapsDirection) {
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kGt), CompareOp::kLt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kGe), CompareOp::kLe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(FlipCompareOp(CompareOp::kNe), CompareOp::kNe);
}

TEST(CompareOpTest, Names) {
  EXPECT_STREQ(CompareOpToString(CompareOp::kLe), "<=");
  EXPECT_STREQ(CompareOpToString(CompareOp::kNe), "!=");
  EXPECT_STREQ(ArithOpToString(ArithOp::kMul), "*");
}

}  // namespace
}  // namespace acquire
