// Equivalence and unit suite for the sharded Explore merge
// (core/parallel_merge): every merge strategy, forced across every search
// order, must reproduce the sequential batched run bit-for-bit — same
// aggregates, same answer sets, same counters — because entries are always
// published in generation order regardless of which threads computed them.
// Also covers the sequential fallbacks (shell order, the
// explore.parallel_merge failpoint), the strategy accounting in ExecStats,
// the AggregateStore bulk-append API the mergers build on, and budget
// metering through the parallel path.

#include <gtest/gtest.h>
#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "acquire.h"
#include "common/failpoint.h"
#include "core/explore.h"
#include "core/parallel_merge.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

const char* OrderName(SearchOrder order) {
  switch (order) {
    case SearchOrder::kAuto:
      return "Auto";
    case SearchOrder::kBfs:
      return "Bfs";
    case SearchOrder::kShell:
      return "Shell";
    case SearchOrder::kBestFirst:
      return "BestFirst";
  }
  return "?";
}

void ExpectSameResult(const AcquireResult& seq, const AcquireResult& par,
                      const std::string& label) {
  EXPECT_EQ(seq.satisfied, par.satisfied) << label;
  EXPECT_EQ(seq.queries_explored, par.queries_explored) << label;
  EXPECT_EQ(seq.cell_queries, par.cell_queries) << label;
  EXPECT_EQ(seq.exec_stats.queries, par.exec_stats.queries) << label;
  ASSERT_EQ(seq.queries.size(), par.queries.size()) << label;
  for (size_t i = 0; i < seq.queries.size(); ++i) {
    EXPECT_EQ(seq.queries[i].coord, par.queries[i].coord)
        << label << " answer " << i;
    EXPECT_EQ(seq.queries[i].pscores, par.queries[i].pscores)
        << label << " answer " << i;
    // Bit-exact: the parallel merge runs the same Eq. 17 additions in the
    // same per-coordinate order, only on different threads.
    EXPECT_EQ(seq.queries[i].aggregate, par.queries[i].aggregate)
        << label << " answer " << i;
    EXPECT_EQ(seq.queries[i].error, par.queries[i].error)
        << label << " answer " << i;
    EXPECT_EQ(seq.queries[i].qscore, par.queries[i].qscore)
        << label << " answer " << i;
  }
  EXPECT_EQ(seq.best.coord, par.best.coord) << label;
  EXPECT_EQ(seq.best.aggregate, par.best.aggregate) << label;
  EXPECT_EQ(seq.best.error, par.best.error) << label;
}

std::unique_ptr<test_util::SyntheticTask> MakeFixture() {
  SyntheticOptions topt;
  topt.d = 3;
  topt.rows = 4000;
  topt.agg = AggregateKind::kSum;  // FP-sensitive: catches any reordering
  topt.target = 240000.0;         // forces several expansion layers
  return MakeSyntheticTask(topt);
}

AcquireOptions BaseOptions(SearchOrder order) {
  AcquireOptions options;
  options.gamma = 12.0;  // grid step 4.0 with d = 3
  options.delta = 0.02;
  options.order = order;
  return options;
}

class ParallelMergeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<SearchOrder, MergeStrategy>> {
};

TEST_P(ParallelMergeEquivalenceTest, ForcedStrategyMatchesSequential) {
  auto [order, strategy] = GetParam();
  auto fixture = MakeFixture();
  ASSERT_NE(fixture, nullptr);
  const double step = 12.0 / 3.0;
  const std::string label = std::string(OrderName(order)) + "/" +
                            MergeStrategyName(strategy);

  AcquireOptions options = BaseOptions(order);
  CellSortedEvaluationLayer seq_layer(&fixture->task, step);
  options.batch_explore = BatchExplore::kOff;
  options.merge_strategy = MergeStrategy::kSequential;
  auto seq = RunAcquire(fixture->task, &seq_layer, options);

  CellSortedEvaluationLayer par_layer(&fixture->task, step);
  options.batch_explore = BatchExplore::kOn;
  options.merge_strategy = strategy;  // forced: parallel even on 1 CPU
  auto par = RunAcquire(fixture->task, &par_layer, options);

  ASSERT_TRUE(seq.ok() && par.ok()) << label;
  ExpectSameResult(*seq, *par, label);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrdersAllStrategies, ParallelMergeEquivalenceTest,
    ::testing::Combine(::testing::Values(SearchOrder::kAuto, SearchOrder::kBfs,
                                         SearchOrder::kShell,
                                         SearchOrder::kBestFirst),
                       ::testing::Values(MergeStrategy::kCentral,
                                         MergeStrategy::kTree,
                                         MergeStrategy::kRadix)),
    [](const auto& info) {
      return std::string(OrderName(std::get<0>(info.param))) + "_" +
             MergeStrategyName(std::get<1>(info.param));
    });

TEST(ParallelMergeTest, ForcedStrategyIsCounted) {
  // A forced strategy must actually run: its ExecStats tally is positive
  // and the other parallel strategies never fire.
  using Stats = EvaluationLayer::ExecStats;
  struct Case {
    MergeStrategy strategy;
    uint64_t Stats::*counter;
  };
  const Case cases[] = {
      {MergeStrategy::kCentral, &Stats::merge_layers_central},
      {MergeStrategy::kTree, &Stats::merge_layers_tree},
      {MergeStrategy::kRadix, &Stats::merge_layers_radix},
  };
  for (const Case& c : cases) {
    auto fixture = MakeFixture();
    ASSERT_NE(fixture, nullptr);
    CellSortedEvaluationLayer layer(&fixture->task, 4.0);
    AcquireOptions options = BaseOptions(SearchOrder::kBfs);
    options.batch_explore = BatchExplore::kOn;
    options.merge_strategy = c.strategy;
    auto result = RunAcquire(fixture->task, &layer, options);
    ASSERT_TRUE(result.ok()) << MergeStrategyName(c.strategy);
    EXPECT_GT(result->exec_stats.*(c.counter), 0u)
        << MergeStrategyName(c.strategy);
    const uint64_t parallel_total = result->exec_stats.merge_layers_central +
                                    result->exec_stats.merge_layers_tree +
                                    result->exec_stats.merge_layers_radix;
    EXPECT_EQ(parallel_total, result->exec_stats.*(c.counter))
        << MergeStrategyName(c.strategy);
  }
}

TEST(ParallelMergeTest, ShellOrderStaysSequential) {
  // A shell layer interleaves Eq. 17 dependencies within itself (same-shell
  // predecessors), so the driver must refuse to parallel-merge it even when
  // a strategy is forced.
  auto fixture = MakeFixture();
  ASSERT_NE(fixture, nullptr);
  CellSortedEvaluationLayer layer(&fixture->task, 4.0);
  AcquireOptions options = BaseOptions(SearchOrder::kShell);
  options.batch_explore = BatchExplore::kOn;
  options.merge_strategy = MergeStrategy::kRadix;
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exec_stats.merge_layers_central, 0u);
  EXPECT_EQ(result->exec_stats.merge_layers_tree, 0u);
  EXPECT_EQ(result->exec_stats.merge_layers_radix, 0u);
  EXPECT_GT(result->exec_stats.merge_layers_sequential, 0u);
}

TEST(ParallelMergeTest, SequentialStrategyDisablesParallelPath) {
  auto fixture = MakeFixture();
  ASSERT_NE(fixture, nullptr);
  CellSortedEvaluationLayer layer(&fixture->task, 4.0);
  AcquireOptions options = BaseOptions(SearchOrder::kBfs);
  options.batch_explore = BatchExplore::kOn;
  options.merge_strategy = MergeStrategy::kSequential;
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exec_stats.merge_layers_central, 0u);
  EXPECT_EQ(result->exec_stats.merge_layers_tree, 0u);
  EXPECT_EQ(result->exec_stats.merge_layers_radix, 0u);
  EXPECT_GT(result->exec_stats.merge_layers_sequential, 0u);
}

TEST(ParallelMergeTest, FailpointForcesSequentialFallback) {
  // With explore.parallel_merge armed at p:1 every layer falls back to the
  // sequential Eq. 17 walk before Phase A touches anything, so results are
  // unchanged and the parallel tallies stay zero.
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto fixture = MakeFixture();
  ASSERT_NE(fixture, nullptr);
  const double step = 4.0;

  AcquireOptions options = BaseOptions(SearchOrder::kBfs);
  CellSortedEvaluationLayer seq_layer(&fixture->task, step);
  options.batch_explore = BatchExplore::kOff;
  auto seq = RunAcquire(fixture->task, &seq_layer, options);

  FailpointRegistry& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("explore.parallel_merge", "p:1").ok());
  CellSortedEvaluationLayer par_layer(&fixture->task, step);
  options.batch_explore = BatchExplore::kOn;
  options.merge_strategy = MergeStrategy::kRadix;
  auto par = RunAcquire(fixture->task, &par_layer, options);
  registry.DisarmAll();

  ASSERT_TRUE(seq.ok() && par.ok());
  ExpectSameResult(*seq, *par, "failpoint_fallback");
  EXPECT_EQ(par->exec_stats.merge_layers_radix, 0u);
  EXPECT_EQ(par->exec_stats.merge_layers_central, 0u);
  EXPECT_EQ(par->exec_stats.merge_layers_tree, 0u);
  EXPECT_GT(par->exec_stats.merge_layers_sequential, 0u);
}

TEST(ParallelMergeTest, BudgetIsMeteredThroughParallelPath) {
  // The thread-local partial arenas and the bulk store growth are charged
  // against the run's MemoryBudget, so a tiny budget still stops the run
  // cleanly when the merges go through the parallel path.
  auto fixture = MakeFixture();
  ASSERT_NE(fixture, nullptr);
  CellSortedEvaluationLayer layer(&fixture->task, 4.0);
  AcquireOptions options = BaseOptions(SearchOrder::kBfs);
  options.batch_explore = BatchExplore::kOn;
  options.merge_strategy = MergeStrategy::kRadix;
  options.memory_budget_bytes = 48 * 1024;
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->termination, RunTermination::kResourceExhausted);
}

// --- AggregateStore bulk-append API (what the mergers build on) ---

TEST(AggregateStoreBulkTest, SequentialPublishRoundTrips) {
  AggregateStore store;
  store.Configure(/*d=*/2, /*state_width=*/1);  // block_width == 3
  double* first = store.Insert({1, 2});
  first[0] = 42.0;

  const size_t base = store.BulkAppendBegin(3);
  EXPECT_EQ(base, 1u);
  EXPECT_EQ(store.size(), 4u);
  const int32_t keys[3][2] = {{5, 6}, {7, 8}, {9, 10}};
  for (size_t r = 0; r < 3; ++r) {
    int32_t* key = store.MutableKeyAt(base + r);
    key[0] = keys[r][0];
    key[1] = keys[r][1];
    double* block = store.MutableBlockAt(base + r);
    for (size_t j = 0; j < store.block_width(); ++j) {
      block[j] = static_cast<double>(100 * r + j);
    }
  }
  // Not findable until published.
  EXPECT_EQ(store.Find({5, 6}), nullptr);
  store.PublishSlotsSequential(base, 3);

  EXPECT_NE(store.Find({1, 2}), nullptr);  // pre-existing entry intact
  EXPECT_EQ(store.Find({1, 2})[0], 42.0);
  for (size_t r = 0; r < 3; ++r) {
    const double* block = store.Find({keys[r][0], keys[r][1]});
    ASSERT_NE(block, nullptr) << "bulk entry " << r;
    for (size_t j = 0; j < store.block_width(); ++j) {
      EXPECT_EQ(block[j], static_cast<double>(100 * r + j));
    }
  }
}

TEST(AggregateStoreBulkTest, AtomicPublishRoundTrips) {
  AggregateStore store;
  store.Configure(/*d=*/2, /*state_width=*/2);
  // Enough entries to force slot-table growth inside BulkAppendBegin, so
  // HomeSlot is computed against the final table size (the radix publisher
  // depends on that ordering).
  constexpr size_t kCount = 300;
  const size_t base = store.BulkAppendBegin(kCount);
  EXPECT_EQ(base, 0u);
  for (size_t r = 0; r < kCount; ++r) {
    int32_t* key = store.MutableKeyAt(base + r);
    key[0] = static_cast<int32_t>(r);
    key[1] = static_cast<int32_t>(2 * r + 1);
    store.MutableBlockAt(base + r)[0] = static_cast<double>(r) + 0.5;
  }
  for (size_t r = 0; r < kCount; ++r) {
    const size_t e = base + r;
    store.PublishSlotAtomic(e, store.HomeSlot(store.KeyAt(e)));
  }
  for (size_t r = 0; r < kCount; ++r) {
    const double* block = store.Find(
        {static_cast<int32_t>(r), static_cast<int32_t>(2 * r + 1)});
    ASSERT_NE(block, nullptr) << "entry " << r;
    EXPECT_EQ(block[0], static_cast<double>(r) + 0.5);
  }
  // Ordinary inserts keep working after a bulk publication.
  store.Insert({-1, -1})[0] = 7.0;
  ASSERT_NE(store.Find({-1, -1}), nullptr);
  EXPECT_EQ(store.Find({-1, -1})[0], 7.0);
  EXPECT_EQ(store.size(), kCount + 1);
}

}  // namespace
}  // namespace acquire
