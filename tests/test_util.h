#ifndef ACQUIRE_TESTS_TEST_UTIL_H_
#define ACQUIRE_TESTS_TEST_UTIL_H_

// Shared helpers for core-algorithm tests: small synthetic tasks with
// controllable dimensionality, aggregate and constraint.

#include <memory>

#include "common/random.h"
#include "exec/planner.h"
#include "storage/catalog.h"

namespace acquire {
namespace test_util {

struct SyntheticTask {
  Catalog catalog;  // owns the data; must outlive `task`
  AcqTask task;
};

struct SyntheticOptions {
  size_t rows = 2000;
  size_t d = 2;  // at most 5
  double target = 100.0;
  ConstraintOp op = ConstraintOp::kEq;
  AggregateKind agg = AggregateKind::kCount;
  double bound = 30.0;  // per-dim predicate: c_i <= bound over [0, 100]
  uint64_t seed = 1;
};

// A d-predicate COUNT/SUM/... task over a uniform table: columns c0..c4 in
// [0, 100], aggregate column "val" in [0, 1000].
inline std::unique_ptr<SyntheticTask> MakeSyntheticTask(
    const SyntheticOptions& options) {
  auto out = std::make_unique<SyntheticTask>();
  std::vector<Field> fields;
  for (size_t i = 0; i < 5; ++i) {
    fields.push_back({"c" + std::to_string(i), DataType::kDouble, ""});
  }
  fields.push_back({"val", DataType::kDouble, ""});
  auto table = std::make_shared<Table>("data", Schema(std::move(fields)));
  Rng rng(options.seed);
  table->ReserveRows(options.rows);
  for (size_t r = 0; r < options.rows; ++r) {
    for (size_t c = 0; c < 5; ++c) {
      table->mutable_column(c).AppendDouble(rng.NextDouble(0.0, 100.0));
    }
    table->mutable_column(5).AppendDouble(rng.NextDouble(0.0, 1000.0));
  }
  if (!table->FinalizeAppend().ok()) return nullptr;
  if (!out->catalog.AddTable(table).ok()) return nullptr;

  QuerySpec spec;
  spec.tables = {"data"};
  for (size_t i = 0; i < options.d; ++i) {
    spec.predicates.push_back(SelectPredicateSpec{
        "c" + std::to_string(i), CompareOp::kLe, options.bound, true, 1.0,
        {}});
  }
  spec.agg_kind = options.agg;
  if (options.agg != AggregateKind::kCount) spec.agg_column = "val";
  spec.constraint_op = options.op;
  spec.target = options.target;
  auto task = PlanAcqTask(out->catalog, spec);
  if (!task.ok()) return nullptr;
  out->task = std::move(task).value();
  return out;
}

}  // namespace test_util
}  // namespace acquire

#endif  // ACQUIRE_TESTS_TEST_UTIL_H_
