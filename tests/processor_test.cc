#include "core/processor.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

std::unique_ptr<test_util::SyntheticTask> FixtureWithTargetFactor(
    double factor, ConstraintOp op = ConstraintOp::kEq) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 3000;
  options.op = op;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  if (fixture == nullptr) return nullptr;
  DirectEvaluationLayer probe(&fixture->task);
  double base = probe.EvaluateQueryValue({0.0, 0.0}).value_or(0.0);
  fixture->task.constraint.target = base * factor;
  return fixture;
}

TEST(ProcessAcqTest, OriginalSatisfiesShortCircuits) {
  auto fixture = FixtureWithTargetFactor(1.0);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  auto outcome = ProcessAcq(fixture->task, &layer, {});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->mode, AcqMode::kOriginalSatisfies);
  ASSERT_EQ(outcome->result.queries.size(), 1u);
  EXPECT_DOUBLE_EQ(outcome->result.queries[0].qscore, 0.0);
  EXPECT_EQ(outcome->result.queries_explored, 1u);
  EXPECT_EQ(outcome->contraction_task, nullptr);
}

TEST(ProcessAcqTest, UndershootDispatchesToExpansion) {
  auto fixture = FixtureWithTargetFactor(1.8);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  auto outcome = ProcessAcq(fixture->task, &layer, {});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->mode, AcqMode::kExpanded);
  ASSERT_TRUE(outcome->result.satisfied);
  EXPECT_GT(outcome->result.queries[0].qscore, 0.0);
  EXPECT_LT(outcome->original_aggregate, fixture->task.constraint.target);
}

TEST(ProcessAcqTest, OvershootDispatchesToContraction) {
  auto fixture = FixtureWithTargetFactor(0.5);  // target = half the results
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  options.gamma = 16.0;
  options.delta = 0.1;
  auto outcome = ProcessAcq(fixture->task, &layer, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->mode, AcqMode::kContracted);
  ASSERT_NE(outcome->contraction_task, nullptr);
  ASSERT_TRUE(outcome->result.satisfied);
  EXPECT_NEAR(outcome->result.queries[0].aggregate,
              fixture->task.constraint.target,
              options.delta * fixture->task.constraint.target + 1e-9);
}

TEST(ProcessAcqTest, OvershootOfInequalityIsAlreadySatisfied) {
  // ">= target" with an overshooting original is simply satisfied.
  auto fixture = FixtureWithTargetFactor(0.5, ConstraintOp::kGe);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  auto outcome = ProcessAcq(fixture->task, &layer, {});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->mode, AcqMode::kOriginalSatisfies);
}

TEST(ProcessAcqTest, ModeNames) {
  EXPECT_STREQ(AcqModeToString(AcqMode::kOriginalSatisfies),
               "original-satisfies");
  EXPECT_STREQ(AcqModeToString(AcqMode::kExpanded), "expanded");
  EXPECT_STREQ(AcqModeToString(AcqMode::kContracted), "contracted");
}

TEST(ProcessAcqTest, MismatchedLayerRejected) {
  auto f1 = FixtureWithTargetFactor(1.5);
  auto f2 = FixtureWithTargetFactor(1.5);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  CachedEvaluationLayer layer(&f2->task);
  EXPECT_FALSE(ProcessAcq(f1->task, &layer, {}).ok());
}

}  // namespace
}  // namespace acquire
