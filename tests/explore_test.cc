#include "core/explore.h"

#include <gtest/gtest.h>
#include <cmath>

#include "core/expand.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

// The load-bearing property of the Explore phase (Section 5): the
// incremental aggregate of a grid query — assembled from one cell query
// plus stored sub-aggregates via Eq. 17 — must equal the full re-execution
// of the same refined query.
class ExploreTest : public ::testing::TestWithParam<
                        std::tuple<size_t, AggregateKind>> {};

TEST_P(ExploreTest, IncrementalEqualsFullReexecution) {
  auto [d, agg] = GetParam();
  SyntheticOptions options;
  options.d = d;
  options.agg = agg;
  options.rows = 1500;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  AcqTask& task = fixture->task;

  RefinedSpace space(&task, 12.0, Norm::L1());
  CachedEvaluationLayer layer(&task);
  ASSERT_TRUE(layer.Prepare().ok());
  Explorer explorer(&space, &layer);

  DirectEvaluationLayer reference(&task);
  BfsGenerator gen(&space);
  GridCoord coord;
  for (int i = 0; i < 120 && gen.Next(&coord); ++i) {
    auto incremental = explorer.ComputeAggregate(coord);
    ASSERT_TRUE(incremental.ok());
    auto full = reference.EvaluateBox(space.QueryBox(coord));
    ASSERT_TRUE(full.ok());
    double expected = task.agg.ops->Final(*full);
    EXPECT_NEAR(*incremental, expected,
                1e-9 * std::max(1.0, std::fabs(expected)))
        << "coord #" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndAggregates, ExploreTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(AggregateKind::kCount,
                                         AggregateKind::kSum,
                                         AggregateKind::kMin,
                                         AggregateKind::kMax,
                                         AggregateKind::kAvg)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_" +
             AggregateKindToString(std::get<1>(info.param));
    });

TEST(ExplorerTest, OneCellExecutionPerCoordinate) {
  SyntheticOptions options;
  options.d = 2;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  RefinedSpace space(&fixture->task, 10.0, Norm::L1());
  CachedEvaluationLayer layer(&fixture->task);
  Explorer explorer(&space, &layer);

  BfsGenerator gen(&space);
  GridCoord coord;
  size_t investigated = 0;
  for (; investigated < 50 && gen.Next(&coord); ++investigated) {
    ASSERT_TRUE(explorer.ComputeAggregate(coord).ok());
  }
  EXPECT_EQ(explorer.cell_queries(), investigated);
  EXPECT_EQ(explorer.store().size(), investigated);

  // Re-computing an already-investigated coordinate costs nothing new.
  ASSERT_TRUE(explorer.ComputeAggregate(GridCoord(2, 0)).ok());
  EXPECT_EQ(explorer.cell_queries(), investigated);
}

TEST(ExplorerTest, OutOfOrderRequestFillsPredecessorsOnce) {
  SyntheticOptions options;
  options.d = 2;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  RefinedSpace space(&fixture->task, 10.0, Norm::L1());
  CachedEvaluationLayer layer(&fixture->task);
  Explorer explorer(&space, &layer);

  // Jump straight to (3, 2) without visiting anything below it.
  auto value = explorer.ComputeAggregate({3, 2});
  ASSERT_TRUE(value.ok());
  // The whole downset (4 x 3 coordinates) was filled, each exactly once.
  EXPECT_EQ(explorer.cell_queries(), 12u);
  DirectEvaluationLayer reference(&fixture->task);
  auto full = reference.EvaluateBox(space.QueryBox({3, 2}));
  ASSERT_TRUE(full.ok());
  EXPECT_NEAR(*value, fixture->task.agg.ops->Final(*full), 1e-9);
}

TEST(ExplorerTest, ShellOrderWorksDespiteInShellDependencies) {
  // (1,1) is requested before (0,1) under shell order; the explorer must
  // still produce correct values via on-demand predecessor fill.
  SyntheticOptions options;
  options.d = 2;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  RefinedSpace space(&fixture->task, 10.0, Norm::LInf());
  CachedEvaluationLayer layer(&fixture->task);
  Explorer explorer(&space, &layer);
  DirectEvaluationLayer reference(&fixture->task);

  ShellGenerator gen(&space);
  GridCoord coord;
  for (int i = 0; i < 60 && gen.Next(&coord); ++i) {
    auto incremental = explorer.ComputeAggregate(coord);
    ASSERT_TRUE(incremental.ok());
    auto full = reference.EvaluateBox(space.QueryBox(coord));
    ASSERT_TRUE(full.ok());
    EXPECT_NEAR(*incremental, fixture->task.agg.ops->Final(*full), 1e-9);
  }
}

TEST(AggregateStoreTest, InsertFindRoundTrip) {
  AggregateStore store;
  store.Configure(/*d=*/2, /*state_width=*/1);
  EXPECT_EQ(store.Find({1, 2}), nullptr);
  double* block = store.Insert({1, 2});
  ASSERT_NE(block, nullptr);
  // d + 1 = 3 states of width 1, zero-initialized on insert.
  EXPECT_EQ(store.block_width(), 3u);
  EXPECT_DOUBLE_EQ(block[2], 0.0);
  block[0] = 1.0;
  block[1] = 2.0;
  block[2] = 3.0;
  const double* found = store.Find({1, 2});
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found[2], 3.0);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Find({2, 1}), nullptr);
}

TEST(AggregateStoreTest, SurvivesRehashAndArenaGrowth) {
  AggregateStore store;
  store.Configure(/*d=*/3, /*state_width=*/2);
  store.Reserve(16);  // deliberately too small for the 1000 inserts below
  for (int32_t i = 0; i < 1000; ++i) {
    GridCoord c{i, i % 7, i % 13};
    ASSERT_EQ(store.Find(c), nullptr) << i;
    double* block = store.Insert(c);
    for (size_t j = 0; j < store.block_width(); ++j) {
      block[j] = static_cast<double>(i) + 0.25 * static_cast<double>(j);
    }
  }
  EXPECT_EQ(store.size(), 1000u);
  for (int32_t i = 0; i < 1000; ++i) {
    const double* block = store.Find({i, i % 7, i % 13});
    ASSERT_NE(block, nullptr) << i;
    for (size_t j = 0; j < store.block_width(); ++j) {
      EXPECT_DOUBLE_EQ(block[j],
                       static_cast<double>(i) + 0.25 * static_cast<double>(j));
    }
  }
}

}  // namespace
}  // namespace acquire
