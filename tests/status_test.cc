#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace acquire {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad gamma");
}

TEST(StatusTest, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsParseError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IOError("disk");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kIOError);
  EXPECT_EQ(t.message(), "disk");
  EXPECT_EQ(s, t);
  t = Status::OK();
  EXPECT_TRUE(t.ok());
  EXPECT_FALSE(s.ok());  // copy-assign did not disturb the source
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::Internal("boom");
  Status t = std::move(s);
  EXPECT_EQ(t.message(), "boom");
  s = Status::OK();  // NOLINT(bugprone-use-after-move): reassignment is legal
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r.value_or("fallback"), "hello");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace macro_helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  ACQ_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> UsesAssign(int x) {
  ACQ_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  return doubled + 1;
}

}  // namespace macro_helpers

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macro_helpers::Chain(1).ok());
  EXPECT_EQ(macro_helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(MacroTest, AssignOrReturnUnwrapsAndPropagates) {
  auto ok = macro_helpers::UsesAssign(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  auto err = macro_helpers::UsesAssign(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace acquire
