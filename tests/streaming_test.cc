// Streaming anytime results, proven bit-exact: a SUBMIT that opts into
// PROGRESS frames must produce a final report byte-identical to the same
// SUBMIT without streaming (modulo the volatile session id and wall-clock
// fields), across every search order, batch on/off, and frame throttle.
// Frames themselves must be monotone — the anytime contract is that the
// best answer only ever tightens — and a client STOP at any point must
// yield a well-formed best-so-far report with termination
// "client_satisfied".

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    UsersOptions users;
    users.users = 3000;
    EXPECT_TRUE(GenerateUsers(users, c).ok());
    PatientsOptions patients;
    patients.patients = 3000;
    EXPECT_TRUE(GeneratePatients(patients, c).ok());
    return c;
  }();
  return catalog;
}

JsonValue MustParse(const std::string& line) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : JsonValue::Null();
}

/// Recursively drops the fields that legitimately differ between two runs
/// of the same task: the session id and wall-clock timings. Everything
/// else — mode, termination, aggregates, errors, rendered SQL, counters —
/// must match to the byte.
JsonValue Stripped(const JsonValue& value) {
  if (value.is_object()) {
    JsonValue out = JsonValue::Object();
    for (const auto& [key, member] : value.Members()) {
      if (key == "id" || key == "elapsed_ms" || key == "wall_ms") continue;
      out.Set(key, Stripped(member));
    }
    return out;
  }
  if (value.is_array()) {
    JsonValue out = JsonValue::Array();
    for (const JsonValue& element : value.AsArray()) {
      out.Append(Stripped(element));
    }
    return out;
  }
  return value;
}

struct StreamedRun {
  std::vector<JsonValue> frames;
  JsonValue reply;
};

JsonValue SubmitRequest(const std::string& sql, const std::string& order,
                        bool batch, double interval_ms, bool streaming) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(sql));
  request.Set("wait", JsonValue::Bool(true));
  request.Set("order", JsonValue::Str(order));
  request.Set("batch_explore", JsonValue::Bool(batch));
  if (streaming) {
    JsonValue progress = JsonValue::Object();
    progress.Set("interval_ms", JsonValue::Number(interval_ms));
    request.Set("progress", progress);
  }
  return request;
}

/// Runs one SUBMIT in-process, capturing the streamed frame lines exactly
/// as a TCP client would see them (in order, before the final reply).
StreamedRun RunStreamed(AcqServer& server, const JsonValue& request) {
  StreamedRun run;
  const std::string reply = server.HandleRequestLine(
      request.Dump(), [&run](const std::string& line) {
        run.frames.push_back(MustParse(line));
        return true;
      });
  run.reply = MustParse(reply);
  return run;
}

/// The frame invariants every streamed run must satisfy: well-formed
/// schema, monotone layer/query counters, and a best error that never
/// loosens (the anytime guarantee).
void ExpectFramesMonotone(const StreamedRun& run) {
  double last_layers = 0.0;
  double last_explored = 0.0;
  double last_error = -1.0;
  bool saw_best = false;
  for (const JsonValue& frame : run.frames) {
    ASSERT_TRUE(frame.is_object()) << frame.Dump();
    EXPECT_TRUE(frame.GetBool("progress", false)) << frame.Dump();
    EXPECT_FALSE(frame.GetString("id").empty()) << frame.Dump();
    EXPECT_FALSE(frame.GetString("tenant").empty()) << frame.Dump();
    const double layers = frame.GetNumber("layers_drained", -1.0);
    const double explored = frame.GetNumber("queries_explored", -1.0);
    EXPECT_GE(layers, 1.0) << frame.Dump();
    EXPECT_GE(layers, last_layers) << frame.Dump();
    EXPECT_GE(explored, last_explored) << frame.Dump();
    last_layers = layers;
    last_explored = explored;
    const JsonValue* best = frame.Get("best");
    ASSERT_NE(best, nullptr) << frame.Dump();
    if (best->is_object()) {
      const double error = best->GetNumber("error", -1.0);
      EXPECT_GE(error, 0.0) << frame.Dump();
      if (saw_best) {
        EXPECT_LE(error, last_error)
            << "best error loosened between frames: " << frame.Dump();
      }
      saw_best = true;
      last_error = error;
    } else {
      // Once a best exists it never goes away.
      EXPECT_FALSE(saw_best) << frame.Dump();
    }
    const JsonValue* governor = frame.Get("governor");
    ASSERT_NE(governor, nullptr) << frame.Dump();
    EXPECT_TRUE(governor->is_object()) << frame.Dump();
    EXPECT_GE(governor->GetNumber("running", -1.0), 1.0) << frame.Dump();
  }
}

// The headline battery: 4 search orders x batch on/off, each solved
// without streaming (the baseline), with interval 0 (frame per drained
// layer) and with a 5 ms throttle. All three final reports must be
// byte-identical after stripping the session id and wall-clock fields,
// and the streamed runs' frames must be monotone.
TEST(StreamingTest, DifferentialBatteryBitExactFinalReports) {
  AcqServer server(SharedCatalog());
  const std::string sql =
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 1400 "
      "WHERE age <= 30 AND income >= 60000 AND engagement >= 3.0";
  const char* orders[] = {"auto", "bfs", "shell", "best_first"};
  uint64_t total_frames = 0;
  for (const char* order : orders) {
    for (bool batch : {false, true}) {
      SCOPED_TRACE(StringFormat("order=%s batch=%d", order, batch ? 1 : 0));
      StreamedRun baseline =
          RunStreamed(server, SubmitRequest(sql, order, batch, 0.0, false));
      ASSERT_TRUE(baseline.reply.GetBool("ok", false))
          << baseline.reply.Dump();
      ASSERT_EQ(baseline.reply.GetString("state"), "done")
          << baseline.reply.Dump();
      EXPECT_TRUE(baseline.frames.empty());
      const std::string want = Stripped(baseline.reply).Dump();

      for (double interval_ms : {0.0, 5.0}) {
        SCOPED_TRACE(StringFormat("interval_ms=%g", interval_ms));
        StreamedRun streamed =
            RunStreamed(server, SubmitRequest(sql, order, batch, interval_ms, true));
        ASSERT_TRUE(streamed.reply.GetBool("ok", false))
            << streamed.reply.Dump();
        EXPECT_EQ(Stripped(streamed.reply).Dump(), want);
        if (interval_ms == 0.0) {
          EXPECT_FALSE(streamed.frames.empty());
        }
        ExpectFramesMonotone(streamed);
        total_frames += streamed.frames.size();
      }
    }
  }
  // STATS accounts for every frame the battery streamed.
  JsonValue reply = MustParse(server.HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* stats = reply.Get("stats");
  ASSERT_NE(stats, nullptr) << reply.Dump();
  EXPECT_EQ(stats->GetNumber("progress_frames", -1.0),
            static_cast<double>(total_frames));
  EXPECT_EQ(stats->GetNumber("progress_drops", -1.0), 0.0);
}

// Acceptance check: a five-dimensional fig9-style run at interval 0 emits
// one frame per drained layer (the batched driver drains whole equi-score
// layers, so frame count and the final layers_drained agree exactly).
TEST(StreamingTest, IntervalZeroEmitsOneFramePerDrainedLayer) {
  AcqServer server(SharedCatalog());
  const std::string sql =
      "SELECT * FROM patients CONSTRAINT COUNT(*) >= 1200 "
      "WHERE age <= 45 AND weekly_exercise_hours >= 3 AND income >= 20000 "
      "AND systolic_bp <= 135 AND annual_cost <= 25000";
  StreamedRun streamed =
      RunStreamed(server, SubmitRequest(sql, "bfs", /*batch=*/true, 0.0, true));
  ASSERT_TRUE(streamed.reply.GetBool("ok", false)) << streamed.reply.Dump();
  ASSERT_EQ(streamed.reply.GetString("state"), "done")
      << streamed.reply.Dump();
  ASSERT_FALSE(streamed.frames.empty());
  ExpectFramesMonotone(streamed);
  // Frame count equals the last frame's drained-layer count, and the
  // counter steps by exactly one per frame: no layer went unreported.
  const JsonValue& last = streamed.frames.back();
  EXPECT_EQ(static_cast<double>(streamed.frames.size()),
            last.GetNumber("layers_drained", -1.0));
  for (size_t i = 0; i < streamed.frames.size(); ++i) {
    EXPECT_EQ(streamed.frames[i].GetNumber("layers_drained", -1.0),
              static_cast<double>(i + 1));
  }
  EXPECT_GE(streamed.frames.size(), 2u);
}

// STOP mid-run: a client that is satisfied by an early frame stops the
// run and still gets a well-formed best-so-far report with termination
// "client_satisfied". The STOP is issued from inside the frame callback —
// the earliest possible armed point a real client could react at.
TEST(StreamingTest, StopMidRunYieldsClientSatisfiedBestSoFar) {
  AcqServer server(SharedCatalog());
  // Unreachable constraint with the stopping rules relaxed: the run would
  // explore for a very long time unless the STOP lands.
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= "
                         "1000000000 WHERE age <= 20 AND income <= 30000 "
                         "AND engagement <= 1.0 AND "
                         "account_age_days <= 100"));
  request.Set("stall_limit", JsonValue::Number(1e15));
  request.Set("divergence_patience", JsonValue::Number(1000000));
  request.Set("max_explored", JsonValue::Number(4e9));
  request.Set("timeout_ms", JsonValue::Number(30000.0));
  JsonValue progress = JsonValue::Object();
  progress.Set("interval_ms", JsonValue::Number(0.0));
  request.Set("progress", progress);
  request.Set("wait", JsonValue::Bool(true));

  std::atomic<int> frames{0};
  std::atomic<bool> stop_acked{false};
  const std::string reply_line = server.HandleRequestLine(
      request.Dump(), [&](const std::string& line) {
        const JsonValue frame = MustParse(line);
        if (frames.fetch_add(1) == 1 && !stop_acked.load()) {
          // Second frame: the client has seen enough. STOP by session id,
          // exactly as a second connection would.
          JsonValue stop = JsonValue::Object();
          stop.Set("cmd", JsonValue::Str("STOP"));
          stop.Set("id", JsonValue::Str(frame.GetString("id")));
          JsonValue acked = MustParse(server.HandleRequestLine(stop.Dump()));
          EXPECT_TRUE(acked.GetBool("ok", false)) << acked.Dump();
          stop_acked.store(true);
        }
        return true;
      });
  ASSERT_TRUE(stop_acked.load()) << "run finished before the second frame";
  const JsonValue reply = MustParse(reply_line);
  ASSERT_TRUE(reply.GetBool("ok", false)) << reply.Dump();
  EXPECT_EQ(reply.GetString("state"), "done") << reply.Dump();
  const JsonValue* report = reply.Get("report");
  ASSERT_NE(report, nullptr) << reply.Dump();
  EXPECT_EQ(report->GetString("termination"), "client_satisfied");
  EXPECT_FALSE(report->GetBool("satisfied", true));
  // Best-so-far is a real partial answer: the run explored something and
  // reports its closest query.
  EXPECT_GT(report->GetNumber("queries_explored", 0.0), 0.0);
  const JsonValue* best = report->Get("best");
  ASSERT_NE(best, nullptr);
  EXPECT_FALSE(best->GetString("predicates").empty()) << report->Dump();
  // The STATS ledger classifies the run as client-satisfied, not
  // cancelled or completed.
  JsonValue stats_reply =
      MustParse(server.HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* stats = stats_reply.Get("stats");
  ASSERT_NE(stats, nullptr) << stats_reply.Dump();
  EXPECT_EQ(stats->GetNumber("client_satisfied", -1.0), 1.0);
}

// STOP while still queued: the session resolves without running at all —
// an empty, well-formed report with zero queries explored.
TEST(StreamingTest, QueuedStopResolvesWithEmptyReport) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  ServerOptions options;
  options.max_running = 1;
  AcqServer server(SharedCatalog(), options);
  // Stretch the slot-holding run so the second SUBMIT reliably queues.
  ASSERT_TRUE(registry.ConfigureFromSpec("server.run=sleep:300").ok());

  JsonValue hog = SubmitRequest(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 600 "
      "WHERE age <= 30 AND income >= 60000",
      "auto", false, 0.0, false);
  hog.Set("wait", JsonValue::Bool(false));
  JsonValue hog_reply = MustParse(server.HandleRequestLine(hog.Dump()));
  ASSERT_TRUE(hog_reply.GetBool("ok", false)) << hog_reply.Dump();

  JsonValue queued = SubmitRequest(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 700 "
      "WHERE age <= 28 AND income >= 62000",
      "auto", false, 0.0, false);
  queued.Set("wait", JsonValue::Bool(false));
  JsonValue queued_reply = MustParse(server.HandleRequestLine(queued.Dump()));
  ASSERT_TRUE(queued_reply.GetBool("ok", false)) << queued_reply.Dump();
  const std::string id = queued_reply.GetString("id");
  ASSERT_FALSE(id.empty());

  JsonValue stop = JsonValue::Object();
  stop.Set("cmd", JsonValue::Str("STOP"));
  stop.Set("id", JsonValue::Str(id));
  stop.Set("wait", JsonValue::Bool(true));
  JsonValue stopped = MustParse(server.HandleRequestLine(stop.Dump()));
  registry.DisarmAll();
  ASSERT_TRUE(stopped.GetBool("ok", false)) << stopped.Dump();
  EXPECT_EQ(stopped.GetString("state"), "done") << stopped.Dump();
  const JsonValue* report = stopped.Get("report");
  ASSERT_NE(report, nullptr) << stopped.Dump();
  EXPECT_EQ(report->GetString("termination"), "client_satisfied");
  EXPECT_EQ(report->GetNumber("queries_explored", -1.0), 0.0);
  const JsonValue* answers = report->Get("answers");
  ASSERT_NE(answers, nullptr);
  EXPECT_TRUE(answers->is_array());
  EXPECT_EQ(answers->size(), 0u);
}

// A cache hit replays the stored report without running anything, so it
// must stream nothing — and stay bit-identical to the run that seeded it.
TEST(StreamingTest, CacheHitStreamsNoFramesAndStaysBitIdentical) {
  ServerOptions options;
  options.cache_bytes = 1 << 20;
  AcqServer server(SharedCatalog(), options);
  const std::string sql =
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 800 "
      "WHERE age <= 30 AND income >= 60000";
  StreamedRun first =
      RunStreamed(server, SubmitRequest(sql, "auto", false, 0.0, true));
  ASSERT_TRUE(first.reply.GetBool("ok", false)) << first.reply.Dump();
  StreamedRun second =
      RunStreamed(server, SubmitRequest(sql, "auto", false, 0.0, true));
  ASSERT_TRUE(second.reply.GetBool("ok", false)) << second.reply.Dump();
  EXPECT_TRUE(second.frames.empty())
      << "cache hit ran nothing, so nothing may stream";
  EXPECT_EQ(Stripped(second.reply).Dump(), Stripped(first.reply).Dump());
}

// A run stopped by the client must never seed the result cache: its
// answer reflects where it was interrupted, not the task.
TEST(StreamingTest, ClientStoppedRunDoesNotSeedCache) {
  ServerOptions options;
  options.cache_bytes = 1 << 20;
  AcqServer server(SharedCatalog(), options);
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  const std::string sql =
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 1000000000 "
      "WHERE age <= 20 AND income <= 30000 AND engagement <= 1.0 "
      "AND account_age_days <= 100";
  request.Set("sql", JsonValue::Str(sql));
  request.Set("stall_limit", JsonValue::Number(1e15));
  request.Set("divergence_patience", JsonValue::Number(1000000));
  request.Set("max_explored", JsonValue::Number(4e9));
  request.Set("timeout_ms", JsonValue::Number(30000.0));
  JsonValue progress = JsonValue::Object();
  progress.Set("interval_ms", JsonValue::Number(0.0));
  request.Set("progress", progress);
  request.Set("wait", JsonValue::Bool(true));

  std::atomic<bool> stop_sent{false};
  const std::string reply_line = server.HandleRequestLine(
      request.Dump(), [&](const std::string& line) {
        if (!stop_sent.exchange(true)) {
          const JsonValue frame = MustParse(line);
          JsonValue stop = JsonValue::Object();
          stop.Set("cmd", JsonValue::Str("STOP"));
          stop.Set("id", JsonValue::Str(frame.GetString("id")));
          server.HandleRequestLine(stop.Dump());
        }
        return true;
      });
  const JsonValue reply = MustParse(reply_line);
  ASSERT_TRUE(reply.GetBool("ok", false)) << reply.Dump();
  const JsonValue* report = reply.Get("report");
  ASSERT_NE(report, nullptr);
  ASSERT_EQ(report->GetString("termination"), "client_satisfied")
      << report->Dump();

  // A stopped run never seeded the cache: resubmitting cannot hit.
  JsonValue stats_reply =
      MustParse(server.HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* stats = stats_reply.Get("stats");
  ASSERT_NE(stats, nullptr) << stats_reply.Dump();
  EXPECT_EQ(stats->GetNumber("cache_hits", -1.0), 0.0);
  EXPECT_EQ(stats->GetNumber("cache_entries", -1.0), 0.0);
}

// The ordering guarantee over real TCP: every frame precedes the final
// reply on the wire, and the stream ends exactly at the terminal line
// (CallStreaming returns it; the connection stays usable in lockstep).
TEST(StreamingTest, TcpStreamOrdersFramesBeforeFinalReply) {
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  JsonValue request = SubmitRequest(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 1400 "
      "WHERE age <= 30 AND income >= 60000 AND engagement >= 3.0",
      "bfs", true, 0.0, true);
  std::vector<JsonValue> frames;
  Result<JsonValue> reply = client.CallStreaming(
      request, [&frames](const JsonValue& frame) { frames.push_back(frame); });
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_TRUE(reply->GetBool("ok", false)) << reply->Dump();
  EXPECT_EQ(reply->GetString("state"), "done");
  EXPECT_FALSE(frames.empty());
  // The connection is back in lockstep: a plain STATS round-trip works.
  JsonValue stats_request = JsonValue::Object();
  stats_request.Set("cmd", JsonValue::Str("STATS"));
  Result<JsonValue> stats_reply = client.Call(stats_request);
  ASSERT_TRUE(stats_reply.ok()) << stats_reply.status().ToString();
  const JsonValue* stats = stats_reply->Get("stats");
  ASSERT_NE(stats, nullptr) << stats_reply->Dump();
  EXPECT_EQ(stats->GetNumber("progress_frames", -1.0),
            static_cast<double>(frames.size()));
  client.Close();
  server.Stop();
}

// Satellite 4's regression: CallStreamingWithRetry must NOT retry a
// SUBMIT whose stream already delivered a PROGRESS frame — the run's side
// effects are observable, so a silent re-run would double them. Phase 1
// learns the run's deterministic frame count F; phase 2 arms
// server.send=every:(F+1) so all F frames are delivered and exactly the
// final-reply send fails, closing the connection mid-exchange.
TEST(StreamingTest, NoRetryAfterDeliveredFrame) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  JsonValue request = SubmitRequest(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 1400 "
      "WHERE age <= 30 AND income >= 60000 AND engagement >= 3.0",
      "bfs", true, 0.0, true);

  LineClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", server.port()).ok());
  std::atomic<int> probe_frames{0};
  Result<JsonValue> probed = probe.CallStreaming(
      request, [&probe_frames](const JsonValue&) { probe_frames.fetch_add(1); });
  ASSERT_TRUE(probed.ok()) << probed.status().ToString();
  ASSERT_TRUE(probed->GetBool("ok", false)) << probed->Dump();
  const int f = probe_frames.load();
  ASSERT_GE(f, 1) << "test needs a run that streams at least one frame";
  probe.Close();

  ASSERT_TRUE(
      registry.ConfigureFromSpec(StringFormat("server.send=every:%d", f + 1))
          .ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::atomic<int> frames{0};
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 1.0;
  retry.max_backoff_ms = 5.0;
  Result<JsonValue> reply = client.CallStreamingWithRetry(
      request, [&frames](const JsonValue&) { frames.fetch_add(1); }, retry);
  registry.DisarmAll();
  EXPECT_EQ(frames.load(), f);
  // The transport failure after delivered frames surfaces as an error —
  // no retry happened (retries() stays 0), so the run was not re-executed.
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(client.retries(), 0u);
  JsonValue stats_request = JsonValue::Object();
  stats_request.Set("cmd", JsonValue::Str("STATS"));
  LineClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server.port()).ok());
  Result<JsonValue> stats_reply = fresh.Call(stats_request);
  ASSERT_TRUE(stats_reply.ok()) << stats_reply.status().ToString();
  const JsonValue* stats = stats_reply->Get("stats");
  ASSERT_NE(stats, nullptr) << stats_reply->Dump();
  EXPECT_EQ(stats->GetNumber("submitted", -1.0), 2.0)
      << "a retry would have submitted a third run: " << stats_reply->Dump();
  fresh.Close();
  client.Close();
  server.Stop();
}

// Same failpoint, non-streaming control: with no frame delivered before
// the failure, CallStreamingWithRetry retries like CallWithRetry does.
TEST(StreamingTest, RetryStillAllowedBeforeFirstFrame) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(server.Start().ok());
  LineClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  // count:1 → exactly the first send (the non-streaming reply) fails;
  // the retry reconnects and succeeds.
  ASSERT_TRUE(registry.ConfigureFromSpec("server.send=count:1").ok());
  JsonValue request = SubmitRequest(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 700 "
      "WHERE age <= 30 AND income >= 60000",
      "auto", false, 0.0, false);
  RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 1.0;
  retry.max_backoff_ms = 5.0;
  Result<JsonValue> reply =
      client.CallStreamingWithRetry(request, nullptr, retry);
  registry.DisarmAll();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->GetBool("ok", false)) << reply->Dump();
  EXPECT_GE(client.retries(), 1u);
  client.Close();
  server.Stop();
}

}  // namespace
}  // namespace acquire
