// Randomized end-to-end fuzzing: random tables (sizes, distributions,
// correlations), random ACQ specs (dimensionality, bounds, aggregates,
// constraint ops, targets) pushed through the full pipeline. Invariants:
// no crashes, every reported answer honest (error consistent with its
// aggregate, aggregate consistent with a brute-force re-count), answers
// sorted, and ProcessAcq's mode dispatch coherent.

#include <gtest/gtest.h>
#include <cmath>

#include "common/random.h"
#include "core/processor.h"
#include "exec/materialize.h"
#include "exec/planner.h"
#include "storage/catalog.h"

namespace acquire {
namespace {

// Random table: 3-6 numeric columns with mixed distributions.
TablePtr RandomTable(Rng* rng, size_t rows) {
  size_t num_cols = 3 + rng->NextBounded(4);
  std::vector<Field> fields;
  for (size_t c = 0; c < num_cols; ++c) {
    fields.push_back({"c" + std::to_string(c), DataType::kDouble, ""});
  }
  auto table = std::make_shared<Table>("fuzz", Schema(std::move(fields)));
  std::vector<int> dist(num_cols);
  std::vector<double> lo(num_cols);
  std::vector<double> hi(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    dist[c] = static_cast<int>(rng->NextBounded(3));
    lo[c] = rng->NextDouble(-100.0, 100.0);
    hi[c] = lo[c] + rng->NextDouble(1.0, 500.0);
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_cols; ++c) {
      double v;
      switch (dist[c]) {
        case 0:  // uniform
          v = rng->NextDouble(lo[c], hi[c]);
          break;
        case 1:  // clipped gaussian around the middle
          v = std::clamp(0.5 * (lo[c] + hi[c]) +
                             rng->NextGaussian() * (hi[c] - lo[c]) / 6.0,
                         lo[c], hi[c]);
          break;
        default:  // correlated with the previous column (or uniform)
          v = c == 0 ? rng->NextDouble(lo[c], hi[c])
                     : std::clamp(table->column(c - 1).GetDouble(r) * 0.5 +
                                      rng->NextDouble(lo[c], hi[c]) * 0.5,
                                  lo[c], hi[c]);
          break;
      }
      table->mutable_column(c).AppendDouble(v);
    }
  }
  EXPECT_TRUE(table->FinalizeAppend().ok());
  return table;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, RandomTaskInvariantsHold) {
  Rng rng(GetParam() * 7919 + 13);
  Catalog catalog;
  TablePtr table = RandomTable(&rng, 500 + rng.NextBounded(2000));
  ASSERT_TRUE(catalog.AddTable(table).ok());

  // Random spec: 1-3 refinable predicates over distinct columns.
  QuerySpec spec;
  spec.tables = {"fuzz"};
  size_t d = 1 + rng.NextBounded(3);
  d = std::min(d, table->num_columns());
  for (size_t i = 0; i < d; ++i) {
    const ColumnStats& stats = table->Stats(i);
    CompareOp op = rng.NextBool() ? CompareOp::kLe : CompareOp::kGe;
    double bound = rng.NextDouble(stats.min, stats.max);
    spec.predicates.push_back(SelectPredicateSpec{
        "c" + std::to_string(i), op, bound, true,
        rng.NextDouble(0.5, 2.0), {}});
  }
  int agg_pick = static_cast<int>(rng.NextBounded(3));
  spec.agg_kind = agg_pick == 0 ? AggregateKind::kCount
                  : agg_pick == 1 ? AggregateKind::kSum
                                  : AggregateKind::kAvg;
  if (spec.agg_kind != AggregateKind::kCount) {
    spec.agg_column = "c" + std::to_string(table->num_columns() - 1);
  }
  spec.constraint_op = rng.NextBool() ? ConstraintOp::kEq : ConstraintOp::kGe;
  spec.target = 1.0;  // fixed up below

  auto planned = PlanAcqTask(catalog, spec);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  AcqTask task = std::move(planned).value();

  DirectEvaluationLayer probe(&task);
  double base =
      probe.EvaluateQueryValue(std::vector<double>(task.d(), 0.0)).value();
  // Targets can sit below, at, or above the original aggregate; negative
  // SUM/AVG bases are clamped to a positive target (Section 2.1 requires
  // positive X).
  double factor = rng.NextDouble(0.5, 3.0);
  task.constraint.target = std::fabs(base) * factor + 1.0;

  CachedEvaluationLayer layer(&task);
  AcquireOptions options;
  options.delta = rng.NextDouble(0.01, 0.1);
  options.gamma = rng.NextDouble(5.0, 30.0);
  options.max_explored = 40000;
  auto outcome = ProcessAcq(task, &layer, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();

  const AcquireResult& result = outcome->result;
  // Invariant: answers sorted by qscore, each error consistent.
  const ErrorFn error_fn = DefaultAggregateError;
  for (size_t i = 0; i < result.queries.size(); ++i) {
    const RefinedQuery& q = result.queries[i];
    EXPECT_LE(q.error, options.delta + 1e-9);
    EXPECT_NEAR(q.error, error_fn(task.constraint, q.aggregate), 1e-9);
    if (i > 0) {
      EXPECT_LE(result.queries[i - 1].qscore, q.qscore + 1e-9);
    }
  }
  // Invariant: a reported expansion answer's aggregate matches a
  // brute-force materialization of its refined query.
  if (outcome->mode == AcqMode::kExpanded && result.satisfied &&
      task.agg.kind == AggregateKind::kCount) {
    const RefinedQuery& q = result.queries.front();
    auto tuples = MaterializeRefinedQuery(task, q.pscores);
    ASSERT_TRUE(tuples.ok());
    EXPECT_DOUBLE_EQ(static_cast<double>((*tuples)->num_rows()), q.aggregate);
  }
  // Invariant: mode dispatch is coherent with the measured origin.
  double origin_err = error_fn(task.constraint, outcome->original_aggregate);
  switch (outcome->mode) {
    case AcqMode::kOriginalSatisfies:
      EXPECT_LE(origin_err, options.delta);
      break;
    case AcqMode::kExpanded:
      EXPECT_GT(origin_err, options.delta);
      EXPECT_FALSE(OvershootsBeyondDelta(task.constraint,
                                         outcome->original_aggregate,
                                         options.delta));
      break;
    case AcqMode::kContracted:
      EXPECT_TRUE(OvershootsBeyondDelta(task.constraint,
                                        outcome->original_aggregate,
                                        options.delta));
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(uint64_t{0},
                                                           uint64_t{40}));

}  // namespace
}  // namespace acquire
