#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "exec/filter.h"
#include "exec/join.h"

namespace acquire {
namespace {

TablePtr MakeKeyed(const std::string& name, const std::string& key_col,
                   std::vector<int64_t> keys) {
  auto t = std::make_shared<Table>(
      name, Schema({{key_col, DataType::kInt64, ""},
                    {"payload", DataType::kInt64, ""}}));
  int64_t payload = 0;
  for (int64_t k : keys) {
    EXPECT_TRUE(t->AppendRow({Value(k), Value(payload++)}).ok());
  }
  return t;
}

TEST(FilterTest, SelectRowsMatchesPredicate) {
  auto t = MakeKeyed("t", "k", {1, 5, 3, 8});
  auto pred = Expr::Compare(CompareOp::kGt, Expr::Column("k"),
                            Expr::Literal(Value(int64_t{2})));
  ASSERT_TRUE(pred->Bind(t->schema()).ok());
  auto rows = SelectRows(*t, *pred);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(FilterTest, GatherPreservesSchemaAndValues) {
  auto t = MakeKeyed("t", "k", {1, 5, 3});
  TablePtr g = GatherRows(*t, {2, 0}, "g");
  EXPECT_EQ(g->num_rows(), 2u);
  EXPECT_EQ(g->Get(0, 0), Value(int64_t{3}));
  EXPECT_EQ(g->Get(1, 0), Value(int64_t{1}));
  EXPECT_EQ(g->schema().num_fields(), t->schema().num_fields());
}

TEST(FilterTest, FilterTableBindsAndFilters) {
  auto t = MakeKeyed("t", "k", {1, 5, 3});
  auto filtered = FilterTable(
      t, Expr::Compare(CompareOp::kLe, Expr::Column("k"),
                       Expr::Literal(Value(int64_t{3}))));
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ((*filtered)->num_rows(), 2u);
}

TEST(FilterTest, NullPredicatePassesThrough) {
  auto t = MakeKeyed("t", "k", {1, 2});
  auto filtered = FilterTable(t, nullptr);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ((*filtered).get(), t.get());
}

TEST(HashJoinTest, MatchesNestedLoopSemantics) {
  auto left = MakeKeyed("l", "lk", {1, 2, 2, 3});
  auto right = MakeKeyed("r", "rk", {2, 2, 3, 4});
  auto joined = HashJoin(left, right, "lk", "rk", "j");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // 2x2 pairs for key 2 plus 1 pair for key 3.
  EXPECT_EQ((*joined)->num_rows(), 5u);
  // Output schema = left fields then right fields.
  EXPECT_EQ((*joined)->schema().num_fields(), 4u);
  EXPECT_EQ((*joined)->schema().field(0).QualifiedName(), "l.lk");
  EXPECT_EQ((*joined)->schema().field(2).QualifiedName(), "r.rk");
  // Every output row has matching keys.
  for (size_t i = 0; i < (*joined)->num_rows(); ++i) {
    EXPECT_EQ((*joined)->Get(i, 0), (*joined)->Get(i, 2));
  }
}

TEST(HashJoinTest, StringKeys) {
  auto l = std::make_shared<Table>("l", Schema({{"s", DataType::kString, ""}}));
  auto r = std::make_shared<Table>("r", Schema({{"t", DataType::kString, ""}}));
  ASSERT_TRUE(l->AppendRow({Value("a")}).ok());
  ASSERT_TRUE(l->AppendRow({Value("b")}).ok());
  ASSERT_TRUE(r->AppendRow({Value("b")}).ok());
  auto joined = HashJoin(l, r, "s", "t", "j");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ((*joined)->num_rows(), 1u);
  EXPECT_EQ((*joined)->Get(0, 0), Value("b"));
}

TEST(HashJoinTest, TypeMismatchRejected) {
  auto l = std::make_shared<Table>("l", Schema({{"s", DataType::kString, ""}}));
  auto r = MakeKeyed("r", "k", {1});
  ASSERT_TRUE(l->AppendRow({Value("a")}).ok());
  EXPECT_FALSE(HashJoin(l, r, "s", "k", "j").ok());
}

TEST(HashJoinTest, EmptyInputsYieldEmptyOutput) {
  auto l = MakeKeyed("l", "lk", {});
  auto r = MakeKeyed("r", "rk", {1, 2});
  auto joined = HashJoin(l, r, "lk", "rk", "j");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ((*joined)->num_rows(), 0u);
}

TablePtr MakeDoubles(const std::string& name, const std::string& col,
                     std::vector<double> values) {
  auto t = std::make_shared<Table>(name,
                                   Schema({{col, DataType::kDouble, ""}}));
  for (double v : values) EXPECT_TRUE(t->AppendRow({Value(v)}).ok());
  return t;
}

TEST(BandJoinTest, ZeroBandIsEquiJoin) {
  auto l = MakeDoubles("l", "x", {1.0, 2.0, 3.0});
  auto r = MakeDoubles("r", "y", {2.0, 3.5});
  auto joined = BandJoin(l, r, "x", "y", 0.0, "j");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ((*joined)->num_rows(), 1u);
}

TEST(BandJoinTest, MatchesBruteForceOnRandomData) {
  Rng rng(5);
  std::vector<double> lv;
  std::vector<double> rv;
  for (int i = 0; i < 80; ++i) lv.push_back(rng.NextDouble(0, 100));
  for (int i = 0; i < 60; ++i) rv.push_back(rng.NextDouble(0, 100));
  auto l = MakeDoubles("l", "x", lv);
  auto r = MakeDoubles("r", "y", rv);
  const double band = 7.5;
  auto joined = BandJoin(l, r, "x", "y", band, "j");
  ASSERT_TRUE(joined.ok());
  size_t expected = 0;
  for (double a : lv) {
    for (double b : rv) {
      if (std::fabs(a - b) <= band) ++expected;
    }
  }
  EXPECT_EQ((*joined)->num_rows(), expected);
  for (size_t i = 0; i < (*joined)->num_rows(); ++i) {
    double a = (*joined)->column(0).GetDouble(i);
    double b = (*joined)->column(1).GetDouble(i);
    EXPECT_LE(std::fabs(a - b), band);
  }
}

TEST(BandJoinTest, NegativeBandRejected) {
  auto l = MakeDoubles("l", "x", {1.0});
  auto r = MakeDoubles("r", "y", {1.0});
  EXPECT_FALSE(BandJoin(l, r, "x", "y", -1.0, "j").ok());
}

TEST(BandJoinTest, NonNumericKeyRejected) {
  auto l = std::make_shared<Table>("l", Schema({{"s", DataType::kString, ""}}));
  ASSERT_TRUE(l->AppendRow({Value("a")}).ok());
  auto r = MakeDoubles("r", "y", {1.0});
  EXPECT_TRUE(BandJoin(l, r, "s", "y", 1.0, "j").status().IsTypeError());
}

TEST(MaterializeJoinPairsTest, CopiesBothSides) {
  auto l = MakeKeyed("l", "lk", {7});
  auto r = MakeDoubles("r", "y", {3.5});
  TablePtr out = MaterializeJoinPairs(*l, *r, {{0, 0}}, "out");
  EXPECT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(out->Get(0, 0), Value(int64_t{7}));
  EXPECT_EQ(out->Get(0, 2), Value(3.5));
}

}  // namespace
}  // namespace acquire
