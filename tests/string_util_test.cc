#include "common/string_util.h"

#include <gtest/gtest.h>

namespace acquire {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(TrimTest, StripsAsciiWhitespace) {
  EXPECT_EQ(Trim("  abc\t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("NoReFiNe", "NOREFINE"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "SELEC"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC1"), "abc1");
  EXPECT_EQ(ToUpper("AbC1"), "ABC1");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("lineitem", "line"));
  EXPECT_FALSE(StartsWith("line", "lineitem"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ParseNumberWithSuffixTest, PlainNumbers) {
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix("42").value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix("-1.5").value(), -1.5);
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix("1e3").value(), 1000.0);
}

TEST(ParseNumberWithSuffixTest, MagnitudeSuffixes) {
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix("1K").value(), 1e3);
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix("0.1M").value(), 1e5);
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix("1m").value(), 1e6);
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix("2B").value(), 2e9);
  EXPECT_DOUBLE_EQ(ParseNumberWithSuffix(" 1M ").value(), 1e6);
}

TEST(ParseNumberWithSuffixTest, Rejections) {
  EXPECT_FALSE(ParseNumberWithSuffix("").ok());
  EXPECT_FALSE(ParseNumberWithSuffix("abc").ok());
  EXPECT_FALSE(ParseNumberWithSuffix("1X").ok());
  EXPECT_FALSE(ParseNumberWithSuffix("1MM").ok());
}

TEST(ParseInt64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseInt64("123").value(), 123);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64(" 5 ").value(), 5);
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.5e2").value(), -50.0);
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.0.0").ok());
}

TEST(StringFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StringFormat("plain"), "plain");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({}, ", "), "");
}

}  // namespace
}  // namespace acquire
