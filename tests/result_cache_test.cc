// The fingerprinted result cache (server/result_cache.h + the admission
// integration in server/session.cc), proven bit-exact by a differential
// battery: a repeat SUBMIT of any completed task must come back from the
// cache byte-identical to the freshly computed wire reply (only the outer
// session "id" may differ), across every search order and batch mode, over
// hundreds of randomized tasks. Plus unit coverage of the LRU itself and of
// the canonical key: every result-affecting knob flips the fingerprint,
// while fields that only decide *whether* a run finishes (deadlines, memory
// budgets) never do.

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "core/fingerprint.h"
#include "core/run_context.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    UsersOptions options;
    options.users = 2000;
    EXPECT_TRUE(GenerateUsers(options, c).ok());
    return c;
  }();
  return catalog;
}

JsonValue MustParse(const std::string& line) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : JsonValue::Null();
}

// The wire reply with the outer session "id" removed — the only field a
// cache-served reply is allowed to differ in. Member order is preserved, so
// string equality of the dumps is byte-identity of everything else.
std::string DumpWithoutId(const JsonValue& response) {
  JsonValue out = JsonValue::Object();
  for (const auto& [key, value] : response.Members()) {
    if (key != "id") out.Set(key, JsonValue(value));
  }
  return out.Dump();
}

double StatsNumber(AcqServer* server, const char* field) {
  JsonValue stats = MustParse(server->HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* counters = stats.Get("stats");
  return counters != nullptr ? counters->GetNumber(field, -1.0) : -1.0;
}

// --- the differential battery -------------------------------------------

// >= 200 randomized tasks, cycling through all four search orders crossed
// with batch_explore on/off. Each task is SUBMITted twice; the second reply
// must be a cache hit (no new run: "completed" stays put) and byte-identical
// to the first — including wall_ms and elapsed_ms, which only survive a
// repeat because the report is rendered once and replayed.
TEST(ResultCacheDifferentialTest, RepeatSubmitIsByteIdenticalAcrossTheGrid) {
  ServerOptions options;
  options.cache_bytes = 64ull << 20;
  AcqServer server(SharedCatalog(), options);
  const char* orders[] = {"bfs", "shell", "best_first", "auto"};
  std::mt19937 rng(0xac01f5e1u);
  constexpr int kTasks = 208;  // 26 per order x batch combination
  for (int i = 0; i < kTasks; ++i) {
    const int age = 22 + static_cast<int>(rng() % 18);
    const int income = 40000 + static_cast<int>(rng() % 40) * 1000;
    const int target = 1 + static_cast<int>(rng() % 400);
    JsonValue request = JsonValue::Object();
    request.Set("cmd", JsonValue::Str("SUBMIT"));
    request.Set("sql", JsonValue::Str(StringFormat(
                           "SELECT * FROM users CONSTRAINT COUNT(*) >= %d "
                           "WHERE age <= %d AND income >= %d",
                           target, age, income)));
    request.Set("order", JsonValue::Str(orders[i % 4]));
    request.Set("batch_explore", JsonValue::Bool((i / 4) % 2 == 0));
    request.Set("wait", JsonValue::Bool(true));
    const std::string line = request.Dump();

    JsonValue fresh = MustParse(server.HandleRequestLine(line));
    ASSERT_TRUE(fresh.GetBool("ok", false)) << fresh.Dump();
    ASSERT_EQ(fresh.GetString("state"), "done") << fresh.Dump();
    const JsonValue* report = fresh.Get("report");
    ASSERT_NE(report, nullptr) << fresh.Dump();
    // These small d=2 tasks always finish their search; anything else is a
    // bug worth failing on (an uncached termination would also make the
    // repeat a fresh run with a different wall_ms).
    ASSERT_EQ(report->GetString("termination"), "completed") << fresh.Dump();

    const double hits_before = StatsNumber(&server, "cache_hits");
    const double completed_before = StatsNumber(&server, "completed");
    JsonValue cached = MustParse(server.HandleRequestLine(line));
    ASSERT_TRUE(cached.GetBool("ok", false)) << cached.Dump();
    EXPECT_EQ(DumpWithoutId(cached), DumpWithoutId(fresh)) << line;
    EXPECT_NE(cached.GetString("id"), fresh.GetString("id"));
    EXPECT_EQ(StatsNumber(&server, "cache_hits"), hits_before + 1) << line;
    // The hit ran nothing: the terminal-run tally did not move.
    EXPECT_EQ(StatsNumber(&server, "completed"), completed_before) << line;
  }
  EXPECT_EQ(StatsNumber(&server, "cache_hits"), static_cast<double>(kTasks));
}

// The acceptance bar stated directly: with the lone admission slot pinned by
// a long run and the queue full, a repeat SUBMIT of a completed task is still
// answered immediately from the cache — it consumes no session slot — while
// a novel task is rejected Unavailable.
TEST(ResultCacheTest, CacheHitConsumesNoSessionSlot) {
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  options.max_running = 1;
  options.max_queued = 0;
  AcqServer server(SharedCatalog(), options);

  const char* sql =
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 200 "
      "WHERE age <= 30 AND income >= 60000";
  JsonValue seed = JsonValue::Object();
  seed.Set("cmd", JsonValue::Str("SUBMIT"));
  seed.Set("sql", JsonValue::Str(sql));
  seed.Set("wait", JsonValue::Bool(true));
  JsonValue seeded = MustParse(server.HandleRequestLine(seed.Dump()));
  ASSERT_EQ(seeded.GetString("state"), "done") << seeded.Dump();

  // Pin the only slot with an unreachable-target run.
  JsonValue slow = JsonValue::Object();
  slow.Set("cmd", JsonValue::Str("SUBMIT"));
  slow.Set("sql", JsonValue::Str(
                      "SELECT * FROM users CONSTRAINT COUNT(*) >= 1000000000 "
                      "WHERE age <= 20 AND income <= 30000 AND "
                      "engagement <= 1.0 AND account_age_days <= 100"));
  slow.Set("stall_limit", JsonValue::Number(1e15));
  slow.Set("divergence_patience", JsonValue::Number(1000000));
  slow.Set("max_explored", JsonValue::Number(4e9));
  slow.Set("timeout_ms", JsonValue::Number(30000.0));
  JsonValue pinned = MustParse(server.HandleRequestLine(slow.Dump()));
  ASSERT_TRUE(pinned.GetBool("ok", false)) << pinned.Dump();

  // Saturated for new work…
  JsonValue novel = JsonValue::Object();
  novel.Set("cmd", JsonValue::Str("SUBMIT"));
  novel.Set("sql", JsonValue::Str(
                       "SELECT * FROM users CONSTRAINT COUNT(*) >= 50 "
                       "WHERE age <= 44 AND income >= 41000"));
  JsonValue rejected = MustParse(server.HandleRequestLine(novel.Dump()));
  EXPECT_FALSE(rejected.GetBool("ok", true)) << rejected.Dump();
  EXPECT_EQ(rejected.GetString("code"), "Unavailable");

  // …but the cached task sails through without a slot.
  JsonValue hit = MustParse(server.HandleRequestLine(seed.Dump()));
  ASSERT_TRUE(hit.GetBool("ok", false)) << hit.Dump();
  EXPECT_EQ(hit.GetString("state"), "done");
  EXPECT_EQ(DumpWithoutId(hit), DumpWithoutId(seeded));
  EXPECT_EQ(StatsNumber(&server, "cache_hits"), 1.0);
  EXPECT_EQ(StatsNumber(&server, "completed"), 1.0);

  JsonValue cancelled = MustParse(server.HandleRequestLine(StringFormat(
      "{\"cmd\":\"CANCEL\",\"id\":\"%s\",\"wait\":true}",
      pinned.GetString("id").c_str())));
  EXPECT_EQ(cancelled.GetString("state"), "cancelled") << cancelled.Dump();
}

// The CACHE verb: stats/limit/clear round-trip over the wire.
TEST(ResultCacheTest, CacheVerbReportsClearsAndRelimits) {
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  AcqServer server(SharedCatalog(), options);
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 10 "
                         "WHERE age <= 35 AND income >= 50000"));
  request.Set("wait", JsonValue::Bool(true));
  ASSERT_EQ(MustParse(server.HandleRequestLine(request.Dump()))
                .GetString("state"),
            "done");

  JsonValue stats = MustParse(server.HandleRequestLine("{\"cmd\":\"CACHE\"}"));
  ASSERT_TRUE(stats.GetBool("ok", false)) << stats.Dump();
  EXPECT_TRUE(stats.GetBool("enabled", false));
  const JsonValue* body = stats.Get("cache");
  ASSERT_NE(body, nullptr) << stats.Dump();
  EXPECT_EQ(body->GetNumber("entries", -1.0), 1.0);
  EXPECT_GT(body->GetNumber("bytes", -1.0), 0.0);
  EXPECT_EQ(body->GetNumber("limit_bytes", -1.0),
            static_cast<double>(16ull << 20));

  JsonValue cleared =
      MustParse(server.HandleRequestLine("{\"cmd\":\"CACHE\",\"clear\":true}"));
  ASSERT_TRUE(cleared.GetBool("ok", false)) << cleared.Dump();
  EXPECT_EQ(cleared.Get("cache")->GetNumber("entries", -1.0), 0.0);

  JsonValue relimited = MustParse(
      server.HandleRequestLine("{\"cmd\":\"CACHE\",\"limit\":0}"));
  ASSERT_TRUE(relimited.GetBool("ok", false)) << relimited.Dump();
  EXPECT_FALSE(relimited.GetBool("enabled", true));

  JsonValue bad = MustParse(
      server.HandleRequestLine("{\"cmd\":\"CACHE\",\"limit\":\"big\"}"));
  EXPECT_FALSE(bad.GetBool("ok", true)) << bad.Dump();
}

// --- ResultCache unit coverage ------------------------------------------

CachedResultPtr MakeEntry(size_t bytes) {
  auto entry = std::make_shared<CachedResult>();
  JsonValue report = JsonValue::Object();
  report.Set("bytes", JsonValue::Number(static_cast<double>(bytes)));
  entry->report = std::move(report);
  entry->bytes = bytes;
  return entry;
}

// All fingerprints land in shard 0 (hi & 7 == 0) so the per-shard LRU and
// its share of the byte limit are observable deterministically.
TaskFingerprint Fp(uint64_t n) { return TaskFingerprint{n * 8, n}; }

TEST(ResultCacheUnitTest, DisabledCacheStoresNothingAndCountsNothing) {
  ResultCache cache;  // limit 0
  EXPECT_FALSE(cache.enabled());
  cache.Insert(Fp(1), MakeEntry(100));
  EXPECT_EQ(cache.Lookup(Fp(1)), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);  // disabled lookups are not counted misses
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCacheUnitTest, HitAndMissCountersTally) {
  ResultCache cache(1 << 20);
  cache.Insert(Fp(1), MakeEntry(100));
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Fp(2)), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
}

TEST(ResultCacheUnitTest, EvictionIsLeastRecentlyUsed) {
  // Shard share = 1040 / 8 = 130 bytes: two 60-byte entries fit, a third
  // forces one eviction — of the least recently *used*, not least recently
  // inserted.
  ResultCache cache(8 * 130);
  cache.Insert(Fp(1), MakeEntry(60));
  cache.Insert(Fp(2), MakeEntry(60));
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);  // refresh 1: now 2 is the tail
  cache.Insert(Fp(3), MakeEntry(60));
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);
  EXPECT_NE(cache.Lookup(Fp(3)), nullptr);
  EXPECT_EQ(cache.Lookup(Fp(2)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheUnitTest, OversizedEntryIsEvictedImmediately) {
  ResultCache cache(8 * 130);
  cache.Insert(Fp(1), MakeEntry(10'000));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheUnitTest, ReinsertRefreshesBytes) {
  ResultCache cache(1 << 20);
  cache.Insert(Fp(1), MakeEntry(60));
  cache.Insert(Fp(1), MakeEntry(80));
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 80u);
}

TEST(ResultCacheUnitTest, ClearKeepsMonotonicCounters) {
  ResultCache cache(1 << 20);
  cache.Insert(Fp(1), MakeEntry(60));
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Fp(2)), nullptr);
  cache.Clear();
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);  // cleared entries are not "evictions"
}

CachedResultPtr MakeCostedEntry(size_t bytes, double cost_ms) {
  auto entry = std::make_shared<CachedResult>();
  JsonValue report = JsonValue::Object();
  report.Set("bytes", JsonValue::Number(static_cast<double>(bytes)));
  entry->report = std::move(report);
  entry->bytes = bytes;
  entry->cost_ms = cost_ms;
  return entry;
}

TEST(ResultCacheUnitTest, EvictionPrefersCheapEntriesUnderGdsf) {
  // Equal size and recency, but entry 1 took 1000 ms to compute and entry 2
  // took 0.001 ms: the GDSF priority (clock + cost x freq / bytes) must
  // sacrifice the cheap one even though the expensive one is older.
  ResultCache cache(8 * 130);
  cache.Insert(Fp(1), MakeCostedEntry(60, 1000.0));
  cache.Insert(Fp(2), MakeCostedEntry(60, 0.001));
  cache.Insert(Fp(3), MakeCostedEntry(60, 1000.0));
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Fp(2)), nullptr);
  EXPECT_NE(cache.Lookup(Fp(3)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheUnitTest, RepeatedHitsRaiseSurvivalPriority) {
  // Same cost and size everywhere, but entry 1's hits bump its frequency,
  // so the untouched entry 2 is the GDSF victim despite 1 being older.
  ResultCache cache(8 * 130);
  cache.Insert(Fp(1), MakeCostedEntry(60, 10.0));
  cache.Insert(Fp(2), MakeCostedEntry(60, 10.0));
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);
  cache.Insert(Fp(3), MakeCostedEntry(60, 10.0));
  EXPECT_NE(cache.Lookup(Fp(1)), nullptr);
  EXPECT_EQ(cache.Lookup(Fp(2)), nullptr);
}

TEST(ResultCacheUnitTest, NegativeCacheServesAfterThreshold) {
  ResultCache cache(1 << 20);
  const Status error = Status::InvalidArgument("no such column");
  Status out;
  cache.RecordFailure(7, error);
  EXPECT_FALSE(cache.LookupFailure(7, &out));  // 1 failure: below threshold
  cache.RecordFailure(7, error);
  ASSERT_TRUE(cache.LookupFailure(7, &out));  // threshold reached
  EXPECT_TRUE(out.IsInvalidArgument());
  EXPECT_EQ(out.message(), error.message());
  EXPECT_FALSE(cache.LookupFailure(8, &out));  // unknown key
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.negative_hits, 1u);
  EXPECT_EQ(stats.negative_entries, 1u);
}

TEST(ResultCacheUnitTest, NegativeEntryResetsOnDifferentErrorAndClear) {
  ResultCache cache(1 << 20);
  Status out;
  cache.RecordFailure(7, Status::InvalidArgument("a"));
  cache.RecordFailure(7, Status::NotFound("b"));  // code changed: reset
  EXPECT_FALSE(cache.LookupFailure(7, &out));
  cache.RecordFailure(7, Status::NotFound("b"));
  ASSERT_TRUE(cache.LookupFailure(7, &out));
  EXPECT_TRUE(out.IsNotFound());
  cache.Clear();
  EXPECT_FALSE(cache.LookupFailure(7, &out));
  EXPECT_EQ(cache.stats().negative_entries, 0u);
}

TEST(ResultCacheTest, NegativeCacheShortCircuitsRepeatedBadSql) {
  ServerOptions options;
  options.cache_bytes = 1 << 20;
  AcqServer server(SharedCatalog(), options);
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 10 "
                         "WHERE no_such_column <= 30"));
  request.Set("wait", JsonValue::Bool(true));
  const std::string line = request.Dump();

  // The first two failures run the planner for real; from the third on the
  // negative cache answers inline (no slot, no parse).
  std::string first_error;
  for (int i = 0; i < 4; ++i) {
    JsonValue reply = MustParse(server.HandleRequestLine(line));
    EXPECT_EQ(reply.GetString("state"), "failed") << reply.Dump();
    const std::string error = reply.GetString("error");
    EXPECT_FALSE(error.empty());
    if (i == 0) {
      first_error = error;
    } else {
      EXPECT_EQ(error, first_error) << "negative reply must echo the error";
    }
  }
  EXPECT_EQ(StatsNumber(&server, "cache_negative_served"), 2.0);
  EXPECT_GE(StatsNumber(&server, "cache_negative_entries"), 1.0);
}

TEST(ResultCacheUnitTest, TruncatedSnapshotIsRejectedWhole) {
  // A crash mid-save used to be unobservable: the old format had no
  // integrity check, so a torn snapshot could half-load. The v2 format
  // carries a whole-file CRC — any truncation point must reject the file
  // outright with ParseError and insert nothing.
  const std::string path = testing::TempDir() + "/acq_cache_torn.snapshot";
  std::remove(path.c_str());
  {
    ResultCache cache(1 << 20);
    cache.Insert(Fp(1), MakeEntry(200));
    cache.Insert(Fp(2), MakeEntry(300));
    ASSERT_TRUE(cache.SaveToFile(path).ok());
  }
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 20u);
  // Intact file loads both entries.
  {
    ResultCache cache(1 << 20);
    size_t loaded = 0;
    ASSERT_TRUE(cache.LoadFromFile(path, 0, &loaded).ok());
    EXPECT_EQ(loaded, 2u);
  }
  // Every truncation past the header must be rejected whole — including
  // cuts that land between entries, where the old line-based parser saw a
  // well-formed prefix and loaded half the cache.
  for (size_t keep : {full.size() - 1, full.size() - 9, full.size() / 2,
                      full.size() / 4}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(keep));
    out.close();
    ResultCache cache(1 << 20);
    size_t loaded = 0, dropped = 0;
    Status status = cache.LoadFromFile(path, 0, &loaded, &dropped);
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_EQ(cache.stats().entries, 0u)
        << "keep=" << keep << ": torn snapshot half-loaded";
    EXPECT_EQ(loaded, 0u);
  }
  // A single flipped bit in the body is caught by the CRC too.
  {
    std::string flipped = full;
    flipped[full.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << flipped;
    out.close();
    ResultCache cache(1 << 20);
    EXPECT_FALSE(cache.LoadFromFile(path, 0).ok());
    EXPECT_EQ(cache.stats().entries, 0u);
  }
  std::remove(path.c_str());
  // SaveToFile staged through `path`.tmp; no residue may remain.
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
}

TEST(ResultCacheUnitTest, ZeroLimitClearsAndDisables) {
  ResultCache cache(1 << 20);
  cache.Insert(Fp(1), MakeEntry(60));
  cache.set_limit_bytes(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup(Fp(1)), nullptr);
}

// --- fingerprint sensitivity --------------------------------------------

QuerySpec MustBind(const std::string& sql) {
  Result<AstQuery> ast = ParseAcqSql(sql);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  Binder binder(SharedCatalog());
  Result<QuerySpec> spec = binder.BindQuery(*ast);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  return spec.ok() ? *spec : QuerySpec{};
}

TaskFingerprint MustFingerprint(const Catalog& catalog, const QuerySpec& spec,
                                const AcquireOptions& options) {
  Result<TaskFingerprint> fp = FingerprintTask(catalog, spec, options);
  EXPECT_TRUE(fp.ok()) << fp.status().ToString();
  return fp.ok() ? *fp : TaskFingerprint{};
}

constexpr const char* kBaseSql =
    "SELECT * FROM users CONSTRAINT COUNT(*) >= 500 "
    "WHERE age <= 30 AND income >= 60000";

TEST(FingerprintTest, EveryResultAffectingOptionFlipsTheKey) {
  const QuerySpec spec = MustBind(kBaseSql);
  const TaskFingerprint base =
      MustFingerprint(*SharedCatalog(), spec, AcquireOptions{});
  struct Case {
    const char* what;
    void (*mutate)(AcquireOptions*);
  } cases[] = {
      {"gamma", [](AcquireOptions* o) { o->gamma = 11.0; }},
      {"delta", [](AcquireOptions* o) { o->delta = 0.1; }},
      {"norm", [](AcquireOptions* o) { o->norm = Norm::L2(); }},
      {"norm_p", [](AcquireOptions* o) { o->norm = Norm::Lp(3.0); }},
      {"order", [](AcquireOptions* o) { o->order = SearchOrder::kShell; }},
      {"batch_explore",
       [](AcquireOptions* o) { o->batch_explore = BatchExplore::kOff; }},
      {"repartition_iters",
       [](AcquireOptions* o) { o->repartition_iters = 3; }},
      {"collect_within_gamma",
       [](AcquireOptions* o) { o->collect_within_gamma = true; }},
      {"use_incremental",
       [](AcquireOptions* o) { o->use_incremental = false; }},
      {"max_explored", [](AcquireOptions* o) { o->max_explored = 999; }},
      {"divergence_patience",
       [](AcquireOptions* o) { o->divergence_patience = 5; }},
      {"stall_limit", [](AcquireOptions* o) { o->stall_limit = 7; }},
  };
  for (const Case& c : cases) {
    AcquireOptions mutated;
    c.mutate(&mutated);
    EXPECT_NE(MustFingerprint(*SharedCatalog(), spec, mutated), base)
        << c.what;
  }
}

TEST(FingerprintTest, CompletionOnlyFieldsDoNotFlipTheKey) {
  const QuerySpec spec = MustBind(kBaseSql);
  const TaskFingerprint base =
      MustFingerprint(*SharedCatalog(), spec, AcquireOptions{});
  AcquireOptions budgeted;
  budgeted.memory_budget_bytes = 1 << 20;
  EXPECT_EQ(MustFingerprint(*SharedCatalog(), spec, budgeted), base);
  RunContext ctx;
  ctx.SetTimeoutMillis(1.0);
  AcquireOptions deadlined;
  deadlined.run_ctx = &ctx;
  EXPECT_EQ(MustFingerprint(*SharedCatalog(), spec, deadlined), base);
}

TEST(FingerprintTest, AutoChoicesResolveToTheirEffectiveValue) {
  const QuerySpec spec = MustBind(kBaseSql);
  // L1 norm: order auto resolves to bfs.
  AcquireOptions auto_order;  // order = kAuto, norm = L1
  AcquireOptions bfs_order;
  bfs_order.order = SearchOrder::kBfs;
  EXPECT_EQ(MustFingerprint(*SharedCatalog(), spec, auto_order),
            MustFingerprint(*SharedCatalog(), spec, bfs_order));
  // LInf norm: order auto resolves to shell.
  AcquireOptions auto_linf;
  auto_linf.norm = Norm::LInf();
  AcquireOptions shell_linf;
  shell_linf.norm = Norm::LInf();
  shell_linf.order = SearchOrder::kShell;
  EXPECT_EQ(MustFingerprint(*SharedCatalog(), spec, auto_linf),
            MustFingerprint(*SharedCatalog(), spec, shell_linf));
  // Discrete-layer orders: batch auto resolves to on.
  AcquireOptions batch_on;
  batch_on.batch_explore = BatchExplore::kOn;
  EXPECT_EQ(MustFingerprint(*SharedCatalog(), spec, AcquireOptions{}),
            MustFingerprint(*SharedCatalog(), spec, batch_on));
  // Backend auto resolves to cell_sorted.
  QuerySpec cell = spec;
  cell.eval_backend = EvalBackend::kCellSorted;
  EXPECT_EQ(MustFingerprint(*SharedCatalog(), cell, AcquireOptions{}),
            MustFingerprint(*SharedCatalog(), spec, AcquireOptions{}));
  QuerySpec direct = spec;
  direct.eval_backend = EvalBackend::kDirect;
  EXPECT_NE(MustFingerprint(*SharedCatalog(), direct, AcquireOptions{}),
            MustFingerprint(*SharedCatalog(), spec, AcquireOptions{}));
}

TEST(FingerprintTest, PlanAndCatalogIdentityFlipTheKey) {
  const QuerySpec spec = MustBind(kBaseSql);
  const TaskFingerprint base =
      MustFingerprint(*SharedCatalog(), spec, AcquireOptions{});
  // A different constraint target or predicate bound is a different task.
  EXPECT_NE(MustFingerprint(*SharedCatalog(),
                            MustBind("SELECT * FROM users CONSTRAINT "
                                     "COUNT(*) >= 501 WHERE age <= 30 AND "
                                     "income >= 60000"),
                            AcquireOptions{}),
            base);
  EXPECT_NE(MustFingerprint(*SharedCatalog(),
                            MustBind("SELECT * FROM users CONSTRAINT "
                                     "COUNT(*) >= 500 WHERE age <= 31 AND "
                                     "income >= 60000"),
                            AcquireOptions{}),
            base);
  // …while a re-spelling that binds identically shares the key.
  EXPECT_EQ(MustFingerprint(*SharedCatalog(),
                            MustBind("SELECT   *   FROM users CONSTRAINT "
                                     "COUNT(*) >= 500 WHERE age <= 30 "
                                     "AND income >= 60000"),
                            AcquireOptions{}),
            base);
  // Any catalog mutation bumps the generation and invalidates the key.
  Catalog local;
  UsersOptions gen;
  gen.users = 300;
  ASSERT_TRUE(GenerateUsers(gen, &local).ok());
  Binder binder(&local);
  Result<AstQuery> ast = ParseAcqSql(kBaseSql);
  ASSERT_TRUE(ast.ok());
  Result<QuerySpec> local_spec = binder.BindQuery(*ast);
  ASSERT_TRUE(local_spec.ok());
  const TaskFingerprint before =
      MustFingerprint(local, *local_spec, AcquireOptions{});
  Result<TablePtr> users = local.GetTable("users");
  ASSERT_TRUE(users.ok());
  local.PutTable(*users);  // same table, but the generation moved
  EXPECT_NE(MustFingerprint(local, *local_spec, AcquireOptions{}), before);
}

TEST(FingerprintTest, UncacheableTasksAreRejectedNotMiskeyed) {
  const QuerySpec spec = MustBind(kBaseSql);
  AcquireOptions custom_error;
  custom_error.error_fn = [](const Constraint& c, double actual) {
    return actual - c.target;
  };
  Result<TaskFingerprint> with_error =
      FingerprintTask(*SharedCatalog(), spec, custom_error);
  EXPECT_FALSE(with_error.ok());
  QuerySpec uda = spec;
  uda.agg_kind = AggregateKind::kUda;
  Result<TaskFingerprint> with_uda =
      FingerprintTask(*SharedCatalog(), uda, AcquireOptions{});
  EXPECT_FALSE(with_uda.ok());
}

TEST(FingerprintTest, CanonicalKeyIsReadable) {
  const QuerySpec spec = MustBind(kBaseSql);
  Result<std::string> key =
      CanonicalTaskKey(*SharedCatalog(), spec, AcquireOptions{});
  ASSERT_TRUE(key.ok()) << key.status().ToString();
  EXPECT_EQ(key->rfind("acq-fp-v1|catalog{gen=", 0), 0u) << *key;
  EXPECT_NE(key->find("|table{users;"), std::string::npos) << *key;
  EXPECT_NE(key->find("|agg{"), std::string::npos) << *key;
  EXPECT_NE(key->find("|opts{backend=cellsorted;"), std::string::npos)
      << *key;
  // The exclusions really are absent.
  EXPECT_EQ(key->find("budget"), std::string::npos) << *key;
  EXPECT_EQ(key->find("deadline"), std::string::npos) << *key;
  // And the hex spelling round-trips the 128 bits.
  TaskFingerprint fp = MustFingerprint(*SharedCatalog(), spec,
                                       AcquireOptions{});
  EXPECT_EQ(fp.ToHex().size(), 32u);
  EXPECT_NE(fp, TaskFingerprint{});
}

}  // namespace
}  // namespace acquire
