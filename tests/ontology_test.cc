#include "expr/ontology.h"

#include <gtest/gtest.h>
#include <cmath>

#include "core/acquire.h"
#include "exec/planner.h"

namespace acquire {
namespace {

// Figure 7(b)'s taxonomy tree: Restaurants -> cuisines -> dishes.
OntologyTree FoodTree() {
  OntologyTree tree;
  EXPECT_TRUE(tree.AddNode("Restaurants", "").ok());
  EXPECT_TRUE(tree.AddNode("Mediterranean", "Restaurants").ok());
  EXPECT_TRUE(tree.AddNode("MiddleEastern", "Restaurants").ok());
  EXPECT_TRUE(tree.AddNode("Greek", "Mediterranean").ok());
  EXPECT_TRUE(tree.AddNode("Italian", "Mediterranean").ok());
  EXPECT_TRUE(tree.AddNode("Gyro", "Greek").ok());
  EXPECT_TRUE(tree.AddNode("Falafel", "MiddleEastern").ok());
  EXPECT_TRUE(tree.AddNode("Pasta", "Italian").ok());
  return tree;
}

TEST(OntologyTreeTest, DepthsAndHeight) {
  OntologyTree tree = FoodTree();
  EXPECT_EQ(tree.Depth("Restaurants").value(), 0);
  EXPECT_EQ(tree.Depth("Mediterranean").value(), 1);
  EXPECT_EQ(tree.Depth("Gyro").value(), 3);
  EXPECT_EQ(tree.height(), 3);
  EXPECT_EQ(tree.size(), 8u);
}

TEST(OntologyTreeTest, StructuralErrors) {
  OntologyTree tree;
  ASSERT_TRUE(tree.AddNode("root", "").ok());
  EXPECT_FALSE(tree.AddNode("other_root", "").ok());   // second root
  EXPECT_FALSE(tree.AddNode("child", "missing").ok()); // unknown parent
  ASSERT_TRUE(tree.AddNode("child", "root").ok());
  EXPECT_TRUE(tree.AddNode("child", "root").code() ==
              StatusCode::kAlreadyExists);
  EXPECT_FALSE(tree.Depth("nope").ok());
}

TEST(OntologyTreeTest, AncestorClampsAtRoot) {
  OntologyTree tree = FoodTree();
  EXPECT_EQ(tree.Ancestor("Gyro", 0).value(), "Gyro");
  EXPECT_EQ(tree.Ancestor("Gyro", 1).value(), "Greek");
  EXPECT_EQ(tree.Ancestor("Gyro", 2).value(), "Mediterranean");
  EXPECT_EQ(tree.Ancestor("Gyro", 99).value(), "Restaurants");
}

TEST(OntologyTreeTest, IsAncestorOrSelf) {
  OntologyTree tree = FoodTree();
  EXPECT_TRUE(tree.IsAncestorOrSelf("Mediterranean", "Gyro").value());
  EXPECT_TRUE(tree.IsAncestorOrSelf("Gyro", "Gyro").value());
  EXPECT_FALSE(tree.IsAncestorOrSelf("Italian", "Gyro").value());
  EXPECT_FALSE(tree.IsAncestorOrSelf("Gyro", "Mediterranean").value());
}

TEST(OntologyTreeTest, RollupsToCoverSection73Example) {
  OntologyTree tree = FoodTree();
  // Gyro -> any Mediterranean cuisine: 2 roll-ups (Gyro -> Greek -> Med).
  EXPECT_EQ(tree.RollupsToCover({"Gyro"}, "Pasta").value(), 2);
  EXPECT_EQ(tree.RollupsToCover({"Gyro"}, "Gyro").value(), 0);
  EXPECT_EQ(tree.RollupsToCover({"Gyro"}, "Falafel").value(), 3);  // root
  // The nearest base node wins.
  EXPECT_EQ(tree.RollupsToCover({"Gyro", "Falafel"}, "Falafel").value(), 0);
  EXPECT_FALSE(tree.RollupsToCover({"Gyro"}, "Sushi").ok());
  EXPECT_FALSE(tree.RollupsToCover({}, "Gyro").ok());
}

TablePtr CuisineTable() {
  auto t = std::make_shared<Table>(
      "places", Schema({{"dish", DataType::kString, ""},
                        {"rating", DataType::kDouble, ""}}));
  const char* dishes[] = {"Gyro", "Gyro", "Pasta", "Falafel", "Pasta",
                          "Gyro", "Falafel", "Pasta"};
  double rating = 1.0;
  for (const char* d : dishes) {
    EXPECT_TRUE(t->AppendRow({Value(d), Value(rating)}).ok());
    rating += 1.0;
  }
  return t;
}

TEST(CategoricalDimTest, NeededPScoreScalesRollups) {
  OntologyTree tree = FoodTree();
  auto table = CuisineTable();
  CategoricalDim dim("dish", {"Gyro"}, &tree, /*pscore_per_rollup=*/10.0);
  ASSERT_TRUE(dim.Bind(table->schema()).ok());
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*table, 0), 0.0);   // Gyro
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*table, 2), 20.0);  // Pasta: 2 roll-ups
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*table, 3), 30.0);  // Falafel: to root
  EXPECT_DOUBLE_EQ(dim.MaxPScore(), 30.0);
}

TEST(CategoricalDimTest, DefaultPScorePerRollupFromHeight) {
  OntologyTree tree = FoodTree();
  CategoricalDim dim("dish", {"Gyro"}, &tree);
  // Height 3 -> 100/3 per roll-up.
  EXPECT_NEAR(dim.MaxPScore(), 100.0, 1e-9);
}

TEST(CategoricalDimTest, DescribeRollsUpTheInList) {
  OntologyTree tree = FoodTree();
  CategoricalDim dim("dish", {"Gyro"}, &tree, 10.0);
  EXPECT_EQ(dim.label(), "dish IN ('Gyro')");
  EXPECT_EQ(dim.DescribeAt(10.0), "dish IN ('Greek')");
  EXPECT_EQ(dim.DescribeAt(20.0), "dish IN ('Mediterranean')");
  EXPECT_EQ(dim.DescribeAt(15.0), "dish IN ('Greek')");  // floor semantics
}

TEST(CategoricalDimTest, UnknownValueIsUnreachable) {
  OntologyTree tree = FoodTree();
  auto table = std::make_shared<Table>(
      "places", Schema({{"dish", DataType::kString, ""}}));
  ASSERT_TRUE(table->AppendRow({Value("Sushi")}).ok());
  CategoricalDim dim("dish", {"Gyro"}, &tree, 10.0);
  ASSERT_TRUE(dim.Bind(table->schema()).ok());
  EXPECT_TRUE(std::isinf(dim.NeededPScore(*table, 0)));
}

TEST(CategoricalDimTest, BindValidation) {
  OntologyTree tree = FoodTree();
  auto table = CuisineTable();
  CategoricalDim bad_col("rating", {"Gyro"}, &tree);
  EXPECT_TRUE(bad_col.Bind(table->schema()).IsTypeError());
  CategoricalDim bad_cat("dish", {"Sushi"}, &tree);
  EXPECT_EQ(bad_cat.Bind(table->schema()).code(), StatusCode::kNotFound);
  CategoricalDim empty("dish", {}, &tree);
  EXPECT_FALSE(empty.Bind(table->schema()).ok());
}

TEST(CategoricalAcquireTest, EndToEndRollupRefinement) {
  // Ask for more places than serve Gyro: ACQUIRE must roll the category up.
  OntologyTree tree = FoodTree();
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(CuisineTable()).ok());

  QuerySpec spec;
  spec.tables = {"places"};
  spec.categorical_predicates.push_back(
      CategoricalPredicateSpec{"dish", {"Gyro"}, &tree, 1.0, 10.0});
  spec.agg_kind = AggregateKind::kCount;
  spec.constraint_op = ConstraintOp::kGe;
  spec.target = 6.0;  // Gyro(3) + Pasta(3) after 2 roll-ups
  auto task = PlanAcqTask(catalog, spec);
  ASSERT_TRUE(task.ok()) << task.status().ToString();

  CachedEvaluationLayer layer(&*task);
  AcquireOptions options;
  options.gamma = 10.0;  // step 10 = one roll-up per layer
  options.delta = 0.0;
  auto result = RunAcquire(*task, &layer, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->satisfied);
  EXPECT_GE(result->queries[0].aggregate, 6.0);
  EXPECT_NE(result->queries[0].description.find("Mediterranean"),
            std::string::npos);
}

}  // namespace
}  // namespace acquire
