// The persistent pool behind the parallel and cell-sorted backends: one
// set of workers reused across every submission, deterministic chunk
// geometry, first-exception propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"

namespace acquire {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, 1, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManySubmissions) {
  // The whole point of the pool: repeated small submissions must not spawn
  // threads per call. We can't observe thread creation portably, but we can
  // assert many rapid submissions all complete correctly on one pool.
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(1000, 1, [&](size_t, size_t begin, size_t end) {
      size_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SmallRangeRunsInline) {
  // Below min_chunk the body runs once, inline, covering the whole range.
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> ranges;
  pool.ParallelFor(10, 4096, [&](size_t chunk, size_t begin, size_t end) {
    EXPECT_EQ(chunk, 0u);
    ranges.emplace_back(begin, end);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 10}));
}

TEST(ThreadPoolTest, ChunkGeometryIsDeterministic) {
  // Chunk boundaries depend only on (n, min_chunk, num_threads) — never on
  // scheduling — so chunk-ordered merges are reproducible run to run.
  ThreadPool pool(4);
  const size_t n = 100000;
  auto collect = [&] {
    std::vector<std::pair<size_t, size_t>> bounds(pool.NumChunks(n, 1));
    pool.ParallelFor(n, 1, [&](size_t chunk, size_t begin, size_t end) {
      bounds[chunk] = {begin, end};
    });
    return bounds;
  };
  auto first = collect();
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(collect(), first) << "round " << round;
  }
  // Chunks partition [0, n) in order.
  size_t expected_begin = 0;
  for (const auto& [begin, end] : first) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_LT(begin, end);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(ThreadPoolTest, PropagatesBodyException) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    EXPECT_THROW(
        pool.ParallelFor(100000, 1,
                         [&](size_t chunk, size_t, size_t) {
                           if (chunk == 1) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The pool must survive the exception and stay usable.
    std::atomic<int> ok{0};
    pool.ParallelFor(100, 1,
                     [&](size_t, size_t, size_t) { ok.fetch_add(1); });
    EXPECT_GT(ok.load(), 0);
  }
}

TEST(ThreadPoolTest, ZeroThreadsResolvesToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  std::atomic<size_t> count{0};
  a.ParallelFor(5000, 1, [&](size_t, size_t begin, size_t end) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 5000u);
}

TEST(ThreadPoolTest, NumChunksNeverExceedsRangeOrWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumChunks(0, 4096), 0u);  // empty range: nothing to run
  EXPECT_EQ(pool.NumChunks(10, 4096), 1u);
  EXPECT_LE(pool.NumChunks(1 << 20, 4096), pool.num_threads() + 1);
  EXPECT_EQ(pool.NumChunks(3, 1), 3u);
}

}  // namespace
}  // namespace acquire
