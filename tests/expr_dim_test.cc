// Tests for Section 2.2's general predicate functions: arithmetic select
// predicates (ExprDim), the ExprBandJoin executor, and non-equi joins
// (Section 2.4) driven end-to-end through SQL.

#include <gtest/gtest.h>
#include <cmath>

#include "core/acquire.h"
#include "exec/join.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "workload/tpch_gen.h"

namespace acquire {
namespace {

TablePtr TwoColumnTable(const std::string& name,
                        std::vector<std::pair<double, double>> rows) {
  auto t = std::make_shared<Table>(
      name, Schema({{"x", DataType::kDouble, ""},
                    {"y", DataType::kDouble, ""}}));
  for (auto [x, y] : rows) {
    EXPECT_TRUE(t->AppendRow({Value(x), Value(y)}).ok());
  }
  return t;
}

ExprPtr TimesTwoXPlusY() {
  return Expr::Arith(
      ArithOp::kAdd,
      Expr::Arith(ArithOp::kMul, Expr::Literal(Value(2.0)), Expr::Column("x")),
      Expr::Column("y"));
}

TEST(ExprDimTest, NeededPScoreOverArithmeticFunction) {
  // f = 2x + y; predicate f <= 10 over f-domain [0, 40]; width = 10.
  auto t = TwoColumnTable("t", {{1, 2}, {4, 2}, {10, 20}});  // f: 4, 10, 40
  ExprDim dim(TimesTwoXPlusY(), /*is_upper=*/true, 10.0, /*strict=*/false,
              0.0, 40.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 0), 0.0);
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 1), 0.0);    // on the bound
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 2), 300.0);  // (40-10)/10*100
  EXPECT_DOUBLE_EQ(dim.MaxPScore(), 300.0);
}

TEST(ExprDimTest, JoinSemanticsDenominator) {
  // Join semantics: denominator 100 -> PScore equals value-unit violation.
  auto t = TwoColumnTable("t", {{6, 2}});  // f = 14
  ExprDim dim(TimesTwoXPlusY(), true, 10.0, false, 0.0, 40.0,
              /*pscore_denominator=*/100.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 0), 4.0);  // 14 - 10
  EXPECT_DOUBLE_EQ(dim.MaxPScore(), 30.0);         // domain slack 40-10
}

TEST(ExprDimTest, DescribeAndRefinedBound) {
  ExprDim dim(TimesTwoXPlusY(), true, 10.0, true, 0.0, 40.0);
  EXPECT_EQ(dim.label(), "((2 * x) + y) < 10");
  EXPECT_DOUBLE_EQ(dim.RefinedBound(100.0), 20.0);  // +100% of width 10
  EXPECT_EQ(dim.DescribeAt(100.0), "((2 * x) + y) <= 20");
}

TEST(ExprDimTest, EvaluationFailureIsUnreachable) {
  // Division by zero on some rows: those tuples can never be admitted.
  auto t = TwoColumnTable("t", {{1, 0}, {1, 2}});
  ExprPtr f = Expr::Arith(ArithOp::kDiv, Expr::Column("x"), Expr::Column("y"));
  ExprDim dim(f, true, 1.0, false, 0.0, 10.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_TRUE(std::isinf(dim.NeededPScore(*t, 0)));
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 1), 0.0);  // 1/2 <= 1
}

TEST(ExprBandJoinTest, MatchesBruteForce) {
  auto left = TwoColumnTable("l", {{1, 1}, {2, 5}, {3, 0}});
  auto right = TwoColumnTable("r", {{2, 0}, {4, 1}, {1, 9}});
  // delta = 2*l.x - 3*r.x in [-2, 2].
  ExprPtr lf = Expr::Arith(ArithOp::kMul, Expr::Literal(Value(2.0)),
                           Expr::Column("x"));
  ExprPtr rf = Expr::Arith(ArithOp::kMul, Expr::Literal(Value(3.0)),
                           Expr::Column("x"));
  auto joined = ExprBandJoin(left, right, lf, rf, -2.0, 2.0, "j");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  size_t expected = 0;
  for (double lx : {1.0, 2.0, 3.0}) {
    for (double rx : {2.0, 4.0, 1.0}) {
      double delta = 2 * lx - 3 * rx;
      if (delta >= -2.0 && delta <= 2.0) ++expected;
    }
  }
  EXPECT_EQ((*joined)->num_rows(), expected);
}

TEST(ExprBandJoinTest, OneSidedTheta) {
  auto left = TwoColumnTable("l", {{1, 0}, {5, 0}});
  auto right = TwoColumnTable("r", {{2, 0}, {6, 0}});
  // l.x < r.x: delta = l.x - r.x in (-inf, 0].
  auto joined = ExprBandJoin(
      left, right, Expr::Column("x"), Expr::Column("x"),
      -std::numeric_limits<double>::infinity(), 0.0, "j");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ((*joined)->num_rows(), 3u);  // (1,2) (1,6) (5,6)
}

TEST(ExprBandJoinTest, ValidationErrors) {
  auto left = TwoColumnTable("l", {{1, 0}});
  auto right = TwoColumnTable("r", {{1, 0}});
  EXPECT_FALSE(
      ExprBandJoin(left, right, nullptr, Expr::Column("x"), 0, 1, "j").ok());
  EXPECT_FALSE(ExprBandJoin(left, right, Expr::Column("x"),
                            Expr::Column("x"), 2.0, 1.0, "j")
                   .ok());
  EXPECT_FALSE(ExprBandJoin(left, right, Expr::Column("nope"),
                            Expr::Column("x"), 0.0, 1.0, "j")
                   .ok());
}

TEST(ParserArithTest, ArithmeticOperandsAndPrecedence) {
  auto q = ParseAcqSql("SELECT * FROM t WHERE a + b * 2 < 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->predicates.size(), 1u);
  const AstOperand& lhs = q->predicates[0].lhs;
  ASSERT_TRUE(lhs.is_expr());
  EXPECT_EQ(lhs.expr->ToString(), "(a + (b * 2))");
  EXPECT_EQ(lhs.columns, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserArithTest, UnaryMinusAndParens) {
  auto q = ParseAcqSql("SELECT * FROM t WHERE (a - b) / 2 >= -1.5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const AstPredicate& pred = q->predicates[0];
  ASSERT_TRUE(pred.lhs.is_expr());
  EXPECT_EQ(pred.lhs.expr->ToString(), "((a - b) / 2)");
  ASSERT_TRUE(pred.rhs.is_literal());
  EXPECT_DOUBLE_EQ(pred.rhs.literal.number, -1.5);
}

TEST(ParserArithTest, ParenthesizedOperandAtPredicateStart) {
  auto q = ParseAcqSql("SELECT * FROM t WHERE (2 * a) < b");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->predicates[0].lhs.is_expr());
  EXPECT_TRUE(q->predicates[0].rhs.is_column());
}

class NonEquiJoinSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto a = std::make_shared<Table>("A",
                                     Schema({{"x", DataType::kDouble, ""}}));
    auto b = std::make_shared<Table>("B",
                                     Schema({{"x", DataType::kDouble, ""}}));
    for (int i = 1; i <= 50; ++i) {
      ASSERT_TRUE(a->AppendRow({Value(i * 1.0)}).ok());
      ASSERT_TRUE(b->AppendRow({Value(i * 1.0)}).ok());
    }
    ASSERT_TRUE(catalog_.AddTable(a).ok());
    ASSERT_TRUE(catalog_.AddTable(b).ok());
  }
  Catalog catalog_;
};

TEST_F(NonEquiJoinSqlTest, RefinableNonEquiJoinEndToEnd) {
  // 2*A.x < 3*B.x refines by widening the delta band upward.
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM A, B CONSTRAINT COUNT(*) = 1800 "
      "WHERE 2 * A.x < 3 * B.x");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 1u);

  // Base pair count: #{(a,b) : 2a < 3b} over 50x50.
  size_t base = 0;
  for (int ax = 1; ax <= 50; ++ax) {
    for (int bx = 1; bx <= 50; ++bx) {
      if (2 * ax < 3 * bx) ++base;
    }
  }
  CachedEvaluationLayer layer(&*task);
  double origin = layer.EvaluateQueryValue({0.0}).value();
  EXPECT_DOUBLE_EQ(origin, static_cast<double>(base));

  AcquireOptions options;
  options.delta = 0.02;
  auto result = RunAcquire(*task, &layer, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied) << result->best.ToString();
  EXPECT_NEAR(result->queries[0].aggregate, 1800.0, 1800.0 * 0.02 + 1e-9);
  EXPECT_NE(result->queries[0].description.find("<="), std::string::npos);
}

TEST_F(NonEquiJoinSqlTest, NorefineNonEquiJoinIsExact) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM A, B CONSTRAINT COUNT(*) = 100 "
      "WHERE (2 * A.x < 3 * B.x) NOREFINE AND A.x <= 10");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 1u);  // only A.x is refinable
  size_t expected = 0;
  for (int ax = 1; ax <= 50; ++ax) {
    for (int bx = 1; bx <= 50; ++bx) {
      if (2 * ax < 3 * bx) ++expected;
    }
  }
  EXPECT_EQ(task->relation->num_rows(), expected);
}

TEST_F(NonEquiJoinSqlTest, ArithmeticSelectPredicateViaSql) {
  Catalog catalog;
  TpchOptions options;
  options.lineitems = 5000;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  Binder binder(&catalog);
  auto task = binder.PlanSql(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 1000 "
      "WHERE l_quantity * l_extendedprice < 100000");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 1u);
  CachedEvaluationLayer layer(&*task);
  auto result = RunAcquire(*task, &layer, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
}

TEST_F(NonEquiJoinSqlTest, SameTableFunctionComparisonRefines) {
  Catalog catalog;
  TpchOptions options;
  options.lineitems = 5000;
  ASSERT_TRUE(GenerateTpch(options, &catalog).ok());
  Binder binder(&catalog);
  // l_quantity < l_discount * 300: same-table function comparison becomes
  // the refinable predicate (l_quantity - l_discount*300) < 0.
  auto task = binder.PlanSql(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 2000 "
      "WHERE l_quantity < l_discount * 300");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 1u);
  CachedEvaluationLayer layer(&*task);
  auto result = RunAcquire(*task, &layer, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied);
}

}  // namespace
}  // namespace acquire
