// Behavioral tests of the ACQUIRE driver (Algorithm 4) and its options.

#include "core/acquire.h"

#include <gtest/gtest.h>
#include <cmath>

#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

std::unique_ptr<test_util::SyntheticTask> CountFixture(size_t d,
                                                       double ratio) {
  SyntheticOptions options;
  options.d = d;
  options.rows = 3000;
  options.target = 1.0;  // replaced below
  auto fixture = MakeSyntheticTask(options);
  if (fixture == nullptr) return nullptr;
  DirectEvaluationLayer layer(&fixture->task);
  auto base =
      layer.EvaluateQueryValue(std::vector<double>(fixture->task.d(), 0.0));
  if (!base.ok() || *base <= 0) return nullptr;
  fixture->task.constraint.target = *base / ratio;
  return fixture;
}

TEST(AcquireDriverTest, OriginAlreadySatisfiesTarget) {
  auto fixture = CountFixture(2, /*ratio=*/1.0);  // target == base aggregate
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  auto result = RunAcquire(fixture->task, &layer, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  EXPECT_EQ(result->queries[0].coord, GridCoord(2, 0));
  EXPECT_DOUBLE_EQ(result->queries[0].qscore, 0.0);
  EXPECT_EQ(result->queries_explored, 1u);  // stops with layer 0
}

TEST(AcquireDriverTest, HitLayerIsFullyCollected) {
  auto fixture = CountFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  options.delta = 0.2;  // generous so several same-layer queries qualify
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  // All answers share the grid layer of the first hit (Algorithm 4's
  // minRefLayer semantics) modulo repartitioned (off-grid) extras.
  int64_t hit_layer = -1;
  for (const RefinedQuery& q : result->queries) {
    if (q.coord.empty()) continue;
    int64_t layer_sum = q.coord[0] + q.coord[1];
    if (hit_layer < 0) hit_layer = layer_sum;
    EXPECT_EQ(layer_sum, hit_layer);
  }
}

TEST(AcquireDriverTest, GreaterEqualConstraintUsesHinge) {
  SyntheticOptions opts;
  opts.d = 2;
  opts.op = ConstraintOp::kGe;
  opts.agg = AggregateKind::kSum;
  opts.target = 1.0;
  auto fixture = MakeSyntheticTask(opts);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  double base = probe.EvaluateQueryValue({0.0, 0.0}).value();
  fixture->task.constraint.target = base * 1.8;

  CachedEvaluationLayer layer(&fixture->task);
  auto result = RunAcquire(fixture->task, &layer, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  // Hinge: overshoot is free; undershoot is allowed only within delta.
  for (const RefinedQuery& q : result->queries) {
    EXPECT_GE(q.aggregate, fixture->task.constraint.target * 0.95);
    EXPECT_LE(q.error, 0.05);
    if (q.aggregate >= fixture->task.constraint.target) {
      EXPECT_DOUBLE_EQ(q.error, 0.0);
    }
  }
}

TEST(AcquireDriverTest, RepartitionRecoversFromCoarseGrid) {
  // A huge gamma makes the grid step jump far past the equality target;
  // repartitioning must bisect inside the overshooting cell.
  auto fixture = CountFixture(1, 0.7);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  options.gamma = 200.0;  // step 200 in 1-D: absurdly coarse
  options.delta = 0.02;
  options.repartition_iters = 20;
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  bool has_offgrid = false;
  for (const RefinedQuery& q : result->queries) {
    has_offgrid = has_offgrid || q.coord.empty();
    EXPECT_LE(q.error, options.delta);
  }
  EXPECT_TRUE(has_offgrid);
}

TEST(AcquireDriverTest, RepartitionDisabledFailsGracefully) {
  auto fixture = CountFixture(1, 0.7);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  options.gamma = 200.0;
  options.delta = 0.02;
  options.repartition_iters = 0;
  options.divergence_patience = 2;
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_GT(result->best.aggregate, 0.0);  // best-effort answer still given
}

TEST(AcquireDriverTest, UnreachableTargetReturnsBestEffort) {
  auto fixture = CountFixture(1, 0.9);
  ASSERT_NE(fixture, nullptr);
  // More tuples than the relation holds can never be reached.
  fixture->task.constraint.target =
      static_cast<double>(fixture->task.relation->num_rows()) * 10.0;
  CachedEvaluationLayer layer(&fixture->task);
  auto result = RunAcquire(fixture->task, &layer, {});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_TRUE(result->queries.empty());
  // Best effort = the fully refined query.
  EXPECT_NEAR(result->best.aggregate,
              static_cast<double>(fixture->task.relation->num_rows()),
              fixture->task.relation->num_rows() * 0.01);
}

TEST(AcquireDriverTest, WeightedDimRefinesLess) {
  // Section 7.1: a heavily weighted predicate should be spared.
  auto make_result = [&](double w0) {
    auto fixture = CountFixture(2, 0.4);
    EXPECT_NE(fixture, nullptr);
    fixture->task.dims[0]->set_weight(w0);
    CachedEvaluationLayer layer(&fixture->task);
    AcquireOptions options;
    options.order = SearchOrder::kBestFirst;  // exact weighted order
    auto result = RunAcquire(fixture->task, &layer, options);
    EXPECT_TRUE(result.ok() && result->satisfied);
    return result->queries[0];
  };
  RefinedQuery balanced = make_result(1.0);
  RefinedQuery skewed = make_result(8.0);
  EXPECT_LE(skewed.pscores[0], balanced.pscores[0] + 1e-9);
  EXPECT_GE(skewed.pscores[1], balanced.pscores[1] - 1e-9);
}

TEST(AcquireDriverTest, CollectWithinGammaReturnsMoreAnswers) {
  auto fixture = CountFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  AcquireOptions narrow;
  narrow.delta = 0.1;
  AcquireOptions wide = narrow;
  wide.collect_within_gamma = true;
  CachedEvaluationLayer l1(&fixture->task);
  CachedEvaluationLayer l2(&fixture->task);
  auto r1 = RunAcquire(fixture->task, &l1, narrow);
  auto r2 = RunAcquire(fixture->task, &l2, wide);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(r1->satisfied && r2->satisfied);
  EXPECT_GE(r2->queries.size(), r1->queries.size());
}

TEST(AcquireDriverTest, LInfNormUsesShellSearch) {
  auto fixture = CountFixture(2, 0.6);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  options.norm = Norm::LInf();
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  for (const RefinedQuery& q : result->queries) {
    EXPECT_LE(q.error, options.delta);
  }
}

TEST(AcquireDriverTest, BestFirstFindsSameQualityAsBfsForL1) {
  auto fixture = CountFixture(3, 0.5);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer l1(&fixture->task);
  CachedEvaluationLayer l2(&fixture->task);
  AcquireOptions bfs;
  AcquireOptions best_first;
  best_first.order = SearchOrder::kBestFirst;
  auto r1 = RunAcquire(fixture->task, &l1, bfs);
  auto r2 = RunAcquire(fixture->task, &l2, best_first);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_TRUE(r1->satisfied && r2->satisfied);
  EXPECT_NEAR(r1->queries[0].qscore, r2->queries[0].qscore, 1e-9);
}

TEST(AcquireDriverTest, CustomErrorFunctionIsHonored) {
  auto fixture = CountFixture(1, 0.5);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  int calls = 0;
  options.error_fn = [&calls](const Constraint& c, double actual) {
    ++calls;
    return DefaultAggregateError(c, actual);
  };
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(calls, 0);
}

TEST(AcquireDriverTest, MaxExploredCapsTheSearch) {
  auto fixture = CountFixture(3, 0.2);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions options;
  options.max_explored = 5;
  auto result = RunAcquire(fixture->task, &layer, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->queries_explored, 5u);
}

TEST(AcquireDriverTest, InvalidOptionsRejected) {
  auto fixture = CountFixture(1, 0.5);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions bad_gamma;
  bad_gamma.gamma = 0.0;
  EXPECT_FALSE(RunAcquire(fixture->task, &layer, bad_gamma).ok());
  AcquireOptions bad_delta;
  bad_delta.delta = -0.1;
  EXPECT_FALSE(RunAcquire(fixture->task, &layer, bad_delta).ok());
  EXPECT_FALSE(RunAcquire(fixture->task, nullptr, {}).ok());
}

TEST(AcquireDriverTest, MismatchedLayerRejected) {
  auto f1 = CountFixture(1, 0.5);
  auto f2 = CountFixture(1, 0.5);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  CachedEvaluationLayer layer(&f2->task);
  EXPECT_FALSE(RunAcquire(f1->task, &layer, {}).ok());
}

TEST(ErrorFnTest, RelativeErrorForEquality) {
  Constraint c{ConstraintOp::kEq, 100.0};
  EXPECT_DOUBLE_EQ(DefaultAggregateError(c, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(DefaultAggregateError(c, 90.0), 0.1);
  EXPECT_DOUBLE_EQ(DefaultAggregateError(c, 120.0), 0.2);
}

TEST(ErrorFnTest, HingeForInequalities) {
  Constraint ge{ConstraintOp::kGe, 100.0};
  EXPECT_DOUBLE_EQ(DefaultAggregateError(ge, 150.0), 0.0);
  EXPECT_DOUBLE_EQ(DefaultAggregateError(ge, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(DefaultAggregateError(ge, 80.0), 0.2);
  Constraint gt{ConstraintOp::kGt, 100.0};
  EXPECT_DOUBLE_EQ(DefaultAggregateError(gt, 101.0), 0.0);
}

TEST(ErrorFnTest, OvershootOnlyForEquality) {
  Constraint eq{ConstraintOp::kEq, 100.0};
  EXPECT_TRUE(OvershootsBeyondDelta(eq, 110.0, 0.05));
  EXPECT_FALSE(OvershootsBeyondDelta(eq, 104.0, 0.05));
  Constraint ge{ConstraintOp::kGe, 100.0};
  EXPECT_FALSE(OvershootsBeyondDelta(ge, 1000.0, 0.05));
}

}  // namespace
}  // namespace acquire
