// Conformance suite for every exact evaluation layer: direct, cached,
// parallel, grid index, cell-sorted, and the sampling layer at rate 1.0
// (a full "sample" must be exact). All must return identical aggregate
// states for identical box queries, across aggregates and random boxes.
// COUNT/MIN/MAX must match bit-for-bit (no FP reassociation can change
// them); SUM/AVG are compared with a tight relative tolerance because
// chunked merges may re-associate the additions.

#include <gtest/gtest.h>
#include <cmath>

#include "acquire.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

enum class LayerKind {
  kDirect,
  kCached,
  kParallel,
  kGridIndex,
  kCellSorted,
  kFullSample,
};

const char* LayerName(LayerKind kind) {
  switch (kind) {
    case LayerKind::kDirect:
      return "Direct";
    case LayerKind::kCached:
      return "Cached";
    case LayerKind::kParallel:
      return "Parallel";
    case LayerKind::kGridIndex:
      return "GridIndex";
    case LayerKind::kCellSorted:
      return "CellSorted";
    case LayerKind::kFullSample:
      return "FullSample";
  }
  return "?";
}

std::unique_ptr<EvaluationLayer> MakeLayer(LayerKind kind,
                                           const AcqTask* task) {
  switch (kind) {
    case LayerKind::kDirect:
      return std::make_unique<DirectEvaluationLayer>(task);
    case LayerKind::kCached:
      return std::make_unique<CachedEvaluationLayer>(task);
    case LayerKind::kParallel:
      return std::make_unique<ParallelEvaluationLayer>(task, 4);
    case LayerKind::kGridIndex:
      return std::make_unique<GridIndexEvaluationLayer>(task, 5.0);
    case LayerKind::kCellSorted:
      return std::make_unique<CellSortedEvaluationLayer>(task, 5.0);
    case LayerKind::kFullSample:
      return std::make_unique<SamplingEvaluationLayer>(task, 1.0);
  }
  return nullptr;
}

/// COUNT, MIN and MAX admit no FP reassociation: every layer must agree
/// with the reference bit-for-bit, however it chunks or reorders the scan.
bool MustMatchExactly(AggregateKind agg) {
  return agg == AggregateKind::kCount || agg == AggregateKind::kMin ||
         agg == AggregateKind::kMax;
}

class LayerConformanceTest
    : public ::testing::TestWithParam<std::tuple<LayerKind, AggregateKind>> {
};

TEST_P(LayerConformanceTest, MatchesDirectOnRandomBoxes) {
  auto [kind, agg] = GetParam();
  SyntheticOptions options;
  options.d = 3;
  options.rows = 5000;
  options.agg = agg;
  options.target = 10.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);

  DirectEvaluationLayer reference(&fixture->task);
  std::unique_ptr<EvaluationLayer> layer = MakeLayer(kind, &fixture->task);
  ASSERT_NE(layer, nullptr);
  ASSERT_TRUE(layer->Prepare().ok());

  Rng rng(7 + static_cast<uint64_t>(kind) * 31 +
          static_cast<uint64_t>(agg) * 101);
  const AggregateOps& ops = *fixture->task.agg.ops;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<PScoreRange> box(3);
    for (auto& r : box) {
      // Mix grid-aligned and arbitrary ranges so every code path of the
      // grid index (cell probe, aligned box, scan fallback) is exercised.
      if (rng.NextBool(0.4)) {
        int64_t level = static_cast<int64_t>(rng.NextBounded(8));
        r = CellRangeForLevel(level, 5.0);
      } else {
        double hi = rng.NextDouble(0.0, 60.0);
        r = PScoreRange{rng.NextBool(0.5) ? -1.0 : hi / 2.0, hi};
      }
    }
    auto expected = reference.EvaluateBox(box);
    auto got = layer->EvaluateBox(box);
    ASSERT_TRUE(expected.ok() && got.ok()) << LayerName(kind);
    double e = ops.Final(*expected);
    double g = ops.Final(*got);
    if (std::isinf(e) || MustMatchExactly(agg)) {
      EXPECT_EQ(e, g) << LayerName(kind) << " trial " << trial;
    } else {
      EXPECT_NEAR(g, e, 1e-9 * std::max(1.0, std::fabs(e)))
          << LayerName(kind) << " trial " << trial;
    }
  }
}

TEST_P(LayerConformanceTest, DeterministicAcrossRepeatedCalls) {
  // The same layer asked the same box twice must answer bit-for-bit
  // identically — chunk boundaries and merge order are functions of the
  // input alone, never of scheduling.
  auto [kind, agg] = GetParam();
  SyntheticOptions options;
  options.d = 3;
  options.rows = 5000;
  options.agg = agg;
  options.target = 10.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);

  std::unique_ptr<EvaluationLayer> layer = MakeLayer(kind, &fixture->task);
  ASSERT_NE(layer, nullptr);
  ASSERT_TRUE(layer->Prepare().ok());

  Rng rng(13 + static_cast<uint64_t>(kind));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<PScoreRange> box(3);
    for (auto& r : box) {
      double hi = rng.NextDouble(0.0, 60.0);
      r = PScoreRange{rng.NextBool(0.5) ? -1.0 : hi / 2.0, hi};
    }
    auto first = layer->EvaluateBox(box);
    auto second = layer->EvaluateBox(box);
    ASSERT_TRUE(first.ok() && second.ok()) << LayerName(kind);
    EXPECT_EQ(*first, *second) << LayerName(kind) << " trial " << trial;
  }
}

TEST_P(LayerConformanceTest, EvaluateCellsMatchesPerCellBoxes) {
  // The batch cell API must be bit-identical to evaluating each cell box
  // with EvaluateBox, at the layer's native step (merged-sweep / parallel
  // fast paths) and at a foreign step (generic fallback).
  auto [kind, agg] = GetParam();
  SyntheticOptions options;
  options.d = 3;
  options.rows = 5000;
  options.agg = agg;
  options.target = 10.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);

  std::unique_ptr<EvaluationLayer> layer = MakeLayer(kind, &fixture->task);
  ASSERT_NE(layer, nullptr);
  ASSERT_TRUE(layer->Prepare().ok());

  Rng rng(97 + static_cast<uint64_t>(kind) * 17 +
          static_cast<uint64_t>(agg) * 5);
  for (double step : {5.0, 2.5}) {  // native layout step, then foreign
    std::vector<GridCoord> coords;
    for (int q = 0; q < 40; ++q) {
      GridCoord c(3);
      // Mostly small dense coordinates (what expand layers produce), some
      // far out (guaranteed-empty cells).
      for (auto& v : c) {
        v = static_cast<int32_t>(rng.NextBounded(rng.NextBool(0.9) ? 8 : 64));
      }
      coords.push_back(std::move(c));
    }
    auto batch = layer->EvaluateCells(coords.data(), coords.size(), step);
    ASSERT_TRUE(batch.ok()) << LayerName(kind) << " step " << step;
    ASSERT_EQ(batch->size(), coords.size());
    for (size_t q = 0; q < coords.size(); ++q) {
      std::vector<PScoreRange> box(3);
      for (size_t i = 0; i < 3; ++i) {
        box[i] = CellRangeForLevel(coords[q][i], step);
      }
      auto expected = layer->EvaluateBox(box);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ((*batch)[q], *expected)
          << LayerName(kind) << " step " << step << " cell " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayersAllAggregates, LayerConformanceTest,
    ::testing::Combine(::testing::Values(LayerKind::kDirect,
                                         LayerKind::kCached,
                                         LayerKind::kParallel,
                                         LayerKind::kGridIndex,
                                         LayerKind::kCellSorted,
                                         LayerKind::kFullSample),
                       ::testing::Values(AggregateKind::kCount,
                                         AggregateKind::kSum,
                                         AggregateKind::kMin,
                                         AggregateKind::kMax,
                                         AggregateKind::kAvg)),
    [](const auto& info) {
      return std::string(LayerName(std::get<0>(info.param))) + "_" +
             AggregateKindToString(std::get<1>(info.param));
    });

TEST(MinAggregateTest, ExpansionNeverIncreasesMin) {
  // MIN is antitone under query expansion (the paper treats MIN as
  // MAX(-attr)); the incremental machinery must preserve that exactly.
  SyntheticOptions options;
  options.d = 2;
  options.rows = 5000;
  options.agg = AggregateKind::kMin;
  options.bound = 20.0;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer layer(&fixture->task);
  double prev = std::numeric_limits<double>::infinity();
  for (double p = 0.0; p <= 120.0; p += 15.0) {
    double value = layer.EvaluateQueryValue({p, p}).value();
    EXPECT_LE(value, prev) << "pscore " << p;
    prev = value;
  }
}

}  // namespace
}  // namespace acquire
