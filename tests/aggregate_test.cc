#include "exec/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"

namespace acquire {
namespace {

TEST(AggregateOpsTest, CountBasics) {
  const AggregateOps& ops = CountOps();
  auto s = ops.Init();
  EXPECT_DOUBLE_EQ(ops.Final(s), 0.0);
  ops.Add(&s, 42.0);  // value ignored
  ops.Add(&s, -1.0);
  EXPECT_DOUBLE_EQ(ops.Final(s), 2.0);
}

TEST(AggregateOpsTest, SumBasics) {
  const AggregateOps& ops = SumOps();
  auto s = ops.Init();
  ops.Add(&s, 2.5);
  ops.Add(&s, -1.0);
  EXPECT_DOUBLE_EQ(ops.Final(s), 1.5);
}

TEST(AggregateOpsTest, MinMaxIdentities) {
  EXPECT_TRUE(std::isinf(MinOps().Final(MinOps().Init())));
  EXPECT_GT(MinOps().Final(MinOps().Init()), 0.0);
  EXPECT_TRUE(std::isinf(MaxOps().Final(MaxOps().Init())));
  EXPECT_LT(MaxOps().Final(MaxOps().Init()), 0.0);
}

TEST(AggregateOpsTest, MinMaxTrack) {
  auto mn = MinOps().Init();
  auto mx = MaxOps().Init();
  for (double v : {3.0, -1.0, 7.0}) {
    MinOps().Add(&mn, v);
    MaxOps().Add(&mx, v);
  }
  EXPECT_DOUBLE_EQ(MinOps().Final(mn), -1.0);
  EXPECT_DOUBLE_EQ(MaxOps().Final(mx), 7.0);
}

TEST(AggregateOpsTest, AvgIsSumOverCount) {
  const AggregateOps& ops = AvgOps();
  auto s = ops.Init();
  EXPECT_DOUBLE_EQ(ops.Final(s), 0.0);  // empty-set convention
  ops.Add(&s, 2.0);
  ops.Add(&s, 4.0);
  EXPECT_DOUBLE_EQ(ops.Final(s), 3.0);
}

// The Optimal Substructure Property (Section 2.6): merging the states of a
// random partition must equal aggregating the whole set directly.
TEST(AggregateOpsTest, OspHoldsUnderRandomPartitions) {
  Rng rng(99);
  const AggregateOps* all[] = {&CountOps(), &SumOps(), &MinOps(), &MaxOps(),
                               &AvgOps()};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> values;
    for (int i = 0; i < 200; ++i) values.push_back(rng.NextDouble(-50, 50));
    for (const AggregateOps* ops : all) {
      auto whole = ops->Init();
      for (double v : values) ops->Add(&whole, v);
      // Partition into 3 random pieces, merge.
      AggregateOps::State parts[3] = {ops->Init(), ops->Init(), ops->Init()};
      for (double v : values) {
        ops->Add(&parts[rng.NextBounded(3)], v);
      }
      auto merged = ops->Init();
      for (const auto& p : parts) ops->Merge(&merged, p);
      EXPECT_NEAR(ops->Final(merged), ops->Final(whole), 1e-9)
          << ops->name() << " trial " << trial;
    }
  }
}

TEST(UdaRegistryTest, RegisterAndLookup) {
  auto product = std::make_unique<LambdaAggregateOps>(
      "PRODUCT_TEST", AggregateOps::State{1.0},
      [](AggregateOps::State* s, double v) { (*s)[0] *= v; },
      [](AggregateOps::State* s, const AggregateOps::State& o) {
        (*s)[0] *= o[0];
      },
      [](const AggregateOps::State& s) { return s[0]; });
  ASSERT_TRUE(UdaRegistry::Instance().Register(std::move(product)).ok());
  auto found = UdaRegistry::Instance().Lookup("PRODUCT_TEST");
  ASSERT_TRUE(found.ok());
  auto s = (*found)->Init();
  (*found)->Add(&s, 3.0);
  (*found)->Add(&s, 4.0);
  EXPECT_DOUBLE_EQ((*found)->Final(s), 12.0);
}

TEST(UdaRegistryTest, DuplicateNameRejected) {
  auto make = [] {
    return std::make_unique<LambdaAggregateOps>(
        "DUP_TEST", AggregateOps::State{0.0},
        [](AggregateOps::State*, double) {},
        [](AggregateOps::State*, const AggregateOps::State&) {},
        [](const AggregateOps::State&) { return 0.0; });
  };
  ASSERT_TRUE(UdaRegistry::Instance().Register(make()).ok());
  EXPECT_EQ(UdaRegistry::Instance().Register(make()).code(),
            StatusCode::kAlreadyExists);
}

TEST(UdaRegistryTest, MissingLookupIsNotFound) {
  EXPECT_EQ(UdaRegistry::Instance().Lookup("NO_SUCH_UDA").status().code(),
            StatusCode::kNotFound);
}

Schema AggSchema() {
  return Schema({{"qty", DataType::kInt64, "t"},
                 {"price", DataType::kDouble, "t"},
                 {"name", DataType::kString, "t"}});
}

TEST(AggregateSpecTest, CountStarNeedsNoColumn) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kCount;
  ASSERT_TRUE(spec.Bind(AggSchema()).ok());
  EXPECT_EQ(spec.col_index, -1);
  EXPECT_EQ(spec.ToString(), "COUNT(*)");
}

TEST(AggregateSpecTest, SumBindsColumn) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kSum;
  spec.column = "qty";
  ASSERT_TRUE(spec.Bind(AggSchema()).ok());
  EXPECT_EQ(spec.col_index, 0);
  EXPECT_EQ(spec.ToString(), "SUM(qty)");
  EXPECT_STREQ(spec.ops->name(), "SUM");
}

TEST(AggregateSpecTest, SumWithoutColumnFails) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kSum;
  EXPECT_FALSE(spec.Bind(AggSchema()).ok());
}

TEST(AggregateSpecTest, NonNumericColumnFails) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kAvg;
  spec.column = "name";
  EXPECT_TRUE(spec.Bind(AggSchema()).IsTypeError());
}

TEST(AggregateSpecTest, UnknownUdaFails) {
  AggregateSpec spec;
  spec.kind = AggregateKind::kUda;
  spec.uda_name = "NOPE";
  spec.column = "qty";
  EXPECT_EQ(spec.Bind(AggSchema()).code(), StatusCode::kNotFound);
}

TEST(ConstraintTest, SatisfiedExactly) {
  Constraint eq{ConstraintOp::kEq, 10.0};
  EXPECT_TRUE(eq.SatisfiedExactly(10.0));
  EXPECT_FALSE(eq.SatisfiedExactly(10.5));
  Constraint ge{ConstraintOp::kGe, 10.0};
  EXPECT_TRUE(ge.SatisfiedExactly(10.0));
  EXPECT_TRUE(ge.SatisfiedExactly(11.0));
  EXPECT_FALSE(ge.SatisfiedExactly(9.0));
  Constraint gt{ConstraintOp::kGt, 10.0};
  EXPECT_FALSE(gt.SatisfiedExactly(10.0));
  EXPECT_TRUE(gt.SatisfiedExactly(10.1));
}

TEST(ConstraintTest, ToStringRendersOpAndTarget) {
  EXPECT_EQ((Constraint{ConstraintOp::kGe, 100000.0}).ToString(), ">= 100000");
  EXPECT_EQ((Constraint{ConstraintOp::kEq, 5.0}).ToString(), "= 5");
}

}  // namespace
}  // namespace acquire
