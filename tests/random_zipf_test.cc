#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "common/zipf.h"

namespace acquire {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInHalfOpenUnit) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfDistribution zipf(10, 0.0);
  for (uint64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(zipf.Probability(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, ProbabilitiesDecreaseWithRank) {
  ZipfDistribution zipf(100, 1.0);
  for (uint64_t k = 2; k <= 100; ++k) {
    EXPECT_LT(zipf.Probability(k), zipf.Probability(k - 1));
  }
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(50, 1.0);
  double total = 0.0;
  for (uint64_t k = 1; k <= 50; ++k) total += zipf.Probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, TheoreticalRatioHolds) {
  // For theta = 1, P(1) / P(2) = 2.
  ZipfDistribution zipf(1000, 1.0);
  EXPECT_NEAR(zipf.Probability(1) / zipf.Probability(2), 2.0, 1e-9);
}

TEST(ZipfTest, SamplingMatchesDistribution) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(11, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (uint64_t k = 1; k <= 10; ++k) {
    double expected = zipf.Probability(k);
    double got = counts[k] / static_cast<double>(n);
    EXPECT_NEAR(got, expected, 0.01) << "rank " << k;
  }
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfDistribution zipf(1, 1.5);
  Rng rng(29);
  EXPECT_EQ(zipf.Sample(&rng), 1u);
  EXPECT_NEAR(zipf.Probability(1), 1.0, 1e-12);
}

}  // namespace
}  // namespace acquire
