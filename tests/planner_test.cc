#include "exec/planner.h"

#include <gtest/gtest.h>
#include <cmath>

#include "exec/evaluation.h"
#include "workload/tpch_gen.h"

namespace acquire {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions options;
    options.suppliers = 100;
    options.parts = 200;
    options.suppliers_per_part = 3;
    options.lineitems = 2000;
    ASSERT_TRUE(GenerateTpch(options, &catalog_).ok());
  }

  QuerySpec BasicSpec() {
    QuerySpec spec;
    spec.tables = {"lineitem"};
    spec.predicates.push_back(SelectPredicateSpec{
        "l_quantity", CompareOp::kLe, 20.0, true, 1.0, {}});
    spec.agg_kind = AggregateKind::kCount;
    spec.target = 1000.0;
    return spec;
  }

  Catalog catalog_;
};

TEST_F(PlannerTest, SingleTableSelectTask) {
  auto task = PlanAcqTask(catalog_, BasicSpec());
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 1u);
  EXPECT_EQ(task->relation->num_rows(), 2000u);  // refinables not filtered
  EXPECT_EQ(task->constraint.target, 1000.0);
  EXPECT_EQ(task->table_names, std::vector<std::string>{"lineitem"});
}

TEST_F(PlannerTest, NonRefinablePredicatesFilterTheRelation) {
  QuerySpec spec = BasicSpec();
  spec.predicates.push_back(SelectPredicateSpec{
      "l_discount", CompareOp::kLe, 0.05, /*refinable=*/false, 1.0, {}});
  auto task = PlanAcqTask(catalog_, spec);
  ASSERT_TRUE(task.ok());
  EXPECT_LT(task->relation->num_rows(), 2000u);
  EXPECT_EQ(task->d(), 1u);
  ASSERT_EQ(task->fixed_predicate_labels.size(), 1u);
  EXPECT_EQ(task->fixed_predicate_labels[0], "l_discount <= 0.05");
}

TEST_F(PlannerTest, EqualityPredicateExpandsToTwoDims) {
  QuerySpec spec = BasicSpec();
  spec.predicates[0].op = CompareOp::kEq;
  auto task = PlanAcqTask(catalog_, spec);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->d(), 2u);
}

TEST_F(PlannerTest, NotEqualRefinableRejected) {
  QuerySpec spec = BasicSpec();
  spec.predicates[0].op = CompareOp::kNe;
  EXPECT_TRUE(PlanAcqTask(catalog_, spec).status().IsUnsupported());
}

TEST_F(PlannerTest, NoRefinablePredicatesRejected) {
  QuerySpec spec = BasicSpec();
  spec.predicates[0].refinable = false;
  auto task = PlanAcqTask(catalog_, spec);
  EXPECT_FALSE(task.ok());
  EXPECT_EQ(task.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, EmptyBaseRelationRejected) {
  QuerySpec spec = BasicSpec();
  spec.fixed_filters.push_back(Expr::Compare(
      CompareOp::kLt, Expr::Column("l_quantity"), Expr::Literal(Value(-1.0))));
  auto task = PlanAcqTask(catalog_, spec);
  EXPECT_FALSE(task.ok());
}

TEST_F(PlannerTest, NonPositiveTargetRejected) {
  QuerySpec spec = BasicSpec();
  spec.target = 0.0;
  EXPECT_FALSE(PlanAcqTask(catalog_, spec).ok());
}

TEST_F(PlannerTest, MissingTableRejected) {
  QuerySpec spec = BasicSpec();
  spec.tables = {"nope"};
  EXPECT_EQ(PlanAcqTask(catalog_, spec).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlannerTest, ThreeWayJoinPlansExample2Shape) {
  // Q2': supplier x part x partsupp with NOREFINE joins, SUM constraint.
  QuerySpec spec;
  spec.tables = {"supplier", "part", "partsupp"};
  spec.joins.push_back(
      JoinClauseSpec{"s_suppkey", "ps_suppkey", false, 0.0, 1.0});
  spec.joins.push_back(
      JoinClauseSpec{"p_partkey", "ps_partkey", false, 0.0, 1.0});
  spec.predicates.push_back(SelectPredicateSpec{
      "p_retailprice", CompareOp::kLt, 1000.0, true, 1.0, {}});
  spec.predicates.push_back(SelectPredicateSpec{
      "s_acctbal", CompareOp::kLt, 2000.0, true, 1.0, {}});
  spec.fixed_filters.push_back(
      Expr::Compare(CompareOp::kLe, Expr::Column("p_size"),
                    Expr::Literal(Value(int64_t{25}))));
  spec.agg_kind = AggregateKind::kSum;
  spec.agg_column = "ps_availqty";
  spec.constraint_op = ConstraintOp::kGe;
  spec.target = 100000.0;

  auto task = PlanAcqTask(catalog_, spec);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 2u);
  EXPECT_GT(task->relation->num_rows(), 0u);
  // Join equalities hold in the materialized relation.
  const Table& rel = *task->relation;
  size_t sk = rel.schema().FieldIndex("s_suppkey").value();
  size_t psk = rel.schema().FieldIndex("ps_suppkey").value();
  size_t pk = rel.schema().FieldIndex("p_partkey").value();
  size_t pspk = rel.schema().FieldIndex("ps_partkey").value();
  for (size_t r = 0; r < std::min<size_t>(rel.num_rows(), 100); ++r) {
    EXPECT_EQ(rel.Get(r, sk), rel.Get(r, psk));
    EXPECT_EQ(rel.Get(r, pk), rel.Get(r, pspk));
  }
  // Fixed predicates recorded for the printer (2 joins + p_size filter).
  EXPECT_EQ(task->fixed_predicate_labels.size(), 3u);
}

TEST_F(PlannerTest, DisconnectedJoinRejected) {
  QuerySpec spec;
  spec.tables = {"supplier", "part"};
  spec.predicates.push_back(SelectPredicateSpec{
      "s_acctbal", CompareOp::kLt, 2000.0, true, 1.0, {}});
  spec.agg_kind = AggregateKind::kCount;
  spec.target = 10.0;
  EXPECT_FALSE(PlanAcqTask(catalog_, spec).ok());
}

TEST_F(PlannerTest, RefinableJoinProducesJoinDim) {
  QuerySpec spec;
  spec.tables = {"supplier", "partsupp"};
  spec.joins.push_back(
      JoinClauseSpec{"s_suppkey", "ps_suppkey", /*refinable=*/true, 3.0, 1.0});
  spec.predicates.push_back(SelectPredicateSpec{
      "s_acctbal", CompareOp::kLt, 2000.0, true, 1.0, {}});
  spec.agg_kind = AggregateKind::kCount;
  spec.target = 100.0;
  auto task = PlanAcqTask(catalog_, spec);
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 2u);  // join dim + select dim
  // The band-join relation contains near-matches up to the cap.
  const Table& rel = *task->relation;
  size_t sk = rel.schema().FieldIndex("s_suppkey").value();
  size_t psk = rel.schema().FieldIndex("ps_suppkey").value();
  bool found_nonexact = false;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    double diff = std::fabs(rel.column(sk).GetDouble(r) -
                            rel.column(psk).GetDouble(r));
    EXPECT_LE(diff, 3.0);
    found_nonexact = found_nonexact || diff > 0;
  }
  EXPECT_TRUE(found_nonexact);
}

TEST_F(PlannerTest, MaxRefinementCapFlowsIntoDim) {
  QuerySpec spec = BasicSpec();
  spec.predicates[0].max_refinement = 12.5;
  auto task = PlanAcqTask(catalog_, spec);
  ASSERT_TRUE(task.ok());
  EXPECT_DOUBLE_EQ(task->dims[0]->MaxPScore(), 12.5);
}

TEST_F(PlannerTest, AggValueReadsAggregateColumn) {
  QuerySpec spec = BasicSpec();
  spec.agg_kind = AggregateKind::kSum;
  spec.agg_column = "l_extendedprice";
  auto task = PlanAcqTask(catalog_, spec);
  ASSERT_TRUE(task.ok());
  size_t idx = task->relation->schema().FieldIndex("l_extendedprice").value();
  EXPECT_DOUBLE_EQ(task->AggValue(0), task->relation->column(idx).GetDouble(0));
}

}  // namespace
}  // namespace acquire
