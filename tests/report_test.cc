#include "core/report.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

RefinedQuery MakeQuery(std::vector<double> pscores, double qscore) {
  RefinedQuery q;
  q.pscores = std::move(pscores);
  q.qscore = qscore;
  return q;
}

TEST(RefinementReportTest, ShowsChangedUnchangedAndFixed) {
  SyntheticOptions options;
  options.d = 2;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  fixture->task.fixed_predicate_labels = {"category = 'toys'"};

  RefinedQuery q;
  q.pscores = {20.0, 0.0};
  q.aggregate = 1234.0;
  q.error = 0.01;
  q.qscore = 20.0;
  std::string report = RefinementReport(fixture->task, q);
  EXPECT_NE(report.find("c0 <= 30"), std::string::npos);     // before
  EXPECT_NE(report.find("+20% of range"), std::string::npos);
  EXPECT_NE(report.find("(unchanged)"), std::string::npos);  // dim 1
  EXPECT_NE(report.find("(NOREFINE)"), std::string::npos);
  EXPECT_NE(report.find("COUNT(*): 1234"), std::string::npos);
}

TEST(ParetoFilterTest, DropsDominatedVectors) {
  std::vector<RefinedQuery> queries;
  queries.push_back(MakeQuery({5.0, 10.0}, 15.0));  // kept
  queries.push_back(MakeQuery({10.0, 5.0}, 15.0));  // kept (trade-off)
  queries.push_back(MakeQuery({10.0, 10.0}, 20.0)); // dominated by both
  queries.push_back(MakeQuery({5.0, 10.0}, 15.0));  // duplicate: kept (ties)
  auto frontier = ParetoFilter(std::move(queries));
  ASSERT_EQ(frontier.size(), 3u);
  for (const RefinedQuery& q : frontier) {
    EXPECT_NE(q.pscores, (std::vector<double>{10.0, 10.0}));
  }
}

TEST(ParetoFilterTest, SortsByQScore) {
  std::vector<RefinedQuery> queries;
  queries.push_back(MakeQuery({9.0, 0.0}, 9.0));
  queries.push_back(MakeQuery({0.0, 4.0}, 4.0));
  auto frontier = ParetoFilter(std::move(queries));
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_LE(frontier[0].qscore, frontier[1].qscore);
}

TEST(ParetoFilterTest, EmptyAndSingleton) {
  EXPECT_TRUE(ParetoFilter({}).empty());
  auto one = ParetoFilter({MakeQuery({1.0}, 1.0)});
  EXPECT_EQ(one.size(), 1u);
}

TEST(ParetoFilterTest, HitLayerAnswersAreAllTradeoffs) {
  // Answers from one L1 layer all share the same coordinate sum, so none
  // dominates another — the frontier keeps them all.
  SyntheticOptions options;
  options.d = 2;
  options.rows = 3000;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  fixture->task.constraint.target =
      probe.EvaluateQueryValue({0.0, 0.0}).value() * 1.6;
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions acq;
  acq.delta = 0.2;  // generous: several same-layer hits
  auto result = RunAcquire(fixture->task, &layer, acq);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  size_t grid_answers = 0;
  std::vector<RefinedQuery> grid_only;
  for (const RefinedQuery& q : result->queries) {
    if (!q.coord.empty()) {
      ++grid_answers;
      grid_only.push_back(q);
    }
  }
  auto frontier = ParetoFilter(grid_only);
  EXPECT_EQ(frontier.size(), grid_answers);
}

}  // namespace
}  // namespace acquire
