// Parser robustness fuzzing: random token soups and random mutations of
// valid queries must never crash, hang, or return anything but a clean
// ParseError / a valid AST.

#include <gtest/gtest.h>

#include "common/random.h"
#include "sql/parser.h"

namespace acquire {
namespace {

std::string RandomToken(Rng* rng) {
  static const char* const kTokens[] = {
      "SELECT", "FROM",  "WHERE",   "CONSTRAINT", "NOREFINE", "AND",
      "BETWEEN", "IN",   "COUNT",   "SUM",        "AVG",      "users",
      "age",     "t.x",  "*",       "(",          ")",        ",",
      "<",       "<=",   ">",       ">=",         "=",        "!=",
      "10",      "1.5",  "1M",      "'abc'",      ";",        "+",
      "-",       "/",    ".",       "0.1K",       "income"};
  return kTokens[rng->NextBounded(std::size(kTokens))];
}

TEST(ParserFuzzTest, RandomTokenSoupsNeverCrash) {
  Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    std::string sql;
    size_t len = 1 + rng.NextBounded(25);
    for (size_t i = 0; i < len; ++i) {
      sql += RandomToken(&rng);
      sql += ' ';
    }
    auto result = ParseAcqSql(sql);  // must return, never crash
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError()) << sql;
    }
  }
}

TEST(ParserFuzzTest, MutatedValidQueriesNeverCrash) {
  const std::string valid =
      "SELECT * FROM users CONSTRAINT COUNT(*) = 1K "
      "WHERE age >= 25 AND income < 50000 NOREFINE AND "
      "city IN ('Boston', 'Austin')";
  Rng rng(405);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    size_t mutations = 1 + rng.NextBounded(4);
    for (size_t m = 0; m < mutations; ++m) {
      size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:  // delete a character
          mutated.erase(pos, 1);
          break;
        case 1:  // replace with random printable
          mutated[pos] = static_cast<char>(' ' + rng.NextBounded(95));
          break;
        default:  // duplicate a slice
          mutated.insert(pos, mutated.substr(pos, rng.NextBounded(8)));
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    auto result = ParseAcqSql(mutated);
    (void)result;  // any Status is fine; crashing is not
  }
}

TEST(ParserFuzzTest, DeeplyNestedParensAreHandled) {
  // Bounded recursion: deep nesting must parse or fail cleanly, not
  // overflow the stack.
  std::string sql = "SELECT * FROM t WHERE ";
  for (int i = 0; i < 200; ++i) sql += '(';
  sql += "a";
  for (int i = 0; i < 200; ++i) sql += ')';
  sql += " < 10";
  auto result = ParseAcqSql(sql);
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsParseError());
  }
}

}  // namespace
}  // namespace acquire
