// The server's minimal RFC 8259 JSON layer: strict parsing, exact double
// round-trips (the wire format must preserve bit-identical aggregates),
// escaping, and the protocol-facing convenience accessors.

#include "server/json.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace acquire {
namespace {

JsonValue MustParse(const std::string& text) {
  Result<JsonValue> parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  return parsed.ok() ? *parsed : JsonValue::Null();
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool());
  EXPECT_DOUBLE_EQ(MustParse("-12.5e2").AsDouble(), -1250.0);
  EXPECT_EQ(MustParse("\"hi\\n\\\"there\\\"\"").AsString(), "hi\n\"there\"");
}

TEST(JsonTest, ParsesNestedStructures) {
  JsonValue v = MustParse(
      "{\"a\":[1,2,{\"b\":null}],\"c\":{\"d\":false},\"e\":\"x\"}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->AsArray()[1].AsDouble(), 2.0);
  EXPECT_TRUE(a->AsArray()[2].Get("b")->is_null());
  EXPECT_EQ(v.GetString("e"), "x");
  EXPECT_EQ(v.Get("missing"), nullptr);
}

TEST(JsonTest, UnicodeEscapes) {
  // \u00e9 is U+00E9 (two UTF-8 bytes); the pair is a surrogate for U+1F600.
  EXPECT_EQ(MustParse("\"caf\\u00e9\"").AsString(), "caf\xC3\xA9");
  EXPECT_EQ(MustParse("\"\\ud83d\\ude00\"").AsString(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",        "{",       "[1,]",      "{\"a\":}",   "\"unterminated",
      "01",      "1.",      "+1",        "nul",        "truex",
      "{\"a\":1} extra",    "[1 2]",     "{\"a\" 1}",  "\"\\ud83d\"",
      "\"\x01\"",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(JsonValue::Parse(text).ok()) << text;
  }
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, DoublesRoundTripExactly) {
  const double values[] = {0.0,       -0.0,     1.0 / 3.0,    6.02214076e23,
                           1e-300,    123456789.123456789,    -2.5,
                           3.14159265358979312,  1e15 - 1.0,  1e15 + 1.0};
  for (double v : values) {
    JsonValue wrapped = JsonValue::Number(v);
    JsonValue back = MustParse(wrapped.Dump());
    EXPECT_EQ(back.AsDouble(), v) << wrapped.Dump();
  }
}

TEST(JsonTest, IntegralDoublesPrintWithoutFraction) {
  EXPECT_EQ(JsonValue::Number(42.0).Dump(), "42");
  EXPECT_EQ(JsonValue::Number(-7.0).Dump(), "-7");
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::infinity()).Dump(),
            "null");
  EXPECT_EQ(JsonValue::Number(std::nan("")).Dump(), "null");
}

TEST(JsonTest, DumpEscapesControlCharactersAndStaysOneLine) {
  JsonValue v = JsonValue::Object();
  v.Set("s", JsonValue::Str("line1\nline2\ttab\x01"));
  const std::string dumped = v.Dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);
  EXPECT_EQ(dumped, "{\"s\":\"line1\\nline2\\ttab\\u0001\"}");
  EXPECT_EQ(MustParse(dumped).GetString("s"), "line1\nline2\ttab\x01");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndOverwrites) {
  JsonValue v = JsonValue::Object();
  v.Set("z", JsonValue::Number(1.0));
  v.Set("a", JsonValue::Number(2.0));
  v.Set("z", JsonValue::Number(3.0));  // overwrite keeps position
  EXPECT_EQ(v.Dump(), "{\"z\":3,\"a\":2}");
}

TEST(JsonTest, ConvenienceAccessorsFallBack) {
  JsonValue v = MustParse("{\"n\":5,\"s\":\"text\",\"b\":true}");
  EXPECT_DOUBLE_EQ(v.GetNumber("n", -1.0), 5.0);
  EXPECT_DOUBLE_EQ(v.GetNumber("s", -1.0), -1.0);  // type mismatch
  EXPECT_DOUBLE_EQ(v.GetNumber("missing", -1.0), -1.0);
  EXPECT_EQ(v.GetString("s"), "text");
  EXPECT_EQ(v.GetString("n", "fb"), "fb");
  EXPECT_TRUE(v.GetBool("b", false));
  EXPECT_TRUE(v.GetBool("missing", true));
}

TEST(JsonTest, RoundTripThroughDump) {
  const std::string text =
      "{\"id\":\"s-1\",\"ok\":true,\"vals\":[1.5,null,\"x\"],"
      "\"nested\":{\"deep\":[{}]}}";
  JsonValue v = MustParse(text);
  EXPECT_EQ(MustParse(v.Dump()).Dump(), v.Dump());
}

// A representative PROGRESS frame — the streaming protocol's second line
// kind — survives Parse(Dump) with every field intact, including the
// exact doubles a client keys its early-stop rules on.
TEST(JsonTest, ProgressFrameSchemaRoundTrips) {
  const std::string frame_line =
      "{\"progress\":true,\"id\":\"s-7\",\"tenant\":\"default\","
      "\"layers_drained\":12,\"queries_explored\":345,\"cell_queries\":345,"
      "\"elapsed_ms\":1.25,"
      "\"best\":{\"qscore\":6.5,\"aggregate\":1203,\"error\":0.0033,"
      "\"refined\":\"age <= 30 AND income >= 52000\"},"
      "\"eval_queries\":345,\"tuples_scanned\":98765,\"prepare_ms\":0.5,"
      "\"delta_rows\":0,\"delta_merges\":0,"
      "\"merge_layers\":{\"central\":2,\"tree\":1,\"radix\":0,"
      "\"sequential\":9},"
      "\"governor\":{\"active_slots\":1,\"slot_limit\":2,"
      "\"memory_share_bytes\":1048576,\"running\":1,\"queued\":0}}";
  JsonValue frame = MustParse(frame_line);
  EXPECT_EQ(frame.Dump(), frame_line);
  EXPECT_EQ(MustParse(frame.Dump()).Dump(), frame_line);
  // The marker that separates frames from terminal replies.
  EXPECT_TRUE(frame.GetBool("progress", false));
  EXPECT_EQ(frame.Get("ok"), nullptr);
  const JsonValue* best = frame.Get("best");
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->GetNumber("error", -1.0), 0.0033);
  const JsonValue* governor = frame.Get("governor");
  ASSERT_NE(governor, nullptr);
  EXPECT_EQ(governor->GetNumber("memory_share_bytes", -1.0), 1048576.0);
  // A frame with no candidate yet carries best:null, still distinct from
  // "field absent".
  JsonValue no_best = MustParse("{\"progress\":true,\"best\":null}");
  ASSERT_NE(no_best.Get("best"), nullptr);
  EXPECT_TRUE(no_best.Get("best")->is_null());
}

}  // namespace
}  // namespace acquire
