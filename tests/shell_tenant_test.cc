// Transcript-replay coverage for acq_shell's tenant commands: a scripted
// session attaches tenants, switches between them, and verifies that the
// shell's transcript cache is scoped per tenant (a query cached under one
// tenant is never replayed for another).
//
// Drives the real binary over a pipe. ACQ_SHELL_BIN overrides the path
// (CI sets it); the default assumes ctest's working directory build/tests.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace acquire {
namespace {

std::string ShellBinary() {
  if (const char* env = std::getenv("ACQ_SHELL_BIN")) return env;
  return "../examples/acq_shell";
}

// Runs the shell with `script` on stdin; returns its stdout, or "" when the
// binary cannot be launched (callers skip).
std::string RunShell(const std::string& script, int* exit_code) {
  const std::string command =
      ShellBinary() + " 2>/dev/null <<'ACQ_EOF'\n" + script + "ACQ_EOF\n";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return "";
  std::string out;
  char chunk[4096];
  size_t n;
  while ((n = fread(chunk, 1, sizeof(chunk), pipe)) > 0) out.append(chunk, n);
  *exit_code = pclose(pipe);
  return out;
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ShellTenantTest, TenantScopedTranscriptCacheAndSwitching) {
  const std::string sql =
      "SELECT * FROM users CONSTRAINT COUNT(*) >= 40 "
      "WHERE age <= 30 AND income >= 50000;";
  const std::string script =
      "\\set cache 1000000\n"
      "\\gen users 400\n" +
      sql + "\n" +   // fresh run on default, seeds default's cache
      sql + "\n" +   // replayed: "(cached)"
      "\\attach t1 gen users 400\n" +
      sql + "\n" +   // identical catalog, but tenant t1: must run fresh
      sql + "\n" +   // now cached under t1
      "\\tenant default\n" +
      sql + "\n" +   // still cached under default
      "\\detach t1\n"
      "\\tenant\n"
      "\\quit\n";
  int exit_code = -1;
  const std::string out = RunShell(script, &exit_code);
  if (out.empty()) {
    GTEST_SKIP() << "could not launch " << ShellBinary()
                 << " (set ACQ_SHELL_BIN)";
  }
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(out.find("attached tenant t1 (now active)"), std::string::npos)
      << out;
  EXPECT_NE(out.find("detached tenant t1 (active: default)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("active tenant: default"), std::string::npos) << out;
  // Five submissions; exactly three replay from the cache (one under
  // default before the attach, one under t1, one under default after
  // switching back). The t1 run after the attach must NOT have replayed
  // default's transcript even though the catalogs are identical.
  EXPECT_EQ(CountOccurrences(out, "(cached)"), 3u) << out;
  // Both fresh runs printed a full transcript (answer footer present).
  EXPECT_EQ(CountOccurrences(out, "answers,"), 5u) << out;
}

TEST(ShellTenantTest, DetachFallsBackToDefaultAndRejectsUnknown) {
  const std::string script =
      "\\gen users 200\n"
      "\\attach t9 gen users 100\n"
      "\\tenant nosuch\n"
      "\\detach t9\n"
      "\\detach t9\n"
      "\\tables\n"
      "\\quit\n";
  int exit_code = -1;
  const std::string out = RunShell(script, &exit_code);
  if (out.empty()) {
    GTEST_SKIP() << "could not launch " << ShellBinary()
                 << " (set ACQ_SHELL_BIN)";
  }
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(out.find("no such tenant: nosuch"), std::string::npos) << out;
  EXPECT_NE(out.find("detached tenant t9 (active: default)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("no such tenant: t9"), std::string::npos) << out;
  // Back on the default tenant's 200-row catalog.
  EXPECT_NE(out.find("users (200 rows)"), std::string::npos) << out;
}

}  // namespace
}  // namespace acquire
