// Integration tests mirroring the paper's running examples: the Facebook ad
// campaign (Example 1 / query Q1') and the HybridCars supply chain
// (Example 2 / query Q2'), driven through the full SQL surface.

#include <gtest/gtest.h>

#include "core/acquire.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions tpch;
    tpch.suppliers = 500;
    tpch.parts = 1000;
    tpch.suppliers_per_part = 4;
    ASSERT_TRUE(GenerateTpch(tpch, &catalog_).ok());
    UsersOptions users;
    users.users = 50000;
    ASSERT_TRUE(GenerateUsers(users, &catalog_).ok());
  }

  Catalog catalog_;
};

TEST_F(PaperExamplesTest, Q1AdCampaignCountConstraint) {
  // Q1': demographics fixed, numeric predicates refinable, COUNT target
  // beyond the original query's audience.
  Binder binder(&catalog_);
  auto task = binder.PlanSql(R"sql(
      SELECT * FROM users
      CONSTRAINT COUNT(*) = 4K
      WHERE (gender = 'Women') NOREFINE
      AND 25 <= age <= 35
      AND engagement >= 60
      AND (interest IN ('Retail', 'Shopping')) NOREFINE;)sql");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 3u);  // range splits into two dims + engagement

  CachedEvaluationLayer layer(&*task);
  AcquireOptions options;
  options.delta = 0.05;
  auto result = RunAcquire(*task, &layer, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->satisfied);
  EXPECT_NEAR(result->queries[0].aggregate, 4000.0, 200.0);

  // The recommended refined query is plain runnable SQL that keeps the
  // NOREFINE demographics fixed.
  std::string sql = RenderRefinedSql(*task, result->queries[0]);
  EXPECT_NE(sql.find("gender = 'Women'"), std::string::npos);
  EXPECT_NE(sql.find("interest IN ('Retail', 'Shopping')"),
            std::string::npos);
}

TEST_F(PaperExamplesTest, Q2SupplyChainSumConstraint) {
  // Q2' verbatim in structure: three-way join, SUM(ps_availqty) >= 0.1M,
  // join and part-spec predicates NOREFINE, price and balance refinable.
  Binder binder(&catalog_);
  auto task = binder.PlanSql(R"sql(
      SELECT * FROM supplier, part, partsupp
      CONSTRAINT SUM(ps_availqty) >= 0.1M
      WHERE (s_suppkey = ps_suppkey) NOREFINE AND
      (p_partkey = ps_partkey) NOREFINE AND
      (p_retailprice < 1000) AND (s_acctbal < 2000)
      AND (p_size <= 10) NOREFINE;)sql");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 2u);

  CachedEvaluationLayer layer(&*task);
  AcquireOptions options;
  options.delta = 0.05;
  auto result = RunAcquire(*task, &layer, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->satisfied) << "best " << result->best.ToString();
  for (const RefinedQuery& q : result->queries) {
    EXPECT_GE(q.aggregate, 0.1e6 * (1.0 - options.delta));
  }
}

TEST_F(PaperExamplesTest, Q3JoinRefinementFromSection24) {
  // Q3: SELECT * FROM A, B WHERE A.x = B.x AND B.y < 50 — the join is
  // refinable by default and the algorithm treats it like any dimension.
  Catalog catalog;
  auto a = std::make_shared<Table>("A", Schema({{"x", DataType::kDouble, ""}}));
  auto b = std::make_shared<Table>(
      "B", Schema({{"x", DataType::kDouble, ""}, {"y", DataType::kDouble, ""}}));
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(a->AppendRow({Value(i * 1.0)}).ok());
    ASSERT_TRUE(b->AppendRow({Value(i * 1.0 + 0.4), Value(i * 2.0)}).ok());
  }
  ASSERT_TRUE(catalog.AddTable(a).ok());
  ASSERT_TRUE(catalog.AddTable(b).ok());

  Binder binder(&catalog);
  auto task = binder.PlanSql(
      "SELECT * FROM A, B CONSTRAINT COUNT(*) = 25 "
      "WHERE A.x = B.x AND B.y < 50");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 2u);

  CachedEvaluationLayer layer(&*task);
  AcquireOptions options;
  options.delta = 0.05;
  auto result = RunAcquire(*task, &layer, options);
  ASSERT_TRUE(result.ok());
  // Exact equi-join matches nothing (keys offset by 0.4): only widening the
  // join band can admit pairs, proving join refinement works end to end.
  ASSERT_TRUE(result->satisfied) << result->best.ToString();
  EXPECT_NE(result->queries[0].description.find("ABS("), std::string::npos);
}

TEST_F(PaperExamplesTest, AvgOutlierAnalysisUseCase) {
  // Third motivating use case: constrain AVG over patient costs.
  Catalog catalog;
  PatientsOptions options;
  options.patients = 20000;
  ASSERT_TRUE(GeneratePatients(options, &catalog).ok());

  Binder binder(&catalog);
  auto task = binder.PlanSql(
      "SELECT * FROM patients CONSTRAINT AVG(annual_cost) >= 14000 "
      "WHERE age >= 60 AND systolic_bp >= 140");
  ASSERT_TRUE(task.ok()) << task.status().ToString();

  CachedEvaluationLayer layer(&*task);
  auto result = RunAcquire(*task, &layer, {});
  ASSERT_TRUE(result.ok());
  // Either the original already exceeds the AVG floor or a refinement does.
  ASSERT_TRUE(result->satisfied);
  EXPECT_GE(result->queries[0].aggregate, 14000.0 * 0.95);
}

}  // namespace
}  // namespace acquire
