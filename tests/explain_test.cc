#include "sql/explain.h"

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "workload/tpch_gen.h"

namespace acquire {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions options;
    options.suppliers = 50;
    options.parts = 100;
    options.lineitems = 2000;
    ASSERT_TRUE(GenerateTpch(options, &catalog_).ok());
  }
  Catalog catalog_;
};

TEST_F(ExplainTest, ListsDimsConstraintAndGeometry) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 900 "
      "WHERE l_quantity < 20 AND l_discount <= 0.05 NOREFINE");
  ASSERT_TRUE(task.ok());
  AcquireOptions options;
  options.gamma = 10.0;
  std::string plan = ExplainTask(*task, options);
  EXPECT_NE(plan.find("base relation: lineitem"), std::string::npos);
  EXPECT_NE(plan.find("COUNT(*) = 900"), std::string::npos);
  EXPECT_NE(plan.find("l_quantity < 20"), std::string::npos);
  EXPECT_NE(plan.find("l_discount <= 0.05"), std::string::npos);
  EXPECT_NE(plan.find("d=1"), std::string::npos);
  EXPECT_NE(plan.find("step=10"), std::string::npos);  // gamma/d = 10
  EXPECT_NE(plan.find("grid levels"), std::string::npos);
}

TEST_F(ExplainTest, JoinTaskShowsJoinDimension) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM supplier, partsupp CONSTRAINT COUNT(*) = 500 "
      "WHERE s_suppkey = ps_suppkey AND s_acctbal < 2000");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  std::string plan = ExplainTask(*task, {});
  EXPECT_NE(plan.find("s_suppkey = ps_suppkey"), std::string::npos);
  EXPECT_NE(plan.find("d=2"), std::string::npos);
}

TEST_F(ExplainTest, WeightsAreShown) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 900 "
      "WHERE l_quantity < 20");
  ASSERT_TRUE(task.ok());
  task->dims[0]->set_weight(2.5);
  std::string plan = ExplainTask(*task, {});
  EXPECT_NE(plan.find("weight 2.5"), std::string::npos);
}

}  // namespace
}  // namespace acquire
