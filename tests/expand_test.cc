#include "core/expand.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

std::unique_ptr<test_util::SyntheticTask> MakeFixture(size_t d) {
  SyntheticOptions options;
  options.d = d;
  options.rows = 500;
  return MakeSyntheticTask(options);
}

int64_t Sum(const GridCoord& c) {
  return std::accumulate(c.begin(), c.end(), int64_t{0});
}

int32_t Max(const GridCoord& c) {
  return *std::max_element(c.begin(), c.end());
}

// Drains up to `limit` coordinates.
std::vector<GridCoord> Drain(QueryGenerator* gen, size_t limit) {
  std::vector<GridCoord> out;
  GridCoord coord;
  while (out.size() < limit && gen->Next(&coord)) out.push_back(coord);
  return out;
}

TEST(BfsGeneratorTest, StartsAtOriginWithScoreZero) {
  auto fixture = MakeFixture(3);
  RefinedSpace space(&fixture->task, 9.0, Norm::L1());
  BfsGenerator gen(&space);
  GridCoord coord;
  ASSERT_TRUE(gen.Next(&coord));
  EXPECT_EQ(coord, GridCoord(3, 0));
  EXPECT_DOUBLE_EQ(gen.CurrentScore(), 0.0);
}

TEST(BfsGeneratorTest, Theorem2LayerOrdering) {
  // All grid queries of layer k come out before any of layer k+1.
  auto fixture = MakeFixture(3);
  RefinedSpace space(&fixture->task, 9.0, Norm::L1());
  BfsGenerator gen(&space);
  int64_t last_layer = 0;
  for (const GridCoord& c : Drain(&gen, 500)) {
    int64_t layer = Sum(c);
    EXPECT_GE(layer, last_layer);
    last_layer = layer;
  }
}

TEST(BfsGeneratorTest, NoDuplicatesAndCompleteLayers) {
  auto fixture = MakeFixture(2);
  RefinedSpace space(&fixture->task, 10.0, Norm::L1());
  BfsGenerator gen(&space);
  std::set<GridCoord> seen;
  std::vector<GridCoord> coords = Drain(&gen, 200);
  for (const GridCoord& c : coords) {
    EXPECT_TRUE(seen.insert(c).second) << "duplicate coordinate";
  }
  // Layers 0..3 must be complete: layer k has k+1 coords in 2-D.
  for (int64_t k = 0; k <= 3; ++k) {
    int64_t count = std::count_if(coords.begin(), coords.end(),
                                  [&](const GridCoord& c) { return Sum(c) == k; });
    EXPECT_EQ(count, k + 1) << "layer " << k;
  }
}

TEST(BfsGeneratorTest, RespectsPerDimensionCaps) {
  auto fixture = MakeFixture(2);
  fixture->task.dims[0]->set_weight(1.0);
  // Cap dim 0 at a small refinement so only a few levels exist.
  auto* dim0 = dynamic_cast<NumericDim*>(fixture->task.dims[0].get());
  ASSERT_NE(dim0, nullptr);
  dim0->set_max_refinement(7.0);  // step 5 -> max level 2
  RefinedSpace space(&fixture->task, 10.0, Norm::L1());
  EXPECT_EQ(space.MaxLevel(0), 2);
  BfsGenerator gen(&space);
  for (const GridCoord& c : Drain(&gen, 1000)) {
    EXPECT_LE(c[0], 2);
  }
}

TEST(BfsGeneratorTest, ExhaustsFiniteSpace) {
  auto fixture = MakeFixture(2);
  for (auto& dim : fixture->task.dims) {
    dynamic_cast<NumericDim*>(dim.get())->set_max_refinement(10.0);
  }
  RefinedSpace space(&fixture->task, 10.0, Norm::L1());
  // Max level 2 per dim -> 3x3 grid.
  BfsGenerator gen(&space);
  EXPECT_EQ(Drain(&gen, 1000).size(), 9u);
}

TEST(ShellGeneratorTest, EnumeratesLInfShellsInOrder) {
  auto fixture = MakeFixture(3);
  RefinedSpace space(&fixture->task, 9.0, Norm::LInf());
  ShellGenerator gen(&space);
  int32_t last_shell = 0;
  GridCoord c;
  for (int i = 0; i < 300 && gen.Next(&c); ++i) {
    int32_t shell = Max(c);
    EXPECT_GE(shell, last_shell);
    EXPECT_DOUBLE_EQ(gen.CurrentScore(), shell);
    last_shell = shell;
  }
}

TEST(ShellGeneratorTest, ShellsAreCompleteAndDuplicateFree) {
  auto fixture = MakeFixture(3);
  RefinedSpace space(&fixture->task, 9.0, Norm::LInf());
  ShellGenerator gen(&space);
  std::set<GridCoord> seen;
  std::vector<GridCoord> coords = Drain(&gen, 600);
  for (const GridCoord& c : coords) {
    EXPECT_TRUE(seen.insert(c).second);
  }
  // Shell k in 3-D has (k+1)^3 - k^3 coordinates.
  for (int32_t k = 0; k <= 3; ++k) {
    int64_t count = std::count_if(coords.begin(), coords.end(),
                                  [&](const GridCoord& c) { return Max(c) == k; });
    int64_t expected = static_cast<int64_t>((k + 1)) * (k + 1) * (k + 1) -
                       static_cast<int64_t>(k) * k * k;
    EXPECT_EQ(count, expected) << "shell " << k;
  }
}

TEST(ShellGeneratorTest, RespectsCaps) {
  auto fixture = MakeFixture(2);
  dynamic_cast<NumericDim*>(fixture->task.dims[0].get())
      ->set_max_refinement(7.0);  // max level 2 at step 5
  RefinedSpace space(&fixture->task, 10.0, Norm::LInf());
  ShellGenerator gen(&space);
  for (const GridCoord& c : Drain(&gen, 2000)) {
    EXPECT_LE(c[0], 2);
  }
}

TEST(BestFirstGeneratorTest, ScoresAreNondecreasingExactQScores) {
  auto fixture = MakeFixture(2);
  fixture->task.dims[0]->set_weight(2.0);  // skewed weights
  RefinedSpace space(&fixture->task, 10.0, Norm::L2());
  BestFirstGenerator gen(&space);
  double last = 0.0;
  GridCoord coord;
  for (int i = 0; i < 100 && gen.Next(&coord); ++i) {
    EXPECT_GE(gen.CurrentScore() + 1e-12, last);
    EXPECT_NEAR(gen.CurrentScore(), space.QScoreOf(coord), 1e-12);
    last = gen.CurrentScore();
  }
}

TEST(BestFirstGeneratorTest, VisitsSameSetAsBfs) {
  auto fixture = MakeFixture(2);
  for (auto& dim : fixture->task.dims) {
    dynamic_cast<NumericDim*>(dim.get())->set_max_refinement(15.0);
  }
  RefinedSpace space(&fixture->task, 10.0, Norm::L1());
  BfsGenerator bfs(&space);
  BestFirstGenerator best(&space);
  auto a = Drain(&bfs, 10000);
  auto b = Drain(&best, 10000);
  std::set<GridCoord> sa(a.begin(), a.end());
  std::set<GridCoord> sb(b.begin(), b.end());
  EXPECT_EQ(sa, sb);
}

}  // namespace
}  // namespace acquire
