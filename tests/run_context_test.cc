// Deadline / cancellation semantics of RunContext-driven runs (the service
// layer's interruption machinery): interrupted runs stop quickly at layer
// granularity, return well-formed best-so-far partial results with the
// matching RunTermination, and release their pool resources. Also covers
// the max_explored budget reporting as kTruncated (distinct from a search
// that genuinely exhausted the space).

#include <atomic>
#include <chrono>
#include <thread>

#include "core/processor.h"
#include "core/run_context.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

double MillisBetween(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

// Sanitizer instrumentation inflates wall clock ~10x; the strict latency
// bound is a plain-build guarantee, sanitized runs only check semantics.
// The plain bound tolerates `ctest -j` CPU contention (a single contended
// layer evaluation can take >100ms) while still sitting orders of
// magnitude below the multi-second full-grid run it guards against.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kInterruptBudgetMs = 1000.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kInterruptBudgetMs = 1000.0;
#else
constexpr double kInterruptBudgetMs = 250.0;
#endif
#else
constexpr double kInterruptBudgetMs = 250.0;
#endif

// A d=4 task whose constraint is unreachable, so the search would explore
// the whole (100 / (gamma/d))^4 grid if nothing stopped it.
std::unique_ptr<test_util::SyntheticTask> MakeBigTask() {
  SyntheticOptions options;
  options.rows = 20000;
  options.d = 4;
  options.op = ConstraintOp::kGe;
  options.target = 1e9;  // COUNT can never reach this
  options.bound = 10.0;
  return MakeSyntheticTask(options);
}

TEST(RunContextTest, DefaultIsCompleted) {
  RunContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.cancel_requested());
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_EQ(ctx.Interruption(), RunTermination::kCompleted);
}

TEST(RunContextTest, CancelWinsOverDeadline) {
  RunContext ctx;
  ctx.set_deadline(RunContext::Clock::now() - std::chrono::seconds(1));
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.Interruption(), RunTermination::kCancelled);
}

TEST(RunContextTest, ExpiredDeadlineStops) {
  RunContext ctx;
  ctx.SetTimeoutMillis(0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // The deadline is checked on a stride; poll until the clock read lands.
  bool stopped = false;
  for (int i = 0; i < 64 && !stopped; ++i) stopped = ctx.ShouldStop();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(ctx.Interruption(), RunTermination::kDeadlineExceeded);
}

TEST(RunContextTest, TerminationToStatusMapping) {
  EXPECT_TRUE(TerminationToStatus(RunTermination::kCompleted).ok());
  EXPECT_TRUE(TerminationToStatus(RunTermination::kTruncated).ok());
  EXPECT_TRUE(TerminationToStatus(RunTermination::kDeadlineExceeded)
                  .IsDeadlineExceeded());
  EXPECT_TRUE(TerminationToStatus(RunTermination::kCancelled).IsCancelled());
  EXPECT_TRUE(TerminationToStatus(RunTermination::kResourceExhausted)
                  .IsResourceExhausted());
}

TEST(MemoryBudgetTest, ChargeTalliesAndLatchesPastTheLimit) {
  MemoryBudget budget;
  // No limit: charges are tallied but never latch.
  EXPECT_TRUE(budget.Charge(uint64_t{1} << 20));
  EXPECT_EQ(budget.used(), uint64_t{1} << 20);
  EXPECT_FALSE(budget.exhausted());

  budget.set_limit(uint64_t{2} << 20);
  EXPECT_TRUE(budget.Charge(uint64_t{1} << 20));  // exactly at the limit
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.Charge(1));  // crosses it
  EXPECT_TRUE(budget.exhausted());
}

TEST(MemoryBudgetTest, ExhaustionStopsTheContextAndClassifies) {
  RunContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.budget().MarkExhausted();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.Interruption(), RunTermination::kResourceExhausted);
  // Cancellation is the more specific user action and wins.
  ctx.RequestCancel();
  EXPECT_EQ(ctx.Interruption(), RunTermination::kCancelled);
}

TEST(MemoryBudgetTest, TinyBudgetReturnsBestSoFarReport) {
  auto fixture = MakeBigTask();
  ASSERT_NE(fixture, nullptr);
  AcquireOptions options;
  // Shrink the step so the grid (and the search-side working set) is far
  // larger than this budget; the run must degrade, not crash.
  options.gamma = 1.0;
  options.memory_budget_bytes = 256 * 1024;
  auto outcome = ProcessAcq(fixture->task, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.termination, RunTermination::kResourceExhausted);
  EXPECT_FALSE(outcome->result.satisfied);
  EXPECT_GE(outcome->result.queries_explored, 1u);
  // Well-formed best-so-far partial answer.
  EXPECT_FALSE(outcome->result.best.pscores.empty());
}

TEST(MemoryBudgetTest, BudgetedRunMatchesUnbudgetedWhenUnderLimit) {
  SyntheticOptions small;
  small.rows = 500;
  small.d = 2;
  small.op = ConstraintOp::kGe;
  small.target = 1e9;
  auto fixture = MakeSyntheticTask(small);
  ASSERT_NE(fixture, nullptr);
  auto plain = ProcessAcq(fixture->task, AcquireOptions{});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  AcquireOptions budgeted;
  budgeted.memory_budget_bytes = uint64_t{1} << 30;  // far above any use
  auto metered = ProcessAcq(fixture->task, budgeted);
  ASSERT_TRUE(metered.ok()) << metered.status().ToString();
  // Metering must be an observer: identical termination, counters and best.
  EXPECT_EQ(metered->result.termination, plain->result.termination);
  EXPECT_EQ(metered->result.queries_explored, plain->result.queries_explored);
  EXPECT_EQ(metered->result.cell_queries, plain->result.cell_queries);
  EXPECT_EQ(metered->result.best.error, plain->result.best.error);
  EXPECT_EQ(metered->result.best.qscore, plain->result.best.qscore);
}

TEST(MemoryBudgetTest, EvaluationScratchIsChargedToTheBudget) {
  // An unlimited context still tallies: the evaluation layer's Prepare
  // (NeededMatrix build — at least one needed[] and one agg_values[] double
  // per row) must be metered, not just the search-side arenas.
  SyntheticOptions small;
  small.rows = 2000;
  small.d = 2;
  small.op = ConstraintOp::kGe;
  // Unreachable, so the search itself runs (an original-satisfies early
  // return never enters the budgeted search path).
  small.target = 1e9;
  auto fixture = MakeSyntheticTask(small);
  ASSERT_NE(fixture, nullptr);
  RunContext ctx;
  AcquireOptions options;
  options.run_ctx = &ctx;
  auto outcome = ProcessAcq(fixture->task, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(ctx.budget().used(), 2 * small.rows * sizeof(double));
}

TEST(MemoryBudgetTest, PrepareScratchAloneCanExhaustTheBudget) {
  // A budget below the evaluation layer's own materialization cost: the run
  // must stop resource_exhausted right at the origin, with the charge on
  // record — regression test for scratch that used to bypass the meter.
  SyntheticOptions big;
  big.rows = 20000;
  big.d = 2;
  big.op = ConstraintOp::kGe;
  big.target = 1e9;
  auto fixture = MakeSyntheticTask(big);
  ASSERT_NE(fixture, nullptr);
  AcquireOptions options;
  options.memory_budget_bytes = 64 * 1024;  // << 2 * 20000 * 8 bytes
  auto outcome = ProcessAcq(fixture->task, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.termination, RunTermination::kResourceExhausted);
  EXPECT_FALSE(outcome->result.satisfied);
  // Well-formed best-so-far report: the origin was still visited.
  EXPECT_GE(outcome->result.queries_explored, 1u);
  EXPECT_FALSE(outcome->result.best.pscores.empty());
}

TEST(RunContextTest, OneMillisecondDeadlineReturnsPartialQuickly) {
  auto fixture = MakeBigTask();
  ASSERT_NE(fixture, nullptr);
  RunContext ctx;
  ctx.SetTimeoutMillis(1.0);
  AcquireOptions options;
  options.run_ctx = &ctx;
  const auto start = std::chrono::steady_clock::now();
  auto outcome = ProcessAcq(fixture->task, options);
  const double wall = MillisBetween(start, std::chrono::steady_clock::now());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.termination, RunTermination::kDeadlineExceeded);
  // Interruption is cooperative (layer granularity), but on this task it
  // must land orders of magnitude before the ~full-grid run would.
  EXPECT_LT(wall, kInterruptBudgetMs);
  // The partial report is well-formed: not satisfied, and the progress
  // counters reflect the work actually done.
  EXPECT_FALSE(outcome->result.satisfied);
  EXPECT_EQ(outcome->result.queries_explored,
            ctx.queries_explored.load(std::memory_order_relaxed));
  EXPECT_GT(wall, 0.0);
}

TEST(RunContextTest, CrossThreadCancelStopsRun) {
  auto fixture = MakeBigTask();
  ASSERT_NE(fixture, nullptr);
  RunContext ctx;
  AcquireOptions options;
  options.run_ctx = &ctx;
  Result<AcqOutcome> outcome = Status::Internal("not run");
  std::thread runner([&] { outcome = ProcessAcq(fixture->task, options); });
  // Let the run get into Explore, then cancel from this thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ctx.RequestCancel();
  runner.join();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The run may legitimately have finished a stopping rule first, but on
  // this unreachable-target task the full search takes far longer than the
  // cancel latency, so we expect the interruption to have landed.
  EXPECT_EQ(outcome->result.termination, RunTermination::kCancelled);
  EXPECT_FALSE(outcome->result.satisfied);
}

TEST(RunContextTest, MaxExploredReportsTruncated) {
  auto fixture = MakeBigTask();
  ASSERT_NE(fixture, nullptr);
  AcquireOptions options;
  options.max_explored = 64;
  auto outcome = ProcessAcq(fixture->task, options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.termination, RunTermination::kTruncated);
  EXPECT_FALSE(outcome->result.satisfied);
  EXPECT_GE(outcome->result.queries_explored, 1u);
}

TEST(RunContextTest, ExhaustiveRunStaysCompleted) {
  SyntheticOptions small;
  small.rows = 500;
  small.d = 2;
  small.op = ConstraintOp::kGe;
  small.target = 1e9;  // unreachable, but the d=2 grid is fully searchable
  auto fixture = MakeSyntheticTask(small);
  ASSERT_NE(fixture, nullptr);
  auto outcome = ProcessAcq(fixture->task, AcquireOptions{});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // "no answer" after a finished search is kCompleted, not kTruncated.
  EXPECT_EQ(outcome->result.termination, RunTermination::kCompleted);
  EXPECT_FALSE(outcome->result.satisfied);
}

TEST(RunContextTest, InterruptedRunReleasesPoolSlots) {
  auto fixture = MakeBigTask();
  ASSERT_NE(fixture, nullptr);
  RunContext ctx;
  ctx.SetTimeoutMillis(1.0);
  AcquireOptions options;
  options.run_ctx = &ctx;
  auto outcome = ProcessAcq(fixture->task, options);
  ASSERT_TRUE(outcome.ok());
  // The pool must be fully serviceable afterwards: a ParallelFor over all
  // workers completes (it would hang if an interrupted run leaked a task).
  std::atomic<size_t> touched{0};
  ThreadPool::Shared().ParallelFor(
      1000, 1, [&](size_t, size_t begin, size_t end) {
        touched.fetch_add(end - begin, std::memory_order_relaxed);
      });
  EXPECT_EQ(touched.load(), 1000u);
}

}  // namespace
}  // namespace acquire
