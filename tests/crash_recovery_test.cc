// Crash-injection harness for the durability subsystem: drives the real
// acq_serve binary over TCP, kills it at armed failpoint crash sites
// (process _Exit mid-append, mid-checkpoint), restarts it over the same
// --wal-dir and asserts the recovery contract of storage/wal.h:
//
//   - every acked APPEND survives the crash exactly (pre-write and
//     mid-write crashes recover precisely the acked prefix);
//   - an unacked append never half-applies: it is either absent or fully
//     present (the post-sync pre-ack site may legitimately persist one
//     unacked batch — durable-but-unacked, never torn);
//   - recovery state is bit-exact: the restarted server's catalog
//     generation equals the pre-crash acked generation, and a server
//     recovered from WAL answers identically to one that was fed the same
//     appends live;
//   - a torn or vandalized log tail never prevents startup;
//   - SIGTERM is a clean shutdown: drain, checkpoint, exit 0.
//
// ACQ_SERVE_BIN overrides the binary path (CI sets it; the default assumes
// ctest's working directory build/tests). ACQ_CRASH_CYCLES scales the
// repeated crash/restart loop (default 3; CI uses 10). Tests skip when the
// binary is missing or failpoints are compiled out.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"

namespace acquire {
namespace {

namespace fs = std::filesystem;

std::string ServeBinary() {
  if (const char* env = std::getenv("ACQ_SERVE_BIN")) return env;
  return "../examples/acq_serve";
}

int CrashCycles() {
  if (const char* env = std::getenv("ACQ_CRASH_CYCLES")) {
    const int cycles = std::atoi(env);
    if (cycles > 0) return cycles;
  }
  return 3;
}

bool BinaryAvailable() { return ::access(ServeBinary().c_str(), X_OK) == 0; }

/// One acq_serve child process: stdout+stderr piped back, port parsed from
/// the listening line.
class ServerProc {
 public:
  ~ServerProc() { Kill(); }

  /// Starts `binary args...`; returns false (with a reason) when the child
  /// could not be launched or never printed its listening line.
  bool Start(const std::vector<std::string>& args, std::string* error) {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      *error = "pipe failed";
      return false;
    }
    pid_ = ::fork();
    if (pid_ < 0) {
      *error = "fork failed";
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      return false;
    }
    if (pid_ == 0) {
      ::dup2(pipe_fds[1], STDOUT_FILENO);
      ::dup2(pipe_fds[1], STDERR_FILENO);
      ::close(pipe_fds[0]);
      ::close(pipe_fds[1]);
      std::vector<std::string> full = args;
      full.insert(full.begin(), ServeBinary());
      std::vector<char*> argv;
      argv.reserve(full.size() + 1);
      for (std::string& arg : full) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::perror("execv acq_serve");
      ::_exit(127);
    }
    ::close(pipe_fds[1]);
    out_ = ::fdopen(pipe_fds[0], "r");
    if (out_ == nullptr) {
      *error = "fdopen failed";
      return false;
    }
    // Scan startup output for the (flushed) listening line; keep everything
    // seen so far for recovery-line assertions.
    char line[1024];
    while (std::fgets(line, sizeof(line), out_) != nullptr) {
      startup_ += line;
      int port = 0;
      if (std::sscanf(line, "acq_serve listening on 127.0.0.1:%d", &port) ==
          1) {
        port_ = port;
        return true;
      }
    }
    *error = "server exited before listening:\n" + startup_;
    return false;
  }

  int port() const { return port_; }
  pid_t pid() const { return pid_; }
  const std::string& startup_output() const { return startup_; }

  /// Blocks until the child exits; returns its wait status (-1 on error).
  int Wait() {
    if (pid_ <= 0) return -1;
    int status = -1;
    if (::waitpid(pid_, &status, 0) != pid_) return -1;
    pid_ = -1;
    return status;
  }

  /// Drains the rest of the child's output (after it exited).
  std::string DrainOutput() {
    std::string rest;
    if (out_ != nullptr) {
      char chunk[1024];
      size_t n;
      while ((n = std::fread(chunk, 1, sizeof(chunk), out_)) > 0) {
        rest.append(chunk, n);
      }
    }
    return rest;
  }

  void Signal(int sig) {
    if (pid_ > 0) ::kill(pid_, sig);
  }

  void Kill() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_ != nullptr) {
      std::fclose(out_);
      out_ = nullptr;
    }
  }

 private:
  pid_t pid_ = -1;
  int port_ = 0;
  FILE* out_ = nullptr;
  std::string startup_;
};

/// Newline-delimited JSON client over one TCP connection.
class LineClient {
 public:
  ~LineClient() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval timeout{10, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  /// Sends one line and reads one reply line. Returns "" when the
  /// connection died (the server crashed mid-request).
  std::string Request(const std::string& line) {
    if (fd_ < 0) return "";
    const std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return "";
      sent += static_cast<size_t>(n);
    }
    std::string reply;
    char byte = 0;
    for (;;) {
      const ssize_t n = ::recv(fd_, &byte, 1, 0);
      if (n <= 0) return "";  // EOF or timeout: the server is gone
      if (byte == '\n') return reply;
      reply += byte;
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

std::string AppendRequest(int i) {
  char row[256];
  std::snprintf(row, sizeof(row),
                R"({"cmd":"APPEND","table":"users","rows":[[%d,%d,%d.0,0.5,)"
                R"(%d,"city%d","f","bs","sports"]]})",
                9000 + i, 20 + (i % 40), 50000 + i * 100, 10 + i, i);
  return row;
}

constexpr char kProbeSubmit[] =
    R"({"cmd":"SUBMIT","wait":true,"sql":"SELECT * FROM users )"
    R"(CONSTRAINT COUNT(*) >= 5 WHERE age <= 30 AND income >= 50000;"})";

uint64_t ExtractU64(const std::string& reply, const std::string& key) {
  const size_t pos = reply.find("\"" + key + "\":");
  if (pos == std::string::npos) return ~uint64_t{0};
  return std::strtoull(reply.c_str() + pos + key.size() + 3, nullptr, 10);
}

std::string NormalizeTimings(std::string reply) {
  for (const char* key : {"\"elapsed_ms\":", "\"wall_ms\":"}) {
    size_t pos = 0;
    while ((pos = reply.find(key, pos)) != std::string::npos) {
      const size_t begin = pos + std::strlen(key);
      size_t end = begin;
      while (end < reply.size() &&
             (std::isdigit(static_cast<unsigned char>(reply[end])) ||
              reply[end] == '.' || reply[end] == '-' || reply[end] == 'e' ||
              reply[end] == '+')) {
        ++end;
      }
      reply.replace(begin, end - begin, "0");
      pos = begin;
    }
  }
  return reply;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!BinaryAvailable()) {
      GTEST_SKIP() << "could not find " << ServeBinary()
                   << " (set ACQ_SERVE_BIN)";
    }
    if (!FailpointRegistry::compiled_in()) {
      GTEST_SKIP() << "failpoints compiled out";
    }
    dir_ = ::testing::TempDir() + "/acq_crash_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<std::string> BaseArgs(const std::string& extra_failpoints) {
    std::vector<std::string> args = {
        "--gen",     "users", "--rows", "300",
        "--port",    "0",     "--wal-dir", dir_ + "/wal",
        "--fsync",   "always"};
    if (!extra_failpoints.empty()) {
      args.push_back("--failpoints");
      args.push_back(extra_failpoints);
    }
    return args;
  }

  /// Appends until the server dies or `max_appends` acks; returns acked.
  int DriveUntilCrash(int port, int max_appends) {
    LineClient client;
    EXPECT_TRUE(client.Connect(port));
    int acked = 0;
    for (int i = 0; i < max_appends; ++i) {
      const std::string reply = client.Request(AppendRequest(i));
      if (reply.empty()) break;  // connection died: the crash fired
      EXPECT_NE(reply.find("\"ok\":true"), std::string::npos) << reply;
      ++acked;
    }
    return acked;
  }

  /// Catalog generation as seen over STATS (the bit-identity anchor).
  uint64_t StatsGeneration(int port) {
    LineClient client;
    EXPECT_TRUE(client.Connect(port));
    const std::string stats = client.Request(R"({"cmd":"STATS"})");
    EXPECT_FALSE(stats.empty());
    return ExtractU64(stats, "catalog_generation");
  }

  std::string dir_;
};

struct CrashSite {
  const char* spec;       // --failpoints value
  int expected_extra_lo;  // recovered - acked lower bound
  int expected_extra_hi;  // recovered - acked upper bound
};

// pre_write dies before any byte of the record is written and mid_write
// dies between the frame header and the payload (a torn tail): in both
// cases the crashed append must vanish. pre_ack dies after the synced
// write: the record is durable but unacked — recovery may surface exactly
// one more batch than was acked, never a torn one.
class CrashSiteTest : public CrashRecoveryTest,
                      public ::testing::WithParamInterface<CrashSite> {};

TEST_P(CrashSiteTest, AckedPrefixSurvivesExactly) {
  const CrashSite site = GetParam();

  ServerProc server;
  std::string error;
  ASSERT_TRUE(server.Start(BaseArgs(site.spec), &error)) << error;
  const uint64_t base_generation = StatsGeneration(server.port());
  ASSERT_NE(base_generation, ~uint64_t{0});

  const int acked = DriveUntilCrash(server.port(), /*max_appends=*/10);
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status)) << "status " << status;
  EXPECT_EQ(WEXITSTATUS(status), 137) << server.DrainOutput();
  EXPECT_LT(acked, 10) << "crash site never fired: " << site.spec;

  // Restart over the same directory, no failpoints.
  ServerProc recovered;
  ASSERT_TRUE(recovered.Start(BaseArgs(""), &error)) << error;
  const uint64_t generation = StatsGeneration(recovered.port());
  const int extra =
      static_cast<int>(generation - base_generation) - acked;
  EXPECT_GE(extra, site.expected_extra_lo)
      << "acked appends lost (acked " << acked << ", recovered gen "
      << generation << " from base " << base_generation << ")\n"
      << recovered.startup_output();
  EXPECT_LE(extra, site.expected_extra_hi)
      << "unacked append half-applied or double-applied\n"
      << recovered.startup_output();

  // The recovered server serves: probe query answers.
  LineClient client;
  ASSERT_TRUE(client.Connect(recovered.port()));
  const std::string probe = client.Request(kProbeSubmit);
  EXPECT_NE(probe.find("\"ok\":true"), std::string::npos) << probe;
  recovered.Signal(SIGTERM);
  const int clean = recovered.Wait();
  ASSERT_TRUE(WIFEXITED(clean));
  EXPECT_EQ(WEXITSTATUS(clean), 0) << recovered.DrainOutput();
}

INSTANTIATE_TEST_SUITE_P(
    Sites, CrashSiteTest,
    ::testing::Values(
        CrashSite{"wal.append.pre_write=crash:3", 0, 0},
        CrashSite{"wal.append.mid_write=crash:3", 0, 0},
        CrashSite{"wal.append.pre_ack=crash:3", 0, 1}));

TEST_F(CrashRecoveryTest, MidCheckpointCrashKeepsWalAuthoritative) {
  std::vector<std::string> args = BaseArgs("wal.checkpoint.mid=crash:1");
  args.push_back("--checkpoint-interval-appends");
  args.push_back("2");
  ServerProc server;
  std::string error;
  ASSERT_TRUE(server.Start(args, &error)) << error;
  const uint64_t base_generation = StatsGeneration(server.port());

  // The second append triggers the auto-checkpoint, which dies before
  // publication; the append itself was already logged and applied.
  const int acked = DriveUntilCrash(server.port(), /*max_appends=*/5);
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137);
  EXPECT_EQ(acked, 1);

  ServerProc recovered;
  ASSERT_TRUE(recovered.Start(BaseArgs(""), &error)) << error;
  // No checkpoint was published; the full WAL replays, including the
  // logged-but-unacked second append.
  EXPECT_NE(recovered.startup_output().find("checkpoint=no"),
            std::string::npos)
      << recovered.startup_output();
  const uint64_t generation = StatsGeneration(recovered.port());
  EXPECT_EQ(generation - base_generation, 2u)
      << recovered.startup_output();
}

TEST_F(CrashRecoveryTest, RepeatedCrashRestartCyclesStayBitExact) {
  const int cycles = CrashCycles();
  uint64_t base_generation = 0;
  int total_acked = 0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    ServerProc server;
    std::string error;
    // Crash on the third logged append of each cycle.
    ASSERT_TRUE(
        server.Start(BaseArgs("wal.append.pre_write=crash:3"), &error))
        << error;
    const uint64_t generation = StatsGeneration(server.port());
    if (cycle == 0) {
      base_generation = generation;
    } else {
      // The invariant under repeated crash/restart: recovered generation ==
      // base + every append ever acked, bit-exact, every cycle.
      ASSERT_EQ(generation, base_generation + total_acked)
          << "cycle " << cycle << ":\n" << server.startup_output();
    }
    total_acked += DriveUntilCrash(server.port(), /*max_appends=*/10);
    const int status = server.Wait();
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137);
  }
  // Final verification pass without failpoints.
  ServerProc final_server;
  std::string error;
  ASSERT_TRUE(final_server.Start(BaseArgs(""), &error)) << error;
  EXPECT_EQ(StatsGeneration(final_server.port()),
            base_generation + total_acked);
}

TEST_F(CrashRecoveryTest, RecoveredServerAnswersIdenticallyToLiveServer) {
  // Feed N appends, crash on the next, recover — then compare the probe
  // reply against a twin server that received the same N appends with no
  // crash at all. Identical catalogs must answer byte-identically
  // (timings normalized).
  ServerProc crashed;
  std::string error;
  ASSERT_TRUE(
      crashed.Start(BaseArgs("wal.append.pre_write=crash:4"), &error))
      << error;
  const int acked = DriveUntilCrash(crashed.port(), /*max_appends=*/10);
  ASSERT_EQ(acked, 3);
  crashed.Wait();

  ServerProc recovered;
  ASSERT_TRUE(recovered.Start(BaseArgs(""), &error)) << error;
  LineClient recovered_client;
  ASSERT_TRUE(recovered_client.Connect(recovered.port()));
  const std::string recovered_reply = recovered_client.Request(kProbeSubmit);
  ASSERT_FALSE(recovered_reply.empty());

  const std::string twin_dir = dir_ + "/twin";
  fs::create_directories(twin_dir);
  ServerProc twin;
  std::vector<std::string> twin_args = {
      "--gen",  "users", "--rows",    "300",
      "--port", "0",     "--wal-dir", twin_dir + "/wal",
      "--fsync", "always"};
  ASSERT_TRUE(twin.Start(twin_args, &error)) << error;
  LineClient twin_client;
  ASSERT_TRUE(twin_client.Connect(twin.port()));
  for (int i = 0; i < acked; ++i) {
    ASSERT_NE(twin_client.Request(AppendRequest(i)).find("\"ok\":true"),
              std::string::npos);
  }
  const std::string twin_reply = twin_client.Request(kProbeSubmit);
  EXPECT_EQ(NormalizeTimings(recovered_reply), NormalizeTimings(twin_reply));
}

TEST_F(CrashRecoveryTest, VandalizedWalTailNeverPreventsStartup) {
  {
    ServerProc server;
    std::string error;
    ASSERT_TRUE(server.Start(BaseArgs(""), &error)) << error;
    ASSERT_EQ(DriveUntilCrash(server.port(), 2), 2);
    // Hard kill: no checkpoint, the WAL carries both appends.
    server.Kill();
  }
  // Scribble garbage on the log tail, as a crash mid-write would.
  {
    std::ofstream out(dir_ + "/wal/default/wal.log",
                      std::ios::binary | std::ios::app);
    out << "\xde\xadpartial-record-garbage";
  }
  ServerProc recovered;
  std::string error;
  ASSERT_TRUE(recovered.Start(BaseArgs(""), &error))
      << "torn tail prevented startup: " << error;
  EXPECT_NE(recovered.startup_output().find("torn_tail=yes"),
            std::string::npos)
      << recovered.startup_output();
  LineClient client;
  ASSERT_TRUE(client.Connect(recovered.port()));
  const std::string stats = client.Request(R"({"cmd":"STATS"})");
  EXPECT_NE(stats.find("\"recovery_wal_records\":2"), std::string::npos)
      << stats;
}

TEST_F(CrashRecoveryTest, AttachSurvivesCrashDetachSurvivesRestart) {
  {
    ServerProc server;
    std::string error;
    ASSERT_TRUE(server.Start(BaseArgs(""), &error)) << error;
    LineClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    ASSERT_NE(client
                  .Request(R"({"cmd":"ATTACH","tenant":"t1","gen":"users",)"
                           R"("rows":80,"seed":5})")
                  .find("\"ok\":true"),
              std::string::npos);
    ASSERT_NE(client
                  .Request(R"({"cmd":"ATTACH","tenant":"t2","gen":"users",)"
                           R"("rows":60})")
                  .find("\"ok\":true"),
              std::string::npos);
    ASSERT_NE(client.Request(R"({"cmd":"DETACH","tenant":"t2"})")
                  .find("\"ok\":true"),
              std::string::npos);
    server.Kill();  // crash: only the manifest knows the tenant set
  }
  ServerProc recovered;
  std::string error;
  ASSERT_TRUE(recovered.Start(BaseArgs(""), &error)) << error;
  LineClient client;
  ASSERT_TRUE(client.Connect(recovered.port()));
  const std::string tenants = client.Request(R"({"cmd":"TENANTS"})");
  EXPECT_NE(tenants.find("\"tenant\":\"t1\""), std::string::npos) << tenants;
  EXPECT_EQ(tenants.find("\"tenant\":\"t2\""), std::string::npos) << tenants;
}

TEST_F(CrashRecoveryTest, SigtermDrainsCheckpointsAndExitsZero) {
  ServerProc server;
  std::string error;
  ASSERT_TRUE(server.Start(BaseArgs(""), &error)) << error;
  ASSERT_EQ(DriveUntilCrash(server.port(), 3), 3);
  server.Signal(SIGTERM);
  const int status = server.Wait();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << server.DrainOutput();
  const std::string output = server.startup_output() + server.DrainOutput();
  EXPECT_NE(output.find("shutting down"), std::string::npos) << output;
  // The clean shutdown checkpointed: restart recovers from the snapshot
  // with an empty log.
  ServerProc recovered;
  ASSERT_TRUE(recovered.Start(BaseArgs(""), &error)) << error;
  EXPECT_NE(recovered.startup_output().find("checkpoint=yes"),
            std::string::npos)
      << recovered.startup_output();
  EXPECT_NE(recovered.startup_output().find("wal_records=0"),
            std::string::npos)
      << recovered.startup_output();
}

}  // namespace
}  // namespace acquire
