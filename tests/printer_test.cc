#include "sql/printer.h"

#include <gtest/gtest.h>

#include "core/acquire.h"
#include "sql/binder.h"
#include "workload/tpch_gen.h"

namespace acquire {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions options;
    options.suppliers = 50;
    options.parts = 100;
    options.lineitems = 2000;
    ASSERT_TRUE(GenerateTpch(options, &catalog_).ok());
  }

  Catalog catalog_;
};

TEST_F(PrinterTest, OriginalSqlEchoesConstraintAndNorefine) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 900 "
      "WHERE l_quantity < 20 AND l_discount <= 0.05 NOREFINE");
  ASSERT_TRUE(task.ok());
  std::string sql = RenderOriginalSql(*task);
  EXPECT_NE(sql.find("SELECT * FROM lineitem"), std::string::npos);
  EXPECT_NE(sql.find("CONSTRAINT COUNT(*) = 900"), std::string::npos);
  EXPECT_NE(sql.find("l_quantity < 20"), std::string::npos);
  EXPECT_NE(sql.find("l_discount <= 0.05 NOREFINE"), std::string::npos);
}

TEST_F(PrinterTest, RefinedSqlIsRunnablePlainSql) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 900 "
      "WHERE l_quantity < 20 AND l_discount <= 0.05 NOREFINE");
  ASSERT_TRUE(task.ok());
  CachedEvaluationLayer layer(&*task);
  auto result = RunAcquire(*task, &layer, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  std::string sql = RenderRefinedSql(*task, result->queries[0]);
  EXPECT_NE(sql.find("SELECT * FROM lineitem"), std::string::npos);
  EXPECT_NE(sql.find("WHERE"), std::string::npos);
  EXPECT_NE(sql.find("l_discount <= 0.05"), std::string::npos);
  // No ACQ-only syntax in the refined output.
  EXPECT_EQ(sql.find("CONSTRAINT"), std::string::npos);
  EXPECT_EQ(sql.find("NOREFINE"), std::string::npos);
}

TEST_F(PrinterTest, MultiTableFromClause) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM supplier, partsupp "
      "CONSTRAINT SUM(ps_availqty) >= 1000 "
      "WHERE s_suppkey = ps_suppkey NOREFINE AND s_acctbal < 2000");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  std::string sql = RenderOriginalSql(*task);
  EXPECT_NE(sql.find("FROM supplier, partsupp"), std::string::npos);
  EXPECT_NE(sql.find("s_suppkey = ps_suppkey NOREFINE"), std::string::npos);
}

}  // namespace
}  // namespace acquire
