#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace acquire {
namespace {

std::vector<Token> MustTokenize(const std::string& s) {
  auto tokens = Tokenize(s);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? tokens.value() : std::vector<Token>{};
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = MustTokenize("SELECT foo _bar2 NoReFiNe");
  ASSERT_EQ(tokens.size(), 5u);  // 4 + end
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].text, "_bar2");
  EXPECT_TRUE(tokens[3].IsKeyword("NOREFINE"));
  EXPECT_EQ(tokens[4].kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersWithSuffixes) {
  auto tokens = MustTokenize("1 2.5 1e3 1M 0.1m 2K 3B");
  EXPECT_DOUBLE_EQ(tokens[0].number, 1.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1e6);
  EXPECT_DOUBLE_EQ(tokens[4].number, 1e5);
  EXPECT_DOUBLE_EQ(tokens[5].number, 2e3);
  EXPECT_DOUBLE_EQ(tokens[6].number, 3e9);
}

TEST(LexerTest, ScientificWithSign) {
  auto tokens = MustTokenize("1.5e-2 2E+3");
  EXPECT_DOUBLE_EQ(tokens[0].number, 0.015);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2000.0);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = MustTokenize("'hello' 'it''s' ''");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, OperatorsAndSymbols) {
  auto tokens = MustTokenize("<= >= != <> < > = , ( ) . * ;");
  EXPECT_TRUE(tokens[0].IsSymbol("<="));
  EXPECT_TRUE(tokens[1].IsSymbol(">="));
  EXPECT_TRUE(tokens[2].IsSymbol("!="));
  EXPECT_TRUE(tokens[3].IsSymbol("!="));  // <> normalizes
  EXPECT_TRUE(tokens[4].IsSymbol("<"));
  EXPECT_TRUE(tokens[5].IsSymbol(">"));
  EXPECT_TRUE(tokens[6].IsSymbol("="));
  EXPECT_TRUE(tokens[12].IsSymbol(";"));
}

TEST(LexerTest, QualifiedColumnSplitsOnDot) {
  auto tokens = MustTokenize("supplier.s_acctbal");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "supplier");
  EXPECT_TRUE(tokens[1].IsSymbol("."));
  EXPECT_EQ(tokens[2].text, "s_acctbal");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerTest, UnknownCharacterFails) {
  EXPECT_TRUE(Tokenize("a @ b").status().IsParseError());
}

TEST(LexerTest, OffsetsPointIntoInput) {
  auto tokens = MustTokenize("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, SuffixNotConsumedFromIdentifier) {
  // "10Mx" is not a number followed by identifier 'x'; it is an error
  // (identifiers cannot start with a digit) — ensure we do not mis-lex.
  auto tokens = Tokenize("10Mx");
  // The number 10 is lexed without suffix, then "Mx" as identifier.
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 10.0);
  EXPECT_EQ((*tokens)[1].text, "Mx");
}

TEST(LexerTest, EmptyInputYieldsOnlyEnd) {
  auto tokens = MustTokenize("   ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace acquire
