#include <gtest/gtest.h>
#include <cmath>

#include "baselines/binsearch.h"
#include "baselines/topk.h"
#include "baselines/tqgen.h"
#include "core/acquire.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

std::unique_ptr<test_util::SyntheticTask> CountFixture(size_t d, double ratio,
                                                       uint64_t seed = 1) {
  SyntheticOptions options;
  options.d = d;
  options.rows = 3000;
  options.seed = seed;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  if (fixture == nullptr) return nullptr;
  DirectEvaluationLayer layer(&fixture->task);
  auto base = layer.EvaluateQueryValue(std::vector<double>(d, 0.0));
  if (!base.ok() || *base <= 0) return nullptr;
  fixture->task.constraint.target = *base / ratio;
  return fixture;
}

TEST(TopKTest, SelectsExactlyTargetTuples) {
  auto fixture = CountFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  auto result = RunTopK(fixture->task, Norm::L1());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->satisfied);
  EXPECT_DOUBLE_EQ(result->aggregate, fixture->task.constraint.target);
  EXPECT_DOUBLE_EQ(result->error, 0.0);  // COUNT is met by construction
  EXPECT_GT(result->qscore, 0.0);        // some refinement was necessary
}

TEST(TopKTest, EnclosingQueryAdmitsAtLeastK) {
  auto fixture = CountFixture(2, 0.4);
  ASSERT_NE(fixture, nullptr);
  auto result = RunTopK(fixture->task, Norm::L1());
  ASSERT_TRUE(result.ok());
  // The refined query defined by the per-dim max distances admits at least
  // the selected tuples (it is their bounding box).
  DirectEvaluationLayer layer(&fixture->task);
  auto admitted = layer.EvaluateQueryValue(result->pscores);
  ASSERT_TRUE(admitted.ok());
  EXPECT_GE(*admitted, fixture->task.constraint.target);
}

TEST(TopKTest, RefinementIsAtLeastAcquires) {
  // Figure 8c: Top-k's enclosing query refines at least as much as
  // ACQUIRE's answer (usually more: the tuples it picks are skewed).
  auto fixture = CountFixture(3, 0.4);
  ASSERT_NE(fixture, nullptr);
  auto topk = RunTopK(fixture->task, Norm::L1());
  ASSERT_TRUE(topk.ok());
  CachedEvaluationLayer layer(&fixture->task);
  auto acq = RunAcquire(fixture->task, &layer, {});
  ASSERT_TRUE(acq.ok() && acq->satisfied);
  EXPECT_GE(topk->qscore, acq->queries[0].qscore * 0.5);
}

TEST(TopKTest, OnlyCountSupported) {
  SyntheticOptions options;
  options.agg = AggregateKind::kSum;
  options.target = 100.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  EXPECT_TRUE(RunTopK(fixture->task, Norm::L1()).status().IsUnsupported());
}

TEST(TopKTest, InfeasibleTargetReported) {
  auto fixture = CountFixture(1, 0.9);
  ASSERT_NE(fixture, nullptr);
  fixture->task.constraint.target =
      static_cast<double>(fixture->task.relation->num_rows()) * 2.0;
  auto result = RunTopK(fixture->task, Norm::L1());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  EXPECT_GT(result->error, 0.0);
}

TEST(BinSearchTest, ReachesCountTarget) {
  auto fixture = CountFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer layer(&fixture->task);
  auto result = RunBinSearch(fixture->task, &layer, Norm::L1(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied) << "error=" << result->error;
  EXPECT_LE(result->error, 0.05);
  EXPECT_GT(result->queries_executed, 1u);
}

TEST(BinSearchTest, OrderSensitivityProducesDifferentAnswers) {
  // The paper's key instability claim (Figures 8b, 9b): refinement order
  // changes the refined query.
  auto fixture = CountFixture(3, 0.3);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer l1(&fixture->task);
  DirectEvaluationLayer l2(&fixture->task);
  BinSearchOptions forward;
  forward.order = {0, 1, 2};
  BinSearchOptions backward;
  backward.order = {2, 1, 0};
  auto r1 = RunBinSearch(fixture->task, &l1, Norm::L1(), forward);
  auto r2 = RunBinSearch(fixture->task, &l2, Norm::L1(), backward);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Different predicates got refined.
  EXPECT_NE(r1->pscores, r2->pscores);
}

TEST(BinSearchTest, InvalidOrderRejected) {
  auto fixture = CountFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer layer(&fixture->task);
  BinSearchOptions options;
  options.order = {0};  // wrong length
  EXPECT_FALSE(RunBinSearch(fixture->task, &layer, Norm::L1(), options).ok());
}

TEST(BinSearchTest, ExhaustsPredicatesWhenTargetIsFar) {
  auto fixture = CountFixture(2, 0.9);
  ASSERT_NE(fixture, nullptr);
  fixture->task.constraint.target =
      static_cast<double>(fixture->task.relation->num_rows());
  DirectEvaluationLayer layer(&fixture->task);
  auto result = RunBinSearch(fixture->task, &layer, Norm::L1(), {});
  ASSERT_TRUE(result.ok());
  // It must fully refine everything trying to reach the whole relation.
  EXPECT_GT(result->pscores[0], 0.0);
}

TEST(TqGenTest, ConvergesToCountTarget) {
  auto fixture = CountFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer layer(&fixture->task);
  auto result = RunTqGen(fixture->task, &layer, Norm::L1(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->satisfied) << "error=" << result->error;
  EXPECT_LE(result->error, 0.05);
}

TEST(TqGenTest, QueryCountIsExponentialInDimensions) {
  // The defining cost property behind Figure 9a.
  TqGenOptions options;
  options.max_iterations = 2;
  uint64_t executed[3] = {0, 0, 0};
  for (size_t d = 1; d <= 3; ++d) {
    auto fixture = CountFixture(d, 0.99);
    ASSERT_NE(fixture, nullptr);
    // An unreachable target forces all iterations to run.
    fixture->task.constraint.target =
        static_cast<double>(fixture->task.relation->num_rows()) * 2.0;
    DirectEvaluationLayer layer(&fixture->task);
    auto result = RunTqGen(fixture->task, &layer, Norm::L1(), options);
    ASSERT_TRUE(result.ok());
    executed[d - 1] = result->queries_executed;
  }
  EXPECT_EQ(executed[0], 2u * 5u);
  EXPECT_EQ(executed[1], 2u * 25u);
  EXPECT_EQ(executed[2], 2u * 125u);
}

TEST(TqGenTest, InvalidPartitionsRejected) {
  auto fixture = CountFixture(1, 0.5);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer layer(&fixture->task);
  TqGenOptions options;
  options.partitions_per_dim = 1;
  EXPECT_FALSE(RunTqGen(fixture->task, &layer, Norm::L1(), options).ok());
}

TEST(BaselineComparisonTest, AcquireRefinementIsCompetitive) {
  // Headline claim: ACQUIRE's refinement scores beat the baselines'.
  auto fixture = CountFixture(3, 0.4, /*seed=*/7);
  ASSERT_NE(fixture, nullptr);
  CachedEvaluationLayer acq_layer(&fixture->task);
  auto acq = RunAcquire(fixture->task, &acq_layer, {});
  ASSERT_TRUE(acq.ok() && acq->satisfied);
  DirectEvaluationLayer tq_layer(&fixture->task);
  auto tq = RunTqGen(fixture->task, &tq_layer, Norm::L1(), {});
  ASSERT_TRUE(tq.ok());
  // TQGen ignores proximity, so ACQUIRE should not be (much) worse.
  EXPECT_LE(acq->queries[0].qscore, tq->qscore * 1.5 + 1e-9);
}

}  // namespace
}  // namespace acquire
