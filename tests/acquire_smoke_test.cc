// End-to-end smoke tests: generator -> planner -> ACQUIRE on all
// evaluation layers, checking Definition 1's guarantees hold in practice.

#include <gtest/gtest.h>

#include "core/acquire.h"
#include "index/grid_index.h"
#include "workload/tpch_gen.h"
#include "workload/workload.h"

namespace acquire {
namespace {

class AcquireSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions options;
    options.lineitems = 20000;
    options.suppliers = 200;
    options.parts = 400;
    ASSERT_TRUE(GenerateTpch(options, &catalog_).ok());
  }

  Catalog catalog_;
};

TEST_F(AcquireSmokeTest, CountConstraintIsMetWithinDelta) {
  RatioTaskOptions options;
  options.table = "lineitem";
  options.columns = {"l_quantity", "l_extendedprice", "l_shipdays"};
  options.ratio = 0.4;
  auto ratio_task = BuildRatioTask(catalog_, options);
  ASSERT_TRUE(ratio_task.ok()) << ratio_task.status().ToString();
  AcqTask& task = ratio_task->task;
  EXPECT_GT(ratio_task->base_aggregate, 0.0);
  EXPECT_NEAR(task.constraint.target, ratio_task->base_aggregate / 0.4, 1e-6);

  CachedEvaluationLayer layer(&task);
  AcquireOptions opts;
  opts.delta = 0.05;
  auto result = RunAcquire(task, &layer, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->satisfied);
  ASSERT_FALSE(result->queries.empty());
  for (const RefinedQuery& q : result->queries) {
    EXPECT_LE(q.error, opts.delta);
    EXPECT_NEAR(q.aggregate, task.constraint.target,
                opts.delta * task.constraint.target + 1e-9);
  }
  // Answers are sorted by QScore.
  for (size_t i = 1; i < result->queries.size(); ++i) {
    EXPECT_LE(result->queries[i - 1].qscore, result->queries[i].qscore);
  }
}

TEST_F(AcquireSmokeTest, AllEvaluationLayersAgree) {
  RatioTaskOptions options;
  options.table = "lineitem";
  options.columns = {"l_quantity", "l_discount"};
  options.ratio = 0.5;
  auto ratio_task = BuildRatioTask(catalog_, options);
  ASSERT_TRUE(ratio_task.ok()) << ratio_task.status().ToString();
  AcqTask& task = ratio_task->task;

  AcquireOptions opts;
  DirectEvaluationLayer direct(&task);
  CachedEvaluationLayer cached(&task);
  RefinedSpace space(&task, opts.gamma, opts.norm);
  GridIndexEvaluationLayer indexed(&task, space.step());

  auto r1 = RunAcquire(task, &direct, opts);
  auto r2 = RunAcquire(task, &cached, opts);
  auto r3 = RunAcquire(task, &indexed, opts);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  ASSERT_TRUE(r1->satisfied && r2->satisfied && r3->satisfied);
  ASSERT_EQ(r1->queries.size(), r2->queries.size());
  ASSERT_EQ(r1->queries.size(), r3->queries.size());
  for (size_t i = 0; i < r1->queries.size(); ++i) {
    EXPECT_EQ(r1->queries[i].coord, r2->queries[i].coord);
    EXPECT_EQ(r1->queries[i].coord, r3->queries[i].coord);
    EXPECT_DOUBLE_EQ(r1->queries[i].aggregate, r2->queries[i].aggregate);
    EXPECT_DOUBLE_EQ(r1->queries[i].aggregate, r3->queries[i].aggregate);
  }
}

TEST_F(AcquireSmokeTest, IncrementalMatchesNaiveReexecution) {
  RatioTaskOptions options;
  options.table = "lineitem";
  options.columns = {"l_quantity", "l_extendedprice"};
  options.ratio = 0.3;
  auto ratio_task = BuildRatioTask(catalog_, options);
  ASSERT_TRUE(ratio_task.ok());
  AcqTask& task = ratio_task->task;

  CachedEvaluationLayer layer1(&task);
  CachedEvaluationLayer layer2(&task);
  AcquireOptions incremental;
  AcquireOptions naive;
  naive.use_incremental = false;

  auto r1 = RunAcquire(task, &layer1, incremental);
  auto r2 = RunAcquire(task, &layer2, naive);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->satisfied, r2->satisfied);
  ASSERT_EQ(r1->queries.size(), r2->queries.size());
  for (size_t i = 0; i < r1->queries.size(); ++i) {
    EXPECT_EQ(r1->queries[i].coord, r2->queries[i].coord);
    EXPECT_DOUBLE_EQ(r1->queries[i].aggregate, r2->queries[i].aggregate);
  }
  // The incremental path executes exactly one (cheap) cell query per
  // explored grid query.
  EXPECT_EQ(r1->cell_queries, r1->queries_explored);
  EXPECT_EQ(r2->cell_queries, 0u);
}

}  // namespace
}  // namespace acquire
