#include "sql/parser.h"

#include <gtest/gtest.h>

namespace acquire {
namespace {

AstQuery MustParse(const std::string& sql) {
  auto q = ParseAcqSql(sql);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return q.ok() ? q.value() : AstQuery{};
}

TEST(ParserTest, MinimalQuery) {
  AstQuery q = MustParse("SELECT * FROM users");
  EXPECT_EQ(q.tables, std::vector<std::string>{"users"});
  EXPECT_FALSE(q.has_constraint);
  EXPECT_TRUE(q.predicates.empty());
}

TEST(ParserTest, ConstraintClauseCountStar) {
  AstQuery q = MustParse("SELECT * FROM users CONSTRAINT COUNT(*) = 1M");
  ASSERT_TRUE(q.has_constraint);
  EXPECT_EQ(q.agg_function, "COUNT");
  EXPECT_EQ(q.agg_column, "");
  EXPECT_EQ(q.constraint_op, CompareOp::kEq);
  EXPECT_DOUBLE_EQ(q.target, 1e6);
}

TEST(ParserTest, ConstraintClauseSumColumn) {
  AstQuery q = MustParse(
      "SELECT * FROM partsupp CONSTRAINT SUM(ps_availqty) >= 0.1M");
  ASSERT_TRUE(q.has_constraint);
  EXPECT_EQ(q.agg_function, "SUM");
  EXPECT_EQ(q.agg_column, "ps_availqty");
  EXPECT_EQ(q.constraint_op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(q.target, 1e5);
}

TEST(ParserTest, PredicatesWithNorefine) {
  AstQuery q = MustParse(
      "SELECT * FROM t WHERE a < 10 AND b >= 2 NOREFINE AND c = 'x' NOREFINE");
  ASSERT_EQ(q.predicates.size(), 3u);
  EXPECT_FALSE(q.predicates[0].norefine);
  EXPECT_TRUE(q.predicates[1].norefine);
  EXPECT_TRUE(q.predicates[2].norefine);
  EXPECT_EQ(q.predicates[0].op, CompareOp::kLt);
  EXPECT_EQ(q.predicates[2].rhs.literal.text, "x");
}

TEST(ParserTest, ChainedRangeFromQ1) {
  AstQuery q = MustParse("SELECT * FROM users WHERE 25 <= age <= 35");
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_EQ(q.predicates[0].kind, AstPredicate::Kind::kBetween);
  EXPECT_EQ(q.predicates[0].column, "age");
  EXPECT_DOUBLE_EQ(q.predicates[0].lo, 25.0);
  EXPECT_DOUBLE_EQ(q.predicates[0].hi, 35.0);
}

TEST(ParserTest, DescendingChainNormalizes) {
  AstQuery q = MustParse("SELECT * FROM users WHERE 35 >= age >= 25");
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_DOUBLE_EQ(q.predicates[0].lo, 25.0);
  EXPECT_DOUBLE_EQ(q.predicates[0].hi, 35.0);
}

TEST(ParserTest, BetweenKeyword) {
  AstQuery q =
      MustParse("SELECT * FROM t WHERE x BETWEEN 1 AND 5 NOREFINE AND y < 2");
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_EQ(q.predicates[0].kind, AstPredicate::Kind::kBetween);
  EXPECT_TRUE(q.predicates[0].norefine);
  EXPECT_EQ(q.predicates[1].kind, AstPredicate::Kind::kComparison);
}

TEST(ParserTest, InList) {
  AstQuery q = MustParse(
      "SELECT * FROM users WHERE location IN ('Boston', 'Austin') NOREFINE");
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_EQ(q.predicates[0].kind, AstPredicate::Kind::kIn);
  ASSERT_EQ(q.predicates[0].in_list.size(), 2u);
  EXPECT_EQ(q.predicates[0].in_list[1].text, "Austin");
}

TEST(ParserTest, ParenthesizedPredicates) {
  AstQuery q = MustParse("SELECT * FROM t WHERE (a < 10) AND (b > 2) NOREFINE");
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_TRUE(q.predicates[1].norefine);
}

TEST(ParserTest, QualifiedColumnsAndJoins) {
  AstQuery q = MustParse(
      "SELECT * FROM a, b WHERE a.x = b.x NOREFINE AND b.y < 50");
  EXPECT_EQ(q.tables, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_EQ(q.predicates[0].lhs.column, "a.x");
  EXPECT_EQ(q.predicates[0].rhs.column, "b.x");
}

TEST(ParserTest, FullPaperQueryQ2Prime) {
  AstQuery q = MustParse(R"sql(
      SELECT * FROM supplier, part, partsupp
      CONSTRAINT SUM(ps_availqty) >= 0.1M
      WHERE (s_suppkey = ps_suppkey) NOREFINE AND
      (p_partkey = ps_partkey) NOREFINE AND
      (p_retailprice < 1000) AND (s_acctbal < 2000)
      AND (p_size = 10) NOREFINE AND
      (p_type = 'SMALL BURNISHED STEEL') NOREFINE;)sql");
  EXPECT_EQ(q.tables.size(), 3u);
  EXPECT_TRUE(q.has_constraint);
  EXPECT_EQ(q.predicates.size(), 6u);
  EXPECT_TRUE(q.predicates[0].norefine);
  EXPECT_FALSE(q.predicates[2].norefine);
  EXPECT_EQ(q.predicates[5].rhs.literal.text, "SMALL BURNISHED STEEL");
}

TEST(ParserTest, LiteralOnLeftSide) {
  AstQuery q = MustParse("SELECT * FROM t WHERE 10 > a");
  ASSERT_EQ(q.predicates.size(), 1u);
  EXPECT_FALSE(q.predicates[0].lhs.is_column());
  EXPECT_TRUE(q.predicates[0].rhs.is_column());
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseAcqSql("SELECT a FROM t").ok());          // non-* select
  EXPECT_FALSE(ParseAcqSql("SELECT * FROM").ok());            // missing table
  EXPECT_FALSE(ParseAcqSql("SELECT * FROM t WHERE").ok());    // empty where
  EXPECT_FALSE(ParseAcqSql("SELECT * FROM t WHERE a <").ok());
  EXPECT_FALSE(ParseAcqSql("FROM t").ok());
  EXPECT_FALSE(ParseAcqSql("SELECT * FROM t extra").ok());    // trailing
  EXPECT_FALSE(
      ParseAcqSql("SELECT * FROM t CONSTRAINT COUNT(*) = ").ok());
  EXPECT_FALSE(
      ParseAcqSql("SELECT * FROM t WHERE x BETWEEN 'a' AND 5").ok());
}

TEST(ParserTest, MalformedChainedRangeRejected) {
  EXPECT_FALSE(ParseAcqSql("SELECT * FROM t WHERE 25 <= age >= 35").ok());
  EXPECT_FALSE(ParseAcqSql("SELECT * FROM t WHERE a <= b <= c").ok());
}

TEST(ParserTest, SemicolonOptional) {
  EXPECT_TRUE(ParseAcqSql("SELECT * FROM t;").ok());
  EXPECT_TRUE(ParseAcqSql("SELECT * FROM t").ok());
}

}  // namespace
}  // namespace acquire
