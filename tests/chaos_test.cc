// Chaos harness for the hardened serving path: concurrent clients hammer a
// live AcqServer while every fault-injection site fires randomly (p=0.05).
// The contract under chaos is graceful degradation — no crash, no hang, and
// every byte that does come back is a well-formed protocol response. With
// the failpoints disarmed again, a served run must be bit-identical to a
// direct RunAcquire/ProcessAcq of the same SQL.
//
// ACQ_CHAOS_ITERS overrides the per-client iteration count (CI's ASan job
// runs the default; bump it for soak testing).

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "core/processor.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/binder.h"
#include "sql/printer.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

constexpr int kClients = 4;

int IterationsPerClient() {
  if (const char* env = std::getenv("ACQ_CHAOS_ITERS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 25;  // 4 clients x 25 = 100 chaos iterations
}

Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    UsersOptions options;
    options.users = 2000;
    EXPECT_TRUE(GenerateUsers(options, c).ok());
    return c;
  }();
  return catalog;
}

// Small, fast ACQs (distinct per client/iteration) so one chaos run cycles
// through many full SUBMIT->report round trips. Targets sit well above the
// original aggregates, so every run actually expands — a few layers drain
// and streaming clients see PROGRESS frames.
std::string ChaosSql(int client, int iter) {
  return StringFormat(
      "SELECT * FROM users CONSTRAINT COUNT(*) >= %d "
      "WHERE age <= %d AND income >= %d",
      700 + 20 * client + 3 * (iter % 7), 24 + (client + iter) % 6,
      55000 + 500 * client);
}

// A response is "well-formed" when it parses (CallWithRetry already parsed
// it) and carries the protocol invariants for its ok flag.
void ExpectWellFormed(const JsonValue& response) {
  ASSERT_TRUE(response.is_object()) << response.Dump();
  if (response.GetBool("ok", false)) {
    const std::string state = response.GetString("state");
    EXPECT_TRUE(state == "done" || state == "cancelled" ||
                state == "failed" || state == "queued" || state == "running")
        << response.Dump();
    if (state == "done") {
      const JsonValue* report = response.Get("report");
      ASSERT_NE(report, nullptr) << response.Dump();
      EXPECT_FALSE(report->GetString("termination").empty());
    }
  } else {
    EXPECT_FALSE(response.GetString("code").empty()) << response.Dump();
    EXPECT_FALSE(response.GetString("error").empty()) << response.Dump();
  }
}

TEST(ChaosTest, ConcurrentClientsSurviveRandomFaults) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();

  ServerOptions options;
  options.max_running = 2;
  options.max_queued = 8;
  options.max_line_bytes = 1 << 16;
  options.idle_timeout_ms = 10000.0;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());

  // Every instrumented seam, all at once.
  ASSERT_TRUE(registry
                  .ConfigureFromSpec(
                      "server.recv=p:0.05;server.send=p:0.05;"
                      "server.parse=p:0.05;server.admit=p:0.05;"
                      "server.pool_enqueue=p:0.05;"
                      "server.progress_emit=p:0.05;"
                      "explore.arena_grow=p:0.05;"
                      "explore.parallel_merge=p:0.05;"
                      "expand.layer_alloc=p:0.05;"
                      "exec.parallel_for=p:0.05;"
                      "index.batch_eval=p:0.05;"
                      "index.parallel_prepare=p:0.05;"
                      "index.delta_merge=p:0.05")
                  .ok());

  const int iters = IterationsPerClient();
  std::atomic<int> well_formed{0};
  std::atomic<int> transport_gave_up{0};
  std::atomic<int> frames_seen{0};
  std::atomic<int> torn_frames{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      RetryOptions retry;
      retry.max_attempts = 6;
      retry.initial_backoff_ms = 1.0;
      retry.max_backoff_ms = 20.0;
      // Odd clients stream PROGRESS frames (with server.progress_emit
      // randomly dropping them); even clients use the plain lockstep
      // path, so both line kinds mix on the same server.
      const bool streaming = (c % 2) == 1;
      for (int i = 0; i < iters; ++i) {
        JsonValue request = JsonValue::Object();
        request.Set("cmd", JsonValue::Str("SUBMIT"));
        request.Set("sql", JsonValue::Str(ChaosSql(c, i)));
        request.Set("wait", JsonValue::Bool(true));
        request.Set("timeout_ms", JsonValue::Number(30000.0));
        if (streaming) {
          JsonValue progress = JsonValue::Object();
          progress.Set("interval_ms", JsonValue::Number(0.0));
          request.Set("progress", progress);
        }
        Result<JsonValue> response =
            streaming ? client.CallStreamingWithRetry(
                            request,
                            [&](const JsonValue& frame) {
                              // Every frame that reaches the client must be
                              // whole: parsed (CallStreaming rejects torn
                              // lines) and schema-complete.
                              frames_seen.fetch_add(1,
                                                    std::memory_order_relaxed);
                              if (!frame.GetBool("progress", false) ||
                                  frame.GetString("id").empty() ||
                                  frame.GetNumber("layers_drained", -1.0) <
                                      1.0) {
                                torn_frames.fetch_add(
                                    1, std::memory_order_relaxed);
                              }
                            },
                            retry)
                      : client.CallWithRetry(request, retry);
        if (!response.ok()) {
          // Every attempt lost to an injected transport fault: acceptable
          // under chaos (the server must still be alive; verified below).
          transport_gave_up.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ExpectWellFormed(*response);
        well_formed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  // No torn or interleaved frames reached any client, and the streaming
  // mix actually streamed.
  EXPECT_EQ(torn_frames.load(), 0);
  EXPECT_GT(frames_seen.load(), 0);

  // The chaos actually exercised the sites, and most calls still got a
  // well-formed answer through the retry layer.
  EXPECT_GT(registry.TotalHits(), 0u);
  EXPECT_GT(well_formed.load(), 0);

  // With the faults disarmed the server must serve normally again,
  // bit-identical to a direct run of the same SQL.
  registry.DisarmAll();
  const std::string sql = ChaosSql(0, 0);
  Binder binder(SharedCatalog());
  Result<AcqTask> planned = binder.PlanSql(sql);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  auto task = std::make_shared<AcqTask>(std::move(*planned));
  Result<AcqOutcome> direct = ProcessAcq(*task, AcquireOptions{});
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  LineClient verifier;
  ASSERT_TRUE(verifier.Connect("127.0.0.1", server.port()).ok());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(sql));
  request.Set("wait", JsonValue::Bool(true));
  Result<JsonValue> served = verifier.CallWithRetry(request);
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  ASSERT_TRUE(served->GetBool("ok", false)) << served->Dump();
  ASSERT_EQ(served->GetString("state"), "done") << served->Dump();
  const JsonValue* report = served->Get("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->GetString("mode"), AcqModeToString(direct->mode));
  EXPECT_EQ(report->GetString("termination"),
            RunTerminationToString(direct->result.termination));
  EXPECT_EQ(report->GetNumber("original_aggregate", -1.0),
            direct->original_aggregate);
  EXPECT_EQ(report->GetNumber("queries_explored", -1.0),
            static_cast<double>(direct->result.queries_explored));
  const AcqTask& display_task = direct->mode == AcqMode::kContracted
                                    ? *direct->contraction_task
                                    : *task;
  const JsonValue* answers = report->Get("answers");
  ASSERT_NE(answers, nullptr);
  ASSERT_TRUE(answers->is_array());
  ASSERT_EQ(answers->size(), direct->result.queries.size());
  for (size_t i = 0; i < direct->result.queries.size(); ++i) {
    const RefinedQuery& expected = direct->result.queries[i];
    const JsonValue& got = answers->AsArray()[i];
    EXPECT_EQ(got.GetString("sql"), RenderRefinedSql(display_task, expected));
    EXPECT_EQ(got.GetNumber("aggregate", -1.0), expected.aggregate);
    EXPECT_EQ(got.GetNumber("qscore", -1.0), expected.qscore);
    EXPECT_EQ(got.GetNumber("error", -1.0), expected.error);
  }

  verifier.Close();
  server.Stop();

  // Nothing leaked: all sessions drained (Stop shut the manager down) and
  // the transport-give-up tally stayed a small minority of the calls.
  EXPECT_EQ(server.sessions().num_running(), 0u);
  EXPECT_LE(transport_gave_up.load(), kClients * iters / 2);
}

TEST(ChaosTest, MemoryBudgetDegradesToBestSoFarUnderChaos) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  FailpointRegistry::Global().DisarmAll();
  AcqServer server(SharedCatalog());
  // Unreachable constraint + tiny budget: the run must stop gracefully
  // with a best-so-far resource_exhausted report.
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= "
                         "1000000000 WHERE age <= 20 AND income <= 30000 "
                         "AND engagement <= 1.0 AND "
                         "account_age_days <= 100"));
  request.Set("stall_limit", JsonValue::Number(1e15));
  request.Set("divergence_patience", JsonValue::Number(1000000));
  request.Set("max_explored", JsonValue::Number(4e9));
  request.Set("timeout_ms", JsonValue::Number(30000.0));
  request.Set("memory_budget_bytes", JsonValue::Number(128 * 1024));
  request.Set("wait", JsonValue::Bool(true));
  Result<JsonValue> parsed =
      JsonValue::Parse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->GetBool("ok", false)) << parsed->Dump();
  EXPECT_EQ(parsed->GetString("state"), "done");
  const JsonValue* report = parsed->Get("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->GetString("termination"), "resource_exhausted");
  EXPECT_FALSE(report->GetBool("satisfied", true));
  const JsonValue* best = report->Get("best");
  ASSERT_NE(best, nullptr);
  EXPECT_FALSE(best->GetString("predicates").empty());
}

// One failpoint hit must degrade exactly one run, not poison later ones:
// a count:1 arena fault fails the first run resource_exhausted, and the
// identical resubmission completes normally.
TEST(ChaosTest, SingleInjectedArenaFaultDoesNotPoisonLaterRuns) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  AcqServer server(SharedCatalog());
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  // Unreachable target over a small d=2 grid: the clean run finishes the
  // exhaustive search quickly (termination "completed"), while the faulted
  // run has many layers left when the injected exhaustion latches.
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= "
                         "1000000 WHERE age <= 25 AND income >= 50000"));
  // memory_budget_bytes wires a budget into the run so the arena site is
  // live; the huge limit alone would never latch.
  request.Set("memory_budget_bytes", JsonValue::Number(1e12));
  request.Set("wait", JsonValue::Bool(true));

  ASSERT_TRUE(registry.Configure("explore.arena_grow", "count:1").ok());
  Result<JsonValue> faulted =
      JsonValue::Parse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(faulted.ok());
  ASSERT_TRUE(faulted->GetBool("ok", false)) << faulted->Dump();
  const JsonValue* report = faulted->Get("report");
  ASSERT_NE(report, nullptr) << faulted->Dump();
  EXPECT_EQ(report->GetString("termination"), "resource_exhausted");

  Result<JsonValue> clean =
      JsonValue::Parse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(clean->GetBool("ok", false)) << clean->Dump();
  const JsonValue* clean_report = clean->Get("report");
  ASSERT_NE(clean_report, nullptr) << clean->Dump();
  EXPECT_EQ(clean_report->GetString("termination"), "completed");
}

// The strategy failpoints (serial ParallelFor fallback, generic batch
// evaluation fallback, per-layer sequential merge fallback) change only how
// work is executed, never what it computes: a run with them firing half the
// time is bit-identical to a clean run.
TEST(ChaosTest, StrategyFailpointsNeverChangeResults) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  Binder binder(SharedCatalog());
  Result<AcqTask> planned = binder.PlanSql(ChaosSql(2, 3));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  Result<AcqOutcome> clean = ProcessAcq(*planned, AcquireOptions{});
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  ASSERT_TRUE(registry
                  .ConfigureFromSpec(
                      "exec.parallel_for=p:0.5;index.batch_eval=p:0.5;"
                      "explore.parallel_merge=p:0.5;"
                      "index.parallel_prepare=p:0.5;"
                      "index.delta_merge=p:0.5")
                  .ok());
  Result<AcqOutcome> degraded = ProcessAcq(*planned, AcquireOptions{});
  registry.DisarmAll();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  EXPECT_EQ(degraded->result.termination, clean->result.termination);
  EXPECT_EQ(degraded->result.satisfied, clean->result.satisfied);
  EXPECT_EQ(degraded->result.queries_explored, clean->result.queries_explored);
  ASSERT_EQ(degraded->result.queries.size(), clean->result.queries.size());
  for (size_t i = 0; i < clean->result.queries.size(); ++i) {
    EXPECT_EQ(degraded->result.queries[i].aggregate,
              clean->result.queries[i].aggregate);
    EXPECT_EQ(degraded->result.queries[i].qscore,
              clean->result.queries[i].qscore);
    EXPECT_EQ(degraded->result.queries[i].error,
              clean->result.queries[i].error);
  }
}

std::string DumpWithoutId(const JsonValue& response) {
  JsonValue out = JsonValue::Object();
  for (const auto& [key, value] : response.Members()) {
    if (key != "id") out.Set(key, JsonValue(value));
  }
  return out.Dump();
}

double CacheStat(AcqServer* server, const char* field) {
  Result<JsonValue> stats =
      JsonValue::Parse(server->HandleRequestLine("{\"cmd\":\"STATS\"}"));
  EXPECT_TRUE(stats.ok());
  const JsonValue* counters = stats.ok() ? stats->Get("stats") : nullptr;
  return counters != nullptr ? counters->GetNumber(field, -1.0) : -1.0;
}

// Chaos with the result cache in the hot path: clients resubmit a small set
// of tasks (so hits and in-flight joins actually occur) while every fault
// site fires at p=0.05, including injected run failures. The cache must
// never absorb a degraded run — after the chaos, a cleared cache re-seeded
// by a fresh run serves the repeat byte-identically.
TEST(ChaosTest, CacheStaysBitExactUnderChaos) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();

  ServerOptions options;
  options.max_running = 2;
  options.max_queued = 8;
  options.cache_bytes = 32ull << 20;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(registry
                  .ConfigureFromSpec(
                      "server.recv=p:0.05;server.send=p:0.05;"
                      "server.parse=p:0.05;server.admit=p:0.05;"
                      "server.pool_enqueue=p:0.05;server.run=p:0.05;"
                      "explore.arena_grow=p:0.05;"
                      "explore.parallel_merge=p:0.05;"
                      "expand.layer_alloc=p:0.05;"
                      "exec.parallel_for=p:0.05;"
                      "index.batch_eval=p:0.05;"
                      "index.parallel_prepare=p:0.05;"
                      "index.delta_merge=p:0.05")
                  .ok());

  const int iters = IterationsPerClient();
  std::atomic<int> well_formed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      RetryOptions retry;
      retry.max_attempts = 6;
      retry.initial_backoff_ms = 1.0;
      retry.max_backoff_ms = 20.0;
      for (int i = 0; i < iters; ++i) {
        JsonValue request = JsonValue::Object();
        request.Set("cmd", JsonValue::Str("SUBMIT"));
        // Only 3 distinct tasks across all clients: repeats exercise cache
        // hits and concurrent duplicates exercise in-flight joins.
        request.Set("sql", JsonValue::Str(ChaosSql(i % 3, 0)));
        request.Set("wait", JsonValue::Bool(true));
        request.Set("timeout_ms", JsonValue::Number(30000.0));
        Result<JsonValue> response = client.CallWithRetry(request, retry);
        if (!response.ok()) continue;
        ExpectWellFormed(*response);
        well_formed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_GT(registry.TotalHits(), 0u);
  EXPECT_GT(well_formed.load(), 0);
  registry.DisarmAll();

  // Post-chaos differential: drop whatever the chaos cached, seed each task
  // with a clean fresh run, and require the repeat to be byte-identical.
  Result<JsonValue> clear_reply =
      JsonValue::Parse(server.HandleRequestLine("{\"cmd\":\"CACHE\",\"clear\":true}"));
  ASSERT_TRUE(clear_reply.ok() && clear_reply->GetBool("ok", false));
  for (int t = 0; t < 3; ++t) {
    JsonValue request = JsonValue::Object();
    request.Set("cmd", JsonValue::Str("SUBMIT"));
    request.Set("sql", JsonValue::Str(ChaosSql(t, 0)));
    request.Set("wait", JsonValue::Bool(true));
    const std::string line = request.Dump();
    Result<JsonValue> fresh = JsonValue::Parse(server.HandleRequestLine(line));
    ASSERT_TRUE(fresh.ok());
    ASSERT_EQ(fresh->GetString("state"), "done") << fresh->Dump();
    const double hits_before = CacheStat(&server, "cache_hits");
    Result<JsonValue> cached = JsonValue::Parse(server.HandleRequestLine(line));
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(DumpWithoutId(*cached), DumpWithoutId(*fresh));
    EXPECT_EQ(CacheStat(&server, "cache_hits"), hits_before + 1);
  }
  server.Stop();
  EXPECT_EQ(server.sessions().num_running(), 0u);
}

// Degraded runs must never seed the cache: an injected run failure and a
// max_explored truncation both leave the cache empty, while the following
// clean completed run is inserted.
TEST(ChaosTest, FailedOrTruncatedRunsAreNeverCached) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  AcqServer server(SharedCatalog(), options);

  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(ChaosSql(1, 1)));
  request.Set("wait", JsonValue::Bool(true));

  // Injected run failure -> state failed, nothing inserted.
  ASSERT_TRUE(registry.Configure("server.run", "count:1").ok());
  Result<JsonValue> failed =
      JsonValue::Parse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(failed->GetString("state"), "failed") << failed->Dump();
  EXPECT_EQ(CacheStat(&server, "cache_entries"), 0.0);

  // Truncated (max_explored) run -> done, but still not inserted.
  JsonValue truncated_request = JsonValue::Object();
  truncated_request.Set("cmd", JsonValue::Str("SUBMIT"));
  truncated_request.Set("sql", JsonValue::Str(
                                   "SELECT * FROM users CONSTRAINT "
                                   "COUNT(*) >= 1000000000 WHERE age <= 25 "
                                   "AND income >= 50000"));
  truncated_request.Set("max_explored", JsonValue::Number(1));
  truncated_request.Set("wait", JsonValue::Bool(true));
  Result<JsonValue> truncated =
      JsonValue::Parse(server.HandleRequestLine(truncated_request.Dump()));
  ASSERT_TRUE(truncated.ok());
  ASSERT_EQ(truncated->GetString("state"), "done") << truncated->Dump();
  EXPECT_EQ(truncated->Get("report")->GetString("termination"), "truncated");
  EXPECT_EQ(CacheStat(&server, "cache_entries"), 0.0);

  // The clean rerun of the originally-failed task is cached.
  Result<JsonValue> clean =
      JsonValue::Parse(server.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->GetString("state"), "done") << clean->Dump();
  EXPECT_EQ(CacheStat(&server, "cache_entries"), 1.0);
}

// Administrative verbs (ATTACH/DETACH/APPEND/...) carry no session state;
// their well-formedness contract is just the ok/code/error envelope.
void ExpectWellFormedVerb(const JsonValue& response) {
  ASSERT_TRUE(response.is_object()) << response.Dump();
  if (!response.GetBool("ok", false)) {
    EXPECT_FALSE(response.GetString("code").empty()) << response.Dump();
    EXPECT_FALSE(response.GetString("error").empty()) << response.Dump();
  }
}

// Multi-tenant chaos: three long-lived tenants (default + two attached)
// serve concurrent SUBMITs and live APPENDs while a churn thread
// attaches/detaches a fourth tenant in a loop and the tenant-admission
// failpoint randomly rejects. The contract: every reply is well-formed
// (rejections carry ResourceExhausted/Unavailable/NotFound codes), the
// server survives, and afterwards the surviving attached tenants — whose
// catalogs were never appended to — still serve bit-identical to a direct
// ProcessAcq over an identically-generated catalog.
TEST(ChaosTest, MultiTenantChurnSurvivesAndStaysBitExact) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();

  // Private mutable catalog: the default tenant absorbs live APPENDs, so
  // the suite-shared read-only catalog must not be used here.
  Catalog mutable_catalog;
  {
    UsersOptions options;
    options.users = 2000;
    ASSERT_TRUE(GenerateUsers(options, &mutable_catalog).ok());
  }
  ServerOptions options;
  options.max_running = 2;
  options.max_queued = 8;
  AcqServer server(&mutable_catalog, options);
  ASSERT_TRUE(server.Start().ok());

  auto attach = [&server](const std::string& id, size_t rows) {
    JsonValue request = JsonValue::Object();
    request.Set("cmd", JsonValue::Str("ATTACH"));
    request.Set("tenant", JsonValue::Str(id));
    request.Set("gen", JsonValue::Str("users"));
    request.Set("rows", JsonValue::Number(static_cast<double>(rows)));
    return JsonValue::Parse(server.HandleRequestLine(request.Dump()));
  };
  Result<JsonValue> t1 = attach("t1", 1500);
  ASSERT_TRUE(t1.ok() && t1->GetBool("ok", false)) << t1.ok();
  Result<JsonValue> t2 = attach("t2", 1000);
  ASSERT_TRUE(t2.ok() && t2->GetBool("ok", false)) << t2.ok();

  ASSERT_TRUE(
      registry.Configure("server.tenant_admission", "p:0.1").ok());

  const int iters = IterationsPerClient();
  const char* targets[] = {"", "t1", "t2"};
  std::atomic<int> well_formed{0};
  std::atomic<int> admission_rejected{0};
  std::vector<std::thread> workers;
  for (int c = 0; c < 3; ++c) {
    workers.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      RetryOptions retry;
      retry.max_attempts = 4;
      retry.initial_backoff_ms = 1.0;
      retry.max_backoff_ms = 20.0;
      for (int i = 0; i < iters; ++i) {
        JsonValue request = JsonValue::Object();
        request.Set("cmd", JsonValue::Str("SUBMIT"));
        request.Set("sql", JsonValue::Str(ChaosSql(c, i)));
        request.Set("wait", JsonValue::Bool(true));
        request.Set("timeout_ms", JsonValue::Number(30000.0));
        const char* tenant = targets[(c + i) % 3];
        if (tenant[0] != '\0') {
          request.Set("tenant", JsonValue::Str(tenant));
        }
        Result<JsonValue> response = client.CallWithRetry(request, retry);
        if (!response.ok()) continue;
        ExpectWellFormed(*response);
        if (!response->GetBool("ok", false)) {
          const std::string code = response->GetString("code");
          EXPECT_TRUE(code == "ResourceExhausted" || code == "Unavailable" ||
                      code == "NotFound")
              << response->Dump();
          if (code == "ResourceExhausted") {
            admission_rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
        well_formed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Live ingestion into the default tenant only: the attached tenants'
  // catalogs must stay pristine for the bit-identity check below.
  workers.emplace_back([&] {
    LineClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return;
    for (int i = 0; i < iters; ++i) {
      JsonValue request = JsonValue::Object();
      request.Set("cmd", JsonValue::Str("APPEND"));
      request.Set("table", JsonValue::Str("users"));
      JsonValue rows = JsonValue::Array();
      JsonValue row = JsonValue::Array();
      row.Append(JsonValue::Number(1000000 + i));  // user_id
      row.Append(JsonValue::Number(30));           // age
      row.Append(JsonValue::Number(60000.0));      // income
      row.Append(JsonValue::Number(0.5));          // engagement
      row.Append(JsonValue::Number(100));          // account_age_days
      row.Append(JsonValue::Str("chaosville"));    // city
      row.Append(JsonValue::Str("x"));             // gender
      row.Append(JsonValue::Str("phd"));           // education
      row.Append(JsonValue::Str("chaos"));         // interest
      rows.Append(std::move(row));
      request.Set("rows", std::move(rows));
      Result<JsonValue> response = client.CallWithRetry(request);
      if (response.ok()) ExpectWellFormedVerb(*response);
    }
  });
  // Attach/detach churn: a short-lived tenant cycles while the others
  // serve; SUBMITs racing its DETACH may see NotFound/Unavailable.
  workers.emplace_back([&] {
    LineClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) return;
    for (int i = 0; i < iters / 2 + 1; ++i) {
      Result<JsonValue> attached = attach("churn", 300);
      if (attached.ok()) ExpectWellFormedVerb(*attached);
      JsonValue submit = JsonValue::Object();
      submit.Set("cmd", JsonValue::Str("SUBMIT"));
      submit.Set("sql", JsonValue::Str(ChaosSql(1, i)));
      submit.Set("tenant", JsonValue::Str("churn"));
      submit.Set("wait", JsonValue::Bool(true));
      submit.Set("timeout_ms", JsonValue::Number(30000.0));
      Result<JsonValue> ran = client.Call(submit);
      if (ran.ok()) ExpectWellFormed(*ran);
      Result<JsonValue> detached = JsonValue::Parse(server.HandleRequestLine(
          "{\"cmd\":\"DETACH\",\"tenant\":\"churn\"}"));
      if (detached.ok()) ExpectWellFormedVerb(*detached);
    }
  });
  for (std::thread& worker : workers) worker.join();
  registry.DisarmAll();
  EXPECT_GT(well_formed.load(), 0);

  // Survivor bit-identity: each attached tenant still answers exactly like
  // a direct run over a catalog generated with its ATTACH parameters.
  struct Survivor {
    const char* tenant;
    size_t rows;
  };
  for (const Survivor& survivor : {Survivor{"t1", 1500},
                                   Survivor{"t2", 1000}}) {
    Catalog replica;
    UsersOptions gen;
    gen.users = survivor.rows;
    ASSERT_TRUE(GenerateUsers(gen, &replica).ok());
    const std::string sql = ChaosSql(0, 0);
    Binder binder(&replica);
    Result<AcqTask> planned = binder.PlanSql(sql);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    auto task = std::make_shared<AcqTask>(std::move(*planned));
    Result<AcqOutcome> direct = ProcessAcq(*task, AcquireOptions{});
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();

    JsonValue request = JsonValue::Object();
    request.Set("cmd", JsonValue::Str("SUBMIT"));
    request.Set("sql", JsonValue::Str(sql));
    request.Set("tenant", JsonValue::Str(survivor.tenant));
    request.Set("wait", JsonValue::Bool(true));
    JsonValue served =
        *JsonValue::Parse(server.HandleRequestLine(request.Dump()));
    ASSERT_TRUE(served.GetBool("ok", false)) << served.Dump();
    ASSERT_EQ(served.GetString("state"), "done") << served.Dump();
    const JsonValue* report = served.Get("report");
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->GetString("mode"), AcqModeToString(direct->mode));
    EXPECT_EQ(report->GetString("termination"),
              RunTerminationToString(direct->result.termination));
    EXPECT_EQ(report->GetNumber("original_aggregate", -1.0),
              direct->original_aggregate);
    const AcqTask& display_task = direct->mode == AcqMode::kContracted
                                      ? *direct->contraction_task
                                      : *task;
    const JsonValue* answers = report->Get("answers");
    ASSERT_NE(answers, nullptr);
    ASSERT_EQ(answers->size(), direct->result.queries.size());
    for (size_t i = 0; i < direct->result.queries.size(); ++i) {
      const RefinedQuery& expected = direct->result.queries[i];
      const JsonValue& got = answers->AsArray()[i];
      EXPECT_EQ(got.GetString("sql"),
                RenderRefinedSql(display_task, expected));
      EXPECT_EQ(got.GetNumber("aggregate", -1.0), expected.aggregate);
      EXPECT_EQ(got.GetNumber("qscore", -1.0), expected.qscore);
      EXPECT_EQ(got.GetNumber("error", -1.0), expected.error);
    }
  }

  server.Stop();
  for (const TenantPtr& tenant : server.tenants().List()) {
    EXPECT_EQ(tenant->manager().num_running(), 0u) << tenant->id();
  }
}

}  // namespace
}  // namespace acquire
