#include "core/contract.h"

#include <gtest/gtest.h>
#include <cmath>

#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

// Fixture whose original query overshoots: bound 70 over [0, 100] keeps
// ~70% per dim; target asks for less.
std::unique_ptr<test_util::SyntheticTask> OvershootFixture(size_t d,
                                                           double keep) {
  SyntheticOptions options;
  options.d = d;
  options.rows = 3000;
  options.bound = 70.0;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  if (fixture == nullptr) return nullptr;
  DirectEvaluationLayer probe(&fixture->task);
  double base =
      probe.EvaluateQueryValue(std::vector<double>(d, 0.0)).value_or(0.0);
  fixture->task.constraint.target = base * keep;
  return fixture;
}

TEST(ContractionDimTest, NeededPScoreMeasuresSlackComplement) {
  auto t = std::make_shared<Table>("t", Schema({{"x", DataType::kDouble, ""}}));
  for (double v : {10.0, 50.0, 70.0, 80.0}) {
    ASSERT_TRUE(t->AppendRow({Value(v)}).ok());
  }
  // Original: x <= 70 with width 70 (domain min 0).
  ContractionDim dim("x", /*is_upper=*/true, 70.0, /*width=*/70.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  // slack(10) = 60/70*100 = 85.7 -> needed' = 14.3.
  EXPECT_NEAR(dim.NeededPScore(*t, 0), 100.0 - 60.0 / 70.0 * 100.0, 1e-9);
  EXPECT_NEAR(dim.NeededPScore(*t, 1), 100.0 - 20.0 / 70.0 * 100.0, 1e-9);
  // On the bound: survives only zero contraction -> needed' = 100.
  EXPECT_DOUBLE_EQ(dim.NeededPScore(*t, 2), 100.0);
  // Outside the original query: never admitted.
  EXPECT_TRUE(std::isinf(dim.NeededPScore(*t, 3)));
}

TEST(ContractionDimTest, ContractedBoundAndDescribe) {
  ContractionDim dim("x", true, 70.0, 70.0);
  EXPECT_DOUBLE_EQ(dim.ContractedBound(100.0), 70.0);  // no contraction
  EXPECT_DOUBLE_EQ(dim.ContractedBound(0.0), 0.0);     // full contraction
  EXPECT_DOUBLE_EQ(dim.ContractedBound(50.0), 35.0);
  EXPECT_EQ(dim.DescribeAt(50.0), "x <= 35");
  EXPECT_EQ(dim.label(), "x <= 70");
}

TEST(ContractionDimTest, LowerBoundDirection) {
  auto t = std::make_shared<Table>("t", Schema({{"x", DataType::kDouble, ""}}));
  ASSERT_TRUE(t->AppendRow({Value(90.0)}).ok());
  ASSERT_TRUE(t->AppendRow({Value(20.0)}).ok());
  // Original: x >= 30 over domain [30, 100]; width 70.
  ContractionDim dim("x", /*is_upper=*/false, 30.0, 70.0);
  ASSERT_TRUE(dim.Bind(t->schema()).ok());
  EXPECT_NEAR(dim.NeededPScore(*t, 0), 100.0 - 60.0 / 70.0 * 100.0, 1e-9);
  EXPECT_TRUE(std::isinf(dim.NeededPScore(*t, 1)));
  EXPECT_DOUBLE_EQ(dim.ContractedBound(0.0), 100.0);
}

TEST(MakeContractionTaskTest, WrapsNumericDims) {
  auto fixture = OvershootFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  auto contract = MakeContractionTask(fixture->task);
  ASSERT_TRUE(contract.ok()) << contract.status().ToString();
  EXPECT_EQ(contract->d(), 2u);
  EXPECT_EQ(contract->relation.get(), fixture->task.relation.get());
  EXPECT_DOUBLE_EQ(contract->dims[0]->MaxPScore(), 100.0);
}

TEST(RunAcquireContractTest, ShrinksCountToTarget) {
  auto fixture = OvershootFixture(2, 0.5);
  ASSERT_NE(fixture, nullptr);
  auto contract = MakeContractionTask(fixture->task);
  ASSERT_TRUE(contract.ok());
  CachedEvaluationLayer layer(&*contract);
  AcquireOptions options;
  options.gamma = 16.0;  // step 8 keeps the bounded grid small
  options.delta = 0.1;
  auto result = RunAcquireContract(*contract, &layer, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->satisfied);
  for (const RefinedQuery& q : result->queries) {
    EXPECT_LE(q.error, options.delta);
    EXPECT_NEAR(q.aggregate, contract->constraint.target,
                options.delta * contract->constraint.target + 1e-9);
    // Contraction amounts are reported, and some dimension did contract.
    double total = 0.0;
    for (double c : q.pscores) {
      EXPECT_GE(c, -1e-9);
      total += c;
    }
    EXPECT_GT(total, 0.0);
  }
}

TEST(RunAcquireContractTest, MinimalContractionComesFirst) {
  auto fixture = OvershootFixture(1, 0.6);
  ASSERT_NE(fixture, nullptr);
  auto contract = MakeContractionTask(fixture->task);
  ASSERT_TRUE(contract.ok());
  CachedEvaluationLayer layer(&*contract);
  AcquireOptions options;
  options.gamma = 5.0;
  options.delta = 0.1;
  auto result = RunAcquireContract(*contract, &layer, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  // The contracted bound is below the original but as high as possible:
  // contracting further than the first hit layer is never reported.
  for (size_t i = 1; i < result->queries.size(); ++i) {
    EXPECT_GE(result->queries[i].qscore, result->queries[0].qscore - 1e-9);
  }
}

TEST(RunAcquireContractTest, RepartitionRecoversFromCoarseGrid) {
  // One dimension, coarse grid: the contraction lattice jumps across the
  // equality target and the bisection inside the skipped-over band must
  // recover it.
  auto fixture = OvershootFixture(1, 0.2);  // keep only 20% of the results
  ASSERT_NE(fixture, nullptr);
  auto contract = MakeContractionTask(fixture->task);
  ASSERT_TRUE(contract.ok());
  CachedEvaluationLayer layer(&*contract);
  AcquireOptions options;
  options.gamma = 25.0;  // step 25 in 1-D: guaranteed to overshoot
  options.delta = 0.02;
  options.repartition_iters = 20;
  auto result = RunAcquireContract(*contract, &layer, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied) << result->best.ToString();
  bool has_offgrid = false;
  for (const RefinedQuery& q : result->queries) {
    EXPECT_LE(q.error, options.delta);
    has_offgrid = has_offgrid || q.coord.empty();
  }
  EXPECT_TRUE(has_offgrid);
}

TEST(RunAcquireContractTest, RejectsNonEqualityConstraints) {
  auto fixture = OvershootFixture(1, 0.5);
  ASSERT_NE(fixture, nullptr);
  auto contract = MakeContractionTask(fixture->task);
  ASSERT_TRUE(contract.ok());
  contract->constraint.op = ConstraintOp::kGe;
  CachedEvaluationLayer layer(&*contract);
  EXPECT_TRUE(RunAcquireContract(*contract, &layer, {}).status().IsUnsupported());
}

TEST(MakeContractionTaskTest, RejectsJoinDims) {
  auto fixture = OvershootFixture(1, 0.5);
  ASSERT_NE(fixture, nullptr);
  fixture->task.dims.push_back(
      std::make_unique<JoinDim>("c0", "c1", 10.0));
  ASSERT_TRUE(fixture->task.dims.back()
                  ->Bind(fixture->task.relation->schema())
                  .ok());
  EXPECT_TRUE(MakeContractionTask(fixture->task).status().IsUnsupported());
}

}  // namespace
}  // namespace acquire
