// Edge cases across the pipeline: binder/planner validation for the newer
// predicate forms, baselines on approximate layers, and the documented
// failure mode of the AVI histogram estimator on correlated columns.

#include <gtest/gtest.h>
#include <cmath>

#include "acquire.h"
#include "baselines/binsearch.h"
#include "baselines/tqgen.h"
#include "sql/parser.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

class BinderEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions options;
    options.suppliers = 40;
    options.parts = 60;
    options.lineitems = 800;
    ASSERT_TRUE(GenerateTpch(options, &catalog_).ok());
  }

  Result<AcqTask> Plan(const std::string& sql) {
    Binder binder(&catalog_);
    return binder.PlanSql(sql);
  }

  Catalog catalog_;
};

TEST_F(BinderEdgeTest, MixedTableFunctionSideRequiresNorefine) {
  // A side referencing columns of two tables can only be a fixed filter.
  auto refinable = Plan(
      "SELECT * FROM supplier, partsupp CONSTRAINT COUNT(*) = 10 "
      "WHERE s_suppkey = ps_suppkey NOREFINE "
      "AND s_acctbal + ps_supplycost < ps_availqty "
      "AND s_acctbal < 2000");
  EXPECT_TRUE(refinable.status().IsUnsupported());
  auto fixed = Plan(
      "SELECT * FROM supplier, partsupp CONSTRAINT COUNT(*) = 10 "
      "WHERE s_suppkey = ps_suppkey NOREFINE "
      "AND (s_acctbal + ps_supplycost < ps_availqty) NOREFINE "
      "AND s_acctbal < 2000");
  EXPECT_TRUE(fixed.ok()) << fixed.status().ToString();
}

TEST_F(BinderEdgeTest, TwoLiteralComparisonRejected) {
  EXPECT_FALSE(
      Plan("SELECT * FROM lineitem CONSTRAINT COUNT(*) = 10 WHERE 1 < 2")
          .ok());
}

TEST_F(BinderEdgeTest, NotEqualJoinRejected) {
  auto r = Plan(
      "SELECT * FROM supplier, partsupp CONSTRAINT COUNT(*) = 10 "
      "WHERE s_suppkey != ps_suppkey AND s_acctbal < 2000");
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderEdgeTest, ArithmeticAggregateArgumentRejectedByParser) {
  // CONSTRAINT AGG(col) only accepts a column reference.
  EXPECT_FALSE(
      ParseAcqSql("SELECT * FROM t CONSTRAINT SUM(a + b) = 10 WHERE a < 1")
          .ok());
}

TEST_F(BinderEdgeTest, StringComparedToExpressionRejected) {
  EXPECT_TRUE(Plan("SELECT * FROM part CONSTRAINT COUNT(*) = 10 "
                   "WHERE p_size * 2 = 'STEEL'")
                  .status()
                  .IsTypeError());
}

TEST_F(BinderEdgeTest, ThreeTableChainThroughMixedJoinKinds) {
  // supplier -(equi)- partsupp -(non-equi)- part.
  auto task = Plan(
      "SELECT * FROM supplier, partsupp, part "
      "CONSTRAINT SUM(ps_availqty) >= 1000 "
      "WHERE s_suppkey = ps_suppkey NOREFINE "
      "AND (ps_partkey * 1 < p_partkey * 1) NOREFINE "
      "AND s_acctbal < 2000");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 1u);
  EXPECT_GT(task->relation->num_rows(), 0u);
}

TEST(BaselinesOnSamplesTest, BinSearchAndTqGenRunOnSampledLayer) {
  // Section 8.2 notes TQGen was run without sampling "to allow uniform
  // comparisons" but that results hold on small samples — the layers make
  // that a one-line swap for any technique.
  SyntheticOptions options;
  options.d = 2;
  options.rows = 20000;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  fixture->task.constraint.target =
      probe.EvaluateQueryValue({0.0, 0.0}).value() * 2.0;

  SamplingEvaluationLayer bin_layer(&fixture->task, 0.1);
  auto bin = RunBinSearch(fixture->task, &bin_layer, Norm::L1(), {});
  ASSERT_TRUE(bin.ok());
  EXPECT_TRUE(bin->satisfied);

  SamplingEvaluationLayer tq_layer(&fixture->task, 0.1);
  auto tq = RunTqGen(fixture->task, &tq_layer, Norm::L1(), {});
  ASSERT_TRUE(tq.ok());
  EXPECT_TRUE(tq->satisfied);
  // Validate against the truth: sampled answers are approximately right.
  double truth = probe.EvaluateQueryValue(tq->pscores).value();
  EXPECT_NEAR(truth, fixture->task.constraint.target,
              0.25 * fixture->task.constraint.target);
}

TEST(HistogramBiasTest, CorrelatedColumnsBreakIndependenceAssumption) {
  // The AVI estimator multiplies marginals; on perfectly correlated
  // columns the joint estimate is the square of the truth's fraction.
  // This is the documented failure mode, pinned here as a test.
  auto table = std::make_shared<Table>(
      "corr", Schema({{"a", DataType::kDouble, ""},
                      {"b", DataType::kDouble, ""}}));
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble(0.0, 100.0);
    ASSERT_TRUE(table->AppendRow({Value(v), Value(v)}).ok());  // b == a
  }
  Catalog catalog;
  ASSERT_TRUE(catalog.AddTable(table).ok());
  QuerySpec spec;
  spec.tables = {"corr"};
  spec.predicates.push_back(
      SelectPredicateSpec{"a", CompareOp::kLe, 20.0, true, 1.0, {}});
  spec.predicates.push_back(
      SelectPredicateSpec{"b", CompareOp::kLe, 20.0, true, 1.0, {}});
  spec.agg_kind = AggregateKind::kCount;
  spec.target = 100.0;
  auto task = PlanAcqTask(catalog, spec);
  ASSERT_TRUE(task.ok());

  DirectEvaluationLayer exact(&*task);
  HistogramEvaluationLayer hist(&*task, 128);
  double truth = exact.EvaluateQueryValue({0.0, 0.0}).value();   // ~2000
  double est = hist.EvaluateQueryValue({0.0, 0.0}).value();      // ~400
  EXPECT_NEAR(truth, 2000.0, 200.0);
  EXPECT_NEAR(est, truth * truth / 10000.0, 150.0);  // squared fraction
}

TEST(DriverOptionEdgeTest, StallLimitStopsHopelessSearch) {
  // A target far beyond the relation with a tiny stall limit: the driver
  // must stop early instead of walking the whole (large) grid.
  SyntheticOptions options;
  options.d = 3;
  options.rows = 1000;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  fixture->task.constraint.target = 1e9;  // unreachable COUNT
  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions acq;
  acq.stall_limit = 200;
  acq.divergence_patience = 1000000;  // isolate the stall guard
  auto result = RunAcquire(fixture->task, &layer, acq);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->satisfied);
  // Improvements happen while coverage grows, then stop once the whole
  // relation is admitted; the stall guard caps the tail.
  EXPECT_LT(result->queries_explored, acq.max_explored);
}

}  // namespace
}  // namespace acquire
