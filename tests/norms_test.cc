#include "core/norms.h"

#include <gtest/gtest.h>

#include <cmath>

namespace acquire {
namespace {

TEST(NormTest, L1SumsComponents) {
  EXPECT_DOUBLE_EQ(Norm::L1().QScore({3.0, 4.0}), 7.0);
  EXPECT_DOUBLE_EQ(Norm::L1().QScore({}), 0.0);
}

TEST(NormTest, L2IsEuclidean) {
  EXPECT_DOUBLE_EQ(Norm::L2().QScore({3.0, 4.0}), 5.0);
}

TEST(NormTest, LpGeneralizes) {
  Norm l3 = Norm::Lp(3.0);
  EXPECT_NEAR(l3.QScore({1.0, 1.0}), std::pow(2.0, 1.0 / 3.0), 1e-12);
}

TEST(NormTest, LInfTakesMax) {
  EXPECT_DOUBLE_EQ(Norm::LInf().QScore({3.0, 9.0, 4.0}), 9.0);
}

TEST(NormTest, WeightsScaleComponents) {
  // Section 7.1: LWp preference weights.
  EXPECT_DOUBLE_EQ(Norm::L1().QScore({3.0, 4.0}, {2.0, 0.5}), 8.0);
  EXPECT_DOUBLE_EQ(Norm::LInf().QScore({3.0, 4.0}, {2.0, 0.5}), 6.0);
}

TEST(NormTest, AbsoluteValuesUsed) {
  EXPECT_DOUBLE_EQ(Norm::L1().QScore({-3.0, 4.0}), 7.0);
}

TEST(NormTest, MonotoneInEveryComponent) {
  // Theorem 3 relies on monotonicity; check for all kinds.
  Norm norms[] = {Norm::L1(), Norm::L2(), Norm::Lp(4.0), Norm::LInf()};
  std::vector<double> base = {1.0, 2.0, 3.0};
  for (const Norm& n : norms) {
    double q0 = n.QScore(base);
    for (size_t i = 0; i < base.size(); ++i) {
      std::vector<double> bumped = base;
      bumped[i] += 0.5;
      EXPECT_GE(n.QScore(bumped), q0) << n.ToString() << " dim " << i;
    }
  }
}

TEST(NormTest, ToStringNames) {
  EXPECT_EQ(Norm::L1().ToString(), "L1");
  EXPECT_EQ(Norm::L2().ToString(), "L2");
  EXPECT_EQ(Norm::Lp(3.0).ToString(), "L3");
  EXPECT_EQ(Norm::LInf().ToString(), "Linf");
}

}  // namespace
}  // namespace acquire
