// Multi-tenant serving: the ATTACH/DETACH/TENANTS verbs, per-tenant
// routing of SUBMIT/STATUS/STATS/CACHE, wire compatibility for clients
// that never mention tenants, the governor's fair-share admission, and —
// the core isolation guarantee — that a result-cache partition can never
// serve a reply across tenant ids.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "server/server.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    UsersOptions options;
    options.users = 2000;
    EXPECT_TRUE(GenerateUsers(options, c).ok());
    return c;
  }();
  return catalog;
}

JsonValue MustParse(const std::string& line) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : JsonValue::Null();
}

// A fast, satisfiable ACQ against the users generator.
const char kSql[] =
    "SELECT * FROM users CONSTRAINT COUNT(*) >= 150 "
    "WHERE age <= 28 AND income >= 55000";

std::string Submit(const std::string& tenant, const char* sql = kSql) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(sql));
  request.Set("wait", JsonValue::Bool(true));
  if (!tenant.empty()) request.Set("tenant", JsonValue::Str(tenant));
  return request.Dump();
}

std::string Attach(const std::string& id, size_t rows, double weight = 1.0) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("ATTACH"));
  request.Set("tenant", JsonValue::Str(id));
  request.Set("gen", JsonValue::Str("users"));
  request.Set("rows", JsonValue::Number(static_cast<double>(rows)));
  request.Set("weight", JsonValue::Number(weight));
  return request.Dump();
}

double TenantStat(AcqServer* server, const std::string& tenant,
                  const char* field) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("STATS"));
  if (!tenant.empty()) request.Set("tenant", JsonValue::Str(tenant));
  JsonValue stats = MustParse(server->HandleRequestLine(request.Dump()));
  EXPECT_TRUE(stats.GetBool("ok", false)) << stats.Dump();
  const JsonValue* body = stats.Get("stats");
  return body != nullptr ? body->GetNumber(field, -1.0) : -1.0;
}

TEST(TenantProtocolTest, AttachDetachTenantsVerbs) {
  AcqServer server(SharedCatalog());
  JsonValue attached = MustParse(server.HandleRequestLine(Attach("t1", 500)));
  ASSERT_TRUE(attached.GetBool("ok", false)) << attached.Dump();
  EXPECT_EQ(attached.GetString("tenant"), "t1");
  const JsonValue* tables = attached.Get("tables");
  ASSERT_NE(tables, nullptr);
  ASSERT_EQ(tables->size(), 1u);
  EXPECT_EQ(tables->AsArray()[0].AsString(), "users");

  // Duplicate ids, malformed ids and the reserved default id all reject.
  JsonValue duplicate = MustParse(server.HandleRequestLine(Attach("t1", 500)));
  EXPECT_FALSE(duplicate.GetBool("ok", true));
  EXPECT_EQ(duplicate.GetString("code"), "AlreadyExists");
  JsonValue bad_id =
      MustParse(server.HandleRequestLine(Attach("no/slash", 500)));
  EXPECT_FALSE(bad_id.GetBool("ok", true));
  EXPECT_EQ(bad_id.GetString("code"), "InvalidArgument");
  JsonValue reserved =
      MustParse(server.HandleRequestLine(Attach("default", 500)));
  EXPECT_FALSE(reserved.GetBool("ok", true));

  JsonValue listing =
      MustParse(server.HandleRequestLine("{\"cmd\":\"TENANTS\"}"));
  ASSERT_TRUE(listing.GetBool("ok", false)) << listing.Dump();
  const JsonValue* tenants = listing.Get("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->size(), 2u);
  bool saw_default = false, saw_t1 = false;
  for (const JsonValue& entry : tenants->AsArray()) {
    const std::string id = entry.GetString("tenant");
    saw_default |= id == "default";
    saw_t1 |= id == "t1";
    EXPECT_GE(entry.GetNumber("slot_limit", -1.0), 1.0) << entry.Dump();
  }
  EXPECT_TRUE(saw_default && saw_t1);
  EXPECT_GE(listing.GetNumber("total_run_slots", -1.0), 1.0);

  // The default tenant cannot be detached; unknown ids are NotFound.
  JsonValue detach_default = MustParse(
      server.HandleRequestLine("{\"cmd\":\"DETACH\",\"tenant\":\"default\"}"));
  EXPECT_FALSE(detach_default.GetBool("ok", true));
  EXPECT_EQ(detach_default.GetString("code"), "InvalidArgument");
  JsonValue detach_unknown = MustParse(
      server.HandleRequestLine("{\"cmd\":\"DETACH\",\"tenant\":\"nope\"}"));
  EXPECT_EQ(detach_unknown.GetString("code"), "NotFound");

  JsonValue detached = MustParse(
      server.HandleRequestLine("{\"cmd\":\"DETACH\",\"tenant\":\"t1\"}"));
  ASSERT_TRUE(detached.GetBool("ok", false)) << detached.Dump();
  JsonValue after = MustParse(server.HandleRequestLine("{\"cmd\":\"TENANTS\"}"));
  EXPECT_EQ(after.Get("tenants")->size(), 1u);

  // Requests routed at the detached tenant now NotFound.
  JsonValue gone = MustParse(server.HandleRequestLine(Submit("t1")));
  EXPECT_EQ(gone.GetString("code"), "NotFound");
}

TEST(TenantTest, DefaultTenantKeepsSingleTenantWireFormat) {
  AcqServer server(SharedCatalog());
  JsonValue response = MustParse(server.HandleRequestLine(Submit("")));
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  // Historical bare session ids, found by tenant-less STATUS.
  EXPECT_EQ(response.GetString("id"), "s-1");
  JsonValue status = MustParse(server.HandleRequestLine(
      StringFormat("{\"cmd\":\"STATUS\",\"id\":\"%s\"}",
                   response.GetString("id").c_str())));
  EXPECT_TRUE(status.GetBool("ok", false)) << status.Dump();
  EXPECT_EQ(status.GetString("state"), "done");
  EXPECT_EQ(TenantStat(&server, "", "completed"), 1.0);
}

TEST(TenantTest, SessionIdsCarryTenantAndRouteWithoutTenantField) {
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(MustParse(server.HandleRequestLine(Attach("t1", 800)))
                  .GetBool("ok", false));
  JsonValue response = MustParse(server.HandleRequestLine(Submit("t1")));
  ASSERT_TRUE(response.GetBool("ok", false)) << response.Dump();
  const std::string id = response.GetString("id");
  EXPECT_EQ(id.rfind("t1-s-", 0), 0u) << id;
  // STATUS without a tenant field resolves the id across tenants.
  JsonValue status = MustParse(server.HandleRequestLine(
      StringFormat("{\"cmd\":\"STATUS\",\"id\":\"%s\"}", id.c_str())));
  EXPECT_TRUE(status.GetBool("ok", false)) << status.Dump();
  // Per-tenant counters: the run landed on t1, not on default.
  EXPECT_EQ(TenantStat(&server, "t1", "completed"), 1.0);
  EXPECT_EQ(TenantStat(&server, "", "completed"), 0.0);
  EXPECT_EQ(TenantStat(&server, "t1", "tenants"), 2.0);
}

std::string DumpModuloSessionAndTiming(const JsonValue& response) {
  JsonValue out = JsonValue::Object();
  for (const auto& [key, value] : response.Members()) {
    if (key == "id") continue;
    if (key == "report") {
      JsonValue report = JsonValue::Object();
      for (const auto& [rkey, rvalue] : value.Members()) {
        if (rkey == "elapsed_ms" || rkey == "wall_ms") continue;
        report.Set(rkey, JsonValue(rvalue));
      }
      out.Set("report", std::move(report));
      continue;
    }
    out.Set(key, JsonValue(value));
  }
  return out.Dump();
}

TEST(TenantTest, CachePartitionsNeverServeAcrossTenants) {
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  AcqServer server(SharedCatalog(), options);
  // t_big and t_same share generator parameters (identical catalogs);
  // t_small differs, so the same SQL must yield a different report.
  ASSERT_TRUE(MustParse(server.HandleRequestLine(Attach("t_big", 2000)))
                  .GetBool("ok", false));
  ASSERT_TRUE(MustParse(server.HandleRequestLine(Attach("t_same", 2000)))
                  .GetBool("ok", false));
  ASSERT_TRUE(MustParse(server.HandleRequestLine(Attach("t_small", 700)))
                  .GetBool("ok", false));

  JsonValue big = MustParse(server.HandleRequestLine(Submit("t_big")));
  JsonValue same = MustParse(server.HandleRequestLine(Submit("t_same")));
  JsonValue small = MustParse(server.HandleRequestLine(Submit("t_small")));
  ASSERT_TRUE(big.GetBool("ok", false)) << big.Dump();
  ASSERT_TRUE(same.GetBool("ok", false)) << same.Dump();
  ASSERT_TRUE(small.GetBool("ok", false)) << small.Dump();

  // Identical catalogs -> identical answers (modulo session id and run
  // timing); a distinct catalog -> a distinct report.
  EXPECT_EQ(DumpModuloSessionAndTiming(big), DumpModuloSessionAndTiming(same));
  EXPECT_NE(DumpModuloSessionAndTiming(big),
            DumpModuloSessionAndTiming(small));

  // Every first submission missed its own partition: three misses, spread
  // one per tenant — nothing was served from a sibling's cache.
  for (const char* tenant : {"t_big", "t_same", "t_small"}) {
    EXPECT_EQ(TenantStat(&server, tenant, "cache_misses"), 1.0) << tenant;
    EXPECT_EQ(TenantStat(&server, tenant, "cache_hits"), 0.0) << tenant;
    EXPECT_EQ(TenantStat(&server, tenant, "cache_entries"), 1.0) << tenant;
  }

  // A repeat within a tenant hits its partition and replays the seeding
  // reply byte-identically except for the freshly-minted session id —
  // which still carries the tenant prefix.
  JsonValue repeat = MustParse(server.HandleRequestLine(Submit("t_big")));
  EXPECT_EQ(repeat.GetString("id").rfind("t_big-s-", 0), 0u)
      << repeat.Dump();
  JsonValue repeat_no_id(repeat), big_no_id(big);
  repeat_no_id.Set("id", JsonValue::Str(""));
  big_no_id.Set("id", JsonValue::Str(""));
  EXPECT_EQ(repeat_no_id.Dump(), big_no_id.Dump());
  EXPECT_EQ(TenantStat(&server, "t_big", "cache_hits"), 1.0);
  EXPECT_EQ(TenantStat(&server, "t_same", "cache_hits"), 0.0);

  // Per-tenant CACHE views address one partition; clearing t_big's leaves
  // t_same's entry intact.
  JsonValue cleared = MustParse(server.HandleRequestLine(
      "{\"cmd\":\"CACHE\",\"clear\":true,\"tenant\":\"t_big\"}"));
  ASSERT_TRUE(cleared.GetBool("ok", false)) << cleared.Dump();
  EXPECT_EQ(cleared.GetString("tenant"), "t_big");
  EXPECT_EQ(TenantStat(&server, "t_big", "cache_entries"), 0.0);
  EXPECT_EQ(TenantStat(&server, "t_same", "cache_entries"), 1.0);
}

TEST(TenantTest, TenantAdmissionFailpointRejectsWellFormed) {
  if (!FailpointRegistry::compiled_in()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  auto& registry = FailpointRegistry::Global();
  registry.DisarmAll();
  AcqServer server(SharedCatalog());
  ASSERT_TRUE(registry.Configure("server.tenant_admission", "count:1").ok());
  JsonValue rejected = MustParse(server.HandleRequestLine(Submit("")));
  registry.DisarmAll();
  EXPECT_FALSE(rejected.GetBool("ok", true)) << rejected.Dump();
  EXPECT_EQ(rejected.GetString("code"), "ResourceExhausted");
  EXPECT_FALSE(rejected.GetString("error").empty());
  EXPECT_EQ(TenantStat(&server, "", "rejected"), 1.0);
  // The rejection poisoned nothing: the retry completes.
  JsonValue retried = MustParse(server.HandleRequestLine(Submit("")));
  EXPECT_TRUE(retried.GetBool("ok", false)) << retried.Dump();
}

// Starvation-freedom under contention: with one global slot and a heavy
// tenant flooding its queue, a light tenant's single queued request still
// runs to completion (stride scheduling deals the freed slot fairly
// instead of letting the longer queue win every time).
TEST(TenantTest, LightTenantCompletesUnderHeavyContention) {
  ServerOptions options;
  options.max_running = 1;
  options.max_queued = 16;
  AcqServer server(SharedCatalog(), options);
  ASSERT_TRUE(MustParse(server.HandleRequestLine(Attach("heavy", 1200)))
                  .GetBool("ok", false));
  ASSERT_TRUE(MustParse(server.HandleRequestLine(Attach("light", 1200, 4.0)))
                  .GetBool("ok", false));

  auto async_submit = [](const std::string& tenant) {
    JsonValue request = JsonValue::Object();
    request.Set("cmd", JsonValue::Str("SUBMIT"));
    request.Set("sql", JsonValue::Str(kSql));
    request.Set("tenant", JsonValue::Str(tenant));
    return request.Dump();
  };
  // Fill the heavy queue first so the light request arrives behind a
  // backlog, then wait for everything to drain.
  for (int i = 0; i < 6; ++i) {
    JsonValue queued =
        MustParse(server.HandleRequestLine(async_submit("heavy")));
    ASSERT_TRUE(queued.GetBool("ok", false)) << queued.Dump();
  }
  JsonValue light = MustParse(server.HandleRequestLine(async_submit("light")));
  ASSERT_TRUE(light.GetBool("ok", false)) << light.Dump();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (TenantStat(&server, "light", "completed") < 1.0 ||
         TenantStat(&server, "heavy", "completed") < 6.0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "contended tenants did not drain";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(TenantStat(&server, "light", "completed"), 1.0);
  EXPECT_EQ(TenantStat(&server, "heavy", "completed"), 6.0);
  EXPECT_EQ(TenantStat(&server, "light", "rejected"), 0.0);
}

// The global memory carve-up actually reaches the runs: a tiny global
// budget drives an unbudgeted unreachable search to resource_exhausted,
// while the same submission under no governance runs to its exploration
// cap instead.
TEST(TenantTest, GovernedMemoryBudgetBoundsUnbudgetedRuns) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= "
                         "1000000000 WHERE age <= 20 AND income <= 30000 "
                         "AND engagement <= 1.0 AND "
                         "account_age_days <= 100"));
  request.Set("stall_limit", JsonValue::Number(1e15));
  request.Set("divergence_patience", JsonValue::Number(1000000));
  request.Set("max_explored", JsonValue::Number(4e9));
  request.Set("timeout_ms", JsonValue::Number(30000.0));
  request.Set("wait", JsonValue::Bool(true));

  ServerOptions governed;
  governed.global_memory_budget_bytes = 96 * 1024;
  AcqServer budgeted(SharedCatalog(), governed);
  JsonValue exhausted = MustParse(budgeted.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(exhausted.GetBool("ok", false)) << exhausted.Dump();
  ASSERT_EQ(exhausted.GetString("state"), "done") << exhausted.Dump();
  EXPECT_EQ(exhausted.Get("report")->GetString("termination"),
            "resource_exhausted");

  // Control: the identical submission (bar a tight exploration cap so it
  // terminates promptly) under no governance never sees a budget.
  request.Set("max_explored", JsonValue::Number(1.0));
  AcqServer ungoverned(SharedCatalog());
  JsonValue truncated = MustParse(ungoverned.HandleRequestLine(request.Dump()));
  ASSERT_TRUE(truncated.GetBool("ok", false)) << truncated.Dump();
  ASSERT_EQ(truncated.GetString("state"), "done") << truncated.Dump();
  EXPECT_EQ(truncated.Get("report")->GetString("termination"), "truncated");
}

// Governor bookkeeping surfaces in TENANTS: a held slot shows as used and
// as the owning tenant's active_slots, and returns to zero on completion.
TEST(TenantTest, TenantsViewTracksSlotUsage) {
  ServerOptions options;
  options.max_running = 2;
  AcqServer server(SharedCatalog(), options);
  JsonValue done = MustParse(server.HandleRequestLine(Submit("")));
  ASSERT_TRUE(done.GetBool("ok", false)) << done.Dump();
  JsonValue listing =
      MustParse(server.HandleRequestLine("{\"cmd\":\"TENANTS\"}"));
  ASSERT_TRUE(listing.GetBool("ok", false)) << listing.Dump();
  EXPECT_EQ(listing.GetNumber("total_run_slots", -1.0), 2.0);
  EXPECT_EQ(listing.GetNumber("used_run_slots", -1.0), 0.0);
  const JsonValue* tenants = listing.Get("tenants");
  ASSERT_NE(tenants, nullptr);
  ASSERT_EQ(tenants->size(), 1u);
  EXPECT_EQ(tenants->AsArray()[0].GetNumber("active_slots", -1.0), 0.0);
  EXPECT_EQ(tenants->AsArray()[0].GetNumber("completed", -1.0), 1.0);
}

// PROGRESS frames streamed by a tenant flooded with concurrent load must
// report that tenant's own governed share — its weighted slice of the
// global memory budget and its own slot counts — never the global pool's
// totals. The frame numbers must agree with the TENANTS listing.
TEST(TenantTest, FloodedTenantFramesReportOwnGovernorShare) {
  ServerOptions options;
  options.max_running = 2;
  options.global_memory_budget_bytes = 1 << 20;
  AcqServer server(SharedCatalog(), options);
  JsonValue attached = MustParse(
      server.HandleRequestLine(Attach("acme", 2000, /*weight=*/1.0)));
  ASSERT_TRUE(attached.GetBool("ok", false)) << attached.Dump();
  // Two tenants of equal weight: each owns exactly half the global budget.
  const double own_share = (1 << 20) / 2.0;

  // Flood the default tenant while acme streams, so the governor has live
  // cross-tenant contention to misreport if it were going to.
  std::atomic<bool> flooding{true};
  std::thread flood([&] {
    while (flooding.load()) {
      server.HandleRequestLine(Submit(""));
    }
  });

  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(
                         "SELECT * FROM users CONSTRAINT COUNT(*) >= 700 "
                         "WHERE age <= 28 AND income >= 55000"));
  request.Set("tenant", JsonValue::Str("acme"));
  request.Set("wait", JsonValue::Bool(true));
  JsonValue progress = JsonValue::Object();
  progress.Set("interval_ms", JsonValue::Number(0.0));
  request.Set("progress", progress);

  std::vector<JsonValue> frames;
  JsonValue reply = MustParse(server.HandleRequestLine(
      request.Dump(), [&frames](const std::string& line) {
        Result<JsonValue> parsed = JsonValue::Parse(line);
        EXPECT_TRUE(parsed.ok()) << line;
        if (parsed.ok()) frames.push_back(*parsed);
        return true;
      }));
  flooding.store(false);
  flood.join();
  ASSERT_TRUE(reply.GetBool("ok", false)) << reply.Dump();
  ASSERT_FALSE(frames.empty());
  for (const JsonValue& frame : frames) {
    EXPECT_EQ(frame.GetString("tenant"), "acme") << frame.Dump();
    const JsonValue* governor = frame.Get("governor");
    ASSERT_NE(governor, nullptr) << frame.Dump();
    // The tenant's own carved share — half the budget, not the global 1 MiB.
    EXPECT_EQ(governor->GetNumber("memory_share_bytes", -1.0), own_share)
        << frame.Dump();
    // Slot accounting is the tenant's own too: acme has exactly this one
    // run active, and its limit can never exceed the whole pool.
    EXPECT_GE(governor->GetNumber("active_slots", -1.0), 1.0)
        << frame.Dump();
    EXPECT_LE(governor->GetNumber("active_slots", 1e9),
              governor->GetNumber("slot_limit", -1.0))
        << frame.Dump();
    EXPECT_LE(governor->GetNumber("slot_limit", 1e9), 2.0) << frame.Dump();
    // Tenant-scoped queue depths, present even while flooded.
    EXPECT_GE(governor->GetNumber("running", -1.0), 1.0) << frame.Dump();
    EXPECT_GE(governor->GetNumber("queued", -1.0), 0.0) << frame.Dump();
  }

  // The TENANTS listing agrees with what the frames reported.
  JsonValue listing =
      MustParse(server.HandleRequestLine("{\"cmd\":\"TENANTS\"}"));
  ASSERT_TRUE(listing.GetBool("ok", false)) << listing.Dump();
  const JsonValue* tenants = listing.Get("tenants");
  ASSERT_NE(tenants, nullptr);
  bool found = false;
  for (const JsonValue& entry : tenants->AsArray()) {
    if (entry.GetString("tenant") != "acme") continue;
    found = true;
    EXPECT_EQ(entry.GetNumber("memory_share_bytes", -1.0), own_share)
        << entry.Dump();
    EXPECT_EQ(entry.GetNumber("progress_frames", -1.0),
              static_cast<double>(frames.size()))
        << entry.Dump();
  }
  EXPECT_TRUE(found) << listing.Dump();
}

}  // namespace
}  // namespace acquire
