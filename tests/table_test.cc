#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"

namespace acquire {
namespace {

Schema SimpleSchema() {
  return Schema({{"id", DataType::kInt64, ""},
                 {"price", DataType::kDouble, ""},
                 {"name", DataType::kString, ""}});
}

TEST(ColumnTest, AppendAndGet) {
  Column c(DataType::kInt64);
  ASSERT_TRUE(c.Append(Value(int64_t{5})).ok());
  ASSERT_TRUE(c.Append(Value(int64_t{7})).ok());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.Get(1), Value(int64_t{7}));
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 5.0);
}

TEST(ColumnTest, TypeMismatchRejected) {
  Column c(DataType::kInt64);
  EXPECT_TRUE(c.Append(Value("x")).IsTypeError());
  EXPECT_TRUE(c.Append(Value(1.5)).IsTypeError());
  Column s(DataType::kString);
  EXPECT_TRUE(s.Append(Value(int64_t{1})).IsTypeError());
}

TEST(ColumnTest, Int64WidensIntoDoubleColumn) {
  Column c(DataType::kDouble);
  ASSERT_TRUE(c.Append(Value(int64_t{3})).ok());
  EXPECT_DOUBLE_EQ(c.double_data()[0], 3.0);
}

TEST(ColumnTest, StatsComputeMinMax) {
  Column c(DataType::kDouble);
  c.AppendDouble(5.0);
  c.AppendDouble(-2.0);
  c.AppendDouble(9.0);
  ColumnStats stats = c.ComputeStats();
  ASSERT_TRUE(stats.valid);
  EXPECT_DOUBLE_EQ(stats.min, -2.0);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
}

TEST(ColumnTest, StatsInvalidForStringOrEmpty) {
  Column s(DataType::kString);
  s.AppendString("x");
  EXPECT_FALSE(s.ComputeStats().valid);
  Column e(DataType::kInt64);
  EXPECT_FALSE(e.ComputeStats().valid);
}

TEST(TableTest, SchemaStampedWithTableName) {
  Table t("orders", SimpleSchema());
  EXPECT_EQ(t.schema().field(0).table, "orders");
  EXPECT_EQ(t.schema().field(0).QualifiedName(), "orders.id");
}

TEST(TableTest, AppendRowValidatesArityAndTypes) {
  Table t("orders", SimpleSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(9.5), Value("ok")}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_FALSE(t.AppendRow({Value(int64_t{1})}).ok());
  EXPECT_TRUE(
      t.AppendRow({Value("bad"), Value(9.5), Value("x")}).IsTypeError());
}

TEST(TableTest, GetRowMaterializesValues) {
  Table t("orders", SimpleSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(2.0), Value("a")}).ok());
  std::vector<Value> row = t.GetRow(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2], Value("a"));
}

TEST(TableTest, StatsAreCachedAndInvalidated) {
  Table t("orders", SimpleSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value(2.0), Value("a")}).ok());
  EXPECT_DOUBLE_EQ(t.Stats(1).max, 2.0);
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value(8.0), Value("b")}).ok());
  EXPECT_DOUBLE_EQ(t.Stats(1).max, 8.0);
}

TEST(TableTest, FinalizeAppendSyncsRowCount) {
  Table t("orders", SimpleSchema());
  t.mutable_column(0).AppendInt64(1);
  t.mutable_column(1).AppendDouble(1.0);
  t.mutable_column(2).AppendString("x");
  ASSERT_TRUE(t.FinalizeAppend().ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, FinalizeAppendDetectsRaggedColumns) {
  Table t("orders", SimpleSchema());
  t.mutable_column(0).AppendInt64(1);
  EXPECT_FALSE(t.FinalizeAppend().ok());
}

TEST(TableTest, ToStringTruncates) {
  Table t("orders", SimpleSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value(int64_t{i}), Value(1.0 * i), Value("r")}).ok());
  }
  std::string s = t.ToString(2);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(CatalogTest, AddGetDrop) {
  Catalog catalog;
  auto t = std::make_shared<Table>("t1", SimpleSchema());
  ASSERT_TRUE(catalog.AddTable(t).ok());
  EXPECT_TRUE(catalog.HasTable("t1"));
  EXPECT_EQ(catalog.GetTable("t1").value().get(), t.get());
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"t1"});
  ASSERT_TRUE(catalog.DropTable("t1").ok());
  EXPECT_FALSE(catalog.HasTable("t1"));
}

TEST(CatalogTest, DuplicateAndMissingErrors) {
  Catalog catalog;
  auto t = std::make_shared<Table>("t1", SimpleSchema());
  ASSERT_TRUE(catalog.AddTable(t).ok());
  EXPECT_EQ(catalog.AddTable(t).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.DropTable("nope").code(), StatusCode::kNotFound);
  EXPECT_FALSE(catalog.AddTable(nullptr).ok());
}

TEST(CatalogTest, PutTableReplaces) {
  Catalog catalog;
  catalog.PutTable(std::make_shared<Table>("t", SimpleSchema()));
  auto replacement = std::make_shared<Table>("t", SimpleSchema());
  catalog.PutTable(replacement);
  EXPECT_EQ(catalog.GetTable("t").value().get(), replacement.get());
  EXPECT_EQ(catalog.size(), 1u);
}

}  // namespace
}  // namespace acquire
