#include "index/grid_index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/planner.h"
#include "workload/tpch_gen.h"

namespace acquire {
namespace {

class GridIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions options;
    options.lineitems = 4000;
    options.suppliers = 50;
    options.parts = 100;
    ASSERT_TRUE(GenerateTpch(options, &catalog_).ok());

    QuerySpec spec;
    spec.tables = {"lineitem"};
    spec.predicates.push_back(SelectPredicateSpec{
        "l_quantity", CompareOp::kLe, 15.0, true, 1.0, {}});
    spec.predicates.push_back(SelectPredicateSpec{
        "l_shipdays", CompareOp::kLe, 700.0, true, 1.0, {}});
    spec.agg_kind = AggregateKind::kCount;
    spec.target = 1.0;
    auto task = PlanAcqTask(catalog_, spec);
    ASSERT_TRUE(task.ok()) << task.status().ToString();
    task_ = std::make_unique<AcqTask>(std::move(task).value());
  }

  Catalog catalog_;
  std::unique_ptr<AcqTask> task_;
  static constexpr double kStep = 5.0;
};

TEST_F(GridIndexTest, PrepareBuildsSparseCells) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  ASSERT_TRUE(index.Prepare().ok());
  EXPECT_GT(index.num_populated_cells(), 0u);
  // Cell count is bounded by both tuples and grid volume.
  EXPECT_LE(index.num_populated_cells(), task_->relation->num_rows());
}

TEST_F(GridIndexTest, CellAlignmentDetection) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  GridCoord coord;
  EXPECT_TRUE(index.IsCellAligned(
      {PScoreRange{-1.0, 0.0}, PScoreRange{5.0, 10.0}}, &coord));
  EXPECT_EQ(coord, (GridCoord{0, 2}));
  // Not a single cell: spans two levels.
  EXPECT_FALSE(index.IsCellAligned(
      {PScoreRange{0.0, 10.0}, PScoreRange{5.0, 10.0}}, &coord));
  // Off-grid bound.
  EXPECT_FALSE(index.IsCellAligned(
      {PScoreRange{-1.0, 0.0}, PScoreRange{5.5, 10.5}}, &coord));
}

TEST_F(GridIndexTest, CellQueriesMatchDirectLayer) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  DirectEvaluationLayer direct(task_.get());
  for (int32_t u0 = 0; u0 <= 4; ++u0) {
    for (int32_t u1 = 0; u1 <= 4; ++u1) {
      std::vector<PScoreRange> cell = {CellRangeForLevel(u0, kStep),
                                       CellRangeForLevel(u1, kStep)};
      auto a = index.EvaluateBox(cell);
      auto b = direct.EvaluateBox(cell);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_DOUBLE_EQ(task_->agg.ops->Final(*a), task_->agg.ops->Final(*b))
          << u0 << "," << u1;
    }
  }
}

TEST_F(GridIndexTest, AlignedBoxQueriesMatchDirectLayer) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  DirectEvaluationLayer direct(task_.get());
  // Full refined queries at grid corners (lo = from zero).
  for (int32_t u = 0; u <= 6; u += 2) {
    std::vector<PScoreRange> box = {
        PScoreRange{-1.0, u * kStep}, PScoreRange{-1.0, (u + 2) * kStep}};
    auto a = index.EvaluateBox(box);
    auto b = direct.EvaluateBox(box);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(task_->agg.ops->Final(*a), task_->agg.ops->Final(*b));
  }
}

TEST_F(GridIndexTest, UnalignedBoxFallsBackToScanAndMatches) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  DirectEvaluationLayer direct(task_.get());
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<PScoreRange> box(2);
    for (auto& r : box) {
      r.lo = -1.0;
      r.hi = rng.NextDouble(0.0, 40.0);  // almost surely off-grid
    }
    auto a = index.EvaluateBox(box);
    auto b = direct.EvaluateBox(box);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(task_->agg.ops->Final(*a), task_->agg.ops->Final(*b));
  }
}

TEST_F(GridIndexTest, EmptyCellAnsweredWithoutTouchingData) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  ASSERT_TRUE(index.Prepare().ok());
  index.ResetStats();
  // A far-out cell that is almost surely empty.
  std::vector<PScoreRange> cell = {CellRangeForLevel(1, kStep),
                                   CellRangeForLevel(1, kStep)};
  ASSERT_TRUE(index.EvaluateBox(cell).ok());
  EXPECT_EQ(index.stats().queries, 1u);
  EXPECT_EQ(index.stats().tuples_scanned, 1u);  // one hash probe
}

TEST_F(GridIndexTest, EvaluateCellsMatchesPerCellEvaluateBox) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  GridIndexEvaluationLayer reference(task_.get(), kStep);
  // A batch mixing populated cells, empty cells, duplicates and an
  // unsorted arrival order.
  std::vector<GridCoord> coords;
  for (int32_t u0 = 6; u0 >= 0; --u0) {
    for (int32_t u1 = 0; u1 <= 6; ++u1) coords.push_back({u0, u1});
  }
  coords.push_back({3, 3});     // duplicate of an earlier coordinate
  coords.push_back({100, 90});  // far-out empty cell
  coords.push_back({0, 0});     // duplicate, out of order
  auto batch = index.EvaluateCells(coords.data(), coords.size(), kStep);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), coords.size());
  const AggregateOps& ops = *task_->agg.ops;
  for (size_t i = 0; i < coords.size(); ++i) {
    std::vector<PScoreRange> cell = {CellRangeForLevel(coords[i][0], kStep),
                                     CellRangeForLevel(coords[i][1], kStep)};
    auto expected = reference.EvaluateBox(cell);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(ops.Final((*batch)[i]), ops.Final(*expected))
        << coords[i][0] << "," << coords[i][1];
  }
}

TEST_F(GridIndexTest, EvaluateCellsBatchUsesOneProbePerCell) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  ASSERT_TRUE(index.Prepare().ok());
  index.ResetStats();
  std::vector<GridCoord> coords;
  for (int32_t u = 0; u < 32; ++u) coords.push_back({u, u});
  ASSERT_TRUE(index.EvaluateCells(coords.data(), coords.size(), kStep).ok());
  // The native path touches one hash bucket per requested cell -- no box
  // decomposition, no matrix scan.
  EXPECT_EQ(index.stats().queries, coords.size());
  EXPECT_EQ(index.stats().tuples_scanned, coords.size());
}

TEST_F(GridIndexTest, EvaluateCellsLargeBatchParallelMatchesSerial) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  // Above the parallel cutoff (4096) with many duplicates spanning chunk
  // boundaries; results must stay in input order and bit-identical.
  std::vector<GridCoord> coords;
  coords.reserve(10000);
  for (int32_t i = 0; i < 10000; ++i) coords.push_back({i % 7, (i / 3) % 7});
  auto batch = index.EvaluateCells(coords.data(), coords.size(), kStep);
  ASSERT_TRUE(batch.ok());
  const AggregateOps& ops = *task_->agg.ops;
  GridIndexEvaluationLayer reference(task_.get(), kStep);
  for (size_t i = 0; i < coords.size(); i += 997) {
    std::vector<PScoreRange> cell = {CellRangeForLevel(coords[i][0], kStep),
                                     CellRangeForLevel(coords[i][1], kStep)};
    auto expected = reference.EvaluateBox(cell);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(ops.Final((*batch)[i]), ops.Final(*expected));
  }
}

TEST_F(GridIndexTest, EvaluateCellsForeignStepFallsBack) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  DirectEvaluationLayer direct(task_.get());
  const double foreign = 7.5;  // not this index's step
  std::vector<GridCoord> coords = {{0, 0}, {1, 2}, {2, 1}};
  auto batch = index.EvaluateCells(coords.data(), coords.size(), foreign);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  const AggregateOps& ops = *task_->agg.ops;
  for (size_t i = 0; i < coords.size(); ++i) {
    std::vector<PScoreRange> cell = {
        CellRangeForLevel(coords[i][0], foreign),
        CellRangeForLevel(coords[i][1], foreign)};
    auto expected = direct.EvaluateBox(cell);
    ASSERT_TRUE(expected.ok());
    EXPECT_DOUBLE_EQ(ops.Final((*batch)[i]), ops.Final(*expected));
  }
}

TEST_F(GridIndexTest, EvaluateCellsRejectsWrongDimensionality) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  std::vector<GridCoord> coords = {{1, 2, 3}};  // task has d = 2
  EXPECT_FALSE(
      index.EvaluateCells(coords.data(), coords.size(), kStep).ok());
}

TEST_F(GridIndexTest, EvaluateCellsEmptyBatch) {
  GridIndexEvaluationLayer index(task_.get(), kStep);
  auto batch = index.EvaluateCells(nullptr, 0, kStep);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(GridIndexTest, InvalidStepRejected) {
  GridIndexEvaluationLayer index(task_.get(), 0.0);
  EXPECT_FALSE(index.Prepare().ok());
}

TEST(GridCoordHashTest, DistinctCoordsDistinctHashesMostly) {
  GridCoordHash hash;
  EXPECT_NE(hash({0, 1}), hash({1, 0}));
  EXPECT_EQ(hash({2, 3}), hash({2, 3}));
}

}  // namespace
}  // namespace acquire
