// Remaining driver/generator behaviors: collect_within_gamma spanning
// layers, one-dimensional shell enumeration, contraction-result SQL
// rendering, and Zipf rank-count effects in the generator.

#include <gtest/gtest.h>
#include <cmath>
#include <set>

#include "acquire.h"
#include "core/expand.h"
#include "core/refined_space.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

TEST(CollectWithinGammaTest, AnswersSpanMultipleLayers) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 4000;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  fixture->task.constraint.target =
      probe.EvaluateQueryValue({0.0, 0.0}).value() * 1.5;

  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions acq;
  acq.delta = 0.15;  // generous band: later layers also qualify
  acq.collect_within_gamma = true;
  auto result = RunAcquire(fixture->task, &layer, acq);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  std::set<int64_t> layers;
  for (const RefinedQuery& q : result->queries) {
    if (!q.coord.empty()) layers.insert(q.coord[0] + q.coord[1]);
  }
  EXPECT_GT(layers.size(), 1u);
  // Every extra answer stays within gamma of the best (Definition 1b).
  for (const RefinedQuery& q : result->queries) {
    EXPECT_LE(q.qscore, result->queries.front().qscore + acq.gamma + 1e-9);
  }
}

TEST(ShellGeneratorTest, OneDimensionalShellsAreJustTheLine) {
  SyntheticOptions options;
  options.d = 1;
  options.rows = 300;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  RefinedSpace space(&fixture->task, 10.0, Norm::LInf());
  ShellGenerator gen(&space);
  GridCoord coord;
  for (int32_t expected = 0; expected <= 5; ++expected) {
    ASSERT_TRUE(gen.Next(&coord));
    EXPECT_EQ(coord, GridCoord{expected});
  }
}

TEST(ContractionPrinterTest, RefinedSqlRendersContractedBounds) {
  SyntheticOptions options;
  options.d = 1;
  options.rows = 4000;
  options.bound = 70.0;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  fixture->task.constraint.target =
      probe.EvaluateQueryValue({0.0}).value() * 0.5;

  CachedEvaluationLayer layer(&fixture->task);
  AcquireOptions acq;
  acq.delta = 0.05;
  acq.repartition_iters = 20;
  auto outcome = ProcessAcq(fixture->task, &layer, acq);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->mode, AcqMode::kContracted);
  ASSERT_TRUE(outcome->result.satisfied);
  const RefinedQuery& q = outcome->result.queries.front();
  std::string sql = RenderRefinedSql(*outcome->contraction_task, q);
  // The rendered bound must be strictly below the original 70.
  EXPECT_NE(sql.find("c0 <="), std::string::npos);
  EXPECT_EQ(sql.find("<= 70"), std::string::npos);
  // And the report names the contraction distance.
  std::string report = RefinementReport(*outcome->contraction_task, q);
  EXPECT_NE(report.find("of range"), std::string::npos);
}

TEST(ZipfRanksTest, FewerRanksCoarsensValues) {
  Catalog fine_cat;
  Catalog coarse_cat;
  TpchOptions fine;
  fine.lineitems = 5000;
  fine.zipf_theta = 1.0;
  fine.zipf_ranks = 1000;
  TpchOptions coarse = fine;
  coarse.zipf_ranks = 5;
  ASSERT_TRUE(GenerateTpch(fine, &fine_cat).ok());
  ASSERT_TRUE(GenerateTpch(coarse, &coarse_cat).ok());
  auto distinct = [](const TablePtr& t) {
    size_t col = t->schema().FieldIndex("l_quantity").value();
    std::set<double> values;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      values.insert(t->column(col).GetDouble(r));
    }
    return values.size();
  };
  size_t fine_distinct = distinct(fine_cat.GetTable("lineitem").value());
  size_t coarse_distinct = distinct(coarse_cat.GetTable("lineitem").value());
  EXPECT_LE(coarse_distinct, 5u);
  EXPECT_GT(fine_distinct, 100u);
}

TEST(BestFirstCapsTest, ExhaustsCappedSpaceWithoutDuplicates) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 300;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  for (auto& dim : fixture->task.dims) {
    dynamic_cast<NumericDim*>(dim.get())->set_max_refinement(10.0);
  }
  RefinedSpace space(&fixture->task, 10.0, Norm::L2());
  BestFirstGenerator gen(&space);
  std::set<GridCoord> seen;
  GridCoord coord;
  size_t count = 0;
  while (gen.Next(&coord)) {
    EXPECT_TRUE(seen.insert(coord).second);
    ++count;
  }
  EXPECT_EQ(count, 9u);  // 3 x 3 capped grid
}

}  // namespace
}  // namespace acquire
