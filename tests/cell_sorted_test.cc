// Structural tests for the cell-sorted CSR backend: layout invariants,
// the three query paths (cell probe, aligned box walk, off-grid scan),
// unreachable-row exclusion, and the backend factory that constructs it.

#include <gtest/gtest.h>

#include <cmath>

#include "acquire.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

TEST(CellSortedTest, RejectsNonPositiveStep) {
  SyntheticOptions options;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  CellSortedEvaluationLayer layer(&fixture->task, 0.0);
  EXPECT_FALSE(layer.Prepare().ok());
}

TEST(CellSortedTest, CellProbeTouchesOneCellNotTheData) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 20000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;
  CellSortedEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());
  EXPECT_GT(layer.num_cells(), 0u);

  // A cell query costs one binary search, not a scan: tuples_scanned
  // counts the single key looked at, regardless of n.
  std::vector<PScoreRange> cell = {CellRangeForLevel(2, step),
                                   CellRangeForLevel(3, step)};
  GridCoord coord;
  ASSERT_TRUE(layer.IsCellAligned(cell, &coord));
  EXPECT_EQ(coord, (GridCoord{2, 3}));
  layer.ResetStats();
  ASSERT_TRUE(layer.EvaluateBox(cell).ok());
  EXPECT_EQ(layer.stats().tuples_scanned, 1u);
}

TEST(CellSortedTest, AlignedBoxVisitsOnlyCandidateCells) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 20000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double step = 5.0;
  CellSortedEvaluationLayer layer(&fixture->task, step);
  ASSERT_TRUE(layer.Prepare().ok());

  // Box covering levels 0..3 on both dimensions: the walk may touch at
  // most the populated cells, never the rows.
  std::vector<PScoreRange> box = {PScoreRange{-1.0, 4 * step},
                                  PScoreRange{-1.0, 4 * step}};
  layer.ResetStats();
  auto got = layer.EvaluateBox(box);
  ASSERT_TRUE(got.ok());
  EXPECT_LE(layer.stats().tuples_scanned, layer.num_cells());

  DirectEvaluationLayer reference(&fixture->task);
  auto expected = reference.EvaluateBox(box);
  ASSERT_TRUE(expected.ok());
  const AggregateOps& ops = *fixture->task.agg.ops;
  EXPECT_DOUBLE_EQ(ops.Final(*got), ops.Final(*expected));
}

TEST(CellSortedTest, OffGridBoxFallsBackToExactScan) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = 10000;
  options.agg = AggregateKind::kSum;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  CellSortedEvaluationLayer layer(&fixture->task, 5.0);
  ASSERT_TRUE(layer.Prepare().ok());

  std::vector<PScoreRange> box = {PScoreRange{-1.0, 7.3},
                                  PScoreRange{2.1, 13.9}};
  GridCoord coord;
  EXPECT_FALSE(layer.IsCellAligned(box, &coord));
  auto got = layer.EvaluateBox(box);
  DirectEvaluationLayer reference(&fixture->task);
  auto expected = reference.EvaluateBox(box);
  ASSERT_TRUE(got.ok() && expected.ok());
  const AggregateOps& ops = *fixture->task.agg.ops;
  EXPECT_NEAR(ops.Final(*got), ops.Final(*expected),
              1e-9 * std::max(1.0, std::fabs(ops.Final(*expected))));
}

TEST(CellSortedTest, ExcludesUnreachableRows) {
  // A tight per-predicate refinement cap makes every row needing more
  // than the cap unreachable; those rows must be dropped from the layout
  // and must not appear in any box answer.
  SyntheticOptions options;
  options.d = 1;
  options.rows = 5000;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  const double cap = 10.0;
  auto* dim = dynamic_cast<NumericDim*>(fixture->task.dims[0].get());
  ASSERT_NE(dim, nullptr);
  dim->set_max_refinement(cap);

  CellSortedEvaluationLayer layer(&fixture->task, 5.0);
  ASSERT_TRUE(layer.Prepare().ok());
  EXPECT_GT(layer.unreachable_rows(), 0u);
  EXPECT_LT(layer.unreachable_rows(), options.rows);

  // Full-space box == everything reachable; must match the direct layer
  // (which recomputes the capped needed PScores per call).
  DirectEvaluationLayer reference(&fixture->task);
  std::vector<PScoreRange> everything = {PScoreRange{-1.0, 1e9}};
  auto got = layer.EvaluateBox(everything);
  auto expected = reference.EvaluateBox(everything);
  ASSERT_TRUE(got.ok() && expected.ok());
  const AggregateOps& ops = *fixture->task.agg.ops;
  EXPECT_DOUBLE_EQ(ops.Final(*got), ops.Final(*expected));
}

TEST(BackendFactoryTest, ResolvesEveryBackend) {
  SyntheticOptions options;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  for (EvalBackend backend :
       {EvalBackend::kAuto, EvalBackend::kDirect, EvalBackend::kCached,
        EvalBackend::kParallel, EvalBackend::kGridIndex,
        EvalBackend::kCellSorted}) {
    auto layer = MakeEvaluationLayer(&fixture->task, backend);
    ASSERT_TRUE(layer.ok()) << EvalBackendToString(backend);
    ASSERT_NE(layer->get(), nullptr);
    ASSERT_TRUE((*layer)->Prepare().ok()) << EvalBackendToString(backend);
  }
  // kAuto picks the cell-sorted backend.
  auto layer = MakeEvaluationLayer(&fixture->task, EvalBackend::kAuto);
  ASSERT_TRUE(layer.ok());
  EXPECT_NE(dynamic_cast<CellSortedEvaluationLayer*>(layer->get()), nullptr);
}

TEST(BackendFactoryTest, NameRoundTrip) {
  for (EvalBackend backend :
       {EvalBackend::kAuto, EvalBackend::kDirect, EvalBackend::kCached,
        EvalBackend::kParallel, EvalBackend::kGridIndex,
        EvalBackend::kCellSorted}) {
    auto parsed = EvalBackendFromString(EvalBackendToString(backend));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(EvalBackendFromString("postgres").ok());
}

TEST(BackendFactoryTest, ProcessAcqRunsOnTaskSelectedBackend) {
  // Every backend must drive the full Figure 2 pipeline to the same
  // refinement (COUNT answers are exact on all of them).
  SyntheticOptions options;
  options.d = 2;
  options.rows = 5000;
  options.bound = 10.0;
  options.target = 2000.0;
  options.op = ConstraintOp::kGe;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);

  AcquireOptions acq;
  auto reference = ProcessAcq(fixture->task, acq);
  ASSERT_TRUE(reference.ok());
  for (EvalBackend backend :
       {EvalBackend::kDirect, EvalBackend::kCached, EvalBackend::kParallel,
        EvalBackend::kGridIndex, EvalBackend::kCellSorted}) {
    fixture->task.eval_backend = backend;
    auto outcome = ProcessAcq(fixture->task, acq);
    ASSERT_TRUE(outcome.ok()) << EvalBackendToString(backend);
    EXPECT_EQ(outcome->mode, reference->mode) << EvalBackendToString(backend);
    EXPECT_DOUBLE_EQ(outcome->result.best.aggregate,
                     reference->result.best.aggregate)
        << EvalBackendToString(backend);
    EXPECT_DOUBLE_EQ(outcome->result.best.qscore,
                     reference->result.best.qscore)
        << EvalBackendToString(backend);
  }
}

}  // namespace
}  // namespace acquire
