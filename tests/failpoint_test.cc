// The fault-injection framework (common/failpoint.h): trigger spec grammar,
// count/every/probability semantics, registry arming/disarming, and the
// ACQ_FAILPOINT macro's disarmed fast path. Sites live in the process-wide
// registry, so each test uses its own site names.

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"

namespace acquire {
namespace {

TEST(FailpointTest, CompiledInMatchesBuildFlag) {
  // The default build compiles the sites in (CMake option
  // ACQUIRE_FAILPOINTS_ENABLED=ON); the chaos suite depends on it. An
  // =OFF build must agree with the macro so callers can gate on it.
  EXPECT_EQ(FailpointRegistry::compiled_in(), ACQUIRE_FAILPOINTS_ENABLED != 0);
}

// The macro-behaviour tests below need real sites; in an =OFF build
// ACQ_FAILPOINT compiles to (false) and they skip.
#define SKIP_IF_COMPILED_OUT()                   \
  if (!FailpointRegistry::compiled_in()) {       \
    GTEST_SKIP() << "failpoints compiled out";   \
  }

TEST(FailpointTest, DisarmedSiteNeverFiresButCountsEvaluations) {
  SKIP_IF_COMPILED_OUT();
  Failpoint* site = FailpointRegistry::Global().Site("test.disarmed");
  const uint64_t before = site->evaluations();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ACQ_FAILPOINT("test.disarmed"));
  }
  EXPECT_EQ(site->hits(), 0u);
  EXPECT_EQ(site->evaluations(), before + 100);
  EXPECT_EQ(site->spec(), "off");
}

TEST(FailpointTest, CountFiresExactlyNThenDisarms) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("test.count", "count:3").ok());
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (ACQ_FAILPOINT("test.count")) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(registry.Site("test.count")->hits(), 3u);
  // Self-disarmed after the last fire.
  EXPECT_EQ(registry.Site("test.count")->spec(), "off");
}

TEST(FailpointTest, EveryNthFiresPeriodically) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("test.every", "every:4").ok());
  std::vector<int> fired_at;
  for (int i = 1; i <= 12; ++i) {
    if (ACQ_FAILPOINT("test.every")) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{4, 8, 12}));
  ASSERT_TRUE(registry.Configure("test.every", "off").ok());
}

TEST(FailpointTest, ProbabilityExtremes) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("test.p0", "p:0").ok());
  ASSERT_TRUE(registry.Configure("test.p1", "p:1").ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(ACQ_FAILPOINT("test.p0"));
    EXPECT_TRUE(ACQ_FAILPOINT("test.p1"));
  }
  registry.DisarmAll();
}

TEST(FailpointTest, ProbabilityMidFiresSometimes) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("test.p_half", "p:0.5").ok());
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (ACQ_FAILPOINT("test.p_half")) ++fired;
  }
  // Deterministic per-site schedule (seeded from the name); generous
  // bounds in case the seeding ever changes.
  EXPECT_GT(fired, 300);
  EXPECT_LT(fired, 700);
  ASSERT_TRUE(registry.Configure("test.p_half", "off").ok());
}

TEST(FailpointTest, SpecGrammarRejectsGarbage) {
  auto& registry = FailpointRegistry::Global();
  for (const char* bad : {"p:", "p:2", "p:-0.5", "p:x", "count:", "count:0",
                          "count:abc", "count:-5", "every:0", "every:-3",
                          "maybe", "p"}) {
    EXPECT_FALSE(registry.Configure("test.grammar", bad).ok()) << bad;
  }
  EXPECT_FALSE(registry.Configure("", "off").ok());
  // A rejected spec leaves the site disarmed.
  EXPECT_FALSE(ACQ_FAILPOINT("test.grammar"));
}

TEST(FailpointTest, ConfigureFromSpecParsesMultipleEntries) {
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry
                  .ConfigureFromSpec(
                      "test.multi_a=count:1; test.multi_b=every:2 ;;")
                  .ok());
  EXPECT_EQ(registry.Site("test.multi_a")->spec(), "count:1");
  EXPECT_EQ(registry.Site("test.multi_b")->spec(), "every:2");
  // Malformed entries fail the whole spec.
  EXPECT_FALSE(registry.ConfigureFromSpec("test.multi_c").ok());
  EXPECT_FALSE(registry.ConfigureFromSpec("test.multi_d=p:9").ok());
  registry.DisarmAll();
  EXPECT_EQ(registry.Site("test.multi_a")->spec(), "off");
  EXPECT_EQ(registry.Site("test.multi_b")->spec(), "off");
}

TEST(FailpointTest, ListReportsSitesInNameOrder) {
  auto& registry = FailpointRegistry::Global();
  registry.Site("test.zz_list");
  registry.Site("test.aa_list");
  std::vector<FailpointRegistry::SiteInfo> sites = registry.List();
  ASSERT_GE(sites.size(), 2u);
  for (size_t i = 1; i < sites.size(); ++i) {
    EXPECT_LT(sites[i - 1].name, sites[i].name);
  }
  bool saw_aa = false;
  for (const auto& info : sites) saw_aa |= info.name == "test.aa_list";
  EXPECT_TRUE(saw_aa);
}

TEST(FailpointTest, TotalHitsSumsAcrossSites) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  const uint64_t before = registry.TotalHits();
  ASSERT_TRUE(registry.Configure("test.sum_a", "count:2").ok());
  ASSERT_TRUE(registry.Configure("test.sum_b", "count:3").ok());
  for (int i = 0; i < 5; ++i) {
    ACQ_FAILPOINT("test.sum_a");
    ACQ_FAILPOINT("test.sum_b");
  }
  EXPECT_EQ(registry.TotalHits(), before + 5);
}

TEST(FailpointTest, SleepDelaysEveryEvaluationButNeverFires) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("test.sleep", "sleep:50").ok());
  EXPECT_EQ(registry.Site("test.sleep")->spec(), "sleep:50");
  const auto start = std::chrono::steady_clock::now();
  // sleep: injects latency, not failure — the failure branch never runs.
  EXPECT_FALSE(ACQ_FAILPOINT("test.sleep"));
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_ms, 40.0);  // slack for coarse sleep granularity
  // The delay counts as a hit so STATS/acq_serve surface the injections.
  EXPECT_EQ(registry.Site("test.sleep")->hits(), 1u);
  ASSERT_TRUE(registry.Configure("test.sleep", "off").ok());
  // Disarmed again: no delay, no hit.
  const auto start2 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ACQ_FAILPOINT("test.sleep"));
  const double disarmed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start2)
          .count();
  EXPECT_LT(disarmed_ms, 40.0);
  EXPECT_EQ(registry.Site("test.sleep")->hits(), 1u);
}

TEST(FailpointTest, SleepGrammarWantsAPositiveDelay) {
  auto& registry = FailpointRegistry::Global();
  for (const char* bad : {"sleep:", "sleep:0", "sleep:-5", "sleep:x"}) {
    EXPECT_FALSE(registry.Configure("test.sleep_grammar", bad).ok()) << bad;
  }
  EXPECT_FALSE(ACQ_FAILPOINT("test.sleep_grammar"));
}

TEST(FailpointTest, CrashTriggerExitsWithCode137) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  // crash:2 — the first evaluation passes, the second kills the process
  // with _Exit(137) (no atexit handlers, no flushing: a genuine crash as
  // far as durability is concerned). The note lands on stderr first so
  // the crash-recovery harness can attribute the death.
  ASSERT_TRUE(registry.Configure("test.crash", "crash:2").ok());
  EXPECT_EQ(registry.Site("test.crash")->spec(), "crash:2");
  EXPECT_FALSE(ACQ_FAILPOINT("test.crash"));
  EXPECT_EXIT(ACQ_FAILPOINT("test.crash"), ::testing::ExitedWithCode(137),
              "injected crash");
  // The parent process never fired it (the death happened in the fork).
  ASSERT_TRUE(registry.Configure("test.crash", "off").ok());
}

TEST(FailpointTest, AbortTriggerDiesBySigabrt) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("test.abort", "abort:1").ok());
  EXPECT_EXIT(ACQ_FAILPOINT("test.abort"),
              ::testing::KilledBySignal(SIGABRT), "injected abort");
  ASSERT_TRUE(registry.Configure("test.abort", "off").ok());
}

TEST(FailpointTest, CrashAbortGrammarWantsAPositiveCount) {
  auto& registry = FailpointRegistry::Global();
  for (const char* bad : {"crash:", "crash:0", "crash:-1", "crash:x",
                          "abort:", "abort:0", "abort:zz"}) {
    EXPECT_FALSE(registry.Configure("test.crash_grammar", bad).ok()) << bad;
  }
  EXPECT_FALSE(ACQ_FAILPOINT("test.crash_grammar"));
}

TEST(FailpointTest, CrashSpecRoundTripsThroughRender) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  // spec() renders the live countdown, so ConfigureFromSpec(List()) can
  // re-arm an equivalent registry (the acq_serve --failpoints handoff).
  ASSERT_TRUE(registry.Configure("test.crash_render", "crash:7").ok());
  EXPECT_EQ(registry.Site("test.crash_render")->spec(), "crash:7");
  EXPECT_FALSE(ACQ_FAILPOINT("test.crash_render"));
  EXPECT_EQ(registry.Site("test.crash_render")->spec(), "crash:6");
  ASSERT_TRUE(registry
                  .ConfigureFromSpec("test.crash_render=crash:9; "
                                     "test.abort_render=abort:4")
                  .ok());
  EXPECT_EQ(registry.Site("test.crash_render")->spec(), "crash:9");
  EXPECT_EQ(registry.Site("test.abort_render")->spec(), "abort:4");
  registry.DisarmAll();
}

TEST(FailpointTest, ConcurrentCountNeverOverfires) {
  SKIP_IF_COMPILED_OUT();
  auto& registry = FailpointRegistry::Global();
  ASSERT_TRUE(registry.Configure("test.race", "count:100").ok());
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (ACQ_FAILPOINT("test.race")) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(fired.load(), 100);
}

}  // namespace
}  // namespace acquire
