#include "core/refined_space.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

class RefinedSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticOptions options;
    options.d = 2;
    fixture_ = MakeSyntheticTask(options);
    ASSERT_NE(fixture_, nullptr);
  }

  std::unique_ptr<test_util::SyntheticTask> fixture_;
};

TEST_F(RefinedSpaceTest, StepIsGammaOverD) {
  // Theorem 1: grid step gamma / d.
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  EXPECT_DOUBLE_EQ(space.step(), 5.0);
  EXPECT_EQ(space.d(), 2u);
  EXPECT_DOUBLE_EQ(space.gamma(), 10.0);
}

TEST_F(RefinedSpaceTest, MaxLevelCoversDomain) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  for (size_t i = 0; i < space.d(); ++i) {
    double max_pscore = fixture_->task.dims[i]->MaxPScore();
    EXPECT_GE(space.MaxLevel(i) * space.step(), max_pscore);
    EXPECT_LT((space.MaxLevel(i) - 1) * space.step(), max_pscore);
  }
}

TEST_F(RefinedSpaceTest, CoordPScoresAreCappedAtDomain) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  GridCoord top(2);
  top[0] = space.MaxLevel(0);
  top[1] = space.MaxLevel(1);
  std::vector<double> pscores = space.CoordPScores(top);
  EXPECT_DOUBLE_EQ(pscores[0], fixture_->task.dims[0]->MaxPScore());
  EXPECT_DOUBLE_EQ(pscores[1], fixture_->task.dims[1]->MaxPScore());
}

TEST_F(RefinedSpaceTest, QScoreUsesNormOnGridPScores) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  EXPECT_DOUBLE_EQ(space.QScoreOf({1, 2}), 15.0);  // (1+2) * step 5
  RefinedSpace inf_space(&fixture_->task, 10.0, Norm::LInf());
  EXPECT_DOUBLE_EQ(inf_space.QScoreOf({1, 2}), 10.0);
}

TEST_F(RefinedSpaceTest, CellBoxMatchesLevelSemantics) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  auto box = space.CellBox({0, 3});
  EXPECT_TRUE(box[0].Admits(0.0));
  EXPECT_FALSE(box[0].Admits(0.1));
  EXPECT_FALSE(box[1].Admits(10.0));
  EXPECT_TRUE(box[1].Admits(10.5));
  EXPECT_TRUE(box[1].Admits(15.0));
  EXPECT_FALSE(box[1].Admits(15.5));
}

TEST_F(RefinedSpaceTest, QueryBoxIsDownwardClosed) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  auto box = space.QueryBox({2, 1});
  EXPECT_TRUE(box[0].Admits(0.0));
  EXPECT_TRUE(box[0].Admits(10.0));
  EXPECT_FALSE(box[0].Admits(10.5));
  EXPECT_TRUE(box[1].Admits(5.0));
  EXPECT_FALSE(box[1].Admits(5.5));
}

TEST_F(RefinedSpaceTest, LevelForDelegatesToGridMath) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  EXPECT_EQ(space.LevelFor(0.0), 0);
  EXPECT_EQ(space.LevelFor(5.0), 1);
  EXPECT_EQ(space.LevelFor(5.1), 2);
}

TEST_F(RefinedSpaceTest, DescribeRendersRefinedPredicates) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  std::string original = space.Describe({0, 0});
  EXPECT_NE(original.find("c0 <= 30"), std::string::npos);
  std::string refined = space.Describe({2, 0});
  // Dim 0 rendered at PScore 10, dim 1 unrefined.
  EXPECT_NE(refined.find(fixture_->task.dims[0]->DescribeAt(10.0)),
            std::string::npos);
  EXPECT_NE(refined.find("c1 <= 30"), std::string::npos);
}

TEST_F(RefinedSpaceTest, OffGridHelpers) {
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  EXPECT_DOUBLE_EQ(space.QScoreOfPScores({2.5, 2.5}), 5.0);
  std::string desc = space.DescribePScores({2.5, 0.0});
  EXPECT_NE(desc.find(fixture_->task.dims[0]->DescribeAt(2.5)),
            std::string::npos);
  EXPECT_NE(desc.find("c1 <= 30"), std::string::npos);
}

TEST_F(RefinedSpaceTest, WeightsFromDimsAffectQScore) {
  fixture_->task.dims[0]->set_weight(3.0);
  RefinedSpace space(&fixture_->task, 10.0, Norm::L1());
  EXPECT_DOUBLE_EQ(space.QScoreOf({1, 1}), 3.0 * 5.0 + 5.0);
}

}  // namespace
}  // namespace acquire
