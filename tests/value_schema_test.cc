#include <gtest/gtest.h>

#include "storage/schema.h"
#include "storage/value.h"

namespace acquire {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(int64_t{3}).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, AsDoubleWidensIntegers) {
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).AsDouble().value(), 7.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble().value(), 2.5);
  EXPECT_FALSE(Value("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, ToStringRendersSqlStyle) {
  EXPECT_EQ(Value(int64_t{5}).ToString(), "5");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(ValueTest, NumericEqualityCrossesTypes) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
}

TEST(ValueTest, CompareOrdersNumericallyAndLexically) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(2.0)), 0);
  EXPECT_GT(Value(5.0).Compare(Value(int64_t{4})), 0);
  EXPECT_LT(Value("apple").Compare(Value("banana")), 0);
  // Null sorts first, numerics before strings.
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value(int64_t{99}).Compare(Value("0")), 0);
}

TEST(ValueTest, LargeInt64ComparesExactly) {
  int64_t big = (int64_t{1} << 60) + 1;
  EXPECT_GT(Value(big).Compare(Value(big - 1)), 0);  // doubles would tie
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "STRING");
  EXPECT_TRUE(IsNumeric(DataType::kInt64));
  EXPECT_TRUE(IsNumeric(DataType::kDouble));
  EXPECT_FALSE(IsNumeric(DataType::kString));
}

Schema TwoTableSchema() {
  return Schema({{"x", DataType::kInt64, "a"},
                 {"y", DataType::kDouble, "a"},
                 {"x", DataType::kInt64, "b"},
                 {"z", DataType::kString, "b"}});
}

TEST(SchemaTest, BareNameResolvesWhenUnique) {
  Schema s = TwoTableSchema();
  EXPECT_EQ(s.FieldIndex("y").value(), 1u);
  EXPECT_EQ(s.FieldIndex("z").value(), 3u);
}

TEST(SchemaTest, BareNameAmbiguityIsError) {
  Schema s = TwoTableSchema();
  auto r = s.FieldIndex("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, QualifiedNameDisambiguates) {
  Schema s = TwoTableSchema();
  EXPECT_EQ(s.FieldIndex("a.x").value(), 0u);
  EXPECT_EQ(s.FieldIndex("b.x").value(), 2u);
}

TEST(SchemaTest, MissingColumnIsNotFound) {
  Schema s = TwoTableSchema();
  EXPECT_EQ(s.FieldIndex("w").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.FieldIndex("c.x").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(s.TryFieldIndex("w").has_value());
}

TEST(SchemaTest, ConcatPreservesOrderAndQualifiers) {
  Schema a({{"x", DataType::kInt64, "a"}});
  Schema b({{"y", DataType::kDouble, "b"}});
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.num_fields(), 2u);
  EXPECT_EQ(c.field(0).QualifiedName(), "a.x");
  EXPECT_EQ(c.field(1).QualifiedName(), "b.y");
}

TEST(SchemaTest, ToStringListsFields) {
  Schema a({{"x", DataType::kInt64, "t"}});
  EXPECT_EQ(a.ToString(), "(t.x:INT64)");
}

TEST(FieldTest, QualifiedNameFallsBackToBare) {
  Field f{"col", DataType::kDouble, ""};
  EXPECT_EQ(f.QualifiedName(), "col");
}

}  // namespace
}  // namespace acquire
