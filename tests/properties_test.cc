// Parameterized end-to-end sweeps over dimensionality, aggregate ratio and
// norms, asserting Definition 1's guarantees and implementation-equivalence
// invariants (incremental == naive, all evaluation layers agree).

#include <gtest/gtest.h>
#include <cmath>

#include "core/acquire.h"
#include "index/grid_index.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

struct SweepParam {
  size_t d;
  double ratio;
  NormKind norm;
};

Norm MakeNorm(NormKind kind) {
  switch (kind) {
    case NormKind::kL1:
      return Norm::L1();
    case NormKind::kL2:
      return Norm::L2();
    case NormKind::kLp:
      return Norm::Lp(3.0);
    case NormKind::kLInf:
      return Norm::LInf();
  }
  return Norm::L1();
}

class AcquireSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AcquireSweepTest, GuaranteesHoldAcrossConfigurations) {
  const SweepParam param = GetParam();
  SyntheticOptions options;
  options.d = param.d;
  options.rows = 1500;
  options.target = 1.0;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  double base =
      probe.EvaluateQueryValue(std::vector<double>(param.d, 0.0)).value();
  ASSERT_GT(base, 0.0);
  fixture->task.constraint.target = base / param.ratio;

  AcquireOptions acq;
  acq.norm = MakeNorm(param.norm);
  acq.delta = 0.05;

  // Run with all three evaluation layers and the naive ablation.
  CachedEvaluationLayer cached(&fixture->task);
  DirectEvaluationLayer direct(&fixture->task);
  RefinedSpace space(&fixture->task, acq.gamma, acq.norm);
  GridIndexEvaluationLayer indexed(&fixture->task, space.step());
  CachedEvaluationLayer naive_layer(&fixture->task);
  AcquireOptions naive = acq;
  naive.use_incremental = false;

  auto r_cached = RunAcquire(fixture->task, &cached, acq);
  auto r_direct = RunAcquire(fixture->task, &direct, acq);
  auto r_indexed = RunAcquire(fixture->task, &indexed, acq);
  auto r_naive = RunAcquire(fixture->task, &naive_layer, naive);
  ASSERT_TRUE(r_cached.ok() && r_direct.ok() && r_indexed.ok() &&
              r_naive.ok());

  // Definition 1(a): every answer within delta.
  ASSERT_TRUE(r_cached->satisfied);
  for (const RefinedQuery& q : r_cached->queries) {
    EXPECT_LE(q.error, acq.delta + 1e-12);
  }
  // Answers sorted by QScore and first answer is a minimum.
  for (size_t i = 1; i < r_cached->queries.size(); ++i) {
    EXPECT_LE(r_cached->queries[i - 1].qscore, r_cached->queries[i].qscore);
  }

  // Layer equivalence: same answers regardless of the evaluation back end.
  auto coords_of = [](const AcquireResult& r) {
    std::vector<GridCoord> out;
    for (const auto& q : r.queries) out.push_back(q.coord);
    return out;
  };
  EXPECT_EQ(coords_of(*r_cached), coords_of(*r_direct));
  EXPECT_EQ(coords_of(*r_cached), coords_of(*r_indexed));
  EXPECT_EQ(coords_of(*r_cached), coords_of(*r_naive));
  // Incremental computed each aggregate from one cell query; naive did not.
  EXPECT_EQ(r_cached->cell_queries, r_cached->queries_explored);
  EXPECT_EQ(r_naive->cell_queries, 0u);
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const char* norm = "";
  switch (info.param.norm) {
    case NormKind::kL1:
      norm = "L1";
      break;
    case NormKind::kL2:
      norm = "L2";
      break;
    case NormKind::kLp:
      norm = "L3";
      break;
    case NormKind::kLInf:
      norm = "Linf";
      break;
  }
  return "d" + std::to_string(info.param.d) + "_r" +
         std::to_string(static_cast<int>(info.param.ratio * 100)) + "_" +
         norm;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AcquireSweepTest,
    ::testing::Values(SweepParam{1, 0.3, NormKind::kL1},
                      SweepParam{1, 0.6, NormKind::kLInf},
                      SweepParam{2, 0.3, NormKind::kL1},
                      SweepParam{2, 0.3, NormKind::kL2},
                      SweepParam{2, 0.6, NormKind::kLInf},
                      SweepParam{2, 0.6, NormKind::kLp},
                      SweepParam{3, 0.4, NormKind::kL1},
                      SweepParam{3, 0.6, NormKind::kL2},
                      SweepParam{3, 0.6, NormKind::kLInf},
                      SweepParam{4, 0.5, NormKind::kL1}),
    SweepName);

// Containment (Theorem 3): if Q' is contained in Q'' then every tuple of Q'
// satisfies Q'' — verified against the data for random coordinate pairs.
class ContainmentTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ContainmentTest, ContainedQueriesAreSubsets) {
  SyntheticOptions options;
  options.d = GetParam();
  options.rows = 800;
  auto fixture = MakeSyntheticTask(options);
  ASSERT_NE(fixture, nullptr);
  RefinedSpace space(&fixture->task, 10.0, Norm::L1());
  CachedEvaluationLayer layer(&fixture->task);

  Rng rng(31 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    GridCoord inner(options.d);
    GridCoord outer(options.d);
    for (size_t i = 0; i < options.d; ++i) {
      inner[i] = static_cast<int32_t>(rng.NextBounded(5));
      outer[i] = inner[i] + static_cast<int32_t>(rng.NextBounded(4));
    }
    auto small = layer.EvaluateBox(space.QueryBox(inner));
    auto big = layer.EvaluateBox(space.QueryBox(outer));
    ASSERT_TRUE(small.ok() && big.ok());
    // COUNT is monotone under containment.
    EXPECT_LE(fixture->task.agg.ops->Final(*small),
              fixture->task.agg.ops->Final(*big));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ContainmentTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace acquire
