#include "sql/binder.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "workload/tpch_gen.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TpchOptions tpch;
    tpch.suppliers = 50;
    tpch.parts = 100;
    tpch.lineitems = 1000;
    ASSERT_TRUE(GenerateTpch(tpch, &catalog_).ok());
    UsersOptions users;
    users.users = 1000;
    ASSERT_TRUE(GenerateUsers(users, &catalog_).ok());
  }

  QuerySpec MustBind(const std::string& sql, const Binder& binder) {
    auto ast = ParseAcqSql(sql);
    EXPECT_TRUE(ast.ok()) << ast.status().ToString();
    auto spec = binder.BindQuery(*ast);
    EXPECT_TRUE(spec.ok()) << spec.status().ToString();
    return spec.ok() ? spec.value() : QuerySpec{};
  }

  Catalog catalog_;
};

TEST_F(BinderTest, NumericPredicatesBecomeRefinableDims) {
  Binder binder(&catalog_);
  QuerySpec spec = MustBind(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 500 "
      "WHERE l_quantity < 20 AND l_discount <= 0.05 NOREFINE",
      binder);
  ASSERT_EQ(spec.predicates.size(), 1u);
  EXPECT_TRUE(spec.predicates[0].refinable);
  ASSERT_EQ(spec.fixed_filters.size(), 1u);  // NOREFINE lowers to a filter
  EXPECT_EQ(spec.fixed_filters[0]->ToString(), "l_discount <= 0.05");
  EXPECT_EQ(spec.agg_kind, AggregateKind::kCount);
  EXPECT_DOUBLE_EQ(spec.target, 500.0);
}

TEST_F(BinderTest, MissingConstraintRejected) {
  Binder binder(&catalog_);
  auto ast = ParseAcqSql("SELECT * FROM lineitem WHERE l_quantity < 20");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(binder.BindQuery(*ast).ok());
}

TEST_F(BinderTest, ShrinkingConstraintOpsRejected) {
  Binder binder(&catalog_);
  auto ast =
      ParseAcqSql("SELECT * FROM lineitem CONSTRAINT COUNT(*) < 10 "
                  "WHERE l_quantity < 20");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(binder.BindQuery(*ast).status().IsUnsupported());
}

TEST_F(BinderTest, CrossTableEqualityBecomesJoin) {
  Binder binder(&catalog_);
  QuerySpec spec = MustBind(
      "SELECT * FROM supplier, partsupp CONSTRAINT COUNT(*) = 100 "
      "WHERE s_suppkey = ps_suppkey NOREFINE AND s_acctbal < 2000",
      binder);
  ASSERT_EQ(spec.joins.size(), 1u);
  EXPECT_FALSE(spec.joins[0].refinable);
  EXPECT_EQ(spec.joins[0].left_column, "s_suppkey");
}

TEST_F(BinderTest, JoinsAreRefinableByDefault) {
  Binder binder(&catalog_);
  QuerySpec spec = MustBind(
      "SELECT * FROM supplier, partsupp CONSTRAINT COUNT(*) = 100 "
      "WHERE s_suppkey = ps_suppkey AND s_acctbal < 2000",
      binder);
  ASSERT_EQ(spec.joins.size(), 1u);
  EXPECT_TRUE(spec.joins[0].refinable);
}

TEST_F(BinderTest, BetweenSplitsIntoTwoOneSidedPredicates) {
  Binder binder(&catalog_);
  QuerySpec spec = MustBind(
      "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
      "WHERE 25 <= age <= 35",
      binder);
  ASSERT_EQ(spec.predicates.size(), 2u);
  EXPECT_EQ(spec.predicates[0].op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(spec.predicates[0].bound, 25.0);
  EXPECT_EQ(spec.predicates[1].op, CompareOp::kLe);
  EXPECT_DOUBLE_EQ(spec.predicates[1].bound, 35.0);
}

TEST_F(BinderTest, NorefineBetweenStaysFixed) {
  Binder binder(&catalog_);
  QuerySpec spec = MustBind(
      "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
      "WHERE age BETWEEN 25 AND 35 NOREFINE AND income < 50000",
      binder);
  EXPECT_EQ(spec.predicates.size(), 1u);
  EXPECT_EQ(spec.fixed_filters.size(), 1u);
}

TEST_F(BinderTest, StringEqualityDegradesToFixedWithoutOntology) {
  Binder binder(&catalog_);
  QuerySpec spec = MustBind(
      "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
      "WHERE gender = 'Women' AND income < 50000",
      binder);
  EXPECT_EQ(spec.predicates.size(), 1u);
  EXPECT_EQ(spec.fixed_filters.size(), 1u);
  EXPECT_TRUE(spec.categorical_predicates.empty());
}

TEST_F(BinderTest, StrictCategoricalModeErrors) {
  Binder binder(&catalog_);
  binder.set_strict_categorical(true);
  auto ast = ParseAcqSql(
      "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
      "WHERE gender = 'Women' AND income < 50000");
  ASSERT_TRUE(ast.ok());
  EXPECT_TRUE(binder.BindQuery(*ast).status().IsUnsupported());
}

TEST_F(BinderTest, RegisteredOntologyEnablesCategoricalRefinement) {
  OntologyTree tree;
  ASSERT_TRUE(tree.AddNode("US", "").ok());
  ASSERT_TRUE(tree.AddNode("EastCoast", "US").ok());
  ASSERT_TRUE(tree.AddNode("Boston", "EastCoast").ok());
  ASSERT_TRUE(tree.AddNode("Austin", "US").ok());
  Binder binder(&catalog_);
  binder.RegisterOntology("city", &tree);
  QuerySpec spec = MustBind(
      "SELECT * FROM users CONSTRAINT COUNT(*) = 100 "
      "WHERE city IN ('Boston', 'Austin') AND income < 50000",
      binder);
  ASSERT_EQ(spec.categorical_predicates.size(), 1u);
  EXPECT_EQ(spec.categorical_predicates[0].categories,
            (std::vector<std::string>{"Boston", "Austin"}));
}

TEST_F(BinderTest, UnknownAggregateBecomesUda) {
  Binder binder(&catalog_);
  QuerySpec spec = MustBind(
      "SELECT * FROM lineitem CONSTRAINT GEOMEAN(l_quantity) = 10 "
      "WHERE l_quantity < 20",
      binder);
  EXPECT_EQ(spec.agg_kind, AggregateKind::kUda);
  EXPECT_EQ(spec.uda_name, "GEOMEAN");
}

TEST_F(BinderTest, UnknownColumnRejected) {
  Binder binder(&catalog_);
  auto ast = ParseAcqSql(
      "SELECT * FROM users CONSTRAINT COUNT(*) = 100 WHERE nope = 'x'");
  ASSERT_TRUE(ast.ok());
  EXPECT_FALSE(binder.BindQuery(*ast).ok());
}

TEST_F(BinderTest, PlanSqlEndToEnd) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM lineitem CONSTRAINT COUNT(*) = 500 "
      "WHERE l_quantity < 20 AND l_discount <= 0.05 NOREFINE");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 1u);
  EXPECT_EQ(task->constraint.target, 500.0);
}

TEST_F(BinderTest, NumericEqualityRefinableExpandsTwoDims) {
  Binder binder(&catalog_);
  auto task = binder.PlanSql(
      "SELECT * FROM part CONSTRAINT COUNT(*) = 50 WHERE p_size = 10");
  ASSERT_TRUE(task.ok()) << task.status().ToString();
  EXPECT_EQ(task->d(), 2u);
}

}  // namespace
}  // namespace acquire
