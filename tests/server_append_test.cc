// Live ingestion through the service layer: the APPEND verb, its type
// coercion and atomicity rules, generation-driven invalidation of cached
// results, and the result cache's SaveToFile/LoadFromFile persistence
// (stale-generation entries dropped on load).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/result_cache.h"
#include "server/server.h"
#include "workload/users_gen.h"

namespace acquire {
namespace {

JsonValue MustParse(const std::string& line) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? *parsed : JsonValue::Null();
}

double StatsNumber(AcqServer* server, const char* field) {
  JsonValue stats = MustParse(server->HandleRequestLine("{\"cmd\":\"STATS\"}"));
  const JsonValue* counters = stats.Get("stats");
  return counters != nullptr ? counters->GetNumber(field, -1.0) : -1.0;
}

// Each test gets its own catalog: APPEND mutates it, so sharing one across
// tests (the usual server_test idiom) would couple their row counts.
void MakeUsersCatalog(Catalog* catalog, size_t rows = 2000) {
  UsersOptions options;
  options.users = rows;
  ASSERT_TRUE(GenerateUsers(options, catalog).ok());
}

// One users row matching the 9-column schema: user_id(i64), age(i64),
// income(d), engagement(d), account_age_days(i64), city/gender/education/
// interest (strings).
JsonValue UsersRow(double user_id, double age, double income) {
  JsonValue row = JsonValue::Array();
  row.Append(JsonValue::Number(user_id));
  row.Append(JsonValue::Number(age));
  row.Append(JsonValue::Number(income));
  row.Append(JsonValue::Number(0.5));
  row.Append(JsonValue::Number(120));
  row.Append(JsonValue::Str("nyc"));
  row.Append(JsonValue::Str("f"));
  row.Append(JsonValue::Str("msc"));
  row.Append(JsonValue::Str("gadgets"));
  return row;
}

// UsersRow with cell `index` replaced — for type-mismatch cases (the
// JsonValue array accessor is const, so rebuild instead of patching).
JsonValue UsersRowWithCell(size_t index, JsonValue bad) {
  const JsonValue good = UsersRow(90001, 25, 1000.0);
  JsonValue row = JsonValue::Array();
  for (size_t i = 0; i < good.size(); ++i) {
    row.Append(i == index ? std::move(bad) : JsonValue(good.AsArray()[i]));
  }
  return row;
}

std::string AppendRequest(const std::string& table,
                          std::vector<JsonValue> rows) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("APPEND"));
  request.Set("table", JsonValue::Str(table));
  JsonValue array = JsonValue::Array();
  for (auto& row : rows) array.Append(std::move(row));
  request.Set("rows", std::move(array));
  return request.Dump();
}

constexpr char kSql[] =
    "SELECT * FROM users CONSTRAINT COUNT(*) >= 200 WHERE age <= 30 AND "
    "income >= 60000";

std::string SubmitLine() {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::Str("SUBMIT"));
  request.Set("sql", JsonValue::Str(kSql));
  request.Set("wait", JsonValue::Bool(true));
  return request.Dump();
}

TEST(ServerAppendTest, AppendsRowsAndBumpsGeneration) {
  Catalog catalog;
  MakeUsersCatalog(&catalog);
  AcqServer server(&catalog);
  auto table = catalog.GetTable("users");
  ASSERT_TRUE(table.ok());
  const size_t before = (*table)->num_rows();
  const uint64_t generation = catalog.generation();

  JsonValue reply = MustParse(server.HandleRequestLine(AppendRequest(
      "users", {UsersRow(90001, 25, 70000.0), UsersRow(90002, 61, 90000.0)})));
  ASSERT_TRUE(reply.GetBool("ok", false)) << reply.Dump();
  EXPECT_EQ(reply.GetString("table"), "users");
  EXPECT_EQ(reply.GetNumber("appended", -1.0), 2.0);
  EXPECT_EQ(reply.GetNumber("num_rows", -1.0),
            static_cast<double>(before + 2));
  EXPECT_EQ(reply.GetNumber("generation", -1.0),
            static_cast<double>(generation + 1));
  EXPECT_EQ((*table)->num_rows(), before + 2);
  EXPECT_EQ(catalog.generation(), generation + 1);

  EXPECT_EQ(StatsNumber(&server, "appends"), 1.0);
  EXPECT_EQ(StatsNumber(&server, "append_rows"), 2.0);
  EXPECT_EQ(StatsNumber(&server, "catalog_generation"),
            static_cast<double>(generation + 1));
}

TEST(ServerAppendTest, RejectsMalformedAppends) {
  Catalog catalog;
  MakeUsersCatalog(&catalog, 500);
  AcqServer server(&catalog);
  auto table = catalog.GetTable("users");
  ASSERT_TRUE(table.ok());
  const size_t before = (*table)->num_rows();

  struct Case {
    std::string line;
    const char* why;
  };
  std::vector<Case> cases;
  cases.push_back({"{\"cmd\":\"APPEND\"}", "missing table"});
  cases.push_back({"{\"cmd\":\"APPEND\",\"table\":\"users\"}", "missing rows"});
  cases.push_back({"{\"cmd\":\"APPEND\",\"table\":\"users\",\"rows\":7}",
                   "rows not an array"});
  cases.push_back(
      {AppendRequest("nope", {UsersRow(1, 25, 1000.0)}), "unknown table"});
  {
    // Wrong arity.
    JsonValue short_row = JsonValue::Array();
    short_row.Append(JsonValue::Number(1));
    cases.push_back({AppendRequest("users", {std::move(short_row)}),
                     "wrong column count"});
  }
  {
    // Fractional value into the int64 age column must not silently round.
    cases.push_back({AppendRequest("users", {UsersRow(90001, 25.5, 1000.0)}),
                     "non-integral int64"});
  }
  {
    // String into a double column (income).
    JsonValue row = UsersRowWithCell(2, JsonValue::Str("oops"));
    cases.push_back(
        {AppendRequest("users", {std::move(row)}), "string in double column"});
  }
  {
    // A bad row anywhere rejects the whole batch (all-or-nothing).
    JsonValue bad = UsersRowWithCell(1, JsonValue::Str("thirty"));
    cases.push_back(
        {AppendRequest("users", {UsersRow(90002, 30, 1000.0), std::move(bad)}),
         "bad second row"});
  }

  const uint64_t generation = catalog.generation();
  for (const Case& c : cases) {
    JsonValue reply = MustParse(server.HandleRequestLine(c.line));
    EXPECT_FALSE(reply.GetBool("ok", true)) << c.why << ": " << reply.Dump();
    EXPECT_EQ((*table)->num_rows(), before) << c.why;
    EXPECT_EQ(catalog.generation(), generation) << c.why;
  }
  EXPECT_EQ(StatsNumber(&server, "appends"), 0.0);
}

TEST(ServerAppendTest, ConstCatalogServerRefusesAppend) {
  Catalog catalog;
  MakeUsersCatalog(&catalog, 500);
  // The read-only ctor: APPEND must answer Unsupported, not crash or write.
  AcqServer server(static_cast<const Catalog*>(&catalog));
  JsonValue reply = MustParse(
      server.HandleRequestLine(AppendRequest("users", {UsersRow(1, 25, 1.0)})));
  EXPECT_FALSE(reply.GetBool("ok", true)) << reply.Dump();
  EXPECT_EQ(reply.GetString("code"), "Unsupported") << reply.Dump();
}

// The headline invalidation guarantee: a cached result must stop being
// served the moment an APPEND lands, because the answer may have changed.
TEST(ServerAppendTest, AppendInvalidatesCachedResults) {
  Catalog catalog;
  MakeUsersCatalog(&catalog);
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  AcqServer server(&catalog, options);

  JsonValue first = MustParse(server.HandleRequestLine(SubmitLine()));
  ASSERT_TRUE(first.GetBool("ok", false)) << first.Dump();
  ASSERT_EQ(first.GetString("state"), "done") << first.Dump();

  // Warm: the repeat answers from the cache.
  MustParse(server.HandleRequestLine(SubmitLine()));
  EXPECT_EQ(StatsNumber(&server, "cache_hits"), 1.0);
  const double completed_before = StatsNumber(&server, "completed");

  // Ingest a row that the constraint region could include.
  JsonValue appended = MustParse(server.HandleRequestLine(
      AppendRequest("users", {UsersRow(90001, 22, 80000.0)})));
  ASSERT_TRUE(appended.GetBool("ok", false)) << appended.Dump();

  // The same SQL now fingerprints against the new generation: no hit, a
  // fresh run, and the new reply reflects the grown table.
  JsonValue after = MustParse(server.HandleRequestLine(SubmitLine()));
  ASSERT_TRUE(after.GetBool("ok", false)) << after.Dump();
  EXPECT_EQ(StatsNumber(&server, "cache_hits"), 1.0);  // unchanged
  EXPECT_EQ(StatsNumber(&server, "completed"), completed_before + 1);

  // And the post-append task caches independently.
  MustParse(server.HandleRequestLine(SubmitLine()));
  EXPECT_EQ(StatsNumber(&server, "cache_hits"), 2.0);
}

// --- cache persistence ----------------------------------------------------

CachedResultPtr MakeEntry(size_t bytes, uint64_t generation,
                          const char* tag) {
  auto entry = std::make_shared<CachedResult>();
  JsonValue report = JsonValue::Object();
  report.Set("tag", JsonValue::Str(tag));
  report.Set("wall_ms", JsonValue::Number(12.25));
  entry->report = std::move(report);
  entry->queries_explored = 42;
  entry->cell_queries = 7;
  entry->bytes = bytes;
  entry->cost_ms = 3.5;
  entry->generation = generation;
  return entry;
}

TaskFingerprint Fp(uint64_t n) { return TaskFingerprint{n * 8, ~n}; }

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(ResultCachePersistenceTest, RoundTripsAndDropsStaleGenerations) {
  const std::string path = TempPath("acq_cache_roundtrip.snapshot");
  std::remove(path.c_str());
  {
    ResultCache cache(1 << 20);
    cache.Insert(Fp(1), MakeEntry(400, 5, "current-a"));
    cache.Insert(Fp(2), MakeEntry(500, 5, "current-b"));
    cache.Insert(Fp(3), MakeEntry(600, 4, "stale"));
    ASSERT_TRUE(cache.SaveToFile(path).ok());
  }

  ResultCache restored(1 << 20);
  size_t loaded = 0, dropped = 0;
  ASSERT_TRUE(restored.LoadFromFile(path, 5, &loaded, &dropped).ok());
  EXPECT_EQ(loaded, 2u);
  EXPECT_EQ(dropped, 1u);

  CachedResultPtr a = restored.Lookup(Fp(1));
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->report.GetString("tag"), "current-a");
  EXPECT_EQ(a->report.GetNumber("wall_ms", -1.0), 12.25);
  EXPECT_EQ(a->queries_explored, 42u);
  EXPECT_EQ(a->cell_queries, 7u);
  EXPECT_EQ(a->bytes, 400u);
  EXPECT_EQ(a->cost_ms, 3.5);
  EXPECT_EQ(a->generation, 5u);
  EXPECT_NE(restored.Lookup(Fp(2)), nullptr);
  EXPECT_EQ(restored.Lookup(Fp(3)), nullptr);  // stale: dropped on load
  std::remove(path.c_str());
}

TEST(ResultCachePersistenceTest, MissingFileIsNotFound) {
  ResultCache cache(1 << 20);
  const std::string path = TempPath("acq_cache_never_written.snapshot");
  std::remove(path.c_str());
  Status loaded = cache.LoadFromFile(path, 0);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), StatusCode::kNotFound);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCachePersistenceTest, CorruptFileIsRejectedWithoutPartialLoad) {
  const std::string path = TempPath("acq_cache_corrupt.snapshot");
  {
    std::ofstream out(path);
    out << "not-the-header\n1 2 3\n";
  }
  ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.LoadFromFile(path, 0).ok());
  EXPECT_EQ(cache.stats().entries, 0u);

  // Right header, garbage entry metadata.
  {
    std::ofstream out(path);
    out << "acq-cache-v1\nnot numbers at all\n{}\n";
  }
  EXPECT_FALSE(cache.LoadFromFile(path, 0).ok());
  std::remove(path.c_str());
}

TEST(ResultCachePersistenceTest, LoadRespectsByteLimit) {
  const std::string path = TempPath("acq_cache_limit.snapshot");
  std::remove(path.c_str());
  {
    ResultCache cache(1 << 20);
    for (uint64_t n = 1; n <= 8; ++n) {
      cache.Insert(Fp(n), MakeEntry(130, 1, "entry"));
    }
    ASSERT_TRUE(cache.SaveToFile(path).ok());
  }
  // The restoring cache is much smaller: Insert's normal eviction applies,
  // so the load succeeds but retains only what fits.
  ResultCache small(8 * 130);
  size_t loaded = 0, dropped = 0;
  ASSERT_TRUE(small.LoadFromFile(path, 1, &loaded, &dropped).ok());
  EXPECT_EQ(loaded, 8u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_LE(small.stats().bytes, 8u * 130u);
  std::remove(path.c_str());
}

TEST(ResultCachePersistenceTest, ServerWarmStartServesFromSnapshot) {
  // End-to-end: run against a server, snapshot its cache, load it into a
  // second server over the same catalog, and the reply must be served from
  // the warmed cache byte-identically (modulo the session id).
  Catalog catalog;
  MakeUsersCatalog(&catalog);
  ServerOptions options;
  options.cache_bytes = 16ull << 20;
  const std::string path = TempPath("acq_cache_warm.snapshot");
  std::remove(path.c_str());

  std::string fresh_reply;
  {
    AcqServer server(&catalog, options);
    JsonValue fresh = MustParse(server.HandleRequestLine(SubmitLine()));
    ASSERT_TRUE(fresh.GetBool("ok", false)) << fresh.Dump();
    fresh_reply = fresh.Dump();
    ASSERT_TRUE(server.sessions().cache().SaveToFile(path).ok());
  }

  AcqServer warmed(&catalog, options);
  size_t loaded = 0, dropped = 0;
  ASSERT_TRUE(warmed.sessions()
                  .cache()
                  .LoadFromFile(path, catalog.generation(), &loaded, &dropped)
                  .ok());
  ASSERT_EQ(loaded, 1u);
  EXPECT_EQ(dropped, 0u);

  JsonValue cached = MustParse(warmed.HandleRequestLine(SubmitLine()));
  ASSERT_TRUE(cached.GetBool("ok", false)) << cached.Dump();
  EXPECT_EQ(StatsNumber(&warmed, "cache_hits"), 1.0);
  EXPECT_EQ(StatsNumber(&warmed, "completed"), 0.0);  // no run needed

  // Byte-identity of everything except the outer session id.
  JsonValue fresh = MustParse(fresh_reply);
  auto without_id = [](const JsonValue& response) {
    JsonValue out = JsonValue::Object();
    for (const auto& [key, value] : response.Members()) {
      if (key != "id") out.Set(key, JsonValue(value));
    }
    return out.Dump();
  };
  EXPECT_EQ(without_id(cached), without_id(fresh));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace acquire
