#include "exec/approx_evaluation.h"

#include <gtest/gtest.h>
#include <cmath>

#include "core/acquire.h"
#include "exec/materialize.h"
#include "test_util.h"

namespace acquire {
namespace {

using test_util::MakeSyntheticTask;
using test_util::SyntheticOptions;

std::unique_ptr<test_util::SyntheticTask> Fixture(AggregateKind agg,
                                                  size_t rows = 20000) {
  SyntheticOptions options;
  options.d = 2;
  options.rows = rows;
  options.agg = agg;
  options.target = 100.0;
  return MakeSyntheticTask(options);
}

TEST(SamplingLayerTest, CountEstimateIsCloseToExact) {
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer exact(&fixture->task);
  SamplingEvaluationLayer sampled(&fixture->task, 0.1);
  ASSERT_TRUE(sampled.Prepare().ok());
  EXPECT_NEAR(sampled.sample_size(), 2000u, 300u);
  for (double p : {0.0, 10.0, 30.0}) {
    double e = exact.EvaluateQueryValue({p, p}).value();
    double s = sampled.EvaluateQueryValue({p, p}).value();
    // 10% Bernoulli sample: ~4-sigma band for counts in the thousands.
    EXPECT_NEAR(s, e, std::max(80.0, 0.25 * e)) << "pscore " << p;
  }
}

TEST(SamplingLayerTest, SumScalesByInverseRate) {
  auto fixture = Fixture(AggregateKind::kSum);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer exact(&fixture->task);
  SamplingEvaluationLayer sampled(&fixture->task, 0.2);
  double e = exact.EvaluateQueryValue({20.0, 20.0}).value();
  double s = sampled.EvaluateQueryValue({20.0, 20.0}).value();
  EXPECT_NEAR(s, e, 0.15 * e);
}

TEST(SamplingLayerTest, AvgIsUnscaled) {
  auto fixture = Fixture(AggregateKind::kAvg);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer exact(&fixture->task);
  SamplingEvaluationLayer sampled(&fixture->task, 0.2);
  double e = exact.EvaluateQueryValue({20.0, 20.0}).value();
  double s = sampled.EvaluateQueryValue({20.0, 20.0}).value();
  // AVG over uniform [0, 1000] values: both near 500.
  EXPECT_NEAR(s, e, 0.1 * e);
}

TEST(SamplingLayerTest, InvalidRateAndUdaRejected) {
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  SamplingEvaluationLayer zero(&fixture->task, 0.0);
  EXPECT_FALSE(zero.Prepare().ok());
  SamplingEvaluationLayer above(&fixture->task, 1.5);
  EXPECT_FALSE(above.Prepare().ok());
  fixture->task.agg.kind = AggregateKind::kUda;
  SamplingEvaluationLayer uda(&fixture->task, 0.5);
  EXPECT_TRUE(uda.Prepare().IsUnsupported());
}

TEST(SamplingLayerTest, DeterministicGivenSeed) {
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  SamplingEvaluationLayer a(&fixture->task, 0.1, 7);
  SamplingEvaluationLayer b(&fixture->task, 0.1, 7);
  EXPECT_DOUBLE_EQ(a.EvaluateQueryValue({15.0, 5.0}).value(),
                   b.EvaluateQueryValue({15.0, 5.0}).value());
}

TEST(SamplingLayerTest, AcquireRunsOnSampledLayer) {
  // The paper's small-sample experiment (Figure 10a's 1K point): ACQUIRE on
  // a sample still meets the constraint when validated against the sample's
  // own estimates.
  auto fixture = Fixture(AggregateKind::kCount, 50000);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  double base = probe.EvaluateQueryValue({0.0, 0.0}).value();
  fixture->task.constraint.target = base * 2.0;

  SamplingEvaluationLayer layer(&fixture->task, 0.05);
  auto result = RunAcquire(fixture->task, &layer, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  // Validate the recommended query against the full data: the sampling
  // noise at 5% should keep the true aggregate within ~20% of the target.
  double truth =
      probe.EvaluateQueryValue(result->queries[0].pscores).value();
  EXPECT_NEAR(truth, fixture->task.constraint.target,
              0.2 * fixture->task.constraint.target);
}

TEST(HistogramLayerTest, MarginalSelectivityIsExactPerDimension) {
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer exact(&fixture->task);
  HistogramEvaluationLayer hist(&fixture->task, 128);
  // One-dimensional boxes (other dim unbounded) stress a single marginal.
  double cap = 1e9;
  for (double p : {0.0, 15.0, 40.0}) {
    auto e = exact.EvaluateBox({PScoreRange{-1, p}, PScoreRange{-1, cap}});
    auto h = hist.EvaluateBox({PScoreRange{-1, p}, PScoreRange{-1, cap}});
    ASSERT_TRUE(e.ok() && h.ok());
    double exact_count = fixture->task.agg.ops->Final(*e);
    double est_count = fixture->task.agg.ops->Final(*h);
    EXPECT_NEAR(est_count, exact_count,
                std::max(50.0, 0.05 * exact_count));
  }
}

TEST(HistogramLayerTest, IndependentColumnsEstimateWell) {
  // The synthetic columns are independent, so the AVI assumption is valid
  // and the joint estimate should land close to the truth.
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer exact(&fixture->task);
  HistogramEvaluationLayer hist(&fixture->task, 128);
  for (double p : {5.0, 20.0, 50.0}) {
    double e = exact.EvaluateQueryValue({p, p}).value();
    double h = hist.EvaluateQueryValue({p, p}).value();
    EXPECT_NEAR(h, e, std::max(60.0, 0.1 * e)) << "pscore " << p;
  }
}

TEST(HistogramLayerTest, NonCountRejected) {
  auto fixture = Fixture(AggregateKind::kSum);
  ASSERT_NE(fixture, nullptr);
  HistogramEvaluationLayer hist(&fixture->task);
  EXPECT_TRUE(hist.Prepare().IsUnsupported());
}

TEST(HistogramLayerTest, NeverTouchesRowsAfterPrepare) {
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  HistogramEvaluationLayer hist(&fixture->task, 32);
  ASSERT_TRUE(hist.Prepare().ok());
  hist.ResetStats();
  ASSERT_TRUE(hist.EvaluateQueryValue({10.0, 10.0}).ok());
  EXPECT_EQ(hist.stats().tuples_scanned, 32u * 2u);  // bucket reads only
}

TEST(MaterializeTest, TuplesMatchReportedAggregate) {
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  DirectEvaluationLayer probe(&fixture->task);
  double base = probe.EvaluateQueryValue({0.0, 0.0}).value();
  fixture->task.constraint.target = base * 1.7;
  CachedEvaluationLayer layer(&fixture->task);
  auto result = RunAcquire(fixture->task, &layer, {});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->satisfied);
  const RefinedQuery& q = result->queries[0];
  auto tuples = MaterializeRefinedQuery(fixture->task, q.pscores);
  ASSERT_TRUE(tuples.ok());
  EXPECT_DOUBLE_EQ(static_cast<double>((*tuples)->num_rows()), q.aggregate);
  // Every materialized tuple genuinely satisfies the refined predicates.
  for (size_t row = 0; row < (*tuples)->num_rows(); ++row) {
    for (size_t i = 0; i < fixture->task.d(); ++i) {
      EXPECT_LE(fixture->task.dims[i]->NeededPScore(**tuples, row),
                q.pscores[i] + 1e-12);
    }
  }
}

TEST(MaterializeTest, OriginalQueryAndArityChecks) {
  auto fixture = Fixture(AggregateKind::kCount);
  ASSERT_NE(fixture, nullptr);
  auto original = MaterializeOriginalQuery(fixture->task);
  ASSERT_TRUE(original.ok());
  DirectEvaluationLayer probe(&fixture->task);
  EXPECT_DOUBLE_EQ(static_cast<double>((*original)->num_rows()),
                   probe.EvaluateQueryValue({0.0, 0.0}).value());
  EXPECT_FALSE(MaterializeRefinedQuery(fixture->task, {1.0}).ok());
}

}  // namespace
}  // namespace acquire
