
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_sampling.cc" "bench/CMakeFiles/ablation_sampling.dir/ablation_sampling.cc.o" "gcc" "bench/CMakeFiles/ablation_sampling.dir/ablation_sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acq_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
