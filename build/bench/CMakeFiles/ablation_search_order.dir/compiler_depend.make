# Empty compiler generated dependencies file for ablation_search_order.
# This may be replaced when dependencies are built.
