# Empty compiler generated dependencies file for fig9_dimensionality.
# This may be replaced when dependencies are built.
