# Empty dependencies file for fig10_thresholds.
# This may be replaced when dependencies are built.
