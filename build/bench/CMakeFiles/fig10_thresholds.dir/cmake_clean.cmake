file(REMOVE_RECURSE
  "CMakeFiles/fig10_thresholds.dir/fig10_thresholds.cc.o"
  "CMakeFiles/fig10_thresholds.dir/fig10_thresholds.cc.o.d"
  "fig10_thresholds"
  "fig10_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
