file(REMOVE_RECURSE
  "CMakeFiles/join_refinement.dir/join_refinement.cc.o"
  "CMakeFiles/join_refinement.dir/join_refinement.cc.o.d"
  "join_refinement"
  "join_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
