# Empty dependencies file for join_refinement.
# This may be replaced when dependencies are built.
