# Empty compiler generated dependencies file for skew.
# This may be replaced when dependencies are built.
