file(REMOVE_RECURSE
  "CMakeFiles/skew.dir/skew.cc.o"
  "CMakeFiles/skew.dir/skew.cc.o.d"
  "skew"
  "skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
