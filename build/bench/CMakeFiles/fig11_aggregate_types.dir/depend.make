# Empty dependencies file for fig11_aggregate_types.
# This may be replaced when dependencies are built.
