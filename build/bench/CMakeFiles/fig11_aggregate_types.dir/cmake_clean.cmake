file(REMOVE_RECURSE
  "CMakeFiles/fig11_aggregate_types.dir/fig11_aggregate_types.cc.o"
  "CMakeFiles/fig11_aggregate_types.dir/fig11_aggregate_types.cc.o.d"
  "fig11_aggregate_types"
  "fig11_aggregate_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_aggregate_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
