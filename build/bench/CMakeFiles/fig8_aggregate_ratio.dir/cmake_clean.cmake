file(REMOVE_RECURSE
  "CMakeFiles/fig8_aggregate_ratio.dir/fig8_aggregate_ratio.cc.o"
  "CMakeFiles/fig8_aggregate_ratio.dir/fig8_aggregate_ratio.cc.o.d"
  "fig8_aggregate_ratio"
  "fig8_aggregate_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_aggregate_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
