# Empty dependencies file for capability_table.
# This may be replaced when dependencies are built.
