file(REMOVE_RECURSE
  "CMakeFiles/capability_table.dir/capability_table.cc.o"
  "CMakeFiles/capability_table.dir/capability_table.cc.o.d"
  "capability_table"
  "capability_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
