# Empty compiler generated dependencies file for ablation_eval_layer.
# This may be replaced when dependencies are built.
