file(REMOVE_RECURSE
  "CMakeFiles/ablation_eval_layer.dir/ablation_eval_layer.cc.o"
  "CMakeFiles/ablation_eval_layer.dir/ablation_eval_layer.cc.o.d"
  "ablation_eval_layer"
  "ablation_eval_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eval_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
