# Empty dependencies file for fig10_table_size.
# This may be replaced when dependencies are built.
