# Empty compiler generated dependencies file for ad_campaign.
# This may be replaced when dependencies are built.
