file(REMOVE_RECURSE
  "CMakeFiles/ad_campaign.dir/ad_campaign.cc.o"
  "CMakeFiles/ad_campaign.dir/ad_campaign.cc.o.d"
  "ad_campaign"
  "ad_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
