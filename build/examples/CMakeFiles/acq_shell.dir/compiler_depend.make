# Empty compiler generated dependencies file for acq_shell.
# This may be replaced when dependencies are built.
