file(REMOVE_RECURSE
  "CMakeFiles/acq_shell.dir/acq_shell.cc.o"
  "CMakeFiles/acq_shell.dir/acq_shell.cc.o.d"
  "acq_shell"
  "acq_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
