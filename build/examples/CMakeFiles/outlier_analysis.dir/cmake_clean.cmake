file(REMOVE_RECURSE
  "CMakeFiles/outlier_analysis.dir/outlier_analysis.cc.o"
  "CMakeFiles/outlier_analysis.dir/outlier_analysis.cc.o.d"
  "outlier_analysis"
  "outlier_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
