# Empty compiler generated dependencies file for outlier_analysis.
# This may be replaced when dependencies are built.
