# Empty dependencies file for norm_tradeoffs.
# This may be replaced when dependencies are built.
