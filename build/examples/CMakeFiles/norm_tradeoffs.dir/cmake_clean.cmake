file(REMOVE_RECURSE
  "CMakeFiles/norm_tradeoffs.dir/norm_tradeoffs.cc.o"
  "CMakeFiles/norm_tradeoffs.dir/norm_tradeoffs.cc.o.d"
  "norm_tradeoffs"
  "norm_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/norm_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
