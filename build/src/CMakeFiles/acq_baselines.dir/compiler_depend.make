# Empty compiler generated dependencies file for acq_baselines.
# This may be replaced when dependencies are built.
