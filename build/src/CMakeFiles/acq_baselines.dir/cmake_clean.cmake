file(REMOVE_RECURSE
  "CMakeFiles/acq_baselines.dir/baselines/binsearch.cc.o"
  "CMakeFiles/acq_baselines.dir/baselines/binsearch.cc.o.d"
  "CMakeFiles/acq_baselines.dir/baselines/topk.cc.o"
  "CMakeFiles/acq_baselines.dir/baselines/topk.cc.o.d"
  "CMakeFiles/acq_baselines.dir/baselines/tqgen.cc.o"
  "CMakeFiles/acq_baselines.dir/baselines/tqgen.cc.o.d"
  "libacq_baselines.a"
  "libacq_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
