file(REMOVE_RECURSE
  "libacq_baselines.a"
)
