file(REMOVE_RECURSE
  "CMakeFiles/acq_expr.dir/expr/custom_metric_dim.cc.o"
  "CMakeFiles/acq_expr.dir/expr/custom_metric_dim.cc.o.d"
  "CMakeFiles/acq_expr.dir/expr/expr.cc.o"
  "CMakeFiles/acq_expr.dir/expr/expr.cc.o.d"
  "CMakeFiles/acq_expr.dir/expr/interval.cc.o"
  "CMakeFiles/acq_expr.dir/expr/interval.cc.o.d"
  "CMakeFiles/acq_expr.dir/expr/ontology.cc.o"
  "CMakeFiles/acq_expr.dir/expr/ontology.cc.o.d"
  "CMakeFiles/acq_expr.dir/expr/refinement_dim.cc.o"
  "CMakeFiles/acq_expr.dir/expr/refinement_dim.cc.o.d"
  "libacq_expr.a"
  "libacq_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
