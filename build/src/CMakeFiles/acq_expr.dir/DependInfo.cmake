
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/custom_metric_dim.cc" "src/CMakeFiles/acq_expr.dir/expr/custom_metric_dim.cc.o" "gcc" "src/CMakeFiles/acq_expr.dir/expr/custom_metric_dim.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/acq_expr.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/acq_expr.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/interval.cc" "src/CMakeFiles/acq_expr.dir/expr/interval.cc.o" "gcc" "src/CMakeFiles/acq_expr.dir/expr/interval.cc.o.d"
  "/root/repo/src/expr/ontology.cc" "src/CMakeFiles/acq_expr.dir/expr/ontology.cc.o" "gcc" "src/CMakeFiles/acq_expr.dir/expr/ontology.cc.o.d"
  "/root/repo/src/expr/refinement_dim.cc" "src/CMakeFiles/acq_expr.dir/expr/refinement_dim.cc.o" "gcc" "src/CMakeFiles/acq_expr.dir/expr/refinement_dim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
