file(REMOVE_RECURSE
  "libacq_expr.a"
)
