# Empty compiler generated dependencies file for acq_expr.
# This may be replaced when dependencies are built.
