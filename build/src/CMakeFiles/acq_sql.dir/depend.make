# Empty dependencies file for acq_sql.
# This may be replaced when dependencies are built.
