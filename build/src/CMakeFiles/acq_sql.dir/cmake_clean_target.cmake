file(REMOVE_RECURSE
  "libacq_sql.a"
)
