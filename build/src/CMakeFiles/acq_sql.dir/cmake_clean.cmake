file(REMOVE_RECURSE
  "CMakeFiles/acq_sql.dir/sql/binder.cc.o"
  "CMakeFiles/acq_sql.dir/sql/binder.cc.o.d"
  "CMakeFiles/acq_sql.dir/sql/explain.cc.o"
  "CMakeFiles/acq_sql.dir/sql/explain.cc.o.d"
  "CMakeFiles/acq_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/acq_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/acq_sql.dir/sql/parser.cc.o"
  "CMakeFiles/acq_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/acq_sql.dir/sql/printer.cc.o"
  "CMakeFiles/acq_sql.dir/sql/printer.cc.o.d"
  "libacq_sql.a"
  "libacq_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
