# Empty dependencies file for acq_core.
# This may be replaced when dependencies are built.
