
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acquire.cc" "src/CMakeFiles/acq_core.dir/core/acquire.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/acquire.cc.o.d"
  "/root/repo/src/core/contract.cc" "src/CMakeFiles/acq_core.dir/core/contract.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/contract.cc.o.d"
  "/root/repo/src/core/error_fn.cc" "src/CMakeFiles/acq_core.dir/core/error_fn.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/error_fn.cc.o.d"
  "/root/repo/src/core/expand.cc" "src/CMakeFiles/acq_core.dir/core/expand.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/expand.cc.o.d"
  "/root/repo/src/core/explore.cc" "src/CMakeFiles/acq_core.dir/core/explore.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/explore.cc.o.d"
  "/root/repo/src/core/norms.cc" "src/CMakeFiles/acq_core.dir/core/norms.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/norms.cc.o.d"
  "/root/repo/src/core/processor.cc" "src/CMakeFiles/acq_core.dir/core/processor.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/processor.cc.o.d"
  "/root/repo/src/core/refined_query.cc" "src/CMakeFiles/acq_core.dir/core/refined_query.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/refined_query.cc.o.d"
  "/root/repo/src/core/refined_space.cc" "src/CMakeFiles/acq_core.dir/core/refined_space.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/refined_space.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/acq_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/acq_core.dir/core/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
