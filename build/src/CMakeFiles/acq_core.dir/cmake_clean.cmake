file(REMOVE_RECURSE
  "CMakeFiles/acq_core.dir/core/acquire.cc.o"
  "CMakeFiles/acq_core.dir/core/acquire.cc.o.d"
  "CMakeFiles/acq_core.dir/core/contract.cc.o"
  "CMakeFiles/acq_core.dir/core/contract.cc.o.d"
  "CMakeFiles/acq_core.dir/core/error_fn.cc.o"
  "CMakeFiles/acq_core.dir/core/error_fn.cc.o.d"
  "CMakeFiles/acq_core.dir/core/expand.cc.o"
  "CMakeFiles/acq_core.dir/core/expand.cc.o.d"
  "CMakeFiles/acq_core.dir/core/explore.cc.o"
  "CMakeFiles/acq_core.dir/core/explore.cc.o.d"
  "CMakeFiles/acq_core.dir/core/norms.cc.o"
  "CMakeFiles/acq_core.dir/core/norms.cc.o.d"
  "CMakeFiles/acq_core.dir/core/processor.cc.o"
  "CMakeFiles/acq_core.dir/core/processor.cc.o.d"
  "CMakeFiles/acq_core.dir/core/refined_query.cc.o"
  "CMakeFiles/acq_core.dir/core/refined_query.cc.o.d"
  "CMakeFiles/acq_core.dir/core/refined_space.cc.o"
  "CMakeFiles/acq_core.dir/core/refined_space.cc.o.d"
  "CMakeFiles/acq_core.dir/core/report.cc.o"
  "CMakeFiles/acq_core.dir/core/report.cc.o.d"
  "libacq_core.a"
  "libacq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
