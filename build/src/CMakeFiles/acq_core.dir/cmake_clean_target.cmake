file(REMOVE_RECURSE
  "libacq_core.a"
)
