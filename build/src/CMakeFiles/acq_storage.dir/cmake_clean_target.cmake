file(REMOVE_RECURSE
  "libacq_storage.a"
)
