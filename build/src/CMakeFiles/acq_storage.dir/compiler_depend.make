# Empty compiler generated dependencies file for acq_storage.
# This may be replaced when dependencies are built.
