file(REMOVE_RECURSE
  "CMakeFiles/acq_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/acq_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/acq_storage.dir/storage/column.cc.o"
  "CMakeFiles/acq_storage.dir/storage/column.cc.o.d"
  "CMakeFiles/acq_storage.dir/storage/csv.cc.o"
  "CMakeFiles/acq_storage.dir/storage/csv.cc.o.d"
  "CMakeFiles/acq_storage.dir/storage/persistence.cc.o"
  "CMakeFiles/acq_storage.dir/storage/persistence.cc.o.d"
  "CMakeFiles/acq_storage.dir/storage/schema.cc.o"
  "CMakeFiles/acq_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/acq_storage.dir/storage/table.cc.o"
  "CMakeFiles/acq_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/acq_storage.dir/storage/value.cc.o"
  "CMakeFiles/acq_storage.dir/storage/value.cc.o.d"
  "libacq_storage.a"
  "libacq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
