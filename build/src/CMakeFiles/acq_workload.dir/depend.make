# Empty dependencies file for acq_workload.
# This may be replaced when dependencies are built.
