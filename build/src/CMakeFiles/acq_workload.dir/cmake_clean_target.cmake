file(REMOVE_RECURSE
  "libacq_workload.a"
)
