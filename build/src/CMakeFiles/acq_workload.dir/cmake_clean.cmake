file(REMOVE_RECURSE
  "CMakeFiles/acq_workload.dir/workload/tpch_gen.cc.o"
  "CMakeFiles/acq_workload.dir/workload/tpch_gen.cc.o.d"
  "CMakeFiles/acq_workload.dir/workload/users_gen.cc.o"
  "CMakeFiles/acq_workload.dir/workload/users_gen.cc.o.d"
  "CMakeFiles/acq_workload.dir/workload/workload.cc.o"
  "CMakeFiles/acq_workload.dir/workload/workload.cc.o.d"
  "libacq_workload.a"
  "libacq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
