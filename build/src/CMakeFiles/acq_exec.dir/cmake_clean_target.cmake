file(REMOVE_RECURSE
  "libacq_exec.a"
)
