# Empty compiler generated dependencies file for acq_exec.
# This may be replaced when dependencies are built.
