
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/acq_task.cc" "src/CMakeFiles/acq_exec.dir/exec/acq_task.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/acq_task.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/acq_exec.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/approx_evaluation.cc" "src/CMakeFiles/acq_exec.dir/exec/approx_evaluation.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/approx_evaluation.cc.o.d"
  "/root/repo/src/exec/evaluation.cc" "src/CMakeFiles/acq_exec.dir/exec/evaluation.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/evaluation.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/CMakeFiles/acq_exec.dir/exec/filter.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/filter.cc.o.d"
  "/root/repo/src/exec/join.cc" "src/CMakeFiles/acq_exec.dir/exec/join.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/join.cc.o.d"
  "/root/repo/src/exec/materialize.cc" "src/CMakeFiles/acq_exec.dir/exec/materialize.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/materialize.cc.o.d"
  "/root/repo/src/exec/parallel_evaluation.cc" "src/CMakeFiles/acq_exec.dir/exec/parallel_evaluation.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/parallel_evaluation.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/CMakeFiles/acq_exec.dir/exec/planner.cc.o" "gcc" "src/CMakeFiles/acq_exec.dir/exec/planner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
