file(REMOVE_RECURSE
  "CMakeFiles/acq_exec.dir/exec/acq_task.cc.o"
  "CMakeFiles/acq_exec.dir/exec/acq_task.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/aggregate.cc.o"
  "CMakeFiles/acq_exec.dir/exec/aggregate.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/approx_evaluation.cc.o"
  "CMakeFiles/acq_exec.dir/exec/approx_evaluation.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/evaluation.cc.o"
  "CMakeFiles/acq_exec.dir/exec/evaluation.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/filter.cc.o"
  "CMakeFiles/acq_exec.dir/exec/filter.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/join.cc.o"
  "CMakeFiles/acq_exec.dir/exec/join.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/materialize.cc.o"
  "CMakeFiles/acq_exec.dir/exec/materialize.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/parallel_evaluation.cc.o"
  "CMakeFiles/acq_exec.dir/exec/parallel_evaluation.cc.o.d"
  "CMakeFiles/acq_exec.dir/exec/planner.cc.o"
  "CMakeFiles/acq_exec.dir/exec/planner.cc.o.d"
  "libacq_exec.a"
  "libacq_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
