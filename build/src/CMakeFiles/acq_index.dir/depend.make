# Empty dependencies file for acq_index.
# This may be replaced when dependencies are built.
