file(REMOVE_RECURSE
  "libacq_index.a"
)
