file(REMOVE_RECURSE
  "CMakeFiles/acq_index.dir/index/grid_index.cc.o"
  "CMakeFiles/acq_index.dir/index/grid_index.cc.o.d"
  "libacq_index.a"
  "libacq_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
