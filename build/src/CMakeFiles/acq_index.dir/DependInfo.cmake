
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/grid_index.cc" "src/CMakeFiles/acq_index.dir/index/grid_index.cc.o" "gcc" "src/CMakeFiles/acq_index.dir/index/grid_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/acq_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/acq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
