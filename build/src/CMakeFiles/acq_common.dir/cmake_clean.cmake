file(REMOVE_RECURSE
  "CMakeFiles/acq_common.dir/common/logging.cc.o"
  "CMakeFiles/acq_common.dir/common/logging.cc.o.d"
  "CMakeFiles/acq_common.dir/common/random.cc.o"
  "CMakeFiles/acq_common.dir/common/random.cc.o.d"
  "CMakeFiles/acq_common.dir/common/status.cc.o"
  "CMakeFiles/acq_common.dir/common/status.cc.o.d"
  "CMakeFiles/acq_common.dir/common/string_util.cc.o"
  "CMakeFiles/acq_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/acq_common.dir/common/zipf.cc.o"
  "CMakeFiles/acq_common.dir/common/zipf.cc.o.d"
  "libacq_common.a"
  "libacq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
