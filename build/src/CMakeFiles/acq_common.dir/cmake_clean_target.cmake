file(REMOVE_RECURSE
  "libacq_common.a"
)
