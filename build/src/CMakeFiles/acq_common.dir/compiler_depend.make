# Empty compiler generated dependencies file for acq_common.
# This may be replaced when dependencies are built.
