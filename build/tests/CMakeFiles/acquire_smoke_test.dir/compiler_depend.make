# Empty compiler generated dependencies file for acquire_smoke_test.
# This may be replaced when dependencies are built.
