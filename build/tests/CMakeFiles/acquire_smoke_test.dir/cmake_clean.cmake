file(REMOVE_RECURSE
  "CMakeFiles/acquire_smoke_test.dir/acquire_smoke_test.cc.o"
  "CMakeFiles/acquire_smoke_test.dir/acquire_smoke_test.cc.o.d"
  "acquire_smoke_test"
  "acquire_smoke_test.pdb"
  "acquire_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acquire_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
