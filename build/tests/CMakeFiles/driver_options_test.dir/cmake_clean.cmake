file(REMOVE_RECURSE
  "CMakeFiles/driver_options_test.dir/driver_options_test.cc.o"
  "CMakeFiles/driver_options_test.dir/driver_options_test.cc.o.d"
  "driver_options_test"
  "driver_options_test.pdb"
  "driver_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
