# Empty dependencies file for refinement_dim_test.
# This may be replaced when dependencies are built.
