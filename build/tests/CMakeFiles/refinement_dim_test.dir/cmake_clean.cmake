file(REMOVE_RECURSE
  "CMakeFiles/refinement_dim_test.dir/refinement_dim_test.cc.o"
  "CMakeFiles/refinement_dim_test.dir/refinement_dim_test.cc.o.d"
  "refinement_dim_test"
  "refinement_dim_test.pdb"
  "refinement_dim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_dim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
