file(REMOVE_RECURSE
  "CMakeFiles/theorem_guarantee_test.dir/theorem_guarantee_test.cc.o"
  "CMakeFiles/theorem_guarantee_test.dir/theorem_guarantee_test.cc.o.d"
  "theorem_guarantee_test"
  "theorem_guarantee_test.pdb"
  "theorem_guarantee_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_guarantee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
