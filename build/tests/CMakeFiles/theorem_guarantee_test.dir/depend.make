# Empty dependencies file for theorem_guarantee_test.
# This may be replaced when dependencies are built.
