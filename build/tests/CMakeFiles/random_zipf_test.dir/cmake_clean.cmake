file(REMOVE_RECURSE
  "CMakeFiles/random_zipf_test.dir/random_zipf_test.cc.o"
  "CMakeFiles/random_zipf_test.dir/random_zipf_test.cc.o.d"
  "random_zipf_test"
  "random_zipf_test.pdb"
  "random_zipf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
