# Empty dependencies file for random_zipf_test.
# This may be replaced when dependencies are built.
