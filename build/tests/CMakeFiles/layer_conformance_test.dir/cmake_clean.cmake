file(REMOVE_RECURSE
  "CMakeFiles/layer_conformance_test.dir/layer_conformance_test.cc.o"
  "CMakeFiles/layer_conformance_test.dir/layer_conformance_test.cc.o.d"
  "layer_conformance_test"
  "layer_conformance_test.pdb"
  "layer_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
