# Empty compiler generated dependencies file for layer_conformance_test.
# This may be replaced when dependencies are built.
