file(REMOVE_RECURSE
  "CMakeFiles/approx_evaluation_test.dir/approx_evaluation_test.cc.o"
  "CMakeFiles/approx_evaluation_test.dir/approx_evaluation_test.cc.o.d"
  "approx_evaluation_test"
  "approx_evaluation_test.pdb"
  "approx_evaluation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_evaluation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
