# Empty compiler generated dependencies file for join_filter_test.
# This may be replaced when dependencies are built.
