file(REMOVE_RECURSE
  "CMakeFiles/join_filter_test.dir/join_filter_test.cc.o"
  "CMakeFiles/join_filter_test.dir/join_filter_test.cc.o.d"
  "join_filter_test"
  "join_filter_test.pdb"
  "join_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
