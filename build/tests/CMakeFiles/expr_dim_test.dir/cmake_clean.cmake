file(REMOVE_RECURSE
  "CMakeFiles/expr_dim_test.dir/expr_dim_test.cc.o"
  "CMakeFiles/expr_dim_test.dir/expr_dim_test.cc.o.d"
  "expr_dim_test"
  "expr_dim_test.pdb"
  "expr_dim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_dim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
