# Empty dependencies file for expr_dim_test.
# This may be replaced when dependencies are built.
