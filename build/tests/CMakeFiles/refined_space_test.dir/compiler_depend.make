# Empty compiler generated dependencies file for refined_space_test.
# This may be replaced when dependencies are built.
