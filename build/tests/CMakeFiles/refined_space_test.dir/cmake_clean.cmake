file(REMOVE_RECURSE
  "CMakeFiles/refined_space_test.dir/refined_space_test.cc.o"
  "CMakeFiles/refined_space_test.dir/refined_space_test.cc.o.d"
  "refined_space_test"
  "refined_space_test.pdb"
  "refined_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refined_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
