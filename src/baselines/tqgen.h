#ifndef ACQUIRE_BASELINES_TQGEN_H_
#define ACQUIRE_BASELINES_TQGEN_H_

#include "baselines/baseline_result.h"
#include "core/error_fn.h"
#include "core/norms.h"
#include "exec/evaluation.h"

namespace acquire {

/// TQGen [11] (Mishra, Koudas, Zuzarte, SIGMOD'08) adapted to the ACQ
/// setting, as in Section 8.2: targeted query generation by iterative
/// domain partitioning. Each iteration lays a k^d lattice of candidate
/// refined queries over the current search region, executes *every*
/// candidate in full, then zooms the region around the best candidate.
///
/// The defining cost properties the comparison relies on — candidates per
/// iteration exponential in d, and one full query execution per candidate
/// with no result sharing — follow [11]; the paper does not restate [11]'s
/// exact parameter values, so the defaults below (5 partitions, 6
/// iterations) are documented substitutes of the same magnitude.
struct TqGenOptions {
  int partitions_per_dim = 5;
  int max_iterations = 6;
  double delta = 0.05;
};

Result<BaselineResult> RunTqGen(const AcqTask& task, EvaluationLayer* layer,
                                const Norm& norm,
                                const TqGenOptions& options = {});

}  // namespace acquire

#endif  // ACQUIRE_BASELINES_TQGEN_H_
