#include "baselines/topk.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stopwatch.h"
#include "exec/evaluation.h"

namespace acquire {

Result<BaselineResult> RunTopK(const AcqTask& task, const Norm& norm) {
  if (task.agg.kind != AggregateKind::kCount) {
    return Status::Unsupported(
        "Top-k handles COUNT constraints only (Section 8.2)");
  }
  Stopwatch sw;
  const size_t n = task.relation->num_rows();
  const size_t d = task.d();
  const size_t k = static_cast<size_t>(std::llround(task.constraint.target));

  // Score every tuple (the ORDER BY pass).
  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(n);
  std::vector<double> needed(d);
  std::vector<std::vector<double>> all_needed(n, std::vector<double>(d));
  for (size_t row = 0; row < n; ++row) {
    ComputeNeeded(task, row, &needed);
    double total = 0.0;
    for (double v : needed) total += v;  // L1, matching the SQL expression
    all_needed[row] = needed;
    if (std::isfinite(total)) {
      ranked.emplace_back(total, static_cast<uint32_t>(row));
    }
  }

  BaselineResult result;
  result.queries_executed = 1;  // the single LIMIT query
  if (ranked.size() < k) {
    // Not enough reachable tuples: the refined query is the whole space.
    result.satisfied = false;
    result.aggregate = static_cast<double>(ranked.size());
    result.error = (task.constraint.target - result.aggregate) /
                   task.constraint.target;
  } else {
    std::nth_element(ranked.begin(),
                     ranked.begin() + static_cast<ptrdiff_t>(k ? k - 1 : 0),
                     ranked.end());
    result.satisfied = true;
    result.aggregate = static_cast<double>(k);
    result.error = 0.0;
  }

  // Tightest enclosing refined query over the selected tuples.
  size_t selected = std::min(k, ranked.size());
  result.pscores.assign(d, 0.0);
  for (size_t i = 0; i < selected; ++i) {
    const std::vector<double>& nv = all_needed[ranked[i].second];
    for (size_t j = 0; j < d; ++j) {
      result.pscores[j] = std::max(result.pscores[j], nv[j]);
    }
  }
  std::vector<double> weights(d);
  for (size_t j = 0; j < d; ++j) weights[j] = task.dims[j]->weight();
  result.qscore = norm.QScore(result.pscores, weights);
  result.elapsed_ms = sw.ElapsedMillis();
  return result;
}

}  // namespace acquire
