#include "baselines/tqgen.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace acquire {

Result<BaselineResult> RunTqGen(const AcqTask& task, EvaluationLayer* layer,
                                const Norm& norm,
                                const TqGenOptions& options) {
  if (layer == nullptr || &layer->task() != &task) {
    return Status::InvalidArgument(
        "evaluation layer must wrap the same AcqTask");
  }
  if (options.partitions_per_dim < 2) {
    return Status::InvalidArgument("TQGen needs at least 2 partitions");
  }
  Stopwatch sw;
  ACQ_RETURN_IF_ERROR(layer->Prepare());
  layer->ResetStats();

  const size_t d = task.d();
  const int k = options.partitions_per_dim;
  const Constraint& constraint = task.constraint;

  std::vector<double> lo(d, 0.0);
  std::vector<double> hi(d);
  for (size_t i = 0; i < d; ++i) {
    double cap = task.dims[i]->MaxPScore();
    hi[i] = std::isinf(cap) ? 100.0 : cap;
  }

  std::vector<double> best_pscores(d, 0.0);
  double best_err = std::numeric_limits<double>::infinity();
  double best_value = 0.0;

  std::vector<int> ticks(d, 0);
  std::vector<double> candidate(d);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Evaluate the full k^d candidate lattice over the current region.
    std::fill(ticks.begin(), ticks.end(), 0);
    std::vector<double> iter_best_pscores;
    double iter_best_err = std::numeric_limits<double>::infinity();
    double iter_best_value = 0.0;
    for (;;) {
      for (size_t i = 0; i < d; ++i) {
        candidate[i] =
            lo[i] + (hi[i] - lo[i]) * ticks[i] / static_cast<double>(k - 1);
      }
      ACQ_ASSIGN_OR_RETURN(double value, layer->EvaluateQueryValue(candidate));
      double err = DefaultAggregateError(constraint, value);
      if (err < iter_best_err) {
        iter_best_err = err;
        iter_best_value = value;
        iter_best_pscores = candidate;
      }
      // Advance the lattice odometer.
      size_t pos = 0;
      while (pos < d && ++ticks[pos] == k) {
        ticks[pos] = 0;
        ++pos;
      }
      if (pos == d) break;
    }

    if (iter_best_err < best_err) {
      best_err = iter_best_err;
      best_value = iter_best_value;
      best_pscores = iter_best_pscores;
    }
    if (best_err <= options.delta) break;

    // Zoom the region to one lattice spacing around the iteration's best.
    for (size_t i = 0; i < d; ++i) {
      double spacing = (hi[i] - lo[i]) / static_cast<double>(k - 1);
      lo[i] = std::max(0.0, iter_best_pscores[i] - spacing);
      hi[i] = iter_best_pscores[i] + spacing;
    }
  }

  BaselineResult result;
  result.pscores = best_pscores;
  result.aggregate = best_value;
  result.error = best_err;
  result.satisfied = best_err <= options.delta;
  std::vector<double> weights(d);
  for (size_t j = 0; j < d; ++j) weights[j] = task.dims[j]->weight();
  result.qscore = norm.QScore(best_pscores, weights);
  result.queries_executed = layer->stats().queries;
  result.elapsed_ms = sw.ElapsedMillis();
  return result;
}

}  // namespace acquire
