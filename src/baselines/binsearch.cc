#include "baselines/binsearch.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace acquire {

Result<BaselineResult> RunBinSearch(const AcqTask& task,
                                    EvaluationLayer* layer, const Norm& norm,
                                    const BinSearchOptions& options) {
  if (layer == nullptr || &layer->task() != &task) {
    return Status::InvalidArgument(
        "evaluation layer must wrap the same AcqTask");
  }
  Stopwatch sw;
  ACQ_RETURN_IF_ERROR(layer->Prepare());
  layer->ResetStats();

  const size_t d = task.d();
  std::vector<size_t> order = options.order;
  if (order.empty()) {
    order.resize(d);
    for (size_t i = 0; i < d; ++i) order[i] = i;
  }
  if (order.size() != d) {
    return Status::InvalidArgument("order must permute all dimensions");
  }

  const Constraint& constraint = task.constraint;
  std::vector<double> pscores(d, 0.0);

  auto evaluate = [&](double* err) -> Result<double> {
    ACQ_ASSIGN_OR_RETURN(double value, layer->EvaluateQueryValue(pscores));
    *err = DefaultAggregateError(constraint, value);
    return value;
  };

  double err = 0.0;
  ACQ_ASSIGN_OR_RETURN(double value, evaluate(&err));
  double best_err = err;
  std::vector<double> best_pscores = pscores;
  double best_value = value;

  for (size_t dim : order) {
    if (err <= options.delta) break;
    double cap = task.dims[dim]->MaxPScore();
    if (std::isinf(cap)) cap = 100.0;

    // Does fully refining this predicate reach the target?
    pscores[dim] = cap;
    double err_at_cap = 0.0;
    ACQ_ASSIGN_OR_RETURN(double value_at_cap, evaluate(&err_at_cap));
    if (value_at_cap < constraint.target * (1.0 - options.delta)) {
      // Still undershooting: keep the predicate fully refined and move on.
      err = err_at_cap;
      value = value_at_cap;
      if (err < best_err) {
        best_err = err;
        best_pscores = pscores;
        best_value = value;
      }
      continue;
    }

    // The answer lies within this predicate: bisect its refinement.
    double lo = 0.0;
    double hi = cap;
    for (int probe = 0; probe < options.max_probes_per_dim; ++probe) {
      pscores[dim] = 0.5 * (lo + hi);
      ACQ_ASSIGN_OR_RETURN(value, evaluate(&err));
      if (err < best_err) {
        best_err = err;
        best_pscores = pscores;
        best_value = value;
      }
      if (err <= options.delta) break;
      if (value < constraint.target) {
        lo = pscores[dim];
      } else {
        hi = pscores[dim];
      }
    }
    break;  // after bisecting one predicate the search is as close as it gets
  }

  BaselineResult result;
  result.pscores = best_pscores;
  result.aggregate = best_value;
  result.error = best_err;
  result.satisfied = best_err <= options.delta;
  std::vector<double> weights(d);
  for (size_t j = 0; j < d; ++j) weights[j] = task.dims[j]->weight();
  result.qscore = norm.QScore(best_pscores, weights);
  result.queries_executed = layer->stats().queries;
  result.elapsed_ms = sw.ElapsedMillis();
  return result;
}

}  // namespace acquire
