#ifndef ACQUIRE_BASELINES_BINSEARCH_H_
#define ACQUIRE_BASELINES_BINSEARCH_H_

#include <vector>

#include "baselines/baseline_result.h"
#include "core/error_fn.h"
#include "core/norms.h"
#include "exec/evaluation.h"

namespace acquire {

/// The BinSearch technique of [11] as extended in Section 8.2: refine one
/// predicate at a time, in a fixed order, binary-searching that predicate's
/// bound until the aggregate target is met or the predicate is exhausted
/// (then move to the next predicate). Every probe is a full query
/// execution against the evaluation layer.
struct BinSearchOptions {
  double delta = 0.05;
  int max_probes_per_dim = 20;
  /// Refinement order over the task's dimensions; empty = natural order.
  /// The paper's key observation (Figures 8b, 9b) is that results are
  /// extremely sensitive to this order.
  std::vector<size_t> order;
};

Result<BaselineResult> RunBinSearch(const AcqTask& task,
                                    EvaluationLayer* layer, const Norm& norm,
                                    const BinSearchOptions& options = {});

}  // namespace acquire

#endif  // ACQUIRE_BASELINES_BINSEARCH_H_
