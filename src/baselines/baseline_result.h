#ifndef ACQUIRE_BASELINES_BASELINE_RESULT_H_
#define ACQUIRE_BASELINES_BASELINE_RESULT_H_

#include <cstdint>
#include <vector>

#include "exec/evaluation.h"

namespace acquire {

/// Common outcome record for the compared techniques of Section 8.2.
struct BaselineResult {
  bool satisfied = false;
  double aggregate = 0.0;        // Aactual of the produced refined query
  double error = 0.0;            // Err_A
  std::vector<double> pscores;   // refinement vector of the produced query
  double qscore = 0.0;           // refinement score under the chosen norm
  uint64_t queries_executed = 0; // full query executions issued
  double elapsed_ms = 0.0;
};

}  // namespace acquire

#endif  // ACQUIRE_BASELINES_BASELINE_RESULT_H_
