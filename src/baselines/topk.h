#ifndef ACQUIRE_BASELINES_TOPK_H_
#define ACQUIRE_BASELINES_TOPK_H_

#include "baselines/baseline_result.h"
#include "core/norms.h"
#include "exec/acq_task.h"

namespace acquire {

/// The Top-k extension of Section 8.2: rank every tuple by its total
/// refinement distance (the CASE-WHEN ORDER BY expression, an L1 sum of
/// per-predicate normalized overshoots) and take the Aexp closest.
///
/// Only COUNT constraints translate to Top-k, exactly as the paper notes.
/// The reported refinement vector is the per-dimension maximum distance
/// among the selected tuples — the tightest refined query that would admit
/// all of them — and `aggregate` is k, so `error` is 0 by construction
/// (Top-k is therefore excluded from the error plots, as in Figure 8b).
Result<BaselineResult> RunTopK(const AcqTask& task, const Norm& norm);

}  // namespace acquire

#endif  // ACQUIRE_BASELINES_TOPK_H_
