#ifndef ACQUIRE_COMMON_STATUS_H_
#define ACQUIRE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace acquire {

/// Error categories used across the library. Follows the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kNotImplemented,
  kInternal,
  kIOError,
  kParseError,
  kTypeError,
  kUnsupported,
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail. OK statuses carry no allocation;
/// error statuses carry a code and a message. Copyable and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status NotImplemented(std::string msg);
  static Status Internal(std::string msg);
  static Status IOError(std::string msg);
  static Status ParseError(std::string msg);
  static Status TypeError(std::string msg);
  static Status Unsupported(std::string msg);
  static Status DeadlineExceeded(std::string msg);
  static Status Cancelled(std::string msg);
  static Status Unavailable(std::string msg);
  static Status ResourceExhausted(std::string msg);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps the common path allocation-free.
  std::unique_ptr<State> state_;
};

}  // namespace acquire

#endif  // ACQUIRE_COMMON_STATUS_H_
