#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace acquire {

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n >= 1);
  assert(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), theta);
    cdf_[k - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Probability(uint64_t k) const {
  assert(k >= 1 && k <= n_);
  double prev = (k == 1) ? 0.0 : cdf_[k - 2];
  return cdf_[k - 1] - prev;
}

}  // namespace acquire
