#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace acquire {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<double> ParseNumberWithSuffix(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty number");
  double multiplier = 1.0;
  char last = s.back();
  switch (std::toupper(static_cast<unsigned char>(last))) {
    case 'K':
      multiplier = 1e3;
      s.remove_suffix(1);
      break;
    case 'M':
      multiplier = 1e6;
      s.remove_suffix(1);
      break;
    case 'B':
      multiplier = 1e9;
      s.remove_suffix(1);
      break;
    default:
      break;
  }
  ACQ_ASSIGN_OR_RETURN(double base, ParseDouble(s));
  return base * multiplier;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("double out of range: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double: " + buf);
  }
  return v;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace acquire
