#ifndef ACQUIRE_COMMON_LOGGING_H_
#define ACQUIRE_COMMON_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace acquire {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarning so
/// library users and benchmarks stay quiet unless they opt in.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Stream-style log sink flushed (and for kFatal, aborting) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define ACQ_LOG(level)                                             \
  ::acquire::internal_logging::LogMessage(::acquire::LogLevel::k##level, \
                                          __FILE__, __LINE__)

/// Invariant check that survives NDEBUG builds: logs and aborts on failure.
#define ACQ_CHECK(cond)                                        \
  if (!(cond))                                                 \
  ACQ_LOG(Fatal) << "Check failed: " #cond " "

#define ACQ_DCHECK(cond) assert(cond)

}  // namespace acquire

#endif  // ACQUIRE_COMMON_LOGGING_H_
