#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/result.h"
#include "common/string_util.h"

namespace acquire {

namespace {

// Stable per-site RNG seed: FNV-1a over the name, so a given
// ACQUIRE_FAILPOINTS spec reproduces the same fault schedule per site
// regardless of registration order.
uint64_t SeedFor(const std::string& name) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h | 1;
}

}  // namespace

Failpoint::Failpoint(std::string name)
    : name_(std::move(name)), rng_(SeedFor(name_)) {}

bool Failpoint::Fire() {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  bool fired = false;
  uint64_t sleep_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (mode_) {
      case Mode::kOff:
        break;
      case Mode::kProbability:
        fired = rng_.NextBool(probability_);
        break;
      case Mode::kCount:
        if (remaining_ > 0) {
          fired = true;
          if (--remaining_ == 0) {
            mode_ = Mode::kOff;
            armed_.store(false, std::memory_order_relaxed);
          }
        }
        break;
      case Mode::kEveryNth:
        if (++since_fire_ >= period_) {
          since_fire_ = 0;
          fired = true;
        }
        break;
      case Mode::kSleep:
        fired = true;
        sleep_ms = sleep_ms_;
        break;
      case Mode::kCrash:
      case Mode::kAbort:
        if (remaining_ > 0 && --remaining_ == 0) {
          hits_.fetch_add(1, std::memory_order_relaxed);
          // A real crash, not an error return: the crash-recovery harness
          // arms these at I/O sites to kill the server exactly there. The
          // note is the harness's evidence the right site fired.
          std::fprintf(stderr, "failpoint '%s': injected %s\n", name_.c_str(),
                       mode_ == Mode::kAbort ? "abort" : "crash");
          std::fflush(stderr);
          if (mode_ == Mode::kAbort) std::abort();
          std::_Exit(137);
        }
        break;
    }
  }
  if (fired) hits_.fetch_add(1, std::memory_order_relaxed);
  if (sleep_ms > 0) {
    // The delay is the injected fault; the caller still takes its success
    // path, so report "not fired" after serving it.
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    return false;
  }
  return fired;
}

std::string Failpoint::spec() const {
  std::lock_guard<std::mutex> lock(mu_);
  switch (mode_) {
    case Mode::kOff:
      return "off";
    case Mode::kProbability:
      return StringFormat("p:%g", probability_);
    case Mode::kCount:
      return StringFormat("count:%llu",
                          static_cast<unsigned long long>(remaining_));
    case Mode::kEveryNth:
      return StringFormat("every:%llu",
                          static_cast<unsigned long long>(period_));
    case Mode::kSleep:
      return StringFormat("sleep:%llu",
                          static_cast<unsigned long long>(sleep_ms_));
    case Mode::kCrash:
      return StringFormat("crash:%llu",
                          static_cast<unsigned long long>(remaining_));
    case Mode::kAbort:
      return StringFormat("abort:%llu",
                          static_cast<unsigned long long>(remaining_));
  }
  return "off";
}

Status Failpoint::Configure(const std::string& spec) {
  const std::string lower = ToLower(Trim(spec));
  Mode mode;
  double probability = 0.0;
  uint64_t n = 0;
  if (lower == "off") {
    mode = Mode::kOff;
  } else {
    const size_t colon = lower.find(':');
    const std::string kind = lower.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : lower.substr(colon + 1);
    // strtoull silently wraps negatives to huge values; reject them up
    // front so "count:-5" / "sleep:-5" are grammar errors, not overflows.
    const bool negative = !arg.empty() && arg[0] == '-';
    char* end = nullptr;
    if (kind == "p") {
      probability = std::strtod(arg.c_str(), &end);
      if (arg.empty() || *end != '\0' || probability < 0.0 ||
          probability > 1.0) {
        return Status::InvalidArgument(StringFormat(
            "failpoint '%s': p wants a probability in [0,1], got '%s'",
            name_.c_str(), arg.c_str()));
      }
      mode = Mode::kProbability;
    } else if (kind == "count" || kind == "every") {
      n = std::strtoull(arg.c_str(), &end, 10);
      if (arg.empty() || negative || *end != '\0' || n == 0) {
        return Status::InvalidArgument(StringFormat(
            "failpoint '%s': %s wants a positive integer, got '%s'",
            name_.c_str(), kind.c_str(), arg.c_str()));
      }
      mode = kind == "count" ? Mode::kCount : Mode::kEveryNth;
    } else if (kind == "sleep") {
      n = std::strtoull(arg.c_str(), &end, 10);
      if (arg.empty() || negative || *end != '\0' || n == 0) {
        return Status::InvalidArgument(StringFormat(
            "failpoint '%s': sleep wants a positive delay in ms, got '%s'",
            name_.c_str(), arg.c_str()));
      }
      mode = Mode::kSleep;
    } else if (kind == "crash" || kind == "abort") {
      n = std::strtoull(arg.c_str(), &end, 10);
      if (arg.empty() || negative || *end != '\0' || n == 0) {
        return Status::InvalidArgument(StringFormat(
            "failpoint '%s': %s wants the 1-based evaluation to die on, "
            "got '%s'",
            name_.c_str(), kind.c_str(), arg.c_str()));
      }
      mode = kind == "crash" ? Mode::kCrash : Mode::kAbort;
    } else {
      return Status::InvalidArgument(StringFormat(
          "failpoint '%s': unknown trigger '%s' (off|p:<prob>|count:<n>|"
          "every:<n>|sleep:<ms>|crash:<n>|abort:<n>)",
          name_.c_str(), spec.c_str()));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = mode;
  probability_ = probability;
  remaining_ = (mode == Mode::kCount || mode == Mode::kCrash ||
                mode == Mode::kAbort)
                   ? n
                   : 0;
  period_ = mode == Mode::kEveryNth ? n : 0;
  since_fire_ = 0;
  sleep_ms_ = mode == Mode::kSleep ? n : 0;
  armed_.store(mode != Mode::kOff, std::memory_order_relaxed);
  return Status::OK();
}

void Failpoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kOff;
  armed_.store(false, std::memory_order_relaxed);
}

FailpointRegistry& FailpointRegistry::Global() {
  // Leaked intentionally (like ThreadPool::Shared) so sites cached in
  // function-local statics stay valid through late static destructors.
  static FailpointRegistry* const registry = [] {
    auto* r = new FailpointRegistry();
    if (const char* env = std::getenv("ACQUIRE_FAILPOINTS")) {
      Status armed = r->ConfigureFromSpec(env);
      if (!armed.ok()) {
        std::fprintf(stderr, "ACQUIRE_FAILPOINTS ignored: %s\n",
                     armed.ToString().c_str());
      }
    }
    return r;
  }();
  return *registry;
}

Failpoint* FailpointRegistry::Site(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(name, std::unique_ptr<Failpoint>(new Failpoint(name)))
             .first;
  }
  return it->second.get();
}

Status FailpointRegistry::Configure(const std::string& name,
                                    const std::string& spec) {
  const std::string site(Trim(name));
  if (site.empty()) {
    return Status::InvalidArgument("failpoint name must be non-empty");
  }
  return Site(site)->Configure(spec);
}

Status FailpointRegistry::ConfigureFromSpec(const std::string& multi_spec) {
  for (const std::string& entry : Split(multi_spec, ';')) {
    if (Trim(entry).empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(StringFormat(
          "failpoint entry '%s' is not name=spec", entry.c_str()));
    }
    ACQ_RETURN_IF_ERROR(
        Configure(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::OK();
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site->Disarm();
}

std::vector<FailpointRegistry::SiteInfo> FailpointRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteInfo> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    out.push_back(
        SiteInfo{name, site->spec(), site->hits(), site->evaluations()});
  }
  return out;
}

uint64_t FailpointRegistry::TotalHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, site] : sites_) total += site->hits();
  return total;
}

}  // namespace acquire
