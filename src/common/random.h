#ifndef ACQUIRE_COMMON_RANDOM_H_
#define ACQUIRE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace acquire {

/// Deterministic, fast PRNG (xoshiro256**). All data generators and
/// randomized tests in the repository draw from this so runs are
/// reproducible given a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with probability p.
  bool NextBool(double p = 0.5);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace acquire

#endif  // ACQUIRE_COMMON_RANDOM_H_
