#ifndef ACQUIRE_COMMON_STRING_UTIL_H_
#define ACQUIRE_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace acquire {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII case-insensitive equality (used by the SQL keyword lexer).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a decimal number accepting the paper's K/M/B magnitude suffixes
/// ("0.1M" -> 100000). Rejects trailing garbage.
Result<double> ParseNumberWithSuffix(std::string_view s);

Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace acquire

#endif  // ACQUIRE_COMMON_STRING_UTIL_H_
