#ifndef ACQUIRE_COMMON_FAILPOINT_H_
#define ACQUIRE_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

// Compile-time gate for the fault-injection sites. The build defines
// ACQUIRE_FAILPOINTS_ENABLED=0/1 (CMake option of the same name, ON by
// default); when 0 every ACQ_FAILPOINT expands to a constant false and the
// instrumented branches fold away entirely.
#ifndef ACQUIRE_FAILPOINTS_ENABLED
#define ACQUIRE_FAILPOINTS_ENABLED 1
#endif

namespace acquire {

/// One named fault-injection site. Disarmed sites cost a relaxed load (plus
/// a relaxed counter bump) per evaluation; armed sites take a mutex to run
/// their trigger, which is fine — every instrumented seam is an I/O or
/// allocation-growth path, never a per-tuple loop.
///
/// Trigger specs (the wire/env grammar, parsed by Configure):
///   off        disarm
///   p:0.05     fire each evaluation with probability 0.05
///   count:3    fire the next 3 evaluations, then disarm
///   every:100  fire every 100th evaluation (the 100th, 200th, ...)
///   sleep:250  delay every evaluation by 250 ms, then proceed normally
///   crash:2    terminate the process (_Exit(137), no cleanup) on the 2nd
///              evaluation — a kill-level crash exactly at the site
///   abort:1    like crash: but via std::abort() (SIGABRT, core-dumpable)
///
/// sleep: injects latency rather than failure: Fire() blocks the calling
/// thread for the configured delay and returns false, so the instrumented
/// code continues down its success path. It exists to widen timing windows
/// deterministically in tests (e.g. holding a server run in flight while
/// duplicate submissions pile up behind it).
class Failpoint {
 public:
  /// Evaluates the trigger. True means the caller should take its injected
  /// failure branch (always false for sleep: triggers, which delay instead).
  /// Thread-safe; a sleep: delay is served outside the trigger mutex so
  /// concurrent evaluations and Configure calls are not blocked by it.
  bool Fire();

  const std::string& name() const { return name_; }
  /// Times the trigger fired (injected failures and injected delays).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Current trigger in spec grammar ("off", "p:0.05", ...).
  std::string spec() const;

 private:
  friend class FailpointRegistry;

  enum class Mode { kOff, kProbability, kCount, kEveryNth, kSleep, kCrash,
                    kAbort };

  explicit Failpoint(std::string name);

  Status Configure(const std::string& spec);
  void Disarm();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> evaluations_{0};

  mutable std::mutex mu_;  // trigger state below
  Mode mode_ = Mode::kOff;
  double probability_ = 0.0;
  uint64_t remaining_ = 0;    // kCount: fires left; kCrash/kAbort: countdown
  uint64_t period_ = 0;       // kEveryNth
  uint64_t since_fire_ = 0;   // kEveryNth: evaluations since the last fire
  uint64_t sleep_ms_ = 0;     // kSleep: delay per evaluation
  Rng rng_;
};

/// Process-wide registry of failpoints, keyed by site name. Sites register
/// lazily on first evaluation (the ACQ_FAILPOINT macro) or eagerly when
/// configured by name; both resolve to the same object, so a site can be
/// armed before or after the instrumented code first runs.
///
/// On first access the registry arms itself from the ACQUIRE_FAILPOINTS
/// environment variable: a ';'-separated list of name=spec entries, e.g.
///   ACQUIRE_FAILPOINTS="server.recv=p:0.05;explore.arena_grow=count:1"
/// The ACQ server additionally exposes the same grammar at runtime through
/// its FAILPOINT admin verb.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Whether the ACQ_FAILPOINT sites were compiled in. The registry itself
  /// always exists (so STATS/FAILPOINT can report the build mode), but with
  /// the sites compiled out arming it has no effect.
  static constexpr bool compiled_in() { return ACQUIRE_FAILPOINTS_ENABLED != 0; }

  /// The site named `name`, created disarmed on first use. The pointer is
  /// stable for the process lifetime.
  Failpoint* Site(const std::string& name);

  /// Arms/disarms one site from a trigger spec (see Failpoint).
  Status Configure(const std::string& name, const std::string& spec);

  /// Applies a ';'-separated "name=spec" list (the env-var grammar).
  /// Stops at the first malformed entry.
  Status ConfigureFromSpec(const std::string& multi_spec);

  /// Disarms every site (hit/evaluation counters are kept).
  void DisarmAll();

  struct SiteInfo {
    std::string name;
    std::string spec;
    uint64_t hits = 0;
    uint64_t evaluations = 0;
  };
  /// Every registered site, in name order.
  std::vector<SiteInfo> List() const;

  /// Total injected failures across all sites (the STATS counter).
  uint64_t TotalHits() const;

 private:
  FailpointRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Failpoint>> sites_;
};

}  // namespace acquire

// Evaluates the failpoint `name` (a string literal): true when an injected
// failure should be taken. Each call site caches its registry lookup in a
// function-local static, so steady-state cost is one branch + two relaxed
// atomics. Compiled to a constant false when ACQUIRE_FAILPOINTS_ENABLED=0.
#if ACQUIRE_FAILPOINTS_ENABLED
#define ACQ_FAILPOINT(name)                                        \
  ([]() -> bool {                                                  \
    static ::acquire::Failpoint* const acq_failpoint_site =        \
        ::acquire::FailpointRegistry::Global().Site(name);         \
    return acq_failpoint_site->Fire();                             \
  }())
#else
#define ACQ_FAILPOINT(name) (false)
#endif

#endif  // ACQUIRE_COMMON_FAILPOINT_H_
