#ifndef ACQUIRE_COMMON_MEMORY_BUDGET_H_
#define ACQUIRE_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>

namespace acquire {

/// Cooperative memory budget for one run's working set: the search-side
/// structures that grow with the explored space (aggregate-store arena,
/// expand layer arenas) and the evaluation layer's prepared footprint and
/// scratch (needed-PScore matrix, CSR cell layout, per-call selection
/// vectors).
///
/// Enforcement is soft: Charge never blocks an allocation, it latches
/// exhausted() once the running total would cross the limit (or a fault is
/// injected), and the drivers poll that flag at the same granularity as
/// deadlines, stopping with RunTermination::kResourceExhausted and the
/// best-so-far partial answer. The overshoot is therefore bounded by one
/// geometric growth step plus one poll interval — never an OOM abort.
///
/// Lives in common/ (not core/) so the evaluation layers — which sit below
/// core in the module graph — can charge their scratch without a layering
/// inversion; core/run_context.h embeds one per run.
class MemoryBudget {
 public:
  /// 0 means unlimited (charges are still tallied). Set before the run.
  void set_limit(uint64_t bytes) { limit_ = bytes; }
  uint64_t limit() const { return limit_; }

  /// Bytes charged so far. Thread-safe.
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }

  bool exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// Latches exhaustion directly (failpoints and external monitors).
  void MarkExhausted() { exhausted_.store(true, std::memory_order_relaxed); }

  /// Tallies `bytes` of additional reservation; false (latching
  /// exhausted()) when a limit is set and the total crosses it.
  bool Charge(uint64_t bytes) {
    const uint64_t total =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_ != 0 && total > limit_) {
      MarkExhausted();
      return false;
    }
    return true;
  }

 private:
  uint64_t limit_ = 0;
  std::atomic<uint64_t> used_{0};
  std::atomic<bool> exhausted_{false};
};

}  // namespace acquire

#endif  // ACQUIRE_COMMON_MEMORY_BUDGET_H_
