#include "common/random.h"

#include <cassert>
#include <cmath>

namespace acquire {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  // Box-Muller; draws two uniforms per call, discards the second variate.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace acquire
