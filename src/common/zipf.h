#ifndef ACQUIRE_COMMON_ZIPF_H_
#define ACQUIRE_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace acquire {

/// Samples ranks 1..n with P(k) proportional to 1/k^theta.
///
/// The paper's skewed datasets (Section 8.4.4) use the Chaudhuri-Narasayya
/// TPC-D skew generator with Z = 1; this class is the in-repo equivalent
/// knob. theta = 0 degenerates to the uniform distribution. Uses the
/// precomputed-CDF + binary search method, which is exact and fast enough
/// for the domain sizes the benchmarks use.
class ZipfDistribution {
 public:
  /// Requires n >= 1 and theta >= 0.
  ZipfDistribution(uint64_t n, double theta);

  /// Draws a rank in [1, n].
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// P(rank == k) for k in [1, n].
  double Probability(uint64_t k) const;

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace acquire

#endif  // ACQUIRE_COMMON_ZIPF_H_
