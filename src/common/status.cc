#include "common/status.h"

namespace acquire {

namespace {
const std::string& EmptyString() {
  static const std::string* const kEmpty = new std::string();
  return *kEmpty;
}
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : state_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::NotImplemented(std::string msg) {
  return Status(StatusCode::kNotImplemented, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::IOError(std::string msg) {
  return Status(StatusCode::kIOError, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::TypeError(std::string msg) {
  return Status(StatusCode::kTypeError, std::move(msg));
}
Status Status::Unsupported(std::string msg) {
  return Status(StatusCode::kUnsupported, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}

}  // namespace acquire
