#ifndef ACQUIRE_COMMON_RESULT_H_
#define ACQUIRE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace acquire {

/// Holds either a value of type T or an error Status. The library's
/// exception-free analogue of absl::StatusOr / arrow::Result.
///
/// Usage:
///   Result<Table> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status so `return value;` and
  /// `return Status::...(...)` both work in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok() && "Result<T> cannot hold an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// OK status if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates errors: evaluates `expr` (a Status) and returns it from the
/// enclosing function when not OK.
#define ACQ_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::acquire::Status _acq_status = (expr);        \
    if (!_acq_status.ok()) return _acq_status;     \
  } while (false)

#define ACQ_CONCAT_IMPL(a, b) a##b
#define ACQ_CONCAT(a, b) ACQ_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating the error or assigning the
/// value to `lhs` (which may include a declaration).
#define ACQ_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  ACQ_ASSIGN_OR_RETURN_IMPL(ACQ_CONCAT(_acq_result_, __LINE__), lhs, \
                            rexpr)

#define ACQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace acquire

#endif  // ACQUIRE_COMMON_RESULT_H_
