#ifndef ACQUIRE_INDEX_BACKEND_FACTORY_H_
#define ACQUIRE_INDEX_BACKEND_FACTORY_H_

#include <memory>

#include "common/result.h"
#include "exec/backend.h"
#include "exec/evaluation.h"
#include "index/parallel_prepare.h"

namespace acquire {

/// Knobs the factory forwards to the backends that take them.
struct BackendOptions {
  /// Refined-space grid step for the grid-aware backends (GridIndex,
  /// CellSorted). <= 0 picks 10.0 / d — the step AcquireOptions' default
  /// gamma induces, so the aligned fast paths fire for default-driver runs.
  double grid_step = 0.0;
  /// Worker threads for the parallel backend; 0 uses the shared pool.
  size_t threads = 0;
  /// Layout-build strategy for the cell-sorted backend (bit-identical
  /// results either way; see index/parallel_prepare.h).
  PrepareMode prepare_mode = PrepareMode::kAuto;
};

/// Constructs the evaluation layer for `backend` over `task` (which must
/// outlive the returned layer). kAuto resolves to the cell-sorted backend:
/// the grid queries Algorithm 3 issues are exactly what its CSR layout
/// answers in O(log cells). The layer is returned unprepared.
Result<std::unique_ptr<EvaluationLayer>> MakeEvaluationLayer(
    const AcqTask* task, EvalBackend backend,
    const BackendOptions& options = {});

}  // namespace acquire

#endif  // ACQUIRE_INDEX_BACKEND_FACTORY_H_
