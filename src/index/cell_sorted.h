#ifndef ACQUIRE_INDEX_CELL_SORTED_H_
#define ACQUIRE_INDEX_CELL_SORTED_H_

#include <cstdint>
#include <vector>

#include "exec/evaluation.h"
#include "exec/thread_pool.h"
#include "index/parallel_prepare.h"

namespace acquire {

/// Cell-sorted columnar evaluation backend: the needed-PScore matrix is
/// built once (in parallel, dimension-major) and its rows are
/// counting-sorted into refined-space grid cells in a CSR layout —
///
///   cell_keys_    m x d grid coordinates, lexicographically sorted
///   cell_offsets_ m + 1 prefix offsets into the permuted row payload
///   matrix_       needed matrix + aggregate inputs, permuted to cell order
///   cell_states_  per-cell OSP aggregate state (fold of its offset range)
///
/// so the queries Algorithm 3 actually issues are no longer scans:
///  * a cell query is one binary search over the sorted keys plus a
///    precomputed state (O(log m)),
///  * a grid-aligned box query walks only the key range whose first
///    coordinate overlaps the box, merging per-cell states in sorted key
///    order (deterministic), instead of visiting every populated cell,
///  * an off-grid box (repartition probes) falls back to the shared
///    branchless kernel over the permuted matrix, chunked across the
///    persistent thread pool.
///
/// The layout build itself is delegated to BuildCellSortedLayout
/// (index/parallel_prepare.h), which shards the cell assignment, the
/// partition-by-cell and the per-bucket sorts across the pool for large
/// relations — bit-identical to the sequential reference by construction.
///
/// Incremental maintenance: rows appended to the task's relation after
/// Prepare() are discovered lazily at the next evaluate call and staged in a
/// sorted delta buffer. Every query path answers base + staged rows exactly
/// as a full rebuild would — per-cell answers continue the base fold with
/// the delta rows' Adds in append order, which is the precise operation
/// sequence a rebuild runs (the counting sort is stable, so a rebuilt cell's
/// payload is its old rows in relation order followed by the appended ones).
/// Once the buffer reaches the merge threshold — or an off-grid probe needs
/// the contiguous permuted matrix — the staged rows are absorbed into the
/// main layout with one O(n + k) two-pointer merge instead of an
/// O(n log n) rebuild.
///
/// `step` must match the refined space's grid step (gamma / d) for the
/// aligned fast paths to fire; any other step is still correct, just slow.
class CellSortedEvaluationLayer final : public EvaluationLayer {
 public:
  /// `pool` = nullptr uses the process-wide shared pool. `prepare_mode`
  /// picks the layout build strategy (bit-identical either way).
  CellSortedEvaluationLayer(const AcqTask* task, double step,
                            ThreadPool* pool = nullptr,
                            PrepareMode prepare_mode = PrepareMode::kAuto);

  /// Builds the matrix and the CSR cell layout in one preparation pass.
  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  /// Native batched cell queries: the requested coordinates are sorted and
  /// answered in forward sweeps over the sorted CSR key array — a
  /// binary-search start, then galloping advances, so a layer of k cells
  /// costs O(k log(m/k)) key comparisons instead of k independent O(log m)
  /// searches. Large batches sweep deterministic contiguous chunks of the
  /// sorted order in parallel on the pool (bit-identical results; every
  /// answer is a copy of the precomputed per-cell state, plus the staged
  /// delta rows of that cell folded in append order). Falls back to the
  /// generic path when `step` differs from the layout step.
  Result<std::vector<AggregateOps::State>> EvaluateCells(
      const GridCoord* coords, size_t count, double step) override;

  /// CSR layout, key array and per-cell states are read-only once built —
  /// but only while no appended rows are pending: staging (and a possible
  /// threshold merge) mutates the layer, so concurrent fan-out is withheld
  /// until the next serial evaluate call has synced the deltas.
  bool SupportsConcurrentEvaluate() const override {
    return prepared_ && delta_agg_.empty() &&
           task_->relation->num_rows() == consumed_rows_;
  }

  double step() const { return step_; }
  size_t num_cells() const { return cell_offsets_.empty()
                                 ? 0
                                 : cell_offsets_.size() - 1; }
  /// Rows excluded from the layout because some dimension can never admit
  /// them (needed == inf admits no box).
  size_t unreachable_rows() const { return unreachable_rows_; }

  /// How Prepare() actually ran (sequential vs sharded, bucket count).
  const PrepareBuildInfo& build_info() const { return build_info_; }
  PrepareMode prepare_mode() const { return prepare_mode_; }

  /// Relation rows already reflected in the layer (main layout + staged
  /// deltas); rows at or past this index are picked up by the next sync.
  size_t consumed_rows() const { return consumed_rows_; }
  /// Reachable appended rows currently staged in the delta buffer.
  size_t staged_delta_rows() const { return delta_agg_.size(); }

  /// Staged-row count that triggers an automatic merge into the main
  /// layout; 0 restores the default max(4096, layout_rows / 8). Exposed so
  /// tests and the prepare bench can force or forbid merges.
  void set_delta_merge_threshold(size_t threshold) {
    delta_merge_threshold_ = threshold;
  }
  size_t delta_merge_threshold() const;

  /// Stages any unconsumed relation rows, then absorbs every staged row
  /// into the main layout now. The merge is the O(n + k) two-pointer
  /// concatenation described above and produces exactly the layout a full
  /// rebuild would (bit for bit); the `index.delta_merge` failpoint
  /// downgrades it to that full rebuild, which is therefore
  /// result-preserving by the same argument.
  Status MergeDeltas();

  /// True when every range in `box` is exactly one grid cell at this
  /// layer's step (exposed for tests).
  bool IsCellAligned(const std::vector<PScoreRange>& box,
                     GridCoord* coord) const;

 private:
  /// Index of the first cell whose key is lexicographically >= `key`
  /// (d() leading entries used); num_cells() when none.
  size_t LowerBoundCell(const int32_t* key) const;

  /// LowerBoundCell restricted to [from, num_cells()): gallops forward from
  /// `from` (exponential probe, then binary search in the bracket), so a
  /// run of nearby lookups in sorted order costs O(log gap) each.
  size_t GallopLowerBound(size_t from, const int32_t* key) const;

  size_t delta_num_cells() const {
    return delta_cell_offsets_.empty() ? 0 : delta_cell_offsets_.size() - 1;
  }
  /// First staged cell whose key is lexicographically >= `key`.
  size_t LowerBoundDeltaCell(const int32_t* key) const;
  /// Continues `state` with staged cell `t`'s rows in append order.
  void FoldDeltaCellAt(size_t t, AggregateOps::State* state) const;
  /// Continues `state` with the staged rows of cell `key` (no-op when the
  /// cell has none) — the exact Add continuation a full rebuild would run.
  void FoldDeltaCell(const int32_t* key, AggregateOps::State* state) const;

  /// Moves relation rows [consumed_rows_, num_rows()) into the staged delta
  /// buffer and rebuilds its sorted CSR view.
  Status StageNewRows();
  /// StageNewRows + threshold-triggered absorb; serial-entry only.
  Status SyncDeltas();
  /// Merges the staged rows into the main layout (or rebuilds from scratch
  /// under the `index.delta_merge` failpoint).
  Status AbsorbStagedDeltas();
  void ClearDeltaBuffer();

  double step_;
  ThreadPool* pool_;
  PrepareMode prepare_mode_;
  PrepareBuildInfo build_info_;
  bool prepared_ = false;
  size_t unreachable_rows_ = 0;
  size_t consumed_rows_ = 0;
  size_t delta_merge_threshold_ = 0;  // 0 = auto
  NeededMatrix matrix_;                 // permuted to cell order
  std::vector<int32_t> cell_keys_;      // m * d, cell-major, sorted
  std::vector<uint32_t> cell_offsets_;  // m + 1
  std::vector<AggregateOps::State> cell_states_;

  // Staged appended rows in append order (row-major; unreachable rows are
  // dropped at staging time) plus a sorted CSR view over them, rebuilt on
  // every sync (k stays small — at most the merge threshold).
  std::vector<int32_t> delta_coords_;  // k * d, row-major
  std::vector<double> delta_needed_;   // k * d, row-major
  std::vector<double> delta_agg_;      // k
  std::vector<uint32_t> delta_order_;  // k, stable-sorted by cell key
  std::vector<int32_t> delta_cell_keys_;      // dm * d, sorted
  std::vector<uint32_t> delta_cell_offsets_;  // dm + 1, into delta_order_
};

}  // namespace acquire

#endif  // ACQUIRE_INDEX_CELL_SORTED_H_
