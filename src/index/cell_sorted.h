#ifndef ACQUIRE_INDEX_CELL_SORTED_H_
#define ACQUIRE_INDEX_CELL_SORTED_H_

#include <cstdint>
#include <vector>

#include "exec/evaluation.h"
#include "exec/thread_pool.h"

namespace acquire {

/// Cell-sorted columnar evaluation backend: the needed-PScore matrix is
/// built once (in parallel, dimension-major) and its rows are
/// counting-sorted into refined-space grid cells in a CSR layout —
///
///   cell_keys_    m x d grid coordinates, lexicographically sorted
///   cell_offsets_ m + 1 prefix offsets into the permuted row payload
///   matrix_       needed matrix + aggregate inputs, permuted to cell order
///   cell_states_  per-cell OSP aggregate state (fold of its offset range)
///
/// so the queries Algorithm 3 actually issues are no longer scans:
///  * a cell query is one binary search over the sorted keys plus a
///    precomputed state (O(log m)),
///  * a grid-aligned box query walks only the key range whose first
///    coordinate overlaps the box, merging per-cell states in sorted key
///    order (deterministic), instead of visiting every populated cell,
///  * an off-grid box (repartition probes) falls back to the shared
///    branchless kernel over the permuted matrix, chunked across the
///    persistent thread pool.
///
/// `step` must match the refined space's grid step (gamma / d) for the
/// aligned fast paths to fire; any other step is still correct, just slow.
class CellSortedEvaluationLayer final : public EvaluationLayer {
 public:
  /// `pool` = nullptr uses the process-wide shared pool.
  CellSortedEvaluationLayer(const AcqTask* task, double step,
                            ThreadPool* pool = nullptr);

  /// Builds the matrix and the CSR cell layout in one preparation pass.
  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  /// Native batched cell queries: the requested coordinates are sorted and
  /// answered in forward sweeps over the sorted CSR key array — a
  /// binary-search start, then galloping advances, so a layer of k cells
  /// costs O(k log(m/k)) key comparisons instead of k independent O(log m)
  /// searches. Large batches sweep deterministic contiguous chunks of the
  /// sorted order in parallel on the pool (bit-identical results; every
  /// answer is a copy of the precomputed per-cell state). Falls back to the
  /// generic path when `step` differs from the layout step.
  Result<std::vector<AggregateOps::State>> EvaluateCells(
      const GridCoord* coords, size_t count, double step) override;

  /// CSR layout, key array and per-cell states are read-only once built.
  bool SupportsConcurrentEvaluate() const override { return prepared_; }

  double step() const { return step_; }
  size_t num_cells() const { return cell_offsets_.empty()
                                 ? 0
                                 : cell_offsets_.size() - 1; }
  /// Rows excluded from the layout because some dimension can never admit
  /// them (needed == inf admits no box).
  size_t unreachable_rows() const { return unreachable_rows_; }

  /// True when every range in `box` is exactly one grid cell at this
  /// layer's step (exposed for tests).
  bool IsCellAligned(const std::vector<PScoreRange>& box,
                     GridCoord* coord) const;

 private:
  /// Index of the first cell whose key is lexicographically >= `key`
  /// (d() leading entries used); num_cells() when none.
  size_t LowerBoundCell(const int32_t* key) const;

  /// LowerBoundCell restricted to [from, num_cells()): gallops forward from
  /// `from` (exponential probe, then binary search in the bracket), so a
  /// run of nearby lookups in sorted order costs O(log gap) each.
  size_t GallopLowerBound(size_t from, const int32_t* key) const;

  double step_;
  ThreadPool* pool_;
  bool prepared_ = false;
  size_t unreachable_rows_ = 0;
  NeededMatrix matrix_;                 // permuted to cell order
  std::vector<int32_t> cell_keys_;      // m * d, cell-major, sorted
  std::vector<uint32_t> cell_offsets_;  // m + 1
  std::vector<AggregateOps::State> cell_states_;
};

}  // namespace acquire

#endif  // ACQUIRE_INDEX_CELL_SORTED_H_
