#ifndef ACQUIRE_INDEX_PARALLEL_PREPARE_H_
#define ACQUIRE_INDEX_PARALLEL_PREPARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/acq_task.h"
#include "exec/evaluation.h"
#include "exec/thread_pool.h"

namespace acquire {

/// How a cell-sorted layout build is executed. Every mode produces the SAME
/// layout bit for bit — the layout is canonical (cells sorted
/// lexicographically, payload rows in relation order within each cell,
/// per-cell states folded in payload order), so the choice only trades off
/// build time and is deliberately absent from the task fingerprint.
enum class PrepareMode {
  /// Parallel when the row count and the pool justify it (see
  /// BuildCellSortedLayout for the exact rule), else sequential.
  kAuto,
  /// Always the sequential reference build.
  kSequential,
  /// Always the sharded parallel build (even on a 1-worker pool, so
  /// single-core CI can still exercise the parallel code path).
  kParallel,
};

const char* PrepareModeName(PrepareMode mode);
/// Parses "auto|sequential|parallel" (case-insensitive).
bool ParsePrepareMode(const std::string& name, PrepareMode* out);

/// The cell-sorted CSR layout (see index/cell_sorted.h for field semantics):
/// the build result is separated from the layer so the sequential and
/// parallel builders, the delta merge, and the benches can all produce and
/// compare the same structure.
struct CellSortedLayout {
  size_t unreachable_rows = 0;
  NeededMatrix matrix;                 // permuted to cell order
  std::vector<int32_t> cell_keys;      // m * d, cell-major, sorted
  std::vector<uint32_t> cell_offsets;  // m + 1
  std::vector<AggregateOps::State> cell_states;

  size_t num_cells() const {
    return cell_offsets.empty() ? 0 : cell_offsets.size() - 1;
  }
};

/// How the build actually ran (for stats/tests/benches).
struct PrepareBuildInfo {
  bool parallel = false;  // the sharded path ran (vs the sequential one)
  size_t buckets = 0;     // range-partition buckets used (parallel only)
};

/// Builds the cell-sorted layout of `raw` (a needed-PScore matrix in
/// relation row order) at grid step `step`, folding per-cell states with
/// `ops`.
///
/// Sequential reference: first-seen cell ids over one row scan, sort the
/// distinct cells, counting-sort the rows into cell order, fold each cell's
/// contiguous payload.
///
/// Sharded parallel build (two-phase, mirroring core/parallel_merge's
/// shape): (A) per-row cell coordinates are computed over row chunks on the
/// pool; (B) rows are range-partitioned by cell coordinate into per-worker
/// buckets using deterministic sample-based splitters (all rows of one cell
/// land in one bucket; per-chunk counts + prefix sums keep each bucket's
/// rows in relation order), each bucket then runs the sequential reference
/// on its slice in parallel, and the bucket layouts concatenate into the
/// global CSR arrays. Because every cell lives in exactly one bucket and
/// buckets are ordered by the splitters, the concatenation IS the sorted
/// order, and each cell's payload/fold order matches the reference exactly —
/// the parallel build is bit-identical by construction, not by luck.
///
/// kAuto falls back to sequential below ~32k rows or when the pool cannot
/// produce two buckets; the `index.parallel_prepare` failpoint forces the
/// (result-identical) sequential path on builds that would have run
/// parallel. `pool` = nullptr uses the process-wide shared pool.
Status BuildCellSortedLayout(const NeededMatrix& raw, double step,
                             const AggregateOps& ops, ThreadPool* pool,
                             PrepareMode mode, CellSortedLayout* out,
                             PrepareBuildInfo* info = nullptr);

/// True when two layouts are identical bit for bit (keys, offsets, permuted
/// matrix, states, unreachable count) — the invariant the parallel build
/// guarantees; exposed for tests and the prepare bench.
bool LayoutsBitIdentical(const CellSortedLayout& a, const CellSortedLayout& b);

}  // namespace acquire

#endif  // ACQUIRE_INDEX_PARALLEL_PREPARE_H_
