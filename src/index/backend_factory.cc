#include "index/backend_factory.h"

#include <algorithm>

#include "exec/parallel_evaluation.h"
#include "index/cell_sorted.h"
#include "index/grid_index.h"

namespace acquire {

namespace {

double ResolveStep(const AcqTask& task, const BackendOptions& options) {
  if (options.grid_step > 0.0) return options.grid_step;
  return 10.0 / static_cast<double>(std::max<size_t>(task.d(), 1));
}

}  // namespace

Result<std::unique_ptr<EvaluationLayer>> MakeEvaluationLayer(
    const AcqTask* task, EvalBackend backend, const BackendOptions& options) {
  if (task == nullptr) {
    return Status::InvalidArgument("backend factory needs a task");
  }
  switch (backend) {
    case EvalBackend::kDirect:
      return std::unique_ptr<EvaluationLayer>(
          new DirectEvaluationLayer(task));
    case EvalBackend::kCached:
      return std::unique_ptr<EvaluationLayer>(
          new CachedEvaluationLayer(task));
    case EvalBackend::kParallel:
      return std::unique_ptr<EvaluationLayer>(
          new ParallelEvaluationLayer(task, options.threads));
    case EvalBackend::kGridIndex:
      return std::unique_ptr<EvaluationLayer>(
          new GridIndexEvaluationLayer(task, ResolveStep(*task, options)));
    case EvalBackend::kAuto:
    case EvalBackend::kCellSorted:
      return std::unique_ptr<EvaluationLayer>(new CellSortedEvaluationLayer(
          task, ResolveStep(*task, options), /*pool=*/nullptr,
          options.prepare_mode));
  }
  return Status::InvalidArgument("unknown evaluation backend");
}

}  // namespace acquire
