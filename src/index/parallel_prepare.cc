#include "index/parallel_prepare.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "exec/eval_kernel.h"

namespace acquire {

namespace {

// Below this many rows per bucket the partition/scatter overhead beats the
// win of a second worker (same ballpark as the eval kernel's chunking).
constexpr size_t kMinRowsPerBucket = 8192;
// kAuto stays sequential below this row count outright.
constexpr size_t kMinParallelRows = 32768;

/// The sequential reference build (the pre-refactor CellSorted Prepare body,
/// operating on an already-built matrix).
Status BuildSequential(const NeededMatrix& raw, double step,
                       const AggregateOps& ops, CellSortedLayout* out) {
  const size_t n = raw.rows;
  const size_t d = raw.dims;

  // Assign every row its grid cell; first-seen cell ids are temporary and
  // replaced by the sorted order below. Unreachable rows (needed == inf on
  // some dimension) are dropped: no PScoreRange admits infinity.
  constexpr uint32_t kUnreachable = UINT32_MAX;
  std::unordered_map<GridCoord, uint32_t, GridCoordHash> cell_ids;
  std::vector<GridCoord> coords;  // by temporary cell id
  std::vector<uint32_t> counts;   // by temporary cell id
  std::vector<uint32_t> row_cell(n, kUnreachable);
  GridCoord coord(d);
  out->unreachable_rows = 0;
  for (size_t row = 0; row < n; ++row) {
    bool reachable = true;
    for (size_t i = 0; i < d; ++i) {
      int64_t level = PScoreLevel(raw.dim(i)[row], step);
      if (level < 0) {
        reachable = false;
        break;
      }
      coord[i] = static_cast<int32_t>(level);
    }
    if (!reachable) {
      ++out->unreachable_rows;
      continue;
    }
    auto [it, inserted] =
        cell_ids.try_emplace(coord, static_cast<uint32_t>(coords.size()));
    if (inserted) {
      coords.push_back(coord);
      counts.push_back(0);
    }
    row_cell[row] = it->second;
    ++counts[it->second];
  }

  // Sort the (small) set of distinct cells lexicographically, then
  // counting-sort the rows into that order: prefix offsets + scatter.
  const size_t m = coords.size();
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return coords[a] < coords[b];
  });
  std::vector<uint32_t> sorted_pos(m);
  for (size_t s = 0; s < m; ++s) {
    sorted_pos[order[s]] = static_cast<uint32_t>(s);
  }

  out->cell_keys.resize(m * d);
  out->cell_offsets.assign(m + 1, 0);
  for (size_t s = 0; s < m; ++s) {
    const GridCoord& c = coords[order[s]];
    std::copy(c.begin(), c.end(), out->cell_keys.begin() + s * d);
    out->cell_offsets[s + 1] = out->cell_offsets[s] + counts[order[s]];
  }

  const size_t reachable = n - out->unreachable_rows;
  out->matrix.rows = reachable;
  out->matrix.dims = d;
  out->matrix.needed.resize(reachable * d);
  out->matrix.agg_values.resize(reachable);
  std::vector<uint32_t> cursor(out->cell_offsets.begin(),
                               out->cell_offsets.end() - 1);
  for (size_t row = 0; row < n; ++row) {
    if (row_cell[row] == kUnreachable) continue;
    const uint32_t p = cursor[sorted_pos[row_cell[row]]]++;
    for (size_t i = 0; i < d; ++i) {
      out->matrix.mutable_dim(i)[p] = raw.dim(i)[row];
    }
    out->matrix.agg_values[p] = raw.agg_values[row];
  }

  // Per-cell aggregate states: fold each contiguous payload range.
  out->cell_states.resize(m);
  for (size_t s = 0; s < m; ++s) {
    out->cell_states[s] = ops.Init();
    FoldRange(ops, out->matrix.agg_values.data() + out->cell_offsets[s],
              out->cell_offsets[s + 1] - out->cell_offsets[s],
              &out->cell_states[s]);
  }
  return Status::OK();
}

/// One bucket's piece of the layout, concatenated by the caller.
struct BucketCells {
  std::vector<int32_t> keys;      // m_b * d, sorted
  std::vector<uint32_t> offsets;  // m_b + 1, relative to the bucket start
  std::vector<AggregateOps::State> states;
};

/// The sharded build. Returns false (with *out untouched) when the input
/// yields no usable splitter sample — the caller then runs the sequential
/// reference instead.
bool BuildParallel(const NeededMatrix& raw, double step,
                   const AggregateOps& ops, ThreadPool* pool,
                   CellSortedLayout* out, size_t* buckets_out) {
  const size_t n = raw.rows;
  const size_t d = raw.dims;
  const size_t chunks = pool->NumChunks(n, kMinRowsPerBucket);
  const size_t num_buckets = chunks;
  if (n == 0 || num_buckets == 0) return false;

  // Deterministic range-partition splitters: a strided sample of row cell
  // coordinates, sorted, cut at even quantiles. The bucket of a row depends
  // only on its cell coordinate, so a cell can never straddle buckets, and
  // splitter order makes bucket order agree with lexicographic cell order —
  // concatenating the per-bucket sorted layouts IS the global sorted layout.
  std::vector<GridCoord> sample;
  {
    const size_t target = std::max<size_t>(256, num_buckets * 32);
    const size_t stride = std::max<size_t>(1, n / target);
    GridCoord c(d);
    for (size_t row = 0; row < n; row += stride) {
      bool ok = true;
      for (size_t i = 0; i < d; ++i) {
        int64_t level = PScoreLevel(raw.dim(i)[row], step);
        if (level < 0) {
          ok = false;
          break;
        }
        c[i] = static_cast<int32_t>(level);
      }
      if (ok) sample.push_back(c);
    }
  }
  if (sample.empty()) return false;
  std::sort(sample.begin(), sample.end());
  std::vector<GridCoord> splitters;
  splitters.reserve(num_buckets - 1);
  for (size_t k = 1; k < num_buckets; ++k) {
    splitters.push_back(sample[k * sample.size() / num_buckets]);
  }
  // bucket(key) = number of splitters lexicographically <= key, in
  // [0, num_buckets).
  auto bucket_of = [&](const int32_t* key) -> uint32_t {
    size_t lo = 0;
    size_t hi = splitters.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      const GridCoord& s = splitters[mid];
      if (std::lexicographical_compare(key, key + d, s.data(),
                                       s.data() + d)) {
        hi = mid;  // splitter > key
      } else {
        lo = mid + 1;
      }
    }
    return static_cast<uint32_t>(lo);
  };

  // Phase A: per-row cell coordinates, reachability and bucket assignment
  // over deterministic row chunks, with per-chunk bucket histograms.
  std::vector<int32_t> levels(n * d);  // row-major scratch
  std::vector<uint8_t> reachable(n);
  std::vector<uint32_t> row_bucket(n);
  std::vector<uint32_t> counts(chunks * num_buckets, 0);
  std::vector<uint32_t> chunk_unreachable(chunks, 0);
  pool->ParallelFor(n, kMinRowsPerBucket,
                    [&](size_t chunk, size_t begin, size_t end) {
                      uint32_t* my = counts.data() + chunk * num_buckets;
                      uint32_t bad = 0;
                      for (size_t row = begin; row < end; ++row) {
                        int32_t* c = levels.data() + row * d;
                        bool ok = true;
                        for (size_t i = 0; i < d; ++i) {
                          int64_t level = PScoreLevel(raw.dim(i)[row], step);
                          if (level < 0) {
                            ok = false;
                            break;
                          }
                          c[i] = static_cast<int32_t>(level);
                        }
                        reachable[row] = ok ? 1 : 0;
                        if (!ok) {
                          ++bad;
                          continue;
                        }
                        const uint32_t b = bucket_of(c);
                        row_bucket[row] = b;
                        ++my[b];
                      }
                      chunk_unreachable[chunk] = bad;
                    });
  const size_t unreachable_rows =
      std::accumulate(chunk_unreachable.begin(), chunk_unreachable.end(),
                      size_t{0});
  const size_t reachable_rows = n - unreachable_rows;

  // Prefix sums: bucket payload ranges, and each (chunk, bucket) write
  // cursor — chunk-major within a bucket, so a bucket's rows end up ordered
  // by (chunk, row) == relation row order.
  std::vector<uint32_t> bucket_start(num_buckets + 1, 0);
  for (size_t b = 0; b < num_buckets; ++b) {
    uint32_t rows = 0;
    for (size_t c = 0; c < chunks; ++c) rows += counts[c * num_buckets + b];
    bucket_start[b + 1] = bucket_start[b] + rows;
  }
  std::vector<uint32_t> cursors(chunks * num_buckets);
  for (size_t b = 0; b < num_buckets; ++b) {
    uint32_t cur = bucket_start[b];
    for (size_t c = 0; c < chunks; ++c) {
      cursors[c * num_buckets + b] = cur;
      cur += counts[c * num_buckets + b];
    }
  }

  // Phase B: scatter row indices into bucket order (disjoint slices, no
  // synchronization; identical chunking to phase A).
  std::vector<uint32_t> rows_by_bucket(reachable_rows);
  pool->ParallelFor(n, kMinRowsPerBucket,
                    [&](size_t chunk, size_t begin, size_t end) {
                      uint32_t* cur = cursors.data() + chunk * num_buckets;
                      for (size_t row = begin; row < end; ++row) {
                        if (!reachable[row]) continue;
                        rows_by_bucket[cur[row_bucket[row]]++] =
                            static_cast<uint32_t>(row);
                      }
                    });

  // Phase C: each bucket runs the sequential reference on its slice —
  // first-seen distinct cells in row order, sort, counting scatter into the
  // bucket's global payload range, per-cell folds. Buckets are independent.
  out->unreachable_rows = unreachable_rows;
  out->matrix.rows = reachable_rows;
  out->matrix.dims = d;
  out->matrix.needed.resize(reachable_rows * d);
  out->matrix.agg_values.resize(reachable_rows);
  std::vector<BucketCells> bucket_cells(num_buckets);
  pool->ParallelFor(
      num_buckets, 1, [&](size_t, size_t bucket_begin, size_t bucket_end) {
        std::unordered_map<GridCoord, uint32_t, GridCoordHash> ids;
        GridCoord c(d);
        for (size_t b = bucket_begin; b < bucket_end; ++b) {
          BucketCells& bc = bucket_cells[b];
          const uint32_t base = bucket_start[b];
          const uint32_t count = bucket_start[b + 1] - base;
          bc.offsets.assign(1, 0);
          if (count == 0) continue;
          ids.clear();
          std::vector<GridCoord> coords;
          std::vector<uint32_t> cell_counts;
          std::vector<uint32_t> row_cell(count);
          for (uint32_t r = 0; r < count; ++r) {
            const uint32_t row = rows_by_bucket[base + r];
            c.assign(levels.begin() + row * d, levels.begin() + (row + 1) * d);
            auto [it, inserted] =
                ids.try_emplace(c, static_cast<uint32_t>(coords.size()));
            if (inserted) {
              coords.push_back(c);
              cell_counts.push_back(0);
            }
            row_cell[r] = it->second;
            ++cell_counts[it->second];
          }
          const size_t m = coords.size();
          std::vector<uint32_t> order(m);
          std::iota(order.begin(), order.end(), 0u);
          std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b2) {
            return coords[a] < coords[b2];
          });
          std::vector<uint32_t> sorted_pos(m);
          for (size_t s = 0; s < m; ++s) {
            sorted_pos[order[s]] = static_cast<uint32_t>(s);
          }
          bc.keys.resize(m * d);
          bc.offsets.assign(m + 1, 0);
          for (size_t s = 0; s < m; ++s) {
            const GridCoord& coord = coords[order[s]];
            std::copy(coord.begin(), coord.end(), bc.keys.begin() + s * d);
            bc.offsets[s + 1] = bc.offsets[s] + cell_counts[order[s]];
          }
          std::vector<uint32_t> cursor(bc.offsets.begin(),
                                       bc.offsets.end() - 1);
          for (uint32_t r = 0; r < count; ++r) {
            const uint32_t row = rows_by_bucket[base + r];
            const uint32_t p = base + cursor[sorted_pos[row_cell[r]]]++;
            for (size_t i = 0; i < d; ++i) {
              out->matrix.mutable_dim(i)[p] = raw.dim(i)[row];
            }
            out->matrix.agg_values[p] = raw.agg_values[row];
          }
          bc.states.resize(m);
          for (size_t s = 0; s < m; ++s) {
            bc.states[s] = ops.Init();
            FoldRange(ops, out->matrix.agg_values.data() + base + bc.offsets[s],
                      bc.offsets[s + 1] - bc.offsets[s], &bc.states[s]);
          }
        }
      });

  // Assembly: concatenate the per-bucket layouts (the distinct-cell count is
  // small next to n, so this stays sequential).
  size_t m_total = 0;
  for (const BucketCells& bc : bucket_cells) m_total += bc.offsets.size() - 1;
  out->cell_keys.clear();
  out->cell_keys.reserve(m_total * d);
  out->cell_offsets.clear();
  out->cell_offsets.reserve(m_total + 1);
  out->cell_offsets.push_back(0);
  out->cell_states.clear();
  out->cell_states.reserve(m_total);
  for (size_t b = 0; b < num_buckets; ++b) {
    BucketCells& bc = bucket_cells[b];
    const uint32_t base = bucket_start[b];
    out->cell_keys.insert(out->cell_keys.end(), bc.keys.begin(),
                          bc.keys.end());
    for (size_t s = 0; s + 1 < bc.offsets.size(); ++s) {
      out->cell_offsets.push_back(base + bc.offsets[s + 1]);
    }
    for (AggregateOps::State& state : bc.states) {
      out->cell_states.push_back(std::move(state));
    }
  }
  if (buckets_out != nullptr) *buckets_out = num_buckets;
  return true;
}

}  // namespace

const char* PrepareModeName(PrepareMode mode) {
  switch (mode) {
    case PrepareMode::kAuto:
      return "auto";
    case PrepareMode::kSequential:
      return "sequential";
    case PrepareMode::kParallel:
      return "parallel";
  }
  return "unknown";
}

bool ParsePrepareMode(const std::string& name, PrepareMode* out) {
  const std::string lower = ToLower(name);
  if (lower == "auto") {
    *out = PrepareMode::kAuto;
  } else if (lower == "sequential" || lower == "seq") {
    *out = PrepareMode::kSequential;
  } else if (lower == "parallel" || lower == "par") {
    *out = PrepareMode::kParallel;
  } else {
    return false;
  }
  return true;
}

Status BuildCellSortedLayout(const NeededMatrix& raw, double step,
                             const AggregateOps& ops, ThreadPool* pool,
                             PrepareMode mode, CellSortedLayout* out,
                             PrepareBuildInfo* info) {
  if (step <= 0.0) {
    return Status::InvalidArgument("cell-sorted layout requires a positive "
                                   "step");
  }
  if (pool == nullptr) pool = &ThreadPool::Shared();
  bool parallel = false;
  switch (mode) {
    case PrepareMode::kSequential:
      break;
    case PrepareMode::kParallel:
      parallel = true;
      break;
    case PrepareMode::kAuto:
      parallel = raw.rows >= kMinParallelRows &&
                 pool->NumChunks(raw.rows, kMinRowsPerBucket) >= 2;
      break;
  }
  // Result-preserving fault injection: a build that would have sharded runs
  // the sequential reference instead (identical layout by construction).
  if (parallel && ACQ_FAILPOINT("index.parallel_prepare")) parallel = false;
  size_t buckets = 0;
  if (parallel && !BuildParallel(raw, step, ops, pool, out, &buckets)) {
    parallel = false;  // degenerate input (no reachable sample rows)
  }
  if (!parallel) {
    ACQ_RETURN_IF_ERROR(BuildSequential(raw, step, ops, out));
  }
  if (info != nullptr) {
    info->parallel = parallel;
    info->buckets = buckets;
  }
  return Status::OK();
}

bool LayoutsBitIdentical(const CellSortedLayout& a,
                         const CellSortedLayout& b) {
  auto bytes_equal = [](const auto& x, const auto& y) {
    using T = typename std::decay_t<decltype(x)>::value_type;
    return x.size() == y.size() &&
           (x.empty() ||
            std::memcmp(x.data(), y.data(), x.size() * sizeof(T)) == 0);
  };
  if (a.unreachable_rows != b.unreachable_rows) return false;
  if (a.matrix.rows != b.matrix.rows || a.matrix.dims != b.matrix.dims) {
    return false;
  }
  if (!bytes_equal(a.matrix.needed, b.matrix.needed)) return false;
  if (!bytes_equal(a.matrix.agg_values, b.matrix.agg_values)) return false;
  if (!bytes_equal(a.cell_keys, b.cell_keys)) return false;
  if (!bytes_equal(a.cell_offsets, b.cell_offsets)) return false;
  if (a.cell_states.size() != b.cell_states.size()) return false;
  for (size_t s = 0; s < a.cell_states.size(); ++s) {
    if (!bytes_equal(a.cell_states[s], b.cell_states[s])) return false;
  }
  return true;
}

}  // namespace acquire
