#include "index/cell_sorted.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/eval_kernel.h"

namespace acquire {

CellSortedEvaluationLayer::CellSortedEvaluationLayer(const AcqTask* task,
                                                     double step,
                                                     ThreadPool* pool,
                                                     PrepareMode prepare_mode)
    : EvaluationLayer(task),
      step_(step),
      pool_(pool != nullptr ? pool : &ThreadPool::Shared()),
      prepare_mode_(prepare_mode) {}

Status CellSortedEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  if (step_ <= 0.0) {
    return Status::InvalidArgument("cell-sorted layer requires a positive step");
  }
  Stopwatch prepare_sw;
  // Snapshot the row count first: rows appended between here and the first
  // evaluate call are picked up by the delta sync, never double-counted.
  const size_t relation_rows = task_->relation->num_rows();
  NeededMatrix raw;
  ACQ_RETURN_IF_ERROR(BuildNeededMatrix(*task_, pool_, &raw));
  CellSortedLayout layout;
  ACQ_RETURN_IF_ERROR(BuildCellSortedLayout(raw, step_, *task_->agg.ops,
                                            pool_, prepare_mode_, &layout,
                                            &build_info_));
  unreachable_rows_ = layout.unreachable_rows;
  matrix_ = std::move(layout.matrix);
  cell_keys_ = std::move(layout.cell_keys);
  cell_offsets_ = std::move(layout.cell_offsets);
  cell_states_ = std::move(layout.cell_states);
  consumed_rows_ = relation_rows;
  // Retained footprint only (the raw matrix and sort scratch are freed on
  // return): sorted matrix, CSR keys/offsets, per-cell states.
  ChargeBudget((matrix_.needed.size() + matrix_.agg_values.size()) *
                   sizeof(double) +
               cell_keys_.size() * sizeof(int32_t) +
               cell_offsets_.size() * sizeof(uint32_t) +
               cell_states_.size() * sizeof(AggregateOps::State));
  prepare_ms_ += prepare_sw.ElapsedMillis();
  prepared_ = true;
  return Status::OK();
}

size_t CellSortedEvaluationLayer::delta_merge_threshold() const {
  if (delta_merge_threshold_ != 0) return delta_merge_threshold_;
  return std::max<size_t>(4096, matrix_.rows / 8);
}

Status CellSortedEvaluationLayer::StageNewRows() {
  const size_t relation_rows = task_->relation->num_rows();
  if (relation_rows <= consumed_rows_) return Status::OK();
  const size_t d = task_->d();
  // The appended rows' needed values are bit-identical to the rows a full
  // rebuild would compute (BuildNeededMatrixRows re-runs PrecomputeNeeded,
  // so value-memoizing dimensions see the new rows too).
  NeededMatrix fresh;
  ACQ_RETURN_IF_ERROR(BuildNeededMatrixRows(*task_, consumed_rows_,
                                            relation_rows, /*pool=*/nullptr,
                                            &fresh));
  GridCoord coord(d);
  size_t appended = 0;
  for (size_t row = 0; row < fresh.rows; ++row) {
    bool reachable = true;
    for (size_t i = 0; i < d; ++i) {
      int64_t level = PScoreLevel(fresh.dim(i)[row], step_);
      if (level < 0) {
        reachable = false;
        break;
      }
      coord[i] = static_cast<int32_t>(level);
    }
    if (!reachable) {
      ++unreachable_rows_;
      continue;
    }
    delta_coords_.insert(delta_coords_.end(), coord.begin(), coord.end());
    for (size_t i = 0; i < d; ++i) {
      delta_needed_.push_back(fresh.dim(i)[row]);
    }
    delta_agg_.push_back(fresh.agg_values[row]);
    ++appended;
  }
  consumed_rows_ = relation_rows;

  // Rebuild the sorted CSR view over the whole buffer. Stable sort: rows of
  // one cell stay in append order, which is what makes the per-cell fold
  // continuation identical to a rebuild.
  const size_t k = delta_agg_.size();
  delta_order_.resize(k);
  std::iota(delta_order_.begin(), delta_order_.end(), 0u);
  std::stable_sort(delta_order_.begin(), delta_order_.end(),
                   [&](uint32_t a, uint32_t b) {
                     const int32_t* ka = delta_coords_.data() + a * d;
                     const int32_t* kb = delta_coords_.data() + b * d;
                     return std::lexicographical_compare(ka, ka + d, kb,
                                                         kb + d);
                   });
  delta_cell_keys_.clear();
  delta_cell_offsets_.assign(1, 0);
  const int32_t* prev = nullptr;
  for (size_t r = 0; r < k; ++r) {
    const int32_t* key = delta_coords_.data() + delta_order_[r] * d;
    if (prev == nullptr || !std::equal(key, key + d, prev)) {
      delta_cell_keys_.insert(delta_cell_keys_.end(), key, key + d);
      if (r > 0) delta_cell_offsets_.push_back(static_cast<uint32_t>(r));
    }
    prev = key;
  }
  delta_cell_offsets_.push_back(static_cast<uint32_t>(k));
  delta_rows_ = k;
  ChargeBudget(appended * ((d + 1) * sizeof(double) + d * sizeof(int32_t) +
                           sizeof(uint32_t)));
  return Status::OK();
}

Status CellSortedEvaluationLayer::SyncDeltas() {
  ACQ_RETURN_IF_ERROR(StageNewRows());
  if (staged_delta_rows() >= delta_merge_threshold()) {
    return AbsorbStagedDeltas();
  }
  return Status::OK();
}

Status CellSortedEvaluationLayer::MergeDeltas() {
  if (!prepared_) return Prepare();
  ACQ_RETURN_IF_ERROR(StageNewRows());
  return AbsorbStagedDeltas();
}

void CellSortedEvaluationLayer::ClearDeltaBuffer() {
  delta_coords_.clear();
  delta_needed_.clear();
  delta_agg_.clear();
  delta_order_.clear();
  delta_cell_keys_.clear();
  delta_cell_offsets_.clear();
  delta_rows_ = 0;
}

Status CellSortedEvaluationLayer::AbsorbStagedDeltas() {
  const size_t k = delta_agg_.size();
  if (k == 0) return Status::OK();
  ++delta_merges_;
  if (ACQ_FAILPOINT("index.delta_merge")) {
    // Result-preserving fault: fall back to the O(n log n) full rebuild the
    // incremental merge exists to avoid. The layout is canonical, so the
    // rebuild produces the exact bytes the merge would have.
    prepared_ = false;
    unreachable_rows_ = 0;
    consumed_rows_ = 0;
    matrix_ = NeededMatrix{};
    cell_keys_.clear();
    cell_offsets_.clear();
    cell_states_.clear();
    ClearDeltaBuffer();
    return Prepare();
  }
  Stopwatch merge_sw;
  const size_t d = task_->d();
  const size_t m = num_cells();
  const size_t dm = delta_num_cells();
  const AggregateOps& ops = *task_->agg.ops;

  NeededMatrix merged;
  merged.rows = matrix_.rows + k;
  merged.dims = d;
  merged.needed.resize(merged.rows * d);
  merged.agg_values.resize(merged.rows);
  std::vector<int32_t> keys;
  keys.reserve((m + dm) * d);
  std::vector<uint32_t> offsets;
  offsets.reserve(m + dm + 1);
  offsets.push_back(0);
  std::vector<AggregateOps::State> states;
  states.reserve(m + dm);

  uint32_t out_pos = 0;
  auto copy_base_cell = [&](size_t s) {
    const uint32_t begin = cell_offsets_[s];
    const uint32_t count = cell_offsets_[s + 1] - begin;
    for (size_t i = 0; i < d; ++i) {
      std::memcpy(merged.mutable_dim(i) + out_pos, matrix_.dim(i) + begin,
                  count * sizeof(double));
    }
    std::memcpy(merged.agg_values.data() + out_pos,
                matrix_.agg_values.data() + begin, count * sizeof(double));
    out_pos += count;
  };
  // Copies staged cell `t`'s rows (append order) and, when `state` is
  // given, continues it with their Adds — the rebuild's exact fold order.
  auto copy_delta_cell = [&](size_t t, AggregateOps::State* state) {
    for (uint32_t r = delta_cell_offsets_[t]; r < delta_cell_offsets_[t + 1];
         ++r) {
      const uint32_t row = delta_order_[r];
      for (size_t i = 0; i < d; ++i) {
        merged.mutable_dim(i)[out_pos] = delta_needed_[row * d + i];
      }
      merged.agg_values[out_pos] = delta_agg_[row];
      if (state != nullptr) ops.Add(state, delta_agg_[row]);
      ++out_pos;
    }
  };

  size_t s = 0;
  size_t t = 0;
  while (s < m || t < dm) {
    int cmp;
    if (s == m) {
      cmp = 1;
    } else if (t == dm) {
      cmp = -1;
    } else {
      const int32_t* ka = cell_keys_.data() + s * d;
      const int32_t* kb = delta_cell_keys_.data() + t * d;
      cmp = std::lexicographical_compare(ka, ka + d, kb, kb + d)    ? -1
            : std::lexicographical_compare(kb, kb + d, ka, ka + d) ? 1
                                                                   : 0;
    }
    if (cmp <= 0) {
      keys.insert(keys.end(), cell_keys_.begin() + s * d,
                  cell_keys_.begin() + (s + 1) * d);
      copy_base_cell(s);
      AggregateOps::State state = std::move(cell_states_[s]);
      if (cmp == 0) copy_delta_cell(t++, &state);
      states.push_back(std::move(state));
      ++s;
    } else {
      keys.insert(keys.end(), delta_cell_keys_.begin() + t * d,
                  delta_cell_keys_.begin() + (t + 1) * d);
      AggregateOps::State state = ops.Init();
      copy_delta_cell(t++, &state);
      states.push_back(std::move(state));
    }
    offsets.push_back(out_pos);
  }

  const size_t old_cells = m;
  matrix_ = std::move(merged);
  cell_keys_ = std::move(keys);
  cell_offsets_ = std::move(offsets);
  cell_states_ = std::move(states);
  ClearDeltaBuffer();
  // The row payload was charged at staging time; only the CSR growth from
  // brand-new cells is charged here.
  const size_t new_cells = num_cells();
  if (new_cells > old_cells) {
    ChargeBudget((new_cells - old_cells) *
                 (d * sizeof(int32_t) + sizeof(uint32_t) +
                  sizeof(AggregateOps::State)));
  }
  prepare_ms_ += merge_sw.ElapsedMillis();
  return Status::OK();
}

size_t CellSortedEvaluationLayer::LowerBoundCell(const int32_t* key) const {
  const size_t d = task_->d();
  size_t lo = 0;
  size_t hi = num_cells();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const int32_t* cell = cell_keys_.data() + mid * d;
    if (std::lexicographical_compare(cell, cell + d, key, key + d)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t CellSortedEvaluationLayer::LowerBoundDeltaCell(
    const int32_t* key) const {
  const size_t d = task_->d();
  size_t lo = 0;
  size_t hi = delta_num_cells();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const int32_t* cell = delta_cell_keys_.data() + mid * d;
    if (std::lexicographical_compare(cell, cell + d, key, key + d)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void CellSortedEvaluationLayer::FoldDeltaCellAt(
    size_t t, AggregateOps::State* state) const {
  const AggregateOps& ops = *task_->agg.ops;
  for (uint32_t r = delta_cell_offsets_[t]; r < delta_cell_offsets_[t + 1];
       ++r) {
    ops.Add(state, delta_agg_[delta_order_[r]]);
  }
}

void CellSortedEvaluationLayer::FoldDeltaCell(
    const int32_t* key, AggregateOps::State* state) const {
  const size_t dm = delta_num_cells();
  if (dm == 0) return;
  const size_t d = task_->d();
  const size_t t = LowerBoundDeltaCell(key);
  if (t < dm &&
      std::equal(key, key + d, delta_cell_keys_.data() + t * d)) {
    FoldDeltaCellAt(t, state);
  }
}

size_t CellSortedEvaluationLayer::GallopLowerBound(size_t from,
                                                   const int32_t* key) const {
  const size_t d = task_->d();
  const size_t m = num_cells();
  auto less = [&](size_t s) {
    const int32_t* cell = cell_keys_.data() + s * d;
    return std::lexicographical_compare(cell, cell + d, key, key + d);
  };
  if (from >= m || !less(from)) return from;
  // Exponential probe: bracket the answer in (from + step/2, from + step].
  size_t step = 1;
  size_t lo = from;
  while (from + step < m && less(from + step)) {
    lo = from + step;
    step *= 2;
  }
  size_t hi = std::min(from + step, m);
  ++lo;  // cells at or before `lo` all compare less
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (less(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<std::vector<AggregateOps::State>>
CellSortedEvaluationLayer::EvaluateCells(const GridCoord* coords, size_t count,
                                         double step) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(SyncDeltas());
  // A foreign step means the requested cells are not this layout's cells;
  // the generic path decomposes them into box queries as usual. The
  // failpoint injects the same (bit-identical) fallback on native batches.
  if (step != step_ || ACQ_FAILPOINT("index.batch_eval")) {
    return EvaluationLayer::EvaluateCells(coords, count, step);
  }
  const size_t d = task_->d();
  const AggregateOps& ops = *task_->agg.ops;
  std::vector<AggregateOps::State> states(count);
  if (count == 0) return states;
  for (size_t q = 0; q < count; ++q) {
    if (coords[q].size() != d) {
      return Status::InvalidArgument(
          StringFormat("cell coordinate has %zu levels, task has %zu "
                       "dimensions", coords[q].size(), d));
    }
  }
  stats_.queries.fetch_add(count, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(count, std::memory_order_relaxed);

  // Answer the whole batch in merged sweeps: visit the requests in sorted
  // key order, advancing a cursor over the sorted CSR keys with galloping
  // lower bounds (never rewinding, never restarting the binary search from
  // the top). Large batches split into deterministic contiguous chunks of
  // the sorted order across the pool — each chunk sweeps independently with
  // its own cursor, and every answer is a copy of the per-cell fold from
  // Prepare() (continued with the cell's staged delta rows in append order,
  // exactly as a rebuild would fold them), so the result is bit-identical
  // to a single sweep over a freshly rebuilt layout.
  std::vector<uint32_t> req(count);
  std::iota(req.begin(), req.end(), 0u);
  // BFS layers arrive in descending key order (canonical-predecessor
  // enumeration), so detect the two already-sorted cases in O(count * d)
  // before paying for a comparison sort.
  bool ascending = true;
  bool descending = true;
  for (size_t q = 1; q < count && (ascending || descending); ++q) {
    if (coords[q - 1] < coords[q]) {
      descending = false;
    } else if (coords[q] < coords[q - 1]) {
      ascending = false;
    }
  }
  if (descending && !ascending) {
    std::reverse(req.begin(), req.end());
  } else if (!ascending) {
    std::sort(req.begin(), req.end(), [&](uint32_t a, uint32_t b) {
      return coords[a] < coords[b];
    });
  }
  const size_t m = num_cells();
  const bool have_deltas = delta_num_cells() > 0;
  auto sweep = [&](size_t, size_t begin, size_t end) {
    if (begin >= end) return;
    // Seed this worker's cursor at its own slice of the key array with one
    // binary search, instead of galloping across the whole prefix that
    // earlier chunks own.
    size_t cursor =
        begin == 0 ? 0 : LowerBoundCell(coords[req[begin]].data());
    const int32_t* prev_key = nullptr;
    uint32_t prev_qi = 0;
    for (size_t r = begin; r < end; ++r) {
      const uint32_t qi = req[r];
      const int32_t* key = coords[qi].data();
      if (prev_key != nullptr && std::equal(key, key + d, prev_key)) {
        // Duplicate request: reuse the previous answer.
        states[qi] = states[prev_qi];
      } else {
        cursor = GallopLowerBound(cursor, key);
        if (cursor < m &&
            std::equal(key, key + d, cell_keys_.data() + cursor * d)) {
          states[qi] = cell_states_[cursor];
        } else {
          states[qi] = ops.Init();
        }
        if (have_deltas) FoldDeltaCell(key, &states[qi]);
        prev_key = key;
      }
      prev_qi = qi;
    }
  };
  // A single-worker pool would still split the sweep in two and pay the
  // queue hand-off for no concurrency; one full sweep is strictly cheaper.
  if (pool_->num_threads() > 1) {
    pool_->ParallelFor(count, /*min_chunk=*/128, sweep);
  } else {
    sweep(0, 0, count);
  }
  return states;
}

bool CellSortedEvaluationLayer::IsCellAligned(
    const std::vector<PScoreRange>& box, GridCoord* coord) const {
  std::vector<int64_t> lo, hi;
  if (!AlignedLevelBounds(box, step_, &lo, &hi)) return false;
  coord->resize(box.size());
  for (size_t i = 0; i < box.size(); ++i) {
    if (lo[i] != hi[i]) return false;
    (*coord)[i] = static_cast<int32_t>(hi[i]);
  }
  return true;
}

Result<AggregateOps::State> CellSortedEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(SyncDeltas());
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const AggregateOps& ops = *task_->agg.ops;
  const size_t d = task_->d();
  const size_t m = num_cells();

  std::vector<int64_t> lo_level, hi_level;
  if (AlignedLevelBounds(box, step_, &lo_level, &hi_level)) {
    // Clamp to int32 key space (coordinates were stored as int32).
    std::vector<int32_t> lo32(d), hi32(d);
    bool single_cell = true;
    for (size_t i = 0; i < d; ++i) {
      lo32[i] = static_cast<int32_t>(
          std::min<int64_t>(lo_level[i], INT32_MAX));
      hi32[i] = static_cast<int32_t>(
          std::min<int64_t>(hi_level[i], INT32_MAX));
      single_cell &= lo_level[i] == hi_level[i];
    }
    if (single_cell) {
      // One binary search; the payload fold happened once in Prepare().
      stats_.tuples_scanned.fetch_add(1, std::memory_order_relaxed);
      const size_t s = LowerBoundCell(lo32.data());
      AggregateOps::State state;
      if (s < m &&
          std::equal(lo32.begin(), lo32.end(), cell_keys_.data() + s * d)) {
        state = cell_states_[s];
      } else {
        state = ops.Init();
      }
      FoldDeltaCell(lo32.data(), &state);
      return state;
    }
    // Aligned box: only the sorted key range whose leading coordinate lies
    // in [lo, hi] can intersect the box; walk it, filtering the remaining
    // dimensions and merging per-cell states in key order (deterministic).
    // With staged deltas the walk is a two-cursor merge over the main and
    // delta key arrays — the union in sorted order is exactly the rebuilt
    // layout's key order, and each cell's effective state (base fold
    // continued with its delta rows) is exactly the rebuilt cell state, so
    // the merge sequence matches a rebuild bit for bit.
    std::vector<int32_t> first(d, 0);
    first[0] = lo32[0];  // smallest possible key in range
    AggregateOps::State state = ops.Init();
    uint64_t cells_walked = 0;
    const size_t dm = delta_num_cells();
    size_t s = LowerBoundCell(first.data());
    size_t t = dm == 0 ? 0 : LowerBoundDeltaCell(first.data());
    auto inside_box = [&](const int32_t* cell) {
      bool inside = cell[0] >= lo32[0];
      for (size_t i = 1; inside && i < d; ++i) {
        inside = cell[i] >= lo32[i] && cell[i] <= hi32[i];
      }
      return inside;
    };
    while (s < m || t < dm) {
      int cmp;
      if (s == m) {
        cmp = 1;
      } else if (t == dm) {
        cmp = -1;
      } else {
        const int32_t* ka = cell_keys_.data() + s * d;
        const int32_t* kb = delta_cell_keys_.data() + t * d;
        cmp = std::lexicographical_compare(ka, ka + d, kb, kb + d)    ? -1
              : std::lexicographical_compare(kb, kb + d, ka, ka + d) ? 1
                                                                     : 0;
      }
      const int32_t* cell = cmp <= 0 ? cell_keys_.data() + s * d
                                     : delta_cell_keys_.data() + t * d;
      if (cell[0] > hi32[0]) break;
      ++cells_walked;
      if (inside_box(cell)) {
        if (cmp < 0) {
          ops.Merge(&state, cell_states_[s]);
        } else {
          AggregateOps::State cell_state =
              cmp == 0 ? cell_states_[s] : ops.Init();
          FoldDeltaCellAt(t, &cell_state);
          ops.Merge(&state, cell_state);
        }
      }
      if (cmp <= 0) ++s;
      if (cmp >= 0) ++t;
    }
    stats_.tuples_scanned.fetch_add(cells_walked, std::memory_order_relaxed);
    return state;
  }

  // Off-grid box: branchless kernel scan over the permuted matrix, chunked
  // across the persistent pool when large enough to pay off. The scan (and
  // its deterministic chunk merge) must run over exactly the layout a full
  // rebuild would produce, so staged rows are absorbed first.
  if (staged_delta_rows() > 0) {
    ACQ_RETURN_IF_ERROR(AbsorbStagedDeltas());
  }
  stats_.tuples_scanned.fetch_add(matrix_.rows, std::memory_order_relaxed);
  return ScanBoxOverMatrix(ops, matrix_, box, pool_);
}

}  // namespace acquire
