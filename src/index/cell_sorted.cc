#include "index/cell_sorted.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "exec/eval_kernel.h"

namespace acquire {

CellSortedEvaluationLayer::CellSortedEvaluationLayer(const AcqTask* task,
                                                     double step,
                                                     ThreadPool* pool)
    : EvaluationLayer(task),
      step_(step),
      pool_(pool != nullptr ? pool : &ThreadPool::Shared()) {}

Status CellSortedEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  if (step_ <= 0.0) {
    return Status::InvalidArgument("cell-sorted layer requires a positive step");
  }
  NeededMatrix raw;
  ACQ_RETURN_IF_ERROR(BuildNeededMatrix(*task_, pool_, &raw));
  const size_t n = raw.rows;
  const size_t d = raw.dims;

  // Assign every row its grid cell; first-seen cell ids are temporary and
  // replaced by the sorted order below. Unreachable rows (needed == inf on
  // some dimension) are dropped: no PScoreRange admits infinity.
  constexpr uint32_t kUnreachable = UINT32_MAX;
  std::unordered_map<GridCoord, uint32_t, GridCoordHash> cell_ids;
  std::vector<GridCoord> coords;        // by temporary cell id
  std::vector<uint32_t> counts;         // by temporary cell id
  std::vector<uint32_t> row_cell(n, kUnreachable);
  GridCoord coord(d);
  for (size_t row = 0; row < n; ++row) {
    bool reachable = true;
    for (size_t i = 0; i < d; ++i) {
      int64_t level = PScoreLevel(raw.dim(i)[row], step_);
      if (level < 0) {
        reachable = false;
        break;
      }
      coord[i] = static_cast<int32_t>(level);
    }
    if (!reachable) {
      ++unreachable_rows_;
      continue;
    }
    auto [it, inserted] =
        cell_ids.try_emplace(coord, static_cast<uint32_t>(coords.size()));
    if (inserted) {
      coords.push_back(coord);
      counts.push_back(0);
    }
    row_cell[row] = it->second;
    ++counts[it->second];
  }

  // Sort the (small) set of distinct cells lexicographically, then
  // counting-sort the rows into that order: prefix offsets + scatter.
  const size_t m = coords.size();
  std::vector<uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return coords[a] < coords[b];
  });
  std::vector<uint32_t> sorted_pos(m);
  for (size_t s = 0; s < m; ++s) sorted_pos[order[s]] = static_cast<uint32_t>(s);

  cell_keys_.resize(m * d);
  cell_offsets_.assign(m + 1, 0);
  for (size_t s = 0; s < m; ++s) {
    const GridCoord& c = coords[order[s]];
    std::copy(c.begin(), c.end(), cell_keys_.begin() + s * d);
    cell_offsets_[s + 1] = cell_offsets_[s] + counts[order[s]];
  }

  const size_t reachable = n - unreachable_rows_;
  matrix_.rows = reachable;
  matrix_.dims = d;
  matrix_.needed.resize(reachable * d);
  matrix_.agg_values.resize(reachable);
  std::vector<uint32_t> cursor(cell_offsets_.begin(), cell_offsets_.end() - 1);
  for (size_t row = 0; row < n; ++row) {
    if (row_cell[row] == kUnreachable) continue;
    const uint32_t p = cursor[sorted_pos[row_cell[row]]]++;
    for (size_t i = 0; i < d; ++i) {
      matrix_.mutable_dim(i)[p] = raw.dim(i)[row];
    }
    matrix_.agg_values[p] = raw.agg_values[row];
  }

  // Per-cell aggregate states: fold each contiguous payload range.
  const AggregateOps& ops = *task_->agg.ops;
  cell_states_.resize(m);
  for (size_t s = 0; s < m; ++s) {
    cell_states_[s] = ops.Init();
    FoldRange(ops, matrix_.agg_values.data() + cell_offsets_[s],
              cell_offsets_[s + 1] - cell_offsets_[s], &cell_states_[s]);
  }
  // Retained footprint only (the raw matrix and sort scratch are freed on
  // return): sorted matrix, CSR keys/offsets, per-cell states.
  ChargeBudget((matrix_.needed.size() + matrix_.agg_values.size()) *
                   sizeof(double) +
               cell_keys_.size() * sizeof(int32_t) +
               cell_offsets_.size() * sizeof(uint32_t) +
               cell_states_.size() * sizeof(AggregateOps::State));
  prepared_ = true;
  return Status::OK();
}

size_t CellSortedEvaluationLayer::LowerBoundCell(const int32_t* key) const {
  const size_t d = task_->d();
  size_t lo = 0;
  size_t hi = num_cells();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    const int32_t* cell = cell_keys_.data() + mid * d;
    if (std::lexicographical_compare(cell, cell + d, key, key + d)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t CellSortedEvaluationLayer::GallopLowerBound(size_t from,
                                                   const int32_t* key) const {
  const size_t d = task_->d();
  const size_t m = num_cells();
  auto less = [&](size_t s) {
    const int32_t* cell = cell_keys_.data() + s * d;
    return std::lexicographical_compare(cell, cell + d, key, key + d);
  };
  if (from >= m || !less(from)) return from;
  // Exponential probe: bracket the answer in (from + step/2, from + step].
  size_t step = 1;
  size_t lo = from;
  while (from + step < m && less(from + step)) {
    lo = from + step;
    step *= 2;
  }
  size_t hi = std::min(from + step, m);
  ++lo;  // cells at or before `lo` all compare less
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (less(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Result<std::vector<AggregateOps::State>>
CellSortedEvaluationLayer::EvaluateCells(const GridCoord* coords, size_t count,
                                         double step) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  // A foreign step means the requested cells are not this layout's cells;
  // the generic path decomposes them into box queries as usual. The
  // failpoint injects the same (bit-identical) fallback on native batches.
  if (step != step_ || ACQ_FAILPOINT("index.batch_eval")) {
    return EvaluationLayer::EvaluateCells(coords, count, step);
  }
  const size_t d = task_->d();
  const AggregateOps& ops = *task_->agg.ops;
  std::vector<AggregateOps::State> states(count);
  if (count == 0) return states;
  for (size_t q = 0; q < count; ++q) {
    if (coords[q].size() != d) {
      return Status::InvalidArgument(
          StringFormat("cell coordinate has %zu levels, task has %zu "
                       "dimensions", coords[q].size(), d));
    }
  }
  stats_.queries.fetch_add(count, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(count, std::memory_order_relaxed);

  // Answer the whole batch in merged sweeps: visit the requests in sorted
  // key order, advancing a cursor over the sorted CSR keys with galloping
  // lower bounds (never rewinding, never restarting the binary search from
  // the top). Large batches split into deterministic contiguous chunks of
  // the sorted order across the pool — each chunk sweeps independently with
  // its own cursor, and every answer is a copy of the per-cell fold from
  // Prepare(), so the result is bit-identical to a single sweep.
  std::vector<uint32_t> req(count);
  std::iota(req.begin(), req.end(), 0u);
  // BFS layers arrive in descending key order (canonical-predecessor
  // enumeration), so detect the two already-sorted cases in O(count * d)
  // before paying for a comparison sort.
  bool ascending = true;
  bool descending = true;
  for (size_t q = 1; q < count && (ascending || descending); ++q) {
    if (coords[q - 1] < coords[q]) {
      descending = false;
    } else if (coords[q] < coords[q - 1]) {
      ascending = false;
    }
  }
  if (descending && !ascending) {
    std::reverse(req.begin(), req.end());
  } else if (!ascending) {
    std::sort(req.begin(), req.end(), [&](uint32_t a, uint32_t b) {
      return coords[a] < coords[b];
    });
  }
  const size_t m = num_cells();
  auto sweep = [&](size_t, size_t begin, size_t end) {
    if (begin >= end) return;
    // Seed this worker's cursor at its own slice of the key array with one
    // binary search, instead of galloping across the whole prefix that
    // earlier chunks own.
    size_t cursor =
        begin == 0 ? 0 : LowerBoundCell(coords[req[begin]].data());
    const int32_t* prev_key = nullptr;
    uint32_t prev_qi = 0;
    for (size_t r = begin; r < end; ++r) {
      const uint32_t qi = req[r];
      const int32_t* key = coords[qi].data();
      if (prev_key != nullptr && std::equal(key, key + d, prev_key)) {
        // Duplicate request: reuse the previous answer.
        states[qi] = states[prev_qi];
      } else {
        cursor = GallopLowerBound(cursor, key);
        if (cursor < m &&
            std::equal(key, key + d, cell_keys_.data() + cursor * d)) {
          states[qi] = cell_states_[cursor];
        } else {
          states[qi] = ops.Init();
        }
        prev_key = key;
      }
      prev_qi = qi;
    }
  };
  // A single-worker pool would still split the sweep in two and pay the
  // queue hand-off for no concurrency; one full sweep is strictly cheaper.
  if (pool_->num_threads() > 1) {
    pool_->ParallelFor(count, /*min_chunk=*/128, sweep);
  } else {
    sweep(0, 0, count);
  }
  return states;
}

bool CellSortedEvaluationLayer::IsCellAligned(
    const std::vector<PScoreRange>& box, GridCoord* coord) const {
  std::vector<int64_t> lo, hi;
  if (!AlignedLevelBounds(box, step_, &lo, &hi)) return false;
  coord->resize(box.size());
  for (size_t i = 0; i < box.size(); ++i) {
    if (lo[i] != hi[i]) return false;
    (*coord)[i] = static_cast<int32_t>(hi[i]);
  }
  return true;
}

Result<AggregateOps::State> CellSortedEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const AggregateOps& ops = *task_->agg.ops;
  const size_t d = task_->d();
  const size_t m = num_cells();

  std::vector<int64_t> lo_level, hi_level;
  if (AlignedLevelBounds(box, step_, &lo_level, &hi_level)) {
    // Clamp to int32 key space (coordinates were stored as int32).
    std::vector<int32_t> lo32(d), hi32(d);
    bool single_cell = true;
    for (size_t i = 0; i < d; ++i) {
      lo32[i] = static_cast<int32_t>(
          std::min<int64_t>(lo_level[i], INT32_MAX));
      hi32[i] = static_cast<int32_t>(
          std::min<int64_t>(hi_level[i], INT32_MAX));
      single_cell &= lo_level[i] == hi_level[i];
    }
    if (single_cell) {
      // One binary search; the payload fold happened once in Prepare().
      stats_.tuples_scanned.fetch_add(1, std::memory_order_relaxed);
      const size_t s = LowerBoundCell(lo32.data());
      if (s < m &&
          std::equal(lo32.begin(), lo32.end(), cell_keys_.data() + s * d)) {
        return cell_states_[s];
      }
      return ops.Init();
    }
    // Aligned box: only the sorted key range whose leading coordinate lies
    // in [lo, hi] can intersect the box; walk it, filtering the remaining
    // dimensions and merging per-cell states in key order (deterministic).
    std::vector<int32_t> first(d, 0);
    first[0] = lo32[0];  // smallest possible key in range
    AggregateOps::State state = ops.Init();
    uint64_t cells_walked = 0;
    for (size_t s = LowerBoundCell(first.data()); s < m; ++s) {
      const int32_t* cell = cell_keys_.data() + s * d;
      if (cell[0] > hi32[0]) break;
      ++cells_walked;
      bool inside = cell[0] >= lo32[0];
      for (size_t i = 1; inside && i < d; ++i) {
        inside = cell[i] >= lo32[i] && cell[i] <= hi32[i];
      }
      if (inside) ops.Merge(&state, cell_states_[s]);
    }
    stats_.tuples_scanned.fetch_add(cells_walked, std::memory_order_relaxed);
    return state;
  }

  // Off-grid box: branchless kernel scan over the permuted matrix, chunked
  // across the persistent pool when large enough to pay off.
  stats_.tuples_scanned.fetch_add(matrix_.rows, std::memory_order_relaxed);
  return ScanBoxOverMatrix(ops, matrix_, box, pool_);
}

}  // namespace acquire
