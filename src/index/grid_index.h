#ifndef ACQUIRE_INDEX_GRID_INDEX_H_
#define ACQUIRE_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/evaluation.h"

namespace acquire {

/// Section 7.4's bitmap-like multi-dimensional grid index, upgraded from
/// presence bits to per-cell aggregate states: each populated cell of the
/// refined-space grid stores the OSP aggregate state of its tuples, so
///  * empty cell queries are answered without touching the data
///    (absent key == unset bit), and
///  * populated cell queries are answered in O(1).
/// Boxes that are not aligned to the `step` grid (e.g. repartition probes)
/// fall back to a scan over the retained needed-PScore matrix.
class GridIndexEvaluationLayer final : public EvaluationLayer {
 public:
  GridIndexEvaluationLayer(const AcqTask* task, double step);

  /// Builds the sparse cell -> state map in one pass over the relation.
  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  /// Native batch path for the Explore phase: instead of fanning out one
  /// EvaluateBox per cell (each paying box construction, argument checks
  /// and the cell-alignment decode), the requested coordinates are sorted
  /// and the cell map is probed directly in key order — duplicate requests
  /// collapse to one probe, runs of nearby keys probe warm buckets, and
  /// large batches split into deterministic contiguous chunks of the
  /// sorted order across the pool. Results are in input order and
  /// bit-identical to per-cell EvaluateBox (every answer is a copy of the
  /// per-cell state from Prepare, or the empty state). Falls back to the
  /// generic path when `step` differs from the index step.
  Result<std::vector<AggregateOps::State>> EvaluateCells(
      const GridCoord* coords, size_t count, double step) override;

  /// The cell map and the retained matrix are read-only once built.
  bool SupportsConcurrentEvaluate() const override { return prepared_; }

  double step() const { return step_; }
  size_t num_populated_cells() const { return cells_.size(); }

  /// True when every range in `box` is exactly one grid cell at this
  /// index's step (exposed for tests).
  bool IsCellAligned(const std::vector<PScoreRange>& box,
                     GridCoord* coord) const;

 private:
  double step_;
  bool prepared_ = false;
  std::unordered_map<GridCoord, AggregateOps::State, GridCoordHash> cells_;
  NeededMatrix matrix_;  // retained for the off-grid scan fallback
};

}  // namespace acquire

#endif  // ACQUIRE_INDEX_GRID_INDEX_H_
