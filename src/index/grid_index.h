#ifndef ACQUIRE_INDEX_GRID_INDEX_H_
#define ACQUIRE_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/evaluation.h"
#include "exec/thread_pool.h"

namespace acquire {

/// Section 7.4's bitmap-like multi-dimensional grid index, upgraded from
/// presence bits to per-cell aggregate states: each populated cell of the
/// refined-space grid stores the OSP aggregate state of its tuples, so
///  * empty cell queries are answered without touching the data
///    (absent key == unset bit), and
///  * populated cell queries are answered in O(1).
/// Boxes that are not aligned to the `step` grid (e.g. repartition probes)
/// fall back to a scan over the retained needed-PScore matrix.
///
/// The needed-PScore matrix is built across the pool; the cell-map fold
/// itself stays sequential on purpose — the map's iteration order (which the
/// aligned-box merge walks) is a function of the exact insertion sequence,
/// and the sequential row order is the one the incremental append path can
/// continue bit-identically.
///
/// Incremental maintenance: rows appended to the task's relation after
/// Prepare() are discovered lazily at the next evaluate call. Reachable rows
/// are folded straight into the cell map — the same try_emplace/Add
/// sequence, in the same row order, that a full rebuild would run, so the
/// map's contents AND iteration order match a rebuild exactly. The rows'
/// matrix columns are staged flat and either folded after the matrix scan on
/// off-grid boxes (same Add order as a rebuilt scan) or restrided into the
/// retained matrix once the staging buffer reaches the merge threshold.
class GridIndexEvaluationLayer final : public EvaluationLayer {
 public:
  /// `pool` = nullptr uses the process-wide shared pool (matrix build only).
  GridIndexEvaluationLayer(const AcqTask* task, double step,
                           ThreadPool* pool = nullptr);

  /// Builds the sparse cell -> state map in one pass over the relation.
  Status Prepare() override;

  Result<AggregateOps::State> EvaluateBox(
      const std::vector<PScoreRange>& box) override;

  /// Native batch path for the Explore phase: instead of fanning out one
  /// EvaluateBox per cell (each paying box construction, argument checks
  /// and the cell-alignment decode), the requested coordinates are sorted
  /// and the cell map is probed directly in key order — duplicate requests
  /// collapse to one probe, runs of nearby keys probe warm buckets, and
  /// large batches split into deterministic contiguous chunks of the
  /// sorted order across the pool. Results are in input order and
  /// bit-identical to per-cell EvaluateBox (every answer is a copy of the
  /// per-cell state from Prepare, or the empty state). Falls back to the
  /// generic path when `step` differs from the index step.
  Result<std::vector<AggregateOps::State>> EvaluateCells(
      const GridCoord* coords, size_t count, double step) override;

  /// The cell map and the retained matrix are read-only once built — and
  /// once any appended relation rows have been synced in (staging mutates
  /// the map, so fan-out is withheld until a serial call has consumed them;
  /// already-staged rows are read-only to every query path).
  bool SupportsConcurrentEvaluate() const override {
    return prepared_ && task_->relation->num_rows() == consumed_rows_;
  }

  double step() const { return step_; }
  size_t num_populated_cells() const { return cells_.size(); }

  /// Relation rows already reflected in the index (matrix + cell map +
  /// staged delta columns).
  size_t consumed_rows() const { return consumed_rows_; }
  /// Appended rows staged flat but not yet restrided into the matrix.
  size_t staged_delta_rows() const { return delta_agg_.size(); }
  /// Staged-row count that triggers the restride into the retained matrix;
  /// 0 restores the default max(4096, matrix_rows / 8).
  void set_delta_merge_threshold(size_t threshold) {
    delta_merge_threshold_ = threshold;
  }
  size_t delta_merge_threshold() const;
  /// Stages any unconsumed relation rows, then restrides every staged row
  /// into the retained matrix now (cell map is already current). The
  /// `index.delta_merge` failpoint downgrades this to a full rebuild, which
  /// produces the same map and matrix.
  Status MergeDeltas();

  /// True when every range in `box` is exactly one grid cell at this
  /// index's step (exposed for tests).
  bool IsCellAligned(const std::vector<PScoreRange>& box,
                     GridCoord* coord) const;

 private:
  /// Folds relation rows [consumed_rows_, num_rows()) into the cell map and
  /// the flat staging columns; restrides at the merge threshold.
  Status SyncDeltas();
  Status AbsorbStagedDeltas();

  double step_;
  ThreadPool* pool_;
  bool prepared_ = false;
  size_t consumed_rows_ = 0;
  size_t delta_merge_threshold_ = 0;  // 0 = auto
  std::unordered_map<GridCoord, AggregateOps::State, GridCoordHash> cells_;
  NeededMatrix matrix_;  // retained for the off-grid scan fallback

  // Staged appended rows in append order (all rows, reachable or not — the
  // off-grid scan visits unreachable rows too, they just never match).
  std::vector<double> delta_needed_;  // k * d, row-major
  std::vector<double> delta_agg_;     // k
};

}  // namespace acquire

#endif  // ACQUIRE_INDEX_GRID_INDEX_H_
