#include "index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "exec/eval_kernel.h"
#include "exec/thread_pool.h"

namespace acquire {

GridIndexEvaluationLayer::GridIndexEvaluationLayer(const AcqTask* task,
                                                   double step)
    : EvaluationLayer(task), step_(step) {}

Status GridIndexEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  if (step_ <= 0.0) {
    return Status::InvalidArgument("grid index requires a positive step");
  }
  ACQ_RETURN_IF_ERROR(BuildNeededMatrix(*task_, /*pool=*/nullptr, &matrix_));
  const size_t n = matrix_.rows;
  const size_t d = matrix_.dims;
  const AggregateOps& ops = *task_->agg.ops;
  GridCoord coord(d);
  for (size_t row = 0; row < n; ++row) {
    bool reachable = true;
    for (size_t i = 0; i < d; ++i) {
      int64_t level = PScoreLevel(matrix_.dim(i)[row], step_);
      if (level < 0) {
        reachable = false;
        break;
      }
      coord[i] = static_cast<int32_t>(level);
    }
    if (!reachable) continue;
    auto [it, inserted] = cells_.try_emplace(coord, ops.Init());
    ops.Add(&it->second, matrix_.agg_values[row]);
  }
  // The matrix is exact; the hash map's footprint is estimated as key
  // storage plus per-node overhead.
  ChargeBudget((matrix_.needed.size() + matrix_.agg_values.size()) *
                   sizeof(double) +
               cells_.size() *
                   (d * sizeof(int32_t) + sizeof(AggregateOps::State) + 64));
  prepared_ = true;
  return Status::OK();
}

bool GridIndexEvaluationLayer::IsCellAligned(
    const std::vector<PScoreRange>& box, GridCoord* coord) const {
  std::vector<int64_t> lo, hi;
  if (!AlignedLevelBounds(box, step_, &lo, &hi)) return false;
  coord->resize(box.size());
  for (size_t i = 0; i < box.size(); ++i) {
    // A cell is a box whose level range is a single level; the level-0 cell
    // additionally requires the "from 0 inclusive" form (lo < 0), which
    // AlignedLevelBounds already encodes as lo == hi == 0.
    if (lo[i] != hi[i]) return false;
    (*coord)[i] = static_cast<int32_t>(hi[i]);
  }
  return true;
}

Result<AggregateOps::State> GridIndexEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const AggregateOps& ops = *task_->agg.ops;

  // Fast path 1: a single grid cell -- one hash probe.
  GridCoord coord;
  if (IsCellAligned(box, &coord)) {
    stats_.tuples_scanned.fetch_add(1, std::memory_order_relaxed);
    auto it = cells_.find(coord);
    return it == cells_.end() ? ops.Init() : it->second;
  }

  // Fast path 2: a grid-aligned box -- merge the covered cells.
  std::vector<int64_t> lo_level, hi_level;
  if (AlignedLevelBounds(box, step_, &lo_level, &hi_level)) {
    AggregateOps::State state = ops.Init();
    stats_.tuples_scanned.fetch_add(cells_.size(), std::memory_order_relaxed);
    for (const auto& [cell, cell_state] : cells_) {
      bool inside = true;
      for (size_t i = 0; i < cell.size(); ++i) {
        if (cell[i] < lo_level[i] || cell[i] > hi_level[i]) {
          inside = false;
          break;
        }
      }
      if (inside) ops.Merge(&state, cell_state);
    }
    return state;
  }

  // Off-grid box (e.g. repartition probes): scan the retained matrix with
  // the shared kernel.
  stats_.tuples_scanned.fetch_add(matrix_.rows, std::memory_order_relaxed);
  return ScanBoxOverMatrix(ops, matrix_, box);
}

Result<std::vector<AggregateOps::State>> GridIndexEvaluationLayer::EvaluateCells(
    const GridCoord* coords, size_t count, double step) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  // A foreign step means the requested cells are not this index's cells;
  // the generic path decomposes them into box queries as usual. The
  // failpoint injects the same (bit-identical) fallback on native batches.
  if (step != step_ || ACQ_FAILPOINT("index.batch_eval")) {
    return EvaluationLayer::EvaluateCells(coords, count, step);
  }
  const size_t d = task_->d();
  const AggregateOps& ops = *task_->agg.ops;
  std::vector<AggregateOps::State> states(count);
  if (count == 0) return states;
  for (size_t q = 0; q < count; ++q) {
    if (coords[q].size() != d) {
      return Status::InvalidArgument(
          StringFormat("cell coordinate has %zu levels, task has %zu "
                       "dimensions", coords[q].size(), d));
    }
  }
  stats_.queries.fetch_add(count, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(count, std::memory_order_relaxed);

  // Probe in sorted key order: adjacent layer coordinates differ in one
  // trailing level, so consecutive probes of the same coordinate collapse
  // to one lookup and nearby keys revisit warm buckets. The expand layers
  // arrive already sorted (BFS emits descending keys), so the sort is a
  // reverse or a no-op in the common case.
  std::vector<uint32_t> req(count);
  std::iota(req.begin(), req.end(), 0u);
  bool ascending = true;
  bool descending = true;
  for (size_t q = 1; q < count && (ascending || descending); ++q) {
    if (coords[q - 1] < coords[q]) {
      descending = false;
    } else if (coords[q] < coords[q - 1]) {
      ascending = false;
    }
  }
  if (descending && !ascending) {
    std::reverse(req.begin(), req.end());
  } else if (!ascending) {
    std::stable_sort(req.begin(), req.end(), [&](uint32_t a, uint32_t b) {
      return coords[a] < coords[b];
    });
  }

  // Each chunk of the sorted order probes independently; a duplicate pair
  // straddling a chunk boundary just probes twice, which only costs time.
  auto probe_range = [&](size_t begin, size_t end) {
    const AggregateOps::State* hit = nullptr;
    const GridCoord* prev = nullptr;
    for (size_t i = begin; i < end; ++i) {
      const GridCoord& c = coords[req[i]];
      if (prev == nullptr || c != *prev) {
        auto it = cells_.find(c);
        hit = it == cells_.end() ? nullptr : &it->second;
        prev = &c;
      }
      states[req[i]] = hit != nullptr ? *hit : ops.Init();
    }
  };
  constexpr size_t kParallelCutoff = 4096;
  if (count >= kParallelCutoff) {
    ThreadPool::Shared().ParallelFor(
        count, /*min_chunk=*/1024,
        [&](size_t, size_t begin, size_t end) { probe_range(begin, end); });
  } else {
    probe_range(0, count);
  }
  return states;
}

}  // namespace acquire
