#include "index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/eval_kernel.h"
#include "exec/thread_pool.h"

namespace acquire {

GridIndexEvaluationLayer::GridIndexEvaluationLayer(const AcqTask* task,
                                                   double step,
                                                   ThreadPool* pool)
    : EvaluationLayer(task),
      step_(step),
      pool_(pool != nullptr ? pool : &ThreadPool::Shared()) {}

Status GridIndexEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  if (step_ <= 0.0) {
    return Status::InvalidArgument("grid index requires a positive step");
  }
  Stopwatch prepare_sw;
  const size_t relation_rows = task_->relation->num_rows();
  ACQ_RETURN_IF_ERROR(BuildNeededMatrix(*task_, pool_, &matrix_));
  const size_t n = matrix_.rows;
  const size_t d = matrix_.dims;
  const AggregateOps& ops = *task_->agg.ops;
  // Sequential on purpose: the map's iteration order (walked by the
  // aligned-box merge) depends on the exact insertion sequence, and the
  // row-order sequence is the one SyncDeltas can continue bit-identically.
  GridCoord coord(d);
  for (size_t row = 0; row < n; ++row) {
    bool reachable = true;
    for (size_t i = 0; i < d; ++i) {
      int64_t level = PScoreLevel(matrix_.dim(i)[row], step_);
      if (level < 0) {
        reachable = false;
        break;
      }
      coord[i] = static_cast<int32_t>(level);
    }
    if (!reachable) continue;
    auto [it, inserted] = cells_.try_emplace(coord, ops.Init());
    ops.Add(&it->second, matrix_.agg_values[row]);
  }
  consumed_rows_ = relation_rows;
  // The matrix is exact; the hash map's footprint is estimated as key
  // storage plus per-node overhead.
  ChargeBudget((matrix_.needed.size() + matrix_.agg_values.size()) *
                   sizeof(double) +
               cells_.size() *
                   (d * sizeof(int32_t) + sizeof(AggregateOps::State) + 64));
  prepare_ms_ += prepare_sw.ElapsedMillis();
  prepared_ = true;
  return Status::OK();
}

size_t GridIndexEvaluationLayer::delta_merge_threshold() const {
  if (delta_merge_threshold_ != 0) return delta_merge_threshold_;
  return std::max<size_t>(4096, matrix_.rows / 8);
}

Status GridIndexEvaluationLayer::SyncDeltas() {
  const size_t relation_rows = task_->relation->num_rows();
  if (relation_rows > consumed_rows_) {
    const size_t d = task_->d();
    const AggregateOps& ops = *task_->agg.ops;
    NeededMatrix fresh;
    ACQ_RETURN_IF_ERROR(BuildNeededMatrixRows(*task_, consumed_rows_,
                                              relation_rows, /*pool=*/nullptr,
                                              &fresh));
    GridCoord coord(d);
    for (size_t row = 0; row < fresh.rows; ++row) {
      for (size_t i = 0; i < d; ++i) {
        delta_needed_.push_back(fresh.dim(i)[row]);
      }
      delta_agg_.push_back(fresh.agg_values[row]);
      bool reachable = true;
      for (size_t i = 0; i < d; ++i) {
        int64_t level = PScoreLevel(fresh.dim(i)[row], step_);
        if (level < 0) {
          reachable = false;
          break;
        }
        coord[i] = static_cast<int32_t>(level);
      }
      if (!reachable) continue;
      // The exact try_emplace/Add continuation a full rebuild would run
      // next, so map contents and iteration order stay rebuild-identical.
      auto [it, inserted] = cells_.try_emplace(coord, ops.Init());
      ops.Add(&it->second, fresh.agg_values[row]);
    }
    consumed_rows_ = relation_rows;
    delta_rows_ = delta_agg_.size();
    ChargeBudget(fresh.rows * (d + 1) * sizeof(double));
  }
  if (staged_delta_rows() >= delta_merge_threshold()) {
    return AbsorbStagedDeltas();
  }
  return Status::OK();
}

Status GridIndexEvaluationLayer::MergeDeltas() {
  if (!prepared_) return Prepare();
  const size_t relation_rows = task_->relation->num_rows();
  if (relation_rows > consumed_rows_) {
    // Route through SyncDeltas for the staging part, but absorb regardless
    // of the threshold afterwards.
    size_t saved = delta_merge_threshold_;
    delta_merge_threshold_ = SIZE_MAX;  // stage only
    Status staged = SyncDeltas();
    delta_merge_threshold_ = saved;
    ACQ_RETURN_IF_ERROR(staged);
  }
  return AbsorbStagedDeltas();
}

Status GridIndexEvaluationLayer::AbsorbStagedDeltas() {
  const size_t k = delta_agg_.size();
  if (k == 0) return Status::OK();
  ++delta_merges_;
  if (ACQ_FAILPOINT("index.delta_merge")) {
    // Result-preserving fault: full rebuild. The rebuild replays the exact
    // insertion sequence the incremental path continued, so the map (and
    // its iteration order) and the matrix come back identical.
    prepared_ = false;
    consumed_rows_ = 0;
    cells_.clear();
    matrix_ = NeededMatrix{};
    delta_needed_.clear();
    delta_agg_.clear();
    delta_rows_ = 0;
    return Prepare();
  }
  Stopwatch merge_sw;
  const size_t d = matrix_.dims;
  const size_t old_rows = matrix_.rows;
  const size_t new_rows = old_rows + k;
  // Restride the dimension-major matrix: each column grows by the staged
  // rows' values (append order == relation order, matching a rebuild).
  NeededMatrix merged;
  merged.rows = new_rows;
  merged.dims = d;
  merged.needed.resize(new_rows * d);
  merged.agg_values.resize(new_rows);
  for (size_t i = 0; i < d; ++i) {
    std::memcpy(merged.mutable_dim(i), matrix_.dim(i),
                old_rows * sizeof(double));
    double* col = merged.mutable_dim(i) + old_rows;
    for (size_t r = 0; r < k; ++r) col[r] = delta_needed_[r * d + i];
  }
  std::memcpy(merged.agg_values.data(), matrix_.agg_values.data(),
              old_rows * sizeof(double));
  std::memcpy(merged.agg_values.data() + old_rows, delta_agg_.data(),
              k * sizeof(double));
  matrix_ = std::move(merged);
  delta_needed_.clear();
  delta_agg_.clear();
  delta_rows_ = 0;
  prepare_ms_ += merge_sw.ElapsedMillis();
  return Status::OK();
}

bool GridIndexEvaluationLayer::IsCellAligned(
    const std::vector<PScoreRange>& box, GridCoord* coord) const {
  std::vector<int64_t> lo, hi;
  if (!AlignedLevelBounds(box, step_, &lo, &hi)) return false;
  coord->resize(box.size());
  for (size_t i = 0; i < box.size(); ++i) {
    // A cell is a box whose level range is a single level; the level-0 cell
    // additionally requires the "from 0 inclusive" form (lo < 0), which
    // AlignedLevelBounds already encodes as lo == hi == 0.
    if (lo[i] != hi[i]) return false;
    (*coord)[i] = static_cast<int32_t>(hi[i]);
  }
  return true;
}

Result<AggregateOps::State> GridIndexEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(SyncDeltas());
  ACQ_RETURN_IF_ERROR(CheckBox(box));
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  const AggregateOps& ops = *task_->agg.ops;

  // Fast path 1: a single grid cell -- one hash probe (the map already
  // reflects every appended row).
  GridCoord coord;
  if (IsCellAligned(box, &coord)) {
    stats_.tuples_scanned.fetch_add(1, std::memory_order_relaxed);
    auto it = cells_.find(coord);
    return it == cells_.end() ? ops.Init() : it->second;
  }

  // Fast path 2: a grid-aligned box -- merge the covered cells.
  std::vector<int64_t> lo_level, hi_level;
  if (AlignedLevelBounds(box, step_, &lo_level, &hi_level)) {
    AggregateOps::State state = ops.Init();
    stats_.tuples_scanned.fetch_add(cells_.size(), std::memory_order_relaxed);
    for (const auto& [cell, cell_state] : cells_) {
      bool inside = true;
      for (size_t i = 0; i < cell.size(); ++i) {
        if (cell[i] < lo_level[i] || cell[i] > hi_level[i]) {
          inside = false;
          break;
        }
      }
      if (inside) ops.Merge(&state, cell_state);
    }
    return state;
  }

  // Off-grid box (e.g. repartition probes): scan the retained matrix with
  // the shared kernel, then continue the fold with the staged rows in
  // append order — the same Add sequence a scan over the rebuilt (merged)
  // matrix would run, since this scan is sequential.
  const size_t k = delta_agg_.size();
  stats_.tuples_scanned.fetch_add(matrix_.rows + k,
                                  std::memory_order_relaxed);
  std::vector<uint8_t> scratch(matrix_.rows);
  AggregateOps::State state =
      ScanBoxRange(ops, matrix_, box, 0, matrix_.rows, scratch.data());
  const size_t d = matrix_.dims;
  for (size_t r = 0; r < k; ++r) {
    bool admitted = true;
    for (size_t i = 0; i < d; ++i) {
      if (!box[i].Admits(delta_needed_[r * d + i])) {
        admitted = false;
        break;
      }
    }
    if (admitted) ops.Add(&state, delta_agg_[r]);
  }
  return state;
}

Result<std::vector<AggregateOps::State>> GridIndexEvaluationLayer::EvaluateCells(
    const GridCoord* coords, size_t count, double step) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  ACQ_RETURN_IF_ERROR(SyncDeltas());
  // A foreign step means the requested cells are not this index's cells;
  // the generic path decomposes them into box queries as usual. The
  // failpoint injects the same (bit-identical) fallback on native batches.
  if (step != step_ || ACQ_FAILPOINT("index.batch_eval")) {
    return EvaluationLayer::EvaluateCells(coords, count, step);
  }
  const size_t d = task_->d();
  const AggregateOps& ops = *task_->agg.ops;
  std::vector<AggregateOps::State> states(count);
  if (count == 0) return states;
  for (size_t q = 0; q < count; ++q) {
    if (coords[q].size() != d) {
      return Status::InvalidArgument(
          StringFormat("cell coordinate has %zu levels, task has %zu "
                       "dimensions", coords[q].size(), d));
    }
  }
  stats_.queries.fetch_add(count, std::memory_order_relaxed);
  stats_.tuples_scanned.fetch_add(count, std::memory_order_relaxed);

  // Probe in sorted key order: adjacent layer coordinates differ in one
  // trailing level, so consecutive probes of the same coordinate collapse
  // to one lookup and nearby keys revisit warm buckets. The expand layers
  // arrive already sorted (BFS emits descending keys), so the sort is a
  // reverse or a no-op in the common case.
  std::vector<uint32_t> req(count);
  std::iota(req.begin(), req.end(), 0u);
  bool ascending = true;
  bool descending = true;
  for (size_t q = 1; q < count && (ascending || descending); ++q) {
    if (coords[q - 1] < coords[q]) {
      descending = false;
    } else if (coords[q] < coords[q - 1]) {
      ascending = false;
    }
  }
  if (descending && !ascending) {
    std::reverse(req.begin(), req.end());
  } else if (!ascending) {
    std::stable_sort(req.begin(), req.end(), [&](uint32_t a, uint32_t b) {
      return coords[a] < coords[b];
    });
  }

  // Each chunk of the sorted order probes independently; a duplicate pair
  // straddling a chunk boundary just probes twice, which only costs time.
  auto probe_range = [&](size_t begin, size_t end) {
    const AggregateOps::State* hit = nullptr;
    const GridCoord* prev = nullptr;
    for (size_t i = begin; i < end; ++i) {
      const GridCoord& c = coords[req[i]];
      if (prev == nullptr || c != *prev) {
        auto it = cells_.find(c);
        hit = it == cells_.end() ? nullptr : &it->second;
        prev = &c;
      }
      states[req[i]] = hit != nullptr ? *hit : ops.Init();
    }
  };
  constexpr size_t kParallelCutoff = 4096;
  if (count >= kParallelCutoff) {
    ThreadPool::Shared().ParallelFor(
        count, /*min_chunk=*/1024,
        [&](size_t, size_t begin, size_t end) { probe_range(begin, end); });
  } else {
    probe_range(0, count);
  }
  return states;
}

}  // namespace acquire
