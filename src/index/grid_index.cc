#include "index/grid_index.h"

#include <cmath>

#include "common/string_util.h"

namespace acquire {

namespace {

constexpr double kAlignEps = 1e-9;

bool NearlyEqual(double a, double b) {
  return std::fabs(a - b) <= kAlignEps * std::max({1.0, std::fabs(a), std::fabs(b)});
}

// If `v` is (approximately) a non-negative integer multiple of `step`,
// returns that multiple; otherwise -1.
int64_t AlignedMultiple(double v, double step) {
  if (v < -kAlignEps) return -1;
  double q = v / step;
  int64_t u = static_cast<int64_t>(std::llround(q));
  if (u < 0) return -1;
  return NearlyEqual(static_cast<double>(u) * step, v) ? u : -1;
}

}  // namespace

GridIndexEvaluationLayer::GridIndexEvaluationLayer(const AcqTask* task,
                                                   double step)
    : EvaluationLayer(task), step_(step) {}

Status GridIndexEvaluationLayer::Prepare() {
  if (prepared_) return Status::OK();
  if (step_ <= 0.0) {
    return Status::InvalidArgument("grid index requires a positive step");
  }
  const size_t n = task_->relation->num_rows();
  const size_t d = task_->d();
  needed_.resize(n * d);
  agg_values_.resize(n);
  const AggregateOps& ops = *task_->agg.ops;
  std::vector<double> row_needed;
  GridCoord coord(d);
  for (size_t row = 0; row < n; ++row) {
    ComputeNeeded(*task_, row, &row_needed);
    std::copy(row_needed.begin(), row_needed.end(),
              needed_.begin() + static_cast<ptrdiff_t>(row * d));
    agg_values_[row] = task_->AggValue(row);
    bool reachable = true;
    for (size_t i = 0; i < d; ++i) {
      int64_t level = PScoreLevel(row_needed[i], step_);
      if (level < 0) {
        reachable = false;
        break;
      }
      coord[i] = static_cast<int32_t>(level);
    }
    if (!reachable) continue;
    auto [it, inserted] = cells_.try_emplace(coord, ops.Init());
    ops.Add(&it->second, agg_values_[row]);
  }
  prepared_ = true;
  return Status::OK();
}

bool GridIndexEvaluationLayer::IsCellAligned(
    const std::vector<PScoreRange>& box, GridCoord* coord) const {
  coord->resize(box.size());
  for (size_t i = 0; i < box.size(); ++i) {
    const PScoreRange& r = box[i];
    if (r.lo < 0.0) {
      if (!NearlyEqual(r.hi, 0.0)) return false;
      (*coord)[i] = 0;
      continue;
    }
    int64_t hi_mult = AlignedMultiple(r.hi, step_);
    int64_t lo_mult = AlignedMultiple(r.lo, step_);
    if (hi_mult < 1 || lo_mult != hi_mult - 1) return false;
    (*coord)[i] = static_cast<int32_t>(hi_mult);
  }
  return true;
}

Result<AggregateOps::State> GridIndexEvaluationLayer::EvaluateBox(
    const std::vector<PScoreRange>& box) {
  if (!prepared_) ACQ_RETURN_IF_ERROR(Prepare());
  if (box.size() != task_->d()) {
    return Status::InvalidArgument(
        StringFormat("box has %zu ranges, task has %zu dimensions",
                     box.size(), task_->d()));
  }
  ++stats_.queries;
  const AggregateOps& ops = *task_->agg.ops;

  // Fast path 1: a single grid cell -- one hash probe.
  GridCoord coord;
  if (IsCellAligned(box, &coord)) {
    ++stats_.tuples_scanned;
    auto it = cells_.find(coord);
    return it == cells_.end() ? ops.Init() : it->second;
  }

  // Fast path 2: a grid-aligned box -- merge the covered cells.
  std::vector<int64_t> lo_level(box.size());
  std::vector<int64_t> hi_level(box.size());
  bool aligned = true;
  for (size_t i = 0; i < box.size() && aligned; ++i) {
    int64_t hi = AlignedMultiple(box[i].hi, step_);
    if (hi < 0) {
      aligned = false;
      break;
    }
    hi_level[i] = hi;
    if (box[i].lo < 0.0) {
      lo_level[i] = 0;
    } else {
      int64_t lo = AlignedMultiple(box[i].lo, step_);
      if (lo < 0) {
        aligned = false;
        break;
      }
      lo_level[i] = lo + 1;
    }
  }
  if (aligned) {
    AggregateOps::State state = ops.Init();
    stats_.tuples_scanned += cells_.size();
    for (const auto& [cell, cell_state] : cells_) {
      bool inside = true;
      for (size_t i = 0; i < cell.size(); ++i) {
        if (cell[i] < lo_level[i] || cell[i] > hi_level[i]) {
          inside = false;
          break;
        }
      }
      if (inside) ops.Merge(&state, cell_state);
    }
    return state;
  }

  return ScanFallback(box);
}

Result<AggregateOps::State> GridIndexEvaluationLayer::ScanFallback(
    const std::vector<PScoreRange>& box) {
  const AggregateOps& ops = *task_->agg.ops;
  AggregateOps::State state = ops.Init();
  const size_t n = agg_values_.size();
  const size_t d = task_->d();
  stats_.tuples_scanned += n;
  for (size_t row = 0; row < n; ++row) {
    const double* needed = &needed_[row * d];
    bool admit = true;
    for (size_t i = 0; i < d; ++i) {
      if (!box[i].Admits(needed[i])) {
        admit = false;
        break;
      }
    }
    if (admit) ops.Add(&state, agg_values_[row]);
  }
  return state;
}

}  // namespace acquire
