#ifndef ACQUIRE_CORE_EXPAND_H_
#define ACQUIRE_CORE_EXPAND_H_

#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/refined_space.h"
#include "core/run_context.h"

namespace acquire {

/// The Expand phase (Section 4): produces grid queries in nondecreasing
/// refinement order. Implementations guarantee Theorem 2's property — every
/// query of score k is produced before any query of score > k — which the
/// driver uses to stop as soon as the layer containing the first hit is
/// exhausted.
class QueryGenerator {
 public:
  virtual ~QueryGenerator() = default;

  /// Produces the next grid query; false once the space is exhausted.
  virtual bool Next(GridCoord* out) = 0;

  /// Monotone nondecreasing score of the coordinate last returned by
  /// Next(): the BFS/shell layer index, or the exact QScore for the
  /// best-first generator.
  virtual double CurrentScore() const = 0;
};

/// Algorithm 1: breadth-first search over the refined-space grid graph.
/// Layers are sets of constant coordinate sum; for the (default) L1 norm a
/// layer is exactly an equi-QScore plane.
///
/// The frontier needs no visited set: every coordinate u with sum k + 1 has
/// exactly one canonical predecessor, u minus one on its last nonzero
/// dimension, so generating cur + e_i only for i >= last_nonzero(cur)
/// produces each coordinate exactly once (the per-axis caps preserve this —
/// the canonical predecessor of an in-cap coordinate is itself in cap).
/// That keeps expansion allocation-free per coordinate: layers live in two
/// flat d-strided int32 arenas (current and next) pre-sized from the
/// layer-cardinality estimate, and Next assigns into the caller's vector
/// (which reuses its capacity) instead of handing out a fresh one.
class BfsGenerator final : public QueryGenerator {
 public:
  /// `budget` (optional, not owned) meters the flat layer arenas — in high
  /// dimensions a single BFS layer can dwarf the aggregate store, so layer
  /// growth past the budget (or an injected "expand.layer_alloc" failpoint
  /// hit) latches budget exhaustion for the driver to observe.
  explicit BfsGenerator(const RefinedSpace* space,
                        MemoryBudget* budget = nullptr);

  bool Next(GridCoord* out) override;
  double CurrentScore() const override { return score_; }

 private:
  /// Charges layer-arena capacity growth since the last call.
  void ChargeGrowth();

  const RefinedSpace* space_;
  std::vector<int32_t> layer_;  // current layer, d-strided, generation order
  std::vector<int32_t> next_;   // successors of the layer_ coords visited
  size_t pos_ = 0;              // next unvisited coordinate index in layer_
  double score_ = 0.0;
  size_t total_cells_ = 0;      // saturated grid cardinality (reserve cap)
  MemoryBudget* budget_;        // not owned; nullptr = untracked
  size_t charged_bytes_ = 0;    // arena capacity bytes already charged
};

/// Algorithm 2: explicit enumeration of the L-shaped equi-L∞ shells
/// max_i(u_i) = k, in increasing k. Within a shell, coordinates are grouped
/// by the FIRST dimension pinned at k (dimensions before the pin stay below
/// k) and enumerated lexicographically; the groups themselves are emitted in
/// DESCENDING pin order (d-1 down to 0). That order makes every shell
/// topological for Eq. 17: a predecessor u - e_p of a group-p coordinate
/// either drops to shell k-1 or re-pins on a later dimension (an
/// earlier-emitted group), and a predecessor along a free dimension is
/// lexicographically earlier in the same group — so the Explore phase's
/// shell-drain cursors (Explorer::BeginShellDrain) always find predecessors
/// already stored, with no on-demand fills.
class ShellGenerator final : public QueryGenerator {
 public:
  explicit ShellGenerator(const RefinedSpace* space);

  bool Next(GridCoord* out) override;
  double CurrentScore() const override { return static_cast<double>(k_); }

 private:
  const RefinedSpace* space_;
  int32_t k_ = 0;        // current shell
  size_t pinned_ = 0;    // dimension fixed at k; d = before the first group
  GridCoord current_;    // odometer over the free dimensions
  bool shell0_done_ = false;
  bool odometer_live_ = false;
  int32_t max_shell_ = 0;
};

/// Best-first variant (an ablation, not in the paper): pops coordinates in
/// exact QScore order using a priority queue. For non-L1 norms this visits
/// strictly fewer queries than BFS before the first hit, at the cost of a
/// heap.
class BestFirstGenerator final : public QueryGenerator {
 public:
  /// `budget` (optional, not owned) meters the heap + visited set, which
  /// grow with the explored frontier like the BFS layer arenas do.
  explicit BestFirstGenerator(const RefinedSpace* space,
                              MemoryBudget* budget = nullptr);

  bool Next(GridCoord* out) override;
  double CurrentScore() const override { return score_; }

 private:
  struct Entry {
    double qscore;
    GridCoord coord;
    bool operator>(const Entry& other) const { return qscore > other.qscore; }
  };

  const RefinedSpace* space_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<GridCoord, GridCoordHash> seen_;
  double score_ = 0.0;
  MemoryBudget* budget_;      // not owned; nullptr = untracked
  size_t charged_coords_ = 0; // frontier coordinates already charged
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_EXPAND_H_
