#ifndef ACQUIRE_CORE_PROCESSOR_H_
#define ACQUIRE_CORE_PROCESSOR_H_

#include <memory>

#include "core/acquire.h"
#include "core/contract.h"

namespace acquire {

/// How ProcessAcq resolved an ACQ (Figure 2's control flow).
enum class AcqMode {
  kOriginalSatisfies,  // step 1: Aactual already within delta of Aexp
  kExpanded,           // undershoot: ACQUIRE expansion (Algorithm 4)
  kContracted,         // overshoot of an equality target: Section 7.2
};

const char* AcqModeToString(AcqMode mode);

struct AcqOutcome {
  AcqMode mode = AcqMode::kOriginalSatisfies;
  /// Aactual of the original (unrefined) query, measured in step 1.
  double original_aggregate = 0.0;
  /// Search outcome. For kOriginalSatisfies it holds the original query as
  /// the single (zero-refinement) answer.
  AcquireResult result;
  /// Set when mode == kContracted: the transformed task whose dimensions
  /// the result's coordinates refer to (needed e.g. to materialize).
  std::shared_ptr<AcqTask> contraction_task;
};

/// The system front door (Figure 2): estimate the original query's
/// aggregate value; if it already meets the constraint within
/// options.delta, return it; if it undershoots, run ACQUIRE expansion on
/// `layer`; if it overshoots an equality target, build the contraction
/// task (Section 7.2) and search contractions instead (over an internally
/// constructed cached layer, since `layer` wraps the expansion task).
Result<AcqOutcome> ProcessAcq(const AcqTask& task, EvaluationLayer* layer,
                              const AcquireOptions& options = {});

/// Backend-driven front door: constructs the evaluation layer the task
/// asks for (task.eval_backend via index/backend_factory.h, grid step
/// options.gamma / d so cell-aligned fast paths fire) and runs ProcessAcq
/// on it. This is what the SQL shell and drivers call.
Result<AcqOutcome> ProcessAcq(const AcqTask& task,
                              const AcquireOptions& options = {});

}  // namespace acquire

#endif  // ACQUIRE_CORE_PROCESSOR_H_
