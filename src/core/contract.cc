#include "core/contract.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <utility>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/refined_space.h"

namespace acquire {

ContractionDim::ContractionDim(std::string column, bool is_upper,
                               double bound, double width)
    : column_(std::move(column)),
      is_upper_(is_upper),
      bound_(bound),
      width_(width) {}

Status ContractionDim::Bind(const Schema& schema) {
  ACQ_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column_));
  if (!IsNumeric(schema.field(idx).type)) {
    return Status::TypeError("contraction predicate on non-numeric column: " +
                             column_);
  }
  col_index_ = static_cast<int>(idx);
  return Status::OK();
}

double ContractionDim::NeededPScore(const Table& table, size_t row) const {
  double v = table.column(static_cast<size_t>(col_index_)).GetDouble(row);
  // Tuples outside the original predicate are never admitted — contraction
  // only shrinks the query.
  double slack = (is_upper_ ? bound_ - v : v - bound_) / width_ * 100.0;
  if (slack < 0.0) return kUnreachable;
  slack = std::min(slack, 100.0);
  return 100.0 - slack;
}

double ContractionDim::ContractedBound(double pscore) const {
  double contraction = 100.0 - std::clamp(pscore, 0.0, 100.0);
  double delta = contraction / 100.0 * width_;
  return is_upper_ ? bound_ - delta : bound_ + delta;
}

std::string ContractionDim::DescribeAt(double pscore) const {
  return StringFormat("%s %s %g", column_.c_str(), is_upper_ ? "<=" : ">=",
                      ContractedBound(pscore));
}

std::string ContractionDim::label() const { return DescribeAt(100.0); }

Result<AcqTask> MakeContractionTask(const AcqTask& task) {
  AcqTask out;
  out.relation = task.relation;
  out.agg = task.agg;
  out.constraint = task.constraint;
  out.eval_backend = task.eval_backend;
  for (const RefinementDimPtr& dim : task.dims) {
    const auto* numeric = dynamic_cast<const NumericDim*>(dim.get());
    if (numeric == nullptr) {
      return Status::Unsupported(
          "contraction supports numeric select predicates only (join bands "
          "cannot shrink below equality; categorical drill-down is future "
          "work): " +
          dim->label());
    }
    auto contraction = std::make_unique<ContractionDim>(
        numeric->column(), numeric->is_upper(), numeric->bound(),
        numeric->width());
    contraction->set_weight(dim->weight());
    out.dims.push_back(std::move(contraction));
  }
  for (const RefinementDimPtr& dim : out.dims) {
    ACQ_RETURN_IF_ERROR(dim->Bind(out.relation->schema()));
  }
  return out;
}

namespace {

// Enumerates every coordinate with the given component sum under per-axis
// caps, in lexicographic order. Returns false when the visitor stops.
bool EnumerateLayer(const std::vector<int32_t>& caps,
                    const std::vector<int64_t>& suffix_caps, int64_t sum,
                    size_t dim, GridCoord* coord,
                    const std::function<bool(const GridCoord&)>& visit) {
  const size_t d = caps.size();
  if (dim == d) {
    return sum == 0 ? visit(*coord) : true;
  }
  int64_t lo = std::max<int64_t>(0, sum - suffix_caps[dim + 1]);
  int64_t hi = std::min<int64_t>(caps[dim], sum);
  for (int64_t v = lo; v <= hi; ++v) {
    (*coord)[dim] = static_cast<int32_t>(v);
    if (!EnumerateLayer(caps, suffix_caps, sum - v, dim + 1, coord, visit)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<AcquireResult> RunAcquireContract(const AcqTask& task,
                                         EvaluationLayer* layer,
                                         const AcquireOptions& options) {
  if (task.d() == 0) {
    return Status::InvalidArgument("task has no refinable predicates");
  }
  if (layer == nullptr || &layer->task() != &task) {
    return Status::InvalidArgument(
        "evaluation layer must wrap the same AcqTask");
  }
  if (task.constraint.op != ConstraintOp::kEq) {
    return Status::Unsupported(
        "contraction targets equality constraints that overshoot");
  }

  const ErrorFn error_fn =
      options.error_fn ? options.error_fn : ErrorFn(DefaultAggregateError);
  RefinedSpace space(&task, options.gamma, options.norm);

  // Budget resolution mirrors RunAcquire: attach before Prepare so the
  // contraction layer's materialization is charged against the run too.
  RunContext contract_local_ctx;
  RunContext* resolved_ctx = options.run_ctx;
  if (resolved_ctx == nullptr && options.memory_budget_bytes > 0) {
    resolved_ctx = &contract_local_ctx;
  }
  if (resolved_ctx != nullptr && options.memory_budget_bytes > 0 &&
      resolved_ctx->budget().limit() == 0) {
    resolved_ctx->budget().set_limit(options.memory_budget_bytes);
  }
  if (resolved_ctx != nullptr) {
    layer->set_memory_budget(&resolved_ctx->budget());
  }

  ACQ_RETURN_IF_ERROR(layer->Prepare());
  layer->ResetStats();
  Stopwatch sw;  // after Prepare: elapsed_ms times the search itself

  const size_t d = task.d();
  std::vector<int32_t> caps(d);
  std::vector<int64_t> suffix_caps(d + 1, 0);
  for (size_t i = 0; i < d; ++i) caps[i] = space.MaxLevel(i);
  for (size_t i = d; i-- > 0;) suffix_caps[i] = suffix_caps[i + 1] + caps[i];
  const int64_t max_sum = suffix_caps[0];

  AcquireResult result;
  double best_error = std::numeric_limits<double>::infinity();

  // Converts a p'-space refinement into user-facing contraction terms.
  auto make_offgrid_answer = [&](const std::vector<double>& pprime,
                                 double aggregate, double err) {
    RefinedQuery q;
    q.pscores.resize(d);
    for (size_t i = 0; i < d; ++i) {
      q.pscores[i] = task.dims[i]->MaxPScore() - pprime[i];  // contraction c
    }
    q.qscore = space.QScoreOfPScores(q.pscores);
    q.aggregate = aggregate;
    q.error = err;
    q.description = space.DescribePScores(pprime);
    return q;
  };
  auto make_answer = [&](const GridCoord& coord, double aggregate,
                         double err) {
    RefinedQuery q = make_offgrid_answer(space.CoordPScores(coord), aggregate,
                                         err);
    q.coord = coord;
    q.description = space.Describe(coord);
    return q;
  };

  // When the p'-grid jumps across the target — coordinate c contracts too
  // far while c + 1 (one step less contraction) does not contract enough —
  // bisect the in-between region, mirroring the expansion driver's
  // repartitioning (Section 6).
  auto repartition = [&](const GridCoord& coord)
      -> Result<std::optional<RefinedQuery>> {
    std::vector<double> lo = space.CoordPScores(coord);
    std::vector<double> hi(d);
    for (size_t i = 0; i < d; ++i) {
      hi[i] = std::min(lo[i] + space.step(), task.dims[i]->MaxPScore());
    }
    std::optional<RefinedQuery> found;
    std::vector<double> mid(d);
    for (int iter = 0; iter < options.repartition_iters; ++iter) {
      for (size_t i = 0; i < d; ++i) mid[i] = 0.5 * (lo[i] + hi[i]);
      std::vector<PScoreRange> box(d);
      for (size_t i = 0; i < d; ++i) box[i] = PScoreRange{-1.0, mid[i]};
      ACQ_ASSIGN_OR_RETURN(AggregateOps::State state, layer->EvaluateBox(box));
      double value = task.agg.ops->Final(state);
      double err = error_fn(task.constraint, value);
      if (!found.has_value() || err < found->error) {
        found = make_offgrid_answer(mid, value, err);
      }
      if (err <= options.delta) break;
      if (value < task.constraint.target) {
        lo = mid;  // still contracting too much: move toward less
      } else {
        hi = mid;
      }
    }
    if (found.has_value() && found->error <= options.delta) return found;
    return std::optional<RefinedQuery>();
  };

  // Walk layers from the original query (p' sum = max) toward Q'_min,
  // i.e. in order of increasing total contraction; stop with the first
  // layer that contains an answer.
  Status inner_status;
  GridCoord coord(d);
  double expand_ms = 0.0;
  double explore_ms = 0.0;
  double merge_ms = 0.0;
  const bool batched = options.batch_explore != BatchExplore::kOff;
  std::vector<GridCoord> layer_coords;
  std::vector<std::vector<PScoreRange>> boxes;

  RunContext* ctx = resolved_ctx;
  // Cooperative interruption poll (see RunAcquire); true stops the walk.
  auto interrupted = [&]() {
    if (ctx == nullptr || !ctx->ShouldStop()) return false;
    result.termination = ctx->Interruption();
    return result.termination != RunTermination::kCompleted;
  };

  // Per-coordinate body shared by the sequential and batched walks (the
  // full-query aggregate is already evaluated). False stops the search.
  auto visit_value = [&](const GridCoord& c, double aggregate) {
    ++result.queries_explored;
    if (ctx != nullptr) {
      ctx->queries_explored.store(result.queries_explored,
                                  std::memory_order_relaxed);
    }
    double err = error_fn(task.constraint, aggregate);
    bool layer_hit = false;
    if (err < best_error) {
      best_error = err;
      result.best = make_answer(c, aggregate, err);
    }
    if (err <= options.delta) {
      layer_hit = true;
      result.queries.push_back(make_answer(c, aggregate, err));
    } else if (options.repartition_iters > 0 &&
               aggregate < task.constraint.target * (1.0 - options.delta)) {
      // Contracted past the target: the answer lies between this
      // coordinate and one grid step less contraction. Repartitioning
      // (Section 6) stays sequential either way.
      auto repartitioned = repartition(c);
      if (!repartitioned.ok()) {
        inner_status = repartitioned.status();
        return std::make_pair(false, false);
      }
      if (repartitioned->has_value()) {
        if ((*repartitioned)->error < best_error) {
          best_error = (*repartitioned)->error;
          result.best = **repartitioned;
        }
        layer_hit = true;
        result.queries.push_back(**repartitioned);
      }
    }
    bool keep = result.queries_explored < options.max_explored;
    if (!keep) result.termination = RunTermination::kTruncated;
    return std::make_pair(keep, layer_hit);
  };

  for (int64_t sum = max_sum; sum >= 0; --sum) {
    if (interrupted()) break;
    bool layer_hit = false;
    bool keep_going = true;
    if (batched) {
      // Enumerate the layer, evaluate every full-query box in one batch
      // (parallel when the layer supports concurrent evaluation), then
      // apply the hit/repartition logic in enumeration order.
      Stopwatch t_expand;
      layer_coords.clear();
      EnumerateLayer(caps, suffix_caps, sum, 0, &coord,
                     [&](const GridCoord& c) {
                       layer_coords.push_back(c);
                       return true;
                     });
      expand_ms += t_expand.ElapsedMillis();

      Stopwatch t_batch;
      boxes.clear();
      boxes.reserve(layer_coords.size());
      for (const GridCoord& c : layer_coords) {
        boxes.push_back(space.QueryBox(c));
      }
      ACQ_ASSIGN_OR_RETURN(std::vector<AggregateOps::State> states,
                           layer->EvaluateBoxes(boxes));
      explore_ms += t_batch.ElapsedMillis();

      Stopwatch t_merge;
      for (size_t q = 0; q < layer_coords.size(); ++q) {
        auto [keep, hit] = visit_value(layer_coords[q],
                                       task.agg.ops->Final(states[q]));
        layer_hit |= hit;
        if (!keep) {
          keep_going = false;
          break;
        }
      }
      merge_ms += t_merge.ElapsedMillis();
    } else {
      Stopwatch t_layer;
      keep_going = EnumerateLayer(
          caps, suffix_caps, sum, 0, &coord, [&](const GridCoord& c) {
            if (interrupted()) return false;
            auto state = layer->EvaluateBox(space.QueryBox(c));
            if (!state.ok()) {
              inner_status = state.status();
              return false;
            }
            auto [keep, hit] =
                visit_value(c, task.agg.ops->Final(state.value()));
            layer_hit |= hit;
            return keep;
          });
      explore_ms += t_layer.ElapsedMillis();
    }
    ACQ_RETURN_IF_ERROR(inner_status);
    if (layer_hit || !keep_going) break;
  }

  result.satisfied = !result.queries.empty();
  std::sort(result.queries.begin(), result.queries.end(),
            [](const RefinedQuery& a, const RefinedQuery& b) {
              return a.qscore < b.qscore;
            });
  result.exec_stats = layer->stats();
  result.exec_stats.expand_ms = expand_ms;
  result.exec_stats.explore_ms = explore_ms;
  result.exec_stats.merge_ms = merge_ms;
  result.elapsed_ms = sw.ElapsedMillis();
  return result;
}

}  // namespace acquire
