#include "core/parallel_merge.h"

#include <algorithm>
#include <atomic>
#include <future>

#include "common/failpoint.h"
#include "common/string_util.h"

namespace acquire {

namespace {

/// Below this many cells the pool hand-off costs more than the merge; the
/// adaptive controller keeps such layers sequential (forced strategies
/// still run, so tests exercise every path on any machine).
constexpr size_t kMinAutoLayer = 2048;
/// Phase A splits the layer into chunks of at least this many cells.
constexpr size_t kMinChunk = 512;
/// Past this cardinality slot publication dominates the merge and the
/// radix publisher's partitioned claims pay off.
constexpr size_t kRadixLayer = 16384;

}  // namespace

const char* MergeStrategyName(MergeStrategy strategy) {
  switch (strategy) {
    case MergeStrategy::kAuto:
      return "auto";
    case MergeStrategy::kSequential:
      return "sequential";
    case MergeStrategy::kCentral:
      return "central";
    case MergeStrategy::kTree:
      return "tree";
    case MergeStrategy::kRadix:
      return "radix";
  }
  return "?";
}

bool ParseMergeStrategy(const std::string& name, MergeStrategy* out) {
  const std::string lower = ToLower(name);
  if (lower == "auto") {
    *out = MergeStrategy::kAuto;
  } else if (lower == "sequential" || lower == "seq") {
    *out = MergeStrategy::kSequential;
  } else if (lower == "central") {
    *out = MergeStrategy::kCentral;
  } else if (lower == "tree") {
    *out = MergeStrategy::kTree;
  } else if (lower == "radix") {
    *out = MergeStrategy::kRadix;
  } else {
    return false;
  }
  return true;
}

ParallelLayerMerger::ParallelLayerMerger(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Shared()) {}

MergeStrategy ParallelLayerMerger::ChooseStrategy(size_t n,
                                                  size_t chunks) const {
  // The decision rule (documented in DESIGN.md): cardinality decides
  // whether to go parallel at all, then the partial fan-out (occupancy per
  // chunk is n / chunks) picks how to publish. Small fan-outs leave the
  // publication cheaper than coordinating it — one consumer drains the
  // partials (central). Large layers make the slot-table inserts the
  // bottleneck — partition the table so workers publish concurrently
  // (radix). In between, the pairwise concatenation rounds overlap the
  // copying while keeping slot publication single-threaded (tree).
  if (n < kMinAutoLayer || chunks < 2) return MergeStrategy::kSequential;
  if (chunks < 4) return MergeStrategy::kCentral;
  if (n >= kRadixLayer) return MergeStrategy::kRadix;
  return MergeStrategy::kTree;
}

void ParallelLayerMerger::ChargeGrowth(MemoryBudget* budget) {
  size_t bytes = 0;
  for (const Partial& p : partials_) {
    bytes += p.arena.capacity() * sizeof(double) +
             p.homes.capacity() * sizeof(uint32_t);
  }
  if (bytes <= charged_bytes_) return;
  const size_t delta = bytes - charged_bytes_;
  charged_bytes_ = bytes;
  if (budget != nullptr) budget->Charge(delta);
}

bool ParallelLayerMerger::MergeLayer(Explorer* explorer,
                                     const std::vector<GridCoord>& layer,
                                     MergeStrategy strategy,
                                     MemoryBudget* budget) {
  const size_t n = layer.size();
  if (n == 0 || strategy == MergeStrategy::kSequential) return false;
  // Positional seeding is the in-sync drain's signature; anything else
  // (filtered layers, partial seeds) belongs to the sequential path.
  if (explorer->seed_count() != n) return false;
  // Injected merge fault: this layer takes the sequential reference path,
  // exactly like an adaptive fallback.
  if (ACQ_FAILPOINT("explore.parallel_merge")) return false;
  const size_t chunks = pool_->NumChunks(n, kMinChunk);
  if (strategy == MergeStrategy::kAuto) {
    strategy = ChooseStrategy(n, chunks);
    if (strategy == MergeStrategy::kSequential) return false;
  }

  const AggregateStore& store = explorer->store();
  const size_t d = store.d();
  const size_t w = store.state_width();
  const size_t bw = store.block_width();
  const AggregateOps& ops = *explorer->space().task().agg.ops;
  if (chunks > partials_.size()) partials_.resize(chunks);

  // Phase A: each chunk runs the Eq. 17 recurrence for its coordinates
  // into a thread-local partial arena. Predecessors are read from the
  // store's immutable prefix; a missing one is an intra-layer dependency
  // (best-first score ties, zero-weight dimensions) and aborts the whole
  // layer — the store is untouched, so the sequential path redoes it.
  std::atomic<bool> abort{false};
  pool_->ParallelFor(n, kMinChunk, [&](size_t c, size_t begin, size_t end) {
    Partial& p = partials_[c];
    p.begin = begin;
    p.count = end - begin;
    p.arena.resize(p.count * bw);
    if (p.scratch.size() != d + 1) p.scratch.resize(d + 1);
    for (size_t q = begin; q < end; ++q) {
      if (abort.load(std::memory_order_relaxed)) return;
      const GridCoord& coord = layer[q];
      const AggregateOps::State& seed = explorer->SeedStateAt(q);
      if (seed.size() != w || coord.size() != d) {
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      // Same operation sequence as Explorer::EnsureComputed, so the
      // resulting blocks are bit-identical to the sequential merge.
      p.scratch[0] = seed;
      p.pred = coord;
      for (size_t i = 1; i <= d; ++i) {
        p.scratch[i] = p.scratch[i - 1];
        const size_t j = i - 1;
        if (coord[j] == 0) continue;  // O_i(u - e_{i-1}) is empty
        --p.pred[j];
        const double* prev_block = store.Find(p.pred);
        ++p.pred[j];
        if (prev_block == nullptr) {
          abort.store(true, std::memory_order_relaxed);
          return;
        }
        p.tmp.assign(prev_block + i * w, prev_block + (i + 1) * w);
        ops.Merge(&p.scratch[i], p.tmp);
      }
      double* block = p.arena.data() + (q - begin) * bw;
      for (size_t i = 0; i <= d; ++i) {
        std::copy(p.scratch[i].begin(), p.scratch[i].end(), block + i * w);
      }
    }
  });
  ChargeGrowth(budget);
  if (abort.load(std::memory_order_relaxed)) return false;

  // Phase B: append the layer to the store in generation order (identical
  // keys_/arena_ contents whatever the strategy) and publish the slots.
  AggregateStore& mstore = explorer->mutable_store();
  const size_t base = mstore.BulkAppendBegin(n);
  switch (strategy) {
    case MergeStrategy::kCentral: {
      // One consumer drains every partial in chunk (== generation) order.
      for (size_t c = 0; c < chunks; ++c) {
        const Partial& p = partials_[c];
        for (size_t r = 0; r < p.count; ++r) {
          const GridCoord& coord = layer[p.begin + r];
          std::copy(coord.begin(), coord.end(),
                    mstore.MutableKeyAt(base + p.begin + r));
        }
        std::copy(p.arena.begin(), p.arena.begin() + p.count * bw,
                  mstore.MutableBlockAt(base + p.begin));
      }
      mstore.PublishSlotsSequential(base, n);
      ++stats_.central_layers;
      break;
    }
    case MergeStrategy::kTree: {
      // Pairwise log-depth concatenation: at each round, partial c absorbs
      // partial c + stride concurrently, until partial 0 holds the layer.
      for (size_t stride = 1; stride < chunks; stride *= 2) {
        std::vector<std::future<void>> round;
        for (size_t c = 0; c + stride < chunks; c += 2 * stride) {
          Partial* left = &partials_[c];
          Partial* right = &partials_[c + stride];
          round.push_back(pool_->Submit([left, right, bw] {
            left->arena.insert(left->arena.end(), right->arena.begin(),
                               right->arena.begin() +
                                   static_cast<ptrdiff_t>(right->count * bw));
            left->count += right->count;
          }));
        }
        for (std::future<void>& join : round) pool_->HelpWhileWaiting(join);
      }
      const Partial& all = partials_[0];
      std::copy(all.arena.begin(),
                all.arena.begin() + static_cast<ptrdiff_t>(all.count * bw),
                mstore.MutableBlockAt(base));
      for (size_t q = 0; q < n; ++q) {
        std::copy(layer[q].begin(), layer[q].end(),
                  mstore.MutableKeyAt(base + q));
      }
      mstore.PublishSlotsSequential(base, n);
      ChargeGrowth(budget);  // the concatenations grew partial 0
      ++stats_.tree_layers;
      break;
    }
    case MergeStrategy::kRadix: {
      // Pass 1: workers copy their own (disjoint) partials and compute
      // their keys' home slots under the post-append table size.
      pool_->ParallelFor(chunks, 1, [&](size_t, size_t cb, size_t ce) {
        for (size_t c = cb; c < ce; ++c) {
          Partial& p = partials_[c];
          p.homes.resize(p.count);
          for (size_t r = 0; r < p.count; ++r) {
            const GridCoord& coord = layer[p.begin + r];
            std::copy(coord.begin(), coord.end(),
                      mstore.MutableKeyAt(base + p.begin + r));
            p.homes[r] =
                static_cast<uint32_t>(mstore.HomeSlot(coord.data()));
          }
          std::copy(p.arena.begin(),
                    p.arena.begin() + static_cast<ptrdiff_t>(p.count * bw),
                    mstore.MutableBlockAt(base + p.begin));
        }
      });
      // Pass 2: hash-partition the slot table; each worker publishes
      // exactly the entries whose probe chains start in its partition, so
      // workers own disjoint slot ranges and the CAS in PublishSlotAtomic
      // only arbitrates chains spilling across a partition boundary.
      const size_t slots = mstore.slot_count();
      const size_t parts = std::min(chunks, slots);
      pool_->ParallelFor(parts, 1, [&](size_t, size_t pb, size_t pe) {
        for (size_t part = pb; part < pe; ++part) {
          const size_t lo = part * slots / parts;
          const size_t hi = (part + 1) * slots / parts;
          for (size_t c = 0; c < chunks; ++c) {
            const Partial& p = partials_[c];
            for (size_t r = 0; r < p.count; ++r) {
              if (p.homes[r] >= lo && p.homes[r] < hi) {
                mstore.PublishSlotAtomic(base + p.begin + r, p.homes[r]);
              }
            }
          }
        }
      });
      ChargeGrowth(budget);
      ++stats_.radix_layers;
      break;
    }
    case MergeStrategy::kAuto:
    case MergeStrategy::kSequential:
      break;  // unreachable: resolved above
  }
  // Every layer coordinate is stored now; retire the seeds so a later
  // TakeSeed (e.g. after a drain desync) can never replay one.
  explorer->ConsumeAllSeeds();
  return true;
}

}  // namespace acquire
