#include "core/processor.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "core/refined_space.h"
#include "index/backend_factory.h"

namespace acquire {

namespace {

BackendOptions BackendOptionsFor(const AcqTask& task,
                                 const AcquireOptions& options) {
  BackendOptions backend_options;
  backend_options.grid_step =
      options.gamma / static_cast<double>(std::max<size_t>(task.d(), 1));
  return backend_options;
}

}  // namespace

const char* AcqModeToString(AcqMode mode) {
  switch (mode) {
    case AcqMode::kOriginalSatisfies:
      return "original-satisfies";
    case AcqMode::kExpanded:
      return "expanded";
    case AcqMode::kContracted:
      return "contracted";
  }
  return "?";
}

Result<AcqOutcome> ProcessAcq(const AcqTask& task, EvaluationLayer* layer,
                              const AcquireOptions& options) {
  if (layer == nullptr || &layer->task() != &task) {
    return Status::InvalidArgument(
        "evaluation layer must wrap the same AcqTask");
  }
  const ErrorFn error_fn =
      options.error_fn ? options.error_fn : ErrorFn(DefaultAggregateError);

  // --- Step 1 (Figure 2): estimate Aactual of the original query. ---
  AcqOutcome outcome;
  std::vector<double> origin(task.d(), 0.0);
  ACQ_ASSIGN_OR_RETURN(outcome.original_aggregate,
                       layer->EvaluateQueryValue(origin));
  double origin_error = error_fn(task.constraint, outcome.original_aggregate);

  if (origin_error <= options.delta) {
    outcome.mode = AcqMode::kOriginalSatisfies;
    RefinedSpace space(&task, options.gamma, options.norm);
    RefinedQuery q;
    q.coord = GridCoord(task.d(), 0);
    q.pscores = origin;
    q.qscore = 0.0;
    q.aggregate = outcome.original_aggregate;
    q.error = origin_error;
    q.description = space.Describe(q.coord);
    outcome.result.satisfied = true;
    outcome.result.queries = {q};
    outcome.result.best = std::move(q);
    outcome.result.queries_explored = 1;
    return outcome;
  }

  if (OvershootsBeyondDelta(task.constraint, outcome.original_aggregate,
                            options.delta)) {
    // --- Too many results: contraction mode (Section 7.2). ---
    outcome.mode = AcqMode::kContracted;
    ACQ_ASSIGN_OR_RETURN(AcqTask contraction, MakeContractionTask(task));
    outcome.contraction_task =
        std::make_shared<AcqTask>(std::move(contraction));
    ACQ_ASSIGN_OR_RETURN(
        std::unique_ptr<EvaluationLayer> contraction_layer,
        MakeEvaluationLayer(
            outcome.contraction_task.get(),
            outcome.contraction_task->eval_backend,
            BackendOptionsFor(*outcome.contraction_task, options)));
    ACQ_ASSIGN_OR_RETURN(
        outcome.result,
        RunAcquireContract(*outcome.contraction_task,
                           contraction_layer.get(), options));
    return outcome;
  }

  // --- Too few results: expansion (Algorithm 4). ---
  outcome.mode = AcqMode::kExpanded;
  ACQ_ASSIGN_OR_RETURN(outcome.result, RunAcquire(task, layer, options));
  return outcome;
}

Result<AcqOutcome> ProcessAcq(const AcqTask& task,
                              const AcquireOptions& options) {
  ACQ_ASSIGN_OR_RETURN(
      std::unique_ptr<EvaluationLayer> layer,
      MakeEvaluationLayer(&task, task.eval_backend,
                          BackendOptionsFor(task, options)));
  return ProcessAcq(task, layer.get(), options);
}

}  // namespace acquire
