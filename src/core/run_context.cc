#include "core/run_context.h"

namespace acquire {

const char* RunTerminationToString(RunTermination t) {
  switch (t) {
    case RunTermination::kCompleted:
      return "completed";
    case RunTermination::kTruncated:
      return "truncated";
    case RunTermination::kDeadlineExceeded:
      return "deadline_exceeded";
    case RunTermination::kCancelled:
      return "cancelled";
    case RunTermination::kClientSatisfied:
      return "client_satisfied";
    case RunTermination::kResourceExhausted:
      return "resource_exhausted";
  }
  return "?";
}

Status TerminationToStatus(RunTermination t) {
  switch (t) {
    case RunTermination::kCompleted:
    case RunTermination::kTruncated:
    case RunTermination::kClientSatisfied:
      return Status::OK();
    case RunTermination::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case RunTermination::kCancelled:
      return Status::Cancelled("run cancelled");
    case RunTermination::kResourceExhausted:
      return Status::ResourceExhausted("run memory budget exhausted");
  }
  return Status::OK();
}

}  // namespace acquire
