#include "core/run_context.h"

namespace acquire {

const char* RunTerminationToString(RunTermination t) {
  switch (t) {
    case RunTermination::kCompleted:
      return "completed";
    case RunTermination::kTruncated:
      return "truncated";
    case RunTermination::kDeadlineExceeded:
      return "deadline_exceeded";
    case RunTermination::kCancelled:
      return "cancelled";
  }
  return "?";
}

Status TerminationToStatus(RunTermination t) {
  switch (t) {
    case RunTermination::kCompleted:
    case RunTermination::kTruncated:
      return Status::OK();
    case RunTermination::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case RunTermination::kCancelled:
      return Status::Cancelled("run cancelled");
  }
  return Status::OK();
}

}  // namespace acquire
