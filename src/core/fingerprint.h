#ifndef ACQUIRE_CORE_FINGERPRINT_H_
#define ACQUIRE_CORE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/acquire.h"
#include "exec/planner.h"
#include "storage/catalog.h"

namespace acquire {

/// Canonical 128-bit identity of one ACQ task: "would two submissions
/// produce bit-identical results?" Equal fingerprints are the result
/// cache's hit condition, so the key must cover exactly the inputs the
/// deterministic refinement search depends on:
///
///   - the catalog identity (generation counter, load parameters, and each
///     referenced table's name / row count / schema — not table contents,
///     which the generation counter stands in for),
///   - the bound plan (the full QuerySpec: predicates, joins, categorical
///     roll-ups, fixed filters, aggregate and constraint — canonicalized,
///     so two SQL spellings that bind identically share a key), and
///   - every result-affecting AcquireOptions field, with kAuto choices
///     resolved to their effective value so e.g. order=auto and order=bfs
///     on an L1 task hit the same entry.
///
/// Excluded on purpose (they change *whether/when* a run finishes, never
/// what a completed run returns): deadlines / run_ctx, memory budgets, and
/// failpoints. The cache only stores completed runs, so a task that would
/// have been interrupted simply misses.
struct TaskFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const TaskFingerprint& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const TaskFingerprint& other) const {
    return !(*this == other);
  }
  bool operator<(const TaskFingerprint& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }

  /// 32 lowercase hex digits, hi first.
  std::string ToHex() const;
};

struct TaskFingerprintHash {
  size_t operator()(const TaskFingerprint& fp) const {
    return static_cast<size_t>(fp.lo ^ (fp.hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// The human-readable serialization the fingerprint hashes — exposed so
/// tests can assert exactly which fields are covered. Fails with
/// kUnimplemented for tasks whose semantics the key cannot capture (a
/// custom options.error_fn, UDA aggregates) and propagates catalog lookup
/// errors for unknown tables; callers treat any failure as "uncacheable"
/// and fall back to a fresh run.
Result<std::string> CanonicalTaskKey(const Catalog& catalog,
                                     const QuerySpec& spec,
                                     const AcquireOptions& options);

/// Hashes CanonicalTaskKey into the 128-bit fingerprint.
Result<TaskFingerprint> FingerprintTask(const Catalog& catalog,
                                        const QuerySpec& spec,
                                        const AcquireOptions& options);

}  // namespace acquire

#endif  // ACQUIRE_CORE_FINGERPRINT_H_
