#include "core/refined_space.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace acquire {

namespace {
// Levels are stored as int32; spaces needing more are pathological
// (gamma chosen far too small for the domain).
constexpr int64_t kLevelCap = 1 << 24;
}  // namespace

RefinedSpace::RefinedSpace(const AcqTask* task, double gamma, Norm norm)
    : task_(task), gamma_(gamma), norm_(norm) {
  ACQ_CHECK(task != nullptr && task->d() > 0) << "task must have dimensions";
  ACQ_CHECK(gamma > 0.0) << "gamma must be positive";
  step_ = gamma_ / static_cast<double>(task_->d());
  max_levels_.reserve(task_->d());
  weights_.reserve(task_->d());
  for (const RefinementDimPtr& dim : task_->dims) {
    double max_pscore = dim->MaxPScore();
    int64_t levels = std::isinf(max_pscore)
                         ? kLevelCap
                         : PScoreLevel(max_pscore, step_);
    max_levels_.push_back(static_cast<int32_t>(std::min(levels, kLevelCap)));
    weights_.push_back(dim->weight());
  }
}

std::vector<double> RefinedSpace::CoordPScores(const GridCoord& coord) const {
  std::vector<double> pscores(coord.size());
  for (size_t i = 0; i < coord.size(); ++i) {
    pscores[i] =
        std::min(static_cast<double>(coord[i]) * step_, task_->dims[i]->MaxPScore());
  }
  return pscores;
}

double RefinedSpace::QScoreOf(const GridCoord& coord) const {
  return norm_.QScore(CoordPScores(coord), weights_);
}

double RefinedSpace::QScoreOfPScores(const std::vector<double>& pscores) const {
  return norm_.QScore(pscores, weights_);
}

std::string RefinedSpace::DescribePScores(
    const std::vector<double>& pscores) const {
  std::vector<std::string> parts;
  parts.reserve(pscores.size());
  for (size_t i = 0; i < pscores.size(); ++i) {
    parts.push_back(task_->dims[i]->DescribeAt(pscores[i]));
  }
  return Join(parts, " AND ");
}

std::vector<PScoreRange> RefinedSpace::CellBox(const GridCoord& coord) const {
  std::vector<PScoreRange> box(coord.size());
  for (size_t i = 0; i < coord.size(); ++i) {
    box[i] = CellRangeForLevel(coord[i], step_);
  }
  return box;
}

std::vector<PScoreRange> RefinedSpace::QueryBox(const GridCoord& coord) const {
  std::vector<PScoreRange> box(coord.size());
  for (size_t i = 0; i < coord.size(); ++i) {
    box[i] = PScoreRange{-1.0, static_cast<double>(coord[i]) * step_};
  }
  return box;
}

std::string RefinedSpace::Describe(const GridCoord& coord) const {
  std::vector<double> pscores = CoordPScores(coord);
  std::vector<std::string> parts;
  parts.reserve(coord.size());
  for (size_t i = 0; i < coord.size(); ++i) {
    parts.push_back(task_->dims[i]->DescribeAt(pscores[i]));
  }
  return Join(parts, " AND ");
}

}  // namespace acquire
