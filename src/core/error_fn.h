#ifndef ACQUIRE_CORE_ERROR_FN_H_
#define ACQUIRE_CORE_ERROR_FN_H_

#include <functional>

#include "exec/aggregate.h"

namespace acquire {

/// Aggregate error function Err_A (Section 2.5): maps the actual aggregate
/// value of a refined query to a non-negative error against the constraint.
/// The driver accepts any user-supplied function; DefaultAggregateError is
/// the paper's sensible default.
using ErrorFn = std::function<double(const Constraint&, double actual)>;

/// Section 2.5 defaults:
///  * "=": relative error |Aexp - Aactual| / Aexp (Eq. 4);
///  * ">=" / ">": one-sided hinge — 0 once the constraint holds, otherwise
///    the relative shortfall (Aexp - Aactual) / Aexp.
double DefaultAggregateError(const Constraint& constraint, double actual);

/// True when the refined query's value overshoots an equality constraint by
/// more than delta, i.e. the grid step jumped across the target and the
/// cell should be repartitioned (Section 6). Inequality constraints never
/// overshoot (hinge error).
bool OvershootsBeyondDelta(const Constraint& constraint, double actual,
                           double delta);

}  // namespace acquire

#endif  // ACQUIRE_CORE_ERROR_FN_H_
