#ifndef ACQUIRE_CORE_REFINED_SPACE_H_
#define ACQUIRE_CORE_REFINED_SPACE_H_

#include <string>
#include <vector>

#include "core/norms.h"
#include "exec/acq_task.h"
#include "exec/evaluation.h"

namespace acquire {

/// The Refined Space RS(Q) of Section 4: a d-dimensional grid whose origin
/// is the original query and whose axes measure per-predicate refinement in
/// PScore units. The grid step on every axis is gamma/d, which by Theorem 1
/// guarantees that some grid query lies within the proximity threshold
/// gamma of the optimal refined query.
class RefinedSpace {
 public:
  /// `gamma` is the refinement threshold of Definition 1.
  RefinedSpace(const AcqTask* task, double gamma, Norm norm);

  size_t d() const { return task_->d(); }
  double gamma() const { return gamma_; }
  double step() const { return step_; }
  const Norm& norm() const { return norm_; }

  /// Highest useful grid level on dimension `dim`: the first level whose
  /// refined predicate already covers the whole data domain.
  int32_t MaxLevel(size_t dim) const { return max_levels_[dim]; }
  const std::vector<int32_t>& max_levels() const { return max_levels_; }

  /// The per-dimension PScores of grid query `coord` (u_i * step, capped at
  /// the dimension's MaxPScore so rendered predicates stay inside the data
  /// domain).
  std::vector<double> CoordPScores(const GridCoord& coord) const;

  /// QScore(Q, Q') of the grid query, using the configured norm and the
  /// dimensions' preference weights.
  double QScoreOf(const GridCoord& coord) const;

  /// QScore of an off-grid refinement vector (repartitioned answers).
  double QScoreOfPScores(const std::vector<double>& pscores) const;

  /// Renders the refined predicates of an off-grid refinement vector.
  std::string DescribePScores(const std::vector<double>& pscores) const;

  /// The cell sub-query box O_1 of `coord` (Eq. 5): tuples whose needed
  /// PScore lies in ((u_i - 1) * step, u_i * step] on every dimension.
  std::vector<PScoreRange> CellBox(const GridCoord& coord) const;

  /// The full refined query box O_{d+1} (Eq. 8): needed_i <= u_i * step.
  std::vector<PScoreRange> QueryBox(const GridCoord& coord) const;

  /// Grid level a tuple with the given needed PScore falls into.
  int64_t LevelFor(double needed) const { return PScoreLevel(needed, step_); }

  /// Renders the refined predicates of `coord` as a SQL conjunction.
  std::string Describe(const GridCoord& coord) const;

  const AcqTask& task() const { return *task_; }

 private:
  const AcqTask* task_;
  double gamma_;
  double step_;
  Norm norm_;
  std::vector<int32_t> max_levels_;
  std::vector<double> weights_;
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_REFINED_SPACE_H_
