#ifndef ACQUIRE_CORE_NORMS_H_
#define ACQUIRE_CORE_NORMS_H_

#include <string>
#include <vector>

namespace acquire {

/// Weighted vector p-norms used to fold a predicate refinement vector
/// PScore(Q, Q') into the scalar QScore(Q, Q') (Eq. 3 and Section 7.1's
/// LWp preference weights). All are monotone in every component, the
/// property the Expand phase relies on (Theorem 3).
enum class NormKind { kL1, kL2, kLp, kLInf };

class Norm {
 public:
  static Norm L1() { return Norm(NormKind::kL1, 1.0); }
  static Norm L2() { return Norm(NormKind::kL2, 2.0); }
  static Norm Lp(double p) { return Norm(NormKind::kLp, p); }
  static Norm LInf() { return Norm(NormKind::kLInf, 0.0); }

  NormKind kind() const { return kind_; }
  double p() const { return p_; }

  /// QScore of a refinement vector. `weights` may be empty (all 1.0) or
  /// one weight per component.
  double QScore(const std::vector<double>& pscores,
                const std::vector<double>& weights = {}) const;

  std::string ToString() const;

 private:
  Norm(NormKind kind, double p) : kind_(kind), p_(p) {}

  NormKind kind_;
  double p_;
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_NORMS_H_
