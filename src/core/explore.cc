#include "core/explore.h"

#include <algorithm>
#include <atomic>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "exec/thread_pool.h"

namespace acquire {

namespace {

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

void AggregateStore::Configure(size_t d, size_t state_width) {
  d_ = d;
  state_width_ = state_width;
  block_width_ = (d + 1) * state_width;
}

void AggregateStore::Reserve(size_t coords) {
  if (coords == 0) return;
  // Grow geometrically: reserving "just enough" on every per-layer call
  // would reallocate — and copy the whole arena — once per layer.
  if (coords * d_ > keys_.capacity()) {
    keys_.reserve(std::max(coords * d_, keys_.capacity() * 2));
  }
  if (coords * block_width_ > arena_.capacity()) {
    arena_.reserve(std::max(coords * block_width_, arena_.capacity() * 2));
  }
  // Keep the load factor under 3/4 for `coords` entries.
  const size_t wanted = NextPowerOfTwo(coords * 4 / 3 + 1);
  if (wanted > slots_.size()) Rehash(wanted);
  ChargeGrowth();
}

void AggregateStore::ChargeGrowth() {
  const size_t bytes = MemoryBytes();
  if (bytes <= charged_bytes_) return;
  const size_t delta = bytes - charged_bytes_;
  charged_bytes_ = bytes;
  if (budget_ == nullptr) return;
  budget_->Charge(delta);
  // Injected allocation failure on the growth path: indistinguishable from
  // a real budget overrun downstream (best-so-far kResourceExhausted).
  if (ACQ_FAILPOINT("explore.arena_grow")) budget_->MarkExhausted();
}

size_t AggregateStore::ProbeSlot(const int32_t* key) const {
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(HashGridCoordSpan(key, d_)) & mask;
  while (true) {
    const uint32_t e = slots_[i];
    if (e == 0) return i;
    // Open-coded compare: d is 1..4 in practice, below memcmp's call cost.
    const int32_t* entry = keys_.data() + (e - 1) * d_;
    size_t j = 0;
    while (j < d_ && entry[j] == key[j]) ++j;
    if (j == d_) return i;
    i = (i + 1) & mask;
  }
}

void AggregateStore::Rehash(size_t slot_count) {
  slots_.assign(slot_count, 0);
  const size_t mask = slot_count - 1;
  for (size_t e = 0; e < num_entries_; ++e) {
    const int32_t* key = keys_.data() + e * d_;
    size_t i = static_cast<size_t>(HashGridCoordSpan(key, d_)) & mask;
    while (slots_[i] != 0) i = (i + 1) & mask;
    slots_[i] = static_cast<uint32_t>(e + 1);
  }
}

const double* AggregateStore::FindWithSlot(const GridCoord& coord,
                                           size_t* slot) const {
  if (slots_.empty()) {
    *slot = kNoSlot;
    return nullptr;
  }
  const size_t i = ProbeSlot(coord.data());
  *slot = i;
  const uint32_t e = slots_[i];
  return e == 0 ? nullptr : arena_.data() + (e - 1) * block_width_;
}

size_t AggregateStore::BulkAppendBegin(size_t count) {
  const size_t base = num_entries_;
  const size_t total = base + count;
  // The slot table must reach its final size before the entries exist:
  // Rehash re-inserts every entry below num_entries_, and the new entries'
  // keys are not written yet — rehashing after the append would file them
  // all under the zero key, double-filling the table once the real slots
  // are published. Callers Reserve() the layer first, so this is a safety
  // net; either way no rehash can run between here and publication.
  if (total * 4 > slots_.size() * 3) {
    Rehash(NextPowerOfTwo(total * 4 / 3 + 1));
  }
  num_entries_ = total;
  keys_.resize(total * d_, 0);
  arena_.resize(total * block_width_, 0.0);
  ChargeGrowth();
  return base;
}

void AggregateStore::PublishSlotsSequential(size_t base, size_t count) {
  for (size_t e = base; e < base + count; ++e) {
    slots_[ProbeSlot(keys_.data() + e * d_)] = static_cast<uint32_t>(e + 1);
  }
}

size_t AggregateStore::HomeSlot(const int32_t* key) const {
  return static_cast<size_t>(HashGridCoordSpan(key, d_)) &
         (slots_.size() - 1);
}

void AggregateStore::PublishSlotAtomic(size_t e, size_t home) {
  const size_t mask = slots_.size() - 1;
  const uint32_t v = static_cast<uint32_t>(e + 1);
  size_t i = home & mask;
  for (;;) {
    std::atomic_ref<uint32_t> slot(slots_[i]);
    uint32_t expected = slot.load(std::memory_order_acquire);
    // Occupied slots can never hold this key (bulk-published keys are all
    // distinct and new), so a loser just advances its probe chain. The
    // table was sized by BulkAppendBegin to keep load under 3/4, so an
    // empty slot always exists.
    if (expected == 0 &&
        slot.compare_exchange_strong(expected, v, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      return;
    }
    i = (i + 1) & mask;
  }
}

double* AggregateStore::InsertHinted(const GridCoord& coord, size_t hint) {
  if ((num_entries_ + 1) * 4 > slots_.size() * 3) {
    Rehash(std::max<size_t>(slots_.size() * 2, 64));
    hint = kNoSlot;  // the slots moved
  }
  const size_t slot = (hint < slots_.size() && slots_[hint] == 0)
                          ? hint
                          : ProbeSlot(coord.data());
  keys_.insert(keys_.end(), coord.begin(), coord.end());
  const size_t offset = num_entries_ * block_width_;
  arena_.resize(offset + block_width_, 0.0);
  slots_[slot] = static_cast<uint32_t>(++num_entries_);
  ChargeGrowth();
  return arena_.data() + offset;
}

Explorer::Explorer(const RefinedSpace* space, EvaluationLayer* layer,
                   MemoryBudget* budget)
    : space_(space), layer_(layer) {
  const AggregateOps& ops = *space_->task().agg.ops;
  store_.Configure(space_->d(), ops.Init().size());
  store_.set_budget(budget);
  scratch_.resize(space_->d() + 1);
}

Result<double> Explorer::ComputeAggregate(const GridCoord& coord) {
  const double* block = nullptr;
  ACQ_RETURN_IF_ERROR(EnsureComputed(coord, &block));
  const size_t d = space_->d();
  const size_t w = store_.state_width();
  const AggregateOps& ops = *space_->task().agg.ops;
  // O_{d+1} is the whole refined query (Eq. 8).
  tmp_state_.assign(block + d * w, block + (d + 1) * w);
  return ops.Final(tmp_state_);
}

void Explorer::SeedCellStates(const std::vector<GridCoord>& coords,
                              std::vector<AggregateOps::State> states) {
  seed_states_ = std::move(states);
  seed_keys_.clear();
  for (const GridCoord& c : coords) {
    seed_keys_.insert(seed_keys_.end(), c.begin(), c.end());
  }
  seed_cursor_ = 0;
  seed_index_built_ = false;
  // The evaluation layer executed these in the batch; count them now so
  // cell_queries() matches the layer's own query counter.
  cell_queries_ += coords.size();
}

void Explorer::BuildSeedIndex() {
  const size_t d = space_->d();
  const size_t count = seed_states_.size();
  seed_slots_.assign(std::max<size_t>(16, NextPowerOfTwo(count * 2)), 0);
  const size_t mask = seed_slots_.size() - 1;
  for (size_t e = 0; e < count; ++e) {
    size_t i =
        static_cast<size_t>(HashGridCoordSpan(seed_keys_.data() + e * d, d)) &
        mask;
    while (seed_slots_[i] != 0) i = (i + 1) & mask;
    seed_slots_[i] = static_cast<uint32_t>(e + 1);
  }
  seed_index_built_ = true;
}

bool Explorer::TakeSeed(const GridCoord& coord, AggregateOps::State* out) {
  if (seed_states_.empty()) return false;
  const size_t d = space_->d();
  // Consumed seeds are cleared below, so skipping empties finds the first
  // live seed; in a layer drain it is exactly the requested coordinate.
  while (seed_cursor_ < seed_states_.size() &&
         seed_states_[seed_cursor_].empty()) {
    ++seed_cursor_;
  }
  size_t e = seed_states_.size();
  if (seed_cursor_ < seed_states_.size()) {
    const int32_t* key = seed_keys_.data() + seed_cursor_ * d;
    size_t j = 0;
    while (j < d && key[j] == coord[j]) ++j;
    if (j == d) e = seed_cursor_;
  }
  if (e == seed_states_.size()) {
    if (!seed_index_built_) BuildSeedIndex();
    const size_t mask = seed_slots_.size() - 1;
    size_t i = static_cast<size_t>(HashGridCoordSpan(coord.data(), d)) & mask;
    while (true) {
      const uint32_t entry = seed_slots_[i];
      if (entry == 0) return false;
      const int32_t* key = seed_keys_.data() + (entry - 1) * d;
      size_t j = 0;
      while (j < d && key[j] == coord[j]) ++j;
      if (j == d) {
        if (seed_states_[entry - 1].empty()) return false;  // consumed
        e = entry - 1;
        break;
      }
      i = (i + 1) & mask;
    }
  }
  out->swap(seed_states_[e]);
  seed_states_[e].clear();  // deterministic consumed marker
  return true;
}

void Explorer::ConsumeAllSeeds() {
  for (AggregateOps::State& seed : seed_states_) seed.clear();
  seed_cursor_ = seed_states_.size();
}

void Explorer::BeginLayerDrain(size_t lo, size_t hi) {
  pred_lo_ = lo;
  pred_hi_ = hi;
  pred_cursor_.assign(space_->d(), lo);
  shell_drain_ = false;
}

void Explorer::BeginShellDrain(size_t lo) {
  pred_lo_ = 0;
  pred_hi_ = 0;
  shell_drain_ = true;
  shell_lo_ = lo;
  shell_group_lo_ = lo;
  shell_cursor_.assign(space_->d(), lo);
}

void Explorer::NoteShellInsert() {
  const size_t n = store_.size();
  if (n < shell_lo_ + 2) return;
  const size_t d = space_->d();
  const int32_t* prev = store_.KeyAt(n - 2);
  const int32_t* cur = store_.KeyAt(n - 1);
  if (std::lexicographical_compare(cur, cur + d, prev, prev + d)) {
    // Keys ascend within a pinned group; a lex restart is the next group.
    shell_group_lo_ = n - 1;
  }
}

const double* Explorer::FindShellPred(size_t j, const int32_t* key) {
  const size_t d = space_->d();
  const size_t hi = store_.size();
  // A group restart re-bases every cursor to the new group's first entry.
  size_t e = std::max(shell_cursor_[j], shell_group_lo_);
  while (e < hi) {
    const int32_t* entry = store_.KeyAt(e);
    size_t i = 0;
    while (i < d && entry[i] == key[i]) ++i;
    if (i == d) {
      shell_cursor_[j] = e + 1;
      return store_.BlockAt(e);
    }
    if (entry[i] > key[i]) break;  // keys ascend: a later entry only grows
    ++e;  // lex-smaller entries can never match a future key of this group
  }
  shell_cursor_[j] = e;
  return nullptr;
}

const double* Explorer::FindPredInRange(size_t j, const int32_t* key) {
  const size_t d = space_->d();
  size_t e = pred_cursor_[j];
  while (e < pred_hi_) {
    const int32_t* entry = store_.KeyAt(e);
    size_t i = 0;
    while (i < d && entry[i] == key[i]) ++i;
    if (i == d) {
      // The next predecessor along j is strictly smaller, so this entry
      // can never match again.
      pred_cursor_[j] = e + 1;
      return store_.BlockAt(e);
    }
    // Entries at or below `key` stay candidates for the (descending)
    // future keys; entries above it never match again and are skipped for
    // good, which bounds the total scan per layer at d * |range|.
    if (entry[i] < key[i]) break;
    ++e;
  }
  pred_cursor_[j] = e;
  return nullptr;
}

Status Explorer::EnsureComputed(const GridCoord& coord, const double** block) {
  if (const double* found = store_.Find(coord)) {
    *block = found;
    return Status::OK();
  }
  const size_t d = space_->d();
  const size_t w = store_.state_width();
  const AggregateOps& ops = *space_->task().agg.ops;

  stack_.clear();
  stack_.push_back(coord);
  pred_blocks_.resize(d);
  while (!stack_.empty()) {
    GridCoord cur = std::move(stack_.back());
    stack_.pop_back();
    size_t slot_hint = AggregateStore::kNoSlot;
    if (store_.FindWithSlot(cur, &slot_hint) != nullptr) continue;
    // Every predecessor cur - e_j must be available first; probe each by
    // decrementing cur in place. The lookups double as the merge inputs: a
    // found block pointer stays valid through the merges below because
    // nothing inserts into the store before then.
    bool missing = false;
    for (size_t j = 0; j < d; ++j) {
      pred_blocks_[j] = nullptr;
      if (cur[j] == 0) continue;
      --cur[j];
      const double* prev_block = nullptr;
      if (pred_lo_ < pred_hi_) {
        prev_block = FindPredInRange(j, cur.data());
      } else if (shell_drain_) {
        prev_block = FindShellPred(j, cur.data());
      }
      if (prev_block == nullptr) prev_block = store_.Find(cur);
      if (prev_block != nullptr) {
        pred_blocks_[j] = prev_block;
      } else {
        if (!missing) {
          missing = true;
          ++cur[j];
          stack_.push_back(cur);  // revisit once the predecessors resolve
          --cur[j];
        }
        stack_.push_back(cur);  // the missing predecessor itself
      }
      ++cur[j];
    }
    if (missing) continue;

    // Algorithm 3. scratch_[0] = the cell sub-query — taken from the batch
    // seed when one exists, executed for real otherwise; scratch_[i] =
    // O_{i+1} via Eq. 17.
    if (!TakeSeed(cur, &scratch_[0])) {
      ACQ_ASSIGN_OR_RETURN(scratch_[0],
                           layer_->EvaluateBox(space_->CellBox(cur)));
      ++cell_queries_;
    }
    if (scratch_[0].size() != w) {
      return Status::Internal(
          "aggregate state width differs from ops.Init()");
    }
    for (size_t i = 1; i <= d; ++i) {
      scratch_[i] = scratch_[i - 1];
      const double* prev_block = pred_blocks_[i - 1];
      if (prev_block == nullptr) continue;  // O_i(u - e_{i-1}) is empty
      tmp_state_.assign(prev_block + i * w, prev_block + (i + 1) * w);
      ops.Merge(&scratch_[i], tmp_state_);
    }
    double* inserted = store_.InsertHinted(cur, slot_hint);
    for (size_t i = 0; i <= d; ++i) {
      std::copy(scratch_[i].begin(), scratch_[i].end(), inserted + i * w);
    }
    if (shell_drain_) NoteShellInsert();
    // `coord` sits at the bottom of the dependency stack, so the insert
    // that empties the stack is coord's own block.
    *block = inserted;
  }
  return Status::OK();
}

BatchExplorer::BatchExplorer(const RefinedSpace* space, EvaluationLayer* layer,
                             QueryGenerator* generator, RunContext* ctx)
    : space_(space),
      layer_(layer),
      generator_(generator),
      ctx_(ctx),
      explorer_(space, layer, ctx != nullptr ? &ctx->budget() : nullptr) {}

BatchExplorer::~BatchExplorer() {
  if (prefetch_.valid()) {
    // Helping join (see NextLayer): the destructor may run on a pool
    // worker whose prefetch task is still queued behind other work.
    try {
      ThreadPool::Shared().HelpWhileWaiting(prefetch_);
    } catch (...) {
      // Generator failures surface through NextLayer, never from here.
    }
  }
}

void BatchExplorer::GenerateLayer() {
  Stopwatch sw;
  next_valid_ = false;
  if (!primed_) {
    if (exhausted_ || !generator_->Next(&lookahead_)) {
      exhausted_ = true;
      next_coords_.clear();
      expand_ms_ += sw.ElapsedMillis();
      return;
    }
    lookahead_score_ = generator_->CurrentScore();
    primed_ = true;
  }
  next_score_ = lookahead_score_;
  // next_coords_ holds the layer drained two swaps ago; swapping its
  // elements out instead of clearing hands their buffers back to
  // lookahead_ (and from there to the generator's assign), so steady-state
  // layer turnover allocates only when a layer outgrows the previous ones.
  size_t n = 0;
  do {
    if (n < next_coords_.size()) {
      next_coords_[n].swap(lookahead_);
    } else {
      next_coords_.push_back(std::move(lookahead_));
    }
    ++n;
    // Interrupted runs stop draining mid-layer: the truncated layer is
    // handed over as-is (still valid coordinates of this score). The
    // lookahead coordinate was just placed into the layer, so the primed
    // invariant (lookahead_ holds a fetched-but-unplaced coordinate) no
    // longer holds -- if a later call generates another layer before the
    // driver's own (strided) poll stops the search, it must re-prime from
    // the generator instead of replaying the consumed lookahead.
    if (ctx_ != nullptr && (n & 0xFF) == 0 && ctx_->ShouldStop()) {
      primed_ = false;
      break;
    }
    if (!generator_->Next(&lookahead_)) {
      primed_ = false;
      exhausted_ = true;
      break;
    }
    lookahead_score_ = generator_->CurrentScore();
  } while (lookahead_score_ == next_score_);
  next_coords_.resize(n);
  next_valid_ = true;
  expand_ms_ += sw.ElapsedMillis();
}

void BatchExplorer::StartPrefetch() {
  // A single-worker pool has nothing to overlap the prefetch with: the
  // generator work would just move to another thread and come back with
  // hand-off latency and cold caches. Leave the future invalid there and
  // let NextLayer generate inline. Tiny layers (best-first order between
  // score ties hands out near-singletons) get the same treatment — the
  // pool hand-off costs more than the generator work it would overlap.
  constexpr size_t kMinPrefetchLayer = 4;
  ThreadPool& pool = ThreadPool::Shared();
  if (pool.num_threads() > 1 && layer_coords_.size() >= kMinPrefetchLayer) {
    prefetch_ = pool.Submit([this] { GenerateLayer(); });
  }
}

bool BatchExplorer::NextLayer() {
  if (prefetch_.valid()) {
    // Hand-over: next_* written before this join. The helping join keeps
    // the wait deadlock-free when this run itself occupies a pool worker
    // (the server schedules whole runs onto the shared pool).
    ThreadPool::Shared().HelpWhileWaiting(prefetch_);
  } else {
    GenerateLayer();  // first layer (or single-core pool): inline
  }
  if (!next_valid_) return false;
  layer_coords_.swap(next_coords_);
  layer_score_ = next_score_;
  // Generate the following layer while the caller evaluates, merges and
  // investigates this one. The generator only depends on the space, never
  // on the store, so it can run ahead of the investigation.
  StartPrefetch();
  return true;
}

Status BatchExplorer::ExecuteLayer() {
  Stopwatch sw;
  // The store only ever holds handed-out coordinates (predecessor fills
  // resolve within the layers drained so far), so when its size equals the
  // count handed out in previous layers, nothing of this fresh layer can be
  // stored and the layer is used in place. Any mismatch — a caller
  // re-running or abandoning a layer, or exploring around the drain — runs
  // the per-coordinate filter, keeping "at most one execution per
  // coordinate" unconditional.
  const std::vector<GridCoord>* coords = &layer_coords_;
  const bool in_sync = explorer_.store().size() == drained_total_;
  if (!in_sync) {
    batch_.clear();
    for (const GridCoord& c : layer_coords_) {
      if (!explorer_.IsStored(c)) batch_.push_back(c);
    }
    coords = &batch_;
  }
  last_in_sync_ = in_sync;
  // In sync, store entries [drained_total_ - prev_layer_size_,
  // drained_total_) are exactly the previous layer in drain order — arm
  // the explorer's sequential predecessor cursors over that range. Shell
  // layers arm the growing-region shell cursors instead: their same-shell
  // predecessors live in the current layer's inserts, not the previous
  // layer's.
  if (in_sync && shell_hint_) {
    explorer_.BeginShellDrain(drained_total_);
  } else if (in_sync) {
    explorer_.BeginLayerDrain(drained_total_ - prev_layer_size_,
                              drained_total_);
  } else {
    explorer_.BeginLayerDrain(0, 0);
  }
  prev_layer_size_ = layer_coords_.size();
  drained_total_ += layer_coords_.size();
  explorer_.ReserveAdditional(coords->size());
  if (!coords->empty()) {
    ACQ_ASSIGN_OR_RETURN(
        std::vector<AggregateOps::State> states,
        layer_->EvaluateCells(coords->data(), coords->size(), space_->step()));
    explorer_.SeedCellStates(*coords, std::move(states));
  }
  batch_ms_ += sw.ElapsedMillis();
  return Status::OK();
}

}  // namespace acquire
