#include "core/explore.h"

namespace acquire {

Result<double> Explorer::ComputeAggregate(const GridCoord& coord) {
  ACQ_RETURN_IF_ERROR(EnsureComputed(coord));
  const AggregateStore::SubAggregates* states = store_.Find(coord);
  const AggregateOps& ops = *space_->task().agg.ops;
  // O_{d+1} is the whole refined query (Eq. 8).
  return ops.Final(states->back());
}

Status Explorer::EnsureComputed(const GridCoord& coord) {
  if (store_.Find(coord) != nullptr) return Status::OK();
  const size_t d = space_->d();
  const AggregateOps& ops = *space_->task().agg.ops;

  std::vector<GridCoord> stack{coord};
  GridCoord prev;
  while (!stack.empty()) {
    const GridCoord cur = stack.back();
    if (store_.Find(cur) != nullptr) {
      stack.pop_back();
      continue;
    }
    // Every predecessor cur - e_j must be available first.
    bool missing = false;
    for (size_t j = 0; j < d; ++j) {
      if (cur[j] == 0) continue;
      prev = cur;
      --prev[j];
      if (store_.Find(prev) == nullptr) {
        stack.push_back(prev);
        missing = true;
      }
    }
    if (missing) continue;

    // Algorithm 3. states[0] = the cell sub-query, executed for real;
    // states[i] = O_{i+1} via Eq. 17.
    AggregateStore::SubAggregates states(d + 1);
    ACQ_ASSIGN_OR_RETURN(states[0], layer_->EvaluateBox(space_->CellBox(cur)));
    ++cell_queries_;
    for (size_t i = 1; i <= d; ++i) {
      states[i] = states[i - 1];
      if (cur[i - 1] == 0) continue;  // O_i(u - e_{i-1}) is empty
      prev = cur;
      --prev[i - 1];
      const AggregateStore::SubAggregates* prev_states = store_.Find(prev);
      ops.Merge(&states[i], (*prev_states)[i]);
    }
    store_.Put(cur, std::move(states));
    stack.pop_back();
  }
  return Status::OK();
}

}  // namespace acquire
