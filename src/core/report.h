#ifndef ACQUIRE_CORE_REPORT_H_
#define ACQUIRE_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/acquire.h"
#include "exec/acq_task.h"

namespace acquire {

/// Human-readable per-predicate change report for one recommended refined
/// query — the "what exactly did you change about my query?" view the
/// paper's user experience calls for:
///
///   s_acctbal < 2000        ->  s_acctbal <= 4097.22   (+105% of range)
///   p_retailprice < 1000    ->  (unchanged)
///
/// Unchanged dimensions are annotated rather than dropped so the user sees
/// the whole query.
std::string RefinementReport(const AcqTask& task, const RefinedQuery& query);

/// Filters `queries` down to the Pareto-optimal set under per-dimension
/// refinement-vector dominance: a query is dropped when another refines
/// every predicate at most as much and at least one strictly less. With
/// several same-QScore answers (the common case: Algorithm 4 returns the
/// whole hit layer), this is the set the user actually wants to choose
/// from — every surviving answer represents a distinct trade-off.
std::vector<RefinedQuery> ParetoFilter(std::vector<RefinedQuery> queries);

}  // namespace acquire

#endif  // ACQUIRE_CORE_REPORT_H_
