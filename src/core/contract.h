#ifndef ACQUIRE_CORE_CONTRACT_H_
#define ACQUIRE_CORE_CONTRACT_H_

#include "core/acquire.h"
#include "exec/acq_task.h"

namespace acquire {

/// Contraction dimension (Section 7.2): measures how much a one-sided
/// numeric predicate has been *tightened* rather than relaxed.
///
/// The contraction search is mapped onto the expansion machinery by a
/// change of variable. Let slack(t) be the PScore distance between tuple
/// t's value and the predicate bound, measured inward: tuple t survives a
/// contraction of c PScore units iff slack(t) >= c. With
/// needed'(t) = 100 - slack(t) and p' = 100 - c this is needed'(t) <= p',
/// the standard admission test, and the refined space over p' is bounded:
/// p' = 100 is the original query Q, p' = 0 is Q'_min with every predicate
/// collapsed onto its bound.
class ContractionDim final : public RefinementDim {
 public:
  /// `width` is the original predicate's interval width (the NumericDim's
  /// PScore denominator), so full contraction (bound moved to the opposite
  /// end of the interval) is 100 units.
  ContractionDim(std::string column, bool is_upper, double bound,
                 double width);

  Status Bind(const Schema& schema) override;
  double NeededPScore(const Table& table, size_t row) const override;
  double MaxPScore() const override { return 100.0; }
  std::string DescribeAt(double pscore) const override;
  std::string label() const override;

  /// The predicate bound after contracting by c = 100 - pscore units.
  double ContractedBound(double pscore) const;

 private:
  std::string column_;
  int col_index_ = -1;
  bool is_upper_;
  double bound_;
  double width_;
};

/// Builds the contraction counterpart of an expansion task: every
/// NumericDim becomes a ContractionDim over the same relation, aggregate
/// and constraint. Tasks containing join or categorical dimensions are
/// rejected (bands cannot shrink below equality; drill-down is future
/// work, as in the paper).
Result<AcqTask> MakeContractionTask(const AcqTask& task);

/// ACQUIRE for queries that *overshoot* the constraint (Section 7.2):
/// searches contractions of `task` (which must come from
/// MakeContractionTask) in order of increasing contraction, i.e. from the
/// original query Q toward Q'_min, and returns the minimum-contraction
/// queries meeting the constraint within options.delta.
///
/// Reported RefinedQuery::pscores are *contraction* amounts c (distance
/// from Q), and qscore is their norm, mirroring the expansion semantics.
Result<AcquireResult> RunAcquireContract(const AcqTask& task,
                                         EvaluationLayer* layer,
                                         const AcquireOptions& options = {});

}  // namespace acquire

#endif  // ACQUIRE_CORE_CONTRACT_H_
