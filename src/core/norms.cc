#include "core/norms.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace acquire {

double Norm::QScore(const std::vector<double>& pscores,
                    const std::vector<double>& weights) const {
  assert(weights.empty() || weights.size() == pscores.size());
  auto weighted = [&](size_t i) {
    double w = weights.empty() ? 1.0 : weights[i];
    return w * std::fabs(pscores[i]);
  };
  switch (kind_) {
    case NormKind::kL1: {
      double sum = 0.0;
      for (size_t i = 0; i < pscores.size(); ++i) sum += weighted(i);
      return sum;
    }
    case NormKind::kL2:
    case NormKind::kLp: {
      double sum = 0.0;
      for (size_t i = 0; i < pscores.size(); ++i) {
        sum += std::pow(weighted(i), p_);
      }
      return std::pow(sum, 1.0 / p_);
    }
    case NormKind::kLInf: {
      double mx = 0.0;
      for (size_t i = 0; i < pscores.size(); ++i) {
        mx = std::max(mx, weighted(i));
      }
      return mx;
    }
  }
  return 0.0;
}

std::string Norm::ToString() const {
  switch (kind_) {
    case NormKind::kL1:
      return "L1";
    case NormKind::kL2:
      return "L2";
    case NormKind::kLp:
      return StringFormat("L%g", p_);
    case NormKind::kLInf:
      return "Linf";
  }
  return "?";
}

}  // namespace acquire
