#include "core/error_fn.h"

#include <cmath>

namespace acquire {

double DefaultAggregateError(const Constraint& constraint, double actual) {
  const double target = constraint.target;
  switch (constraint.op) {
    case ConstraintOp::kEq:
      return std::fabs(target - actual) / target;
    case ConstraintOp::kGe:
    case ConstraintOp::kGt:
      return actual >= target ? 0.0 : (target - actual) / target;
  }
  return 0.0;
}

bool OvershootsBeyondDelta(const Constraint& constraint, double actual,
                           double delta) {
  if (constraint.op != ConstraintOp::kEq) return false;
  return actual > constraint.target * (1.0 + delta);
}

}  // namespace acquire
