#ifndef ACQUIRE_CORE_ACQUIRE_H_
#define ACQUIRE_CORE_ACQUIRE_H_

#include <cstdint>
#include <vector>

#include "core/error_fn.h"
#include "core/expand.h"
#include "core/explore.h"
#include "core/norms.h"
#include "core/parallel_merge.h"
#include "core/refined_query.h"
#include "core/run_context.h"
#include "exec/evaluation.h"

namespace acquire {

/// Which Expand-phase generator drives the search.
enum class SearchOrder {
  kAuto,       // shells for the L-infinity norm, BFS otherwise (the paper)
  kBfs,        // Algorithm 1
  kShell,      // Algorithm 2
  kBestFirst,  // exact-QScore priority order (ablation; not in the paper)
};

/// Layer-batched Explore (core/explore.h's BatchExplorer): drain an entire
/// expand layer, execute its cell sub-queries in one EvaluateCells batch,
/// then run the Eq. 17 merges in generation order (in parallel when
/// AcquireOptions::merge_strategy allows). Aggregates, answer sets and
/// cell-query counts are identical to the sequential explorer; only the
/// wall clock changes.
enum class BatchExplore {
  kAuto,  // on for every search order: BFS and shell emit discrete layers,
          // and best-first micro-batches equal-score frontier runs (often
          // single coordinates, which batch at no extra cost)
  kOn,
  kOff,
};

/// Tunables of Algorithm 4 plus the extensions of Section 7.
struct AcquireOptions {
  /// Refinement threshold gamma (Definition 1b): answers are guaranteed
  /// within gamma of the optimal QScore; grid step = gamma / d (Theorem 1).
  double gamma = 10.0;

  /// Aggregate error threshold delta (Definition 1a).
  double delta = 0.05;

  /// Norm for QScore (Eq. 3); dimension weights come from the task's dims.
  Norm norm = Norm::L1();

  SearchOrder order = SearchOrder::kAuto;

  BatchExplore batch_explore = BatchExplore::kAuto;

  /// How batched layers' Eq. 17 merges are published into the aggregate
  /// store (core/parallel_merge.h). Result-invariant: every strategy is
  /// bit-exact against the sequential reference, so this knob only moves
  /// wall clock and is excluded from the task fingerprint. kAuto picks per
  /// layer from cell cardinality and pool fan-out; kSequential forces the
  /// reference path.
  MergeStrategy merge_strategy = MergeStrategy::kAuto;

  /// Repartitioning depth b for cells that overshoot an equality constraint
  /// (Section 6); 0 disables repartitioning.
  int repartition_iters = 8;

  /// Keep exploring past the first hit layer and return every answer whose
  /// QScore is within gamma of the best (Definition 1b's full answer set);
  /// off by default, matching Algorithm 4, which stops with the hit layer.
  bool collect_within_gamma = false;

  /// Incremental Aggregate Computation on/off (ablation). When off, every
  /// grid query is fully re-executed against the evaluation layer.
  bool use_incremental = true;

  /// Hard cap on investigated grid queries (safety valve).
  uint64_t max_explored = 2'000'000;

  /// Soft cap on the search-side working set (aggregate-store arena plus
  /// expand layer arenas), in bytes; 0 = unlimited. Enforcement is
  /// cooperative (see MemoryBudget): the run stops at the next poll after
  /// growth crosses the limit and returns termination = kResourceExhausted
  /// with the best-so-far partial answer — never an allocation failure.
  /// When run_ctx is provided its budget is used (and this limit is applied
  /// to it if the context has none); otherwise an internal context is used.
  uint64_t memory_budget_bytes = 0;

  /// After this many consecutive completed layers whose best error got
  /// strictly worse, the search concludes the aggregate is diverging from
  /// the target (e.g. the origin already overshot an equality constraint)
  /// and stops. Needed because UDAs make monotonicity unknowable in
  /// general. Applies to the discrete-layer generators (BFS, shell).
  int divergence_patience = 3;

  /// Hard stall guard for every search order: stop when this many grid
  /// queries in a row failed to improve the best error seen so far.
  uint64_t stall_limit = 100000;

  /// Aggregate error function; DefaultAggregateError when unset.
  ErrorFn error_fn;

  /// Optional cooperative deadline / cancellation token (core/run_context.h).
  /// Not owned; must outlive the run. When set, the drivers poll it (per
  /// coordinate sequentially, per layer batched) and stop early with
  /// AcquireResult::termination = kDeadlineExceeded / kCancelled, returning
  /// the best-so-far partial result instead of an error.
  RunContext* run_ctx = nullptr;
};

/// Outcome of one ACQUIRE run.
struct AcquireResult {
  /// Refined queries meeting the constraint within delta, sorted by QScore.
  /// Per Algorithm 4 these are all hits in the first layer containing one
  /// (plus any repartitioned answers), or the full within-gamma set when
  /// collect_within_gamma is on.
  std::vector<RefinedQuery> queries;

  /// False when the space was exhausted (or a stopping rule fired) without
  /// reaching the constraint; `best` then carries the closest query found.
  bool satisfied = false;

  /// Why the search stopped. kCompleted covers the search's own stopping
  /// rules (hit layer exhausted, space exhausted, divergence/stall);
  /// kTruncated means options.max_explored ran out — i.e. "budget
  /// exhausted", not "no answer" — and kDeadlineExceeded / kCancelled /
  /// kResourceExhausted mean the run context (deadline, cancellation, or
  /// memory budget) interrupted the run, with everything below holding the
  /// best-so-far partial answer.
  RunTermination termination = RunTermination::kCompleted;

  /// Closest query found overall (minimum error, ties by QScore).
  RefinedQuery best;

  uint64_t queries_explored = 0;  // grid queries investigated
  uint64_t cell_queries = 0;      // cell sub-queries actually executed

  /// Evaluation-layer counters plus the driver's per-phase timings
  /// (expand_ms / explore_ms / merge_ms; see ExecStats).
  EvaluationLayer::ExecStats exec_stats;

  /// Monotonic wall time of the search itself (steady clock), excluding
  /// EvaluationLayer::Prepare so runs against pre-prepared and lazily
  /// prepared layers report comparable numbers.
  double elapsed_ms = 0.0;
};

/// Runs ACQUIRE (Algorithm 4) for `task` against `layer`.
///
/// The evaluation layer is modular (Section 3): pass a
/// DirectEvaluationLayer to model per-query DBMS execution, a
/// CachedEvaluationLayer for the materialized-distances variant, or a
/// GridIndexEvaluationLayer (Section 7.4) for O(1) cell queries. The layer
/// must wrap the same task.
Result<AcquireResult> RunAcquire(const AcqTask& task, EvaluationLayer* layer,
                                 const AcquireOptions& options = {});

}  // namespace acquire

#endif  // ACQUIRE_CORE_ACQUIRE_H_
