#ifndef ACQUIRE_CORE_RUN_CONTEXT_H_
#define ACQUIRE_CORE_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/memory_budget.h"
#include "common/status.h"

namespace acquire {

/// How a search run ended. Every value except kCompleted means the result
/// is a *partial* answer: the search stopped before its own stopping rules
/// (first hit layer / exhaustion / divergence) concluded, and `best` holds
/// the closest query found so far. Distinguishing these matters for the
/// serving path — "no answer exists within the explored region" and "the
/// budget ran out before we could tell" call for different client actions.
enum class RunTermination {
  kCompleted,          // the search's own stopping rules concluded
  kTruncated,          // AcquireOptions.max_explored exhausted
  kDeadlineExceeded,   // RunContext deadline passed
  kCancelled,          // RunContext::RequestCancel observed
  kClientSatisfied,    // RunContext::RequestClientStop observed (STOP verb)
  kResourceExhausted,  // MemoryBudget limit hit (or injected exhaustion)
};

/// Stable lowercase name ("completed", "truncated", "deadline_exceeded",
/// "cancelled", "client_satisfied", "resource_exhausted") — also the wire
/// form the ACQ server reports.
const char* RunTerminationToString(RunTermination t);

/// Converts a non-kCompleted termination to the matching error Status
/// (OK for kCompleted / kTruncated / kClientSatisfied, which still carry a
/// usable result).
Status TerminationToStatus(RunTermination t);

/// Point-in-time view of a running search, handed to a ProgressSink at the
/// layer-drain boundaries of both Explore drivers. All fields are plain
/// values copied on the run thread, so a sink may stash the snapshot or
/// serialize it without touching any live search state. `best_*` fields are
/// meaningful only when `has_best` is set (the origin layer may drain before
/// any on-grid refinement has been investigated).
struct ProgressSnapshot {
  uint64_t layers_drained = 0;   // equi-score layers fully investigated
  uint64_t queries_explored = 0;
  uint64_t cell_queries = 0;
  double elapsed_ms = 0.0;       // search wall time so far

  bool has_best = false;
  double best_error = 0.0;       // |agg(best) - target| under the error_fn
  double best_qscore = 0.0;      // Eq. 5 distance of best from the original
  double best_aggregate = 0.0;
  std::string best_description;  // refined predicate rendering of best

  // Evaluation-layer ExecStats counters, snapshotted at the layer boundary
  // (the layer's stats() struct is trivially copyable and only mutated by
  // the run thread, so a mid-run copy is exact, not torn).
  uint64_t eval_queries = 0;
  uint64_t tuples_scanned = 0;
  double prepare_ms = 0.0;
  uint64_t delta_rows = 0;
  uint64_t delta_merges = 0;
  uint64_t merge_layers_central = 0;
  uint64_t merge_layers_tree = 0;
  uint64_t merge_layers_radix = 0;
  uint64_t merge_layers_sequential = 0;
};

/// Cooperative deadline + cancellation token + progress counters threaded
/// through one ACQUIRE run (RunAcquire / RunAcquireContract / ProcessAcq via
/// AcquireOptions::run_ctx).
///
/// Threading model: one thread drives the run and is the only writer of
/// the progress counters; ShouldStop may additionally be polled by the
/// run's layer-prefetch worker, and any number of other threads may call
/// RequestCancel and read the progress counters concurrently. Deadline
/// setters are not thread-safe — arm them before the run starts. The
/// drivers poll at coordinate
/// granularity in the sequential explorer and at layer granularity in the
/// batched one, so an in-flight run stops within one layer's worth of work
/// and returns its best-so-far partial answer instead of blocking the
/// worker it runs on.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Arms the deadline. Call before the run starts.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Convenience: deadline = now + `ms` (non-positive arms an
  /// already-expired deadline, so the run stops at its first poll).
  void SetTimeoutMillis(double ms) {
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms)));
  }

  bool has_deadline() const { return has_deadline_; }

  /// Thread-safe; idempotent. The run observes it at the next poll.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Client-driven early stop ("good enough"): same cooperative path as
  /// RequestCancel, but the run terminates with kClientSatisfied and its
  /// best-so-far report is a *successful* partial answer, not an error.
  /// Thread-safe; idempotent.
  void RequestClientStop() {
    client_stop_.store(true, std::memory_order_relaxed);
  }

  bool client_stop_requested() const {
    return client_stop_.load(std::memory_order_relaxed);
  }

  /// The driver's fast poll: the cancellation flag is read every call, the
  /// clock only every kDeadlineStride calls (a steady_clock read costs an
  /// order of magnitude more than a relaxed load, and sequential Explore
  /// polls per coordinate). Safe to call from the run thread and its layer
  /// prefetch worker concurrently.
  bool ShouldStop() {
    if (cancel_requested()) return true;
    if (client_stop_requested()) return true;
    if (budget_.exhausted()) return true;
    if (!has_deadline_) return false;
    if (poll_count_.fetch_add(1, std::memory_order_relaxed) %
            kDeadlineStride !=
        0) {
      return false;
    }
    return Clock::now() >= deadline_;
  }

  /// Definitive classification for the result: cancellation wins over the
  /// client stop (CANCEL discards, STOP keeps — the discard is the stronger
  /// request), which wins over resource exhaustion, which wins over the
  /// deadline (it names the actual cause; a budget-stopped run usually
  /// blows its deadline while draining too). The clock is always consulted.
  /// kCompleted when nothing fired.
  RunTermination Interruption() const {
    if (cancel_requested()) return RunTermination::kCancelled;
    if (client_stop_requested()) return RunTermination::kClientSatisfied;
    if (budget_.exhausted()) return RunTermination::kResourceExhausted;
    if (has_deadline_ && Clock::now() >= deadline_) {
      return RunTermination::kDeadlineExceeded;
    }
    return RunTermination::kCompleted;
  }

  /// The run's cooperative memory budget (see MemoryBudget). Configure the
  /// limit before the run; the drivers wire it into the aggregate store and
  /// the expand generator, and fold exhaustion into ShouldStop.
  MemoryBudget& budget() { return budget_; }
  const MemoryBudget& budget() const { return budget_; }

  /// Receives throttled ProgressSnapshots on the *run thread*. Must be fast
  /// and must not re-enter the run (it executes between layers, so a slow
  /// sink directly stretches the search).
  using ProgressSink = std::function<void(const ProgressSnapshot&)>;

  /// Arms the progress sink. Call before the run starts (not thread-safe
  /// against an in-flight run). `interval_ms` <= 0 emits a frame at every
  /// layer drain; otherwise drains inside the interval are coalesced and
  /// only the first drain at/after each interval boundary emits.
  void ArmProgressSink(ProgressSink sink, double interval_ms) {
    progress_sink_ = std::move(sink);
    progress_interval_ms_ = interval_ms;
    progress_emitted_ = false;
  }

  bool progress_armed() const { return static_cast<bool>(progress_sink_); }

  /// Layer-drain hook for the Explore drivers: bumps `layers_drained` and,
  /// when a sink is armed and the throttle window has elapsed, builds one
  /// snapshot — pre-seeded with this context's counters — lets `fill`
  /// complete it (best-so-far, ExecStats) and hands it to the sink. `fill`
  /// only runs when a frame is actually emitted, so Describe()-style
  /// rendering costs nothing on coalesced drains. Run-thread only.
  template <typename Fill>
  void LayerDrained(Fill&& fill) {
    const uint64_t layers =
        layers_drained.fetch_add(1, std::memory_order_relaxed) + 1;
    if (!progress_sink_) return;
    const Clock::time_point now = Clock::now();
    if (progress_emitted_ && progress_interval_ms_ > 0 &&
        std::chrono::duration<double, std::milli>(now - last_emit_).count() <
            progress_interval_ms_) {
      return;
    }
    progress_emitted_ = true;
    last_emit_ = now;
    ProgressSnapshot snap;
    snap.layers_drained = layers;
    snap.queries_explored = queries_explored.load(std::memory_order_relaxed);
    snap.cell_queries = cell_queries.load(std::memory_order_relaxed);
    fill(&snap);
    progress_sink_(snap);
  }

  /// Progress counters, written (relaxed) by the run thread as the search
  /// advances and read by observers (the server's STATUS handler).
  std::atomic<uint64_t> queries_explored{0};
  std::atomic<uint64_t> cell_queries{0};
  std::atomic<uint64_t> layers_drained{0};

 private:
  static constexpr uint64_t kDeadlineStride = 32;

  std::atomic<bool> cancel_{false};
  std::atomic<bool> client_stop_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<uint64_t> poll_count_{0};
  MemoryBudget budget_;

  ProgressSink progress_sink_;
  double progress_interval_ms_ = 0.0;
  bool progress_emitted_ = false;   // run-thread only (throttle state)
  Clock::time_point last_emit_{};   // run-thread only
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_RUN_CONTEXT_H_
