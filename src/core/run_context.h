#ifndef ACQUIRE_CORE_RUN_CONTEXT_H_
#define ACQUIRE_CORE_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/memory_budget.h"
#include "common/status.h"

namespace acquire {

/// How a search run ended. Every value except kCompleted means the result
/// is a *partial* answer: the search stopped before its own stopping rules
/// (first hit layer / exhaustion / divergence) concluded, and `best` holds
/// the closest query found so far. Distinguishing these matters for the
/// serving path — "no answer exists within the explored region" and "the
/// budget ran out before we could tell" call for different client actions.
enum class RunTermination {
  kCompleted,          // the search's own stopping rules concluded
  kTruncated,          // AcquireOptions.max_explored exhausted
  kDeadlineExceeded,   // RunContext deadline passed
  kCancelled,          // RunContext::RequestCancel observed
  kResourceExhausted,  // MemoryBudget limit hit (or injected exhaustion)
};

/// Stable lowercase name ("completed", "truncated", "deadline_exceeded",
/// "cancelled", "resource_exhausted") — also the wire form the ACQ server
/// reports.
const char* RunTerminationToString(RunTermination t);

/// Converts a non-kCompleted termination to the matching error Status
/// (OK for kCompleted / kTruncated, which still carry a usable result).
Status TerminationToStatus(RunTermination t);

/// Cooperative deadline + cancellation token + progress counters threaded
/// through one ACQUIRE run (RunAcquire / RunAcquireContract / ProcessAcq via
/// AcquireOptions::run_ctx).
///
/// Threading model: one thread drives the run and is the only writer of
/// the progress counters; ShouldStop may additionally be polled by the
/// run's layer-prefetch worker, and any number of other threads may call
/// RequestCancel and read the progress counters concurrently. Deadline
/// setters are not thread-safe — arm them before the run starts. The
/// drivers poll at coordinate
/// granularity in the sequential explorer and at layer granularity in the
/// batched one, so an in-flight run stops within one layer's worth of work
/// and returns its best-so-far partial answer instead of blocking the
/// worker it runs on.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Arms the deadline. Call before the run starts.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Convenience: deadline = now + `ms` (non-positive arms an
  /// already-expired deadline, so the run stops at its first poll).
  void SetTimeoutMillis(double ms) {
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double, std::milli>(ms)));
  }

  bool has_deadline() const { return has_deadline_; }

  /// Thread-safe; idempotent. The run observes it at the next poll.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// The driver's fast poll: the cancellation flag is read every call, the
  /// clock only every kDeadlineStride calls (a steady_clock read costs an
  /// order of magnitude more than a relaxed load, and sequential Explore
  /// polls per coordinate). Safe to call from the run thread and its layer
  /// prefetch worker concurrently.
  bool ShouldStop() {
    if (cancel_requested()) return true;
    if (budget_.exhausted()) return true;
    if (!has_deadline_) return false;
    if (poll_count_.fetch_add(1, std::memory_order_relaxed) %
            kDeadlineStride !=
        0) {
      return false;
    }
    return Clock::now() >= deadline_;
  }

  /// Definitive classification for the result: cancellation wins over
  /// resource exhaustion (the more specific user action), which wins over
  /// the deadline (it names the actual cause; a budget-stopped run usually
  /// blows its deadline while draining too). The clock is always consulted.
  /// kCompleted when nothing fired.
  RunTermination Interruption() const {
    if (cancel_requested()) return RunTermination::kCancelled;
    if (budget_.exhausted()) return RunTermination::kResourceExhausted;
    if (has_deadline_ && Clock::now() >= deadline_) {
      return RunTermination::kDeadlineExceeded;
    }
    return RunTermination::kCompleted;
  }

  /// The run's cooperative memory budget (see MemoryBudget). Configure the
  /// limit before the run; the drivers wire it into the aggregate store and
  /// the expand generator, and fold exhaustion into ShouldStop.
  MemoryBudget& budget() { return budget_; }
  const MemoryBudget& budget() const { return budget_; }

  /// Progress counters, written (relaxed) by the run thread as the search
  /// advances and read by observers (the server's STATUS handler).
  std::atomic<uint64_t> queries_explored{0};
  std::atomic<uint64_t> cell_queries{0};

 private:
  static constexpr uint64_t kDeadlineStride = 32;

  std::atomic<bool> cancel_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::atomic<uint64_t> poll_count_{0};
  MemoryBudget budget_;
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_RUN_CONTEXT_H_
