#ifndef ACQUIRE_CORE_EXPLORE_H_
#define ACQUIRE_CORE_EXPLORE_H_

#include <cstdint>
#include <future>
#include <vector>

#include "core/expand.h"
#include "core/refined_space.h"
#include "core/run_context.h"
#include "exec/evaluation.h"

namespace acquire {

/// Stores, per investigated grid query, the aggregate states of its d+1
/// sub-queries O_1..O_{d+1} (cell, pillar, wall, ..., block; Eqs. 5-8).
/// Only aggregate states are retained, never result tuples, exactly as in
/// Section 5.1.1.
///
/// Layout: an open-addressed (linear probing, power-of-two) slot table maps
/// a coordinate to an entry index; entry e's key lives at keys_[e*d..] and
/// its d+1 fixed-width sub-aggregate states live contiguously at
/// arena_[e*block_width..] — one flat double array for the whole store, so
/// inserting a coordinate allocates nothing beyond the amortized geometric
/// growth of three flat vectors (the previous map-of-vectors cost one node
/// plus d+2 vector allocations per coordinate).
class AggregateStore {
 public:
  /// Must be called before any Insert/Find. `state_width` is the fixed
  /// number of doubles per aggregate state (== ops.Init().size()).
  void Configure(size_t d, size_t state_width);

  /// Charges the store's capacity growth (keys, arena, slot table) against
  /// `budget` (not owned; may be nullptr). Growth past the budget — or an
  /// injected "explore.arena_grow" failpoint hit — latches the budget's
  /// exhausted flag; the store itself keeps functioning (soft enforcement,
  /// see MemoryBudget) so the driver can stop cleanly at its next poll.
  void set_budget(MemoryBudget* budget) { budget_ = budget; }

  /// Current reserved footprint in bytes (capacity, not size).
  size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(int32_t) +
           arena_.capacity() * sizeof(double) +
           slots_.capacity() * sizeof(uint32_t);
  }

  /// Pre-sizes the table and arena for `coords` total entries.
  void Reserve(size_t coords);

  /// The (d+1)*state_width doubles of the coordinate's sub-aggregates —
  /// state j (sub-query O_{j+1}) at offset j*state_width. nullptr when the
  /// coordinate has not been investigated.
  const double* Find(const GridCoord& coord) const {
    if (slots_.empty()) return nullptr;
    const uint32_t e = slots_[ProbeSlot(coord.data())];
    return e == 0 ? nullptr : arena_.data() + (e - 1) * block_width_;
  }

  /// No-hint sentinel for FindWithSlot / InsertHinted.
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Find that also reports where the probe ended: on a miss, `slot` is the
  /// empty slot the key would occupy, reusable as an InsertHinted hint as
  /// long as no rehash or other insert intervenes (kNoSlot when the table
  /// is empty).
  const double* FindWithSlot(const GridCoord& coord, size_t* slot) const;

  /// Appends a new entry and returns its zero-initialized block. The
  /// coordinate must not be present (callers always Find first).
  double* Insert(const GridCoord& coord) { return InsertHinted(coord, kNoSlot); }

  /// Insert reusing a FindWithSlot miss probe: when the hinted slot is
  /// still empty it is taken directly (a linear-probe chain never loses
  /// occupancy, so the first empty slot of the key's chain cannot move
  /// earlier), else the probe reruns.
  double* InsertHinted(const GridCoord& coord, size_t hint);

  size_t size() const { return num_entries_; }
  size_t d() const { return d_; }
  size_t state_width() const { return state_width_; }
  size_t block_width() const { return block_width_; }

  /// --- Bulk layer publication (core/parallel_merge) ---
  /// Appends `count` zero-filled entries without touching the slot table
  /// and returns the first new entry index. The caller fills their keys and
  /// blocks through MutableKeyAt/MutableBlockAt, then makes them findable
  /// with exactly one of the PublishSlots* calls. The slot table is resized
  /// here if needed, so no rehash can happen between this call and the
  /// publication — which is what lets the radix publisher precompute home
  /// slots and claim them concurrently.
  size_t BulkAppendBegin(size_t count);
  int32_t* MutableKeyAt(size_t e) { return keys_.data() + e * d_; }
  double* MutableBlockAt(size_t e) { return arena_.data() + e * block_width_; }
  /// Inserts entries [base, base + count) into the slot table in entry
  /// order from one thread — the deterministic reference layout.
  void PublishSlotsSequential(size_t base, size_t count);
  /// Start of entry `e`'s probe chain under the current table size.
  size_t HomeSlot(const int32_t* key) const;
  size_t slot_count() const { return slots_.size(); }
  /// Lock-free claim of the first empty slot on the probe chain starting at
  /// `home` for entry `e`. Safe to call concurrently for distinct entries
  /// with distinct keys (a CAS loser simply advances); the slot layout may
  /// differ from the sequential one, which no lookup can observe, and any
  /// later Rehash rebuilds the reference layout from entry order anyway.
  void PublishSlotAtomic(size_t e, size_t home);

  /// Entry `e`'s key / block by insertion order (e < size()). Entries are
  /// append-only, so indices are stable; block pointers are stable until
  /// the next Insert.
  const int32_t* KeyAt(size_t e) const { return keys_.data() + e * d_; }
  const double* BlockAt(size_t e) const {
    return arena_.data() + e * block_width_;
  }

 private:
  /// Slot holding the coordinate, or the empty slot where it would go.
  size_t ProbeSlot(const int32_t* key) const;
  void Rehash(size_t slot_count);
  /// Charges any capacity growth since the last call against budget_.
  void ChargeGrowth();

  size_t d_ = 0;
  size_t state_width_ = 0;
  size_t block_width_ = 0;  // (d + 1) * state_width
  size_t num_entries_ = 0;
  std::vector<uint32_t> slots_;  // entry index + 1; 0 = empty
  std::vector<int32_t> keys_;    // num_entries * d, entry-major
  std::vector<double> arena_;    // num_entries * block_width
  MemoryBudget* budget_ = nullptr;  // not owned; nullptr = untracked
  size_t charged_bytes_ = 0;        // capacity bytes already charged
};

/// The Explore phase (Section 5): Incremental Aggregate Computation.
///
/// For each grid query only the cell sub-query O_1 is executed against the
/// evaluation layer; the remaining sub-aggregates follow from the
/// recurrence O_i(u) = O_{i-1}(u) + O_i(u - e_{i-1}) (Eq. 17) in d
/// constant-time merges, so a query is executed at most once no matter how
/// many refined queries contain it.
///
/// Algorithm 3 assumes predecessors were investigated first; BFS order
/// guarantees that (Theorem 3), and the shell generator's descending
/// pinned-group order makes every same-shell predecessor precede its
/// successors too, but best-first order can still request a coordinate
/// before an equal-score predecessor, so missing predecessors are filled
/// on demand (memoized, still at most one cell execution per coordinate).
class Explorer {
 public:
  /// `budget` (optional, not owned) meters the aggregate store's arena
  /// growth — see AggregateStore::set_budget.
  Explorer(const RefinedSpace* space, EvaluationLayer* layer,
           MemoryBudget* budget = nullptr);

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Final aggregate value of grid query `coord` (Algorithm 3).
  Result<double> ComputeAggregate(const GridCoord& coord);

  /// Records cell sub-query states that were already executed against the
  /// layer in a batch (EvaluateCells): states[q] is O_1 of coords[q].
  /// ComputeAggregate consumes a seeded state instead of issuing the cell
  /// query again. Counts toward cell_queries() immediately — the layer did
  /// execute them. Already-investigated coordinates must not be seeded, and
  /// each call replaces the previous layer's seeds wholesale (predecessor
  /// fills never reach a later layer, so seeds are consumed within their
  /// own layer unless the search stops first).
  void SeedCellStates(const std::vector<GridCoord>& coords,
                      std::vector<AggregateOps::State> states);

  bool IsStored(const GridCoord& coord) const {
    return store_.Find(coord) != nullptr;
  }

  /// Pre-sizes the store for `additional` more coordinates.
  void ReserveAdditional(size_t additional) {
    store_.Reserve(store_.size() + additional);
  }

  /// Arms the layer-drain predecessor fast path: the coordinates about to
  /// be investigated form one equi-score layer whose Eq. 17 predecessors
  /// all live in store entries [lo, hi) (the previous layer). In a BFS
  /// drain both the layer and, per dimension j, its predecessor sequence
  /// u - e_j descend lexicographically, so d forward cursors over that
  /// contiguous entry range resolve predecessors with short sequential
  /// scans of warm memory instead of random hash probes. Any miss falls
  /// back to the hash table, so shell/best-first orders (and predecessor
  /// fills) stay correct — the cursors are a locality hint, never an
  /// authority. Pass lo == hi to disarm. Disarms any shell drain.
  void BeginLayerDrain(size_t lo, size_t hi);

  /// Arms the shell-order predecessor fast path instead: the layer being
  /// investigated is one L-inf shell whose same-shell predecessors live in
  /// the store region [lo, size()) that grows as the drain inserts. The
  /// shell generator emits pinned groups in descending pinned order (see
  /// ShellGenerator), each group ascending lexicographically, so d forward
  /// cursors over the current group resolve the same-group predecessors
  /// (every dimension but the pinned one) with warm sequential scans; a
  /// group restart is detected from the inserts themselves (a key ordering
  /// below its predecessor entry) and re-bases the cursors. Cross-group and
  /// previous-shell predecessors fall back to the hash table — the cursors
  /// only ever answer exact matches. Disarms any BFS layer drain.
  void BeginShellDrain(size_t lo);

  /// Number of cell queries actually executed (== store().size() plus any
  /// seeded-but-not-yet-consumed batch states).
  uint64_t cell_queries() const { return cell_queries_; }

  const AggregateStore& store() const { return store_; }

  /// --- Parallel layer merge hooks (core/parallel_merge) ---
  /// Positional read-only access to the current batch's seeds: seed q is
  /// O_1 of the q-th coordinate passed to SeedCellStates. The parallel
  /// merger reads these from pool workers; nothing may mutate the explorer
  /// while a merge is in flight.
  size_t seed_count() const { return seed_states_.size(); }
  const AggregateOps::State& SeedStateAt(size_t q) const {
    return seed_states_[q];
  }
  /// Marks every seed consumed after a parallel merge published the whole
  /// layer, so a later TakeSeed can never replay one.
  void ConsumeAllSeeds();
  AggregateStore& mutable_store() { return store_; }
  const RefinedSpace& space() const { return *space_; }

 private:
  /// Ensures store_ holds the sub-aggregates of `coord` (iterative
  /// dependency-stack fill) and sets `block` to its stored block.
  Status EnsureComputed(const GridCoord& coord, const double** block);

  /// Moves the seeded O_1 state of `coord` into `out` (true) or leaves it
  /// untouched (false). Layer drains consume seeds in seeding order, so a
  /// rolling cursor answers without hashing; out-of-order consumption
  /// (shell/best-first predecessor fills) falls back to a lazily built
  /// probe table over the seed keys.
  bool TakeSeed(const GridCoord& coord, AggregateOps::State* out);
  void BuildSeedIndex();

  /// Looks for `key` at or after pred_cursor_[j] within the armed entry
  /// range, advancing the cursor past entries that order above the key.
  /// nullptr on a miss (caller falls back to store_.Find).
  const double* FindPredInRange(size_t j, const int32_t* key);

  /// Shell-drain counterpart: looks for `key` at or after
  /// shell_cursor_[j] within the current pinned group's stored entries
  /// (ascending), skipping lex-smaller entries for good. nullptr on a miss.
  const double* FindShellPred(size_t j, const int32_t* key);
  /// Called after each insert while the shell drain is armed: a key that
  /// orders below the previous entry starts the next pinned group.
  void NoteShellInsert();

  const RefinedSpace* space_;
  EvaluationLayer* layer_;
  AggregateStore store_;
  uint64_t cell_queries_ = 0;
  /// Batch-executed cell states awaiting their Eq. 17 merges: a flat
  /// open-addressed index over the current layer's seeds, rebuilt per
  /// layer with no per-coordinate allocation (a map-of-states here cost
  /// three node operations per coordinate — more than the batch saved).
  std::vector<AggregateOps::State> seed_states_;
  std::vector<int32_t> seed_keys_;    // seed e's coord at seed_keys_[e*d..]
  std::vector<uint32_t> seed_slots_;  // seed index + 1; 0 = empty
  size_t seed_cursor_ = 0;            // first possibly-unconsumed seed
  bool seed_index_built_ = false;     // seed_slots_ populated (lazy)
  // Layer-drain predecessor cursors (see BeginLayerDrain).
  size_t pred_lo_ = 0;
  size_t pred_hi_ = 0;
  std::vector<size_t> pred_cursor_;  // per dimension, in [pred_lo_, pred_hi_]
  // Shell-drain predecessor cursors (see BeginShellDrain).
  bool shell_drain_ = false;
  size_t shell_lo_ = 0;        // first entry of the current shell
  size_t shell_group_lo_ = 0;  // first entry of the current pinned group
  std::vector<size_t> shell_cursor_;  // per dimension, >= shell_group_lo_
  // Reused scratch (states of the coordinate being computed, a predecessor
  // state lifted out of the arena, the dependency stack, the predecessor
  // block pointers found during the availability check — valid only until
  // the next store_ insert).
  std::vector<AggregateOps::State> scratch_;
  AggregateOps::State tmp_state_;
  std::vector<GridCoord> stack_;
  std::vector<const double*> pred_blocks_;
};

/// Layer-batched Explore driver: drains one equi-score layer at a time from
/// the Expand generator, executes all of the layer's outstanding cell
/// sub-queries in one EvaluateCells batch (parallel or natively merged,
/// per the evaluation layer), then lets the caller run Algorithm 3 over the
/// layer's coordinates in generation order. The Eq. 17 predecessor merges
/// stay sequential in that order, so aggregates are bit-identical to the
/// one-coordinate-at-a-time Explorer (Theorem 3's ordering is preserved;
/// only O_1 executions are reordered, and those are independent).
///
/// NextLayer additionally pipelines the generator: after handing out layer
/// k it prefetches layer k+1 on the shared pool, so Expand runs concurrently
/// with the caller's evaluation/merge/investigation of layer k. The
/// generator emits the same layers in the same order either way, and it is
/// touched by exactly one thread at a time (the join in NextLayer is the
/// hand-over), so results are unchanged.
class BatchExplorer {
 public:
  /// `ctx` (optional, not owned) lets a huge layer generation stop early:
  /// GenerateLayer polls it every few hundred coordinates and truncates the
  /// layer, so a cancelled run is not stuck expanding a d-dimensional layer
  /// to completion first. The driver re-polls before consuming the layer,
  /// so a truncated layer is never mistaken for a complete one on an
  /// uninterrupted run (ctx == nullptr is byte-identical behavior).
  BatchExplorer(const RefinedSpace* space, EvaluationLayer* layer,
                QueryGenerator* generator, RunContext* ctx = nullptr);

  /// Joins an in-flight layer prefetch.
  ~BatchExplorer();

  BatchExplorer(const BatchExplorer&) = delete;
  BatchExplorer& operator=(const BatchExplorer&) = delete;

  /// Drains the next equi-score layer from the generator (one-coordinate
  /// lookahead detects the score change). False once the space is
  /// exhausted. Does not execute anything.
  bool NextLayer();

  /// Score shared by every coordinate of the current layer.
  double layer_score() const { return layer_score_; }

  /// The current layer's coordinates in generation order.
  const std::vector<GridCoord>& layer() const { return layer_coords_; }

  /// Executes the cell sub-queries of every not-yet-investigated
  /// coordinate of the current layer in one batch and seeds the explorer.
  Status ExecuteLayer();

  /// True when the last ExecuteLayer was an in-sync drain: every layer
  /// coordinate was new and seeded positionally — the precondition for
  /// handing the layer to ParallelLayerMerger.
  bool last_layer_in_sync() const { return last_in_sync_; }

  /// Tells ExecuteLayer which predecessor fast path to arm on in-sync
  /// layers: the shell drain (BeginShellDrain) instead of the descending
  /// BFS window. Set once by the driver for shell search order.
  void set_shell_drain_hint(bool shell) { shell_hint_ = shell; }

  Explorer& explorer() { return explorer_; }

  /// Cumulative generator time (NextLayer) and batch execution time
  /// (ExecuteLayer), for per-phase driver stats. Prefetched generator time
  /// overlaps the caller's work, so phase times can sum past wall time.
  double expand_ms() const { return expand_ms_; }
  double batch_ms() const { return batch_ms_; }

 private:
  /// Drains one equi-score run from the generator into next_*. Runs either
  /// inline (first layer) or on a pool worker; never both at once.
  void GenerateLayer();
  void StartPrefetch();

  const RefinedSpace* space_;
  EvaluationLayer* layer_;
  QueryGenerator* generator_;
  RunContext* ctx_;
  Explorer explorer_;
  std::vector<GridCoord> layer_coords_;
  double layer_score_ = 0.0;
  // Generator cursor and the prefetched layer. Owned by the prefetch task
  // between StartPrefetch() and the join at the top of NextLayer().
  bool primed_ = false;        // lookahead holds a coordinate
  bool exhausted_ = false;
  GridCoord lookahead_;
  double lookahead_score_ = 0.0;
  std::vector<GridCoord> next_coords_;
  double next_score_ = 0.0;
  bool next_valid_ = false;
  std::future<void> prefetch_;
  std::vector<GridCoord> batch_;  // scratch: coords needing execution
  size_t drained_total_ = 0;      // coords handed out in previous layers
  size_t prev_layer_size_ = 0;    // size of the layer drained before this one
  bool last_in_sync_ = false;     // last ExecuteLayer was an in-sync drain
  bool shell_hint_ = false;       // arm the shell drain on in-sync layers
  double expand_ms_ = 0.0;
  double batch_ms_ = 0.0;
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_EXPLORE_H_
