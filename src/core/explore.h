#ifndef ACQUIRE_CORE_EXPLORE_H_
#define ACQUIRE_CORE_EXPLORE_H_

#include <unordered_map>
#include <vector>

#include "core/refined_space.h"
#include "exec/evaluation.h"

namespace acquire {

/// Stores, per investigated grid query, the aggregate states of its d+1
/// sub-queries O_1..O_{d+1} (cell, pillar, wall, ..., block; Eqs. 5-8).
/// Only aggregate states are retained, never result tuples, exactly as in
/// Section 5.1.1.
class AggregateStore {
 public:
  /// d+1 states, index j holding sub-query O_{j+1}.
  using SubAggregates = std::vector<AggregateOps::State>;

  void Put(const GridCoord& coord, SubAggregates states) {
    map_.emplace(coord, std::move(states));
  }

  /// nullptr when the coordinate has not been investigated.
  const SubAggregates* Find(const GridCoord& coord) const {
    auto it = map_.find(coord);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<GridCoord, SubAggregates, GridCoordHash> map_;
};

/// The Explore phase (Section 5): Incremental Aggregate Computation.
///
/// For each grid query only the cell sub-query O_1 is executed against the
/// evaluation layer; the remaining sub-aggregates follow from the
/// recurrence O_i(u) = O_{i-1}(u) + O_i(u - e_{i-1}) (Eq. 17) in d
/// constant-time merges, so a query is executed at most once no matter how
/// many refined queries contain it.
///
/// Algorithm 3 assumes predecessors were investigated first; BFS order
/// guarantees that (Theorem 3), but shell and best-first orders can request
/// a coordinate before one of its in-shell predecessors, so missing
/// predecessors are filled on demand (memoized, still at most one cell
/// execution per coordinate).
class Explorer {
 public:
  Explorer(const RefinedSpace* space, EvaluationLayer* layer)
      : space_(space), layer_(layer) {}

  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Final aggregate value of grid query `coord` (Algorithm 3).
  Result<double> ComputeAggregate(const GridCoord& coord);

  /// Number of cell queries actually executed (== store().size()).
  uint64_t cell_queries() const { return cell_queries_; }

  const AggregateStore& store() const { return store_; }

 private:
  /// Ensures store_ holds the sub-aggregates of `coord` (iterative
  /// dependency-stack fill).
  Status EnsureComputed(const GridCoord& coord);

  const RefinedSpace* space_;
  EvaluationLayer* layer_;
  AggregateStore store_;
  uint64_t cell_queries_ = 0;
};

}  // namespace acquire

#endif  // ACQUIRE_CORE_EXPLORE_H_
